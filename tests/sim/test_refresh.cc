/**
 * @file
 * Tests for the temperature-coupled refresh model: band selection, the
 * DDR2/AL-DRAM catalog, the RefreshRegistry contract (unknown names
 * list the valid keys; runtime add), the refresh=none bit-identity
 * guarantee, monotone bandwidth loss as a DIMM's DRAM temperature
 * crosses the 2x band, and the result-document schema-version
 * accept/reject matrix.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/sim/refresh_model.hh"
#include "core/sim/registry.hh"
#include "core/sim/scenario.hh"
#include "core/sim/thermal_simulator.hh"
#include "core/thermal/thermal_params.hh"

namespace memtherm
{
namespace
{

TEST(RefreshModel, BandAtPicksTheLastBandAtOrBelow)
{
    RefreshModel m;
    m.bands = {{-273.15, 0.01, 0.1, 1.0},
               {55.0, 0.02, 0.2, 1.0},
               {85.0, 0.04, 0.4, 1.0}};
    EXPECT_EQ(m.bandAt(20.0).bwFraction, 0.01);
    EXPECT_EQ(m.bandAt(54.999).bwFraction, 0.01);
    EXPECT_EQ(m.bandAt(55.0).bwFraction, 0.02); // inclusive lower edge
    EXPECT_EQ(m.bandAt(84.999).bwFraction, 0.02);
    EXPECT_EQ(m.bandAt(85.0).bwFraction, 0.04);
    EXPECT_EQ(m.bandAt(200.0).bwFraction, 0.04);
    EXPECT_THROW(RefreshModel{}.bandAt(50.0), PanicError);
}

TEST(RefreshModel, Ddr2CatalogDoublesAtTheDramTdp)
{
    const RefreshModel m = ddr2DoubleRefreshModel();
    ASSERT_EQ(m.bands.size(), 2u);
    const Celsius tdp = ThermalLimits{}.dramTdp;
    EXPECT_EQ(m.bands[1].minTemp, tdp);

    const RefreshBand &cool = m.bandAt(tdp - 1.0);
    const RefreshBand &hot = m.bandAt(tdp);
    EXPECT_GT(cool.bwFraction, 0.0);
    EXPECT_GT(cool.dramPower, 0.0);
    EXPECT_EQ(hot.bwFraction, 2.0 * cool.bwFraction);
    EXPECT_EQ(hot.dramPower, 2.0 * cool.dramPower);
    EXPECT_EQ(cool.latencyMult, 1.0);
    EXPECT_EQ(hot.latencyMult, 1.0);
}

TEST(RefreshModel, AldramCatalogTightensTimingsWhenCool)
{
    const RefreshModel m = aldramRefreshModel();
    // Cold silicon runs faster than the datasheet point...
    EXPECT_LT(m.bandAt(30.0).latencyMult, m.bandAt(60.0).latencyMult);
    EXPECT_LT(m.bandAt(60.0).latencyMult, 1.0);
    // ...the nominal band is the datasheet, and the hot band still
    // doubles refresh like plain DDR2.
    EXPECT_EQ(m.bandAt(75.0).latencyMult, 1.0);
    const Celsius tdp = ThermalLimits{}.dramTdp;
    EXPECT_EQ(m.bandAt(tdp).bwFraction, 2.0 * m.bandAt(75.0).bwFraction);
}

TEST(RefreshRegistry, CatalogNamesAndUnknownNameDiagnostic)
{
    const std::vector<std::string> names = refreshModelNames();
    ASSERT_GE(names.size(), 3u);
    EXPECT_EQ(names[0], "none");
    EXPECT_EQ(names[1], "ddr2_2x");
    EXPECT_EQ(names[2], "aldram");

    EXPECT_TRUE(tryRefreshModel("none")->empty());
    EXPECT_FALSE(tryRefreshModel("ddr2_2x")->empty());

    std::string error;
    EXPECT_FALSE(tryRefreshModel("ddr3", &error).has_value());
    EXPECT_NE(error.find("unknown refresh model 'ddr3'"),
              std::string::npos)
        << error;
    for (const auto &n : names)
        EXPECT_NE(error.find(n), std::string::npos) << error;

    EXPECT_THROW(refreshModelByName("ddr3"), FatalError);
}

TEST(RefreshRegistry, RuntimeAddRegistersAndReplaces)
{
    RefreshModel custom;
    custom.bands = {{-273.15, 0.05, 0.5, 1.0}};
    RefreshRegistry::instance().add("test_custom_refresh", custom);
    ASSERT_TRUE(RefreshRegistry::instance().contains(
        "test_custom_refresh"));
    EXPECT_EQ(tryRefreshModel("test_custom_refresh")->bands[0].bwFraction,
              0.05);

    custom.bands[0].bwFraction = 0.07;
    RefreshRegistry::instance().add("test_custom_refresh", custom);
    EXPECT_EQ(tryRefreshModel("test_custom_refresh")->bands[0].bwFraction,
              0.07);
}

SimConfig
refreshTestConfig()
{
    SimConfig cfg = makeCh4Config(coolingAohs15(), false);
    cfg.copiesPerApp = 2;
    cfg.trafficShares = {0.55, 0.15, 0.15, 0.15};
    return cfg;
}

/**
 * The compatibility contract: refresh="none" (the empty model) is
 * bit-identical to never touching the knob. Everything downstream —
 * committed goldens, stream resumes, batched fork identity — leans on
 * this being exact, not merely close.
 */
TEST(RefreshCoupling, NoneIsBitIdenticalToKnobUnset)
{
    const SimConfig unset = refreshTestConfig();
    SimConfig none = refreshTestConfig();
    none.refresh = refreshModelByName("none");

    for (const char *policy : {"No-limit", "DTM-TS"}) {
        PolicyBuildContext ctx{unset.dtmInterval, unset.emergencyLevels,
                               unset.remapInterval, unset.remapHysteresis,
                               unset.trafficShares};
        auto p1 = PolicyRegistry::instance().make(policy, ctx);
        auto p2 = PolicyRegistry::instance().make(policy, ctx);
        SimResult a = ThermalSimulator(unset).run(workloadMix("W1"), *p1);
        SimResult b = ThermalSimulator(none).run(workloadMix("W1"), *p2);
        EXPECT_TRUE(toJson(a, true) == toJson(b, true)) << policy;
        EXPECT_TRUE(a.refreshBwLossPerDimm.empty());
        EXPECT_TRUE(b.refreshBwLossPerDimm.empty());
    }
}

/**
 * Monotone bandwidth loss across the 2x band. Cool operating point:
 * every DIMM sits in the nominal band, so per-share-normalized loss is
 * uniform across DIMMs. Hot operating point (degraded fan, 45 C room,
 * deep batch): the skewed DIMM crosses the 85 C threshold, its refresh
 * rate doubles, and its per-share-normalized loss strictly exceeds a
 * cool DIMM's in the same run.
 */
TEST(RefreshCoupling, BandwidthLossMonotoneAcrossTheDoubleBand)
{
    const Workload mix = workloadMix("W1");

    SimConfig cool = refreshTestConfig();
    cool.refresh = refreshModelByName("ddr2_2x");
    PolicyBuildContext ctx{cool.dtmInterval, cool.emergencyLevels,
                           cool.remapInterval, cool.remapHysteresis,
                           cool.trafficShares};
    auto p = PolicyRegistry::instance().make("No-limit", ctx);
    SimResult rc = ThermalSimulator(cool).run(mix, *p);
    ASSERT_TRUE(rc.completed);
    ASSERT_LT(rc.maxDram, ThermalLimits{}.dramTdp);
    ASSERT_EQ(rc.refreshBwLossPerDimm.size(), 4u);
    const auto perShare = [](const SimResult &r, const SimConfig &cfg,
                             std::size_t i) {
        return r.refreshBwLossPerDimm[i] / cfg.trafficShares[i];
    };
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_GT(rc.refreshBwLossPerDimm[i], 0.0);
        EXPECT_NEAR(perShare(rc, cool, i), perShare(rc, cool, 0),
                    1e-9 * perShare(rc, cool, 0));
    }

    SimConfig hot = makeCh4Config(coolingFdhs10(), false);
    hot.copiesPerApp = 12;
    hot.ambient.tInlet = 45.0;
    hot.trafficShares = {0.55, 0.15, 0.15, 0.15};
    hot.refresh = refreshModelByName("ddr2_2x");
    PolicyBuildContext hctx{hot.dtmInterval, hot.emergencyLevels,
                            hot.remapInterval, hot.remapHysteresis,
                            hot.trafficShares};
    auto hp = PolicyRegistry::instance().make("No-limit", hctx);
    SimResult rh = ThermalSimulator(hot).run(mix, *hp);
    ASSERT_GT(rh.maxDram, ThermalLimits{}.dramTdp);
    ASSERT_EQ(rh.refreshBwLossPerDimm.size(), 4u);
    // DIMM 0 spent time in the 2x band; DIMM 3 did not (or far less):
    // its normalized loss rate must be strictly higher.
    EXPECT_GT(perShare(rh, hot, 0), 1.05 * perShare(rh, hot, 3));
    // And the doubled refresh's power feedback registers as extra
    // refresh energy on the hot DIMM.
    ASSERT_EQ(rh.refreshEnergyPerDimm.size(), 4u);
    EXPECT_GT(rh.refreshEnergyPerDimm[0], 1.05 * rh.refreshEnergyPerDimm[3]);
}

/** Result-document schema versions: absent = v1, newer = refused. */
TEST(SchemaVersion, AcceptRejectMatrix)
{
    auto docWith = [](const Json *version) {
        Json doc = Json::object();
        doc.set("scenario", "t");
        if (version)
            doc.set("schema_version", *version);
        doc.set("points", Json::array());
        return doc;
    };

    EXPECT_EQ(resultSchemaVersionOf(docWith(nullptr), "t"), 1);
    Json v1(1.0);
    EXPECT_EQ(resultSchemaVersionOf(docWith(&v1), "t"), 1);
    Json vCur(static_cast<double>(kResultSchemaVersion));
    EXPECT_EQ(resultSchemaVersionOf(docWith(&vCur), "t"),
              kResultSchemaVersion);

    Json vFuture(static_cast<double>(kResultSchemaVersion + 1));
    try {
        resultSchemaVersionOf(docWith(&vFuture), "somewhere");
        FAIL() << "future schema version must be refused";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("newer than"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("somewhere"),
                  std::string::npos)
            << e.what();
    }

    for (double bad : {0.0, -2.0, 1.5}) {
        Json v(bad);
        EXPECT_THROW(resultSchemaVersionOf(docWith(&v), "t"), FatalError)
            << bad;
    }
    Json str("2");
    EXPECT_THROW(resultSchemaVersionOf(docWith(&str), "t"), FatalError);
}

} // namespace
} // namespace memtherm
