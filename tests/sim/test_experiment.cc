/**
 * @file
 * Unit tests for the experiment drivers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/sim/experiment.hh"

namespace memtherm
{
namespace
{

TEST(Experiment, PolicyFactoryNames)
{
    for (const char *name :
         {"No-limit", "DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS",
          "DTM-BW+PID", "DTM-ACG+PID", "DTM-CDVFS+PID"}) {
        auto p = makeCh4Policy(name);
        EXPECT_EQ(p->name(), name);
    }
    EXPECT_THROW(makeCh4Policy("DTM-TS+PID"), FatalError);
    EXPECT_THROW(makeCh4Policy("bogus"), FatalError);
}

TEST(Experiment, Ch4PolicyLineup)
{
    EXPECT_EQ(ch4PolicyNames(false).size(), 4u);
    EXPECT_EQ(ch4PolicyNames(true).size(), 7u);
}

TEST(Experiment, SuiteAndNormalization)
{
    SimConfig cfg = makeCh4Config(coolingAohs15(), false);
    cfg.copiesPerApp = 4;
    std::vector<Workload> ws{workloadMix("W1")};
    SuiteResults r = runSuite(cfg, ws, {"No-limit", "DTM-TS", "DTM-ACG"});
    ASSERT_EQ(r.size(), 1u);
    ASSERT_EQ(r.at("W1").size(), 3u);

    double nt = normalizedTo(r, "W1", "DTM-TS", "No-limit",
                             metricRunningTime);
    EXPECT_GT(nt, 1.0);
    double self = normalizedTo(r, "W1", "DTM-TS", "DTM-TS",
                               metricRunningTime);
    EXPECT_DOUBLE_EQ(self, 1.0);

    // Metric accessors agree with the result fields.
    const SimResult &ts = r.at("W1").at("DTM-TS");
    EXPECT_DOUBLE_EQ(metricTraffic(ts), ts.totalTrafficGB());
    EXPECT_DOUBLE_EQ(metricMemEnergy(ts), ts.memEnergy);
    EXPECT_DOUBLE_EQ(metricCpuEnergy(ts), ts.cpuEnergy);
    EXPECT_DOUBLE_EQ(metricTotalEnergy(ts), ts.memEnergy + ts.cpuEnergy);
    EXPECT_DOUBLE_EQ(metricL2Misses(ts), ts.totalL2Misses);
}

} // namespace
} // namespace memtherm
