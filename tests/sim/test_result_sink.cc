/**
 * @file
 * Tests for the crash-safe streaming layer: spec hashing, shard
 * arithmetic, JSONL write/scan round-trips, checkpoint/resume (including
 * torn-tail recovery and spec-drift rejection), shard merging
 * bit-identity, per-run fault injection, and the bounded-memory report
 * aggregator's order invariance.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/sim/result_sink.hh"
#include "core/sim/scenario.hh"

namespace memtherm
{
namespace
{

/** Tiny but real scenario: 2 inlet points x 1 workload x 2 policies. */
ScenarioSpec
tinySpec()
{
    ScenarioSpec spec;
    spec.name = "sink_test";
    spec.copiesPerApp = 1;
    spec.maxSimTime = 500.0;
    spec.workloads = {"W1"};
    spec.policies = {"No-limit", "DTM-TS"};
    spec.sweepTInlet = {46.0, 50.0};
    return spec;
}

/** Fresh path under the test temp dir (removes any leftover file). */
std::string
tmpPath(const std::string &name)
{
    std::string path = ::testing::TempDir() + "memtherm_" + name;
    std::remove(path.c_str());
    return path;
}

TEST(SpecHash, StableAndSensitive)
{
    ScenarioSpec spec = tinySpec();
    const std::string h = scenarioSpecHash(spec);
    ASSERT_EQ(h.size(), 16u);
    for (char c : h)
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
            << h;

    // Same spec, same hash — including through a JSON round-trip.
    EXPECT_EQ(scenarioSpecHash(tinySpec()), h);
    EXPECT_EQ(scenarioSpecHash(ScenarioSpec::fromJson(spec.toJson())), h);

    // Any edit an operator could make must change the fingerprint.
    ScenarioSpec edited = tinySpec();
    edited.maxSimTime = 501.0;
    EXPECT_NE(scenarioSpecHash(edited), h);
    edited = tinySpec();
    edited.policies.pop_back();
    EXPECT_NE(scenarioSpecHash(edited), h);
}

TEST(ShardSpec, ParseAcceptsWellFormedSlices)
{
    ShardSpec s = ShardSpec::parse("2/3");
    EXPECT_EQ(s.index, 2);
    EXPECT_EQ(s.count, 3);
    EXPECT_TRUE(s.sharded());
    EXPECT_EQ(s.label(), "2/3");
    EXPECT_FALSE(ShardSpec::parse("1/1").sharded());
}

TEST(ShardSpec, ParseRejectsMalformedSlices)
{
    for (const char *bad :
         {"", "3", "0/3", "4/3", "x/3", "1/0", "1/x", "-1/3", "1/3/5"}) {
        EXPECT_THROW(ShardSpec::parse(bad), FatalError) << bad;
    }
}

TEST(ShardSpec, RoundRobinPartitionCoversEveryIndexOnce)
{
    const int N = 3;
    for (std::size_t k = 0; k < 20; ++k) {
        int owners = 0;
        for (int i = 1; i <= N; ++i)
            owners += ShardSpec{i, N}.owns(k) ? 1 : 0;
        EXPECT_EQ(owners, 1) << "index " << k;
    }
}

TEST(ResultStream, WriteScanRoundTrip)
{
    ScenarioSpec spec = tinySpec();
    ExperimentEngine engine(2);
    StreamRunOptions opts;
    opts.path = tmpPath("roundtrip.jsonl");

    StreamRunStats stats = runScenarioStream(spec, engine, opts);
    EXPECT_EQ(stats.totalRuns, 4u);
    EXPECT_EQ(stats.executed, 4u);
    EXPECT_EQ(stats.failed, 0u);

    StreamScan scan = scanStream(opts.path);
    EXPECT_TRUE(scan.spec == spec);
    EXPECT_EQ(scan.specHash, scenarioSpecHash(spec));
    EXPECT_EQ(scan.totalRuns, 4u);
    EXPECT_FALSE(scan.droppedPartialTail);
    ASSERT_EQ(scan.records.size(), 4u);

    std::vector<bool> seen(4, false);
    for (const StreamRecord &r : scan.records) {
        EXPECT_FALSE(r.failed);
        ASSERT_LT(r.index, 4u);
        EXPECT_FALSE(seen[r.index]);
        seen[r.index] = true;
        EXPECT_EQ(r.workload, "W1");
    }
}

TEST(ResultStream, MergeMatchesDirectScenarioRun)
{
    ScenarioSpec spec = tinySpec();
    ExperimentEngine engine(2);
    StreamRunOptions opts;
    opts.path = tmpPath("merge_direct.jsonl");
    runScenarioStream(spec, engine, opts);

    MergedStream merged = mergeStreams({opts.path});
    EXPECT_TRUE(merged.errors.empty());
    EXPECT_TRUE(merged.missingRuns.empty());
    EXPECT_TRUE(merged.results == toJson(runScenario(spec, engine)));
}

TEST(ResultStream, ResumeSkipsCompletedAndDropsTornTail)
{
    ScenarioSpec spec = tinySpec();
    ExperimentEngine engine(2);

    StreamRunOptions full;
    full.path = tmpPath("resume_full.jsonl");
    runScenarioStream(spec, engine, full);
    const Json reference = mergeStreams({full.path}).results;

    // Reconstruct a crashed stream: header + first two intact records,
    // then the torn tail a kill mid-append would leave.
    std::vector<std::string> lines;
    {
        std::ifstream in(full.path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 5u);
    StreamRunOptions part;
    part.path = tmpPath("resume_part.jsonl");
    {
        std::ofstream out(part.path, std::ios::binary);
        out << lines[0] << '\n' << lines[1] << '\n' << lines[2] << '\n';
        out << "{\"type\": \"result\", \"index\": 9"; // no newline
    }

    part.resume = true;
    StreamRunStats stats = runScenarioStream(spec, engine, part);
    EXPECT_EQ(stats.skipped, 2u);
    EXPECT_EQ(stats.executed, 2u);
    EXPECT_TRUE(mergeStreams({part.path}).results == reference);

    // Nothing left: a second resume is a no-op.
    stats = runScenarioStream(spec, engine, part);
    EXPECT_EQ(stats.skipped, 4u);
    EXPECT_EQ(stats.executed, 0u);
}

TEST(ResultStream, ResumeRejectsEditedSpec)
{
    ScenarioSpec spec = tinySpec();
    ExperimentEngine engine(2);
    StreamRunOptions opts;
    opts.path = tmpPath("resume_drift.jsonl");
    runScenarioStream(spec, engine, opts);

    ScenarioSpec edited = tinySpec();
    edited.maxSimTime = 600.0;
    opts.resume = true;
    EXPECT_THROW(runScenarioStream(edited, engine, opts), FatalError);
}

TEST(ResultStream, FreshRunRefusesToClobberAnExistingStream)
{
    ScenarioSpec spec = tinySpec();
    ExperimentEngine engine(2);
    StreamRunOptions opts;
    opts.path = tmpPath("no_clobber.jsonl");
    runScenarioStream(spec, engine, opts);
    EXPECT_THROW(runScenarioStream(spec, engine, opts), FatalError);
}

TEST(ResultStream, ResumeOfMissingFileStartsFresh)
{
    // Unattended restart loops always pass --resume; the first launch
    // must not need a special case.
    ScenarioSpec spec = tinySpec();
    ExperimentEngine engine(2);
    StreamRunOptions opts;
    opts.path = tmpPath("resume_fresh.jsonl");
    opts.resume = true;
    StreamRunStats stats = runScenarioStream(spec, engine, opts);
    EXPECT_EQ(stats.skipped, 0u);
    EXPECT_EQ(stats.executed, 4u);
}

TEST(ResultStream, ThreeShardsMergeBitIdenticalToUnsharded)
{
    ScenarioSpec spec = tinySpec();
    ExperimentEngine engine(2);

    StreamRunOptions full;
    full.path = tmpPath("shard_full.jsonl");
    runScenarioStream(spec, engine, full);
    MergedStream reference = mergeStreams({full.path});

    std::vector<std::string> shardPaths;
    std::size_t shardTotal = 0;
    for (int i = 1; i <= 3; ++i) {
        StreamRunOptions opts;
        opts.path = tmpPath("shard" + std::to_string(i) + ".jsonl");
        opts.shard = {i, 3};
        StreamRunStats stats = runScenarioStream(spec, engine, opts);
        shardTotal += stats.executed;
        shardPaths.push_back(opts.path);
    }
    EXPECT_EQ(shardTotal, 4u);

    MergedStream merged = mergeStreams(shardPaths);
    EXPECT_TRUE(merged.missingRuns.empty());
    EXPECT_TRUE(merged.results == reference.results);

    // A strict subset reports exactly the absent shard's indices.
    MergedStream partial = mergeStreams({shardPaths[0], shardPaths[2]});
    EXPECT_EQ(partial.missingRuns, (std::vector<std::size_t>{1}));
}

TEST(ResultStream, InjectedRunFailureIsIsolatedAndRetriable)
{
    ScenarioSpec spec = tinySpec();
    ExperimentEngine engine(2);

    setenv("MEMTHERM_FAULT_FAIL_RUN", "1", 1);
    ScenarioResults direct = runScenario(spec, engine);
    ASSERT_EQ(direct.errors.size(), 1u);
    EXPECT_EQ(direct.errors[0].index, 1u);
    EXPECT_EQ(direct.errors[0].workload, "W1");
    EXPECT_FALSE(direct.errors[0].error.empty());

    StreamRunOptions opts;
    opts.path = tmpPath("fault.jsonl");
    StreamRunStats stats = runScenarioStream(spec, engine, opts);
    unsetenv("MEMTHERM_FAULT_FAIL_RUN");
    EXPECT_EQ(stats.executed, 4u);
    EXPECT_EQ(stats.failed, 1u);
    ASSERT_EQ(stats.failures.size(), 1u);
    EXPECT_EQ(stats.failures[0].index, 1u);

    MergedStream broken = mergeStreams({opts.path});
    ASSERT_EQ(broken.errors.size(), 1u);
    EXPECT_EQ(broken.errors[0].index, 1u);
    EXPECT_TRUE(broken.missingRuns.empty()); // error records count

    // The retry on resume replaces the error with a result,
    // bit-identical to a never-failed run.
    opts.resume = true;
    stats = runScenarioStream(spec, engine, opts);
    EXPECT_EQ(stats.skipped, 3u);
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.failed, 0u);

    StreamRunOptions clean;
    clean.path = tmpPath("fault_clean.jsonl");
    runScenarioStream(spec, engine, clean);
    MergedStream healed = mergeStreams({opts.path});
    EXPECT_TRUE(healed.errors.empty());
    EXPECT_TRUE(healed.results == mergeStreams({clean.path}).results);
}

TEST(ResultStream, MergeRejectsStreamsOfDifferentScenarios)
{
    ScenarioSpec spec = tinySpec();
    ExperimentEngine engine(2);
    StreamRunOptions a;
    a.path = tmpPath("mix_a.jsonl");
    runScenarioStream(spec, engine, a);

    ScenarioSpec other = tinySpec();
    other.maxSimTime = 600.0;
    StreamRunOptions b;
    b.path = tmpPath("mix_b.jsonl");
    runScenarioStream(other, engine, b);

    EXPECT_THROW(mergeStreams({a.path, b.path}), FatalError);
}

TEST(ResultStream, StreamBytesAreIndependentOfThreadCount)
{
    ScenarioSpec spec = tinySpec();
    StreamRunOptions serial;
    serial.path = tmpPath("det_serial.jsonl");
    StreamRunOptions parallel4;
    parallel4.path = tmpPath("det_parallel.jsonl");

    ExperimentEngine one(1);
    ExperimentEngine four(4);
    runScenarioStream(spec, one, serial);
    runScenarioStream(spec, four, parallel4);

    // Line *order* may differ with threads; the merged canonical
    // document may not.
    EXPECT_TRUE(mergeStreams({serial.path}).results ==
                mergeStreams({parallel4.path}).results);
}

TEST(OnlineAggregator, MatchesAnyFeedOrder)
{
    struct Row
    {
        const char *point, *workload, *policy;
        bool completed;
        double t, amb, dram;
    };
    const std::vector<Row> rows{
        {"p1", "W1", "No-limit", true, 100.0, 80.0, 85.0},
        {"p1", "W1", "DTM-TS", true, 120.0, 78.0, 83.0},
        {"p1", "W4", "No-limit", true, 200.0, 81.0, 86.0},
        {"p1", "W4", "DTM-TS", false, 260.0, 79.0, 84.0},
        {"p2", "W1", "No-limit", true, 90.0, 70.0, 75.0},
        {"p2", "W1", "DTM-TS", true, 99.0, 69.0, 74.0},
    };

    auto feed = [&](const std::vector<std::size_t> &order) {
        OnlineAxisAggregator agg("No-limit");
        for (std::size_t i : order) {
            const Row &r = rows[i];
            agg.add(r.point, r.workload, r.policy, r.completed, r.t,
                    r.amb, r.dram);
        }
        return agg.summaries();
    };

    std::vector<std::size_t> inOrder{0, 1, 2, 3, 4, 5};
    // Every non-baseline run arrives before its baseline.
    std::vector<std::size_t> reversed{5, 4, 3, 2, 1, 0};

    auto a = feed(inOrder);
    auto b = feed(reversed);
    ASSERT_EQ(a.size(), 2u);
    ASSERT_EQ(b.size(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        // Order changes first-appearance labels; compare by content.
        const auto &x = a[i];
        const auto &y = b[a.size() - 1 - i];
        EXPECT_EQ(x.label, y.label);
        EXPECT_EQ(x.runs, y.runs);
        EXPECT_EQ(x.incomplete, y.incomplete);
        EXPECT_EQ(x.maxAmb, y.maxAmb);
        EXPECT_EQ(x.maxDram, y.maxDram);
        EXPECT_DOUBLE_EQ(x.normSum, y.normSum);
        EXPECT_EQ(x.normN, y.normN);
    }

    // Spot-check p1: 4 runs, one incomplete; normalization includes the
    // incomplete DTM-TS run (the baseline gates, not the run itself):
    // 1.0 + 1.2 + 1.0 + 1.3 = 4.5 over 4 runs.
    const auto &p1 = a[0];
    EXPECT_EQ(p1.label, "p1");
    EXPECT_EQ(p1.runs, 4u);
    EXPECT_EQ(p1.incomplete, 1u);
    EXPECT_EQ(p1.maxAmb, 81.0);
    EXPECT_EQ(p1.maxDram, 86.0);
    EXPECT_DOUBLE_EQ(p1.normSum, 4.5);
    EXPECT_EQ(p1.normN, 4u);
}

TEST(OnlineAggregator, UnusableBaselineYieldsNoNormalization)
{
    OnlineAxisAggregator agg("No-limit");
    // The baseline never completed: nothing in the group normalizes.
    agg.add("p1", "W1", "DTM-TS", true, 120.0, 78.0, 83.0);
    agg.add("p1", "W1", "No-limit", false, 100.0, 80.0, 85.0);
    auto s = agg.summaries();
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s[0].runs, 2u);
    EXPECT_EQ(s[0].incomplete, 1u);
    EXPECT_EQ(s[0].normN, 0u);
    EXPECT_DOUBLE_EQ(s[0].normSum, 0.0);
}

TEST(ResultStream, HeaderSchemaVersionAcceptRejectMatrix)
{
    ScenarioSpec spec = tinySpec();
    ExperimentEngine engine(2);
    StreamRunOptions opts;
    opts.path = tmpPath("schema.jsonl");
    runScenarioStream(spec, engine, opts);

    std::vector<std::string> lines;
    {
        std::ifstream in(opts.path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_GE(lines.size(), 2u);

    // A freshly written header records this binary's document schema.
    Json hdr = Json::parse(lines[0]);
    const Json *sv = hdr.find("schema_version");
    ASSERT_NE(sv, nullptr);
    EXPECT_EQ(static_cast<int>(sv->asNumber()), kResultSchemaVersion);

    // Rewrite the stream with a patched header and re-scan it.
    auto withHeader = [&](const Json &header, const std::string &name) {
        std::string path = tmpPath(name);
        std::ofstream out(path, std::ios::binary);
        out << header.dump(0) << '\n';
        for (std::size_t i = 1; i < lines.size(); ++i)
            out << lines[i] << '\n';
        return path;
    };

    // Legacy stream (written before schema versioning): accepted as v1.
    Json legacy = Json::object();
    for (const auto &[k, v] : hdr.asObject())
        if (k != "schema_version")
            legacy.set(k, v);
    StreamScan scan =
        scanStream(withHeader(legacy, "schema_legacy.jsonl"));
    EXPECT_EQ(scan.records.size(), 4u);

    // Older explicit version: accepted.
    Json v1 = legacy;
    v1.set("schema_version", 1);
    EXPECT_EQ(scanStream(withHeader(v1, "schema_v1.jsonl")).records.size(),
              4u);

    // A stream from a newer binary: refused with a clear error.
    Json future = legacy;
    future.set("schema_version", kResultSchemaVersion + 1);
    EXPECT_THROW(scanStream(withHeader(future, "schema_future.jsonl")),
                 FatalError);

    // Nonsense versions: refused.
    Json zero = legacy;
    zero.set("schema_version", 0);
    EXPECT_THROW(scanStream(withHeader(zero, "schema_zero.jsonl")),
                 FatalError);
}

TEST(ResultStream, ScanRejectsMidFileCorruption)
{
    ScenarioSpec spec = tinySpec();
    ExperimentEngine engine(2);
    StreamRunOptions opts;
    opts.path = tmpPath("corrupt.jsonl");
    runScenarioStream(spec, engine, opts);

    // Corrupt a *middle* line: that cannot come from a crash of the
    // append-and-flush writer, so it must be an error, not a skip.
    std::vector<std::string> lines;
    {
        std::ifstream in(opts.path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_GE(lines.size(), 3u);
    std::string corrupted = tmpPath("corrupt_mid.jsonl");
    {
        std::ofstream out(corrupted, std::ios::binary);
        out << lines[0] << '\n';
        out << "{\"type\": \"result\", \"index\"\n"; // terminated garbage
        for (std::size_t i = 2; i < lines.size(); ++i)
            out << lines[i] << '\n';
    }
    EXPECT_THROW(scanStream(corrupted), FatalError);
}

TEST(ResultStream, TailTornInsideAnEscapedStringIsStillATail)
{
    // Regression: the torn-tail classifier keys on the missing final
    // newline alone, so a tear landing *inside an escape sequence* of a
    // JSON string — after the backslash of '\"', leaving the string
    // open — must still read as a crash tail (dropped, resumable), not
    // as corruption.
    ScenarioSpec spec = tinySpec();
    ExperimentEngine engine(2);
    StreamRunOptions opts;
    opts.path = tmpPath("escape_tail.jsonl");
    runScenarioStream(spec, engine, opts);

    std::vector<std::string> lines;
    {
        std::ifstream in(opts.path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 5u);

    // Tears at increasing awkwardness: mid-escape (trailing lone
    // backslash), just after an escaped quote (string still open), and
    // a lone opening quote.
    const std::vector<std::string> tails{
        R"({"type":"result","index":9,"point":"a\)",
        R"({"type":"result","index":9,"point":"a\"b)",
        R"({"type":"result","index":9,"point":")",
    };
    for (std::size_t t = 0; t < tails.size(); ++t) {
        const std::string torn =
            tmpPath("escape_tail_" + std::to_string(t) + ".jsonl");
        std::size_t intact_bytes = 0;
        {
            std::ofstream out(torn, std::ios::binary);
            for (const std::string &l : lines) {
                out << l << '\n';
                intact_bytes += l.size() + 1;
            }
            out << tails[t]; // no newline: the crash signature
        }
        StreamScan scan = scanStream(torn);
        EXPECT_TRUE(scan.droppedPartialTail) << tails[t];
        EXPECT_EQ(scan.records.size(), 4u) << tails[t];
        EXPECT_EQ(scan.cleanSize, intact_bytes) << tails[t];

        // The same bytes WITH a terminating newline cannot be a crash
        // of this writer: that is mid-file corruption, a hard error.
        const std::string terminated =
            tmpPath("escape_term_" + std::to_string(t) + ".jsonl");
        {
            std::ofstream out(terminated, std::ios::binary);
            for (const std::string &l : lines)
                out << l << '\n';
            out << tails[t] << '\n';
        }
        EXPECT_THROW(scanStream(terminated), FatalError) << tails[t];
    }
}

TEST(ResultStream, MergeAcceptsMixedV1AndV2ShardHeaders)
{
    // One shard set, three vintages of writer: a version-absent legacy
    // header (reads as v1), an explicit v2, and this binary's header.
    // Merging must accept all three and reproduce the unsharded
    // document bit for bit.
    ScenarioSpec spec = tinySpec();
    ExperimentEngine engine(2);

    StreamRunOptions full;
    full.path = tmpPath("mixed_full.jsonl");
    runScenarioStream(spec, engine, full);
    const Json reference = mergeStreams({full.path}).results;

    std::vector<std::string> shardPaths;
    for (int i = 1; i <= 3; ++i) {
        StreamRunOptions opts;
        opts.path = tmpPath("mixed_shard" + std::to_string(i) + ".jsonl");
        opts.shard = {i, 3};
        runScenarioStream(spec, engine, opts);
        shardPaths.push_back(opts.path);
    }

    // Rewrite shard 1's header as legacy (no schema_version member) and
    // shard 2's as an explicit v2; shard 3 keeps this binary's header.
    auto rewriteHeader = [](const std::string &path, int version) {
        std::vector<std::string> lines;
        {
            std::ifstream in(path);
            std::string line;
            while (std::getline(in, line))
                lines.push_back(line);
        }
        Json hdr = Json::parse(lines[0]);
        Json patched = Json::object();
        for (const auto &[k, v] : hdr.asObject()) {
            if (k == "schema_version") {
                if (version > 0)
                    patched.set(k, version);
                continue;
            }
            patched.set(k, v);
        }
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << patched.dump(0) << '\n';
        for (std::size_t i = 1; i < lines.size(); ++i)
            out << lines[i] << '\n';
    };
    rewriteHeader(shardPaths[0], 0); // legacy: absent -> v1
    rewriteHeader(shardPaths[1], 2);

    MergedStream merged = mergeStreams(shardPaths);
    EXPECT_TRUE(merged.errors.empty());
    EXPECT_TRUE(merged.missingRuns.empty());
    EXPECT_TRUE(merged.results == reference);
}

TEST(ResultSchema, PinnedOlderReaderRefusesNewerDocument)
{
    // A v3 document (per-bank fields) against a reader pinned to v2:
    // the max_version override must produce the upgrade refusal, the
    // same document under the default cap must pass.
    Json doc = Json::object();
    doc.set("schema_version", 3);
    EXPECT_EQ(resultSchemaVersionOf(doc, "'doc'"), 3);
    try {
        (void)resultSchemaVersionOf(doc, "'doc'", /*max_version=*/2);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("schema version 3"), std::string::npos)
            << what;
        EXPECT_NE(what.find("2"), std::string::npos) << what;
    }
    // Version-absent documents read as v1 under any cap.
    Json legacy = Json::object();
    EXPECT_EQ(resultSchemaVersionOf(legacy, "'doc'", 2), 1);
}

TEST(ResultSchema, DocumentsStampTheMinimumVersionTheyNeed)
{
    // The stamping ladder: plain results stay version-absent (exact
    // historical bytes), refresh-coupled results stamp 2, bank-grid
    // results stamp 3.
    ScenarioSpec plain = tinySpec();
    ExperimentEngine engine(2);
    Json doc1 = toJson(runScenario(plain, engine));
    EXPECT_EQ(doc1.find("schema_version"), nullptr);

    ScenarioSpec refreshed = tinySpec();
    refreshed.refresh.name = "ddr2_2x";
    Json doc2 = toJson(runScenario(refreshed, engine));
    const Json *v2 = doc2.find("schema_version");
    ASSERT_NE(v2, nullptr);
    EXPECT_EQ(static_cast<int>(v2->asNumber()), 2);

    ScenarioSpec gridded = tinySpec();
    gridded.thermalModel.name = "bank_grid";
    Json doc3 = toJson(runScenario(gridded, engine));
    const Json *v3 = doc3.find("schema_version");
    ASSERT_NE(v3, nullptr);
    EXPECT_EQ(static_cast<int>(v3->asNumber()), kResultSchemaVersion);
}

} // namespace
} // namespace memtherm
