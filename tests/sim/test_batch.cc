/**
 * @file
 * Tests for batched lockstep execution and shared-prefix caching: the
 * ThermalBatchState SoA container, fork-from-snapshot bit-identity for
 * every registered policy family (including mid-run remap share state
 * and the sensor-noise RNG stream position), chunked engine execution,
 * failure isolation, equivalence-class derivation, and scenario-level
 * batched-vs-scalar equality.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "core/sim/engine.hh"
#include "core/sim/registry.hh"
#include "core/sim/scenario.hh"
#include "core/thermal/thermal_batch.hh"

namespace memtherm
{
namespace
{

/**
 * A configuration that exercises every batching hazard at once: noisy
 * sensors (the fork must preserve the RNG stream position), a skewed
 * traffic shape plus a remap period (the remap family migrates shares
 * mid-run), and a batch small enough to finish fast.
 */
SimConfig
batchyConfig()
{
    SimConfig cfg = makeCh4Config(coolingAohs15(), false);
    cfg.copiesPerApp = 2;
    cfg.sensorNoiseSigma = 0.3;
    cfg.sensorSeed = 20260808;
    cfg.trafficShares = {0.55, 0.25, 0.12, 0.08};
    cfg.remapInterval = 0.25;
    return cfg;
}

PolicyBuildContext
contextOf(const SimConfig &cfg)
{
    return PolicyBuildContext{cfg.dtmInterval, cfg.emergencyLevels,
                              cfg.remapInterval, cfg.remapHysteresis,
                              cfg.trafficShares};
}

/** Exact (bitwise) equality of two results, traces included. */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.runningTime, b.runningTime);
    EXPECT_EQ(a.totalInstr, b.totalInstr);
    EXPECT_EQ(a.totalReadGB, b.totalReadGB);
    EXPECT_EQ(a.totalWriteGB, b.totalWriteGB);
    EXPECT_EQ(a.totalL2Misses, b.totalL2Misses);
    EXPECT_EQ(a.memEnergy, b.memEnergy);
    EXPECT_EQ(a.cpuEnergy, b.cpuEnergy);
    EXPECT_EQ(a.maxAmb, b.maxAmb);
    EXPECT_EQ(a.maxDram, b.maxDram);
    EXPECT_EQ(a.timeAboveAmbTdp, b.timeAboveAmbTdp);
    EXPECT_EQ(a.timeAboveDramTdp, b.timeAboveDramTdp);
    EXPECT_EQ(a.peakAmbPerDimm, b.peakAmbPerDimm);
    EXPECT_EQ(a.peakDramPerDimm, b.peakDramPerDimm);
    EXPECT_EQ(a.avgPowerPerDimm, b.avgPowerPerDimm);
    EXPECT_EQ(a.refreshBwLossPerDimm, b.refreshBwLossPerDimm);
    EXPECT_EQ(a.refreshEnergyPerDimm, b.refreshEnergyPerDimm);
    EXPECT_EQ(a.bankGridX, b.bankGridX);
    EXPECT_EQ(a.bankGridZ, b.bankGridZ);
    EXPECT_EQ(a.peakBankDramPerDimm, b.peakBankDramPerDimm);
    EXPECT_EQ(a.ambTrace.values(), b.ambTrace.values());
    EXPECT_EQ(a.dramTrace.values(), b.dramTrace.values());
    EXPECT_EQ(a.inletTrace.values(), b.inletTrace.values());
    EXPECT_EQ(a.cpuPowerTrace.values(), b.cpuPowerTrace.values());
    EXPECT_EQ(a.bwTrace.values(), b.bwTrace.values());
}

TEST(ThermalBatchState, InitAndLaneSlices)
{
    ThermalBatchState st(3, 4);
    EXPECT_EQ(st.lanes(), 3);
    EXPECT_EQ(st.dimms(), 4);
    st.initLane(1, 10.0, 2.0, 42.0);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(st.ambTemp(1)[i], 42.0);
        EXPECT_EQ(st.dramTemp(1)[i], 42.0);
        EXPECT_EQ(st.peakAmb(1)[i], 42.0);
        EXPECT_EQ(st.peakDram(1)[i], 42.0);
        EXPECT_EQ(st.energy(1)[i], 0.0);
    }
    EXPECT_EQ(st.energyTime(1), 0.0);
}

TEST(ThermalBatchState, AdvanceMatchesExponentialStep)
{
    ThermalBatchState st(1, 2);
    st.initLane(0, 10.0, 2.0, 50.0);
    st.stableAmb(0)[0] = 90.0;
    st.stableAmb(0)[1] = 70.0;
    st.stableDram(0)[0] = 80.0;
    st.stableDram(0)[1] = 60.0;
    const Seconds dt = 0.5;
    st.ensureDecay(dt);
    st.advanceLane(0);
    const double da = 1.0 - std::exp(-dt / 10.0);
    const double dd = 1.0 - std::exp(-dt / 2.0);
    EXPECT_EQ(st.ambTemp(0)[0], 50.0 + (90.0 - 50.0) * da);
    EXPECT_EQ(st.ambTemp(0)[1], 50.0 + (70.0 - 50.0) * da);
    EXPECT_EQ(st.dramTemp(0)[0], 50.0 + (80.0 - 50.0) * dd);
    EXPECT_EQ(st.dramTemp(0)[1], 50.0 + (60.0 - 50.0) * dd);
}

TEST(ThermalBatchState, CopyLaneIsExact)
{
    ThermalBatchState st(2, 3);
    st.initLane(0, 5.0, 1.0, 33.0);
    st.initLane(1, 5.0, 1.0, 0.0);
    st.stableAmb(0)[0] = 61.0;
    st.stableDram(0)[2] = 71.5;
    st.energy(0)[1] = 123.25;
    st.energyTime(0) = 7.0;
    st.copyLane(1, 0);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(st.ambTemp(1)[i], st.ambTemp(0)[i]);
        EXPECT_EQ(st.dramTemp(1)[i], st.dramTemp(0)[i]);
        EXPECT_EQ(st.peakAmb(1)[i], st.peakAmb(0)[i]);
        EXPECT_EQ(st.peakDram(1)[i], st.peakDram(0)[i]);
        EXPECT_EQ(st.energy(1)[i], st.energy(0)[i]);
    }
    EXPECT_EQ(st.energyTime(1), 7.0);
}

TEST(ThermalBatchState, Panics)
{
    EXPECT_THROW(ThermalBatchState(0, 4), PanicError);
    EXPECT_THROW(ThermalBatchState(1, 0), PanicError);
    ThermalBatchState st(1, 2);
    EXPECT_THROW(st.initLane(1, 1.0, 1.0, 0.0), PanicError);
    EXPECT_THROW(st.initLane(0, 0.0, 1.0, 0.0), PanicError);
    EXPECT_THROW(st.ensureDecay(-1.0), PanicError);
}

/**
 * The central pin: for EVERY registered policy, the batched run forked
 * from the shared prefix is bit-identical to a from-scratch scalar run.
 * All registry policies ride in one batch, so every family's divergence
 * point forces a fork, the remap family carries migrated share state
 * across it, and the noisy sensors pin the RNG stream position.
 */
TEST(RunBatch, ForkedRunsBitIdenticalToScalarForEveryPolicy)
{
    const SimConfig cfg = batchyConfig();
    const Workload mix = workloadMix("W1");
    const std::vector<std::string> names =
        PolicyRegistry::instance().names();
    ASSERT_GE(names.size(), 8u);

    ThermalSimulator sim(cfg);
    ThermalSimulator::Scratch scratch;

    std::vector<std::unique_ptr<DtmPolicy>> policies;
    std::vector<DtmPolicy *> ptrs;
    for (const auto &n : names) {
        policies.push_back(
            PolicyRegistry::instance().make(n, contextOf(cfg)));
        ptrs.push_back(policies.back().get());
    }

    BatchStats stats;
    std::vector<SimResult> batched =
        sim.runBatch(mix, ptrs, scratch, &stats);
    ASSERT_EQ(batched.size(), names.size());

    // The batch must have actually forked and actually shared: a zero
    // fork count would make the fork-identity claim vacuous, and a zero
    // hit rate would mean no prefix was ever shared.
    EXPECT_GT(stats.forks, 0u);
    EXPECT_GT(stats.hitRate(), 0.0);
    EXPECT_LE(stats.simulatedWindows, stats.logicalWindows);

    double window_sum = 0.0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        auto fresh =
            PolicyRegistry::instance().make(names[i], contextOf(cfg));
        SimResult scalar = sim.run(mix, *fresh, scratch);
        expectIdentical(batched[i], scalar);
        window_sum += scalar.runningTime / cfg.window;
    }
    // Logical windows account every run's full trajectory.
    EXPECT_NEAR(stats.logicalWindows, window_sum, 1e-6 * window_sum);
}

/**
 * Fork-identity survives the temperature->refresh feedback edge. The
 * refresh model reads the lane's own per-DIMM DRAM temperatures every
 * window and feeds power back into the same lane, so a forked lane that
 * mis-copied any thermal state would diverge within one window. Every
 * registered policy rides in one refresh-coupled batch and must stay
 * bit-identical to its from-scratch scalar run.
 */
TEST(RunBatch, ForkedRunsBitIdenticalUnderRefreshCoupling)
{
    SimConfig cfg = batchyConfig();
    cfg.refresh = refreshModelByName("ddr2_2x");
    const Workload mix = workloadMix("W1");
    const std::vector<std::string> names =
        PolicyRegistry::instance().names();

    ThermalSimulator sim(cfg);
    ThermalSimulator::Scratch scratch;

    std::vector<std::unique_ptr<DtmPolicy>> policies;
    std::vector<DtmPolicy *> ptrs;
    for (const auto &n : names) {
        policies.push_back(
            PolicyRegistry::instance().make(n, contextOf(cfg)));
        ptrs.push_back(policies.back().get());
    }

    BatchStats stats;
    std::vector<SimResult> batched =
        sim.runBatch(mix, ptrs, scratch, &stats);
    ASSERT_EQ(batched.size(), names.size());
    EXPECT_GT(stats.forks, 0u);
    EXPECT_GT(stats.hitRate(), 0.0);

    for (std::size_t i = 0; i < names.size(); ++i) {
        auto fresh =
            PolicyRegistry::instance().make(names[i], contextOf(cfg));
        SimResult scalar = sim.run(mix, *fresh, scratch);
        expectIdentical(batched[i], scalar);
        // The coupling actually ran: the nominal DDR2 band charges
        // every DIMM a nonzero refresh tax from the first window.
        ASSERT_FALSE(batched[i].refreshBwLossPerDimm.empty());
        for (double loss : batched[i].refreshBwLossPerDimm)
            EXPECT_GT(loss, 0.0);
        for (Joules e : batched[i].refreshEnergyPerDimm)
            EXPECT_GT(e, 0.0);
    }
}

/** A batch of one is exactly the scalar path. */
TEST(RunBatch, SingletonBatchMatchesScalar)
{
    const SimConfig cfg = batchyConfig();
    const Workload mix = workloadMix("W1");
    ThermalSimulator sim(cfg);
    ThermalSimulator::Scratch scratch;

    auto p1 = PolicyRegistry::instance().make("DTM-TS", contextOf(cfg));
    auto p2 = PolicyRegistry::instance().make("DTM-TS", contextOf(cfg));
    std::vector<DtmPolicy *> ptrs{p1.get()};
    BatchStats stats;
    std::vector<SimResult> batched =
        sim.runBatch(mix, ptrs, scratch, &stats);
    ASSERT_EQ(batched.size(), 1u);
    SimResult scalar = sim.run(mix, *p2, scratch);
    expectIdentical(batched[0], scalar);
    EXPECT_EQ(stats.forks, 0u);
    EXPECT_EQ(stats.hitRate(), 0.0);
}

/** Identical policies never diverge: one lane serves the whole batch. */
TEST(RunBatch, IdenticalPoliciesShareTheEntireRun)
{
    SimConfig cfg = makeCh4Config(coolingAohs15(), false);
    cfg.copiesPerApp = 1;
    const Workload mix = workloadMix("W2");
    ThermalSimulator sim(cfg);
    ThermalSimulator::Scratch scratch;

    auto a = PolicyRegistry::instance().make("No-limit", contextOf(cfg));
    auto b = PolicyRegistry::instance().make("No-limit", contextOf(cfg));
    std::vector<DtmPolicy *> ptrs{a.get(), b.get()};
    BatchStats stats;
    std::vector<SimResult> batched =
        sim.runBatch(mix, ptrs, scratch, &stats);
    expectIdentical(batched[0], batched[1]);
    EXPECT_EQ(stats.forks, 0u);
    EXPECT_NEAR(stats.hitRate(), 0.5, 1e-9);
}

/** Collects results positionally; failures recorded by index. */
class TestSink : public RunSink
{
  public:
    explicit TestSink(std::size_t n) : results(n), ok(n, false) {}

    void onResult(std::size_t i, SimResult &&r, double) override
    {
        results[i] = std::move(r);
        ok[i] = true;
    }

    void onFailure(std::size_t i, std::exception_ptr) override
    {
        failed.push_back(i);
    }

    std::vector<SimResult> results;
    std::vector<bool> ok;
    std::vector<std::size_t> failed;
};

std::vector<ExperimentEngine::Run>
classRuns(const SimConfig &cfg, const Workload &mix,
          const std::vector<std::string> &policy_names)
{
    std::vector<ExperimentEngine::Run> runs;
    for (const auto &n : policy_names)
        runs.push_back({cfg, mix, n, {}});
    return runs;
}

/**
 * Engine-level batching: every chunk width gives results bit-identical
 * to the scalar engine, under both the inline (1-thread) and threaded
 * engines.
 */
TEST(RunBatched, EveryChunkWidthMatchesScalarEngine)
{
    const SimConfig cfg = batchyConfig();
    const Workload mix = workloadMix("W1");
    const std::vector<std::string> names{"No-limit", "DTM-TS", "DTM-BW",
                                         "DTM-ACG", "DTM-CDVFS"};
    auto runs = classRuns(cfg, mix, names);
    const std::vector<ExperimentEngine::RunClass> classes{
        {0, runs.size()}};

    ExperimentEngine serial(1);
    std::vector<SimResult> reference = serial.run(runs);

    for (int width : {1, 2, 3, 5, 0}) {
        for (int threads : {1, 3}) {
            ExperimentEngine engine(threads);
            TestSink sink(runs.size());
            BatchStats stats;
            engine.runBatched(runs, classes, width, sink, &stats);
            EXPECT_TRUE(sink.failed.empty());
            for (std::size_t i = 0; i < runs.size(); ++i) {
                ASSERT_TRUE(sink.ok[i]);
                expectIdentical(sink.results[i], reference[i]);
            }
            EXPECT_GT(stats.logicalWindows, 0.0);
            EXPECT_GE(stats.logicalWindows, stats.simulatedWindows);
        }
    }
}

/** A bad policy fails only its own run; chunk-mates still complete. */
TEST(RunBatched, PolicyBuildFailureIsIsolated)
{
    SimConfig cfg = makeCh4Config(coolingAohs15(), false);
    cfg.copiesPerApp = 1;
    const Workload mix = workloadMix("W1");
    auto runs = classRuns(cfg, mix, {"No-limit", "bogus", "DTM-TS"});
    const std::vector<ExperimentEngine::RunClass> classes{{0, 3}};

    ExperimentEngine engine(1);
    TestSink sink(3);
    engine.runBatched(runs, classes, 3, sink, nullptr);
    ASSERT_EQ(sink.failed.size(), 1u);
    EXPECT_EQ(sink.failed[0], 1u);
    EXPECT_TRUE(sink.ok[0]);
    EXPECT_TRUE(sink.ok[2]);

    // The surviving runs are still bit-identical to scalar execution.
    ExperimentEngine serial(1);
    auto good = classRuns(cfg, mix, {"No-limit", "DTM-TS"});
    std::vector<SimResult> reference = serial.run(good);
    expectIdentical(sink.results[0], reference[0]);
    expectIdentical(sink.results[2], reference[1]);
}

TEST(RunBatched, RejectsNonTilingClasses)
{
    SimConfig cfg = makeCh4Config(coolingAohs15(), false);
    cfg.copiesPerApp = 1;
    auto runs = classRuns(cfg, workloadMix("W1"), {"No-limit", "DTM-TS"});
    ExperimentEngine engine(1);
    TestSink sink(2);
    EXPECT_THROW(engine.runBatched(runs, {{0, 1}}, 2, sink, nullptr),
                 PanicError);
    EXPECT_THROW(engine.runBatched(runs, {{1, 1}, {0, 1}}, 2, sink,
                                   nullptr),
                 PanicError);
}

/** lower() derives one class per (point, workload), policy-fastest. */
TEST(Scenario, EquivalenceClassesFromLowering)
{
    ScenarioSpec spec;
    spec.name = "classes";
    spec.workloads = {"W1", "W2"};
    spec.policies = {"No-limit", "DTM-TS", "DTM-BW"};
    spec.sweepTInlet = {30.0, 44.0};
    spec.copiesPerApp = 1;

    LoweredScenario low = spec.lower();
    ASSERT_EQ(low.totalRuns(), 12u);
    ASSERT_EQ(low.classes.size(), 4u);
    std::size_t base = 0;
    for (const auto &c : low.classes) {
        EXPECT_EQ(c.first, base);
        EXPECT_EQ(c.count, 3u);
        base += c.count;
    }
}

/** Platform runs are singleton classes (per-policy config tweaks). */
TEST(Scenario, PlatformScenariosGetSingletonClasses)
{
    ScenarioSpec spec;
    spec.name = "plat";
    spec.platform = "SR1500AL";
    spec.workloads = {"W1"};
    spec.policies = {"No-limit", "DTM-BW"};
    spec.copiesPerApp = 1;

    LoweredScenario low = spec.lower();
    ASSERT_EQ(low.classes.size(), low.totalRuns());
    for (std::size_t i = 0; i < low.classes.size(); ++i) {
        EXPECT_EQ(low.classes[i].first, i);
        EXPECT_EQ(low.classes[i].count, 1u);
    }
}

/** Scenario-level: batched execution equals scalar, run for run. */
TEST(Scenario, RunScenarioBatchedMatchesScalar)
{
    ScenarioSpec spec;
    spec.name = "batched_vs_scalar";
    spec.workloads = {"W1"};
    spec.policies = {"No-limit", "DTM-TS", "DTM-BW", "DTM-ACG"};
    spec.copiesPerApp = 1;
    spec.sensorNoiseSigma = 0.25;
    spec.sensorSeed = 77;

    ExperimentEngine engine(2);
    ScenarioResults scalar = runScenario(spec, engine);
    BatchStats stats;
    ScenarioResults batched =
        runScenarioBatched(spec, engine, 4, &stats);

    ASSERT_TRUE(scalar.errors.empty());
    ASSERT_TRUE(batched.errors.empty());
    ASSERT_EQ(batched.points.size(), scalar.points.size());
    for (std::size_t p = 0; p < scalar.points.size(); ++p) {
        EXPECT_EQ(batched.points[p].label, scalar.points[p].label);
        for (const auto &[w, by_policy] : scalar.points[p].suite) {
            for (const auto &[pol, r] : by_policy) {
                ASSERT_TRUE(
                    batched.points[p].suite.at(w).count(pol));
                expectIdentical(batched.points[p].suite.at(w).at(pol),
                                r);
            }
        }
    }
    EXPECT_GT(stats.hitRate(), 0.0);
}

} // namespace
} // namespace memtherm
