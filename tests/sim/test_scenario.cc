/**
 * @file
 * Unit tests for the declarative scenario API: lossless JSON round-trips
 * (including every shipped example scenario), sweep lowering, platform
 * scenarios, registry-backed diagnostics, and the acceptance pin — a
 * scenario run is bit-identical to the equivalent hand-coded
 * ExperimentEngine invocation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/sim/registry.hh"
#include "core/sim/scenario.hh"
#include "testbed/platform.hh"

#ifndef MEMTHERM_SOURCE_DIR
#error "tests need MEMTHERM_SOURCE_DIR (set by CMakeLists.txt)"
#endif

namespace memtherm
{
namespace
{

std::string
scenarioPath(const std::string &file)
{
    return std::string(MEMTHERM_SOURCE_DIR) + "/examples/scenarios/" + file;
}

/** Exact (bitwise) equality of two results, traces included. */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.runningTime, b.runningTime);
    EXPECT_EQ(a.totalInstr, b.totalInstr);
    EXPECT_EQ(a.totalReadGB, b.totalReadGB);
    EXPECT_EQ(a.totalWriteGB, b.totalWriteGB);
    EXPECT_EQ(a.totalL2Misses, b.totalL2Misses);
    EXPECT_EQ(a.memEnergy, b.memEnergy);
    EXPECT_EQ(a.cpuEnergy, b.cpuEnergy);
    EXPECT_EQ(a.maxAmb, b.maxAmb);
    EXPECT_EQ(a.maxDram, b.maxDram);
    EXPECT_EQ(a.timeAboveAmbTdp, b.timeAboveAmbTdp);
    EXPECT_EQ(a.timeAboveDramTdp, b.timeAboveDramTdp);
    EXPECT_EQ(a.peakAmbPerDimm, b.peakAmbPerDimm);
    EXPECT_EQ(a.peakDramPerDimm, b.peakDramPerDimm);
    EXPECT_EQ(a.avgPowerPerDimm, b.avgPowerPerDimm);
    EXPECT_EQ(a.refreshBwLossPerDimm, b.refreshBwLossPerDimm);
    EXPECT_EQ(a.refreshEnergyPerDimm, b.refreshEnergyPerDimm);
    EXPECT_EQ(a.bankGridX, b.bankGridX);
    EXPECT_EQ(a.bankGridZ, b.bankGridZ);
    EXPECT_EQ(a.peakBankDramPerDimm, b.peakBankDramPerDimm);
    EXPECT_EQ(a.ambTrace.values(), b.ambTrace.values());
    EXPECT_EQ(a.dramTrace.values(), b.dramTrace.values());
    EXPECT_EQ(a.inletTrace.values(), b.inletTrace.values());
    EXPECT_EQ(a.cpuPowerTrace.values(), b.cpuPowerTrace.values());
    EXPECT_EQ(a.bwTrace.values(), b.bwTrace.values());
}

TEST(ScenarioSpec, FullSpecRoundTripsLosslessly)
{
    ScenarioSpec s;
    s.name = "everything";
    s.description = "all knobs set";
    s.cooling = "FDHS_1.0";
    s.ambient = "integrated";
    s.tInlet = 47.25;
    s.copiesPerApp = 3;
    s.instrScale = 0.5;
    s.maxSimTime = 1234.5;
    s.dtmInterval = 0.02;
    s.remapInterval = 0.04;
    s.remapHysteresis = 1.5;
    s.sensorNoiseSigma = 0.75;
    s.sensorQuant = 0.5;
    s.sensorSeed = 1234567;
    s.emergencyLevels = "pe1950";
    s.dvfs = "xeon5160";
    s.memoryOrg = MemoryOrgSpec{"2x4", std::nullopt};
    s.workloads = {"W1", "swimx4"};
    s.policies = {"No-limit", "DTM-BW+PID"};
    s.trafficShape = TrafficShapeSpec{"hot_dimm0", {}};
    s.sweepMemoryOrg = {MemoryOrgSpec{"1x4", std::nullopt},
                        MemoryOrgSpec{"", MemoryOrgConfig{2, 8}}};
    s.sweepTrafficShape = {TrafficShapeSpec{"front_heavy", {}},
                           TrafficShapeSpec{"back_heavy", {}}};
    s.sweepCooling = {"AOHS_1.5", "AOHS_3.0"};
    s.sweepTInlet = {46.0, 50.5};
    s.sweepCopies = {2, 4};
    s.sweepSensorNoise = {0.0, 0.1};
    s.sweepDtmInterval = {0.01, 0.05};
    s.sweepEmergencyLevels = {"ch4", "sr1500al"};
    s.sweepDvfs = {"simulated_cmp", "xeon5160"};
    s.refresh = RefreshSpec{"aldram", {}};
    s.sweepRefresh = {RefreshSpec{"none", {}},
                      RefreshSpec{"", {{-273.15, 0.016, 0.15, 1.0},
                                       {85.0, 0.032, 0.3, 1.1}}}};

    Json j = s.toJson();
    ScenarioSpec back = ScenarioSpec::fromJson(Json::parse(j.dump()));
    EXPECT_EQ(back, s);
    // parse -> serialize -> parse is a fixed point at the JSON level too.
    EXPECT_EQ(back.toJson(), j);
}

TEST(ScenarioSpec, ExampleScenariosRoundTripAndLower)
{
    const char *files[] = {"ch4_baseline.json", "fan_failure.json",
                           "datacenter_ambient.json", "sensor_noise.json",
                           "dtm_sensitivity.json", "memory_org.json",
                           "hot_dimm.json", "hot_dimm_remap.json",
                           "refresh_runaway.json"};
    for (const char *f : files) {
        SCOPED_TRACE(f);
        ScenarioSpec spec = ScenarioSpec::load(scenarioPath(f));
        EXPECT_NO_THROW(spec.validate());

        // parse -> serialize -> parse is identical.
        Json j = spec.toJson();
        ScenarioSpec back = ScenarioSpec::fromJson(Json::parse(j.dump()));
        EXPECT_EQ(back, spec);
        EXPECT_EQ(back.toJson(), j);

        LoweredScenario low = spec.lower();
        EXPECT_FALSE(low.points.empty());
        EXPECT_EQ(low.totalRuns(), low.points.size() *
                                       spec.workloads.size() *
                                       spec.policies.size());
    }
}

TEST(ScenarioSpec, SweepLoweringSpansTheGrid)
{
    ScenarioSpec s;
    s.name = "grid";
    s.tInlet = 40.0; // superseded by the sweep axis below
    s.copiesPerApp = 9;
    s.workloads = {"W1"};
    s.policies = {"No-limit", "DTM-TS"};
    s.sweepCooling = {"AOHS_1.5", "FDHS_1.0"};
    s.sweepTInlet = {46.0, 52.0};
    s.sweepSensorNoise = {0.0, 0.5};

    LoweredScenario low = s.lower();
    ASSERT_EQ(low.points.size(), 8u); // 2 coolings x 2 inlets x 2 noises
    EXPECT_EQ(low.totalRuns(), 8u * 1u * 2u);

    EXPECT_EQ(low.points[0].label, "cooling=AOHS_1.5,inlet=46,noise=0");
    EXPECT_EQ(low.points.back().label,
              "cooling=FDHS_1.0,inlet=52,noise=0.5");

    for (const auto &pt : low.points) {
        EXPECT_EQ(pt.cfg.copiesPerApp, 9);       // scalar override holds
        EXPECT_NE(pt.cfg.ambient.tInlet, 40.0);  // axis wins over scalar
        ASSERT_EQ(pt.runs.size(), 2u);
        EXPECT_EQ(pt.runs[0].policy, "No-limit");
        EXPECT_EQ(pt.runs[1].policy, "DTM-TS");
        EXPECT_EQ(pt.runs[0].workload.name, "W1");
    }
    // The cooling axis rebuilds the ambient for each cooling setup.
    EXPECT_EQ(low.points[0].cfg.cooling.name(), "AOHS_1.5");
    EXPECT_EQ(low.points.back().cfg.cooling.name(), "FDHS_1.0");
    EXPECT_EQ(low.points.back().cfg.ambient.tInlet, 52.0);
}

TEST(ScenarioSpec, NewAxesLowerAcrossTheGrid)
{
    ScenarioSpec s;
    s.name = "knobs";
    s.workloads = {"W1"};
    s.policies = {"DTM-CDVFS"};
    s.sweepDtmInterval = {0.01, 0.1};
    s.sweepEmergencyLevels = {"ch4", "sr1500al"};
    s.sweepDvfs = {"simulated_cmp", "xeon5160"};

    LoweredScenario low = s.lower();
    ASSERT_EQ(low.points.size(), 8u); // 2 intervals x 2 ladders x 2 tables
    EXPECT_EQ(low.points[0].label,
              "dtm=0.01,levels=ch4,dvfs=simulated_cmp");
    EXPECT_EQ(low.points.back().label,
              "dtm=0.1,levels=sr1500al,dvfs=xeon5160");

    // The coordinates land in the configurations.
    EXPECT_EQ(low.points[0].cfg.dtmInterval, 0.01);
    EXPECT_EQ(low.points.back().cfg.dtmInterval, 0.1);
    ASSERT_TRUE(low.points[0].cfg.emergencyLevels.has_value());
    EXPECT_EQ(low.points[0].cfg.emergencyLevels->ambBounds(),
              emergencyLevelsByName("ch4").ambBounds());
    ASSERT_TRUE(low.points.back().cfg.emergencyLevels.has_value());
    EXPECT_EQ(low.points.back().cfg.emergencyLevels->ambBounds(),
              emergencyLevelsByName("sr1500al").ambBounds());
    EXPECT_EQ(low.points[0].cfg.dvfs.maxFreq(),
              simulatedCmpDvfs().maxFreq());
    EXPECT_EQ(low.points.back().cfg.dvfs.maxFreq(),
              xeon5160Dvfs().maxFreq());

    // Scalar overrides: the axis supersedes the matching member, other
    // members hold everywhere.
    s.sweepEmergencyLevels.clear();
    s.emergencyLevels = "pe1950";
    s.dvfs = "xeon5160";
    s.dtmInterval = 0.5; // superseded by the dtm axis
    low = s.lower();
    ASSERT_EQ(low.points.size(), 4u);
    for (const auto &pt : low.points) {
        EXPECT_NE(pt.cfg.dtmInterval, 0.5);
        ASSERT_TRUE(pt.cfg.emergencyLevels.has_value());
        EXPECT_EQ(pt.cfg.emergencyLevels->ambBounds(),
                  emergencyLevelsByName("pe1950").ambBounds());
    }
    // The dvfs axis wins over the scalar dvfs member.
    EXPECT_EQ(low.points[0].cfg.dvfs.maxFreq(),
              simulatedCmpDvfs().maxFreq());

    // Unknown names report the valid keys.
    s.sweepDvfs = {"warp9"};
    try {
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("warp9"), std::string::npos) << msg;
        EXPECT_NE(msg.find("xeon5160"), std::string::npos) << msg;
    }
    s.sweepDvfs = {"simulated_cmp"};
    s.sweepEmergencyLevels = {"nosuch"};
    EXPECT_THROW(s.lower(), FatalError);

    // A decision period below the simulator window is a spec error
    // (the simulator itself would panic).
    s.sweepEmergencyLevels.clear();
    s.sweepDtmInterval = {0.001};
    EXPECT_THROW(s.lower(), FatalError);
}

TEST(ScenarioSpec, MemoryOrgAxisLowersAcrossTheGrid)
{
    ScenarioSpec s;
    s.name = "orgs";
    s.workloads = {"W1"};
    s.policies = {"No-limit"};
    s.sweepMemoryOrg = {MemoryOrgSpec{"1x4", std::nullopt},
                        MemoryOrgSpec{"ch4_4x4", std::nullopt},
                        MemoryOrgSpec{"", MemoryOrgConfig{2, 8}}};
    s.sweepTInlet = {46.0, 50.0};

    LoweredScenario low = s.lower();
    ASSERT_EQ(low.points.size(), 6u); // 3 orgs x 2 inlets
    // The org axis leads the label (it is the most structural knob).
    EXPECT_EQ(low.points[0].label, "org=1x4,inlet=46");
    EXPECT_EQ(low.points[1].label, "org=1x4,inlet=50");
    EXPECT_EQ(low.points[4].label, "org=2x8,inlet=46");
    EXPECT_EQ(low.points.back().label, "org=2x8,inlet=50");

    // The coordinates land in the configurations.
    EXPECT_EQ(low.points[0].cfg.org, (MemoryOrgConfig{1, 4}));
    EXPECT_EQ(low.points[2].cfg.org, (MemoryOrgConfig{4, 4}));
    EXPECT_EQ(low.points.back().cfg.org, (MemoryOrgConfig{2, 8}));

    // The scalar override applies when no axis sweeps the org, and the
    // axis supersedes it when one does.
    s.sweepMemoryOrg.clear();
    s.memoryOrg = MemoryOrgSpec{"8x2", std::nullopt};
    low = s.lower();
    ASSERT_EQ(low.points.size(), 2u);
    EXPECT_EQ(low.points[0].label, "inlet=46");
    for (const auto &pt : low.points)
        EXPECT_EQ(pt.cfg.org, (MemoryOrgConfig{8, 2}));
    s.sweepMemoryOrg = {MemoryOrgSpec{"", MemoryOrgConfig{2, 2}}};
    low = s.lower();
    for (const auto &pt : low.points)
        EXPECT_EQ(pt.cfg.org, (MemoryOrgConfig{2, 2}));
}

TEST(ScenarioSpec, RejectsBadMemoryOrganizations)
{
    ScenarioSpec base;
    base.name = "badorg";
    base.workloads = {"W1"};
    base.policies = {"No-limit"};

    // Non-positive counts, in the override and on the axis.
    for (auto bad : {MemoryOrgConfig{0, 4}, MemoryOrgConfig{4, 0},
                     MemoryOrgConfig{-2, 4}}) {
        SCOPED_TRACE(bad.nChannels);
        ScenarioSpec s = base;
        s.memoryOrg = MemoryOrgSpec{"", bad};
        EXPECT_THROW(s.lower(), FatalError);
        s = base;
        s.sweepMemoryOrg = {MemoryOrgSpec{"", bad}};
        EXPECT_THROW(s.lower(), FatalError);
    }
    try {
        ScenarioSpec s = base;
        s.memoryOrg = MemoryOrgSpec{"", MemoryOrgConfig{0, 4}};
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(">= 1 channel"),
                  std::string::npos)
            << e.what();
    }

    // Unknown catalog names list the valid keys.
    ScenarioSpec s = base;
    s.memoryOrg = MemoryOrgSpec{"16x16", std::nullopt};
    try {
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("16x16"), std::string::npos) << msg;
        EXPECT_NE(msg.find("ch4_4x4"), std::string::npos) << msg;
    }

    // Duplicates collapse sweep points; comparison is by the *resolved*
    // organization, so a catalog name and an equal inline pair collide.
    s = base;
    s.sweepMemoryOrg = {MemoryOrgSpec{"2x4", std::nullopt},
                        MemoryOrgSpec{"2x4", std::nullopt}};
    EXPECT_THROW(s.lower(), FatalError);
    s = base;
    s.sweepMemoryOrg = {MemoryOrgSpec{"ch4_4x4", std::nullopt},
                        MemoryOrgSpec{"", MemoryOrgConfig{4, 4}}};
    try {
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("duplicate sweep.memory_org"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("same organization as 'ch4_4x4'"),
                  std::string::npos)
            << msg;
    }

    // Platform scenarios fix the testbed's DIMM population.
    s = base;
    s.platform = "SR1500AL";
    s.policies = {"No-limit"};
    s.memoryOrg = MemoryOrgSpec{"2x4", std::nullopt};
    EXPECT_THROW(s.lower(), FatalError);
    s.memoryOrg = {};
    s.sweepMemoryOrg = {MemoryOrgSpec{"2x4", std::nullopt}};
    EXPECT_THROW(s.lower(), FatalError);
}

TEST(ScenarioSpec, MemoryOrgParsesNamesAndInlineObjects)
{
    ScenarioSpec s = ScenarioSpec::fromJson(Json::parse(R"({
        "name": "orgjson",
        "config": {"memory_org": "2x4"},
        "workloads": ["W1"],
        "policies": ["No-limit"],
        "sweep": {"memory_org": ["1x4", {"channels": 2, "dimms": 8}]}
    })"));
    EXPECT_EQ(s.memoryOrg.name, "2x4");
    ASSERT_EQ(s.sweepMemoryOrg.size(), 2u);
    EXPECT_EQ(s.sweepMemoryOrg[0].name, "1x4");
    ASSERT_TRUE(s.sweepMemoryOrg[1].org.has_value());
    EXPECT_EQ(*s.sweepMemoryOrg[1].org, (MemoryOrgConfig{2, 8}));
    EXPECT_EQ(s.sweepMemoryOrg[1].label(), "2x8");

    // Lossless round-trip, inline objects included.
    Json j = s.toJson();
    ScenarioSpec back = ScenarioSpec::fromJson(Json::parse(j.dump()));
    EXPECT_EQ(back, s);
    EXPECT_EQ(back.toJson(), j);

    // Malformed orgs fail loudly.
    EXPECT_THROW(ScenarioSpec::fromJson(Json::parse(
                     R"({"config": {"memory_org": 4}})")),
                 FatalError);
    EXPECT_THROW(ScenarioSpec::fromJson(Json::parse(
                     R"({"config": {"memory_org": {"channels": 4}}})")),
                 FatalError);
    EXPECT_THROW(ScenarioSpec::fromJson(Json::parse(
                     R"({"config": {"memory_org":
                         {"channels": 4, "dimms": 2.5}}})")),
                 FatalError);
    EXPECT_THROW(ScenarioSpec::fromJson(Json::parse(
                     R"({"config": {"memory_org":
                         {"channels": 4, "dimms": 4, "ranks": 2}}})")),
                 FatalError);
    EXPECT_THROW(ScenarioSpec::fromJson(Json::parse(
                     R"({"config": {"memory_org": ""}})")),
                 FatalError);

    // A default-constructed (empty) sweep entry has no serialized form
    // and no organization to resolve: both paths fail loudly.
    ScenarioSpec empty_entry = s;
    empty_entry.sweepMemoryOrg.push_back(MemoryOrgSpec{});
    EXPECT_THROW(empty_entry.toJson(), FatalError);
    EXPECT_THROW(empty_entry.lower(), FatalError);
}

TEST(ScenarioSpec, RejectsNonFiniteSweepValuesAndOverrides)
{
    ScenarioSpec base;
    base.name = "nonfinite";
    base.workloads = {"W1"};
    base.policies = {"No-limit"};
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();

    // Before the fix a NaN sweep value was the "keep base" sentinel: it
    // silently collapsed onto the base configuration and its label
    // coordinate vanished. Now every non-finite value is rejected.
    for (double bad : {nan, inf, -inf}) {
        SCOPED_TRACE(bad);
        ScenarioSpec s = base;
        s.sweepTInlet = {46.0, bad};
        EXPECT_THROW(s.lower(), FatalError);
        s = base;
        s.sweepSensorNoise = {bad};
        EXPECT_THROW(s.lower(), FatalError);
        s = base;
        s.sweepDtmInterval = {bad};
        EXPECT_THROW(s.lower(), FatalError);
        s = base;
        s.tInlet = bad;
        EXPECT_THROW(s.lower(), FatalError);
        s = base;
        s.maxSimTime = bad;
        EXPECT_THROW(s.lower(), FatalError);
        s = base;
        s.sensorNoiseSigma = bad;
        EXPECT_THROW(s.lower(), FatalError);
    }
    try {
        ScenarioSpec s = base;
        s.sweepTInlet = {NAN};
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("finite"), std::string::npos)
            << e.what();
    }

    // Range checks on the scalar knobs.
    ScenarioSpec s = base;
    s.dtmInterval = 0.0;
    EXPECT_THROW(s.lower(), FatalError);
    s = base;
    s.instrScale = -1.0;
    EXPECT_THROW(s.lower(), FatalError);
    s = base;
    s.sweepSensorNoise = {-0.5};
    EXPECT_THROW(s.lower(), FatalError);
}

TEST(ScenarioSpec, RejectsDuplicateNamesAndSweepValues)
{
    ScenarioSpec base;
    base.name = "dups";
    base.workloads = {"W1"};
    base.policies = {"No-limit"};

    // SuiteResults is keyed [workload][policy]; duplicates would
    // silently overwrite results. The diagnostic names the offender.
    ScenarioSpec s = base;
    s.workloads = {"W1", "W2", "W1"};
    try {
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("duplicate workload 'W1'"),
                  std::string::npos)
            << e.what();
    }
    s = base;
    s.policies = {"No-limit", "DTM-TS", "No-limit"};
    try {
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("duplicate policy 'No-limit'"),
                  std::string::npos)
            << e.what();
    }

    // Duplicate sweep values produce identical point labels.
    s = base;
    s.sweepTInlet = {46.0, 48.0, 46.0};
    try {
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what())
                      .find("duplicate sweep.t_inlet value '46'"),
                  std::string::npos)
            << e.what();
    }
    s = base;
    s.sweepCooling = {"AOHS_1.5", "AOHS_1.5"};
    EXPECT_THROW(s.lower(), FatalError);
    s = base;
    s.sweepCopies = {2, 2};
    EXPECT_THROW(s.lower(), FatalError);
    s = base;
    s.sweepEmergencyLevels = {"ch4", "ch4"};
    EXPECT_THROW(s.lower(), FatalError);
    s = base;
    s.sweepDvfs = {"xeon5160", "xeon5160"};
    EXPECT_THROW(s.lower(), FatalError);
    s = base;
    s.sweepDtmInterval = {0.01, 0.01};
    EXPECT_THROW(s.lower(), FatalError);
}

TEST(ScenarioSpec, LabelsRenderFractionalAndNegativeValuesExactly)
{
    ScenarioSpec s;
    s.name = "labels";
    s.workloads = {"W1"};
    s.policies = {"No-limit"};
    s.sweepTInlet = {-3.5, 0.25, 46.125};
    s.sweepSensorNoise = {0.1};

    LoweredScenario low = s.lower();
    ASSERT_EQ(low.points.size(), 3u);
    EXPECT_EQ(low.points[0].label, "inlet=-3.5,noise=0.1");
    EXPECT_EQ(low.points[1].label, "inlet=0.25,noise=0.1");
    EXPECT_EQ(low.points[2].label, "inlet=46.125,noise=0.1");
    EXPECT_EQ(low.points[0].cfg.ambient.tInlet, -3.5);
}

TEST(ScenarioSpec, NoSweepMeansOneBasePoint)
{
    ScenarioSpec s;
    s.name = "single";
    s.workloads = {"W1"};
    s.policies = {"No-limit"};
    LoweredScenario low = s.lower();
    ASSERT_EQ(low.points.size(), 1u);
    EXPECT_EQ(low.points[0].label, "base");
    // Defaults are the Chapter 4 config.
    SimConfig ref = makeCh4Config(coolingAohs15(), false);
    EXPECT_EQ(low.points[0].cfg.copiesPerApp, ref.copiesPerApp);
    EXPECT_EQ(low.points[0].cfg.ambient.tInlet, ref.ambient.tInlet);
}

TEST(ScenarioSpec, PlatformScenariosUseTheCh5Lineup)
{
    ScenarioSpec s;
    s.name = "testbed";
    s.platform = "SR1500AL";
    s.copiesPerApp = 2;
    s.workloads = {"W1"};
    s.policies = {"No-limit", "DTM-BW"};

    LoweredScenario low = s.lower();
    ASSERT_EQ(low.points.size(), 1u);
    ASSERT_EQ(low.points[0].runs.size(), 2u);
    // Platform runs carry the Chapter 5 policy factory.
    EXPECT_TRUE(static_cast<bool>(low.points[0].runs[0].factory));
    // The paper's protocol: the SR1500AL No-limit baseline runs at a
    // 26 C room ambient instead of the hot box.
    EXPECT_EQ(low.points[0].runs[0].cfg.ambient.tInlet, 26.0);
    EXPECT_GT(low.points[0].runs[1].cfg.ambient.tInlet, 26.0);
    EXPECT_EQ(low.points[0].runs[1].cfg.copiesPerApp, 2);

    // Platform policies are validated against the Chapter 5 lineup.
    s.policies = {"DTM-BW+PID"};
    EXPECT_THROW(s.lower(), FatalError);
    // The cooling axis cannot apply to a fixed platform.
    s.policies = {"DTM-BW"};
    s.sweepCooling = {"AOHS_1.5"};
    EXPECT_THROW(s.lower(), FatalError);
    // Platforms also fix the DVFS table and derive their own ladders.
    s.sweepCooling.clear();
    s.dvfs = "xeon5160";
    EXPECT_THROW(s.lower(), FatalError);
    s.dvfs.clear();
    s.sweepEmergencyLevels = {"ch4"};
    EXPECT_THROW(s.lower(), FatalError);
    // The decision interval still sweeps on platforms (but must respect
    // the platform's coarser 0.1 s window).
    s.sweepEmergencyLevels.clear();
    s.sweepDtmInterval = {1.0, 2.0};
    LoweredScenario low2 = s.lower();
    ASSERT_EQ(low2.points.size(), 2u);
    EXPECT_EQ(low2.points[0].label, "dtm=1");
    EXPECT_EQ(low2.points[1].runs[0].cfg.dtmInterval, 2.0);
    s.sweepDtmInterval = {0.01};
    EXPECT_THROW(s.lower(), FatalError);
}

TEST(ScenarioSpec, RemapKnobsValidateAgainstWindowAndDtmInterval)
{
    ScenarioSpec s;
    s.name = "remap";
    s.workloads = {"W1"};
    s.policies = {"DTM-remap", "DTM-remap-hyst", "DTM-TS+remap"};
    s.remapInterval = 0.25;
    s.remapHysteresis = 1.0;
    EXPECT_NO_THROW(s.lower());

    // Below the simulator window (same failure mode as dtm_interval:
    // the simulator could never hit the boundary).
    s.remapInterval = 0.005;
    try {
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("remap_interval 0.005 is below the simulator "
                           "window (0.01 s)"),
                  std::string::npos)
            << msg;
    }

    // Off the DTM decision grid: the error names both knobs.
    s.remapInterval = 0.025;
    s.dtmInterval = 0.02;
    try {
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("remap_interval 0.025 is not a whole multiple "
                           "of dtm_interval 0.02"),
                  std::string::npos)
            << msg;
    }

    // The check runs per grid point: every dtm axis value must divide
    // the remap period evenly.
    s.dtmInterval.reset();
    s.remapInterval = 0.06;
    s.sweepDtmInterval = {0.01, 0.02, 0.03};
    EXPECT_NO_THROW(s.lower());
    s.sweepDtmInterval = {0.01, 0.04};
    EXPECT_THROW(s.lower(), FatalError);

    // Scalar sanity.
    s.sweepDtmInterval.clear();
    s.remapInterval = -1.0;
    try {
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("remap_interval must be > 0"),
                  std::string::npos)
            << e.what();
    }
    s.remapInterval = 0.25;
    s.remapHysteresis = -0.5;
    try {
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what())
                      .find("remap_hysteresis must be >= 0"),
                  std::string::npos)
            << e.what();
    }

    // Unset knobs impose no constraint — dtm_interval sweeps that never
    // name a remap policy (e.g. dtm_sensitivity) keep lowering.
    ScenarioSpec plain;
    plain.name = "no-remap";
    plain.workloads = {"W1"};
    plain.policies = {"DTM-TS"};
    plain.sweepDtmInterval = {0.03, 0.07};
    EXPECT_NO_THROW(plain.lower());
}

TEST(ScenarioSpec, PlatformScenariosRejectRemapKnobs)
{
    ScenarioSpec s;
    s.name = "testbed";
    s.platform = "SR1500AL";
    s.workloads = {"W1"};
    s.policies = {"No-limit"};
    s.remapInterval = 1.0;
    try {
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what())
                      .find("remove the remap_interval/remap_hysteresis "
                            "members"),
                  std::string::npos)
            << e.what();
    }
    s.remapInterval.reset();
    s.remapHysteresis = 2.0;
    EXPECT_THROW(s.lower(), FatalError);
}

TEST(ScenarioSpec, UnknownNamesReportValidKeys)
{
    ScenarioSpec s;
    s.name = "bad";
    s.workloads = {"W1"};
    s.policies = {"DTM-TURBO"};
    try {
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("DTM-TURBO"), std::string::npos) << msg;
        EXPECT_NE(msg.find("valid:"), std::string::npos) << msg;
        EXPECT_NE(msg.find("DTM-CDVFS"), std::string::npos) << msg;
    }

    s.policies = {"No-limit"};
    s.workloads = {"W99"};
    EXPECT_THROW(s.lower(), FatalError);

    s.workloads = {"W1"};
    s.cooling = "WATER_9000";
    EXPECT_THROW(s.lower(), FatalError);

    ScenarioSpec empty;
    empty.policies = {"No-limit"};
    EXPECT_THROW(empty.lower(), FatalError); // no workloads
}

TEST(ScenarioSpec, ParserRejectsUnknownMembers)
{
    EXPECT_THROW(
        ScenarioSpec::fromJson(Json::parse(R"({"workload": ["W1"]})")),
        FatalError);
    EXPECT_THROW(ScenarioSpec::fromJson(
                     Json::parse(R"({"config": {"cooling_rate": 2}})")),
                 FatalError);
    EXPECT_THROW(ScenarioSpec::fromJson(
                     Json::parse(R"({"sweep": {"ambient": ["a"]}})")),
                 FatalError);
    EXPECT_THROW(ScenarioSpec::fromJson(Json::parse(R"(["not an object"])")),
                 FatalError);
    EXPECT_THROW(ScenarioSpec::fromJson(Json::parse(
                     R"({"config": {"copies_per_app": 2.5}})")),
                 FatalError);
}

/**
 * Acceptance pin: running the shipped ch4_baseline scenario is
 * bit-identical to the equivalent hand-coded ExperimentEngine
 * invocation (`memtherm run examples/scenarios/ch4_baseline.json`
 * executes exactly this code path).
 */
TEST(Scenario, Ch4BaselineMatchesHandCodedEngineBitExactly)
{
    ScenarioSpec spec = ScenarioSpec::load(scenarioPath("ch4_baseline.json"));
    ASSERT_EQ(spec.name, "ch4_baseline");

    ExperimentEngine engine(2);
    ScenarioResults got = runScenario(spec, engine);
    ASSERT_EQ(got.points.size(), 1u);
    EXPECT_EQ(got.points[0].label, "base");

    // The hand-coded equivalent, built without the scenario layer.
    SimConfig cfg = makeCh4Config(coolingAohs15(), false);
    cfg.copiesPerApp = 4;
    std::vector<Workload> ws{workloadMix("W1"), workloadMix("W2")};
    std::vector<std::string> pols{"No-limit", "DTM-TS", "DTM-BW",
                                  "DTM-ACG", "DTM-CDVFS"};
    SuiteResults ref = engine.runSuite(cfg, ws, pols);

    const SuiteResults &suite = got.points[0].suite;
    ASSERT_EQ(suite.size(), ref.size());
    for (const auto &[w, per_policy] : ref) {
        ASSERT_EQ(suite.count(w), 1u);
        ASSERT_EQ(suite.at(w).size(), per_policy.size());
        for (const auto &[p, res] : per_policy) {
            SCOPED_TRACE(w + "/" + p);
            expectIdentical(suite.at(w).at(p), res);
        }
    }

    // And the serialized form carries the same numbers.
    Json j = toJson(got);
    const Json &r =
        j.at("points").asArray()[0].at("results").at("W1").at("DTM-TS");
    EXPECT_EQ(r.at("running_time_s").asNumber(),
              ref.at("W1").at("DTM-TS").runningTime);
    EXPECT_EQ(r.at("mem_energy_j").asNumber(),
              ref.at("W1").at("DTM-TS").memEnergy);
}

/**
 * The new axes lower bit-identically too: a dtm_interval x
 * emergency_levels x dvfs sweep equals hand-building each SimConfig
 * (decision period, ladder, operating table) and handing the runs to
 * the engine directly.
 */
TEST(Scenario, NewAxesMatchHandCodedEngineBitExactly)
{
    ScenarioSpec spec;
    spec.name = "knob_grid";
    spec.copiesPerApp = 1;
    spec.maxSimTime = 500.0;
    spec.workloads = {"swimx2"};
    spec.policies = {"DTM-CDVFS"};
    spec.sweepDtmInterval = {0.01, 0.1};
    spec.sweepEmergencyLevels = {"ch4", "sr1500al"};
    spec.sweepDvfs = {"simulated_cmp", "xeon5160"};

    ExperimentEngine engine(2);
    ScenarioResults got = runScenario(spec, engine);
    ASSERT_EQ(got.points.size(), 8u);

    // The hand-coded equivalent, built without the scenario layer.
    std::vector<ExperimentEngine::Run> runs;
    for (double dtm : {0.01, 0.1}) {
        for (const char *ladder : {"ch4", "sr1500al"}) {
            for (const char *table : {"simulated_cmp", "xeon5160"}) {
                SimConfig cfg = makeCh4Config(coolingAohs15(), false);
                cfg.copiesPerApp = 1;
                cfg.maxSimTime = 500.0;
                cfg.dtmInterval = dtm;
                cfg.emergencyLevels = emergencyLevelsByName(ladder);
                cfg.dvfs = DvfsRegistry::instance().byName(table);
                runs.push_back(
                    {cfg, workloadByName("swimx2"), "DTM-CDVFS", {}});
            }
        }
    }
    std::vector<SimResult> ref = engine.run(runs);
    ASSERT_EQ(ref.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) {
        SCOPED_TRACE(got.points[i].label);
        expectIdentical(got.points[i].suite.at("swimx2").at("DTM-CDVFS"),
                        ref[i]);
    }
}

/**
 * The memory_org axis lowers bit-identically as well: sweeping named
 * and inline organizations equals hand-setting SimConfig::org for each
 * point and handing the runs to the engine directly. Doubles as the
 * per-DIMM-peak contract check: one peak pair per DIMM of the point's
 * organization, bounded by the run's maxima, with the bypass gradient
 * (DIMM 0 relays all downstream traffic) visible on the AMBs.
 */
TEST(Scenario, MemoryOrgAxisMatchesHandCodedEngineBitExactly)
{
    ScenarioSpec spec;
    spec.name = "org_grid";
    spec.copiesPerApp = 1;
    spec.maxSimTime = 300.0;
    spec.workloads = {"swimx2"};
    spec.policies = {"No-limit"};
    spec.sweepMemoryOrg = {MemoryOrgSpec{"1x4", std::nullopt},
                           MemoryOrgSpec{"ch4_4x4", std::nullopt},
                           MemoryOrgSpec{"", MemoryOrgConfig{2, 8}}};

    ExperimentEngine engine(2);
    ScenarioResults got = runScenario(spec, engine);
    ASSERT_EQ(got.points.size(), 3u);

    // The hand-coded equivalent, built without the scenario layer.
    std::vector<ExperimentEngine::Run> runs;
    for (auto org : {MemoryOrgConfig{1, 4}, MemoryOrgConfig{4, 4},
                     MemoryOrgConfig{2, 8}}) {
        SimConfig cfg = makeCh4Config(coolingAohs15(), false);
        cfg.copiesPerApp = 1;
        cfg.maxSimTime = 300.0;
        cfg.org = org;
        runs.push_back({cfg, workloadByName("swimx2"), "No-limit", {}});
    }
    std::vector<SimResult> ref = engine.run(runs);
    ASSERT_EQ(ref.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        SCOPED_TRACE(got.points[i].label);
        expectIdentical(got.points[i].suite.at("swimx2").at("No-limit"),
                        ref[i]);
    }

    // Per-DIMM peaks: sized by the organization, consistent with the
    // scalar maxima, and monotonically cooler down the daisy chain for
    // the AMBs (uniform interleave: bypass traffic decreases with the
    // distance from the controller).
    const std::size_t depth[] = {4u, 4u, 8u};
    for (std::size_t i = 0; i < 3; ++i) {
        SCOPED_TRACE(got.points[i].label);
        const SimResult &r = got.points[i].suite.at("swimx2").at("No-limit");
        ASSERT_EQ(r.peakAmbPerDimm.size(), depth[i]);
        ASSERT_EQ(r.peakDramPerDimm.size(), depth[i]);
        double hottest = 0.0;
        for (std::size_t d = 0; d < depth[i]; ++d) {
            EXPECT_LE(r.peakAmbPerDimm[d], r.maxAmb);
            EXPECT_LE(r.peakDramPerDimm[d], r.maxDram);
            hottest = std::max(hottest, r.peakAmbPerDimm[d]);
            if (d > 0) {
                EXPECT_LE(r.peakAmbPerDimm[d], r.peakAmbPerDimm[d - 1]);
            }
        }
        EXPECT_EQ(hottest, r.maxAmb);
        EXPECT_EQ(r.peakAmbPerDimm.front(), r.maxAmb);
    }
    // Concentrating the same traffic on one channel runs hotter than
    // spreading it over four (the Section 3.4 story).
    EXPECT_GT(got.points[0].suite.at("swimx2").at("No-limit").maxAmb,
              got.points[1].suite.at("swimx2").at("No-limit").maxAmb);
}

TEST(ScenarioSpec, RefreshAxisLowersAcrossTheGrid)
{
    ScenarioSpec s;
    s.name = "refresh_axis";
    s.workloads = {"W1"};
    s.policies = {"No-limit"};
    s.sweepTInlet = {46.0, 50.0};
    s.sweepRefresh = {RefreshSpec{"none", {}}, RefreshSpec{"ddr2_2x", {}}};

    LoweredScenario low = s.lower();
    ASSERT_EQ(low.points.size(), 4u); // 2 inlets x 2 refresh models
    // Refresh is the tenth (fastest) axis; its coordinate labels last.
    EXPECT_EQ(low.points[0].label, "inlet=46,refresh=none");
    EXPECT_EQ(low.points[1].label, "inlet=46,refresh=ddr2_2x");
    EXPECT_EQ(low.points.back().label, "inlet=50,refresh=ddr2_2x");

    // The coordinates land in the configurations: "none" resolves to
    // the empty (feedback-off) model, ddr2_2x to the real band table.
    EXPECT_TRUE(low.points[0].cfg.refresh.empty());
    EXPECT_FALSE(low.points[1].cfg.refresh.empty());
    EXPECT_EQ(low.points[1].cfg.refresh.bands.size(),
              ddr2DoubleRefreshModel().bands.size());

    // The scalar member applies when no axis sweeps refresh, and the
    // axis supersedes it when one does.
    s.sweepRefresh.clear();
    s.refresh = RefreshSpec{"aldram", {}};
    low = s.lower();
    ASSERT_EQ(low.points.size(), 2u);
    for (const auto &pt : low.points) {
        EXPECT_EQ(pt.cfg.refresh.bands.size(),
                  aldramRefreshModel().bands.size());
    }
    s.sweepRefresh = {RefreshSpec{"none", {}}, RefreshSpec{"ddr2_2x", {}}};
    low = s.lower();
    EXPECT_TRUE(low.points[0].cfg.refresh.empty()); // axis wins

    // An inline band table lowers too, with a label free of ',' / '='.
    s.refresh = RefreshSpec{};
    s.sweepRefresh = {
        RefreshSpec{"", {{-273.15, 0.01, 0.1, 1.0}, {80.0, 0.02, 0.2, 1.0}}}};
    s.sweepTInlet.clear();
    low = s.lower();
    ASSERT_EQ(low.points.size(), 1u);
    EXPECT_EQ(low.points[0].label, "refresh=-273.15:0.01:0.1|80:0.02:0.2");
    EXPECT_EQ(low.points[0].cfg.refresh.bands.size(), 2u);

    // Unknown catalog names report the valid keys.
    s.sweepRefresh = {RefreshSpec{"ddr3", {}}};
    try {
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("unknown refresh model 'ddr3'"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("ddr2_2x"), std::string::npos) << msg;
    }

    // Malformed inline tables name the offense.
    s.sweepRefresh = {RefreshSpec{"", {{-273.15, 1.5, 0.1, 1.0}}}};
    EXPECT_THROW(s.lower(), FatalError); // bw_fraction outside [0, 1)
    s.sweepRefresh = {
        RefreshSpec{"", {{80.0, 0.01, 0.1, 1.0}, {70.0, 0.02, 0.2, 1.0}}}};
    EXPECT_THROW(s.lower(), FatalError); // min_temp not increasing
    s.sweepRefresh = {RefreshSpec{"", {{-273.15, 0.01, -0.1, 1.0}}}};
    EXPECT_THROW(s.lower(), FatalError); // negative dram_power_w
    s.sweepRefresh = {RefreshSpec{"", {{-273.15, 0.01, 0.1, 0.0}}}};
    EXPECT_THROW(s.lower(), FatalError); // non-positive latency_mult

    // Duplicate sweep entries (by resolved model, not spelling).
    s.sweepRefresh = {RefreshSpec{"none", {}}, RefreshSpec{"none", {}}};
    EXPECT_THROW(s.lower(), FatalError);
    s.sweepRefresh = {RefreshSpec{"ddr2_2x", {}},
                      RefreshSpec{"", ddr2DoubleRefreshModel().bands}};
    EXPECT_THROW(s.lower(), FatalError);

    // Platform scenarios measure real DRAM — the knob is rejected.
    ScenarioSpec plat;
    plat.name = "plat_refresh";
    plat.platform = "SR1500AL";
    plat.workloads = {"W1"};
    plat.policies = {"No-limit"};
    plat.refresh = RefreshSpec{"ddr2_2x", {}};
    EXPECT_THROW(plat.lower(), FatalError);
    plat.refresh = RefreshSpec{};
    plat.sweepRefresh = {RefreshSpec{"ddr2_2x", {}}};
    EXPECT_THROW(plat.lower(), FatalError);
}

TEST(ScenarioSpec, TrafficShapeAxisLowersAcrossTheGrid)
{
    ScenarioSpec s;
    s.name = "shapes";
    s.workloads = {"W1"};
    s.policies = {"No-limit"};
    s.sweepTrafficShape = {TrafficShapeSpec{"hot_dimm0", {}},
                           TrafficShapeSpec{"", {0.7, 0.1, 0.1, 0.1}}};
    s.sweepTInlet = {46.0, 50.0};

    LoweredScenario low = s.lower();
    ASSERT_EQ(low.points.size(), 4u); // 2 shapes x 2 inlets
    // The shape axis labels right after the organization.
    EXPECT_EQ(low.points[0].label, "shape=hot_dimm0,inlet=46");
    EXPECT_EQ(low.points[1].label, "shape=hot_dimm0,inlet=50");
    EXPECT_EQ(low.points[2].label, "shape=0.7|0.1|0.1|0.1,inlet=46");
    EXPECT_EQ(low.points.back().label, "shape=0.7|0.1|0.1|0.1,inlet=50");

    // The coordinates land in the configurations, resolved against the
    // base (4x4) organization.
    EXPECT_EQ(low.points[0].cfg.trafficShares,
              trafficShapeByName("hot_dimm0", 4));
    EXPECT_EQ(low.points[2].cfg.trafficShares,
              (std::vector<double>{0.7, 0.1, 0.1, 0.1}));

    // The scalar override applies when no axis sweeps the shape, and
    // the axis supersedes it when one does.
    s.sweepTrafficShape.clear();
    s.trafficShape = TrafficShapeSpec{"linear_taper", {}};
    low = s.lower();
    ASSERT_EQ(low.points.size(), 2u);
    EXPECT_EQ(low.points[0].label, "inlet=46");
    for (const auto &pt : low.points) {
        EXPECT_EQ(pt.cfg.trafficShares,
                  trafficShapeByName("linear_taper", 4));
    }
    s.sweepTrafficShape = {TrafficShapeSpec{"front_heavy", {}}};
    low = s.lower();
    for (const auto &pt : low.points) {
        EXPECT_EQ(pt.cfg.trafficShares,
                  trafficShapeByName("front_heavy", 4));
    }
}

TEST(ScenarioSpec, TrafficShapesReResolvePerOrganizationPoint)
{
    // A catalog shape is parameterized by the chain depth: sweeping the
    // organization re-resolves it at every point, so a 2-DIMM and an
    // 8-DIMM grid point each get a share vector of their own arity.
    ScenarioSpec s;
    s.name = "shape_x_org";
    s.workloads = {"W1"};
    s.policies = {"No-limit"};
    s.sweepMemoryOrg = {MemoryOrgSpec{"4x2", std::nullopt},
                        MemoryOrgSpec{"4x8", std::nullopt}};
    s.sweepTrafficShape = {TrafficShapeSpec{"front_heavy", {}}};

    LoweredScenario low = s.lower();
    ASSERT_EQ(low.points.size(), 2u);
    EXPECT_EQ(low.points[0].label, "org=4x2,shape=front_heavy");
    EXPECT_EQ(low.points[0].cfg.trafficShares,
              trafficShapeByName("front_heavy", 2));
    EXPECT_EQ(low.points[1].cfg.trafficShares,
              trafficShapeByName("front_heavy", 8));

    // The scalar shape member re-resolves the same way.
    s.sweepTrafficShape.clear();
    s.trafficShape = TrafficShapeSpec{"back_heavy", {}};
    low = s.lower();
    ASSERT_EQ(low.points.size(), 2u);
    EXPECT_EQ(low.points[0].cfg.trafficShares,
              trafficShapeByName("back_heavy", 2));
    EXPECT_EQ(low.points[1].cfg.trafficShares,
              trafficShapeByName("back_heavy", 8));
}

TEST(ScenarioSpec, RejectsBadTrafficShapes)
{
    ScenarioSpec base;
    base.name = "badshape";
    base.workloads = {"W1"};
    base.policies = {"No-limit"};

    // Negative shares, sums off 1, and non-finite entries, on the
    // scalar member and the axis alike.
    for (auto bad : {std::vector<double>{1.5, -0.5, 0.0, 0.0},
                     std::vector<double>{0.5, 0.2, 0.2, 0.2},
                     std::vector<double>{0.25, 0.25, 0.25,
                                         std::numeric_limits<
                                             double>::quiet_NaN()}}) {
        SCOPED_TRACE(bad[0]);
        ScenarioSpec s = base;
        s.trafficShape = TrafficShapeSpec{"", bad};
        EXPECT_THROW(s.lower(), FatalError);
        s = base;
        s.sweepTrafficShape = {TrafficShapeSpec{"", bad}};
        EXPECT_THROW(s.lower(), FatalError);
    }
    try {
        ScenarioSpec s = base;
        s.trafficShape = TrafficShapeSpec{"", {1.5, -0.5, 0.0, 0.0}};
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("must not be negative"),
                  std::string::npos)
            << e.what();
    }
    try {
        ScenarioSpec s = base;
        s.trafficShape = TrafficShapeSpec{"", {0.5, 0.2, 0.2, 0.2}};
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("must sum to 1"),
                  std::string::npos)
            << e.what();
    }

    // Unknown catalog names list the valid keys.
    ScenarioSpec s = base;
    s.trafficShape = TrafficShapeSpec{"zigzag", {}};
    try {
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("zigzag"), std::string::npos) << msg;
        EXPECT_NE(msg.find("linear_taper"), std::string::npos) << msg;
    }

    // An inline vector whose arity does not match the swept
    // organization is rejected with both axes named.
    s = base;
    s.trafficShape = TrafficShapeSpec{"", {0.25, 0.25, 0.25, 0.25}};
    s.sweepMemoryOrg = {MemoryOrgSpec{"4x2", std::nullopt}};
    try {
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("config.traffic_shape"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("has 4 share(s)"), std::string::npos) << msg;
        EXPECT_NE(msg.find("sweep.memory_org organization '4x2'"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("2 DIMM(s) per channel"), std::string::npos)
            << msg;
    }
    // Same for a swept inline vector against the scalar organization.
    s = base;
    s.memoryOrg = MemoryOrgSpec{"4x8", std::nullopt};
    s.sweepTrafficShape = {TrafficShapeSpec{"", {0.5, 0.5}}};
    try {
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("sweep.traffic_shape entry '0.5|0.5'"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("config.memory_org organization '4x8'"),
                  std::string::npos)
            << msg;
    }
    // And against the implicit base organization.
    s = base;
    s.trafficShape = TrafficShapeSpec{"", {0.5, 0.5}};
    try {
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("the base organization (4x4)"),
                  std::string::npos)
            << e.what();
    }

    // Duplicates compare by the *resolved* share vector: a repeated
    // name, a name against an equal inline vector, and two distinct
    // names that coincide at some swept chain depth all collide.
    s = base;
    s.sweepTrafficShape = {TrafficShapeSpec{"hot_dimm0", {}},
                           TrafficShapeSpec{"hot_dimm0", {}}};
    EXPECT_THROW(s.lower(), FatalError);
    s = base;
    s.sweepTrafficShape = {TrafficShapeSpec{"uniform", {}},
                           TrafficShapeSpec{"", {0.25, 0.25, 0.25, 0.25}}};
    try {
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("duplicate sweep.traffic_shape"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("same shares as 'uniform'"), std::string::npos)
            << msg;
    }
    // front_heavy and linear_taper both resolve to {2/3, 1/3} on a
    // two-DIMM chain, so the pair is fine on 4x4 but collides under a
    // swept 4x2 organization.
    s = base;
    s.sweepTrafficShape = {TrafficShapeSpec{"front_heavy", {}},
                           TrafficShapeSpec{"linear_taper", {}}};
    EXPECT_NO_THROW(s.lower());
    s.sweepMemoryOrg = {MemoryOrgSpec{"4x2", std::nullopt}};
    try {
        s.lower();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("duplicate sweep.traffic_shape shape "
                           "'linear_taper'"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("under sweep.memory_org organization '4x2'"),
                  std::string::npos)
            << msg;
    }

    // Platform scenarios measure their traffic; the knob is rejected.
    s = base;
    s.platform = "SR1500AL";
    s.trafficShape = TrafficShapeSpec{"hot_dimm0", {}};
    EXPECT_THROW(s.lower(), FatalError);
    s.trafficShape = {};
    s.sweepTrafficShape = {TrafficShapeSpec{"hot_dimm0", {}}};
    EXPECT_THROW(s.lower(), FatalError);
}

TEST(ScenarioSpec, TrafficShapeParsesNamesAndInlineVectors)
{
    ScenarioSpec s = ScenarioSpec::fromJson(Json::parse(R"({
        "name": "shapejson",
        "config": {"traffic_shape": "hot_dimm0"},
        "workloads": ["W1"],
        "policies": ["No-limit"],
        "sweep": {"traffic_shape": ["linear_taper", [0.7, 0.1, 0.1, 0.1]]}
    })"));
    EXPECT_EQ(s.trafficShape.name, "hot_dimm0");
    ASSERT_EQ(s.sweepTrafficShape.size(), 2u);
    EXPECT_EQ(s.sweepTrafficShape[0].name, "linear_taper");
    EXPECT_EQ(s.sweepTrafficShape[1].shares,
              (std::vector<double>{0.7, 0.1, 0.1, 0.1}));
    EXPECT_EQ(s.sweepTrafficShape[1].label(), "0.7|0.1|0.1|0.1");

    // Lossless round-trip, inline vectors included.
    Json j = s.toJson();
    ScenarioSpec back = ScenarioSpec::fromJson(Json::parse(j.dump()));
    EXPECT_EQ(back, s);
    EXPECT_EQ(back.toJson(), j);

    // Malformed shapes fail loudly.
    EXPECT_THROW(ScenarioSpec::fromJson(Json::parse(
                     R"({"config": {"traffic_shape": 4}})")),
                 FatalError);
    EXPECT_THROW(ScenarioSpec::fromJson(Json::parse(
                     R"({"config": {"traffic_shape": ""}})")),
                 FatalError);
    EXPECT_THROW(ScenarioSpec::fromJson(Json::parse(
                     R"({"config": {"traffic_shape": []}})")),
                 FatalError);
    EXPECT_THROW(ScenarioSpec::fromJson(Json::parse(
                     R"({"config": {"traffic_shape": [0.5, "x"]}})")),
                 FatalError);
    EXPECT_THROW(ScenarioSpec::fromJson(Json::parse(
                     R"({"sweep": {"traffic_shape": "uniform"}})")),
                 FatalError);

    // A default-constructed (empty) sweep entry has no serialized form
    // and no shares to resolve: both paths fail loudly.
    ScenarioSpec empty_entry = s;
    empty_entry.sweepTrafficShape.push_back(TrafficShapeSpec{});
    EXPECT_THROW(empty_entry.toJson(), FatalError);
    EXPECT_THROW(empty_entry.lower(), FatalError);
}

/**
 * Acceptance pin: a run with the traffic_shape knob set to "uniform"
 * (or the equivalent inline vector) is bit-identical to a run with the
 * knob unset — the explicit share path feeds the traffic decomposition
 * the exact 1/n fractions the empty-shares path uses.
 */
TEST(Scenario, UniformTrafficShapeIsBitIdenticalToUnset)
{
    ScenarioSpec spec;
    spec.name = "uniform_pin";
    spec.copiesPerApp = 1;
    spec.maxSimTime = 200.0;
    spec.workloads = {"swimx2"};
    spec.policies = {"No-limit"};

    ExperimentEngine engine(1);
    ScenarioResults unset = runScenario(spec, engine);

    spec.trafficShape = TrafficShapeSpec{"uniform", {}};
    ScenarioResults named = runScenario(spec, engine);

    spec.trafficShape = TrafficShapeSpec{"", {0.25, 0.25, 0.25, 0.25}};
    ScenarioResults inline_uniform = runScenario(spec, engine);

    const SimResult &a = unset.points[0].suite.at("swimx2").at("No-limit");
    expectIdentical(a, named.points[0].suite.at("swimx2").at("No-limit"));
    expectIdentical(
        a, inline_uniform.points[0].suite.at("swimx2").at("No-limit"));
}

/**
 * The traffic_shape axis lowers bit-identically as well: sweeping named
 * and inline shapes across organizations equals hand-setting
 * SimConfig::trafficShares for each point and handing the runs to the
 * engine directly. Doubles as the per-DIMM average-power contract check
 * and pins the gradient inversion a back-heavy skew produces.
 */
TEST(Scenario, TrafficShapeAxisMatchesHandCodedEngineBitExactly)
{
    ScenarioSpec spec;
    spec.name = "shape_grid";
    spec.copiesPerApp = 1;
    spec.maxSimTime = 300.0;
    spec.workloads = {"swimx2"};
    spec.policies = {"No-limit"};
    spec.sweepTrafficShape = {TrafficShapeSpec{"uniform", {}},
                              TrafficShapeSpec{"back_heavy", {}},
                              TrafficShapeSpec{"", {0.7, 0.1, 0.1, 0.1}}};

    ExperimentEngine engine(2);
    ScenarioResults got = runScenario(spec, engine);
    ASSERT_EQ(got.points.size(), 3u);

    // The hand-coded equivalent, built without the scenario layer.
    std::vector<ExperimentEngine::Run> runs;
    for (auto shares : {trafficShapeByName("uniform", 4),
                        trafficShapeByName("back_heavy", 4),
                        std::vector<double>{0.7, 0.1, 0.1, 0.1}}) {
        SimConfig cfg = makeCh4Config(coolingAohs15(), false);
        cfg.copiesPerApp = 1;
        cfg.maxSimTime = 300.0;
        cfg.trafficShares = shares;
        runs.push_back({cfg, workloadByName("swimx2"), "No-limit", {}});
    }
    std::vector<SimResult> ref = engine.run(runs);
    ASSERT_EQ(ref.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        SCOPED_TRACE(got.points[i].label);
        expectIdentical(got.points[i].suite.at("swimx2").at("No-limit"),
                        ref[i]);
    }

    // Per-DIMM average power: one entry per DIMM; summed over the
    // representative channel and scaled by the channel count it
    // recovers the run's mean memory power.
    for (const auto &pt : got.points) {
        SCOPED_TRACE(pt.label);
        const SimResult &r = pt.suite.at("swimx2").at("No-limit");
        ASSERT_EQ(r.avgPowerPerDimm.size(), 4u);
        double channel = 0.0;
        for (double p : r.avgPowerPerDimm) {
            EXPECT_GT(p, 0.0);
            channel += p;
        }
        EXPECT_NEAR(channel * 4, r.avgMemPower(),
                    1e-9 * r.avgMemPower());
    }

    // The gradient inversion: under uniform interleave the AMB peaks
    // fall monotonically down the chain; a back-heavy skew loads the
    // chain's far end instead, so the profile turns non-monotone (and
    // the hottest DRAM moves off DIMM 0 entirely).
    const SimResult &uni = got.points[0].suite.at("swimx2").at("No-limit");
    const SimResult &back = got.points[1].suite.at("swimx2").at("No-limit");
    for (std::size_t d = 1; d < 4; ++d)
        EXPECT_LE(uni.peakAmbPerDimm[d], uni.peakAmbPerDimm[d - 1]);
    EXPECT_GT(back.peakAmbPerDimm[2], back.peakAmbPerDimm[0]);
    EXPECT_GT(back.peakDramPerDimm[2], back.peakDramPerDimm[0]);
    EXPECT_GT(back.avgPowerPerDimm[3], back.avgPowerPerDimm[0]);
}

} // namespace
} // namespace memtherm
