/**
 * @file
 * Unit tests for the parallel ExperimentEngine: thread-count resolution,
 * bit-exact determinism of parallel vs. serial execution, the runGrid
 * sweep API, and a golden-value regression pinning single-run results to
 * the seed model.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "core/sim/engine.hh"

namespace memtherm
{
namespace
{

/** Small Chapter 4 setup shared by the engine tests. */
SimConfig
smallConfig()
{
    SimConfig cfg = makeCh4Config(coolingAohs15(), false);
    cfg.copiesPerApp = 2;
    return cfg;
}

/** Exact (bitwise) equality of two results, traces included. */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.runningTime, b.runningTime);
    EXPECT_EQ(a.totalInstr, b.totalInstr);
    EXPECT_EQ(a.totalReadGB, b.totalReadGB);
    EXPECT_EQ(a.totalWriteGB, b.totalWriteGB);
    EXPECT_EQ(a.totalL2Misses, b.totalL2Misses);
    EXPECT_EQ(a.memEnergy, b.memEnergy);
    EXPECT_EQ(a.cpuEnergy, b.cpuEnergy);
    EXPECT_EQ(a.maxAmb, b.maxAmb);
    EXPECT_EQ(a.maxDram, b.maxDram);
    EXPECT_EQ(a.timeAboveAmbTdp, b.timeAboveAmbTdp);
    EXPECT_EQ(a.timeAboveDramTdp, b.timeAboveDramTdp);
    EXPECT_EQ(a.ambTrace.values(), b.ambTrace.values());
    EXPECT_EQ(a.dramTrace.values(), b.dramTrace.values());
    EXPECT_EQ(a.inletTrace.values(), b.inletTrace.values());
    EXPECT_EQ(a.cpuPowerTrace.values(), b.cpuPowerTrace.values());
    EXPECT_EQ(a.bwTrace.values(), b.bwTrace.values());
}

TEST(ExperimentEngine, ThreadCountResolution)
{
    EXPECT_EQ(ExperimentEngine(1).threads(), 1);
    EXPECT_EQ(ExperimentEngine(3).threads(), 3);
    EXPECT_GE(ExperimentEngine::defaultThreads(), 1);

    setenv("MEMTHERM_THREADS", "5", 1);
    EXPECT_EQ(ExperimentEngine::defaultThreads(), 5);
    EXPECT_EQ(ExperimentEngine(0).threads(), 5);
    EXPECT_EQ(ExperimentEngine(2).threads(), 2); // explicit wins
    unsetenv("MEMTHERM_THREADS");
}

TEST(ExperimentEngine, ParallelMatchesSerialBitExactly)
{
    SimConfig cfg = smallConfig();
    std::vector<Workload> ws{workloadMix("W1"), workloadMix("W4")};
    std::vector<std::string> pols{"No-limit", "DTM-TS", "DTM-ACG+PID"};

    // The reference: the historical serial loop, one simulator reused
    // across runs (each run re-seeds its own sensor RNG stream from
    // cfg.sensorSeed, so run order cannot leak between results).
    ThermalSimulator sim(cfg);
    SuiteResults serial;
    for (const auto &w : ws) {
        for (const auto &pname : pols) {
            auto policy = makeCh4Policy(pname, cfg.dtmInterval);
            serial[w.name][pname] = sim.run(w, *policy);
        }
    }

    ExperimentEngine pooled(4);
    SuiteResults parallel = pooled.runSuite(cfg, ws, pols);

    ASSERT_EQ(parallel.size(), serial.size());
    for (const auto &[wname, per_policy] : serial) {
        ASSERT_EQ(parallel.count(wname), 1u);
        ASSERT_EQ(parallel.at(wname).size(), per_policy.size());
        for (const auto &[pname, res] : per_policy) {
            SCOPED_TRACE(wname + "/" + pname);
            expectIdentical(parallel.at(wname).at(pname), res);
        }
    }

    // An engine with one thread (inline mode) agrees too.
    ExperimentEngine inline_engine(1);
    SuiteResults serial_engine = inline_engine.runSuite(cfg, ws, pols);
    for (const auto &[wname, per_policy] : serial)
        for (const auto &[pname, res] : per_policy)
            expectIdentical(serial_engine.at(wname).at(pname), res);
}

TEST(ExperimentEngine, RunPreservesInputOrder)
{
    SimConfig cfg = smallConfig();
    Workload w1 = workloadMix("W1");

    ExperimentEngine engine(4);
    std::vector<ExperimentEngine::Run> runs{
        {cfg, w1, "DTM-ACG", {}},
        {cfg, w1, "No-limit", {}},
        {cfg, w1, "DTM-TS", {}},
    };
    std::vector<SimResult> results = engine.run(runs);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].policy, "DTM-ACG");
    EXPECT_EQ(results[1].policy, "No-limit");
    EXPECT_EQ(results[2].policy, "DTM-TS");
}

TEST(ExperimentEngine, RunGridMatchesPerConfigSuites)
{
    std::vector<SimConfig> cfgs;
    for (double inlet : {46.0, 50.0}) {
        SimConfig cfg = smallConfig();
        cfg.ambient.tInlet = inlet;
        cfgs.push_back(cfg);
    }
    std::vector<Workload> ws{workloadMix("W1")};
    std::vector<std::string> pols{"No-limit", "DTM-BW"};

    ExperimentEngine engine(4);
    GridResults grid = engine.runGrid(cfgs, ws, pols);
    ASSERT_EQ(grid.size(), cfgs.size());

    for (std::size_t c = 0; c < cfgs.size(); ++c) {
        SuiteResults one = engine.runSuite(cfgs[c], ws, pols);
        for (const auto &[wname, per_policy] : one)
            for (const auto &[pname, res] : per_policy) {
                SCOPED_TRACE("cfg " + std::to_string(c) + " " + wname +
                             "/" + pname);
                expectIdentical(grid[c].at(wname).at(pname), res);
            }
    }

    // The hotter room must actually change the outcome (the sweep isn't
    // degenerate). Running time is window-quantized, so compare the peak
    // temperature, which tracks the inlet directly.
    EXPECT_LT(grid[0].at("W1").at("DTM-BW").maxAmb,
              grid[1].at("W1").at("DTM-BW").maxAmb);
}

TEST(ExperimentEngine, ScratchReuseAcrossHeterogeneousRuns)
{
    // One worker executes both runs back to back with one Scratch; a
    // fresh engine runs them in separate batches. Any cross-run leakage
    // through the scratch buffers would diverge.
    SimConfig cfg4 = smallConfig();
    SimConfig cfg8 = smallConfig();
    cfg8.nCores = 8;
    cfg8.cpuPowerTable = TableCpuPowerModel{8};
    Workload w1 = workloadMix("W1");

    ExperimentEngine seq(1);
    std::vector<SimResult> chained = seq.run({
        {cfg8, w1, "DTM-ACG", {}},
        {cfg4, w1, "DTM-ACG", {}},
    });

    ExperimentEngine fresh1(1), fresh2(1);
    std::vector<SimResult> alone8 = fresh1.run({{cfg8, w1, "DTM-ACG", {}}});
    std::vector<SimResult> alone4 = fresh2.run({{cfg4, w1, "DTM-ACG", {}}});

    expectIdentical(chained[0], alone8[0]);
    expectIdentical(chained[1], alone4[0]);
}

TEST(ExperimentEngine, PolicyErrorsPropagate)
{
    SimConfig cfg = smallConfig();
    Workload w1 = workloadMix("W1");
    ExperimentEngine engine(2);
    std::vector<ExperimentEngine::Run> runs{
        {cfg, w1, "No-limit", {}},
        {cfg, w1, "not-a-policy", {}},
    };
    EXPECT_THROW(engine.run(runs), FatalError);
}

TEST(ExperimentEngine, ErrorsCarryTheFailingRunsIdentity)
{
    SimConfig cfg = smallConfig();
    Workload w1 = workloadMix("W1");
    ExperimentEngine engine(2);
    std::vector<ExperimentEngine::Run> runs{
        {cfg, w1, "No-limit", {}},
        {cfg, w1, "not-a-policy", {}},
    };
    try {
        engine.run(runs);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        // A bare what() from a large grid is undebuggable; the label
        // must name the run, not just the symptom.
        const std::string msg = e.what();
        EXPECT_NE(msg.find("run #1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("workload 'W1'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("policy 'not-a-policy'"), std::string::npos)
            << msg;
    }
}

/** Records everything the engine hands it, for the sink-contract tests. */
class RecordingSink : public RunSink
{
  public:
    void onResult(std::size_t i, SimResult &&r, double wall_s) override
    {
        results.emplace_back(i, std::move(r));
        wall.push_back(wall_s);
    }

    void onFailure(std::size_t i, std::exception_ptr err) override
    {
        failures.emplace_back(i, err);
    }

    std::vector<std::pair<std::size_t, SimResult>> results;
    std::vector<double> wall;
    std::vector<std::pair<std::size_t, std::exception_ptr>> failures;
};

TEST(ExperimentEngine, SinkReceivesEveryRunExactlyOnce)
{
    SimConfig cfg = smallConfig();
    Workload w1 = workloadMix("W1");
    std::vector<ExperimentEngine::Run> runs{
        {cfg, w1, "No-limit", {}},
        {cfg, w1, "DTM-BW", {}},
        {cfg, w1, "DTM-TS", {}},
    };

    ExperimentEngine engine(4);
    std::vector<SimResult> reference = engine.run(runs);

    RecordingSink sink;
    engine.run(runs, sink);
    ASSERT_EQ(sink.results.size(), runs.size());
    EXPECT_TRUE(sink.failures.empty());

    std::vector<bool> seen(runs.size(), false);
    for (const auto &[i, r] : sink.results) {
        ASSERT_LT(i, runs.size());
        EXPECT_FALSE(seen[i]) << "index " << i << " delivered twice";
        seen[i] = true;
        SCOPED_TRACE("run " + std::to_string(i));
        expectIdentical(r, reference[i]);
    }
    for (double w : sink.wall)
        EXPECT_GE(w, 0.0);
}

TEST(ExperimentEngine, SinkIsolatesPerRunFailures)
{
    SimConfig cfg = smallConfig();
    Workload w1 = workloadMix("W1");
    // Run 1 fails at policy construction; the rest must still deliver.
    std::vector<ExperimentEngine::Run> runs{
        {cfg, w1, "No-limit", {}},
        {cfg, w1, "not-a-policy", {}},
        {cfg, w1, "DTM-BW", {}},
    };

    ExperimentEngine engine(2);
    RecordingSink sink;
    engine.run(runs, sink); // must not throw
    ASSERT_EQ(sink.failures.size(), 1u);
    EXPECT_EQ(sink.failures[0].first, 1u);
    EXPECT_THROW(std::rethrow_exception(sink.failures[0].second),
                 FatalError);
    ASSERT_EQ(sink.results.size(), 2u);
}

/**
 * Golden regression: single-run results must stay bit-compatible with
 * the seed model (values captured from the pre-engine serial simulator
 * at copiesPerApp = 4). A tight relative tolerance (1e-9) guards
 * against accidental model drift while tolerating FP-contraction
 * differences across compilers.
 */
TEST(ExperimentEngine, GoldenSingleRunRegression)
{
    SimConfig cfg = makeCh4Config(coolingAohs15(), false);
    cfg.copiesPerApp = 4;
    Workload w1 = workloadMix("W1");

    struct Golden
    {
        const char *policy;
        double runningTime, totalInstr, totalReadGB, totalWriteGB;
        double totalL2Misses, memEnergy, cpuEnergy, maxAmb, maxDram;
        double timeAboveAmbTdp;
    };
    const Golden goldens[] = {
        {"No-limit", 52.839999999998057, 208073310463.33276,
         709.69764028742793, 207.86325668079581, 9920390319.6735783,
         6893.4374632337567, 13703.255000001236, 112.16090148399269,
         79.249043801909778, 15.439999999999715},
        {"DTM-ACG", 63.009999999996033, 208126113185.9162,
         637.58129234000114, 192.5737074714973, 8931736234.944952,
         7649.0557728926588, 13195.790000001522, 109.36011129133601,
         78.4633038644576, 0.0},
        {"DTM-CDVFS+PID", 65.699999999996706, 208075313472.96118,
         687.4861431146926, 206.41235944805516, 9844933639.7374935,
         8036.8237674004495, 11698.669750002215, 109.83255692828109,
         78.690995731864703, 0.0},
    };

    auto near = [](double v, double g) {
        double tol = std::abs(g) * 1e-9 + 1e-12;
        EXPECT_NEAR(v, g, tol);
    };

    ThermalSimulator sim(cfg);
    for (const Golden &g : goldens) {
        SCOPED_TRACE(g.policy);
        auto policy = makeCh4Policy(g.policy, cfg.dtmInterval);
        SimResult r = sim.run(w1, *policy);
        near(r.runningTime, g.runningTime);
        near(r.totalInstr, g.totalInstr);
        near(r.totalReadGB, g.totalReadGB);
        near(r.totalWriteGB, g.totalWriteGB);
        near(r.totalL2Misses, g.totalL2Misses);
        near(r.memEnergy, g.memEnergy);
        near(r.cpuEnergy, g.cpuEnergy);
        near(r.maxAmb, g.maxAmb);
        near(r.maxDram, g.maxDram);
        near(r.timeAboveAmbTdp, g.timeAboveAmbTdp);
    }
}

} // namespace
} // namespace memtherm
