/**
 * @file
 * Property tests over the (workload x policy x cooling) grid: every DTM
 * policy must keep the system near or below its thermal design points,
 * conserve the batch's instruction volume, and complete. Sensor-noise
 * injection checks robustness of the decision loop.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/logging.hh"
#include "core/sim/experiment.hh"

namespace memtherm
{
namespace
{

SimConfig
gridConfig(bool aohs)
{
    SimConfig cfg = makeCh4Config(aohs ? coolingAohs15() : coolingFdhs10(),
                                  false);
    cfg.copiesPerApp = 3;
    return cfg;
}

using GridParam = std::tuple<std::string, std::string, bool>;

class PolicyGrid : public ::testing::TestWithParam<GridParam>
{
};

TEST_P(PolicyGrid, SafetyConservationCompletion)
{
    auto [workload, policy_name, aohs] = GetParam();
    SimConfig cfg = gridConfig(aohs);
    ThermalSimulator sim(cfg);
    Workload w = workloadMix(workload);

    auto base_policy = makeCh4Policy("No-limit");
    auto policy = makeCh4Policy(policy_name);
    SimResult base = sim.run(w, *base_policy);
    SimResult r = sim.run(w, *policy);

    // Completion.
    ASSERT_TRUE(r.completed);
    // Conservation: the batch executes the same instruction volume under
    // any policy (within the retirement-granularity slack of one window).
    EXPECT_NEAR(r.totalInstr, base.totalInstr, 0.01 * base.totalInstr);
    // Thermal safety: one DTM interval of inertia past the trigger is
    // the worst case; beyond that the policy failed.
    EXPECT_LE(r.maxAmb, cfg.limits.ambTdp + 0.1);
    EXPECT_LE(r.maxDram, cfg.limits.dramTdp + 0.1);
    // A thermally constrained policy can't beat no-limit by more than
    // the cache-contention bonus allows.
    EXPECT_GT(r.runningTime, 0.85 * base.runningTime);
    // Energy accounting is positive and consistent.
    EXPECT_GT(r.memEnergy, 0.0);
    EXPECT_GT(r.cpuEnergy, 0.0);
    EXPECT_GE(r.avgBandwidth(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Ch4, PolicyGrid,
    ::testing::Combine(::testing::Values("W1", "W4", "W6", "W8"),
                       ::testing::Values("DTM-TS", "DTM-BW", "DTM-ACG",
                                         "DTM-CDVFS", "DTM-ACG+PID",
                                         "DTM-CDVFS+PID"),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<GridParam> &info) {
        std::string name = std::get<0>(info.param) + "_" +
                           std::get<1>(info.param) +
                           (std::get<2>(info.param) ? "_AOHS" : "_FDHS");
        for (char &c : name)
            if (c == '-' || c == '+')
                c = '_';
        return name;
    });

TEST(SensorNoise, PolicyStaysSafeWithNoisySensors)
{
    // Failure injection: quantized, noisy sensors (as on the real AMBs)
    // must not break thermal safety — at most a small excursion over the
    // TDP bounded by the noise amplitude.
    SimConfig cfg = gridConfig(true);
    cfg.sensorNoiseSigma = 0.5;
    cfg.sensorQuant = 0.5;
    ThermalSimulator sim(cfg);
    for (const char *name : {"DTM-BW", "DTM-ACG+PID"}) {
        auto policy = makeCh4Policy(name);
        SimResult r = sim.run(workloadMix("W1"), *policy);
        EXPECT_TRUE(r.completed) << name;
        EXPECT_LE(r.maxAmb, cfg.limits.ambTdp + 3.0 * 0.5) << name;
    }
}

TEST(SensorNoise, DifferentSeedsDifferentRuns)
{
    SimConfig cfg = gridConfig(true);
    cfg.sensorNoiseSigma = 0.5;
    ThermalSimulator sim1(cfg);
    cfg.sensorSeed = 1234;
    ThermalSimulator sim2(cfg);
    auto p1 = makeCh4Policy("DTM-BW");
    auto p2 = makeCh4Policy("DTM-BW");
    SimResult a = sim1.run(workloadMix("W1"), *p1);
    SimResult b = sim2.run(workloadMix("W1"), *p2);
    EXPECT_NE(a.runningTime, b.runningTime);
    // But both within a whisker of each other — noise must not dominate.
    EXPECT_NEAR(a.runningTime, b.runningTime, 0.05 * a.runningTime);
}

TEST(DtmIntervalProperty, ResultsStableAcrossReasonableIntervals)
{
    // Fig. 4.11's premise: 10/20/100 ms intervals agree within a few
    // percent (the thermal time constants are tens of seconds).
    SimConfig base = gridConfig(true);
    std::vector<double> times;
    for (Seconds itv : {0.01, 0.02, 0.1}) {
        SimConfig cfg = base;
        cfg.dtmInterval = itv;
        ThermalSimulator sim(cfg);
        auto policy = makeCh4Policy("DTM-BW");
        times.push_back(sim.run(workloadMix("W2"), *policy).runningTime);
    }
    for (double t : times)
        EXPECT_NEAR(t, times[0], 0.04 * times[0]);
}

TEST(BatchTail, FewerThanFourAppsAtTheEnd)
{
    // Section 5.3.2: at the end of a batch fewer than four applications
    // run; the simulator must wind down rather than stall.
    SimConfig cfg = gridConfig(true);
    cfg.copiesPerApp = 1;
    ThermalSimulator sim(cfg);
    auto policy = makeCh4Policy("No-limit");
    SimResult r = sim.run(workloadMix("W5"), *policy);
    EXPECT_TRUE(r.completed);
}

TEST(Extremes, SingleCorePlatform)
{
    SimConfig cfg = gridConfig(true);
    cfg.nCores = 1;
    ThermalSimulator sim(cfg);
    auto policy = makeCh4Policy("DTM-TS");
    SimResult r = sim.run(workloadMix("W1"), *policy);
    EXPECT_TRUE(r.completed);
    EXPECT_LE(r.maxAmb, cfg.limits.ambTdp + 0.1);
}

TEST(Extremes, TinyThermalHeadroom)
{
    // An almost-impossible envelope: correctness (no TDP breach), even
    // if progress is slow.
    SimConfig cfg = gridConfig(true);
    cfg.copiesPerApp = 1;
    cfg.instrScale = 0.3;
    cfg.ambient.tInlet = 58.0;
    cfg.maxSimTime = 3000.0;
    ThermalSimulator sim(cfg);
    auto policy = makeCh4Policy("DTM-ACG");
    SimResult r = sim.run(workloadMix("W8"), *policy);
    EXPECT_LE(r.maxAmb, cfg.limits.ambTdp + 0.1);
}

} // namespace
} // namespace memtherm
