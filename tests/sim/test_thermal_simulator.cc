/**
 * @file
 * Integration tests for the two-level thermal simulator.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/sim/experiment.hh"

namespace memtherm
{
namespace
{

/** A small but thermally meaningful configuration. */
SimConfig
smallConfig()
{
    SimConfig cfg = makeCh4Config(coolingAohs15(), false);
    cfg.copiesPerApp = 8;
    cfg.instrScale = 1.0;
    cfg.traceSample = 1.0;
    return cfg;
}

TEST(ThermalSimulator, NoLimitCompletesAndHeats)
{
    SimConfig cfg = smallConfig();
    ThermalSimulator sim(cfg);
    auto policy = makeCh4Policy("No-limit");
    SimResult r = sim.run(workloadMix("W1"), *policy);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.runningTime, 50.0);
    // W1 is memory-hot: without DTM the AMB exceeds its TDP.
    EXPECT_GT(r.maxAmb, 110.0);
    EXPECT_GT(r.timeAboveAmbTdp, 0.0);
    EXPECT_GT(r.totalTrafficGB(), 100.0);
    EXPECT_GT(r.totalInstr, 1e11);
}

TEST(ThermalSimulator, DtmKeepsTemperatureAtOrBelowTdp)
{
    SimConfig cfg = smallConfig();
    ThermalSimulator sim(cfg);
    for (const char *name : {"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"}) {
        auto policy = makeCh4Policy(name);
        SimResult r = sim.run(workloadMix("W1"), *policy);
        EXPECT_TRUE(r.completed) << name;
        // The DTM interval plus RC inertia allow only epsilon overshoot.
        EXPECT_LE(r.maxAmb, 110.05) << name;
        EXPECT_LE(r.maxDram, 85.05) << name;
    }
}

TEST(ThermalSimulator, DtmCostsTimeButSavesHeat)
{
    SimConfig cfg = smallConfig();
    ThermalSimulator sim(cfg);
    auto base = makeCh4Policy("No-limit");
    auto ts = makeCh4Policy("DTM-TS");
    SimResult rb = sim.run(workloadMix("W1"), *base);
    SimResult rt = sim.run(workloadMix("W1"), *ts);
    EXPECT_GT(rt.runningTime, rb.runningTime * 1.2);
    EXPECT_LT(rt.maxAmb, rb.maxAmb);
    // Same batch -> same instruction volume.
    EXPECT_NEAR(rt.totalInstr, rb.totalInstr, rb.totalInstr * 0.01);
}

TEST(ThermalSimulator, AcgReducesTraffic)
{
    SimConfig cfg = smallConfig();
    ThermalSimulator sim(cfg);
    auto ts = makeCh4Policy("DTM-TS");
    auto acg = makeCh4Policy("DTM-ACG");
    SimResult rt = sim.run(workloadMix("W1"), *ts);
    SimResult ra = sim.run(workloadMix("W1"), *acg);
    // Section 4.4.2: ACG cuts total memory traffic via fewer L2 misses
    // and runs faster than TS.
    EXPECT_LT(ra.totalTrafficGB(), rt.totalTrafficGB() * 0.95);
    EXPECT_LT(ra.runningTime, rt.runningTime);
    EXPECT_LT(ra.totalL2Misses, rt.totalL2Misses * 0.95);
}

TEST(ThermalSimulator, CdvfsSavesCpuEnergy)
{
    SimConfig cfg = smallConfig();
    ThermalSimulator sim(cfg);
    auto ts = makeCh4Policy("DTM-TS");
    auto cdvfs = makeCh4Policy("DTM-CDVFS");
    SimResult rt = sim.run(workloadMix("W1"), *ts);
    SimResult rc = sim.run(workloadMix("W1"), *cdvfs);
    EXPECT_LT(rc.cpuEnergy, rt.cpuEnergy * 0.80);
}

TEST(ThermalSimulator, BwBurnsCpuEnergy)
{
    // DTM-BW leaves the processor spinning at full speed (Section 4.4.3).
    SimConfig cfg = smallConfig();
    ThermalSimulator sim(cfg);
    auto ts = makeCh4Policy("DTM-TS");
    auto bw = makeCh4Policy("DTM-BW");
    SimResult rt = sim.run(workloadMix("W1"), *ts);
    SimResult rb = sim.run(workloadMix("W1"), *bw);
    EXPECT_GT(rb.cpuEnergy, rt.cpuEnergy * 1.2);
}

TEST(ThermalSimulator, IntegratedModelRunsHotter)
{
    // With CPU->memory coupling the same workload reaches emergency more
    // easily; the run takes longer under the same policy.
    SimConfig iso = smallConfig();
    SimConfig integ = makeCh4Config(coolingAohs15(), true);
    integ.copiesPerApp = iso.copiesPerApp;
    ThermalSimulator sim_iso(iso), sim_int(integ);
    auto p1 = makeCh4Policy("DTM-BW");
    auto p2 = makeCh4Policy("DTM-BW");
    SimResult r_iso = sim_iso.run(workloadMix("W5"), *p1);
    SimResult r_int = sim_int.run(workloadMix("W5"), *p2);
    // Integrated inlet rises above its 45C baseline.
    EXPECT_GT(r_int.inletTrace.max(), 47.0);
}

TEST(ThermalSimulator, TracesCoverRun)
{
    SimConfig cfg = smallConfig();
    ThermalSimulator sim(cfg);
    auto policy = makeCh4Policy("DTM-TS");
    SimResult r = sim.run(workloadMix("W6"), *policy);
    EXPECT_NEAR(r.ambTrace.duration(), r.runningTime, 2.0);
    EXPECT_GT(r.ambTrace.max(), 100.0);
    EXPECT_EQ(r.ambTrace.size(), r.cpuPowerTrace.size());
}

TEST(ThermalSimulator, EnergyEqualsPowerIntegral)
{
    SimConfig cfg = smallConfig();
    ThermalSimulator sim(cfg);
    auto policy = makeCh4Policy("DTM-BW");
    SimResult r = sim.run(workloadMix("W8"), *policy);
    // The 1 Hz CPU power trace integral must approximate the exact
    // accumulated energy.
    EXPECT_NEAR(r.cpuPowerTrace.integral(), r.cpuEnergy,
                0.02 * r.cpuEnergy);
}

TEST(ThermalSimulator, DeterministicRuns)
{
    SimConfig cfg = smallConfig();
    ThermalSimulator sim(cfg);
    auto p1 = makeCh4Policy("DTM-ACG");
    auto p2 = makeCh4Policy("DTM-ACG");
    SimResult a = sim.run(workloadMix("W3"), *p1);
    SimResult b = sim.run(workloadMix("W3"), *p2);
    EXPECT_DOUBLE_EQ(a.runningTime, b.runningTime);
    EXPECT_DOUBLE_EQ(a.totalTrafficGB(), b.totalTrafficGB());
    EXPECT_DOUBLE_EQ(a.memEnergy, b.memEnergy);
}

TEST(ThermalSimulator, ConfigValidation)
{
    SimConfig cfg = smallConfig();
    cfg.window = 0.02;
    cfg.dtmInterval = 0.01; // interval < window is invalid
    EXPECT_THROW(ThermalSimulator{cfg}, PanicError);
}

} // namespace
} // namespace memtherm
