/**
 * @file
 * Unit tests for the string-keyed registries: completeness (every
 * documented name resolves), error-returning lookups, and diagnostics
 * that list the valid keys.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/dtm/basic_policies.hh"
#include "core/sim/experiment.hh"
#include "core/sim/registry.hh"
#include "testbed/platform.hh"

namespace memtherm
{
namespace
{

TEST(PolicyRegistry, EveryCh4NameResolves)
{
    auto &reg = PolicyRegistry::instance();
    std::vector<std::string> lineup = ch4PolicyNames(true);
    lineup.push_back("No-limit");
    for (const auto &name : lineup) {
        SCOPED_TRACE(name);
        EXPECT_TRUE(reg.contains(name));
        std::string error;
        auto p = reg.tryMake(name, 0.01, &error);
        ASSERT_NE(p, nullptr) << error;
        EXPECT_EQ(error, "");
    }
    // The non-PID subset is covered by the full lineup.
    for (const auto &name : ch4PolicyNames(false))
        EXPECT_TRUE(reg.contains(name));
}

TEST(PolicyRegistry, UnknownNameListsValidKeys)
{
    auto &reg = PolicyRegistry::instance();
    std::string error;
    EXPECT_EQ(reg.tryMake("DTM-TURBO", 0.01, &error), nullptr);
    EXPECT_NE(error.find("unknown policy 'DTM-TURBO'"), std::string::npos)
        << error;
    EXPECT_NE(error.find("No-limit"), std::string::npos) << error;
    EXPECT_NE(error.find("DTM-CDVFS+PID"), std::string::npos) << error;

    // tryMake without an error sink is quiet; make() throws the same
    // diagnostic; the makeCh4Policy wrapper keeps its FatalError contract.
    EXPECT_EQ(reg.tryMake("DTM-TURBO", 0.01), nullptr);
    EXPECT_THROW(reg.make("DTM-TURBO", 0.01), FatalError);
    EXPECT_THROW(makeCh4Policy("DTM-TS+PID"), FatalError);
    try {
        reg.make("DTM-TURBO", 0.01);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("valid:"), std::string::npos)
            << e.what();
    }
}

TEST(PolicyRegistry, CustomPoliciesRegister)
{
    auto &reg = PolicyRegistry::instance();
    ASSERT_FALSE(reg.contains("TEST-custom"));
    reg.add("TEST-custom", [](const PolicyBuildContext &) {
        return std::make_unique<NoLimitPolicy>();
    });
    EXPECT_TRUE(reg.contains("TEST-custom"));
    auto p = reg.tryMake("TEST-custom", 0.01);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name(), "No-limit");

    auto names = reg.names();
    EXPECT_EQ(names.back(), "TEST-custom");
}

TEST(Catalogs, CoolingNamesResolve)
{
    auto names = coolingNames();
    ASSERT_EQ(names.size(), 6u); // 2 spreaders x 3 air velocities
    for (const auto &n : names) {
        SCOPED_TRACE(n);
        auto c = tryCooling(n);
        ASSERT_TRUE(c.has_value());
        EXPECT_EQ(c->name(), n); // the key is the config's own name
    }
    EXPECT_EQ(coolingByName("AOHS_1.5").psiAmb, coolingAohs15().psiAmb);
    EXPECT_FALSE(tryCooling("WATER_9000").has_value());
    try {
        coolingByName("WATER_9000");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("FDHS_1.0"), std::string::npos)
            << e.what();
    }
}

TEST(Catalogs, AmbientPresetsResolve)
{
    CoolingConfig cooling = coolingAohs15();
    for (const auto &n : ambientNames()) {
        SCOPED_TRACE(n);
        EXPECT_TRUE(tryAmbient(n, cooling).has_value());
    }
    EXPECT_EQ(ambientByName("isolated", cooling).psiCpuMemXi, 0.0);
    EXPECT_GT(ambientByName("integrated", cooling).psiCpuMemXi, 0.0);
    EXPECT_FALSE(tryAmbient("underwater", cooling).has_value());
    EXPECT_THROW(ambientByName("underwater", cooling), FatalError);
}

TEST(Catalogs, WorkloadNamesResolve)
{
    for (const auto &n : workloadNames()) {
        SCOPED_TRACE(n);
        auto w = tryWorkload(n);
        ASSERT_TRUE(w.has_value());
        EXPECT_EQ(w->name, n);
        EXPECT_FALSE(w->apps.empty());
    }

    // Homogeneous "<app>x<n>" batches.
    auto homo = tryWorkload("swimx4");
    ASSERT_TRUE(homo.has_value());
    EXPECT_EQ(homo->apps.size(), 4u);
    EXPECT_EQ(homo->apps[0]->name, "swim");

    EXPECT_FALSE(tryWorkload("W99").has_value());
    EXPECT_FALSE(tryWorkload("nosuchappx4").has_value());
    EXPECT_FALSE(tryWorkload("swimx0").has_value());
    // Overflowing copy counts are bad names, not internal errors.
    EXPECT_FALSE(tryWorkload("swimx99999999999999999999").has_value());
    EXPECT_THROW(workloadByName("W99"), FatalError);
}

TEST(PolicyRegistry, BuildContextLaddersApplyToLeveledSchemes)
{
    auto &reg = PolicyRegistry::instance();
    EmergencyLevels pe = emergencyLevelsByName("pe1950");

    for (const char *name : {"DTM-BW", "DTM-ACG", "DTM-CDVFS"}) {
        SCOPED_TRACE(name);
        auto p = reg.make(name, PolicyBuildContext{0.01, pe});
        auto *lp = dynamic_cast<LeveledPolicy *>(p.get());
        ASSERT_NE(lp, nullptr);
        EXPECT_EQ(lp->levelTable().ambBounds(), pe.ambBounds());
        EXPECT_EQ(lp->levelTable().dramBounds(), pe.dramBounds());
    }

    // The default context (and the Seconds overloads) keep Table 4.3.
    auto p = reg.make("DTM-BW", 0.01);
    auto *lp = dynamic_cast<LeveledPolicy *>(p.get());
    ASSERT_NE(lp, nullptr);
    EXPECT_EQ(lp->levelTable().ambBounds(),
              ch4EmergencyLevels().ambBounds());

    // The Chapter 4 action tables are five rows; other depths are a
    // usable configuration error, not a panic.
    EmergencyLevels shallow({100.0}, {80.0});
    EXPECT_THROW(reg.make("DTM-BW", PolicyBuildContext{0.01, shallow}),
                 FatalError);
}

TEST(Catalogs, EmergencyLevelNamesResolve)
{
    for (const auto &n : emergencyLevelNames()) {
        SCOPED_TRACE(n);
        auto l = tryEmergencyLevels(n);
        ASSERT_TRUE(l.has_value());
        // Every catalog ladder fits the five-level Chapter 4 tables.
        EXPECT_EQ(l->numLevels(), 5);
    }
    EXPECT_EQ(emergencyLevelsByName("ch4").ambBounds(),
              ch4EmergencyLevels().ambBounds());
    // The Table 5.1 variants carry the platform AMB ladders with the
    // DRAM boundaries parked out of reach.
    EmergencyLevels pe = emergencyLevelsByName("pe1950");
    EXPECT_EQ(pe.ambBounds(), pe1950().ambBounds);
    EXPECT_GE(pe.dramBounds().front(), 200.0);
    EXPECT_LT(emergencyLevelsByName("sr1500al_tdp90").ambBounds().back(),
              emergencyLevelsByName("sr1500al").ambBounds().back());

    EXPECT_FALSE(tryEmergencyLevels("lava").has_value());
    try {
        emergencyLevelsByName("lava");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("sr1500al"), std::string::npos)
            << e.what();
    }
}

TEST(Catalogs, DvfsRegistryResolvesAndAcceptsRuntimeTables)
{
    auto &reg = DvfsRegistry::instance();
    for (const auto &n : reg.names()) {
        SCOPED_TRACE(n);
        EXPECT_TRUE(reg.contains(n));
        ASSERT_TRUE(reg.tryGet(n).has_value());
    }
    EXPECT_EQ(reg.byName("simulated_cmp").maxFreq(),
              simulatedCmpDvfs().maxFreq());
    EXPECT_EQ(reg.byName("xeon5160").levels(), xeon5160Dvfs().levels());
    EXPECT_EQ(reg.byName("xeon5160").at(3).freq, xeon5160Dvfs().at(3).freq);

    std::string error;
    EXPECT_FALSE(reg.tryGet("TEST-turbo", &error).has_value());
    EXPECT_NE(error.find("unknown DVFS table 'TEST-turbo'"),
              std::string::npos)
        << error;
    EXPECT_NE(error.find("xeon5160"), std::string::npos) << error;
    EXPECT_THROW(reg.byName("TEST-turbo"), FatalError);

    ASSERT_FALSE(reg.contains("TEST-lowpower"));
    reg.add("TEST-lowpower", DvfsTable({{1.0, 1.0}, {0.5, 0.8}}));
    EXPECT_TRUE(reg.contains("TEST-lowpower"));
    EXPECT_EQ(reg.byName("TEST-lowpower").levels(), 2u);
    EXPECT_EQ(reg.names().back(), "TEST-lowpower");
}

TEST(Catalogs, MemoryOrgNamesResolve)
{
    auto names = memoryOrgNames();
    ASSERT_FALSE(names.empty());
    // The first entry is the Table 4.1 organization SimConfig ships.
    EXPECT_EQ(names.front(), "ch4_4x4");
    EXPECT_EQ(memoryOrgByName("ch4_4x4"), SimConfig{}.org);
    for (const auto &n : names) {
        SCOPED_TRACE(n);
        auto o = tryMemoryOrg(n);
        ASSERT_TRUE(o.has_value());
        EXPECT_GE(o->nChannels, 1);
        EXPECT_GE(o->nDimmsPerChannel, 1);
    }
    EXPECT_EQ(memoryOrgByName("2x4"), (MemoryOrgConfig{2, 4}));
    EXPECT_EQ(memoryOrgByName("4x8").nDimmsPerChannel, 8);
    EXPECT_EQ(memoryOrgByName("8x2").nChannels, 8);

    EXPECT_FALSE(tryMemoryOrg("3x3").has_value());
    try {
        memoryOrgByName("3x3");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("unknown memory organization '3x3'"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("ch4_4x4"), std::string::npos) << msg;
    }
}

TEST(Catalogs, TrafficShapeNamesResolve)
{
    auto names = trafficShapeNames();
    ASSERT_FALSE(names.empty());
    // The first entry is the default interleave the model assumes when
    // the knob is unset.
    EXPECT_EQ(names.front(), "uniform");

    // Every shape, at several chain depths: right arity, non-negative,
    // sums to 1 within the decomposition's own tolerance.
    for (const auto &n : names) {
        for (int dimms : {1, 2, 4, 8}) {
            SCOPED_TRACE(n + " @ " + std::to_string(dimms));
            auto w = tryTrafficShape(n, dimms);
            ASSERT_TRUE(w.has_value());
            ASSERT_EQ(static_cast<int>(w->size()), dimms);
            double sum = 0.0;
            for (double s : *w) {
                EXPECT_GE(s, 0.0);
                sum += s;
            }
            EXPECT_NEAR(sum, 1.0, 1e-9);
        }
        // Every shape degenerates to {1} on a one-DIMM chain.
        EXPECT_EQ(trafficShapeByName(n, 1), std::vector<double>{1.0});
    }

    // "uniform" is exactly 1/n per entry — the bit-identical contract.
    auto uni = trafficShapeByName("uniform", 4);
    for (double s : uni)
        EXPECT_EQ(s, 1.0 / 4);

    // Shape character: front_heavy strictly decreasing down the chain,
    // back_heavy its mirror, hot_dimm0 a half-load head, linear_taper
    // the arithmetic ramp.
    auto front = trafficShapeByName("front_heavy", 4);
    auto back = trafficShapeByName("back_heavy", 4);
    for (int i = 1; i < 4; ++i) {
        EXPECT_GT(front[i - 1], front[i]);
        EXPECT_LT(back[i - 1], back[i]);
        EXPECT_EQ(front[i], back[3 - i]);
    }
    EXPECT_EQ(front[1], front[0] / 2);

    auto hot = trafficShapeByName("hot_dimm0", 4);
    EXPECT_EQ(hot[0], 0.5);
    for (int i = 1; i < 4; ++i)
        EXPECT_EQ(hot[i], 0.5 / 3);

    auto taper = trafficShapeByName("linear_taper", 4);
    EXPECT_EQ(taper, (std::vector<double>{0.4, 0.3, 0.2, 0.1}));

    EXPECT_FALSE(tryTrafficShape("zigzag", 4).has_value());
    try {
        trafficShapeByName("zigzag", 4);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("unknown traffic shape 'zigzag'"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("hot_dimm0"), std::string::npos) << msg;
    }
}

TEST(Catalogs, PlatformNamesResolve)
{
    for (const auto &n : platformNames()) {
        SCOPED_TRACE(n);
        auto p = tryPlatform(n);
        ASSERT_TRUE(p.has_value());
        EXPECT_FALSE(p->ambBounds.empty());
    }
    EXPECT_EQ(platformByName("PE1950").name, pe1950().name);
    EXPECT_FALSE(tryPlatform("PE9999").has_value());
    EXPECT_THROW(platformByName("PE9999"), FatalError);
}

} // namespace
} // namespace memtherm
