/**
 * @file
 * Golden-coverage audit: every shipped example scenario must have a
 * pinned run golden AND a report-CSV golden in tests/data/, so adding a
 * scenario without pinning its results fails CI here by name instead of
 * silently shipping unpinned behavior. tests/data/README.md documents
 * the regeneration loop.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#ifndef MEMTHERM_SOURCE_DIR
#error "tests need MEMTHERM_SOURCE_DIR (set by CMakeLists.txt)"
#endif

namespace memtherm
{
namespace
{

namespace fs = std::filesystem;

TEST(GoldenCoverage, EveryExampleScenarioHasGoldenAndReportCsv)
{
    const fs::path scenarios =
        fs::path(MEMTHERM_SOURCE_DIR) / "examples" / "scenarios";
    const fs::path data = fs::path(MEMTHERM_SOURCE_DIR) / "tests" / "data";
    ASSERT_TRUE(fs::is_directory(scenarios));
    ASSERT_TRUE(fs::is_directory(data));

    std::vector<std::string> missing;
    std::size_t audited = 0;
    for (const auto &entry : fs::directory_iterator(scenarios)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != ".json")
            continue;
        const std::string name = entry.path().stem().string();
        ++audited;
        if (!fs::is_regular_file(data / (name + ".golden.json")))
            missing.push_back(name + ": tests/data/" + name +
                              ".golden.json");
        if (!fs::is_regular_file(data / (name + ".report.csv")))
            missing.push_back(name + ": tests/data/" + name +
                              ".report.csv");
    }
    // The audit itself must be looking at the real catalog.
    EXPECT_GE(audited, 11u);

    std::string what;
    for (const std::string &m : missing)
        what += "\n  missing " + m;
    EXPECT_TRUE(missing.empty())
        << "scenario(s) without pinned goldens (see tests/data/README.md "
           "for the regeneration loop):"
        << what;
}

/** The reverse direction: no orphaned goldens for deleted scenarios. */
TEST(GoldenCoverage, NoOrphanedGoldens)
{
    const fs::path scenarios =
        fs::path(MEMTHERM_SOURCE_DIR) / "examples" / "scenarios";
    const fs::path data = fs::path(MEMTHERM_SOURCE_DIR) / "tests" / "data";

    std::vector<std::string> orphans;
    for (const auto &entry : fs::directory_iterator(data)) {
        const std::string file = entry.path().filename().string();
        std::string stem;
        if (file.size() > 12 &&
            file.substr(file.size() - 12) == ".golden.json")
            stem = file.substr(0, file.size() - 12);
        else if (file.size() > 11 &&
                 file.substr(file.size() - 11) == ".report.csv")
            stem = file.substr(0, file.size() - 11);
        else
            continue; // fixtures like bad_policy.json, README.md
        if (!fs::is_regular_file(scenarios / (stem + ".json")))
            orphans.push_back(file);
    }
    std::string what;
    for (const std::string &o : orphans)
        what += "\n  orphaned tests/data/" + o;
    EXPECT_TRUE(orphans.empty())
        << "golden(s) whose scenario no longer exists:" << what;
}

} // namespace
} // namespace memtherm
