/**
 * @file
 * Unit tests for the FBDIMM power models (Eqs. 3.1, 3.2; Table 3.1).
 */

#include <gtest/gtest.h>

#include "core/power/power_model.hh"

namespace memtherm
{
namespace
{

TEST(DramPower, IdleEqualsStatic)
{
    DramPowerModel m;
    EXPECT_DOUBLE_EQ(m.power(0.0, 0.0), 0.98);
}

TEST(DramPower, Equation31)
{
    // P = 0.98 + 1.12 * read + 1.16 * write (Table 3.1 coefficients).
    DramPowerModel m;
    EXPECT_NEAR(m.power(2.0, 1.0), 0.98 + 2.24 + 1.16, 1e-12);
}

TEST(DramPower, BypassTrafficDoesNotHeatDrams)
{
    DramPowerModel m;
    DimmTraffic t;
    t.bypassRead = 10.0;
    t.bypassWrite = 5.0;
    EXPECT_DOUBLE_EQ(m.power(t), 0.98);
}

TEST(DramPower, LinearInThroughput)
{
    DramPowerModel m;
    double p1 = m.power(1.0, 1.0);
    double p2 = m.power(2.0, 2.0);
    double p3 = m.power(3.0, 3.0);
    EXPECT_NEAR(p3 - p2, p2 - p1, 1e-12);
}

TEST(AmbPower, IdleDependsOnPosition)
{
    // 4.0 W for the last DIMM, 5.1 W otherwise (Table 3.1): the last AMB
    // synchronizes with only one link neighbor.
    AmbPowerModel m;
    EXPECT_DOUBLE_EQ(m.power(0.0, 0.0, true), 4.0);
    EXPECT_DOUBLE_EQ(m.power(0.0, 0.0, false), 5.1);
}

TEST(AmbPower, Equation32)
{
    AmbPowerModel m;
    // P = idle + 0.19 * bypass + 0.75 * local.
    EXPECT_NEAR(m.power(4.0, 2.0, false), 5.1 + 0.76 + 1.5, 1e-12);
    EXPECT_NEAR(m.power(4.0, 2.0, true), 4.0 + 0.76 + 1.5, 1e-12);
}

TEST(AmbPower, LocalTrafficCostsMoreThanBypass)
{
    AmbPowerModel m;
    double local_only = m.power(0.0, 3.0, false);
    double bypass_only = m.power(3.0, 0.0, false);
    EXPECT_GT(local_only, bypass_only);
}

TEST(DimmPower, CombinedModel)
{
    DimmPowerModel m;
    DimmTraffic t;
    t.localRead = 1.0;
    t.localWrite = 0.5;
    t.bypassRead = 2.0;
    DimmPower p = m.power(t, false);
    EXPECT_NEAR(p.dram, 0.98 + 1.12 + 0.58, 1e-12);
    EXPECT_NEAR(p.amb, 5.1 + 0.19 * 2.0 + 0.75 * 1.5, 1e-12);
    EXPECT_NEAR(p.total(), p.dram + p.amb, 1e-12);
}

TEST(DimmPower, PaperScaleSanity)
{
    // A fully loaded hot DIMM (Section 3.1): AMB power density is high —
    // at ~5 GB/s channel traffic the hottest AMB draws ~6-7 W.
    DimmPowerModel m;
    auto traffic = decomposeChannelTraffic(4.0, 1.0, 4);
    DimmPower hot = m.power(traffic[0], false);
    EXPECT_GT(hot.amb, 6.0);
    EXPECT_LT(hot.amb, 8.0);
}

} // namespace
} // namespace memtherm
