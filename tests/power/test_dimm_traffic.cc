/**
 * @file
 * Unit tests for per-DIMM traffic decomposition (Fig. 3.2 bookkeeping).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "core/power/dimm_traffic.hh"

namespace memtherm
{
namespace
{

TEST(DimmTraffic, UniformInterleaveFourDimms)
{
    auto t = decomposeChannelTraffic(4.0, 2.0, 4);
    ASSERT_EQ(t.size(), 4u);
    // Each DIMM gets 1/4 of the local traffic.
    for (const auto &d : t) {
        EXPECT_DOUBLE_EQ(d.localRead, 1.0);
        EXPECT_DOUBLE_EQ(d.localWrite, 0.5);
    }
    // DIMM 0 (nearest the controller) bypasses traffic of DIMMs 1..3.
    EXPECT_DOUBLE_EQ(t[0].bypassRead, 3.0);
    EXPECT_DOUBLE_EQ(t[0].bypassWrite, 1.5);
    EXPECT_DOUBLE_EQ(t[1].bypassRead, 2.0);
    EXPECT_DOUBLE_EQ(t[2].bypassRead, 1.0);
    // The last DIMM bypasses nothing.
    EXPECT_DOUBLE_EQ(t[3].bypassRead, 0.0);
    EXPECT_DOUBLE_EQ(t[3].bypassWrite, 0.0);
}

TEST(DimmTraffic, SingleDimmHasNoBypass)
{
    auto t = decomposeChannelTraffic(3.0, 1.0, 1);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_DOUBLE_EQ(t[0].localRead, 3.0);
    EXPECT_DOUBLE_EQ(t[0].bypass(), 0.0);
}

TEST(DimmTraffic, ConservationAcrossDimms)
{
    auto t = decomposeChannelTraffic(7.0, 3.0, 8);
    double local_read = 0.0, local_write = 0.0;
    for (const auto &d : t) {
        local_read += d.localRead;
        local_write += d.localWrite;
    }
    EXPECT_NEAR(local_read, 7.0, 1e-12);
    EXPECT_NEAR(local_write, 3.0, 1e-12);
}

TEST(DimmTraffic, BypassEqualsDownstreamLocal)
{
    auto t = decomposeChannelTraffic(8.0, 4.0, 4);
    for (std::size_t i = 0; i < t.size(); ++i) {
        double downstream = 0.0;
        for (std::size_t j = i + 1; j < t.size(); ++j)
            downstream += t[j].local();
        EXPECT_NEAR(t[i].bypass(), downstream, 1e-12);
    }
}

TEST(DimmTraffic, CustomShares)
{
    auto t = decomposeChannelTraffic(10.0, 0.0, 2, {0.7, 0.3});
    EXPECT_DOUBLE_EQ(t[0].localRead, 7.0);
    EXPECT_DOUBLE_EQ(t[1].localRead, 3.0);
    EXPECT_DOUBLE_EQ(t[0].bypassRead, 3.0);
}

TEST(DimmTraffic, BadSharesPanic)
{
    EXPECT_THROW(decomposeChannelTraffic(1.0, 0.0, 2, {0.5, 0.6}),
                 PanicError);
    EXPECT_THROW(decomposeChannelTraffic(1.0, 0.0, 2, {1.0}), PanicError);
    EXPECT_THROW(decomposeChannelTraffic(-1.0, 0.0, 2), PanicError);
    EXPECT_THROW(decomposeChannelTraffic(1.0, 0.0, 0), PanicError);
    // Negative shares are rejected even when the vector sums to 1 (a
    // negative entry would mint negative local traffic), and a NaN
    // share fails the same check rather than propagating.
    EXPECT_THROW(decomposeChannelTraffic(1.0, 0.0, 2, {1.5, -0.5}),
                 PanicError);
    EXPECT_THROW(decomposeChannelTraffic(1.0, 0.0, 2, {NAN, 1.0}),
                 PanicError);
}

TEST(DimmTraffic, ZeroShareDimmSeesOnlyBypass)
{
    // An all-traffic-at-the-end split: the head DIMMs do no local work
    // but still relay everything southbound/northbound.
    auto t = decomposeChannelTraffic(6.0, 2.0, 3, {0.0, 0.0, 1.0});
    EXPECT_DOUBLE_EQ(t[0].local(), 0.0);
    EXPECT_DOUBLE_EQ(t[0].bypassRead, 6.0);
    EXPECT_DOUBLE_EQ(t[0].bypassWrite, 2.0);
    EXPECT_DOUBLE_EQ(t[1].local(), 0.0);
    EXPECT_DOUBLE_EQ(t[2].localRead, 6.0);
    EXPECT_DOUBLE_EQ(t[2].bypass(), 0.0);
}

} // namespace
} // namespace memtherm
