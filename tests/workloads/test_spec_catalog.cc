/**
 * @file
 * Unit tests for the application catalog and the paper's throughput-class
 * calibration anchors (Section 4.3.2).
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/logging.hh"
#include "cpu/perf_model.hh"
#include "workloads/spec_catalog.hh"
#include "workloads/workload.hh"

namespace memtherm
{
namespace
{

/** Homogeneous 4-copy throughput at full speed on the Ch. 4 platform. */
double
homogeneousThroughput(const std::string &name)
{
    const auto &app = SpecCatalog::instance().byName(name);
    CoreTask t;
    t.cpiCore = app.cpiCore;
    t.mpki = mpkiAtSharers(app.cache, 4.0);
    t.writeFrac = app.writeFrac;
    t.specFrac = app.specFrac;
    t.mlpOverlap = app.mlpOverlap;
    std::vector<CoreTask> tasks(4, t);
    WindowPerf p = solvePerfWindow(
        tasks, 3.2, 3.2, std::numeric_limits<double>::infinity(), {});
    return p.totalRead + p.totalWrite;
}

TEST(SpecCatalog, TwentyApplications)
{
    const auto &cat = SpecCatalog::instance();
    EXPECT_EQ(cat.all().size(), 20u);
    EXPECT_EQ(cat.bySuite(Suite::CPU2000).size(), 12u);
    EXPECT_EQ(cat.bySuite(Suite::CPU2006).size(), 8u);
}

TEST(SpecCatalog, UnknownNameIsFatal)
{
    EXPECT_THROW(SpecCatalog::instance().byName("gap"), FatalError);
}

TEST(SpecCatalog, HighBandwidthClass)
{
    // Section 4.3.2: these eight exceed 10 GB/s with four copies.
    for (const char *name : {"swim", "mgrid", "applu", "galgel", "art",
                             "equake", "lucas", "fma3d"}) {
        EXPECT_GT(homogeneousThroughput(name), 10.0) << name;
    }
}

TEST(SpecCatalog, ModerateBandwidthClass)
{
    // ... and these four land between 5 and 10 GB/s.
    for (const char *name : {"wupwise", "vpr", "mcf", "apsi"}) {
        double t = homogeneousThroughput(name);
        EXPECT_GT(t, 5.0) << name;
        EXPECT_LT(t, 10.0) << name;
    }
}

TEST(SpecCatalog, CacheSensitiveAppsHaveLargeGap)
{
    const auto &cat = SpecCatalog::instance();
    for (const char *name : {"galgel", "art", "vpr", "apsi"}) {
        const auto &a = cat.byName(name);
        EXPECT_GT(a.cache.mpkiShared / a.cache.mpkiSolo, 2.0) << name;
    }
    // Streaming codes are nearly insensitive.
    for (const char *name : {"swim", "lucas", "libquantum"}) {
        const auto &a = cat.byName(name);
        EXPECT_LT(a.cache.mpkiShared / a.cache.mpkiSolo, 1.3) << name;
    }
}

TEST(SpecCatalog, PhaseFactorBounds)
{
    for (const auto &a : SpecCatalog::instance().all()) {
        for (double t = 0.0; t < 200.0; t += 7.3) {
            double f = phaseFactor(a, t);
            EXPECT_GE(f, 1.0 - a.phaseAmp - 1e-12);
            EXPECT_LE(f, 1.0 + a.phaseAmp + 1e-12);
        }
    }
}

TEST(SpecCatalog, PhaseFactorPeriodicity)
{
    const auto &a = SpecCatalog::instance().byName("swim");
    EXPECT_NEAR(phaseFactor(a, 10.0), phaseFactor(a, 10.0 + a.phasePeriod),
                1e-9);
}

} // namespace
} // namespace memtherm
