/**
 * @file
 * Unit tests for workload mixes and batch jobs (Tables 4.2/5.2,
 * Section 4.3.2 batch semantics).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workloads/workload.hh"

namespace memtherm
{
namespace
{

TEST(WorkloadMix, Table42Contents)
{
    Workload w1 = workloadMix("W1");
    ASSERT_EQ(w1.apps.size(), 4u);
    EXPECT_EQ(w1.apps[0]->name, "swim");
    EXPECT_EQ(w1.apps[3]->name, "galgel");

    Workload w8 = workloadMix("W8");
    EXPECT_EQ(w8.apps[0]->name, "galgel");
    EXPECT_EQ(w8.apps[2]->name, "vpr");
}

TEST(WorkloadMix, Table52Cpu2006Mixes)
{
    Workload w11 = workloadMix("W11");
    EXPECT_EQ(w11.apps[0]->name, "milc");
    EXPECT_EQ(w11.apps[3]->name, "GemsFDTD");
    Workload w12 = workloadMix("W12");
    EXPECT_EQ(w12.apps[0]->name, "libquantum");
    EXPECT_EQ(w12.apps[3]->name, "wrf");
}

TEST(WorkloadMix, UnknownMixIsFatal)
{
    EXPECT_THROW(workloadMix("W99"), FatalError);
}

TEST(WorkloadMix, EightCpu2000Mixes)
{
    auto mixes = cpu2000Mixes();
    ASSERT_EQ(mixes.size(), 8u);
    for (const auto &m : mixes)
        EXPECT_EQ(m.apps.size(), 4u);
}

TEST(WorkloadMix, HomogeneousCopies)
{
    Workload w = homogeneous("swim", 4);
    ASSERT_EQ(w.apps.size(), 4u);
    for (const auto *a : w.apps)
        EXPECT_EQ(a->name, "swim");
    EXPECT_EQ(w.name, "swimx4");
}

TEST(BatchJob, PoolSizeAndInterleaving)
{
    BatchJob job(workloadMix("W1"), 3);
    EXPECT_EQ(job.total(), 12);
    // Dispatch order interleaves apps: copy 0 of each app first.
    auto *a = job.nextPending();
    auto *b = job.nextPending();
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->app->name, "swim");
    EXPECT_EQ(b->app->name, "mgrid");
}

TEST(BatchJob, InstrScaleApplies)
{
    BatchJob job(workloadMix("W1"), 1, 0.5);
    auto *a = job.nextPending();
    const auto &app = *a->app;
    EXPECT_NEAR(a->remainingInstr, app.instrBillions * 1e9 * 0.5, 1.0);
}

TEST(BatchJob, RetireAndDone)
{
    BatchJob job(homogeneous("swim", 1), 2);
    EXPECT_FALSE(job.done());
    auto *a = job.nextPending();
    auto *b = job.nextPending();
    EXPECT_EQ(job.nextPending(), nullptr);
    a->remainingInstr = 0.0;
    job.retire(a);
    EXPECT_FALSE(job.done());
    b->remainingInstr = -1.0;
    job.retire(b);
    EXPECT_TRUE(job.done());
    EXPECT_EQ(job.finished(), 2);
}

TEST(BatchJob, RetiringUnfinishedPanics)
{
    BatchJob job(homogeneous("swim", 1), 1);
    auto *a = job.nextPending();
    EXPECT_THROW(job.retire(a), PanicError);
}

TEST(BatchJob, InvalidArgsPanic)
{
    EXPECT_THROW(BatchJob(workloadMix("W1"), 0), PanicError);
    EXPECT_THROW(BatchJob(workloadMix("W1"), 1, 0.0), PanicError);
}

} // namespace
} // namespace memtherm
