/**
 * @file
 * Doc-drift guard: the reference manual under docs/ must track the code.
 *
 * Every name a registry catalog exposes has to appear in
 * docs/scenarios.md, and docs/cli.md has to cover every `memtherm`
 * subcommand and every `memtherm list` catalog keyword — so a new
 * catalog entry or subcommand cannot land undocumented. README.md must
 * keep linking into docs/.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/sim/registry.hh"

#ifndef MEMTHERM_SOURCE_DIR
#error "tests need MEMTHERM_SOURCE_DIR (set by CMakeLists.txt)"
#endif

namespace memtherm
{
namespace
{

std::string
readFile(const std::string &rel)
{
    const std::string path = std::string(MEMTHERM_SOURCE_DIR) + "/" + rel;
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

void
expectMentions(const std::string &doc, const std::string &doc_name,
               const std::vector<std::string> &names,
               const std::string &catalog)
{
    for (const auto &n : names) {
        EXPECT_NE(doc.find(n), std::string::npos)
            << doc_name << " does not mention " << catalog << " entry '"
            << n << "' — document every catalog name (this guard is how "
            << "new entries are kept from landing undocumented)";
    }
}

TEST(DocsReference, ScenariosManualCoversEveryCatalogName)
{
    const std::string doc = readFile("docs/scenarios.md");
    ASSERT_FALSE(doc.empty());

    expectMentions(doc, "docs/scenarios.md",
                   PolicyRegistry::instance().names(), "policy");
    expectMentions(doc, "docs/scenarios.md",
                   DvfsRegistry::instance().names(), "dvfs");
    expectMentions(doc, "docs/scenarios.md", coolingNames(), "cooling");
    expectMentions(doc, "docs/scenarios.md", ambientNames(), "ambient");
    expectMentions(doc, "docs/scenarios.md", workloadNames(), "workload");
    expectMentions(doc, "docs/scenarios.md", platformNames(), "platform");
    expectMentions(doc, "docs/scenarios.md", memoryOrgNames(),
                   "memory organization");
    expectMentions(doc, "docs/scenarios.md", trafficShapeNames(),
                   "traffic shape");
    expectMentions(doc, "docs/scenarios.md", emergencyLevelNames(),
                   "emergency ladder");
    expectMentions(doc, "docs/scenarios.md", refreshModelNames(),
                   "refresh model");
    expectMentions(doc, "docs/scenarios.md", thermalModelNames(),
                   "thermal model");
}

TEST(DocsReference, ScenariosManualCoversEverySweepAxisAndKnob)
{
    const std::string doc = readFile("docs/scenarios.md");
    // The sweep axes and config members of the JSON schema
    // (ScenarioSpec::fromJson's checkMembers lists).
    for (const char *key :
         {"memory_org", "traffic_shape", "cooling", "t_inlet",
          "copies_per_app", "sensor_noise_sigma", "dtm_interval",
          "remap_interval", "remap_hysteresis", "emergency_levels",
          "dvfs", "instr_scale", "max_sim_time", "sensor_quant",
          "sensor_seed", "ambient", "platform", "workloads", "policies",
          "sweep", "refresh", "schema_version", "thermal_model",
          "trace", "grid_x", "grid_z", "bank_weights"}) {
        EXPECT_NE(doc.find(key), std::string::npos)
            << "docs/scenarios.md does not mention member '" << key << "'";
    }
}

TEST(DocsReference, CliManualCoversEverySubcommandAndListCatalog)
{
    const std::string doc = readFile("docs/cli.md");
    ASSERT_FALSE(doc.empty());
    for (const char *cmd : {"memtherm run", "memtherm report",
                            "memtherm merge", "memtherm validate",
                            "memtherm list", "memtherm trace"}) {
        EXPECT_NE(doc.find(cmd), std::string::npos)
            << "docs/cli.md does not document '" << cmd << "'";
    }
    for (const char *catalog :
         {"policies", "workloads", "coolings", "ambients", "platforms",
          "emergency_levels", "dvfs", "memory_orgs", "traffic_shapes",
          "refresh_models", "thermal_models"}) {
        EXPECT_NE(doc.find(catalog), std::string::npos)
            << "docs/cli.md does not mention list catalog '" << catalog
            << "'";
    }
    // Summary-table columns with non-obvious semantics must stay
    // documented.
    EXPECT_NE(doc.find("hottest_dimm"), std::string::npos)
        << "docs/cli.md does not document the 'hottest_dimm' column";
    EXPECT_NE(doc.find("peak_bank_dimm"), std::string::npos)
        << "docs/cli.md does not document the per-bank CSV columns";
    for (const char *flag : {"--golden", "--tol", "--baseline", "--csv",
                             "--threads", "--copies", "--traces",
                             "--quiet", "-o", "--stream", "--resume",
                             "--shard", "--batch", "--pattern", "--count",
                             "--seed", "--min-addr", "--max-addr",
                             "--block", "--read-pct"}) {
        EXPECT_NE(doc.find(flag), std::string::npos)
            << "docs/cli.md does not document flag '" << flag << "'";
    }
    // Batched execution has non-obvious determinism semantics; the
    // manual must keep explaining the class/fork machinery, not just
    // list the flag.
    for (const char *term :
         {"equivalence class", "prefix hit rate", "fork"}) {
        EXPECT_NE(doc.find(term), std::string::npos)
            << "docs/cli.md does not explain batched-execution term '"
            << term << "'";
    }
    // The fault-injection env knobs exist solely for the crash tests;
    // the manual must say so (and name them) so nobody sets them in a
    // real run.
    for (const char *env :
         {"MEMTHERM_THREADS", "MEMTHERM_FAULT_AFTER_RUN",
          "MEMTHERM_FAULT_FAIL_RUN"}) {
        EXPECT_NE(doc.find(env), std::string::npos)
            << "docs/cli.md does not document env var '" << env << "'";
    }
}

TEST(DocsReference, ReadmeLinksIntoDocs)
{
    const std::string readme = readFile("README.md");
    EXPECT_NE(readme.find("docs/scenarios.md"), std::string::npos)
        << "README.md must link to the scenario reference manual";
    EXPECT_NE(readme.find("docs/cli.md"), std::string::npos)
        << "README.md must link to the CLI manual";
}

} // namespace
} // namespace memtherm
