/**
 * @file
 * Unit tests for the analytic shared-cache miss model and its agreement
 * with the LRU cache simulator on qualitative behavior.
 */

#include <gtest/gtest.h>

#include "cache/miss_model.hh"
#include "cache/set_assoc_cache.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace memtherm
{
namespace
{

TEST(MissModel, EndpointsExact)
{
    CacheShareCurve c{10.0, 40.0, 4.0};
    EXPECT_NEAR(mpkiAtSharers(c, 1.0), 10.0, 1e-12);
    EXPECT_NEAR(mpkiAtSharers(c, 4.0), 40.0, 1e-12);
}

TEST(MissModel, MonotoneInSharers)
{
    CacheShareCurve c{10.0, 40.0, 4.0};
    double prev = 0.0;
    for (double s = 1.0; s <= 4.01; s += 0.25) {
        double m = mpkiAtSharers(c, s);
        EXPECT_GE(m, prev);
        prev = m;
    }
}

TEST(MissModel, ClampsOutsideRange)
{
    CacheShareCurve c{10.0, 40.0, 4.0};
    EXPECT_DOUBLE_EQ(mpkiAtSharers(c, 0.5), 10.0);
    EXPECT_DOUBLE_EQ(mpkiAtSharers(c, 8.0), 40.0);
}

TEST(MissModel, InsensitiveAppStaysFlat)
{
    CacheShareCurve c{30.0, 32.0, 4.0};
    EXPECT_LT(mpkiAtSharers(c, 2.0) / mpkiAtSharers(c, 4.0), 1.01);
    EXPECT_GT(mpkiAtSharers(c, 2.0) / mpkiAtSharers(c, 4.0), 0.90);
}

TEST(MissModel, HalvingSharersRecoversMostOfTheGap)
{
    // The DTM-ACG premise: 2 sharers instead of 4 recovers a large
    // fraction of a cache-sensitive app's misses.
    CacheShareCurve galgel{7.0, 46.0, 4.0};
    double at2 = mpkiAtSharers(galgel, 2.0);
    EXPECT_LT(at2, 0.45 * 46.0);
}

TEST(MissModel, SwitchPenaltyShrinksWithSlice)
{
    double p5 = switchMpki(40000, 1.4, 0.005);
    double p20 = switchMpki(40000, 1.4, 0.020);
    double p100 = switchMpki(40000, 1.4, 0.100);
    EXPECT_GT(p5, p20);
    EXPECT_GT(p20, p100);
    EXPECT_NEAR(p5 / p100, 20.0, 1e-9);
}

TEST(MissModel, SwitchPenaltyNegligibleAtDefaultSlice)
{
    // Fig. 5.15: at the default 100 ms slice, thrash misses are noise;
    // below 20 ms they become visible against MPKI ~10.
    EXPECT_LT(switchMpki(30000, 1.2, 0.100), 0.5);
    EXPECT_GT(switchMpki(30000, 1.2, 0.005), 3.0);
}

TEST(MissModel, InvalidArgsPanic)
{
    EXPECT_THROW(switchMpki(-1.0, 1.0, 0.1), PanicError);
    EXPECT_THROW(switchMpki(1.0, 0.0, 0.1), PanicError);
    EXPECT_THROW(switchMpki(1.0, 1.0, 0.0), PanicError);
    EXPECT_THROW(mpkiAtSharers({0.0, 1.0, 4.0}, 2.0), PanicError);
    EXPECT_THROW(mpkiAtSharers({1.0, 1.0, 1.0}, 2.0), PanicError);
}

/**
 * Cross-validation against the LRU simulator: interleave N random-walk
 * streams over a shared cache and verify per-stream miss counts grow
 * with N — the contention behavior the analytic curve summarizes.
 */
TEST(MissModel, SimulatorShowsContentionGrowth)
{
    auto missesWithSharers = [](int n_sharers) {
        SetAssocCache cache(CacheConfig{256 << 10, 8, 64});
        Rng rng(11);
        // Each stream cycles over its own 96 KB working set.
        const std::uint64_t ws = 96 << 10;
        std::vector<std::uint64_t> pos(n_sharers, 0);
        std::uint64_t stream0_misses = 0, stream0_accesses = 0;
        for (int i = 0; i < 400000; ++i) {
            int s = i % n_sharers;
            std::uint64_t base = 0x10000000ULL * (s + 1);
            pos[s] = (pos[s] + 64) % ws;
            bool hit = cache.access(base + pos[s], false).hit;
            if (s == 0) {
                ++stream0_accesses;
                if (!hit)
                    ++stream0_misses;
            }
        }
        return static_cast<double>(stream0_misses) / stream0_accesses;
    };
    double solo = missesWithSharers(1);
    double duo = missesWithSharers(2);
    double quad = missesWithSharers(4);
    // One 96 KB stream fits in 256 KB; four do not.
    EXPECT_LT(solo, 0.01);
    EXPECT_LE(solo, duo);
    EXPECT_LT(duo, quad);
    EXPECT_GT(quad, 0.5);
}

} // namespace
} // namespace memtherm
