/**
 * @file
 * Unit tests for the set-associative LRU cache simulator.
 */

#include <gtest/gtest.h>

#include "cache/set_assoc_cache.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace memtherm
{
namespace
{

CacheConfig
smallCache()
{
    // 4 KB, 2-way, 64 B lines -> 32 sets.
    return CacheConfig{4096, 2, 64};
}

TEST(SetAssocCache, GeometryChecks)
{
    SetAssocCache c(smallCache());
    EXPECT_EQ(c.numSets(), 32u);
    EXPECT_THROW(SetAssocCache(CacheConfig{4096, 3, 64}), PanicError);
    EXPECT_THROW(SetAssocCache(CacheConfig{4096, 2, 48}), PanicError);
}

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache c(smallCache());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x103F, false).hit); // same line
    EXPECT_FALSE(c.access(0x1040, false).hit); // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(SetAssocCache, LruEviction)
{
    SetAssocCache c(smallCache());
    // Three lines mapping to the same set (stride = numSets * line).
    std::uint64_t stride = 32 * 64;
    c.access(0 * stride, false);
    c.access(1 * stride, false);
    // Touch line 0 so line 1 is LRU.
    c.access(0 * stride, false);
    c.access(2 * stride, false); // evicts line 1
    EXPECT_TRUE(c.contains(0 * stride));
    EXPECT_FALSE(c.contains(1 * stride));
    EXPECT_TRUE(c.contains(2 * stride));
}

TEST(SetAssocCache, DirtyEvictionProducesWriteback)
{
    SetAssocCache c(smallCache());
    std::uint64_t stride = 32 * 64;
    c.access(0 * stride, true); // dirty
    c.access(1 * stride, false);
    auto r = c.access(2 * stride, false); // evicts dirty line 0
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victimAddr, 0u);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(SetAssocCache, CleanEvictionNoWriteback)
{
    SetAssocCache c(smallCache());
    std::uint64_t stride = 32 * 64;
    c.access(0 * stride, false);
    c.access(1 * stride, false);
    auto r = c.access(2 * stride, false);
    EXPECT_FALSE(r.writeback);
}

TEST(SetAssocCache, WriteHitMarksDirty)
{
    SetAssocCache c(smallCache());
    std::uint64_t stride = 32 * 64;
    c.access(0 * stride, false); // clean fill
    c.access(0 * stride, true);  // dirty it via a write hit
    c.access(1 * stride, false);
    auto r = c.access(2 * stride, false); // evict line 0
    EXPECT_TRUE(r.writeback);
}

TEST(SetAssocCache, FlushInvalidatesEverything)
{
    SetAssocCache c(smallCache());
    c.access(0x0, true);
    c.flush();
    EXPECT_FALSE(c.contains(0x0));
}

TEST(SetAssocCache, WorkingSetSmallerThanCacheHasNoCapacityMisses)
{
    SetAssocCache c(CacheConfig{1 << 20, 8, 64}); // 1 MB
    // 512 KB working set, touched twice.
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t a = 0; a < (512 << 10); a += 64)
            c.access(a, false);
    // Second pass must be all hits.
    EXPECT_EQ(c.misses(), (512u << 10) / 64);
    EXPECT_EQ(c.hits(), (512u << 10) / 64);
}

TEST(SetAssocCache, ThrashingWorkingSetMissesEveryTime)
{
    SetAssocCache c(CacheConfig{4096, 2, 64});
    // Cyclic sweep over 3x the cache size defeats LRU entirely.
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint64_t a = 0; a < 3 * 4096; a += 64)
            c.access(a, false);
    EXPECT_EQ(c.hits(), 0u);
}

TEST(SetAssocCache, MissRatioTracksRandomWorkingSet)
{
    // Random accesses over 2x capacity: miss ratio settles near 0.5.
    SetAssocCache c(CacheConfig{64 << 10, 8, 64});
    Rng rng(3);
    for (int i = 0; i < 200000; ++i)
        c.access(rng.below(2 * (64 << 10)) & ~63ULL, false);
    EXPECT_GT(c.missRatio(), 0.40);
    EXPECT_LT(c.missRatio(), 0.60);
}

TEST(SetAssocCache, ResetStatsKeepsContents)
{
    SetAssocCache c(smallCache());
    c.access(0x1000, false);
    c.resetStats();
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_TRUE(c.contains(0x1000));
}

} // namespace
} // namespace memtherm
