/**
 * @file
 * Property tests pinning the bank-grid thermal overlay against the
 * lumped per-DIMM model (the correctness contract of
 * core/thermal/bank_grid.hh):
 *
 *  - under uniform per-bank traffic every bank cell is bit-identical to
 *    the lumped DRAM node, across organizations, traffic shapes and
 *    refresh models over seeded random inputs;
 *  - the smoothing operator conserves the weight sum and fixes constant
 *    fields, so the grid's mean target tracks the lumped target for
 *    arbitrary random weight vectors (<= 1e-6 relative);
 *  - `thermal_model: "lumped"` is bit-identical to leaving the knob
 *    unset, and a grid-free result carries no per-bank fields;
 *  - batched/forked lanes are bit-identical to scalar runs with the
 *    grid active;
 *  - concentrated weights expose a per-bank hotspot >= 5 C above the
 *    lumped DIMM peak (the bank_hotspot example's headline);
 *  - ThermalModelSpec and lower() report bad grids and conflicting
 *    knobs as FatalError with the documented messages.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/sim/engine.hh"
#include "core/sim/registry.hh"
#include "core/sim/scenario.hh"
#include "core/thermal/bank_grid.hh"
#include "core/thermal/memory_thermal.hh"

namespace memtherm
{
namespace
{

/** Random non-negative weight vector summing to 1. */
std::vector<double>
randomWeights(Rng &rng, int n)
{
    std::vector<double> w(n);
    double sum = 0.0;
    for (double &v : w) {
        v = rng.uniform() + 1e-3; // bounded away from all-zero
        sum += v;
    }
    for (double &v : w)
        v /= sum;
    return w;
}

/** Exact (bitwise) equality of two results, per-bank fields included. */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.runningTime, b.runningTime);
    EXPECT_EQ(a.totalInstr, b.totalInstr);
    EXPECT_EQ(a.memEnergy, b.memEnergy);
    EXPECT_EQ(a.cpuEnergy, b.cpuEnergy);
    EXPECT_EQ(a.maxAmb, b.maxAmb);
    EXPECT_EQ(a.maxDram, b.maxDram);
    EXPECT_EQ(a.peakAmbPerDimm, b.peakAmbPerDimm);
    EXPECT_EQ(a.peakDramPerDimm, b.peakDramPerDimm);
    EXPECT_EQ(a.avgPowerPerDimm, b.avgPowerPerDimm);
    EXPECT_EQ(a.refreshBwLossPerDimm, b.refreshBwLossPerDimm);
    EXPECT_EQ(a.refreshEnergyPerDimm, b.refreshEnergyPerDimm);
    EXPECT_EQ(a.bankGridX, b.bankGridX);
    EXPECT_EQ(a.bankGridZ, b.bankGridZ);
    EXPECT_EQ(a.peakBankDramPerDimm, b.peakBankDramPerDimm);
    EXPECT_EQ(a.ambTrace.values(), b.ambTrace.values());
    EXPECT_EQ(a.dramTrace.values(), b.dramTrace.values());
    EXPECT_EQ(a.bwTrace.values(), b.bwTrace.values());
}

// --- primitive layer --------------------------------------------------

TEST(BankGridPrimitives, UniformWeightsResolveToExactlyOne)
{
    // The uniform fast path must write exactly 1.0 (no 1/N round-trip):
    // this is what makes a uniform cell bit-identical to the lumped
    // DRAM node.
    for (auto [x, z, dimms] : {std::tuple{4, 2, 4}, {1, 1, 1}, {8, 4, 8}}) {
        BankGridConfig g{x, z, {}};
        std::vector<double> w = resolveBankCellWeights(g, dimms);
        ASSERT_EQ(w.size(), static_cast<std::size_t>(dimms) * g.cells());
        for (double v : w)
            EXPECT_EQ(v, 1.0);
    }
}

TEST(BankGridPrimitives, SmoothingConservesSumOnRandomFields)
{
    Rng rng(20260808);
    for (auto [x, z] : {std::tuple{4, 2}, {1, 1}, {1, 8}, {5, 3}}) {
        BankGridConfig g{x, z, {}};
        for (int trial = 0; trial < 50; ++trial) {
            std::vector<double> w = randomWeights(rng, g.cells());
            std::vector<double> out(w.size());
            smoothBankCells(g, w.data(), out.data());
            const double before =
                std::accumulate(w.begin(), w.end(), 0.0);
            const double after =
                std::accumulate(out.begin(), out.end(), 0.0);
            EXPECT_NEAR(after, before, 1e-12);
            // Smoothing contracts toward the mean: no new extrema.
            const double lo = *std::min_element(w.begin(), w.end());
            const double hi = *std::max_element(w.begin(), w.end());
            for (double v : out) {
                EXPECT_GE(v, lo - 1e-12);
                EXPECT_LE(v, hi + 1e-12);
            }
        }
    }
}

TEST(BankGridPrimitives, SmoothingFixesConstantFieldsExactly)
{
    // Constant fields must be *exact* fixed points (the flux sums to
    // exactly 0.0), another link in the uniform == lumped bit-identity.
    BankGridConfig g{4, 2, {}};
    std::vector<double> w(g.cells(), 1.0);
    std::vector<double> out(w.size(), -1.0);
    smoothBankCells(g, w.data(), out.data());
    for (double v : out)
        EXPECT_EQ(v, 1.0);
}

TEST(BankGridPrimitives, ScaledWeightsAverageOnePerDimmBlock)
{
    // sum(weights) == 1 and smoothing conserves the sum, so the scaled
    // (x cells) weights average exactly 1 per DIMM block — which is why
    // the grid's mean stable target reproduces the lumped target for
    // ANY weight vector (the <= 1e-6 contract, met at ~1e-15 here).
    Rng rng(7);
    for (int trial = 0; trial < 100; ++trial) {
        BankGridConfig g{1 + static_cast<int>(rng.below(6)),
                         1 + static_cast<int>(rng.below(6)),
                         {}};
        const int dimms = 1 + static_cast<int>(rng.below(8));
        g.weights = randomWeights(rng, g.cells());
        std::vector<double> w = resolveBankCellWeights(g, dimms);
        for (int d = 0; d < dimms; ++d) {
            double mean = 0.0;
            for (int c = 0; c < g.cells(); ++c)
                mean += w[d * g.cells() + c];
            mean /= g.cells();
            EXPECT_NEAR(mean, 1.0, 1e-6);
        }
    }
}

TEST(BankGridPrimitives, PerDimmWeightBlocksResolveIndependently)
{
    // The trace decoder hands resolveBankCellWeights nDimms*cells()
    // entries; each DIMM's block must resolve exactly as it would alone.
    Rng rng(99);
    BankGridConfig per_dimm{2, 2, {}};
    const int dimms = 3;
    for (int d = 0; d < dimms; ++d) {
        auto w = randomWeights(rng, per_dimm.cells());
        per_dimm.weights.insert(per_dimm.weights.end(), w.begin(),
                                w.end());
    }
    std::vector<double> all = resolveBankCellWeights(per_dimm, dimms);
    for (int d = 0; d < dimms; ++d) {
        BankGridConfig one{2, 2,
                           {per_dimm.weights.begin() +
                                d * per_dimm.cells(),
                            per_dimm.weights.begin() +
                                (d + 1) * per_dimm.cells()}};
        std::vector<double> solo = resolveBankCellWeights(one, 1);
        for (int c = 0; c < per_dimm.cells(); ++c)
            EXPECT_EQ(all[d * per_dimm.cells() + c], solo[c]);
    }
}

TEST(BankGridPrimitives, Panics)
{
    EXPECT_THROW(resolveBankCellWeights(BankGridConfig{0, 2, {}}, 4),
                 PanicError);
    EXPECT_THROW(resolveBankCellWeights(BankGridConfig{4, 2, {}}, 0),
                 PanicError);
    // Wrong arity: neither cells() nor nDimms*cells().
    EXPECT_THROW(
        resolveBankCellWeights(BankGridConfig{2, 2, {0.5, 0.5}}, 2),
        PanicError);
    EXPECT_THROW(resolveBankCellWeights(
                     BankGridConfig{1, 2, {0.5, -0.5}}, 1),
                 PanicError);
    EXPECT_THROW(
        resolveBankCellWeights(
            BankGridConfig{1, 2, {0.5, std::nan("")}}, 1),
        PanicError);
}

// --- simulator layer --------------------------------------------------

SimConfig
baseConfig()
{
    SimConfig cfg = makeCh4Config(coolingAohs15(), false);
    cfg.copiesPerApp = 1;
    return cfg;
}

/**
 * The headline property: across organizations, traffic shapes and
 * refresh models (with seeded random shares in the mix), a run with the
 * uniform bank grid is bit-identical to the lumped run on every
 * pre-existing field, and every bank cell's peak equals its DIMM's
 * lumped peak bitwise — the grid's "mean reproduces the lumped model"
 * contract at its strongest (exact, not just <= 1e-6).
 */
TEST(BankGridSim, UniformGridBitIdenticalToLumpedAcrossConfigs)
{
    Rng rng(20260808);
    struct Case
    {
        MemoryOrgConfig org;
        std::string refresh;
        bool random_shares;
    };
    const std::vector<Case> cases = {
        {{4, 4}, "", false},        {{4, 4}, "ddr2_2x", true},
        {{2, 8}, "", true},         {{2, 8}, "aldram", false},
        {{1, 2}, "ddr2_2x", false},
    };
    for (const Case &c : cases) {
        SimConfig cfg = baseConfig();
        cfg.org = c.org;
        if (!c.refresh.empty())
            cfg.refresh = refreshModelByName(c.refresh);
        if (c.random_shares)
            cfg.trafficShares =
                randomWeights(rng, cfg.org.nDimmsPerChannel);

        SimConfig grid_cfg = cfg;
        grid_cfg.bankGrid = BankGridConfig{}; // uniform 4x2

        ThermalSimulator lumped(cfg);
        ThermalSimulator gridded(grid_cfg);
        auto p1 = makeCh4Policy("DTM-BW");
        auto p2 = makeCh4Policy("DTM-BW");
        SimResult a = lumped.run(workloadMix("W1"), *p1);
        SimResult b = gridded.run(workloadMix("W1"), *p2);

        // Lumped result carries no bank fields; the grid run does.
        EXPECT_EQ(a.bankGridX, 0);
        EXPECT_TRUE(a.peakBankDramPerDimm.empty());
        EXPECT_EQ(b.bankGridX, 4);
        EXPECT_EQ(b.bankGridZ, 2);
        const int cells = 8;
        const int dimms = cfg.org.nDimmsPerChannel;
        ASSERT_EQ(b.peakBankDramPerDimm.size(),
                  static_cast<std::size_t>(dimms) * cells);

        // Every pre-existing field is bitwise unchanged by the overlay.
        EXPECT_EQ(a.runningTime, b.runningTime);
        EXPECT_EQ(a.maxDram, b.maxDram);
        EXPECT_EQ(a.maxAmb, b.maxAmb);
        EXPECT_EQ(a.memEnergy, b.memEnergy);
        EXPECT_EQ(a.peakDramPerDimm, b.peakDramPerDimm);
        EXPECT_EQ(a.peakAmbPerDimm, b.peakAmbPerDimm);
        EXPECT_EQ(a.refreshBwLossPerDimm, b.refreshBwLossPerDimm);
        EXPECT_EQ(a.dramTrace.values(), b.dramTrace.values());

        // ... and under uniform weights every cell IS its DIMM's lumped
        // DRAM node, bit for bit.
        for (int d = 0; d < dimms; ++d)
            for (int c = 0; c < cells; ++c)
                EXPECT_EQ(b.peakBankDramPerDimm[d * cells + c],
                          a.peakDramPerDimm[d]);
    }
}

/**
 * Concentrated weights expose a hotspot the lumped model cannot see:
 * the worst bank runs >= 5 C above the lumped per-DIMM peak, while the
 * lumped-driven fields stay bitwise unchanged (the grid is a diagnostic
 * overlay, not a feedback path).
 */
TEST(BankGridSim, ConcentratedWeightsExposeHotspotLumpedMisses)
{
    SimConfig cfg = baseConfig();
    cfg.copiesPerApp = 2;

    SimConfig hot = cfg;
    hot.bankGrid = BankGridConfig{
        4, 2, {0.65, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05}};

    ThermalSimulator lumped(cfg);
    ThermalSimulator gridded(hot);
    auto p1 = makeCh4Policy("No-limit");
    auto p2 = makeCh4Policy("No-limit");
    SimResult a = lumped.run(workloadMix("W1"), *p1);
    SimResult b = gridded.run(workloadMix("W1"), *p2);

    EXPECT_EQ(a.maxDram, b.maxDram);
    EXPECT_EQ(a.peakDramPerDimm, b.peakDramPerDimm);

    ASSERT_FALSE(b.peakBankDramPerDimm.empty());
    const double worst_bank = *std::max_element(
        b.peakBankDramPerDimm.begin(), b.peakBankDramPerDimm.end());
    const double worst_dimm = *std::max_element(
        a.peakDramPerDimm.begin(), a.peakDramPerDimm.end());
    EXPECT_GE(worst_bank, worst_dimm + 5.0);
}

/**
 * For random weight vectors the grid's per-DIMM mean peak tracks the
 * lumped peak within 1e-6 relative: the weights average 1 after
 * scaling/smoothing and the per-cell step is linear in the weight, so
 * the mean trajectory is the lumped trajectory up to rounding.
 */
TEST(BankGridSim, RandomWeightGridMeanTracksLumpedPeak)
{
    Rng rng(1234);
    SimConfig cfg = baseConfig();

    for (int trial = 0; trial < 3; ++trial) {
        SimConfig grid_cfg = cfg;
        BankGridConfig g{4, 2, {}};
        g.weights = randomWeights(rng, g.cells());
        grid_cfg.bankGrid = g;

        ThermalSimulator lumped(cfg);
        ThermalSimulator gridded(grid_cfg);
        auto p1 = makeCh4Policy("No-limit");
        auto p2 = makeCh4Policy("No-limit");
        SimResult a = lumped.run(workloadMix("W2"), *p1);
        SimResult b = gridded.run(workloadMix("W2"), *p2);

        const int dimms = cfg.org.nDimmsPerChannel;
        ASSERT_EQ(b.peakBankDramPerDimm.size(),
                  static_cast<std::size_t>(dimms) * g.cells());
        for (int d = 0; d < dimms; ++d) {
            double mean = 0.0;
            for (int c = 0; c < g.cells(); ++c)
                mean += b.peakBankDramPerDimm[d * g.cells() + c];
            mean /= g.cells();
            // Peaks are maxima of monotone-ish trajectories, so the
            // mean-of-peaks can sit slightly above the peak-of-means;
            // both stay within the contract's 1e-6 relative band plus
            // a small absolute allowance for transient crossings.
            EXPECT_NEAR(mean, a.peakDramPerDimm[d],
                        1e-6 * a.peakDramPerDimm[d] + 0.05);
        }
    }
}

/** Batched/forked lanes are bit-identical to scalar with the grid on. */
TEST(BankGridSim, ForkedLanesBitIdenticalToScalarWithGridActive)
{
    SimConfig cfg = baseConfig();
    cfg.copiesPerApp = 2;
    cfg.sensorNoiseSigma = 0.3;
    cfg.trafficShares = {0.55, 0.25, 0.12, 0.08};
    cfg.refresh = refreshModelByName("ddr2_2x");
    cfg.bankGrid = BankGridConfig{
        4, 2, {0.3, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1}};

    const std::vector<std::string> names{"No-limit", "DTM-TS", "DTM-BW",
                                         "DTM-ACG"};
    ThermalSimulator sim(cfg);
    ThermalSimulator::Scratch scratch;
    PolicyBuildContext ctx{cfg.dtmInterval, cfg.emergencyLevels,
                           cfg.remapInterval, cfg.remapHysteresis,
                           cfg.trafficShares};

    std::vector<std::unique_ptr<DtmPolicy>> policies;
    std::vector<DtmPolicy *> ptrs;
    for (const auto &n : names) {
        policies.push_back(PolicyRegistry::instance().make(n, ctx));
        ptrs.push_back(policies.back().get());
    }

    BatchStats stats;
    std::vector<SimResult> batched =
        sim.runBatch(workloadMix("W1"), ptrs, scratch, &stats);
    ASSERT_EQ(batched.size(), names.size());
    EXPECT_GT(stats.forks, 0u); // the identity claim must not be vacuous

    for (std::size_t i = 0; i < names.size(); ++i) {
        auto fresh = PolicyRegistry::instance().make(names[i], ctx);
        SimResult scalar = sim.run(workloadMix("W1"), *fresh, scratch);
        ASSERT_FALSE(scalar.peakBankDramPerDimm.empty());
        expectIdentical(batched[i], scalar);
    }
}

// --- scenario layer ---------------------------------------------------

ScenarioSpec
tinySpec()
{
    ScenarioSpec s;
    s.name = "grid_knob";
    s.workloads = {"W1"};
    s.policies = {"No-limit"};
    s.copiesPerApp = 1;
    s.maxSimTime = 400.0;
    return s;
}

TEST(BankGridScenario, LumpedKnobBitIdenticalToUnset)
{
    ScenarioSpec plain = tinySpec();
    ScenarioSpec knobbed = tinySpec();
    knobbed.thermalModel.name = "lumped";

    ExperimentEngine engine(1);
    ScenarioResults a = runScenario(plain, engine);
    ScenarioResults b = runScenario(knobbed, engine);
    ASSERT_EQ(a.points.size(), 1u);
    ASSERT_EQ(b.points.size(), 1u);
    const SimResult &ra = a.points[0].suite.at("W1").at("No-limit");
    const SimResult &rb = b.points[0].suite.at("W1").at("No-limit");
    expectIdentical(ra, rb);
    EXPECT_TRUE(ra.peakBankDramPerDimm.empty());
    // ... and the serialized documents are the same bytes, so goldens
    // written before the knob existed stay valid.
    EXPECT_EQ(toJson(a).dump(2), toJson(b).dump(2));
}

TEST(BankGridScenario, CatalogAndSweepLowering)
{
    // The catalog resolves; the sweep axis becomes odometer axis 10
    // with "thermal=<label>" coordinates.
    EXPECT_EQ(thermalModelNames(),
              (std::vector<std::string>{"lumped", "bank_grid"}));
    EXPECT_FALSE(thermalModelByName("lumped").grid.has_value());
    ASSERT_TRUE(thermalModelByName("bank_grid").grid.has_value());
    EXPECT_EQ(thermalModelByName("bank_grid").grid->x, 4);
    EXPECT_EQ(thermalModelByName("bank_grid").grid->z, 2);
    EXPECT_FALSE(tryThermalModel("nope").has_value());

    ScenarioSpec s = tinySpec();
    ThermalModelSpec inline_grid;
    inline_grid.grid = BankGridConfig{2, 2, {0.7, 0.1, 0.1, 0.1}};
    s.sweepThermalModel = {ThermalModelSpec{"lumped", {}},
                           ThermalModelSpec{"bank_grid", {}},
                           inline_grid};
    LoweredScenario low = s.lower();
    ASSERT_EQ(low.points.size(), 3u);
    EXPECT_EQ(low.points[0].label, "thermal=lumped");
    EXPECT_EQ(low.points[1].label, "thermal=bank_grid");
    EXPECT_EQ(low.points[2].label, "thermal=2x2:0.7|0.1|0.1|0.1");
    EXPECT_FALSE(low.points[0].cfg.bankGrid.has_value());
    ASSERT_TRUE(low.points[1].cfg.bankGrid.has_value());
    EXPECT_TRUE(low.points[1].cfg.bankGrid->weights.empty());
    ASSERT_TRUE(low.points[2].cfg.bankGrid.has_value());
    EXPECT_EQ(low.points[2].cfg.bankGrid->weights.size(), 4u);
}

TEST(BankGridScenario, SpecValidationErrors)
{
    auto expectFatal = [](const ThermalModelSpec &t,
                          const std::string &needle) {
        try {
            t.resolve();
            FAIL() << "expected FatalError for " << needle;
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << e.what();
        }
    };
    ThermalModelSpec bad;
    expectFatal(bad, "empty thermal model");
    bad.grid = BankGridConfig{0, 2, {}};
    expectFatal(bad, "grid dimensions must be >= 1");
    bad.grid = BankGridConfig{64, 64, {}};
    expectFatal(bad, "the limit is 1024");
    bad.grid = BankGridConfig{2, 2, {0.5, 0.5}};
    expectFatal(bad, "2 bank weight(s) but the grid has 4 cell(s)");
    bad.grid = BankGridConfig{1, 2, {0.5, -0.5}};
    expectFatal(bad, "must not be negative");
    bad.grid = BankGridConfig{1, 2, {0.5, 0.4}};
    expectFatal(bad, "must sum to 1");
    // Unknown catalog names list the valid keys.
    ThermalModelSpec typo;
    typo.name = "bankgrid";
    try {
        typo.resolve();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("lumped"),
                  std::string::npos)
            << e.what();
    }
}

TEST(BankGridScenario, LoweringConflictsAreFatal)
{
    auto expectLowerFatal = [](const ScenarioSpec &s,
                               const std::string &needle) {
        try {
            s.lower();
            FAIL() << "expected FatalError for " << needle;
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << e.what();
        }
    };

    // Platform scenarios measure real DIMMs; no modeled grid or trace.
    ScenarioSpec plat;
    plat.name = "p";
    plat.platform = "PE1950";
    plat.workloads = {"W1"};
    plat.policies = {"No-limit"};
    plat.thermalModel.name = "bank_grid";
    expectLowerFatal(plat, "remove the thermal_model member and sweep");
    plat.thermalModel = {};
    plat.trace = "whatever.trace";
    expectLowerFatal(plat, "remove the trace member");

    // Duplicate sweep entries: "bank_grid" and its inline equivalent
    // collide by *resolved* model.
    ScenarioSpec dup = tinySpec();
    ThermalModelSpec inline_default;
    inline_default.grid = BankGridConfig{4, 2, {}};
    dup.sweepThermalModel = {ThermalModelSpec{"bank_grid", {}},
                             inline_default};
    expectLowerFatal(dup, "same thermal model as 'bank_grid'");

    // A trace owns the traffic distribution and the bank weights.
    ScenarioSpec t = tinySpec();
    t.trace = "x.trace";
    t.trafficShape.name = "hot_dimm0";
    expectLowerFatal(t, "remove the traffic_shape member");
    t.trafficShape = {};
    t.thermalModel.grid = BankGridConfig{4, 2, {0.65, 0.05, 0.05, 0.05,
                                                0.05, 0.05, 0.05, 0.05}};
    expectLowerFatal(t, "remove the thermal model's bank_weights");
}

TEST(BankGridScenario, ThermalModelRoundTripsThroughJson)
{
    ScenarioSpec s = tinySpec();
    s.thermalModel.name = "bank_grid";
    ThermalModelSpec inline_grid;
    inline_grid.grid = BankGridConfig{2, 4, {}};
    ThermalModelSpec weighted;
    weighted.grid =
        BankGridConfig{1, 2, {0.75, 0.25}};
    s.sweepThermalModel = {ThermalModelSpec{"lumped", {}}, inline_grid,
                           weighted};

    const std::string once = s.toJson().dump(2);
    ScenarioSpec back = ScenarioSpec::fromJson(Json::parse(once));
    EXPECT_EQ(back, s);
    EXPECT_EQ(back.toJson().dump(2), once);
}

} // namespace
} // namespace memtherm
