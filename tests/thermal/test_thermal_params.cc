/**
 * @file
 * Unit tests for the thermal parameter tables (Tables 3.2 and 3.3).
 */

#include <gtest/gtest.h>

#include "core/thermal/thermal_params.hh"

namespace memtherm
{
namespace
{

TEST(ThermalParams, Table32Aohs15)
{
    // The bold column used in the paper's experiments.
    CoolingConfig c = coolingAohs15();
    EXPECT_DOUBLE_EQ(c.psiAmb, 9.3);
    EXPECT_DOUBLE_EQ(c.psiDramToAmb, 3.4);
    EXPECT_DOUBLE_EQ(c.psiDram, 4.0);
    EXPECT_DOUBLE_EQ(c.psiAmbToDram, 4.1);
    EXPECT_DOUBLE_EQ(c.tauAmb, 50.0);
    EXPECT_DOUBLE_EQ(c.tauDram, 100.0);
    EXPECT_EQ(c.name(), "AOHS_1.5");
}

TEST(ThermalParams, Table32Fdhs10)
{
    CoolingConfig c = coolingFdhs10();
    EXPECT_DOUBLE_EQ(c.psiAmb, 8.0);
    EXPECT_DOUBLE_EQ(c.psiDramToAmb, 4.4);
    EXPECT_DOUBLE_EQ(c.psiDram, 4.0);
    EXPECT_DOUBLE_EQ(c.psiAmbToDram, 5.7);
    EXPECT_EQ(c.name(), "FDHS_1.0");
}

TEST(ThermalParams, FasterAirMeansLowerResistance)
{
    for (auto s : {HeatSpreader::AOHS, HeatSpreader::FDHS}) {
        CoolingConfig v10 = coolingConfig(s, AirVelocity::MPS_1_0);
        CoolingConfig v15 = coolingConfig(s, AirVelocity::MPS_1_5);
        CoolingConfig v30 = coolingConfig(s, AirVelocity::MPS_3_0);
        EXPECT_GT(v10.psiAmb, v15.psiAmb);
        EXPECT_GT(v15.psiAmb, v30.psiAmb);
        EXPECT_GT(v10.psiDram, v15.psiDram);
        EXPECT_GT(v15.psiDram, v30.psiDram);
    }
}

TEST(ThermalParams, FdhsCouplesAmbToDramMoreThanAohs)
{
    // The full-DIMM heat spreader adds a heat-exchange path between the
    // AMB and the DRAMs (Section 3.4).
    for (auto v : {AirVelocity::MPS_1_0, AirVelocity::MPS_1_5,
                   AirVelocity::MPS_3_0}) {
        CoolingConfig aohs = coolingConfig(HeatSpreader::AOHS, v);
        CoolingConfig fdhs = coolingConfig(HeatSpreader::FDHS, v);
        EXPECT_GT(fdhs.psiAmbToDram, aohs.psiAmbToDram);
        // And it sinks AMB heat better.
        EXPECT_LT(fdhs.psiAmb, aohs.psiAmb);
    }
}

TEST(ThermalParams, Table33AmbientValues)
{
    // Isolated model: 50 degC inlet at AOHS_1.5, 45 at FDHS_1.0, no CPU
    // coupling. Integrated model: 5 degC lower inlet, coupling 1.5.
    AmbientParams iso_aohs = isolatedAmbient(coolingAohs15());
    EXPECT_DOUBLE_EQ(iso_aohs.tInlet, 50.0);
    EXPECT_DOUBLE_EQ(iso_aohs.psiCpuMemXi, 0.0);

    AmbientParams iso_fdhs = isolatedAmbient(coolingFdhs10());
    EXPECT_DOUBLE_EQ(iso_fdhs.tInlet, 45.0);

    AmbientParams int_aohs = integratedAmbient(coolingAohs15());
    EXPECT_DOUBLE_EQ(int_aohs.tInlet, 45.0);
    EXPECT_DOUBLE_EQ(int_aohs.psiCpuMemXi, 1.5);
    EXPECT_DOUBLE_EQ(int_aohs.tauCpuDram, 20.0);

    AmbientParams int_fdhs = integratedAmbient(coolingFdhs10());
    EXPECT_DOUBLE_EQ(int_fdhs.tInlet, 40.0);
}

TEST(ThermalParams, DefaultLimits)
{
    ThermalLimits lim;
    EXPECT_DOUBLE_EQ(lim.ambTdp, 110.0);
    EXPECT_DOUBLE_EQ(lim.dramTdp, 85.0);
    EXPECT_DOUBLE_EQ(lim.ambTrp, 109.0);
    EXPECT_DOUBLE_EQ(lim.dramTrp, 84.0);
}

} // namespace
} // namespace memtherm
