/**
 * @file
 * Unit tests for the first-order RC thermal node (Eq. 3.5).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "core/thermal/rc_node.hh"

namespace memtherm
{
namespace
{

TEST(RcNode, ClassicStepResponse)
{
    // After exactly tau, the gap to the stable temperature shrinks by 1/e
    // (the defining property quoted in Section 3.4).
    RcNode n(50.0, 40.0);
    n.advance(100.0, 50.0);
    double expected = 40.0 + (100.0 - 40.0) * (1.0 - std::exp(-1.0));
    EXPECT_NEAR(n.temperature(), expected, 1e-12);
}

TEST(RcNode, ZeroStepIsIdentity)
{
    RcNode n(50.0, 75.0);
    n.advance(120.0, 0.0);
    EXPECT_DOUBLE_EQ(n.temperature(), 75.0);
}

TEST(RcNode, ManySmallStepsEqualOneBigStep)
{
    RcNode a(50.0, 40.0), b(50.0, 40.0);
    a.advance(100.0, 10.0);
    for (int i = 0; i < 1000; ++i)
        b.advance(100.0, 0.01);
    EXPECT_NEAR(a.temperature(), b.temperature(), 1e-9);
}

TEST(RcNode, ConvergesToStable)
{
    RcNode n(50.0, 40.0);
    for (int i = 0; i < 100; ++i)
        n.advance(110.0, 50.0);
    EXPECT_NEAR(n.temperature(), 110.0, 1e-6);
}

TEST(RcNode, CoolsTowardLowerStable)
{
    RcNode n(50.0, 110.0);
    n.advance(60.0, 25.0);
    EXPECT_LT(n.temperature(), 110.0);
    EXPECT_GT(n.temperature(), 60.0);
}

TEST(RcNode, NeverOvershootsStable)
{
    RcNode n(50.0, 40.0);
    for (int i = 0; i < 10000; ++i) {
        n.advance(100.0, 1.0);
        EXPECT_LE(n.temperature(), 100.0 + 1e-9);
    }
}

TEST(RcNode, TimeToReachMatchesAdvance)
{
    RcNode n(50.0, 40.0);
    Seconds t = n.timeToReach(70.0, 100.0);
    ASSERT_TRUE(std::isfinite(t));
    n.advance(100.0, t);
    EXPECT_NEAR(n.temperature(), 70.0, 1e-9);
}

TEST(RcNode, TimeToReachUnreachable)
{
    RcNode n(50.0, 40.0);
    // Target beyond the stable temperature is unreachable.
    EXPECT_TRUE(std::isinf(n.timeToReach(110.0, 100.0)));
    // Target on the wrong side (cooling asked while heating).
    EXPECT_TRUE(std::isinf(n.timeToReach(30.0, 100.0)));
    // Current temperature: zero time.
    EXPECT_DOUBLE_EQ(n.timeToReach(40.0, 100.0), 0.0);
}

TEST(RcNode, PaperTauValues)
{
    // tau_AMB = 50 s, tau_DRAM = 100 s (Table 3.2): the AMB responds
    // twice as fast as the DRAM devices.
    RcNode amb(50.0, 50.0), dram(100.0, 50.0);
    amb.advance(110.0, 10.0);
    dram.advance(110.0, 10.0);
    EXPECT_GT(amb.temperature(), dram.temperature());
}

TEST(RcNode, InvalidArgsPanic)
{
    EXPECT_THROW(RcNode(0.0, 40.0), PanicError);
    RcNode n(50.0, 40.0);
    EXPECT_THROW(n.advance(100.0, -1.0), PanicError);
}

} // namespace
} // namespace memtherm
