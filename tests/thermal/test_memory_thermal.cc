/**
 * @file
 * Unit tests for the whole-subsystem thermal model, including the
 * paper-consistency checks of DESIGN.md Section 6.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/thermal/memory_thermal.hh"

namespace memtherm
{
namespace
{

MemoryThermalModel
makeModel(const CoolingConfig &cooling, Celsius t0)
{
    return MemoryThermalModel(MemoryOrgConfig{4, 4}, cooling,
                              DimmPowerModel{}, t0);
}

TEST(MemoryThermal, HotDimmExceedsAmbTdpUnderAohs15)
{
    // DESIGN.md check: a fully loaded channel (~14+ GB/s system) must push
    // the hottest AMB past its 110 degC TDP under AOHS_1.5 at 50 degC
    // ambient — otherwise no thermal emergency would ever occur.
    auto m = makeModel(coolingAohs15(), 50.0);
    EXPECT_GT(m.stableHottestAmb(12.0, 4.0, 50.0), 110.0);
    // ... while a 6.4 GB/s-capped system settles below the TDP
    // (the paper's Fig. 4.6 shows BW throttling between 6.4 and 12.8).
    EXPECT_LT(m.stableHottestAmb(5.0, 1.4, 50.0), 110.0);
}

TEST(MemoryThermal, DramBindsFirstUnderFdhs10)
{
    // Section 4.4.1: under FDHS_1.0 the DRAMs usually enter thermal
    // emergency before the AMBs; under AOHS_1.5 the AMBs enter first.
    auto fdhs = makeModel(coolingFdhs10(), 45.0);
    GBps rd = 12.0, wr = 4.0;
    double amb_margin =
        110.0 - fdhs.stableHottestAmb(rd, wr, 45.0);
    double dram_margin =
        85.0 - fdhs.stableHottestDram(rd, wr, 45.0);
    EXPECT_LT(dram_margin, amb_margin);
    EXPECT_LT(dram_margin, 0.0); // actually in emergency

    auto aohs = makeModel(coolingAohs15(), 50.0);
    double amb_margin2 = 110.0 - aohs.stableHottestAmb(rd, wr, 50.0);
    double dram_margin2 = 85.0 - aohs.stableHottestDram(rd, wr, 50.0);
    EXPECT_LT(amb_margin2, dram_margin2);
}

TEST(MemoryThermal, FirstDimmIsHottest)
{
    // Uniform interleave: DIMM 0 carries the most bypass traffic, so its
    // AMB runs hottest.
    auto m = makeModel(coolingAohs15(), 50.0);
    m.advance(12.0, 4.0, 50.0, 500.0);
    auto temps = m.dimmTemps();
    ASSERT_EQ(temps.size(), 4u);
    for (std::size_t i = 1; i < temps.size(); ++i)
        EXPECT_GT(temps[0].amb, temps[i].amb);
}

TEST(MemoryThermal, SubsystemPowerScalesWithChannels)
{
    auto m1 = MemoryThermalModel(MemoryOrgConfig{1, 4}, coolingAohs15(),
                                 DimmPowerModel{}, 50.0);
    auto m4 = MemoryThermalModel(MemoryOrgConfig{4, 4}, coolingAohs15(),
                                 DimmPowerModel{}, 50.0);
    // Same per-channel traffic load in both.
    Watts p1 = m1.subsystemPower(3.0, 1.0);
    Watts p4 = m4.subsystemPower(12.0, 4.0);
    EXPECT_NEAR(p4, 4.0 * p1, 1e-9);
}

TEST(MemoryThermal, IdlePowerIsTensOfWatts)
{
    // 16 DIMMs at ~5-6 W idle each: the static floor is large, which is
    // why FBDIMM power is dominated by its static component (Sec. 5.4.4).
    auto m = makeModel(coolingAohs15(), 50.0);
    Watts idle = m.subsystemPower(0.0, 0.0);
    EXPECT_GT(idle, 80.0);
    EXPECT_LT(idle, 120.0);
}

TEST(MemoryThermal, AdvanceTracksStable)
{
    auto m = makeModel(coolingAohs15(), 50.0);
    for (int i = 0; i < 400; ++i)
        m.advance(8.0, 2.0, 50.0, 10.0);
    MemoryThermalSample cur = m.current();
    EXPECT_NEAR(cur.hottestAmb, m.stableHottestAmb(8.0, 2.0, 50.0), 1e-5);
    EXPECT_NEAR(cur.hottestDram, m.stableHottestDram(8.0, 2.0, 50.0), 1e-5);
}

TEST(MemoryThermal, CoolingAfterLoadRemoval)
{
    auto m = makeModel(coolingAohs15(), 50.0);
    m.advance(12.0, 4.0, 50.0, 1000.0);
    Celsius hot = m.current().hottestAmb;
    m.advance(0.0, 0.0, 50.0, 1000.0);
    Celsius cooled = m.current().hottestAmb;
    EXPECT_LT(cooled, hot);
    EXPECT_NEAR(cooled, m.stableHottestAmb(0.0, 0.0, 50.0), 0.5);
}

TEST(MemoryThermal, ResetRestoresAllNodes)
{
    auto m = makeModel(coolingAohs15(), 50.0);
    m.advance(12.0, 4.0, 50.0, 100.0);
    m.reset(50.0);
    for (const auto &t : m.dimmTemps()) {
        EXPECT_DOUBLE_EQ(t.amb, 50.0);
        EXPECT_DOUBLE_EQ(t.dram, 50.0);
    }
}

TEST(MemoryThermal, ExplicitUniformSharesMatchUnsetBitExactly)
{
    // The traffic_shape contract: an explicit uniform vector takes the
    // same code path with the same per-DIMM fractions, so every query
    // and every advance is bit-identical to leaving the shares empty.
    auto plain = makeModel(coolingAohs15(), 50.0);
    auto shaped = MemoryThermalModel(MemoryOrgConfig{4, 4}, coolingAohs15(),
                                     DimmPowerModel{}, 50.0,
                                     {0.25, 0.25, 0.25, 0.25});
    EXPECT_EQ(plain.subsystemPower(9.0, 3.0),
              shaped.subsystemPower(9.0, 3.0));
    EXPECT_EQ(plain.stableHottestAmb(9.0, 3.0, 50.0),
              shaped.stableHottestAmb(9.0, 3.0, 50.0));
    for (int i = 0; i < 50; ++i) {
        plain.advance(9.0, 3.0, 50.0, 10.0);
        shaped.advance(9.0, 3.0, 50.0, 10.0);
    }
    auto a = plain.dimmTemps(), b = shaped.dimmTemps();
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].amb, b[i].amb);
        EXPECT_EQ(a[i].dram, b[i].dram);
    }
    EXPECT_EQ(plain.dimmAvgPower(), shaped.dimmAvgPower());
}

TEST(MemoryThermal, SkewedSharesMoveTheHotSpotDownTheChain)
{
    // All local traffic on the last DIMM: its DRAMs must run hottest
    // even though the head AMBs still relay the bypass stream.
    auto m = MemoryThermalModel(MemoryOrgConfig{4, 4}, coolingAohs15(),
                                DimmPowerModel{}, 50.0,
                                {0.0, 0.0, 0.0, 1.0});
    m.advance(12.0, 4.0, 50.0, 500.0);
    auto temps = m.dimmTemps();
    ASSERT_EQ(temps.size(), 4u);
    for (std::size_t i = 0; i + 1 < temps.size(); ++i)
        EXPECT_GT(temps[3].dram, temps[i].dram);
}

TEST(MemoryThermal, DimmAvgPowerTracksSubsystemPower)
{
    auto m = makeModel(coolingAohs15(), 50.0);
    // Before any advance the accumulators are empty: all zeros.
    for (double p : m.dimmAvgPower())
        EXPECT_EQ(p, 0.0);

    // Constant operating point: the per-DIMM means, summed over the
    // representative channel and scaled by the channel count, recover
    // the subsystem power.
    for (int i = 0; i < 10; ++i)
        m.advance(8.0, 2.0, 50.0, 10.0);
    auto avg = m.dimmAvgPower();
    ASSERT_EQ(avg.size(), 4u);
    double channel = 0.0;
    for (double p : avg) {
        EXPECT_GT(p, 0.0);
        channel += p;
    }
    EXPECT_NEAR(channel * 4, m.subsystemPower(8.0, 2.0), 1e-9);

    // Resets restart the accumulation window.
    m.reset(50.0);
    for (double p : m.dimmAvgPower())
        EXPECT_EQ(p, 0.0);
    m.resetToStable(8.0, 2.0, 50.0);
    for (double p : m.dimmAvgPower())
        EXPECT_EQ(p, 0.0);
}

TEST(MemoryThermal, ShareArityMismatchPanics)
{
    EXPECT_THROW(MemoryThermalModel(MemoryOrgConfig{4, 4}, coolingAohs15(),
                                    DimmPowerModel{}, 50.0, {0.5, 0.5}),
                 PanicError);
}

TEST(MemoryThermal, CurrentPerDimmMatchesDimmTemps)
{
    auto m = makeModel(coolingAohs15(), 50.0);
    m.advance(12.0, 4.0, 50.0, 100.0);
    std::vector<Celsius> amb, dram;
    m.currentPerDimm(amb, dram);
    auto temps = m.dimmTemps();
    ASSERT_EQ(amb.size(), temps.size());
    ASSERT_EQ(dram.size(), temps.size());
    for (std::size_t i = 0; i < temps.size(); ++i) {
        EXPECT_EQ(amb[i], temps[i].amb);
        EXPECT_EQ(dram[i], temps[i].dram);
    }
    // Fill-in-place contract: oversized buffers shrink to the chain.
    amb.assign(9, -1.0);
    dram.assign(9, -1.0);
    m.currentPerDimm(amb, dram);
    EXPECT_EQ(amb.size(), temps.size());
    EXPECT_EQ(amb[0], temps[0].amb);
}

TEST(MemoryThermal, MidRunShareSwapKeepsPowerAccounting)
{
    // A remap mid-run must not disturb the energy bookkeeping: the
    // per-DIMM means, summed over the channel and scaled by the channel
    // count, still recover the time-weighted subsystem power across the
    // swap.
    auto m = MemoryThermalModel(MemoryOrgConfig{4, 4}, coolingAohs15(),
                                DimmPowerModel{}, 50.0,
                                {0.5, 0.5 / 3, 0.5 / 3, 0.5 / 3});
    Joules energy = 0.0;
    Seconds elapsed = 0.0;
    for (int i = 0; i < 10; ++i) {
        auto s = m.advance(8.0, 2.0, 50.0, 10.0);
        energy += s.subsystemPower * 10.0;
        elapsed += 10.0;
    }
    double moved = m.setTrafficShares({0.25, 0.25, 0.25, 0.25});
    EXPECT_NEAR(moved, 0.25, 1e-12); // 0.5 -> 0.25 on DIMM 0
    for (int i = 0; i < 10; ++i) {
        auto s = m.advance(8.0, 2.0, 50.0, 10.0);
        energy += s.subsystemPower * 10.0;
        elapsed += 10.0;
    }
    auto avg = m.dimmAvgPower();
    double channel = 0.0;
    for (double p : avg)
        channel += p;
    EXPECT_NEAR(channel * 4, energy / elapsed, 1e-9);
}

TEST(MemoryThermal, RemapToUniformBitIdenticalToFreshUniform)
{
    // Remapping a skewed model to uniform mid-run must land it on
    // exactly the uniform code path: bit-identical to clearing the
    // shares on a copy carrying the same thermal state, and every
    // state-independent query bit-identical to a genuinely fresh
    // uniform model.
    auto m = MemoryThermalModel(MemoryOrgConfig{4, 4}, coolingAohs15(),
                                DimmPowerModel{}, 50.0,
                                {0.5, 0.5 / 3, 0.5 / 3, 0.5 / 3});
    m.advance(12.0, 4.0, 50.0, 50.0);

    MemoryThermalModel viaExplicit = m;
    MemoryThermalModel viaEmpty = m;
    viaExplicit.setTrafficShares({0.25, 0.25, 0.25, 0.25});
    viaEmpty.setTrafficShares({});
    for (int i = 0; i < 20; ++i) {
        viaExplicit.advance(12.0, 4.0, 50.0, 10.0);
        viaEmpty.advance(12.0, 4.0, 50.0, 10.0);
    }
    auto a = viaExplicit.dimmTemps(), b = viaEmpty.dimmTemps();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].amb, b[i].amb);
        EXPECT_EQ(a[i].dram, b[i].dram);
    }

    auto fresh = makeModel(coolingAohs15(), 50.0);
    EXPECT_EQ(viaEmpty.subsystemPower(12.0, 4.0),
              fresh.subsystemPower(12.0, 4.0));
    EXPECT_EQ(viaEmpty.stableHottestAmb(12.0, 4.0, 50.0),
              fresh.stableHottestAmb(12.0, 4.0, 50.0));
    EXPECT_EQ(viaEmpty.stableHottestDram(12.0, 4.0, 50.0),
              fresh.stableHottestDram(12.0, 4.0, 50.0));
}

TEST(MemoryThermal, SetTrafficSharesValidates)
{
    auto m = makeModel(coolingAohs15(), 50.0);
    EXPECT_THROW(m.setTrafficShares({0.5, 0.5}), PanicError);
    EXPECT_THROW(m.setTrafficShares({-0.1, 0.4, 0.4, 0.3}), PanicError);
    EXPECT_THROW(m.setTrafficShares({0.3, 0.3, 0.3, 0.3}), PanicError);
    // A valid swap reports the share fraction moved; a no-op reports 0.
    EXPECT_NEAR(m.setTrafficShares({0.4, 0.2, 0.2, 0.2}), 0.15, 1e-12);
    EXPECT_EQ(m.setTrafficShares({0.4, 0.2, 0.2, 0.2}), 0.0);
}

} // namespace
} // namespace memtherm
