/**
 * @file
 * Unit tests for the per-DIMM thermal model (Eqs. 3.3-3.5).
 */

#include <gtest/gtest.h>

#include "core/thermal/dimm_thermal.hh"

namespace memtherm
{
namespace
{

TEST(DimmThermal, StableTemperatureEquations)
{
    DimmThermalModel m(coolingAohs15(), 50.0);
    DimmPower p{6.0, 2.0};
    // Eq. 3.3: TA + P_AMB * PsiAMB + P_DRAM * PsiDRAM_AMB.
    EXPECT_NEAR(m.stableAmb(50.0, p), 50.0 + 6.0 * 9.3 + 2.0 * 3.4, 1e-12);
    // Eq. 3.4: TA + P_AMB * PsiAMB_DRAM + P_DRAM * PsiDRAM.
    EXPECT_NEAR(m.stableDram(50.0, p), 50.0 + 6.0 * 4.1 + 2.0 * 4.0, 1e-12);
}

TEST(DimmThermal, IdleStableNearAmbientPlusIdlePower)
{
    // With idle power only, the AMB still sits tens of degrees above
    // ambient (idle AMB power is substantial: 4-5 W).
    DimmThermalModel m(coolingAohs15(), 50.0);
    DimmPower idle{5.1, 0.98};
    EXPECT_NEAR(m.stableAmb(50.0, idle), 50.0 + 47.43 + 3.332, 1e-10);
}

TEST(DimmThermal, AdvanceMovesTowardStable)
{
    DimmThermalModel m(coolingAohs15(), 50.0);
    DimmPower p{6.0, 2.0};
    DimmTemps t1 = m.advance(50.0, p, 10.0);
    EXPECT_GT(t1.amb, 50.0);
    EXPECT_LT(t1.amb, m.stableAmb(50.0, p));
    DimmTemps t2 = m.advance(50.0, p, 10.0);
    EXPECT_GT(t2.amb, t1.amb);
    EXPECT_GT(t2.dram, t1.dram);
}

TEST(DimmThermal, AmbHeatsFasterThanDram)
{
    // tau_AMB = 50 s vs tau_DRAM = 100 s: after the same step the AMB has
    // covered a larger fraction of its gap.
    DimmThermalModel m(coolingAohs15(), 50.0);
    DimmPower p{6.0, 2.0};
    DimmTemps t = m.advance(50.0, p, 25.0);
    double amb_frac = (t.amb - 50.0) / (m.stableAmb(50.0, p) - 50.0);
    double dram_frac = (t.dram - 50.0) / (m.stableDram(50.0, p) - 50.0);
    EXPECT_GT(amb_frac, dram_frac);
}

TEST(DimmThermal, ConvergenceToStable)
{
    DimmThermalModel m(coolingFdhs10(), 45.0);
    DimmPower p{5.0, 1.5};
    for (int i = 0; i < 200; ++i)
        m.advance(45.0, p, 10.0);
    EXPECT_NEAR(m.temps().amb, m.stableAmb(45.0, p), 1e-6);
    EXPECT_NEAR(m.temps().dram, m.stableDram(45.0, p), 1e-6);
}

TEST(DimmThermal, HigherAmbientRaisesStable)
{
    DimmThermalModel m(coolingAohs15(), 50.0);
    DimmPower p{6.0, 2.0};
    EXPECT_NEAR(m.stableAmb(55.0, p) - m.stableAmb(50.0, p), 5.0, 1e-12);
    EXPECT_NEAR(m.stableDram(55.0, p) - m.stableDram(50.0, p), 5.0, 1e-12);
}

TEST(DimmThermal, ResetRestoresTemperature)
{
    DimmThermalModel m(coolingAohs15(), 50.0);
    m.advance(50.0, {6.0, 2.0}, 100.0);
    m.reset(50.0);
    EXPECT_DOUBLE_EQ(m.temps().amb, 50.0);
    EXPECT_DOUBLE_EQ(m.temps().dram, 50.0);
}

} // namespace
} // namespace memtherm
