/**
 * @file
 * Unit tests for the DRAM-ambient model (Eq. 3.6, Table 3.3).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/thermal/ambient_model.hh"

namespace memtherm
{
namespace
{

TEST(AmbientModel, IsolatedIsConstant)
{
    AmbientModel m(isolatedAmbient(coolingAohs15()));
    EXPECT_FALSE(m.integrated());
    EXPECT_DOUBLE_EQ(m.temperature(), 50.0);
    // Even with furious CPU activity the isolated ambient does not move.
    m.advance(10.0, 0.0, 100.0);
    EXPECT_DOUBLE_EQ(m.temperature(), 50.0);
}

TEST(AmbientModel, Equation36Stable)
{
    AmbientModel m(integratedAmbient(coolingAohs15()));
    EXPECT_TRUE(m.integrated());
    // TA_stable = 45 + 1.5 * sum(V * IPC).
    EXPECT_NEAR(m.stable(6.2), 45.0 + 1.5 * 6.2, 1e-12);
}

TEST(AmbientModel, CpuPreheatsAirByAboutTenDegrees)
{
    // Four cores at 1.55 V and IPC ~1 preheat the cooling air by ~9 degC
    // (Section 5.4.3 reports ~10 degC on the real machine).
    AmbientModel m(integratedAmbient(coolingAohs15()));
    double sum_v_ipc = 4 * 1.55 * 1.0;
    EXPECT_NEAR(m.stable(sum_v_ipc) - 45.0, 9.3, 0.5);
}

TEST(AmbientModel, AdvanceFollowsRcDynamics)
{
    AmbientParams p = integratedAmbient(coolingAohs15());
    AmbientModel m(p);
    double sum_v_ipc = 4.0;
    // One tau: 1 - 1/e of the gap covered.
    m.advance(sum_v_ipc, 0.0, p.tauCpuDram);
    double gap = m.stable(sum_v_ipc) - p.tInlet;
    double expected = p.tInlet + gap * (1.0 - std::exp(-1.0));
    EXPECT_NEAR(m.temperature(), expected, 1e-9);
}

TEST(AmbientModel, LowerVoltageLowersAmbient)
{
    // The DTM-CDVFS mechanism: dropping V and IPC lowers the stable
    // memory ambient temperature.
    AmbientModel m(integratedAmbient(coolingFdhs10()));
    double full = m.stable(4 * 1.55 * 1.0);
    double scaled = m.stable(4 * 1.15 * 0.5);
    EXPECT_GT(full - scaled, 3.0);
}

TEST(AmbientModel, ResetRestoresInlet)
{
    AmbientModel m(integratedAmbient(coolingAohs15()));
    m.advance(8.0, 0.0, 100.0);
    EXPECT_GT(m.temperature(), 45.0);
    m.reset(45.0);
    EXPECT_DOUBLE_EQ(m.temperature(), 45.0);
}

} // namespace
} // namespace memtherm
