/**
 * @file
 * Unit and property tests for the analytic performance model.
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/logging.hh"
#include "cpu/perf_model.hh"

namespace memtherm
{
namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

CoreTask
streamTask()
{
    CoreTask t;
    t.cpiCore = 0.6;
    t.mpki = 40.0;
    t.writeFrac = 0.4;
    t.specFrac = 0.1;
    t.mlpOverlap = 0.84;
    return t;
}

CoreTask
computeTask()
{
    CoreTask t;
    t.cpiCore = 0.8;
    t.mpki = 0.2;
    t.writeFrac = 0.2;
    t.specFrac = 0.05;
    t.mlpOverlap = 0.5;
    return t;
}

TEST(PerfModel, EmptyTaskList)
{
    WindowPerf p = solvePerfWindow({}, 3.2, 3.2, kInf, {});
    EXPECT_TRUE(p.ips.empty());
    EXPECT_DOUBLE_EQ(p.totalRead + p.totalWrite, 0.0);
}

TEST(PerfModel, SingleTaskUnsaturated)
{
    MemSystemPerf mem;
    WindowPerf p = solvePerfWindow({streamTask()}, 3.2, 3.2, kInf, mem);
    ASSERT_EQ(p.ips.size(), 1u);
    EXPECT_GT(p.ips[0], 0.5e9);
    EXPECT_FALSE(p.saturated);
    // Latency stays near idle at low utilization.
    EXPECT_LT(p.latencyNs, mem.idleLatencyNs * 1.2);
}

TEST(PerfModel, ReadWriteSplitMatchesWriteFrac)
{
    CoreTask t = streamTask();
    t.specFrac = 0.0;
    WindowPerf p = solvePerfWindow({t}, 3.2, 3.2, kInf, {});
    EXPECT_NEAR(p.totalWrite / p.totalRead, t.writeFrac, 1e-9);
}

TEST(PerfModel, FourTasksSaturateChannel)
{
    MemSystemPerf mem;
    std::vector<CoreTask> tasks(4, streamTask());
    for (auto &t : tasks)
        t.mpki = 120.0;
    WindowPerf p = solvePerfWindow(tasks, 3.2, 3.2, kInf, mem);
    EXPECT_TRUE(p.saturated);
    double total = p.totalRead + p.totalWrite;
    EXPECT_LE(total, mem.peakBandwidth * mem.maxUtilization + 1e-6);
    // The queueing knee is soft: delivery approaches the cap from below.
    EXPECT_GT(total, mem.peakBandwidth * mem.maxUtilization * 0.85);
}

TEST(PerfModel, HardCapRespected)
{
    std::vector<CoreTask> tasks(4, streamTask());
    WindowPerf p = solvePerfWindow(tasks, 3.2, 3.2, 6.4, {});
    EXPECT_LE(p.totalRead + p.totalWrite, 6.4 + 1e-9);
    EXPECT_TRUE(p.saturated);
}

TEST(PerfModel, ThroughputMonotoneInCap)
{
    // Delivered throughput must be continuous and non-decreasing in the
    // cap — the regression that motivated the queueing fixed point.
    std::vector<CoreTask> tasks(4, streamTask());
    double prev = 0.0;
    for (double cap = 2.0; cap < 26.0; cap += 0.5) {
        WindowPerf p = solvePerfWindow(tasks, 3.2, 3.2, cap, {});
        double total = p.totalRead + p.totalWrite;
        EXPECT_GE(total, prev - 1e-6) << "cap " << cap;
        prev = total;
    }
}

TEST(PerfModel, ComputeTaskKeepsRateUnderContention)
{
    // A compute-bound task shares the window with three heavy streamers;
    // the streamers absorb the queueing latency.
    MemSystemPerf mem;
    std::vector<CoreTask> tasks(3, streamTask());
    for (auto &t : tasks)
        t.mpki = 60.0;
    tasks.push_back(computeTask());
    WindowPerf p = solvePerfWindow(tasks, 3.2, 3.2, 6.4, mem);
    WindowPerf solo = solvePerfWindow({computeTask()}, 3.2, 3.2, kInf, mem);
    EXPECT_GT(p.ips[3], 0.8 * solo.ips[0]);
    // Streamers lose far more.
    WindowPerf stream_solo =
        solvePerfWindow({tasks[0]}, 3.2, 3.2, kInf, mem);
    EXPECT_LT(p.ips[0], 0.5 * stream_solo.ips[0]);
}

TEST(PerfModel, MemoryOffStopsMissingTasks)
{
    std::vector<CoreTask> tasks{streamTask(), computeTask()};
    tasks[1].mpki = 0.0;
    WindowPerf p = solvePerfWindow(tasks, 3.2, 3.2, 0.0, {});
    EXPECT_DOUBLE_EQ(p.ips[0], 0.0);
    EXPECT_GT(p.ips[1], 0.0); // pure-compute task keeps running
    EXPECT_DOUBLE_EQ(p.totalRead + p.totalWrite, 0.0);
}

TEST(PerfModel, LowerFrequencyLowersDemand)
{
    std::vector<CoreTask> tasks(4, streamTask());
    WindowPerf fast = solvePerfWindow(tasks, 3.2, 3.2, kInf, {});
    WindowPerf slow = solvePerfWindow(tasks, 0.8, 3.2, kInf, {});
    EXPECT_LT(slow.totalRead + slow.totalWrite,
              fast.totalRead + fast.totalWrite);
    // ... but memory-bound work degrades sub-linearly with frequency.
    EXPECT_GT(slow.ips[0], 0.4 * fast.ips[0]);
}

TEST(PerfModel, SpeculativeTrafficScalesWithFrequency)
{
    CoreTask t = streamTask();
    t.writeFrac = 0.0;
    WindowPerf fast = solvePerfWindow({t}, 3.2, 3.2, kInf, {});
    WindowPerf slow = solvePerfWindow({t}, 1.6, 3.2, kInf, {});
    double fast_bpi = fast.totalRead * 1e9 / fast.ips[0];
    double slow_bpi = slow.totalRead * 1e9 / slow.ips[0];
    // Bytes per instruction shrink at lower frequency (fewer speculative
    // fetches) — the DTM-CDVFS traffic-reduction mechanism (Sec. 4.4.2).
    EXPECT_LT(slow_bpi, fast_bpi);
    EXPECT_NEAR(fast_bpi / slow_bpi, (1.0 + 0.1) / (1.0 + 0.05), 1e-6);
}

TEST(PerfModel, HigherMpkiMeansMoreTraffic)
{
    CoreTask lo = streamTask(), hi = streamTask();
    hi.mpki = lo.mpki * 2.0;
    WindowPerf a = solvePerfWindow({lo}, 3.2, 3.2, kInf, {});
    WindowPerf b = solvePerfWindow({hi}, 3.2, 3.2, kInf, {});
    EXPECT_GT(b.totalRead, a.totalRead);
    EXPECT_LT(b.ips[0], a.ips[0]);
}

TEST(PerfModel, InvalidArgsPanic)
{
    EXPECT_THROW(solvePerfWindow({streamTask()}, 0.0, 3.2, kInf, {}),
                 PanicError);
    EXPECT_THROW(solvePerfWindow({streamTask()}, 3.2, 1.6, kInf, {}),
                 PanicError);
    EXPECT_THROW(solvePerfWindow({streamTask()}, 3.2, 3.2, -1.0, {}),
                 PanicError);
}

/**
 * Property sweep: conservation — per-task traffic sums to the totals —
 * and positivity across a grid of operating points.
 */
class PerfSweep : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(PerfSweep, ConservationAndBounds)
{
    auto [freq, cap] = GetParam();
    std::vector<CoreTask> tasks{streamTask(), streamTask(), computeTask(),
                                streamTask()};
    WindowPerf p = solvePerfWindow(tasks, freq, 3.2, cap, {});
    double sum = 0.0;
    for (GBps t : p.taskTraffic)
        sum += t;
    EXPECT_NEAR(sum, p.totalRead + p.totalWrite, 1e-9);
    for (double ips : p.ips) {
        EXPECT_GE(ips, 0.0);
        EXPECT_LT(ips, freq * 1e9 / 0.4); // bounded by core CPI
    }
    EXPECT_LE(p.totalRead + p.totalWrite, std::min(cap, 21.3) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PerfSweep,
    ::testing::Combine(::testing::Values(0.8, 1.6, 2.8, 3.2),
                       ::testing::Values(3.2, 6.4, 12.8, 19.2, 25.6)));

} // namespace
} // namespace memtherm
