/**
 * @file
 * Unit tests for DVFS tables.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "cpu/dvfs.hh"

namespace memtherm
{
namespace
{

TEST(Dvfs, SimulatedCmpTable)
{
    // Table 4.1: 3.2 GHz @ 1.55 V ... 0.8 GHz @ 0.95 V.
    DvfsTable t = simulatedCmpDvfs();
    ASSERT_EQ(t.levels(), 4u);
    EXPECT_DOUBLE_EQ(t.at(0).freq, 3.2);
    EXPECT_DOUBLE_EQ(t.at(0).volts, 1.55);
    EXPECT_DOUBLE_EQ(t.at(3).freq, 0.8);
    EXPECT_DOUBLE_EQ(t.at(3).volts, 0.95);
    EXPECT_DOUBLE_EQ(t.maxFreq(), 3.2);
    EXPECT_DOUBLE_EQ(t.maxVolts(), 1.55);
}

TEST(Dvfs, Xeon5160Table)
{
    // Section 5.2.1: 3.000/2.667/2.333/2.000 GHz with matching voltages.
    DvfsTable t = xeon5160Dvfs();
    ASSERT_EQ(t.levels(), 4u);
    EXPECT_DOUBLE_EQ(t.at(0).freq, 3.0);
    EXPECT_DOUBLE_EQ(t.at(0).volts, 1.2125);
    EXPECT_DOUBLE_EQ(t.at(3).freq, 2.0);
    EXPECT_DOUBLE_EQ(t.at(3).volts, 1.0375);
}

TEST(Dvfs, VoltageDecreasesWithFrequency)
{
    for (const DvfsTable &t : {simulatedCmpDvfs(), xeon5160Dvfs()}) {
        for (std::size_t i = 1; i < t.levels(); ++i) {
            EXPECT_LT(t.at(i).freq, t.at(i - 1).freq);
            EXPECT_LT(t.at(i).volts, t.at(i - 1).volts);
        }
    }
}

TEST(Dvfs, OutOfRangePanics)
{
    DvfsTable t = simulatedCmpDvfs();
    EXPECT_THROW(t.at(4), PanicError);
}

TEST(Dvfs, UnorderedTablePanics)
{
    EXPECT_THROW(DvfsTable({{1.0, 1.0}, {2.0, 1.2}}), PanicError);
    EXPECT_THROW(DvfsTable({}), PanicError);
}

} // namespace
} // namespace memtherm
