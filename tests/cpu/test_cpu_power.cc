/**
 * @file
 * Unit tests for the processor power models (Table 4.4; Section 5.4.4).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "cpu/cpu_power.hh"

namespace memtherm
{
namespace
{

TEST(TableCpuPower, Table44CoreGatingColumn)
{
    // 62 W all-halt; 260 W with 4 active cores; linear in between.
    TableCpuPowerModel m(4);
    EXPECT_DOUBLE_EQ(m.power(0, 0, false), 62.0);
    EXPECT_DOUBLE_EQ(m.power(1, 0, false), 111.5);
    EXPECT_DOUBLE_EQ(m.power(2, 0, false), 161.0);
    EXPECT_DOUBLE_EQ(m.power(3, 0, false), 210.5);
    EXPECT_DOUBLE_EQ(m.power(4, 0, false), 260.0);
}

TEST(TableCpuPower, Table44DvfsColumn)
{
    // 260 / 193.4 / 116.5 / 80.6 W at the four operating points.
    TableCpuPowerModel m(4);
    EXPECT_NEAR(m.power(4, 0, false), 260.0, 1e-9);
    EXPECT_NEAR(m.power(4, 1, false), 193.4, 1e-9);
    EXPECT_NEAR(m.power(4, 2, false), 116.5, 1e-9);
    EXPECT_NEAR(m.power(4, 3, false), 80.6, 1e-9);
}

TEST(TableCpuPower, HaltOverridesEverything)
{
    TableCpuPowerModel m(4);
    EXPECT_DOUBLE_EQ(m.power(4, 0, true), 62.0);
    EXPECT_DOUBLE_EQ(m.power(2, 3, true), 62.0);
}

TEST(TableCpuPower, InvalidArgsPanic)
{
    TableCpuPowerModel m(4);
    EXPECT_THROW(m.power(5, 0, false), PanicError);
    EXPECT_THROW(m.power(-1, 0, false), PanicError);
    EXPECT_THROW(m.power(4, 4, false), PanicError);
}

TEST(ActivityCpuPower, IdleFloor)
{
    ActivityCpuPowerModel m(xeon5160Dvfs(), 2, 28.0, 17.0);
    EXPECT_DOUBLE_EQ(m.power({}, 0), 56.0);
}

TEST(ActivityCpuPower, IdleFloorScalesWithVoltage)
{
    // The idle floor (clock tree, leakage) shrinks with supply voltage,
    // which is where DTM-CDVFS's real-machine CPU power saving comes
    // from on memory-bound workloads (Section 5.4.4).
    ActivityCpuPowerModel m(xeon5160Dvfs(), 2, 28.0, 17.0, 1.0);
    double vr = 1.0375 / 1.2125;
    EXPECT_NEAR(m.power({}, 3), 56.0 * vr, 1e-9);
}

TEST(ActivityCpuPower, ScalesWithVSquaredF)
{
    // Zero idle exponent isolates the dynamic term.
    ActivityCpuPowerModel m(xeon5160Dvfs(), 2, 28.0, 17.0, 0.0);
    std::vector<double> act{1.0, 1.0, 1.0, 1.0};
    double p0 = m.power(act, 0) - 56.0;
    double p3 = m.power(act, 3) - 56.0;
    double vr = 1.0375 / 1.2125;
    double fr = 2.0 / 3.0;
    EXPECT_NEAR(p3 / p0, vr * vr * fr, 1e-9);
}

TEST(ActivityCpuPower, StalledCoresDrawLittle)
{
    // Section 5.4.4: memory-stalled cores are already clock-gated by
    // hardware, so gating them (removing them from the list) saves only
    // their residual activity.
    ActivityCpuPowerModel m(xeon5160Dvfs(), 2, 28.0, 17.0);
    double busy = m.power({1.0, 1.0, 1.0, 1.0}, 0);
    double stalled = m.power({0.2, 0.2, 0.2, 0.2}, 0);
    double gated = m.power({0.2, 0.2}, 0);
    EXPECT_GT(busy - stalled, 3.0 * (stalled - gated));
}

TEST(ActivityCpuPower, ActivityOutOfRangePanics)
{
    ActivityCpuPowerModel m(xeon5160Dvfs(), 2, 28.0, 17.0);
    EXPECT_THROW(m.power({1.5}, 0), PanicError);
    EXPECT_THROW(m.power({-0.1}, 0), PanicError);
}

} // namespace
} // namespace memtherm
