/**
 * @file
 * Unit tests for the DDR2 protocol checker.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "dram/protocol_checker.hh"

namespace memtherm
{
namespace
{

Tick
ns(double v)
{
    return nsToTick(v);
}

TEST(ProtocolChecker, AcceptsLegalClosePageSequence)
{
    DramTiming t;
    ProtocolChecker c(4, 8, t);
    c.record(DramCmd::ACT, 0, 0, ns(0));
    c.record(DramCmd::RD, 0, 0, ns(t.tRCD));
    c.record(DramCmd::PRE, 0, 0, ns(t.tRAS));
    c.record(DramCmd::ACT, 0, 0, ns(t.tRAS + t.tRP));
    EXPECT_EQ(c.commandCount(), 4u);
}

TEST(ProtocolChecker, CatchesTrcdViolation)
{
    DramTiming t;
    ProtocolChecker c(4, 8, t);
    c.record(DramCmd::ACT, 0, 0, ns(0));
    EXPECT_THROW(c.record(DramCmd::RD, 0, 0, ns(t.tRCD - 1)), PanicError);
}

TEST(ProtocolChecker, CatchesTrasViolation)
{
    DramTiming t;
    ProtocolChecker c(4, 8, t);
    c.record(DramCmd::ACT, 0, 0, ns(0));
    c.record(DramCmd::RD, 0, 0, ns(t.tRCD));
    EXPECT_THROW(c.record(DramCmd::PRE, 0, 0, ns(t.tRAS - 1)), PanicError);
}

TEST(ProtocolChecker, CatchesTrcViolation)
{
    DramTiming t;
    ProtocolChecker c(4, 8, t);
    c.record(DramCmd::ACT, 0, 0, ns(0));
    c.record(DramCmd::PRE, 0, 0, ns(t.tRAS));
    EXPECT_THROW(c.record(DramCmd::ACT, 0, 0, ns(t.tRC - 1)), PanicError);
}

TEST(ProtocolChecker, CatchesTrrdViolation)
{
    DramTiming t;
    ProtocolChecker c(4, 8, t);
    c.record(DramCmd::ACT, 0, 0, ns(0));
    // Different bank, same DIMM, too soon.
    EXPECT_THROW(c.record(DramCmd::ACT, 0, 1, ns(t.tRRD - 1)), PanicError);
    // Different DIMM: no tRRD constraint.
    ProtocolChecker c2(4, 8, t);
    c2.record(DramCmd::ACT, 0, 0, ns(0));
    c2.record(DramCmd::ACT, 1, 0, ns(1));
    EXPECT_EQ(c2.commandCount(), 2u);
}

TEST(ProtocolChecker, CatchesWtrViolation)
{
    DramTiming t;
    ProtocolChecker c(4, 8, t);
    c.record(DramCmd::ACT, 0, 0, ns(0));
    c.record(DramCmd::WR, 0, 0, ns(t.tRCD));
    c.record(DramCmd::ACT, 0, 1, ns(t.tRRD));
    double wr_data_end = t.tRCD + t.tWL + t.tBURST;
    EXPECT_THROW(
        c.record(DramCmd::RD, 0, 1, ns(wr_data_end + t.tWTR - 1)),
        PanicError);
}

TEST(ProtocolChecker, CatchesStateErrors)
{
    DramTiming t;
    ProtocolChecker c(4, 8, t);
    // RD to a never-activated bank.
    EXPECT_THROW(c.record(DramCmd::RD, 0, 0, ns(100)), PanicError);
    c.record(DramCmd::ACT, 1, 0, ns(0));
    // Second ACT while the row is open.
    EXPECT_THROW(c.record(DramCmd::ACT, 1, 0, ns(t.tRC)), PanicError);
}

TEST(ProtocolChecker, DisabledCheckerIgnoresEverything)
{
    ProtocolChecker c(4, 8, DramTiming{}, false);
    c.record(DramCmd::RD, 0, 0, 0); // would panic when enabled
    EXPECT_EQ(c.commandCount(), 0u);
}

TEST(ProtocolChecker, OutOfRangePanics)
{
    ProtocolChecker c(4, 8, DramTiming{});
    EXPECT_THROW(c.record(DramCmd::ACT, 4, 0, 0), PanicError);
    EXPECT_THROW(c.record(DramCmd::ACT, 0, 8, 0), PanicError);
}

} // namespace
} // namespace memtherm
