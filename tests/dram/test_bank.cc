/**
 * @file
 * Unit tests for the DDR2 bank timing state machine.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "dram/bank.hh"

namespace memtherm
{
namespace
{

TEST(Bank, ReadAccessTimes)
{
    DramTiming t;
    Bank b(t);
    auto a = b.access(1000 * tickPerNs, false);
    EXPECT_EQ(a.act, 1000 * tickPerNs);
    EXPECT_EQ(a.cas, a.act + nsToTick(t.tRCD));
    EXPECT_EQ(a.dataStart, a.cas + nsToTick(t.tCL));
    EXPECT_EQ(a.dataEnd, a.dataStart + nsToTick(t.tBURST));
    // Close-page: precharge at max(tRAS, read-to-precharge).
    EXPECT_EQ(a.pre, std::max(a.act + nsToTick(t.tRAS),
                              a.cas + nsToTick(t.tBURST + t.tRPD)));
    EXPECT_EQ(a.readyAct, std::max(a.pre + nsToTick(t.tRP),
                                   a.act + nsToTick(t.tRC)));
}

TEST(Bank, WriteAccessTimes)
{
    DramTiming t;
    Bank b(t);
    auto a = b.access(0, true);
    EXPECT_EQ(a.dataStart, a.cas + nsToTick(t.tWL));
    EXPECT_EQ(a.pre, std::max(a.act + nsToTick(t.tRAS),
                              a.cas + nsToTick(t.tWPD)));
}

TEST(Bank, BackToBackAccessesRespectTrc)
{
    DramTiming t;
    Bank b(t);
    auto a1 = b.access(0, false);
    EXPECT_GE(b.earliestAct(), nsToTick(t.tRC));
    auto a2 = b.access(b.earliestAct(), false);
    EXPECT_GE(a2.act - a1.act, nsToTick(t.tRC));
}

TEST(Bank, EarlyActivationPanics)
{
    Bank b(DramTiming{});
    b.access(0, false);
    EXPECT_THROW(b.access(1, false), PanicError);
}

TEST(Bank, CasDeferPushesPrecharge)
{
    DramTiming t;
    Bank b1(t), b2(t);
    auto plain = b1.access(0, false);
    auto deferred = b2.access(0, false, nsToTick(20.0));
    EXPECT_EQ(deferred.cas, plain.cas + nsToTick(20.0));
    EXPECT_GE(deferred.pre, plain.pre);
}

TEST(Bank, ResetClearsHistory)
{
    Bank b(DramTiming{});
    b.access(0, false);
    b.reset();
    EXPECT_EQ(b.earliestAct(), 0u);
}

TEST(Bank, CycleTimeIs54ns)
{
    // Table 4.1: tRC = 54 ns bounds the per-bank access rate; a single
    // bank therefore sustains at most ~18.5M accesses/s.
    DramTiming t;
    Bank b(t);
    Tick when = 0;
    for (int i = 0; i < 10; ++i) {
        auto a = b.access(when, false);
        when = a.readyAct;
    }
    EXPECT_GE(when, 9 * nsToTick(54.0));
}

} // namespace
} // namespace memtherm
