/**
 * @file
 * Unit and property tests for the FBDIMM channel simulator.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "dram/fbdimm_channel.hh"

namespace memtherm
{
namespace
{

MemRequest
req(std::uint64_t id, int dimm, int bank, bool write = false, Tick at = 0)
{
    MemRequest r;
    r.id = id;
    r.dimm = dimm;
    r.bank = bank;
    r.write = write;
    r.arrival = at;
    return r;
}

TEST(FbdimmChannel, SingleReadLatency)
{
    ChannelConfig cfg;
    FbdimmChannel ch(cfg);
    ASSERT_TRUE(ch.enqueue(req(1, 0, 0)));
    ch.drain();
    EXPECT_EQ(ch.stats().reads, 1u);
    // Idle read to DIMM 0: controller + frame + AMB decode + tRCD + tCL
    // + burst + northbound frame = 12+6+9+15+15+6+6 = 69 ns.
    EXPECT_NEAR(ch.stats().readLatencyNs.mean(), 69.0, 0.5);
}

TEST(FbdimmChannel, VariableReadLatencyGrowsWithDistance)
{
    ChannelConfig cfg;
    double lat[4];
    for (int d = 0; d < 4; ++d) {
        FbdimmChannel ch(cfg);
        ch.enqueue(req(1, d, 0));
        ch.drain();
        lat[d] = ch.stats().readLatencyNs.mean();
    }
    EXPECT_LT(lat[0], lat[1]);
    EXPECT_LT(lat[1], lat[2]);
    EXPECT_LT(lat[2], lat[3]);
    // Each hop adds forward latency on both paths (2 * 3 ns).
    EXPECT_NEAR(lat[3] - lat[0], 3 * 2 * 3.0, 0.5);
}

TEST(FbdimmChannel, FixedReadLatencyMode)
{
    ChannelConfig cfg;
    cfg.link.variableReadLatency = false;
    double lat[4];
    for (int d = 0; d < 4; ++d) {
        FbdimmChannel ch(cfg);
        ch.enqueue(req(1, d, 0));
        ch.drain();
        lat[d] = ch.stats().readLatencyNs.mean();
    }
    // Without VRL the return path is padded to the farthest DIMM: the
    // remaining difference is only the southbound hop count.
    EXPECT_NEAR(lat[3] - lat[0], 3 * 3.0, 0.5);
}

TEST(FbdimmChannel, QueueCapacityEnforced)
{
    ChannelConfig cfg;
    cfg.queueCapacity = 2;
    FbdimmChannel ch(cfg);
    EXPECT_TRUE(ch.enqueue(req(1, 0, 0)));
    EXPECT_TRUE(ch.enqueue(req(2, 0, 1)));
    EXPECT_FALSE(ch.enqueue(req(3, 0, 2)));
    EXPECT_TRUE(ch.issueOne());
    EXPECT_TRUE(ch.enqueue(req(3, 0, 2)));
}

TEST(FbdimmChannel, BankConflictSerializes)
{
    ChannelConfig cfg;
    FbdimmChannel ch(cfg);
    // Two reads to the same bank: the second waits ~tRC.
    ch.enqueue(req(1, 0, 0));
    ch.enqueue(req(2, 0, 0));
    ch.drain();
    double worst = ch.stats().readLatencyNs.max();
    EXPECT_GT(worst, 54.0); // > tRC means it truly waited
}

TEST(FbdimmChannel, BankParallelismHelps)
{
    ChannelConfig cfg;
    // Same-bank pair vs different-bank pair: different banks finish
    // sooner on average.
    FbdimmChannel same(cfg), diff(cfg);
    same.enqueue(req(1, 0, 0));
    same.enqueue(req(2, 0, 0));
    same.drain();
    diff.enqueue(req(1, 0, 0));
    diff.enqueue(req(2, 0, 1));
    diff.drain();
    EXPECT_LT(diff.stats().readLatencyNs.max(),
              same.stats().readLatencyNs.max());
}

TEST(FbdimmChannel, TrafficAccountingLocalAndBypass)
{
    ChannelConfig cfg;
    FbdimmChannel ch(cfg);
    ch.enqueue(req(1, 2, 0));        // local at DIMM 2
    ch.enqueue(req(2, 0, 0, true));  // local at DIMM 0
    ch.drain();
    const auto &ambs = ch.ambs();
    EXPECT_EQ(ambs[2].localBytes(), 32u);
    // The DIMM-2 request bypasses AMBs 0 and 1.
    EXPECT_EQ(ambs[0].bypassBytes(), 32u);
    EXPECT_EQ(ambs[1].bypassBytes(), 32u);
    EXPECT_EQ(ambs[3].bypassBytes(), 0u);
    EXPECT_EQ(ambs[0].localBytes(), 32u);
}

TEST(FbdimmChannel, ProtocolCheckerSeesAllCommands)
{
    ChannelConfig cfg;
    FbdimmChannel ch(cfg);
    for (int i = 0; i < 16; ++i)
        ch.enqueue(req(static_cast<std::uint64_t>(i), i % 4, i % 8,
                       i % 3 == 0));
    ch.drain();
    // Close page: ACT + CAS + PRE per request.
    EXPECT_EQ(ch.checker().commandCount(), 16u * 3u);
}

TEST(FbdimmChannel, RandomStressRespectsProtocol)
{
    // Property test: thousands of random requests; the embedded protocol
    // checker panics on any timing violation, so surviving the drain IS
    // the assertion.
    ChannelConfig cfg;
    FbdimmChannel ch(cfg);
    Rng rng(17);
    std::uint64_t issued = 0;
    Tick at = 0;
    for (int i = 0; i < 20000; ++i) {
        MemRequest r = req(issued++, static_cast<int>(rng.below(4)),
                           static_cast<int>(rng.below(8)),
                           rng.uniform() < 0.35, at);
        at += nsToTick(2.0);
        while (!ch.enqueue(r))
            ch.issueOne();
    }
    ch.drain();
    EXPECT_EQ(ch.stats().reads + ch.stats().writes, 20000u);
    EXPECT_EQ(ch.checker().commandCount(), 3u * 20000u);
}

TEST(FbdimmChannel, ResetStatsClearsCounters)
{
    FbdimmChannel ch{ChannelConfig{}};
    ch.enqueue(req(1, 0, 0));
    ch.drain();
    ch.resetStats();
    EXPECT_EQ(ch.stats().reads, 0u);
    EXPECT_EQ(ch.ambs()[0].localBytes(), 0u);
}

TEST(FbdimmChannel, InvalidRequestPanics)
{
    FbdimmChannel ch{ChannelConfig{}};
    EXPECT_THROW(ch.enqueue(req(1, 4, 0)), PanicError);
    EXPECT_THROW(ch.enqueue(req(1, 0, 8)), PanicError);
}

} // namespace
} // namespace memtherm
