/**
 * @file
 * Property tests for the versioned trace format, the synthetic
 * generators and the organization decoder (dram/trace.hh): lossless
 * parse/format round-trips, generator determinism (one uniform draw per
 * record), byte-weighted decode invariants, file/line diagnostics, the
 * newer-version refusal, and the scenario layer's trace knob end to end
 * (trace-driven shares and bank weights, trace-free bit-identity).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <numeric>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/sim/scenario.hh"
#include "dram/trace.hh"

namespace memtherm
{
namespace
{

void
expectFatalWith(const std::function<void()> &f, const std::string &needle)
{
    try {
        f();
        FAIL() << "expected FatalError containing '" << needle << "'";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << e.what();
    }
}

TEST(TraceFormat, RoundTripsLosslessly)
{
    Rng rng(20260808);
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 500; ++i) {
        TraceRecord r;
        r.addr = rng.next() >> (rng.below(40));
        r.bytes = static_cast<std::uint32_t>(1 + rng.below(1 << 12));
        r.write = rng.uniform() < 0.5;
        recs.push_back(r);
    }
    const std::string text = formatTrace(recs);
    EXPECT_EQ(parseTrace(text, "rt"), recs);
    // format(parse(format)) is a fixed point.
    EXPECT_EQ(formatTrace(parseTrace(text, "rt")), text);
}

TEST(TraceFormat, AcceptsDecimalHexCommentsAndBlanks)
{
    const std::string text = "#memtherm-trace v1\n"
                             "\n"
                             "# a comment\n"
                             "0x40 r 64\n"
                             "  128 w 32\n";
    auto recs = parseTrace(text, "mixed");
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].addr, 0x40u);
    EXPECT_FALSE(recs[0].write);
    EXPECT_EQ(recs[1].addr, 128u);
    EXPECT_TRUE(recs[1].write);
    EXPECT_EQ(recs[1].bytes, 32u);
}

TEST(TraceFormat, DiagnosticsNameFileAndLine)
{
    expectFatalWith([] { parseTrace("", "t"); }, "empty file");
    expectFatalWith([] { parseTrace("#wrong v1\n0x0 r 64\n", "t"); },
                    "trace 't' line 1: bad header");
    expectFatalWith(
        [] { parseTrace("#memtherm-trace v1\n0x0 r\n", "t"); },
        "trace 't' line 2: expected '<addr> <r|w> <bytes>'");
    expectFatalWith(
        [] { parseTrace("#memtherm-trace v1\n\n0xZZ r 64\n", "t"); },
        "trace 't' line 3: bad address '0xZZ'");
    expectFatalWith(
        [] { parseTrace("#memtherm-trace v1\n0x0 x 64\n", "t"); },
        "line 2: bad op 'x'");
    expectFatalWith(
        [] { parseTrace("#memtherm-trace v1\n0x0 r 0\n", "t"); },
        "bad byte count '0'");
    expectFatalWith(
        [] { parseTrace("#memtherm-trace v1\n0x0 r 64 junk\n", "t"); },
        "trailing token 'junk'");
    expectFatalWith([] { parseTrace("#memtherm-trace v1\n", "t"); },
                    "no records");
    expectFatalWith([] { loadTrace("/nonexistent/x.trace"); },
                    "cannot open file");
}

TEST(TraceFormat, RefusesNewerVersionWithUpgradeMessage)
{
    expectFatalWith(
        [] { parseTrace("#memtherm-trace v2\n0x0 r 64\n", "future"); },
        "format version 2 is newer than this binary's v1; "
        "upgrade memtherm");
    // Truncation must not turn a refusal into a misparse.
    expectFatalWith([] { parseTrace("#memtherm-trace v999\n", "f"); },
                    "newer than this binary's");
}

TEST(TraceGen, EqualConfigsGenerateEqualTraces)
{
    TraceGenConfig cfg;
    cfg.pattern = TraceGenConfig::Pattern::Random;
    cfg.count = 2000;
    cfg.readPct = 70.0;
    cfg.seed = 99;
    EXPECT_EQ(generateTrace(cfg), generateTrace(cfg));
    TraceGenConfig other = cfg;
    other.seed = 100;
    EXPECT_NE(generateTrace(cfg), generateTrace(other));
}

TEST(TraceGen, LinearWrapsBlockAlignedOverTheRange)
{
    TraceGenConfig cfg;
    cfg.minAddr = 0x1000;
    cfg.maxAddr = 0x1000 + 4 * 64;
    cfg.blockSize = 64;
    cfg.count = 10;
    auto recs = generateTrace(cfg);
    ASSERT_EQ(recs.size(), 10u);
    for (std::size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(recs[i].addr, 0x1000 + (i % 4) * 64);
        EXPECT_EQ(recs[i].bytes, 64u);
    }
}

TEST(TraceGen, RandomStaysInRangeAndHonorsReadPct)
{
    TraceGenConfig cfg;
    cfg.pattern = TraceGenConfig::Pattern::Random;
    cfg.minAddr = 1 << 16;
    cfg.maxAddr = 1 << 20;
    cfg.count = 20000;
    cfg.readPct = 25.0;
    cfg.seed = 7;
    auto recs = generateTrace(cfg);
    std::size_t reads = 0;
    for (const auto &r : recs) {
        EXPECT_GE(r.addr, cfg.minAddr);
        EXPECT_LT(r.addr, cfg.maxAddr);
        EXPECT_EQ(r.addr % cfg.blockSize, 0u);
        reads += r.write ? 0 : 1;
    }
    EXPECT_NEAR(static_cast<double>(reads) / recs.size(), 0.25, 0.02);
}

TEST(TraceGen, OneUniformDrawPerRecordInBothPatterns)
{
    // The r/w stream is drawn identically in both patterns (one
    // uniform() per record), so a linear and a random trace at one seed
    // with readPct 100 and 0 pin the draw count: all reads / all writes
    // regardless of pattern, and flipping the pattern never shifts the
    // r/w sequence of a mid-range readPct relative to regeneration.
    for (auto pattern : {TraceGenConfig::Pattern::Linear,
                         TraceGenConfig::Pattern::Random}) {
        TraceGenConfig cfg;
        cfg.pattern = pattern;
        cfg.count = 256;
        cfg.readPct = 100.0;
        for (const auto &r : generateTrace(cfg))
            EXPECT_FALSE(r.write);
        cfg.readPct = 0.0;
        for (const auto &r : generateTrace(cfg))
            EXPECT_TRUE(r.write);
    }
}

TEST(TraceGen, DegenerateParametersAreFatal)
{
    TraceGenConfig cfg;
    cfg.blockSize = 0;
    expectFatalWith([&] { generateTrace(cfg); },
                    "block size must be > 0");
    cfg = {};
    cfg.count = 0;
    expectFatalWith([&] { generateTrace(cfg); }, "count must be > 0");
    cfg = {};
    cfg.maxAddr = cfg.minAddr = 0x1000;
    expectFatalWith([&] { generateTrace(cfg); },
                    "max address must be > min address");
    cfg = {};
    cfg.minAddr = 0;
    cfg.maxAddr = 32; // smaller than one 64-byte block
    expectFatalWith([&] { generateTrace(cfg); },
                    "address range smaller than one block");
    cfg = {};
    cfg.readPct = 101.0;
    expectFatalWith([&] { generateTrace(cfg); },
                    "read percentage must be in [0, 100]");
}

TEST(TraceDecode, SharesAndWeightsAreNormalizedByteWeighted)
{
    Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        TraceGenConfig cfg;
        cfg.pattern = TraceGenConfig::Pattern::Random;
        cfg.count = 3000;
        cfg.seed = rng.next();
        cfg.readPct = 60.0;
        auto recs = generateTrace(cfg);
        const int channels = 1 + static_cast<int>(rng.below(4));
        const int dimms = 1 + static_cast<int>(rng.below(8));
        const int cells = static_cast<int>(rng.below(9)); // 0 = lumped
        TraceProfile p = decodeTrace(recs, channels, dimms, cells);

        EXPECT_EQ(p.records, recs.size());
        ASSERT_EQ(p.dimmShares.size(), static_cast<std::size_t>(dimms));
        double sum = std::accumulate(p.dimmShares.begin(),
                                     p.dimmShares.end(), 0.0);
        EXPECT_NEAR(sum, 1.0, 1e-9);
        for (double s : p.dimmShares)
            EXPECT_GE(s, 0.0);
        EXPECT_GE(p.readFraction, 0.0);
        EXPECT_LE(p.readFraction, 1.0);

        if (cells == 0) {
            EXPECT_TRUE(p.bankWeights.empty());
        } else {
            ASSERT_EQ(p.bankWeights.size(),
                      static_cast<std::size_t>(dimms) * cells);
            for (int d = 0; d < dimms; ++d) {
                double block = 0.0;
                for (int c = 0; c < cells; ++c)
                    block += p.bankWeights[d * cells + c];
                EXPECT_NEAR(block, 1.0, 1e-9); // touched or uniform
            }
        }
    }
}

TEST(TraceDecode, ByteWeightingCountsBytesNotRecords)
{
    // Two records to DIMM 0 at 64 B vs one to DIMM 1 at 384 B: DIMM 1
    // carries 3x the bytes despite half the records.
    std::vector<TraceRecord> recs;
    // channels=1, dimms=2, block=64: block index parity selects DIMM.
    recs.push_back({0 * 64, 64, false});  // dimm 0
    recs.push_back({2 * 64, 64, false});  // dimm 0
    recs.push_back({1 * 64, 384, true});  // dimm 1
    TraceProfile p = decodeTrace(recs, 1, 2, 0);
    EXPECT_NEAR(p.dimmShares[0], 128.0 / 512.0, 1e-12);
    EXPECT_NEAR(p.dimmShares[1], 384.0 / 512.0, 1e-12);
    EXPECT_NEAR(p.readFraction, 128.0 / 512.0, 1e-12);
}

TEST(TraceDecode, UntouchedDimmFallsBackToUniformWeights)
{
    // One record, channels=1, dimms=2, cells=4: DIMM 1 never appears,
    // so its weight block is uniform 1/4 (an idle DIMM's power splits
    // evenly, matching the lumped view).
    std::vector<TraceRecord> recs{{0, 64, false}};
    TraceProfile p = decodeTrace(recs, 1, 2, 4);
    EXPECT_EQ(p.dimmShares[1], 0.0);
    for (int c = 0; c < 4; ++c)
        EXPECT_EQ(p.bankWeights[4 + c], 0.25);
    // The touched DIMM concentrates on the one cell it hit.
    EXPECT_EQ(p.bankWeights[0], 1.0);
}

TEST(TraceDecode, DegenerateInputsAreFatal)
{
    std::vector<TraceRecord> none;
    expectFatalWith([&] { decodeTrace(none, 1, 1, 0); }, "no records");
    std::vector<TraceRecord> one{{0, 64, false}};
    expectFatalWith([&] { decodeTrace(one, 0, 1, 0); },
                    "bad organization");
    expectFatalWith([&] { decodeTrace(one, 1, 1, 0, 0); },
                    "block size must be > 0");
}

/** Temp file helper: writes content, removes itself on destruction. */
struct TempTrace
{
    std::string path;

    explicit TempTrace(const std::string &content)
        : path(std::string(::testing::TempDir()) + "memtherm_trace_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name() +
               ".trace")
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << content;
    }

    ~TempTrace() { std::remove(path.c_str()); }
};

TEST(TraceFile, SaveLoadRoundTrip)
{
    TraceGenConfig cfg;
    cfg.count = 64;
    cfg.readPct = 50.0;
    auto recs = generateTrace(cfg);
    TempTrace tmp(""); // reserve a path; saveTrace overwrites it
    saveTrace(tmp.path, recs);
    EXPECT_EQ(loadTrace(tmp.path), recs);
}

/**
 * The scenario knob end to end: a trace whose stream lands entirely on
 * DIMM 0 must heat DIMM 0 the way the equivalent traffic_shape does,
 * and fill the bank weights when the grid is active.
 */
TEST(TraceScenario, TraceDrivesSharesAndBankWeights)
{
    // channels=4, dimms=4, block=64: block indices 0..3 are DIMM 0 on
    // channels 0..3; indices 16k+c stay on DIMM (k%4). Use addresses
    // whose block/4 % 4 == 0 so every access decodes to DIMM 0, cell
    // (block/16 % 8) == 0.
    std::string text = "#memtherm-trace v1\n";
    for (int b : {0, 1, 2, 3})
        text += std::to_string(b * 64) + " r 64\n";
    TempTrace tmp(text);

    ScenarioSpec s;
    s.name = "traced";
    s.workloads = {"W1"};
    s.policies = {"No-limit"};
    s.copiesPerApp = 1;
    s.maxSimTime = 300.0;
    s.trace = tmp.path;
    s.thermalModel.name = "bank_grid";

    LoweredScenario low = s.lower();
    ASSERT_EQ(low.points.size(), 1u);
    const SimConfig &cfg = low.points[0].cfg;
    ASSERT_EQ(cfg.trafficShares.size(), 4u);
    EXPECT_EQ(cfg.trafficShares[0], 1.0);
    EXPECT_EQ(cfg.trafficShares[1], 0.0);
    ASSERT_TRUE(cfg.bankGrid.has_value());
    ASSERT_EQ(cfg.bankGrid->weights.size(), 4u * 8u);
    EXPECT_EQ(cfg.bankGrid->weights[0], 1.0); // DIMM 0 all on cell 0
    for (int c = 0; c < 8; ++c) // untouched DIMM 1: uniform fallback
        EXPECT_EQ(cfg.bankGrid->weights[8 + c], 0.125);

    // Equivalent modeled shape gives the identical configuration, so
    // the runs are bit-identical by the engine's determinism.
    ScenarioSpec shaped = s;
    shaped.trace.clear();
    shaped.thermalModel = {};
    shaped.trafficShape.shares = {1.0, 0.0, 0.0, 0.0};
    LoweredScenario low2 = shaped.lower();
    EXPECT_EQ(low2.points[0].cfg.trafficShares, cfg.trafficShares);
}

TEST(TraceScenario, TraceKnobRoundTripsThroughJson)
{
    ScenarioSpec s;
    s.name = "t";
    s.workloads = {"W1"};
    s.policies = {"No-limit"};
    s.trace = "traces/app.trace";
    const std::string once = s.toJson().dump();
    ScenarioSpec back = ScenarioSpec::fromJson(Json::parse(once));
    EXPECT_EQ(back, s);
    EXPECT_EQ(back.toJson().dump(), once);

    expectFatalWith(
        [] {
            ScenarioSpec::fromJson(Json::parse(
                R"({"name":"x","workloads":["W1"],"policies":["No-limit"],
                    "config":{"trace":""}})"));
        },
        "'trace' path must not be empty");
}

} // namespace
} // namespace memtherm
