/**
 * @file
 * Property sweeps over the detailed FBDIMM simulator: bandwidth bounds,
 * latency ordering, protocol integrity and traffic conservation across a
 * grid of write fractions and access patterns.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/logging.hh"
#include "dram/traffic_gen.hh"

namespace memtherm
{
namespace
{

using DramParam = std::tuple<double, bool>; // write fraction, sequential

class DramSweep : public ::testing::TestWithParam<DramParam>
{
};

TEST_P(DramSweep, SaturationWithinPhysicalBounds)
{
    auto [write_frac, sequential] = GetParam();
    MemSystemConfig cfg;
    MeasuredPerf p = saturationProbe(cfg, 20000, write_frac, sequential);
    // Lower bound: a working scheduler sustains at least half the
    // northbound limit; upper bound: the link capacities
    // (4 channels x (5.33 read + 2.67 write) GB/s).
    EXPECT_GT(p.achieved, 10.0);
    EXPECT_LT(p.achieved, 4 * (5.34 + 2.67));
    EXPECT_GT(p.meanReadLatencyNs, 50.0);
}

TEST_P(DramSweep, ConservationOfBytes)
{
    auto [write_frac, sequential] = GetParam();
    MemSystemConfig cfg;
    FbdimmMemorySystem mem(cfg);
    TrafficConfig tc;
    tc.rate = 6.0;
    tc.writeFrac = write_frac;
    tc.sequential = sequential;
    TrafficGenerator gen(tc);
    const std::uint64_t blocks = 5000;
    measurePerf(mem, gen, blocks);
    // Every block's 64 bytes are accounted once.
    EXPECT_EQ(mem.totalBytes(), blocks * 64);
    // AMB counters agree: sum of local bytes over all channels == total.
    std::uint64_t local = 0;
    for (const auto &ch : mem.channels())
        for (const auto &amb : ch->ambs())
            local += amb.localBytes();
    EXPECT_EQ(local, blocks * 64);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DramSweep,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.5),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<DramParam> &info) {
        return std::string("wf") +
               std::to_string(int(std::get<0>(info.param) * 100)) +
               (std::get<1>(info.param) ? "_seq" : "_rand");
    });

TEST(DramProperties, SequentialBeatsRandomOnLatency)
{
    // Sequential streams spread across banks round-robin and never
    // collide in a bank; random streams occasionally do.
    MemSystemConfig cfg;
    MeasuredPerf seq = saturationProbe(cfg, 30000, 0.0, true);
    MeasuredPerf rnd = saturationProbe(cfg, 30000, 0.0, false);
    EXPECT_LE(seq.meanReadLatencyNs, rnd.meanReadLatencyNs * 1.05);
}

TEST(DramProperties, MoreDimmsMoreBankParallelism)
{
    // With a tiny footprint hammering few banks, an 8-DIMM channel
    // sustains more than a 2-DIMM one.
    auto probe = [](int dimms) {
        MemSystemConfig cfg;
        cfg.channel.nDimms = dimms;
        FbdimmMemorySystem mem(cfg);
        TrafficConfig tc;
        tc.rate = 1000.0;
        tc.footprintBytes = 1 << 20;
        TrafficGenerator gen(tc);
        return measurePerf(mem, gen, 20000).achieved;
    };
    EXPECT_GT(probe(8), probe(2) * 0.99);
}

TEST(DramProperties, CheckerOverheadOnlyBookkeeping)
{
    // The checker must not change timing results, only validate them.
    auto run = [](bool check) {
        MemSystemConfig cfg;
        cfg.channel.checkProtocol = check;
        return saturationProbe(cfg, 10000, 0.3).achieved;
    };
    EXPECT_DOUBLE_EQ(run(true), run(false));
}

} // namespace
} // namespace memtherm
