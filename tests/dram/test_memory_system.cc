/**
 * @file
 * Integration tests for the multi-channel FBDIMM memory system and the
 * bandwidth/latency validation against the analytic model's constants.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/power/power_model.hh"
#include "dram/traffic_gen.hh"

namespace memtherm
{
namespace
{

TEST(AddressMap, RoundRobinAcrossPairsThenDimms)
{
    AddressMap m(2, 4, 8, 64);
    EXPECT_EQ(m.decode(0).channelPair, 0);
    EXPECT_EQ(m.decode(64).channelPair, 1);
    EXPECT_EQ(m.decode(128).channelPair, 0);
    EXPECT_EQ(m.decode(128).dimm, 1);
    // Bank bits follow the DIMM bits.
    EXPECT_EQ(m.decode(2 * 4 * 64).bank, 1);
    EXPECT_EQ(m.decode(2 * 4 * 8 * 64).bank, 0);
    EXPECT_EQ(m.decode(2 * 4 * 8 * 64).row, 1u);
}

TEST(MemorySystem, BlockSplitsAcrossChannelPair)
{
    MemSystemConfig cfg;
    FbdimmMemorySystem mem(cfg);
    mem.accessBlock(0, false, 0, 1);
    mem.drain();
    // 64 B block -> 32 B on each physical channel of pair 0.
    EXPECT_EQ(mem.channels()[0]->stats().readBytes, 32u);
    EXPECT_EQ(mem.channels()[1]->stats().readBytes, 32u);
    EXPECT_EQ(mem.channels()[2]->stats().readBytes, 0u);
    EXPECT_EQ(mem.totalBytes(), 64u);
}

TEST(MemorySystem, IdleReadLatencyNearAnalyticConstant)
{
    // The analytic model assumes ~105 ns loaded-idle L2-miss latency;
    // the detailed simulator's unloaded latency must sit below that and
    // in the same regime (tens of ns).
    MemSystemConfig cfg;
    FbdimmMemorySystem mem(cfg);
    TrafficConfig tc;
    tc.rate = 0.5; // far below saturation
    tc.seed = 5;
    TrafficGenerator gen(tc);
    MeasuredPerf p = measurePerf(mem, gen, 2000);
    EXPECT_GT(p.meanReadLatencyNs, 60.0);
    EXPECT_LT(p.meanReadLatencyNs, 110.0);
}

TEST(MemorySystem, SaturationBandwidthMatchesAnalyticPeak)
{
    // The analytic model uses 21.3 GB/s sustainable for 4 physical
    // channels with a 0.92 utilization knee. The detailed simulator's
    // read-mostly saturation bandwidth must land in the same range.
    MemSystemConfig cfg;
    MeasuredPerf p = saturationProbe(cfg, 60000, 0.30);
    EXPECT_GT(p.achieved, 17.0);
    EXPECT_LT(p.achieved, 24.0);
}

TEST(MemorySystem, WriteTrafficIsExtraBandwidth)
{
    // Southbound write bandwidth is extra (Section 3.2): with a modest
    // write share the total exceeds the read-only northbound limit. At
    // heavy write shares the half-rate southbound data path binds
    // instead and total bandwidth drops — both regimes are by design.
    MemSystemConfig cfg;
    MeasuredPerf reads = saturationProbe(cfg, 40000, 0.0);
    MeasuredPerf light = saturationProbe(cfg, 40000, 0.2);
    MeasuredPerf heavy = saturationProbe(cfg, 40000, 0.6);
    EXPECT_GT(light.achieved, reads.achieved);
    EXPECT_LT(heavy.achieved, light.achieved);
}

TEST(MemorySystem, LatencyRisesUnderLoad)
{
    MemSystemConfig cfg;
    auto latency_at = [&](double rate) {
        FbdimmMemorySystem mem(cfg);
        TrafficConfig tc;
        tc.rate = rate;
        tc.seed = 7;
        TrafficGenerator gen(tc);
        return measurePerf(mem, gen, 20000).meanReadLatencyNs;
    };
    double idle = latency_at(1.0);
    double busy = latency_at(16.0);
    EXPECT_GT(busy, idle * 1.15);
}

TEST(MemorySystem, HotDimmBypassAccounting)
{
    // Uniform traffic: AMB 0 must carry the most bypass bytes, the last
    // AMB none — the physical cause of Fig. 3.3's hot spot.
    MemSystemConfig cfg;
    FbdimmMemorySystem mem(cfg);
    TrafficConfig tc;
    tc.rate = 8.0;
    TrafficGenerator gen(tc);
    measurePerf(mem, gen, 20000);
    const auto &ambs = mem.channels()[0]->ambs();
    EXPECT_GT(ambs[0].bypassBytes(), ambs[1].bypassBytes());
    EXPECT_GT(ambs[1].bypassBytes(), ambs[2].bypassBytes());
    EXPECT_EQ(ambs[3].bypassBytes(), 0u);
}

TEST(MemorySystem, AmbTrafficFeedsPowerModel)
{
    // End-to-end: measured AMB byte counters convert to DimmTraffic and
    // into watts — the detailed-sim-to-thermal-model pipeline.
    MemSystemConfig cfg;
    FbdimmMemorySystem mem(cfg);
    TrafficConfig tc;
    tc.rate = 10.0;
    TrafficGenerator gen(tc);
    measurePerf(mem, gen, 50000);
    Seconds window = tickToSec(mem.lastCompletion());
    const auto &amb0 = mem.channels()[0]->ambs()[0];
    DimmTraffic t = amb0.trafficOver(window);
    EXPECT_GT(t.local(), 0.0);
    EXPECT_GT(t.bypass(), t.local()); // 3/4 of the channel bypasses AMB 0
    AmbPowerModel power;
    EXPECT_GT(power.power(t, false), 5.1);
}

TEST(MemorySystem, MismatchedBlockSplitPanics)
{
    MemSystemConfig cfg;
    cfg.blockBytes = 128;
    EXPECT_THROW(FbdimmMemorySystem{cfg}, PanicError);
}

} // namespace
} // namespace memtherm
