/**
 * @file
 * Tests for the Chapter 5 testbed emulation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "testbed/platform.hh"

namespace memtherm
{
namespace
{

TEST(Platform, Pe1950Description)
{
    Platform p = pe1950();
    EXPECT_EQ(p.name, "PE1950");
    EXPECT_DOUBLE_EQ(p.ambTdp, 90.0);
    // Table 5.1 boundaries and caps.
    EXPECT_EQ(p.ambBounds, (std::vector<Celsius>{76, 80, 84, 88}));
    EXPECT_DOUBLE_EQ(p.bwCaps[3], 2.0);
    // Two DIMMs on one channel.
    EXPECT_EQ(p.sim.org.nChannels, 1);
    EXPECT_EQ(p.sim.org.nDimmsPerChannel, 2);
    EXPECT_TRUE(p.sim.perSocketL2);
    EXPECT_DOUBLE_EQ(p.sim.dtmInterval, 1.0);
}

TEST(Platform, Sr1500alDescription)
{
    Platform p = sr1500al();
    EXPECT_DOUBLE_EQ(p.ambTdp, 100.0);
    EXPECT_EQ(p.ambBounds, (std::vector<Celsius>{86, 90, 94, 98}));
    EXPECT_DOUBLE_EQ(p.bwCaps[3], 3.0);
    EXPECT_EQ(p.sim.org.nDimmsPerChannel, 4);
    // Hot box at 36 C; stronger CPU->memory coupling than the PE1950.
    EXPECT_DOUBLE_EQ(p.sim.ambient.tInlet, 36.0);
    EXPECT_GT(p.sim.ambient.psiCpuPower, pe1950().sim.ambient.psiCpuPower);
}

TEST(Platform, Sr1500alVariants)
{
    Platform p = sr1500al(26.0, 90.0);
    EXPECT_DOUBLE_EQ(p.sim.ambient.tInlet, 26.0);
    EXPECT_EQ(p.ambBounds, (std::vector<Celsius>{76, 80, 84, 88}));
}

TEST(Platform, PolicyFactory)
{
    Platform p = sr1500al();
    for (const char *name : {"No-limit", "DTM-BW", "DTM-ACG", "DTM-CDVFS",
                             "DTM-COMB", "Safety"}) {
        auto policy = makeCh5Policy(p, name);
        ASSERT_NE(policy, nullptr);
    }
    EXPECT_THROW(makeCh5Policy(p, "DTM-TS"), FatalError);
}

TEST(Platform, PolicyActionsFollowTable51)
{
    Platform p = sr1500al();
    ThermalReading cold{70.0, 50.0, 40.0};
    ThermalReading l2{87.0, 50.0, 45.0};
    ThermalReading l4{95.0, 50.0, 46.0};

    auto bw = makeCh5Policy(p, "DTM-BW");
    EXPECT_TRUE(std::isinf(bw->decide(cold, 0.0).bandwidthCap));
    EXPECT_DOUBLE_EQ(bw->decide(l2, 1.0).bandwidthCap, 5.0);
    EXPECT_DOUBLE_EQ(bw->decide(l4, 2.0).bandwidthCap, 3.0);

    auto acg = makeCh5Policy(p, "DTM-ACG");
    EXPECT_EQ(acg->decide(cold, 0.0).activeCores, 4);
    EXPECT_EQ(acg->decide(l2, 1.0).activeCores, 3);
    // L4 keeps two cores (one per socket) plus the safety cap.
    DtmAction top = acg->decide(l4, 2.0);
    EXPECT_EQ(top.activeCores, 2);
    EXPECT_DOUBLE_EQ(top.bandwidthCap, 3.0);

    auto comb = makeCh5Policy(p, "DTM-COMB");
    DtmAction c = comb->decide(l2, 0.0);
    EXPECT_EQ(c.activeCores, 3);
    EXPECT_EQ(c.dvfsLevel, 1u);
}

TEST(Platform, DvfsFloorPinsFrequency)
{
    Platform p = sr1500al();
    auto bw = makeCh5Policy(p, "DTM-BW", 3);
    ThermalReading cold{70.0, 50.0, 40.0};
    EXPECT_EQ(bw->decide(cold, 0.0).dvfsLevel, 3u);
}

TEST(Platform, MemoryNeverShutsDownOnTestbeds)
{
    // Chapter 5 policies rely on the open-loop cap, not full shutdown.
    Platform p = pe1950();
    for (const std::string &name : ch5PolicyNames()) {
        auto policy = makeCh5Policy(p, name);
        ThermalReading scorching{99.0, 60.0, 40.0};
        EXPECT_TRUE(policy->decide(scorching, 0.0).memoryOn) << name;
    }
}

/** Integration: short runs reproduce the headline Chapter 5 orderings. */
TEST(Platform, Sr1500alOrderings)
{
    Platform plat = sr1500al();
    Workload w1 = workloadMix("W1");
    auto run = [&](const char *name) {
        SimConfig cfg = plat.sim;
        cfg.copiesPerApp = 4;
        if (std::string(name) == "No-limit")
            cfg.ambient.tInlet = 26.0;
        ThermalSimulator sim(cfg);
        auto policy = makeCh5Policy(plat, name);
        return sim.run(w1, *policy);
    };
    SimResult base = run("No-limit");
    SimResult bw = run("DTM-BW");
    SimResult cdvfs = run("DTM-CDVFS");

    // BW degrades significantly on the SR1500AL (Section 5.4.2).
    EXPECT_GT(bw.runningTime, base.runningTime * 1.25);
    // CDVFS beats BW via the cooler memory inlet...
    EXPECT_LT(cdvfs.runningTime, bw.runningTime);
    EXPECT_LT(cdvfs.inletTrace.mean(), bw.inletTrace.mean());
    // ...and uses less CPU power (Section 5.4.4).
    EXPECT_LT(cdvfs.avgCpuPower(), bw.avgCpuPower() * 0.95);
}

} // namespace
} // namespace memtherm
