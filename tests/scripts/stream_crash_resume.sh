#!/usr/bin/env bash
# End-to-end crash/resume check against the real CLI binary: a run
# killed mid-grid by fault injection (plus a torn trailing line, as a
# kill mid-append would leave) must resume to results bit-identical to
# an uninterrupted run.
#
# Usage: stream_crash_resume.sh <memtherm-binary> <source-dir> <workdir>
set -euo pipefail

CLI=$1
SRC=$2
WORK=$3
SCENARIO="$SRC/examples/scenarios/dtm_sensitivity.json"

mkdir -p "$WORK"
cd "$WORK"
rm -f full.json full.jsonl crash.jsonl resumed.json

"$CLI" run "$SCENARIO" --copies 1 --threads 2 -o full.json --quiet

rc=0
MEMTHERM_FAULT_AFTER_RUN=3 "$CLI" run "$SCENARIO" --copies 1 --threads 2 \
    --stream crash.jsonl --quiet || rc=$?
if [ "$rc" -ne 86 ]; then
    echo "FAIL: expected injected-crash exit code 86, got $rc" >&2
    exit 1
fi
if [ "$(grep -c '"type": "result"' crash.jsonl)" -ne 3 ]; then
    echo "FAIL: crashed stream should hold exactly 3 results" >&2
    exit 1
fi

# The torn trailing line a kill mid-append would leave (no newline).
printf '{"type": "result", "index": 9' >> crash.jsonl

"$CLI" run "$SCENARIO" --copies 1 --threads 2 \
    --stream crash.jsonl --resume -o resumed.json --quiet
cmp full.json resumed.json

# A second resume finds nothing left to do.
out=$("$CLI" run "$SCENARIO" --copies 1 --threads 2 \
    --stream crash.jsonl --resume)
case "$out" in
*"0 executed"*) ;;
*)
    echo "FAIL: re-resume should execute 0 runs; said: $out" >&2
    exit 1
    ;;
esac

echo "PASS: crash + torn tail resumed to bit-identical results"
