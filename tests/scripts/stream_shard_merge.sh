#!/usr/bin/env bash
# End-to-end sharding check against the real CLI binary: a 3-way
# round-robin shard of one scenario, merged, must be bit-identical to
# the unsharded run — results JSON and report CSV alike — and merging
# an incomplete shard set must fail naming the hole.
#
# Usage: stream_shard_merge.sh <memtherm-binary> <source-dir> <workdir>
set -euo pipefail

CLI=$1
SRC=$2
WORK=$3
SCENARIO="$SRC/examples/scenarios/dtm_sensitivity.json"

mkdir -p "$WORK"
cd "$WORK"
rm -f full.json full.csv merged.json shards.csv shard*.jsonl err.txt

"$CLI" run "$SCENARIO" --copies 1 --threads 2 -o full.json --quiet
"$CLI" report full.json --csv full.csv --quiet > /dev/null

for i in 1 2 3; do
    "$CLI" run "$SCENARIO" --copies 1 --threads 2 \
        --stream "shard$i.jsonl" --shard "$i/3" --quiet
done

"$CLI" merge shard1.jsonl shard2.jsonl shard3.jsonl -o merged.json --quiet
cmp full.json merged.json

# Report straight off the shard streams, no merge step needed.
"$CLI" report shard1.jsonl shard2.jsonl shard3.jsonl \
    --csv shards.csv --quiet > /dev/null
cmp full.csv shards.csv

# A strict subset must fail loudly, naming the missing runs.
rc=0
"$CLI" merge shard1.jsonl shard3.jsonl --quiet 2> err.txt || rc=$?
if [ "$rc" -eq 0 ]; then
    echo "FAIL: merging 2 of 3 shards should fail" >&2
    exit 1
fi
if ! grep -q "no record" err.txt; then
    echo "FAIL: incomplete-merge error should say 'no record':" >&2
    cat err.txt >&2
    exit 1
fi

echo "PASS: 3-way shard merge bit-identical; incomplete merge rejected"
