#!/usr/bin/env bash
# End-to-end failure-isolation check against the real CLI binary: one
# injected run failure must yield an error record and a non-zero exit
# with a failure summary naming the run — while every other run's
# result survives — and a resume retry must heal the stream to results
# bit-identical to a never-failed run.
#
# Usage: stream_failure_isolation.sh <memtherm-binary> <source-dir> <workdir>
set -euo pipefail

CLI=$1
SRC=$2
WORK=$3
SCENARIO="$SRC/examples/scenarios/dtm_sensitivity.json"

mkdir -p "$WORK"
cd "$WORK"
rm -f full.json fail.jsonl err.txt err2.txt resumed.json

rc=0
MEMTHERM_FAULT_FAIL_RUN=2 "$CLI" run "$SCENARIO" --copies 1 --threads 2 \
    --stream fail.jsonl --quiet 2> err.txt || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "FAIL: a failed run should exit 1, got $rc" >&2
    exit 1
fi
if ! grep -q "run #2" err.txt || ! grep -q "1 run(s) failed" err.txt; then
    echo "FAIL: failure summary should name run #2:" >&2
    cat err.txt >&2
    exit 1
fi
if [ "$(grep -c '"type": "result"' fail.jsonl)" -ne 15 ] ||
    [ "$(grep -c '"type": "error"' fail.jsonl)" -ne 1 ]; then
    echo "FAIL: stream should hold 15 results + 1 error record" >&2
    exit 1
fi

# The non-streaming path isolates too: full results plus an errors
# array, not an aborted grid.
rc=0
MEMTHERM_FAULT_FAIL_RUN=2 "$CLI" run "$SCENARIO" --copies 1 --threads 2 \
    -o fail.json --quiet 2> err2.txt || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "FAIL: non-streaming failed run should exit 1, got $rc" >&2
    exit 1
fi
if ! grep -q "run #2" err2.txt; then
    echo "FAIL: non-streaming failure summary should name run #2" >&2
    exit 1
fi
if ! grep -q '"errors"' fail.json; then
    echo "FAIL: results JSON should record the failure" >&2
    exit 1
fi

# Resume (without the fault) retries the failed index and heals the
# stream bit-identically to a clean run.
"$CLI" run "$SCENARIO" --copies 1 --threads 2 -o full.json --quiet
"$CLI" run "$SCENARIO" --copies 1 --threads 2 \
    --stream fail.jsonl --resume -o resumed.json --quiet
cmp full.json resumed.json

echo "PASS: one failed run isolated, reported, and healed on resume"
