/**
 * @file
 * Unit tests for TimeSeries.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/time_series.hh"

namespace memtherm
{
namespace
{

TEST(TimeSeries, BasicAccounting)
{
    TimeSeries s(0.5);
    s.add(1.0);
    s.add(3.0);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s.duration(), 1.0);
    EXPECT_DOUBLE_EQ(s.at(0), 1.0);
    EXPECT_DOUBLE_EQ(s.timeAt(1), 1.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(TimeSeries, IntegralIsPowerTimesTime)
{
    // 100 W for 10 samples of 1 s -> 1000 J.
    TimeSeries s(1.0);
    for (int i = 0; i < 10; ++i)
        s.add(100.0);
    EXPECT_DOUBLE_EQ(s.integral(), 1000.0);
}

TEST(TimeSeries, DownsampleAverages)
{
    TimeSeries s(1.0);
    for (int i = 0; i < 5; ++i)
        s.add(static_cast<double>(i)); // 0 1 2 3 4
    TimeSeries d = s.downsample(2);
    ASSERT_EQ(d.size(), 3u);
    EXPECT_DOUBLE_EQ(d.period(), 2.0);
    EXPECT_DOUBLE_EQ(d.at(0), 0.5);
    EXPECT_DOUBLE_EQ(d.at(1), 2.5);
    EXPECT_DOUBLE_EQ(d.at(2), 4.0); // tail partial group
}

TEST(TimeSeries, OutOfRangePanics)
{
    TimeSeries s(1.0);
    s.add(1.0);
    EXPECT_THROW(s.at(1), PanicError);
    EXPECT_THROW(s.timeAt(1), PanicError);
}

TEST(TimeSeries, NonPositivePeriodPanics)
{
    EXPECT_THROW(TimeSeries(0.0), PanicError);
}

TEST(TimeSeries, EmptySeries)
{
    TimeSeries s(1.0);
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.integral(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

} // namespace
} // namespace memtherm
