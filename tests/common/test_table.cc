/**
 * @file
 * Unit tests for the table printer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace memtherm
{
namespace
{

TEST(Table, PrintsHeaderAndRows)
{
    Table t("Demo", {"name", "value"});
    t.addRow({"alpha", "1.0"});
    t.addRow({"beta", "2.5"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("== Demo =="), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("2.5"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput)
{
    Table t("Demo", {"a", "b"});
    t.addRow({"x", "y"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\nx,y\n");
}

TEST(Table, RowArityMismatchPanics)
{
    Table t("Demo", {"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

} // namespace
} // namespace memtherm
