/**
 * @file
 * Unit tests for the shared JSON layer: parsing, escaping, lossless
 * number round-trips, ordered objects, and error reporting.
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/json.hh"
#include "common/logging.hh"

namespace memtherm
{
namespace
{

TEST(Json, ParsePrimitives)
{
    EXPECT_TRUE(Json::parse("null").isNull());
    EXPECT_EQ(Json::parse("true").asBool(), true);
    EXPECT_EQ(Json::parse("false").asBool(), false);
    EXPECT_DOUBLE_EQ(Json::parse("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(Json::parse("-3.5e2").asNumber(), -350.0);
    EXPECT_EQ(Json::parse("\"hi\"").asString(), "hi");
}

TEST(Json, ParseNested)
{
    Json j = Json::parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
    ASSERT_TRUE(j.isObject());
    const auto &a = j.at("a").asArray();
    ASSERT_EQ(a.size(), 3u);
    EXPECT_DOUBLE_EQ(a[0].asNumber(), 1.0);
    EXPECT_EQ(a[2].at("b").asBool(), true);
    EXPECT_EQ(j.at("c").asString(), "x");
    EXPECT_EQ(j.find("missing"), nullptr);
    EXPECT_THROW(j.at("missing"), FatalError);
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json j = Json::object();
    j.set("zebra", 1).set("alpha", 2).set("mid", 3);
    const auto &m = j.asObject();
    ASSERT_EQ(m.size(), 3u);
    EXPECT_EQ(m[0].first, "zebra");
    EXPECT_EQ(m[1].first, "alpha");
    EXPECT_EQ(m[2].first, "mid");

    // set() on an existing key overwrites in place.
    j.set("alpha", 9);
    EXPECT_EQ(j.asObject().size(), 3u);
    EXPECT_DOUBLE_EQ(j.at("alpha").asNumber(), 9.0);
}

TEST(Json, StringEscaping)
{
    Json j = Json::object();
    std::string nasty = "quote\" backslash\\ newline\n tab\t bell\x07";
    j.set("k", nasty);
    Json back = Json::parse(j.dump());
    EXPECT_EQ(back.at("k").asString(), nasty);

    // Escapes parse to the characters they name.
    EXPECT_EQ(Json::parse(R"("A\n\"\\")").asString(), "A\n\"\\");
    // Surrogate pairs decode to UTF-8.
    EXPECT_EQ(Json::parse(R"("😀")").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(Json, NumbersRoundTripLosslessly)
{
    const double values[] = {0.1,
                             1.0 / 3.0,
                             6893.4374632337567,
                             1e-300,
                             -2.5e300,
                             9007199254740991.0,
                             52.839999999998057};
    for (double v : values) {
        Json j = Json::array();
        j.push(v);
        double back = Json::parse(j.dump()).asArray()[0].asNumber();
        EXPECT_EQ(back, v) << "value " << v;
    }
    // Integers print without a decimal point.
    EXPECT_EQ(Json(4).dump(0), "4");
    EXPECT_EQ(Json(-17.0).dump(0), "-17");
    EXPECT_THROW(Json(std::numeric_limits<double>::infinity()).dump(),
                 FatalError);
}

TEST(Json, DumpParseIdentity)
{
    Json doc = Json::object();
    doc.set("name", "round-trip");
    doc.set("flag", true);
    doc.set("nothing", Json());
    Json arr = Json::array();
    arr.push(1.5).push("two").push(Json::object().set("deep", 0.25));
    doc.set("list", std::move(arr));

    Json pretty = Json::parse(doc.dump(2));
    Json compact = Json::parse(doc.dump(0));
    EXPECT_EQ(pretty, doc);
    EXPECT_EQ(compact, doc);
    // Identity is stable under repeated round-trips.
    EXPECT_EQ(Json::parse(pretty.dump(4)), doc);
}

TEST(Json, ParseErrorsCarryPosition)
{
    auto expectError = [](const std::string &text) {
        EXPECT_THROW(Json::parse(text), FatalError) << text;
    };
    expectError("");
    expectError("{");
    expectError("[1, ]");
    expectError("{\"a\" 1}");
    expectError("\"unterminated");
    expectError("tru");
    expectError("1.2.3");
    expectError("{} trailing");
    expectError("\"bad \\q escape\"");
    expectError("\"\\ud800 lone surrogate\"");
    expectError("\"\\udc00 lone low surrogate\"");

    try {
        Json::parse("{\n  \"a\": nope\n}");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
            << e.what();
    }
}

TEST(Json, TypeMismatchesAreFatal)
{
    Json j = Json::parse("[1]");
    EXPECT_THROW(j.asObject(), FatalError);
    EXPECT_THROW(j.asString(), FatalError);
    EXPECT_THROW(j.at("x"), FatalError);
    EXPECT_THROW(Json("s").asNumber(), FatalError);
}

TEST(Json, FileRoundTrip)
{
    std::string path = testing::TempDir() + "memtherm_json_test.json";
    Json doc = Json::object();
    doc.set("x", 0.1);
    doc.save(path);
    EXPECT_EQ(Json::load(path), doc);
    EXPECT_THROW(Json::load(path + ".does-not-exist"), FatalError);
}

} // namespace
} // namespace memtherm
