/**
 * @file
 * Unit tests for the streaming statistics accumulators.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace memtherm
{
namespace
{

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, BasicMoments)
{
    Accumulator a;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.add(x);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_DOUBLE_EQ(a.sum(), 40.0);
    EXPECT_NEAR(a.stddev(), 2.0, 1e-12);
}

TEST(Accumulator, SingleSample)
{
    Accumulator a;
    a.add(3.5);
    EXPECT_DOUBLE_EQ(a.mean(), 3.5);
    EXPECT_DOUBLE_EQ(a.min(), 3.5);
    EXPECT_DOUBLE_EQ(a.max(), 3.5);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesCombinedStream)
{
    Rng rng(7);
    Accumulator left, right, all;
    for (int i = 0; i < 1000; ++i) {
        double x = rng.uniform(-5.0, 5.0);
        all.add(x);
        (i % 2 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty)
{
    Accumulator a, empty;
    a.add(1.0);
    a.add(2.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Correlation, PerfectPositive)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    std::vector<double> ys{2, 4, 6, 8, 10};
    EXPECT_NEAR(correlation(xs, ys), 1.0, 1e-12);
}

TEST(Correlation, PerfectNegative)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    std::vector<double> ys{10, 8, 6, 4, 2};
    EXPECT_NEAR(correlation(xs, ys), -1.0, 1e-12);
}

TEST(Correlation, ConstantSeriesIsZero)
{
    std::vector<double> xs{1, 2, 3};
    std::vector<double> ys{4, 4, 4};
    EXPECT_DOUBLE_EQ(correlation(xs, ys), 0.0);
}

TEST(Correlation, MismatchedLengthPanics)
{
    std::vector<double> xs{1, 2, 3};
    std::vector<double> ys{1, 2};
    EXPECT_THROW(correlation(xs, ys), PanicError);
}

TEST(Geomean, KnownValue)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, NonPositivePanics)
{
    EXPECT_THROW(geomean({1.0, 0.0}), PanicError);
}

} // namespace
} // namespace memtherm
