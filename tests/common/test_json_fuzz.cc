/**
 * @file
 * Seeded fuzz harness for the JSON layer and the scenario-spec
 * serialization:
 *
 *  - a random-spec generator drives toJson -> dump -> parse -> fromJson
 *    -> toJson round-trips that must be byte-identical;
 *  - truncated and mutated documents must produce FatalError with
 *    line:col context (json.cc's `at line L:C` suffix), never a crash
 *    or misparse — the CI sanitizer job runs this suite under
 *    ASan+UBSan with MEMTHERM_FUZZ_CASES=10000.
 *
 * The case count defaults to ~1000 and scales with the
 * MEMTHERM_FUZZ_CASES environment variable; every case derives from the
 * fixed base seed, so a failure reproduces by case index.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/sim/registry.hh"
#include "core/sim/scenario.hh"

namespace memtherm
{
namespace
{

std::size_t
fuzzCases()
{
    if (const char *env = std::getenv("MEMTHERM_FUZZ_CASES")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end && *end == '\0' && v > 0)
            return static_cast<std::size_t>(v);
    }
    return 1000;
}

/** A printable string with escape-worthy characters mixed in. */
std::string
randomString(Rng &rng, std::size_t max_len)
{
    static const char alphabet[] =
        "abcdefghijklmnopqrstuvwxyz"
        "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _-./"
        "\"\\\n\t";
    const std::size_t len = rng.below(max_len + 1);
    std::string out;
    for (std::size_t i = 0; i < len; ++i)
        out += alphabet[rng.below(sizeof(alphabet) - 1)];
    return out;
}

template <typename T>
const T &
pick(Rng &rng, const std::vector<T> &v)
{
    return v[rng.below(v.size())];
}

/**
 * A structurally valid random spec: catalog names come from the real
 * registries (fromJson stores them; resolution happens at lower()), so
 * the round-trip exercises every member the serializer knows.
 */
ScenarioSpec
randomSpec(Rng &rng)
{
    ScenarioSpec s;
    s.name = "fuzz_" + std::to_string(rng.below(1000000));
    if (rng.uniform() < 0.5)
        s.description = randomString(rng, 40);

    const bool platform = rng.uniform() < 0.15;
    if (platform) {
        s.platform = pick(rng, platformNames());
    } else {
        s.cooling = pick(rng, coolingNames());
        s.ambient = pick(rng, ambientNames());
        if (rng.uniform() < 0.3)
            s.emergencyLevels = pick(rng, emergencyLevelNames());
        if (rng.uniform() < 0.3) {
            if (rng.uniform() < 0.5) {
                s.memoryOrg.name = pick(rng, memoryOrgNames());
            } else {
                s.memoryOrg.org =
                    MemoryOrgConfig{1 + static_cast<int>(rng.below(8)),
                                    1 + static_cast<int>(rng.below(8))};
            }
        }
        if (rng.uniform() < 0.3) {
            if (rng.uniform() < 0.5) {
                s.trafficShape.name = pick(rng, trafficShapeNames());
            } else {
                s.trafficShape.shares = {rng.uniform(), rng.uniform()};
            }
        }
        if (rng.uniform() < 0.3)
            s.refresh.name = pick(rng, refreshModelNames());
        if (rng.uniform() < 0.3) {
            if (rng.uniform() < 0.5) {
                s.thermalModel.name = pick(rng, thermalModelNames());
            } else {
                BankGridConfig g{1 + static_cast<int>(rng.below(4)),
                                 1 + static_cast<int>(rng.below(4)),
                                 {}};
                if (rng.uniform() < 0.5)
                    for (int c = 0; c < g.cells(); ++c)
                        g.weights.push_back(rng.uniform());
                s.thermalModel.grid = g;
            }
        }
        if (rng.uniform() < 0.2)
            s.trace = "traces/" + std::to_string(rng.next()) + ".trace";
        if (rng.uniform() < 0.4)
            s.tInlet = rng.uniform(20.0, 60.0);
        if (rng.uniform() < 0.3)
            s.sensorNoiseSigma = rng.uniform();
        if (rng.uniform() < 0.3) // JSON numbers: keep within 2^53
            s.sensorSeed = rng.below(1ULL << 50);
        if (rng.uniform() < 0.25)
            s.sweepTInlet = {rng.uniform(20.0, 60.0),
                             rng.uniform(20.0, 60.0)};
        if (rng.uniform() < 0.25)
            s.sweepCopies = {1 + static_cast<int>(rng.below(4))};
        if (rng.uniform() < 0.2)
            s.sweepCooling = {pick(rng, coolingNames())};
        if (rng.uniform() < 0.2)
            s.sweepRefresh = {RefreshSpec{pick(rng, refreshModelNames()),
                                          {}}};
        if (rng.uniform() < 0.2) {
            ThermalModelSpec t;
            t.grid = BankGridConfig{2, 2, {}};
            s.sweepThermalModel = {
                ThermalModelSpec{pick(rng, thermalModelNames()), {}}, t};
        }
    }
    if (rng.uniform() < 0.4)
        s.copiesPerApp = 1 + static_cast<int>(rng.below(6));
    if (rng.uniform() < 0.3)
        s.maxSimTime = rng.uniform(100.0, 5000.0);
    if (rng.uniform() < 0.3)
        s.dtmInterval = rng.uniform(0.005, 0.2);
    if (rng.uniform() < 0.3)
        s.instrScale = rng.uniform(0.1, 2.0);

    const std::vector<std::string> wl = workloadNames();
    s.workloads = {pick(rng, wl)};
    if (rng.uniform() < 0.5)
        s.workloads.push_back(pick(rng, wl));
    s.policies = {"No-limit"};
    if (rng.uniform() < 0.5)
        s.policies.push_back("DTM-TS");
    return s;
}

TEST(JsonFuzz, RandomSpecsRoundTripByteIdentically)
{
    const std::size_t cases = fuzzCases();
    Rng seed_stream(0x5eedf00dULL);
    for (std::size_t i = 0; i < cases; ++i) {
        Rng rng(seed_stream.next());
        const ScenarioSpec spec = randomSpec(rng);
        const std::string once = spec.toJson().dump(2);
        ScenarioSpec back;
        try {
            back = ScenarioSpec::fromJson(Json::parse(once));
        } catch (const FatalError &e) {
            FAIL() << "case " << i << ": serialized spec refused: "
                   << e.what() << "\n" << once;
        }
        EXPECT_EQ(back, spec) << "case " << i;
        EXPECT_EQ(back.toJson().dump(2), once) << "case " << i;
        // The compact form parses to the same value too.
        EXPECT_EQ(Json::parse(spec.toJson().dump(0)).dump(2), once)
            << "case " << i;
    }
}

TEST(JsonFuzz, RandomValuesSurviveDumpParseDump)
{
    // The JSON layer's own contract: parse(dump(v)) == v for arbitrary
    // machine-generated values, doubles included (shortest round-trip
    // formatting).
    const std::size_t cases = fuzzCases();
    Rng seed_stream(0xaced5eedULL);
    for (std::size_t i = 0; i < cases; ++i) {
        Rng rng(seed_stream.next());
        Json v = Json::object();
        v.set("s", randomString(rng, 30));
        v.set("d", rng.uniform(-1e12, 1e12));
        v.set("tiny", rng.uniform() * 1e-300);
        v.set("i", static_cast<double>(rng.next() >> 12));
        v.set("b", rng.uniform() < 0.5);
        Json arr = Json::array();
        const std::size_t n = rng.below(6);
        for (std::size_t k = 0; k < n; ++k)
            arr.push(rng.uniform(-1.0, 1.0));
        v.set("a", std::move(arr));
        const std::string text = v.dump(2);
        EXPECT_EQ(Json::parse(text).dump(2), text) << "case " << i;
    }
}

/** Expect a FatalError whose message carries line:col context. */
void
expectDiagnostic(const std::string &text)
{
    try {
        (void)Json::parse(text);
        // Some mutations still parse — that is fine; the property under
        // test is "no crash, and failures are located".
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(" at line "), std::string::npos)
            << "undiagnosed failure for input: " << text.substr(0, 80)
            << " -> " << what;
    }
}

TEST(JsonFuzz, TruncationsFailWithLineColNotCrash)
{
    const std::size_t cases = fuzzCases();
    Rng seed_stream(0x7c0ffeeULL);
    for (std::size_t i = 0; i < cases; ++i) {
        Rng rng(seed_stream.next());
        std::string whole = randomSpec(rng).toJson().dump(2);
        while (!whole.empty() &&
               (whole.back() == '\n' || whole.back() == ' '))
            whole.pop_back();
        // A strict prefix of the (whitespace-trimmed) document leaves
        // its outer object unbalanced, so parse must refuse — with a
        // location, not a crash.
        const std::size_t cut = rng.below(whole.size());
        try {
            (void)Json::parse(whole.substr(0, cut));
            FAIL() << "case " << i << ": truncation at " << cut
                   << " parsed";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find(" at line "),
                      std::string::npos)
                << "case " << i << ": " << e.what();
        }
    }
}

TEST(JsonFuzz, MutationsNeverCrashAndFailuresAreLocated)
{
    const std::size_t cases = fuzzCases();
    Rng seed_stream(0xdeadbeefULL);
    static const char junk[] = "{}[],:\"\\ truefalsnul\n\t-+.eE";
    for (std::size_t i = 0; i < cases; ++i) {
        Rng rng(seed_stream.next());
        std::string doc = randomSpec(rng).toJson().dump(2);
        const std::size_t edits = 1 + rng.below(8);
        for (std::size_t k = 0; k < edits; ++k) {
            const std::size_t at = rng.below(doc.size());
            doc[at] = junk[rng.below(sizeof(junk) - 1)];
        }
        expectDiagnostic(doc);
        // The spec layer on top must also fail cleanly, never crash:
        // unknown members, bad types and bad names are FatalError.
        try {
            (void)ScenarioSpec::fromJson(Json::parse(doc));
        } catch (const FatalError &) {
            // expected for most mutations
        }
    }
}

TEST(JsonFuzz, GarbageCorpusRegressions)
{
    // Hand-picked minimal inputs that historically catch parser bugs.
    for (const char *text :
         {"", "{", "[", "\"", "{\"a\":}", "{\"a\":1,}", "[1,2",
          "[1 2]", "tru", "nul", "false0", "-", "0x10", "1e", "1e+",
          "\"\\u12\"", "\"\\q\"", "{\"a\" 1}", "{1:2}", "[,]",
          "\"unterminated", "{\"a\":\"b\"}}", "1 2", "\x01",
          "{\"a\":\n\"b\",\n}"}) {
        try {
            (void)Json::parse(text);
            FAIL() << "accepted garbage: " << text;
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find(" at line "),
                      std::string::npos)
                << text << " -> " << e.what();
        }
    }
    // Deep nesting must not smash the stack: the parser's depth cap
    // refuses pathological documents with a located diagnostic.
    const std::string deep(100000, '[');
    try {
        (void)Json::parse(deep);
        FAIL() << "accepted 100k-deep nesting";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("nesting deeper than"), std::string::npos)
            << what;
        EXPECT_NE(what.find(" at line "), std::string::npos) << what;
    }
}

} // namespace
} // namespace memtherm
