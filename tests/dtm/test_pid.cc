/**
 * @file
 * Unit tests for the PID formal controller (Eq. 4.1, Section 4.2.3).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "core/dtm/pid.hh"

namespace memtherm
{
namespace
{

TEST(Pid, PaperConstants)
{
    PidParams amb = ambPidParams();
    EXPECT_DOUBLE_EQ(amb.kc, 10.4);
    EXPECT_DOUBLE_EQ(amb.ki, 180.24);
    EXPECT_DOUBLE_EQ(amb.kd, 0.001);
    EXPECT_DOUBLE_EQ(amb.target, 109.8);
    EXPECT_DOUBLE_EQ(amb.integralGate, 109.0);

    PidParams dram = dramPidParams();
    EXPECT_DOUBLE_EQ(dram.kc, 12.4);
    EXPECT_DOUBLE_EQ(dram.ki, 155.12);
    EXPECT_DOUBLE_EQ(dram.target, 84.8);
    EXPECT_DOUBLE_EQ(dram.integralGate, 84.0);
}

TEST(Pid, ColdSystemRunsFullSpeed)
{
    PidController c(ambPidParams());
    EXPECT_DOUBLE_EQ(c.update(50.0, 0.01), 1.0);
    EXPECT_DOUBLE_EQ(c.update(90.0, 0.01), 1.0);
}

TEST(Pid, HotSystemThrottles)
{
    PidController c(ambPidParams());
    double u = c.update(110.5, 0.01);
    EXPECT_LT(u, 0.5);
}

TEST(Pid, OutputBounded)
{
    PidController c(ambPidParams());
    for (double t : {20.0, 80.0, 109.0, 109.8, 110.0, 120.0, 105.0}) {
        double u = c.update(t, 0.01);
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
}

TEST(Pid, IntegralGatedBelowThreshold)
{
    // Below the gate (109.0) the integral must not accumulate: long cold
    // periods cannot wind the controller up.
    PidController c(ambPidParams());
    for (int i = 0; i < 10000; ++i)
        c.update(100.0, 0.01);
    // First hot sample: output reflects only P+D terms, so it must
    // throttle despite the long cold history.
    double u = c.update(110.4, 0.01);
    EXPECT_LT(u, 0.6);
}

TEST(Pid, IntegralRaisesOutputNearTarget)
{
    // Sitting slightly below target above the gate, the integral should
    // push the output up toward full speed.
    PidController c(ambPidParams());
    double first = c.update(109.75, 0.01);
    double u = first;
    for (int i = 0; i < 500; ++i)
        u = c.update(109.75, 0.01);
    EXPECT_GT(u, first);
    EXPECT_DOUBLE_EQ(u, 1.0);
}

TEST(Pid, ClosedLoopConvergesToTarget)
{
    // A toy first-order plant: stable temperature is a linear function of
    // the actuator u. The PID must settle the plant near its target
    // without sustained oscillation (Section 4.2.3's promise).
    PidParams params = ambPidParams();
    PidController c(params);
    double temp = 50.0;
    double dt = 0.1;
    double tau = 50.0;
    double last_u = 1.0;
    for (int i = 0; i < 20000; ++i) {
        double stable = 100.8 + last_u * 14.0; // 100.8 .. 114.8
        temp += (stable - temp) * (1.0 - std::exp(-dt / tau));
        last_u = c.update(temp, dt);
    }
    EXPECT_NEAR(temp, params.target, 0.25);
}

TEST(Pid, DerivativeDampsRapidRise)
{
    PidParams p = ambPidParams();
    p.kd = 2.0; // exaggerate for visibility
    PidController with_d(p);
    p.kd = 0.0;
    PidController without_d(p);
    // Rapidly rising temperature near the target.
    double u_with = 0, u_without = 0;
    for (double t = 109.0; t <= 109.7; t += 0.1) {
        u_with = with_d.update(t, 0.01);
        u_without = without_d.update(t, 0.01);
    }
    EXPECT_LT(u_with, u_without);
}

TEST(Pid, ResetClearsHistory)
{
    PidController c(ambPidParams());
    for (int i = 0; i < 100; ++i)
        c.update(109.5, 0.01);
    c.reset();
    EXPECT_DOUBLE_EQ(c.output(), 1.0);
}

TEST(Pid, InvalidDtPanics)
{
    PidController c(ambPidParams());
    EXPECT_THROW(c.update(100.0, 0.0), PanicError);
}

} // namespace
} // namespace memtherm
