/**
 * @file
 * Unit tests for the thermal emergency level tables (Table 4.3).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/dtm/emergency_levels.hh"

namespace memtherm
{
namespace
{

TEST(EmergencyLevels, Table43AmbBands)
{
    EmergencyLevels e = ch4EmergencyLevels();
    EXPECT_EQ(e.numLevels(), 5);
    EXPECT_EQ(e.ambLevel(100.0), 0);  // L1: (-, 108)
    EXPECT_EQ(e.ambLevel(107.99), 0);
    EXPECT_EQ(e.ambLevel(108.0), 1);  // L2: [108, 109)
    EXPECT_EQ(e.ambLevel(108.9), 1);
    EXPECT_EQ(e.ambLevel(109.0), 2);  // L3: [109, 109.5)
    EXPECT_EQ(e.ambLevel(109.5), 3);  // L4: [109.5, 110)
    EXPECT_EQ(e.ambLevel(110.0), 4);  // L5: [110, -)
    EXPECT_EQ(e.ambLevel(150.0), 4);
}

TEST(EmergencyLevels, Table43DramBands)
{
    EmergencyLevels e = ch4EmergencyLevels();
    EXPECT_EQ(e.dramLevel(80.0), 0);
    EXPECT_EQ(e.dramLevel(83.0), 1);
    EXPECT_EQ(e.dramLevel(84.0), 2);
    EXPECT_EQ(e.dramLevel(84.5), 3);
    EXPECT_EQ(e.dramLevel(85.0), 4);
}

TEST(EmergencyLevels, CombinedTakesWorseSensor)
{
    EmergencyLevels e = ch4EmergencyLevels();
    ThermalReading r;
    r.amb = 100.0;  // L1
    r.dram = 84.6;  // L4
    EXPECT_EQ(e.level(r), 3);
    r.amb = 110.5;  // L5
    EXPECT_EQ(e.level(r), 4);
}

TEST(EmergencyLevels, MonotoneInTemperature)
{
    EmergencyLevels e = ch4EmergencyLevels();
    int prev = 0;
    for (double t = 90.0; t < 115.0; t += 0.1) {
        int lvl = e.ambLevel(t);
        EXPECT_GE(lvl, prev);
        prev = lvl;
    }
}

TEST(EmergencyLevels, ValidationPanics)
{
    EXPECT_THROW(EmergencyLevels({109.0, 108.0}, {83.0, 84.0}), PanicError);
    EXPECT_THROW(EmergencyLevels({108.0}, {83.0, 84.0}), PanicError);
    EXPECT_THROW(EmergencyLevels({}, {}), PanicError);
}

} // namespace
} // namespace memtherm
