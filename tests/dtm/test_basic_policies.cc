/**
 * @file
 * Unit tests for the DTM policies of Section 4.2.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "core/dtm/basic_policies.hh"

namespace memtherm
{
namespace
{

ThermalReading
reading(Celsius amb, Celsius dram = 70.0)
{
    ThermalReading r;
    r.amb = amb;
    r.dram = dram;
    r.inlet = 50.0;
    return r;
}

TEST(TsPolicy, HysteresisCycle)
{
    TsPolicy p(110.0, 109.0, 85.0, 84.0);
    // Cool: runs at full speed.
    EXPECT_TRUE(p.decide(reading(100.0), 0.0).memoryOn);
    // Crosses the TDP: shutdown.
    EXPECT_FALSE(p.decide(reading(110.0), 1.0).memoryOn);
    // Stays down until the TRP even though below TDP.
    EXPECT_FALSE(p.decide(reading(109.5), 2.0).memoryOn);
    // At the TRP: released.
    EXPECT_TRUE(p.decide(reading(109.0), 3.0).memoryOn);
}

TEST(TsPolicy, DramSensorAloneTriggers)
{
    TsPolicy p(110.0, 109.0, 85.0, 84.0);
    EXPECT_FALSE(p.decide(reading(100.0, 85.2), 0.0).memoryOn);
    // Both sensors must clear for release.
    EXPECT_FALSE(p.decide(reading(100.0, 84.5), 1.0).memoryOn);
    EXPECT_TRUE(p.decide(reading(100.0, 83.9), 2.0).memoryOn);
}

TEST(TsPolicy, ResetClearsLatch)
{
    TsPolicy p(110.0, 109.0, 85.0, 84.0);
    p.decide(reading(111.0), 0.0);
    EXPECT_TRUE(p.isShutdown());
    p.reset();
    EXPECT_FALSE(p.isShutdown());
    EXPECT_TRUE(p.decide(reading(109.5), 1.0).memoryOn);
}

TEST(TsPolicy, BadTrpPanics)
{
    EXPECT_THROW(TsPolicy(109.0, 110.0, 85.0, 84.0), PanicError);
}

TEST(BwPolicy, Table43Caps)
{
    LeveledPolicy p = makeCh4BwPolicy();
    EXPECT_TRUE(std::isinf(p.decide(reading(100.0), 0.0).bandwidthCap));
    EXPECT_DOUBLE_EQ(p.decide(reading(108.2), 1.0).bandwidthCap, 19.2);
    EXPECT_DOUBLE_EQ(p.decide(reading(109.2), 2.0).bandwidthCap, 12.8);
    EXPECT_DOUBLE_EQ(p.decide(reading(109.7), 3.0).bandwidthCap, 6.4);
    EXPECT_FALSE(p.decide(reading(110.2), 4.0).memoryOn);
}

TEST(AcgPolicy, Table43Cores)
{
    LeveledPolicy p = makeCh4AcgPolicy();
    EXPECT_EQ(p.decide(reading(100.0), 0.0).activeCores, 4);
    EXPECT_EQ(p.decide(reading(108.2), 1.0).activeCores, 3);
    EXPECT_EQ(p.decide(reading(109.2), 2.0).activeCores, 2);
    EXPECT_EQ(p.decide(reading(109.7), 3.0).activeCores, 1);
    DtmAction top = p.decide(reading(110.2), 4.0);
    EXPECT_EQ(top.activeCores, 0);
    EXPECT_FALSE(top.memoryOn);
}

TEST(CdvfsPolicy, Table43Levels)
{
    LeveledPolicy p = makeCh4CdvfsPolicy();
    EXPECT_EQ(p.decide(reading(100.0), 0.0).dvfsLevel, 0u);
    EXPECT_EQ(p.decide(reading(108.2), 1.0).dvfsLevel, 1u);
    EXPECT_EQ(p.decide(reading(109.2), 2.0).dvfsLevel, 2u);
    EXPECT_EQ(p.decide(reading(109.7), 3.0).dvfsLevel, 3u);
    EXPECT_FALSE(p.decide(reading(110.2), 4.0).memoryOn);
}

TEST(LeveledPolicy, TopLevelLatchesUntilRelease)
{
    // Section 4.4.2: after an overshoot the memory stays down until the
    // temperature falls below the release point (109.0), not merely
    // below the TDP.
    LeveledPolicy p = makeCh4CdvfsPolicy();
    EXPECT_FALSE(p.decide(reading(110.1), 0.0).memoryOn);
    EXPECT_FALSE(p.decide(reading(109.6), 1.0).memoryOn);
    EXPECT_FALSE(p.decide(reading(109.2), 2.0).memoryOn);
    EXPECT_TRUE(p.decide(reading(108.9), 3.0).memoryOn);
    EXPECT_EQ(p.decide(reading(108.9), 3.0).dvfsLevel, 1u);
}

TEST(LeveledPolicy, DramSensorDrivesLevels)
{
    LeveledPolicy p = makeCh4AcgPolicy();
    EXPECT_EQ(p.decide(reading(100.0, 84.1), 0.0).activeCores, 2);
}

TEST(LeveledPolicy, ResetClearsLatch)
{
    LeveledPolicy p = makeCh4BwPolicy();
    p.decide(reading(110.5), 0.0);
    EXPECT_TRUE(p.isLatched());
    p.reset();
    EXPECT_FALSE(p.isLatched());
}

TEST(LeveledPolicy, ActionTableArityPanics)
{
    EXPECT_THROW(LeveledPolicy("x", ch4EmergencyLevels(),
                               {DtmAction{}, DtmAction{}}, 109.0, 84.0),
                 PanicError);
}

} // namespace
} // namespace memtherm
