/**
 * @file
 * Unit tests for PID-driven DTM policies.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/dtm/pid_policies.hh"

namespace memtherm
{
namespace
{

ThermalReading
reading(Celsius amb, Celsius dram = 70.0)
{
    ThermalReading r;
    r.amb = amb;
    r.dram = dram;
    return r;
}

TEST(PidPolicy, ColdRunsUnconstrained)
{
    PidPolicy p = makeCh4BwPidPolicy();
    DtmAction a = p.decide(reading(60.0), 0.0);
    EXPECT_TRUE(a.memoryOn);
    EXPECT_TRUE(std::isinf(a.bandwidthCap));
}

TEST(PidPolicy, SafetyOverrideAtTdp)
{
    for (PidPolicy p : {makeCh4BwPidPolicy(), makeCh4AcgPidPolicy(),
                        makeCh4CdvfsPidPolicy()}) {
        DtmAction a = p.decide(reading(110.0), 0.0);
        EXPECT_FALSE(a.memoryOn) << p.name();
        DtmAction b = p.decide(reading(90.0, 85.5), 1.0);
        EXPECT_FALSE(b.memoryOn) << p.name();
    }
}

TEST(PidPolicy, BandwidthActuatorWalksLevels)
{
    PidPolicy p = makeCh4BwPidPolicy();
    // Very hot: throttled hard (not off — safety handles >= TDP).
    DtmAction hot = p.decide(reading(109.95), 0.0);
    EXPECT_TRUE(hot.bandwidthCap <= 19.2);
}

TEST(PidPolicy, CoreGatingActuator)
{
    PidPolicy p = makeCh4AcgPidPolicy();
    DtmAction cold = p.decide(reading(60.0), 0.0);
    EXPECT_GE(cold.activeCores, 4);
    DtmAction hot = p.decide(reading(109.95), 1.0);
    EXPECT_LT(hot.activeCores, 4);
}

TEST(PidPolicy, DvfsActuator)
{
    PidPolicy p = makeCh4CdvfsPidPolicy();
    EXPECT_EQ(p.decide(reading(60.0), 0.0).dvfsLevel, 0u);
    DtmAction hot = p.decide(reading(109.95), 1.0);
    EXPECT_GT(hot.dvfsLevel, 0u);
}

TEST(PidPolicy, Names)
{
    EXPECT_EQ(makeCh4BwPidPolicy().name(), "DTM-BW+PID");
    EXPECT_EQ(makeCh4AcgPidPolicy().name(), "DTM-ACG+PID");
    EXPECT_EQ(makeCh4CdvfsPidPolicy().name(), "DTM-CDVFS+PID");
}

TEST(PidPolicy, ResetRestoresFullSpeed)
{
    PidPolicy p = makeCh4AcgPidPolicy();
    p.decide(reading(109.9), 0.0);
    p.reset();
    EXPECT_DOUBLE_EQ(p.lastOutput(), 1.0);
    EXPECT_GE(p.decide(reading(60.0), 0.0).activeCores, 4);
}

TEST(PidPolicy, ClosedLoopHoldsNearTargetNotTdp)
{
    // Simple closed loop against a one-node plant: the PID policy should
    // settle the temperature near 109.8 and never reach the 110 TDP
    // (the Fig. 4.6/4.8 "sticks around 109.8C" behavior).
    PidPolicy p = makeCh4BwPidPolicy();
    double temp = 50.0;
    double dt = 0.01;
    double tau = 50.0;
    double max_after_warmup = 0.0;
    for (int i = 0; i < 400000; ++i) {
        DtmAction a = p.decide(reading(temp), i * dt);
        double bw = a.memoryOn ? std::min(a.bandwidthCap, 16.0) : 0.0;
        double stable = 100.0 + bw * 0.85; // ~113.6 at full demand
        temp += (stable - temp) * (1.0 - std::exp(-dt / tau));
        if (i > 200000)
            max_after_warmup = std::max(max_after_warmup, temp);
    }
    EXPECT_NEAR(temp, 109.8, 0.4);
    EXPECT_LT(max_after_warmup, 110.0);
}

} // namespace
} // namespace memtherm
