/**
 * @file
 * Tests for the traffic-remapping DTM policy family
 * (core/dtm/remap_policy.hh): migration mechanics on synthetic
 * readings, the registry entries, and the two acceptance pins —
 * DTM-TS+remap bit-identical to DTM-TS when no emergency ever occurs,
 * and a strict hot-DIMM payoff on the hot_dimm0 traffic shape.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/dtm/remap_policy.hh"
#include "core/sim/experiment.hh"
#include "core/sim/registry.hh"

namespace memtherm
{
namespace
{

/** A reading with per-DIMM AMB temperatures (DRAMs parked cold). */
ThermalReading
perDimmReading(Celsius amb, std::vector<Celsius> amb_per_dimm)
{
    ThermalReading r;
    r.amb = amb;
    r.dram = 70.0;
    r.inlet = 50.0;
    r.dramPerDimm.assign(amb_per_dimm.size(), 70.0);
    r.ambPerDimm = std::move(amb_per_dimm);
    return r;
}

RemapConfig
unitConfig()
{
    RemapConfig rc;
    rc.interval = 1.0;
    rc.hysteresis = 2.0;
    return rc; // default ThermalLimits: AMB TDP 110, DRAM TDP 85
}

TEST(RemapPolicy, GreedyMovesStepFromHottestToColdest)
{
    RemapPolicy p(RemapPolicy::Band::Greedy, unitConfig());
    auto a = p.decide(perDimmReading(111.0, {111.0, 100.0, 95.0, 90.0}),
                      0.0);
    ASSERT_EQ(a.trafficShares.size(), 4u);
    EXPECT_DOUBLE_EQ(a.trafficShares[0], 0.20); // uniform 0.25 - step
    EXPECT_DOUBLE_EQ(a.trafficShares[1], 0.25);
    EXPECT_DOUBLE_EQ(a.trafficShares[2], 0.25);
    EXPECT_DOUBLE_EQ(a.trafficShares[3], 0.30); // coldest gains the step
    // Remapping never touches the scalar actuators.
    EXPECT_TRUE(a.memoryOn);
    EXPECT_EQ(a.activeCores, DtmAction{}.activeCores);
}

TEST(RemapPolicy, NoActionBelowTdpOrBetweenBoundaries)
{
    RemapPolicy p(RemapPolicy::Band::Greedy, unitConfig());
    // Cool at the boundary: nothing moves.
    EXPECT_TRUE(p.decide(perDimmReading(105.0, {105.0, 100.0, 95.0, 90.0}),
                         0.0)
                    .trafficShares.empty());
    // Hot, but between boundaries: nothing moves either.
    EXPECT_TRUE(p.decide(perDimmReading(111.0, {111.0, 100.0, 95.0, 90.0}),
                         0.5)
                    .trafficShares.empty());
    // Hot at the next boundary: one step.
    EXPECT_EQ(p.decide(perDimmReading(111.0, {111.0, 100.0, 95.0, 90.0}),
                       1.0)
                  .trafficShares.size(),
              4u);
    // A reading without the per-DIMM vectors can never remap.
    ThermalReading scalar;
    scalar.amb = 115.0;
    EXPECT_TRUE(p.decide(scalar, 2.0).trafficShares.empty());
}

TEST(RemapPolicy, HysteresisKeepsMigratingUntilReleaseBand)
{
    // Greedy stops the moment the sensor drops below TDP; the banded
    // variant latches at the crossing and keeps migrating until the
    // sensor is a full band below (110 - 2 = 108 here).
    RemapPolicy greedy(RemapPolicy::Band::Greedy, unitConfig());
    RemapPolicy hyst(RemapPolicy::Band::Hysteresis, unitConfig());
    auto hot = perDimmReading(111.0, {111.0, 100.0, 95.0, 90.0});
    auto warm = perDimmReading(109.0, {109.0, 100.0, 95.0, 90.0});
    auto cool = perDimmReading(107.5, {107.5, 100.0, 95.0, 90.0});

    EXPECT_FALSE(greedy.decide(hot, 0.0).trafficShares.empty());
    EXPECT_FALSE(hyst.decide(hot, 0.0).trafficShares.empty());
    EXPECT_TRUE(hyst.isLatched());

    EXPECT_TRUE(greedy.decide(warm, 1.0).trafficShares.empty());
    EXPECT_FALSE(hyst.decide(warm, 1.0).trafficShares.empty());

    EXPECT_TRUE(hyst.decide(cool, 2.0).trafficShares.empty());
    EXPECT_FALSE(hyst.isLatched());
    // Released: a warm (but sub-TDP) boundary no longer migrates.
    EXPECT_TRUE(hyst.decide(warm, 3.0).trafficShares.empty());
}

TEST(RemapPolicy, SourceMustHoldShare)
{
    // DIMM 0 is hottest purely from bypass traffic but holds no local
    // share; the hottest *contributing* DIMM gives up the step instead.
    RemapConfig rc = unitConfig();
    rc.initialShares = {0.0, 1.0, 0.0, 0.0};
    RemapPolicy p(RemapPolicy::Band::Greedy, rc);
    auto a = p.decide(perDimmReading(111.0, {111.0, 110.0, 90.0, 80.0}),
                      0.0);
    ASSERT_EQ(a.trafficShares.size(), 4u);
    EXPECT_DOUBLE_EQ(a.trafficShares[0], 0.0);
    EXPECT_DOUBLE_EQ(a.trafficShares[1], 0.95);
    EXPECT_DOUBLE_EQ(a.trafficShares[3], 0.05);
}

TEST(RemapPolicy, ResetRestoresTheInitialDistribution)
{
    RemapConfig rc = unitConfig();
    rc.initialShares = {0.5, 0.5 / 3, 0.5 / 3, 0.5 / 3};
    RemapPolicy p(RemapPolicy::Band::Hysteresis, rc);
    auto hot = perDimmReading(111.0, {111.0, 100.0, 95.0, 90.0});
    EXPECT_FALSE(p.decide(hot, 0.0).trafficShares.empty());
    EXPECT_NE(p.shares(), rc.initialShares);
    p.reset();
    EXPECT_FALSE(p.isLatched());
    auto a = p.decide(hot, 0.0);
    ASSERT_EQ(a.trafficShares.size(), 4u);
    // First post-reset migration starts from the initial shares again.
    EXPECT_DOUBLE_EQ(a.trafficShares[0], 0.45);
}

TEST(RemapPolicy, RegistryBuildsTheFamily)
{
    auto &reg = PolicyRegistry::instance();
    for (const char *name :
         {"DTM-remap", "DTM-remap-hyst", "DTM-TS+remap"}) {
        ASSERT_TRUE(reg.contains(name)) << name;
        PolicyBuildContext ctx;
        ctx.remapInterval = 0.5;
        ctx.trafficShares = {0.4, 0.2, 0.2, 0.2};
        auto p = reg.make(name, ctx);
        ASSERT_NE(p, nullptr) << name;
        EXPECT_EQ(p->name(), name);
    }
}

TEST(RemapPolicy, TsCompositionShutsDownAndMigrates)
{
    ThermalLimits lim;
    TsRemapPolicy p(TsPolicy(lim.ambTdp, lim.ambTrp, lim.dramTdp,
                             lim.dramTrp),
                    unitConfig());
    auto a = p.decide(perDimmReading(111.0, {111.0, 100.0, 95.0, 90.0}),
                      0.0);
    EXPECT_FALSE(a.memoryOn);                   // the TS half latched
    EXPECT_EQ(a.trafficShares.size(), 4u);      // the remap half moved
    EXPECT_TRUE(p.ts().isShutdown());
    EXPECT_TRUE(p.remap().isLatched());
}

// ---- acceptance pins --------------------------------------------------

/** Bit-exact SimResult comparison (scalars, traces, per-DIMM vectors). */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.runningTime, b.runningTime);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.totalInstr, b.totalInstr);
    EXPECT_EQ(a.totalReadGB, b.totalReadGB);
    EXPECT_EQ(a.totalWriteGB, b.totalWriteGB);
    EXPECT_EQ(a.totalL2Misses, b.totalL2Misses);
    EXPECT_EQ(a.memEnergy, b.memEnergy);
    EXPECT_EQ(a.cpuEnergy, b.cpuEnergy);
    EXPECT_EQ(a.maxAmb, b.maxAmb);
    EXPECT_EQ(a.maxDram, b.maxDram);
    EXPECT_EQ(a.timeAboveAmbTdp, b.timeAboveAmbTdp);
    EXPECT_EQ(a.timeAboveDramTdp, b.timeAboveDramTdp);
    EXPECT_EQ(a.peakAmbPerDimm, b.peakAmbPerDimm);
    EXPECT_EQ(a.peakDramPerDimm, b.peakDramPerDimm);
    EXPECT_EQ(a.avgPowerPerDimm, b.avgPowerPerDimm);
    EXPECT_EQ(a.ambTrace.values(), b.ambTrace.values());
    EXPECT_EQ(a.dramTrace.values(), b.dramTrace.values());
    EXPECT_EQ(a.bwTrace.values(), b.bwTrace.values());
}

SimResult
runWith(const SimConfig &cfg, const std::string &policy_name)
{
    ThermalSimulator sim(cfg);
    auto policy = PolicyRegistry::instance().make(
        policy_name,
        PolicyBuildContext{cfg.dtmInterval, cfg.emergencyLevels,
                           cfg.remapInterval, cfg.remapHysteresis,
                           cfg.trafficShares});
    return sim.run(workloadMix("W1"), *policy);
}

TEST(RemapPolicy, TsRemapBitIdenticalToTsWithoutEmergency)
{
    // Uniform interleave keeps W1 below both TDPs, so neither the TS
    // half nor the remap half ever acts — the composition must be
    // bit-identical to plain DTM-TS (remap is inert until a thermal
    // emergency exists).
    SimConfig cfg = makeCh4Config(coolingAohs15(), false);
    cfg.copiesPerApp = 2;
    SimResult ts = runWith(cfg, "DTM-TS");
    SimResult both = runWith(cfg, "DTM-TS+remap");
    EXPECT_LT(ts.maxAmb, cfg.limits.ambTdp); // precondition: no emergency
    expectIdentical(ts, both);
}

TEST(RemapPolicy, RemapLowersHotDimmPeakOnHotDimm0)
{
    // The payoff experiment in miniature (the hot_dimm_remap scenario
    // pins the full grid): with half the channel traffic on DIMM 0,
    // migration must strictly lower the hottest DIMM's peak AMB vs
    // No-limit while finishing faster than DTM-TS's shutdown cycling.
    SimConfig cfg = makeCh4Config(coolingAohs15(), false);
    cfg.copiesPerApp = 2;
    cfg.trafficShares = trafficShapeByName("hot_dimm0", 4);
    cfg.remapInterval = 0.25;
    SimResult nolimit = runWith(cfg, "No-limit");
    SimResult ts = runWith(cfg, "DTM-TS");
    SimResult remap = runWith(cfg, "DTM-remap");

    ASSERT_FALSE(remap.peakAmbPerDimm.empty());
    EXPECT_GT(nolimit.maxAmb, cfg.limits.ambTdp); // a real emergency
    EXPECT_LT(remap.maxAmb, nolimit.maxAmb);
    EXPECT_LT(remap.peakAmbPerDimm[0], nolimit.peakAmbPerDimm[0]);
    EXPECT_LT(remap.runningTime, ts.runningTime);
    // The migration cost is charged: more bytes move than under
    // No-limit's identical compute schedule.
    EXPECT_GT(remap.totalReadGB + remap.totalWriteGB,
              nolimit.totalReadGB + nolimit.totalWriteGB);
}

} // namespace
} // namespace memtherm
