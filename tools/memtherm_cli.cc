/**
 * @file
 * `memtherm` — the scenario-driven command-line front end.
 *
 *   memtherm run <scenario.json> [options]   execute a scenario file
 *   memtherm merge <stream.jsonl>...         combine result streams
 *   memtherm report <results|stream>...      summarize results
 *   memtherm validate <scenario.json>...     parse + resolve, no runs
 *   memtherm list <catalog>                  print valid names
 *   memtherm trace gen -o <file> [options]   synthesize a memory trace
 *
 * Scenarios are declarative (core/sim/scenario.hh): config overrides,
 * workload/policy names, and sweep axes, all resolved through the
 * registries — an unknown name prints the valid keys instead of
 * aborting. Results serialize through the shared JSON layer, and the
 * --golden mode re-checks a result file within a relative tolerance,
 * which is what the CLI smoke test pins `memtherm run` output with.
 * `report` closes the loop: scenario file -> run -> per-point and
 * per-axis summary tables (and CSV) with running time, max AMB/DRAM
 * temperature, and a normalized-to-baseline column in the spirit of
 * Figures 4.5-4.8, with no custom binary anywhere. The CSV also carries
 * per-DIMM peak-temperature and average-power columns (sized to the
 * widest organization present), so a memory_org or traffic_shape sweep
 * exposes the per-DIMM thermal gradient and heat-source distribution
 * directly.
 *
 * Long grids run crash-safe: `run --stream` appends one JSONL record
 * per finished run (core/sim/result_sink.hh), `--resume` continues an
 * interrupted stream, `--shard i/N` splits one grid across machines,
 * and `merge` folds the streams back into the canonical results JSON —
 * bit-identical to an uninterrupted `run -o`. A failed run becomes an
 * error record (named in the failure summary, nonzero exit) while the
 * rest of the grid streams on. Every file this tool writes (`run -o`,
 * `report --csv`, merged results) lands via write-to-temp-then-rename,
 * so a kill mid-write never leaves a truncated document behind.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/fs_util.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/sim/registry.hh"
#include "core/sim/result_sink.hh"
#include "core/sim/scenario.hh"
#include "dram/trace.hh"

using namespace memtherm;

namespace
{

int
usage(std::ostream &os, int rc)
{
    os << "usage:\n"
          "  memtherm run <scenario.json> [options]\n"
          "      -o <file>        write results as JSON\n"
          "      --stream <file>  append results to a JSONL stream as\n"
          "                       each run finishes (crash-safe)\n"
          "      --resume         continue an interrupted --stream file:\n"
          "                       completed runs are skipped, failed\n"
          "                       runs are retried\n"
          "      --shard <i/N>    execute only shard i of N (1-based,\n"
          "                       deterministic round-robin over the\n"
          "                       grid; requires --stream; combine the\n"
          "                       shard streams with `memtherm merge`)\n"
          "      --traces         include full traces in the JSON output\n"
          "      --threads <n>    engine thread count (default:\n"
          "                       MEMTHERM_THREADS or hardware)\n"
          "      --copies <n>     override the batch depth and drop any\n"
          "                       copies sweep (quick looks, smoke tests)\n"
          "      --batch <k>      execute runs that differ only by policy\n"
          "                       in lockstep batches of up to k lanes,\n"
          "                       sharing their simulated prefix (not\n"
          "                       combinable with --stream)\n"
          "      --golden <file>  compare results against a reference\n"
          "                       results JSON; nonzero exit on mismatch\n"
          "      --tol <x>        relative tolerance for --golden\n"
          "                       (default 1e-9)\n"
          "      --quiet          suppress the summary table\n"
          "  memtherm merge <stream.jsonl>... [options]\n"
          "      -o <file>        write the combined results as JSON\n"
          "                       (bit-identical to an uninterrupted\n"
          "                       unsharded `memtherm run -o`)\n"
          "      --golden <file>  compare combined results against a\n"
          "                       reference results JSON\n"
          "      --tol <x>        relative tolerance for --golden\n"
          "                       (default 1e-9)\n"
          "      --quiet          suppress the merge summary\n"
          "  memtherm report <results.json|stream.jsonl>... [options]\n"
          "      --baseline <p>   normalization baseline policy (default:\n"
          "                       No-limit when present, else the first\n"
          "                       policy of each workload)\n"
          "      --csv <file>     also write the flat per-run rows as CSV\n"
          "      --quiet          suppress the summary tables\n"
          "  memtherm validate <scenario.json>...\n"
          "  memtherm list policies|workloads|coolings|ambients|platforms"
          "|emergency_levels|dvfs|memory_orgs|traffic_shapes"
          "|refresh_models|thermal_models\n"
          "  memtherm trace gen -o <file> [options]\n"
          "      --pattern <p>    linear (default) or random address\n"
          "                       stream, a la gem5 PyTrafficGen\n"
          "      --count <n>      records to generate (default 1024)\n"
          "      --seed <n>       generator seed (default 42)\n"
          "      --min-addr <a>   range start, hex or decimal (default 0)\n"
          "      --max-addr <a>   range end, exclusive (default "
          "0x1000000)\n"
          "      --block <n>      bytes per access (default 64)\n"
          "      --read-pct <p>   percentage of reads in [0, 100]\n"
          "                       (default 100)\n";
    return rc;
}

int
cmdList(const std::vector<std::string> &args)
{
    if (args.size() != 1)
        return usage(std::cerr, 1);
    const std::string &what = args[0];
    std::vector<std::string> names;
    if (what == "policies")
        names = PolicyRegistry::instance().names();
    else if (what == "workloads")
        names = workloadNames();
    else if (what == "coolings")
        names = coolingNames();
    else if (what == "ambients")
        names = ambientNames();
    else if (what == "platforms")
        names = platformNames();
    else if (what == "emergency_levels")
        names = emergencyLevelNames();
    else if (what == "dvfs")
        names = DvfsRegistry::instance().names();
    else if (what == "memory_orgs")
        names = memoryOrgNames();
    else if (what == "traffic_shapes")
        names = trafficShapeNames();
    else if (what == "refresh_models")
        names = refreshModelNames();
    else if (what == "thermal_models")
        names = thermalModelNames();
    else {
        std::cerr << "memtherm list: unknown catalog '" << what
                  << "' (valid: policies, workloads, coolings, ambients, "
                     "platforms, emergency_levels, dvfs, memory_orgs, "
                     "traffic_shapes, refresh_models, thermal_models)\n";
        return 1;
    }
    for (const auto &n : names)
        std::cout << n << '\n';
    if (what == "workloads")
        std::cout << "<app>x<n> (homogeneous batch, e.g. swimx4)\n";
    if (what == "memory_orgs")
        std::cout << "{channels, dimms} (inline organization, e.g. "
                     "{\"channels\": 2, \"dimms\": 8})\n";
    if (what == "traffic_shapes")
        std::cout << "[s0, s1, ...] (inline per-DIMM share vector summing "
                     "to 1, e.g. [0.5, 0.3, 0.1, 0.1])\n";
    if (what == "refresh_models")
        std::cout << "[{min_temp, bw_fraction, dram_power_w[, "
                     "latency_mult]}, ...] (inline band table, "
                     "ascending min_temp)\n";
    if (what == "thermal_models")
        std::cout << "{grid_x, grid_z[, bank_weights]} (inline per-DIMM "
                     "bank grid, e.g. {\"grid_x\": 4, \"grid_z\": 2})\n";
    return 0;
}

int
cmdTrace(const std::vector<std::string> &args)
{
    if (args.empty() || args[0] != "gen")
        return usage(std::cerr, 1);
    TraceGenConfig cfg;
    std::string out_path;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto next = [&](const char *opt) -> std::string {
            if (i + 1 >= args.size())
                fatal(std::string("memtherm trace gen: ") + opt +
                      " needs an argument");
            return args[++i];
        };
        // Addresses and counts: hex (0x-prefixed) or decimal, rejecting
        // trailing garbage and overflow.
        auto nextU64 = [&](const char *opt) -> std::uint64_t {
            std::string v = next(opt);
            std::size_t used = 0;
            std::uint64_t n = 0;
            try {
                n = std::stoull(v, &used, 0);
            } catch (const std::exception &) {
                used = 0;
            }
            if (used != v.size() || v.empty() || v[0] == '-')
                fatal(std::string("memtherm trace gen: ") + opt +
                      " needs a non-negative integer, got '" + v + "'");
            return n;
        };
        if (a == "-o")
            out_path = next("-o");
        else if (a == "--pattern") {
            std::string v = next("--pattern");
            if (v == "linear")
                cfg.pattern = TraceGenConfig::Pattern::Linear;
            else if (v == "random")
                cfg.pattern = TraceGenConfig::Pattern::Random;
            else
                fatal("memtherm trace gen: --pattern must be 'linear' or "
                      "'random', got '" + v + "'");
        } else if (a == "--count")
            cfg.count = nextU64("--count");
        else if (a == "--seed")
            cfg.seed = nextU64("--seed");
        else if (a == "--min-addr")
            cfg.minAddr = nextU64("--min-addr");
        else if (a == "--max-addr")
            cfg.maxAddr = nextU64("--max-addr");
        else if (a == "--block") {
            std::uint64_t b = nextU64("--block");
            if (b == 0 || b > 0xffffffffULL)
                fatal("memtherm trace gen: --block must be in "
                      "[1, 2^32-1]");
            cfg.blockSize = static_cast<std::uint32_t>(b);
        } else if (a == "--read-pct") {
            std::string v = next("--read-pct");
            std::size_t used = 0;
            try {
                cfg.readPct = std::stod(v, &used);
            } catch (const std::exception &) {
                used = 0;
            }
            if (used != v.size())
                fatal("memtherm trace gen: --read-pct needs a number, "
                      "got '" + v + "'");
        } else
            fatal("memtherm trace gen: unknown option '" + a + "'");
    }
    if (out_path.empty())
        fatal("memtherm trace gen: -o <file> is required");
    std::vector<TraceRecord> records = generateTrace(cfg);
    saveTrace(out_path, records);
    std::cout << "wrote " << out_path << " (" << records.size()
              << " record(s))\n";
    return 0;
}

int
cmdValidate(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage(std::cerr, 1);
    for (const auto &path : args) {
        ScenarioSpec spec = ScenarioSpec::load(path);
        LoweredScenario low = spec.lower();
        // The full grid arithmetic, so --shard counts can be sized
        // without running anything.
        std::cout << path << ": ok — scenario '" << spec.name << "', "
                  << low.points.size() << " point(s) x "
                  << low.workloads.size() << " workload(s) x "
                  << low.policies.size() << " policy(ies) = "
                  << low.totalRuns() << " run(s), "
                  << low.classes.size() << " equivalence class(es)\n";
    }
    return 0;
}

/** Number rendering for diagnostics; tolerates non-finite values. */
std::string
numForDiag(double v)
{
    if (std::isnan(v))
        return "nan";
    if (std::isinf(v))
        return v > 0 ? "inf" : "-inf";
    return Json::numberToString(v);
}

/**
 * Recursive comparison with a relative tolerance on numbers; on the
 * first mismatch fills @p where / @p detail and returns false. Two NaNs
 * compare equal (a NaN golden entry means "NaN expected here", not a
 * mismatch) and infinities compare by sign.
 */
bool
jsonNear(const Json &a, const Json &b, double tol, const std::string &path,
         std::string &where, std::string &detail)
{
    auto miss = [&](const std::string &d) {
        where = path.empty() ? "(root)" : path;
        detail = d;
        return false;
    };
    if (a.type() != b.type())
        return miss("type mismatch");
    switch (a.type()) {
      case Json::Type::Null:
        return true;
      case Json::Type::Bool:
        return a.asBool() == b.asBool() ? true : miss("bool mismatch");
      case Json::Type::Number: {
          double x = a.asNumber(), y = b.asNumber();
          if (std::isnan(x) && std::isnan(y))
              return true;
          if (!std::isfinite(x) || !std::isfinite(y)) {
              // Equal infinities match; anything else (inf vs finite,
              // inf vs -inf, NaN vs number) is a mismatch. The relative
              // bound below would turn every such pair into NaN > NaN
              // comparisons and misreport them.
              if (x == y)
                  return true;
              return miss(numForDiag(x) + " vs " + numForDiag(y));
          }
          double bound = tol * std::max(std::abs(x), std::abs(y)) + 1e-12;
          if (std::abs(x - y) <= bound)
              return true;
          return miss(numForDiag(x) + " vs " + numForDiag(y));
      }
      case Json::Type::String:
        return a.asString() == b.asString()
                   ? true
                   : miss("'" + a.asString() + "' vs '" + b.asString() +
                          "'");
      case Json::Type::Array: {
          const auto &av = a.asArray(), &bv = b.asArray();
          if (av.size() != bv.size())
              return miss("array length mismatch");
          for (std::size_t i = 0; i < av.size(); ++i) {
              if (!jsonNear(av[i], bv[i], tol,
                            path + "[" + std::to_string(i) + "]", where,
                            detail))
                  return false;
          }
          return true;
      }
      case Json::Type::Object: {
          const auto &ao = a.asObject(), &bo = b.asObject();
          if (ao.size() != bo.size())
              return miss("object size mismatch");
          for (const auto &[k, v] : ao) {
              const Json *bv = b.find(k);
              if (!bv)
                  return miss("missing member '" + k + "'");
              if (!jsonNear(v, *bv, tol, path + "." + k, where, detail))
                  return false;
          }
          return true;
      }
    }
    return miss("unreachable");
}

/**
 * "dimm<k>" for the argmax of a per-DIMM peak-AMB vector (first index
 * wins a tie), "-" when the results carry no per-DIMM data. Makes a
 * remap policy's payoff visible straight from the summary tables,
 * without opening the CSV.
 */
std::string
hottestDimmLabel(const std::vector<double> &peak_amb)
{
    if (peak_amb.empty())
        return "-";
    std::size_t hot = 0;
    for (std::size_t i = 1; i < peak_amb.size(); ++i)
        if (peak_amb[i] > peak_amb[hot])
            hot = i;
    return "dimm" + std::to_string(hot);
}

void
printSummary(const ScenarioResults &results)
{
    Table t("scenario '" + results.scenario + "'",
            {"point", "workload", "policy", "time s", "max AMB C",
             "max DRAM C", "hottest_dimm", "done"});
    for (const auto &pt : results.points) {
        for (const auto &[w, per_policy] : pt.suite) {
            for (const auto &[p, r] : per_policy) {
                t.addRow({pt.label, w, p, Table::num(r.runningTime, 2),
                          Table::num(r.maxAmb, 2),
                          Table::num(r.maxDram, 2),
                          hottestDimmLabel(r.peakAmbPerDimm),
                          r.completed ? "yes" : "NO"});
            }
        }
    }
    t.print(std::cout);
}

/**
 * The failure summary: every failed run, named by grid coordinate.
 * Printed to stderr after all regular output, so the (intact) results
 * of the rest of the grid are never hidden behind the failures.
 */
void
printFailures(const std::string &cmd, const std::vector<RunError> &errors)
{
    std::cerr << cmd << ": " << errors.size() << " run(s) failed:\n";
    for (const auto &e : errors) {
        std::cerr << "  run #" << e.index << " [point '" << e.point
                  << "', workload '" << e.workload << "', policy '"
                  << e.policy << "']: " << e.error << '\n';
    }
}

/**
 * Does @p path hold a JSONL result stream rather than a results JSON?
 * The stream header is always the compact first line, so sniffing it
 * beats trusting file extensions.
 */
bool
looksLikeStream(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::string line;
    if (!in || !std::getline(in, line))
        return false;
    return line.find("\"type\": \"header\"") != std::string::npos ||
           line.find("\"type\":\"header\"") != std::string::npos;
}

/** One run row extracted from a results JSON. */
struct ReportRow
{
    std::string workload;
    std::string policy;
    bool completed = false;
    double time = 0.0;
    double maxAmb = 0.0;
    double maxDram = 0.0;
    double norm = NAN; ///< time / baseline time; NaN when no baseline
    /// Per-DIMM peaks and average power (index 0 nearest the
    /// controller); empty when the results file predates per-DIMM
    /// reporting.
    std::vector<double> peakAmb;
    std::vector<double> peakDram;
    std::vector<double> avgPower;
    /// Per-DIMM refresh feedback (schema v2); empty for runs without a
    /// refresh model and for legacy results files.
    std::vector<double> refreshBw;
    std::vector<double> refreshEnergy;
    /// Per-DIMM maximum over the bank-grid cells (schema v3); empty for
    /// lumped-model runs and for older results files.
    std::vector<double> peakBankMax;
};

/** One sweep point of a results file. */
struct ReportPoint
{
    std::string label;
    std::vector<ReportRow> rows;
};

/** Split a sweep-point label ("cooling=X,inlet=46") into coordinates. */
std::vector<std::pair<std::string, std::string>>
labelCoords(const std::string &label)
{
    std::vector<std::pair<std::string, std::string>> out;
    if (label == "base")
        return out;
    std::size_t start = 0;
    for (;;) {
        std::size_t comma = label.find(',', start);
        std::string part =
            label.substr(start, comma == std::string::npos
                                    ? std::string::npos
                                    : comma - start);
        std::size_t eq = part.find('=');
        if (eq == std::string::npos)
            out.emplace_back(part, "");
        else
            out.emplace_back(part.substr(0, eq), part.substr(eq + 1));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

/** RFC-4180 quoting: labels contain commas. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

int
cmdReport(const std::vector<std::string> &args)
{
    std::vector<std::string> inputs;
    std::string csv_path, baseline;
    bool quiet = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto next = [&](const char *opt) -> std::string {
            if (i + 1 >= args.size())
                fatal(std::string("memtherm report: ") + opt +
                      " needs an argument");
            return args[++i];
        };
        if (a == "--csv")
            csv_path = next("--csv");
        else if (a == "--baseline")
            baseline = next("--baseline");
        else if (a == "--quiet")
            quiet = true;
        else if (!a.empty() && a[0] == '-')
            fatal("memtherm report: unknown option '" + a + "'");
        else
            inputs.push_back(a);
    }
    if (inputs.empty())
        return usage(std::cerr, 1);
    const std::string &results_path = inputs.front();

    // JSONL streams (from `run --stream`) canonicalize through the
    // merge path, so a report over shards or a resumed stream shows
    // exactly what the merged results JSON would. Plain results files
    // come one at a time; streams may come in any number.
    Json doc;
    bool anyStream = false;
    for (const auto &p : inputs)
        anyStream |= looksLikeStream(p);
    if (anyStream) {
        for (const auto &p : inputs) {
            if (!looksLikeStream(p)) {
                fatal("memtherm report: cannot mix results JSON ('" + p +
                      "') with JSONL streams in one report");
            }
        }
        doc = mergeStreams(inputs).results;
    } else {
        if (inputs.size() > 1) {
            fatal("memtherm report: more than one results file given "
                  "(multiple inputs are only supported for JSONL "
                  "streams)");
        }
        doc = Json::load(results_path);
    }
    if (!doc.isObject() || !doc.find("points")) {
        fatal("memtherm report: '" + results_path +
              "' does not look like memtherm results (expected an object "
              "with a 'points' array; produce one with `memtherm run -o`)");
    }
    // Version-absent files are legacy (v1) and read unchanged; a
    // document from a newer binary is refused rather than misread.
    (void)resultSchemaVersionOf(doc, "memtherm report: '" + results_path +
                                         "'");
    const std::string scenario =
        doc.find("scenario") ? doc.at("scenario").asString() : "(unnamed)";
    if (!doc.at("points").isArray())
        fatal("memtherm report: 'points' must be an array");

    std::vector<ReportPoint> points;
    for (const Json &pj : doc.at("points").asArray()) {
        ReportPoint pd;
        pd.label = pj.at("label").asString();
        const Json &res = pj.at("results");
        if (!res.isObject())
            fatal("memtherm report: point 'results' must be an object");
        for (const auto &[w, per_policy] : res.asObject()) {
            if (!per_policy.isObject() || per_policy.asObject().empty()) {
                fatal("memtherm report: results of workload '" + w +
                      "' must be a non-empty object");
            }
            // Baseline of this workload group: --baseline, else No-limit
            // when present, else the group's first policy.
            std::string base = baseline;
            if (base.empty()) {
                base = per_policy.find("No-limit")
                           ? "No-limit"
                           : per_policy.asObject().front().first;
            }
            // An incomplete baseline run's time is the simulation cap,
            // not a running time — normalizing against it would report
            // garbage, so the column stays empty then.
            double base_time = NAN;
            if (const Json *b = per_policy.find(base)) {
                if (b->at("completed").asBool())
                    base_time = b->at("running_time_s").asNumber();
            }
            for (const auto &[p, rj] : per_policy.asObject()) {
                ReportRow row;
                row.workload = w;
                row.policy = p;
                row.completed = rj.at("completed").asBool();
                row.time = rj.at("running_time_s").asNumber();
                row.maxAmb = rj.at("max_amb_c").asNumber();
                row.maxDram = rj.at("max_dram_c").asNumber();
                auto peakList = [&](const char *key,
                                    std::vector<double> &out) {
                    const Json *a = rj.find(key);
                    if (!a || !a->isArray())
                        return;
                    for (const Json &v : a->asArray())
                        out.push_back(v.asNumber());
                };
                peakList("peak_amb_per_dimm_c", row.peakAmb);
                peakList("peak_dram_per_dimm_c", row.peakDram);
                peakList("avg_power_per_dimm_w", row.avgPower);
                peakList("refresh_bw_loss_per_dimm_gb", row.refreshBw);
                peakList("refresh_energy_per_dimm_j", row.refreshEnergy);
                // Schema v3 per-bank peaks: one inner array of cells per
                // DIMM; the CSV carries each DIMM's hottest cell.
                if (const Json *pb = rj.find("peak_bank_dram_c")) {
                    if (pb->isArray()) {
                        for (const Json &dimm : pb->asArray()) {
                            if (!dimm.isArray() ||
                                dimm.asArray().empty())
                                continue;
                            double mx = dimm.asArray()[0].asNumber();
                            for (const Json &c : dimm.asArray())
                                mx = std::max(mx, c.asNumber());
                            row.peakBankMax.push_back(mx);
                        }
                    }
                }
                if (std::isfinite(base_time) && base_time > 0.0)
                    row.norm = row.time / base_time;
                pd.rows.push_back(std::move(row));
            }
        }
        points.push_back(std::move(pd));
    }

    // Failed runs travel with the results ('errors', emitted by run and
    // merge); a summary that silently ignored them would read as a
    // clean grid.
    if (const Json *errs = doc.find("errors")) {
        if (errs->isArray() && !errs->asArray().empty()) {
            std::cerr << "memtherm report: note: "
                      << errs->asArray().size()
                      << " failed run(s) recorded in these results (their "
                         "cells are absent from the tables)\n";
        }
    }

    // A --baseline typo would otherwise just blank every normalization
    // column; report it like any other bad name lookup.
    if (!baseline.empty()) {
        std::vector<std::string> seen;
        bool found = false;
        for (const auto &pd : points) {
            for (const auto &r : pd.rows) {
                found |= (r.policy == baseline);
                if (std::find(seen.begin(), seen.end(), r.policy) ==
                    seen.end())
                    seen.push_back(r.policy);
            }
        }
        if (!found) {
            fatal("memtherm report: baseline policy '" + baseline +
                  "' does not appear in the results (valid: " +
                  joinNames(seen) + ")");
        }
    }

    const std::string base_desc = baseline.empty() ? "No-limit" : baseline;

    if (!quiet) {
        // Per-point detail: the Figures 4.5-4.8 view (running time
        // normalized to the baseline, plus the thermal peaks).
        for (const auto &pd : points) {
            Table t("scenario '" + scenario + "' — point " + pd.label,
                    {"workload", "policy", "time s", "max AMB C",
                     "max DRAM C", "x " + base_desc, "hottest_dimm",
                     "done"});
            for (const auto &r : pd.rows) {
                t.addRow({r.workload, r.policy, Table::num(r.time, 2),
                          Table::num(r.maxAmb, 2), Table::num(r.maxDram, 2),
                          std::isfinite(r.norm) ? Table::num(r.norm, 3)
                                                : "-",
                          hottestDimmLabel(r.peakAmb),
                          r.completed ? "yes" : "NO"});
            }
            t.print(std::cout);
        }

        // Per-axis sweep summary: one row per point, the label split
        // into one column per sweep axis. Aggregation goes through the
        // bounded-memory online accumulator (one state per point, fed
        // one run at a time) — the same machinery that can summarize a
        // grid far too large to hold as a result vector.
        std::string agg_base = baseline;
        if (agg_base.empty()) {
            bool hasNoLimit = false;
            for (const auto &pd : points)
                for (const auto &r : pd.rows)
                    hasNoLimit |= (r.policy == "No-limit");
            if (hasNoLimit)
                agg_base = "No-limit";
            else if (!points.empty() && !points.front().rows.empty())
                agg_base = points.front().rows.front().policy;
        }
        OnlineAxisAggregator agg(agg_base);
        for (const auto &pd : points)
            for (const auto &r : pd.rows)
                agg.add(pd.label, r.workload, r.policy, r.completed,
                        r.time, r.maxAmb, r.maxDram);
        std::map<std::string, OnlineAxisAggregator::PointSummary> byLabel;
        for (const auto &ps : agg.summaries())
            byLabel.emplace(ps.label, ps);

        std::vector<std::string> keys;
        for (const auto &pd : points)
            for (const auto &[k, v] : labelCoords(pd.label))
                if (std::find(keys.begin(), keys.end(), k) == keys.end())
                    keys.push_back(k);
        std::vector<std::string> headers =
            keys.empty() ? std::vector<std::string>{"point"} : keys;
        headers.insert(headers.end(),
                       {"runs", "incomplete", "max AMB C", "max DRAM C",
                        "mean x " + base_desc});
        Table s("scenario '" + scenario + "' — sweep summary", headers);
        for (const auto &pd : points) {
            std::vector<std::string> row;
            if (keys.empty()) {
                row.push_back(pd.label);
            } else {
                const auto coords = labelCoords(pd.label);
                for (const auto &k : keys) {
                    std::string v = "-";
                    for (const auto &[ck, cv] : coords)
                        if (ck == k)
                            v = cv;
                    row.push_back(v);
                }
            }
            const auto it = byLabel.find(pd.label);
            if (it == byLabel.end()) {
                // A point with no rows never reached the aggregator.
                row.insert(row.end(), {"0", "0", "-", "-", "-"});
            } else {
                const auto &ps = it->second;
                row.push_back(std::to_string(ps.runs));
                row.push_back(std::to_string(ps.incomplete));
                row.push_back(Table::num(ps.maxAmb, 2));
                row.push_back(Table::num(ps.maxDram, 2));
                row.push_back(ps.normN
                                  ? Table::num(ps.normSum / ps.normN, 3)
                                  : "-");
            }
            s.addRow(std::move(row));
        }
        s.print(std::cout);
    }

    if (!csv_path.empty()) {
        // Rendered in memory and written via atomicWriteFile, so a kill
        // mid-report never leaves a truncated CSV behind.
        std::ostringstream f;
        // Per-DIMM columns cover the widest organization in the
        // results (an org sweep mixes DIMM counts); runs with fewer
        // DIMMs leave their trailing cells empty.
        std::size_t max_dimms = 0;
        // Refresh columns appear only when some run actually carried a
        // refresh model, so refresh-free reports stay byte-identical to
        // what older binaries wrote; the per-bank columns (schema v3)
        // likewise appear only when a bank-grid run is present.
        std::size_t max_refresh_dimms = 0;
        std::size_t max_bank_dimms = 0;
        for (const auto &pd : points) {
            for (const auto &r : pd.rows) {
                max_dimms = std::max(
                    max_dimms, std::max(r.avgPower.size(),
                                        std::max(r.peakAmb.size(),
                                                 r.peakDram.size())));
                max_refresh_dimms = std::max(
                    max_refresh_dimms, std::max(r.refreshBw.size(),
                                                r.refreshEnergy.size()));
                max_bank_dimms =
                    std::max(max_bank_dimms, r.peakBankMax.size());
            }
        }
        f << "scenario,point,workload,policy,completed,running_time_s,"
             "max_amb_c,max_dram_c,time_vs_base";
        for (std::size_t d = 0; d < max_dimms; ++d)
            f << ",peak_amb_dimm" << d << "_c";
        for (std::size_t d = 0; d < max_dimms; ++d)
            f << ",peak_dram_dimm" << d << "_c";
        for (std::size_t d = 0; d < max_dimms; ++d)
            f << ",avg_power_dimm" << d << "_w";
        for (std::size_t d = 0; d < max_refresh_dimms; ++d)
            f << ",refresh_bw_loss_dimm" << d << "_gb";
        for (std::size_t d = 0; d < max_refresh_dimms; ++d)
            f << ",refresh_energy_dimm" << d << "_j";
        for (std::size_t d = 0; d < max_bank_dimms; ++d)
            f << ",peak_bank_dimm" << d << "_c";
        f << '\n';
        auto cells = [&](const std::vector<double> &vals,
                         std::size_t width) {
            for (std::size_t d = 0; d < width; ++d) {
                f << ',';
                if (d < vals.size())
                    f << numForDiag(vals[d]);
            }
        };
        auto peakCells = [&](const std::vector<double> &peaks) {
            cells(peaks, max_dimms);
        };
        for (const auto &pd : points) {
            for (const auto &r : pd.rows) {
                f << csvField(scenario) << ',' << csvField(pd.label) << ','
                  << csvField(r.workload) << ',' << csvField(r.policy)
                  << ',' << (r.completed ? "true" : "false") << ','
                  << numForDiag(r.time) << ',' << numForDiag(r.maxAmb)
                  << ',' << numForDiag(r.maxDram) << ','
                  << (std::isfinite(r.norm) ? numForDiag(r.norm) : "");
                peakCells(r.peakAmb);
                peakCells(r.peakDram);
                peakCells(r.avgPower);
                cells(r.refreshBw, max_refresh_dimms);
                cells(r.refreshEnergy, max_refresh_dimms);
                cells(r.peakBankMax, max_bank_dimms);
                f << '\n';
            }
        }
        atomicWriteFile(csv_path, f.str());
        if (!quiet)
            std::cout << "wrote " << csv_path << '\n';
    }
    return 0;
}

int
cmdMerge(const std::vector<std::string> &args)
{
    std::vector<std::string> paths;
    std::string out_path, golden_path;
    double tol = 1e-9;
    bool quiet = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto next = [&](const char *opt) -> std::string {
            if (i + 1 >= args.size())
                fatal(std::string("memtherm merge: ") + opt +
                      " needs an argument");
            return args[++i];
        };
        if (a == "-o")
            out_path = next("-o");
        else if (a == "--golden")
            golden_path = next("--golden");
        else if (a == "--tol") {
            std::string v = next("--tol");
            std::size_t used = 0;
            try {
                tol = std::stod(v, &used);
            } catch (const std::exception &) {
                used = 0;
            }
            if (used != v.size())
                fatal("memtherm merge: --tol needs a number, got '" + v +
                      "'");
        } else if (a == "--quiet")
            quiet = true;
        else if (!a.empty() && a[0] == '-')
            fatal("memtherm merge: unknown option '" + a + "'");
        else
            paths.push_back(a);
    }
    if (paths.empty())
        return usage(std::cerr, 1);

    MergedStream merged = mergeStreams(paths);

    // An incomplete merge would masquerade as a (smaller) clean result;
    // name what is missing instead of emitting it.
    if (!merged.missingRuns.empty()) {
        std::string ix;
        const std::size_t show =
            std::min<std::size_t>(merged.missingRuns.size(), 10);
        for (std::size_t i = 0; i < show; ++i) {
            if (!ix.empty())
                ix += ", ";
            ix += std::to_string(merged.missingRuns[i]);
        }
        if (merged.missingRuns.size() > show)
            ix += ", ...";
        fatal("memtherm merge: " +
              std::to_string(merged.missingRuns.size()) + " of " +
              std::to_string(merged.totalRuns) +
              " run(s) have no record in the given stream(s) (indices " +
              ix + "); run the missing shards or resume the interrupted "
              "stream");
    }

    if (!quiet) {
        std::cout << "merged " << paths.size() << " stream(s): scenario '"
                  << merged.spec.name << "', " << merged.totalRuns
                  << " run(s), " << merged.errors.size()
                  << " failure record(s)\n";
    }
    if (!out_path.empty()) {
        merged.results.save(out_path);
        if (!quiet)
            std::cout << "wrote " << out_path << '\n';
    }

    int rc = 0;
    if (!golden_path.empty()) {
        Json golden = Json::load(golden_path);
        (void)resultSchemaVersionOf(golden, "memtherm merge: '" +
                                                golden_path + "'");
        std::string where, detail;
        if (!jsonNear(merged.results, golden, tol, "", where, detail)) {
            std::cerr << "memtherm merge: results diverge from '"
                      << golden_path << "' at " << where << ": " << detail
                      << " (tol " << tol << ")\n";
            rc = 1;
        } else if (!quiet) {
            std::cout << "results match " << golden_path << " (tol " << tol
                      << ")\n";
        }
    }
    if (!merged.errors.empty()) {
        std::vector<RunError> errors;
        for (const auto &rec : merged.errors) {
            RunError e;
            e.index = rec.index;
            e.point = rec.point;
            e.workload = rec.workload;
            e.policy = rec.policy;
            e.error = rec.error;
            errors.push_back(std::move(e));
        }
        printFailures("memtherm merge", errors);
        rc = 1;
    }
    return rc;
}

int
cmdRun(const std::vector<std::string> &args)
{
    std::string scenario_path, out_path, golden_path;
    std::string stream_path, shard_text;
    double tol = 1e-9;
    int threads = 0;
    int batch_width = 0;
    std::optional<int> copies;
    bool traces = false, quiet = false, resume = false;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto next = [&](const char *opt) -> std::string {
            if (i + 1 >= args.size())
                fatal(std::string("memtherm run: ") + opt +
                      " needs an argument");
            return args[++i];
        };
        // Positive-integer options: reject trailing garbage, overflow,
        // and the silently-accepted 0/negative counts alike.
        auto nextPosInt = [&](const char *opt) {
            std::string v = next(opt);
            std::size_t used = 0;
            int n = 0;
            try {
                n = std::stoi(v, &used);
            } catch (const std::exception &) {
                used = 0;
            }
            if (used != v.size() || v.empty() || n < 1)
                fatal(std::string("memtherm run: ") + opt +
                      " needs a positive integer, got '" + v + "'");
            return n;
        };
        auto nextDouble = [&](const char *opt) {
            std::string v = next(opt);
            std::size_t used = 0;
            double x = 0.0;
            try {
                x = std::stod(v, &used);
            } catch (const std::exception &) {
                used = 0;
            }
            if (used != v.size())
                fatal(std::string("memtherm run: ") + opt +
                      " needs a number, got '" + v + "'");
            return x;
        };
        if (a == "-o")
            out_path = next("-o");
        else if (a == "--stream")
            stream_path = next("--stream");
        else if (a == "--resume")
            resume = true;
        else if (a == "--shard")
            shard_text = next("--shard");
        else if (a == "--golden")
            golden_path = next("--golden");
        else if (a == "--tol")
            tol = nextDouble("--tol");
        else if (a == "--threads")
            threads = nextPosInt("--threads");
        else if (a == "--copies")
            copies = nextPosInt("--copies");
        else if (a == "--batch")
            batch_width = nextPosInt("--batch");
        else if (a == "--traces")
            traces = true;
        else if (a == "--quiet")
            quiet = true;
        else if (!a.empty() && a[0] == '-')
            fatal("memtherm run: unknown option '" + a + "'");
        else if (scenario_path.empty())
            scenario_path = a;
        else
            fatal("memtherm run: more than one scenario file given");
    }
    if (scenario_path.empty())
        return usage(std::cerr, 1);
    if (stream_path.empty() && (resume || !shard_text.empty())) {
        fatal("memtherm run: --resume and --shard only make sense with "
              "--stream");
    }
    if (batch_width > 0 && !stream_path.empty()) {
        // A stream's resume/shard bookkeeping is per run; a batch chunk
        // finishes runs together and would couple their stream records.
        fatal("memtherm run: --batch is not combinable with --stream");
    }
    ShardSpec shard;
    if (!shard_text.empty())
        shard = ShardSpec::parse(shard_text);
    if (shard.sharded() && (!out_path.empty() || !golden_path.empty())) {
        fatal("memtherm run: -o/--golden describe the full grid but a "
              "shard executes only part of it; combine the shard streams "
              "with `memtherm merge` instead");
    }

    ScenarioSpec spec = ScenarioSpec::load(scenario_path);
    if (copies) {
        spec.copiesPerApp = *copies;
        spec.sweepCopies.clear();
    }

    ExperimentEngine engine(threads);

    if (!stream_path.empty()) {
        StreamRunOptions sopts;
        sopts.path = stream_path;
        sopts.resume = resume;
        sopts.shard = shard;
        sopts.traces = traces;
        StreamRunStats stats = runScenarioStream(spec, engine, sopts);

        if (!quiet) {
            std::cout << "stream " << stream_path << ": "
                      << stats.totalRuns << " run(s) in grid";
            if (shard.sharded()) {
                std::cout << ", " << stats.shardRuns << " in shard "
                          << shard.label();
            }
            std::cout << ", " << stats.skipped << " already complete, "
                      << stats.executed << " executed, " << stats.failed
                      << " failed\n";
        }
        // -o/--golden view the stream through the canonical merge, so
        // their bytes cannot differ from `memtherm merge` output.
        if (!out_path.empty() || !golden_path.empty()) {
            MergedStream merged = mergeStreams({stream_path});
            if (!out_path.empty()) {
                merged.results.save(out_path);
                if (!quiet)
                    std::cout << "wrote " << out_path << '\n';
            }
            if (!golden_path.empty()) {
                Json golden = Json::load(golden_path);
                (void)resultSchemaVersionOf(golden, "memtherm run: '" +
                                                        golden_path + "'");
                std::string where, detail;
                if (!jsonNear(merged.results, golden, tol, "", where,
                              detail)) {
                    std::cerr << "memtherm run: results diverge from '"
                              << golden_path << "' at " << where << ": "
                              << detail << " (tol " << tol << ")\n";
                    if (stats.failed)
                        printFailures("memtherm run", stats.failures);
                    return 1;
                }
                if (!quiet) {
                    std::cout << "results match " << golden_path
                              << " (tol " << tol << ")\n";
                }
            }
        }
        if (stats.failed) {
            printFailures("memtherm run", stats.failures);
            return 1;
        }
        return 0;
    }

    BatchStats batch_stats;
    ScenarioResults results =
        batch_width > 0
            ? runScenarioBatched(spec, engine, batch_width, &batch_stats)
            : runScenario(spec, engine);

    if (!quiet && batch_width > 0) {
        std::cout << "batch width " << batch_width << ": "
                  << Json::numberToString(batch_stats.simulatedWindows)
                  << " of "
                  << Json::numberToString(batch_stats.logicalWindows)
                  << " window(s) simulated, prefix hit rate "
                  << Json::numberToString(batch_stats.hitRate()) << ", "
                  << batch_stats.forks << " fork(s)\n";
    }
    if (!quiet)
        printSummary(results);

    int rc = 0;
    Json out = toJson(results, traces);
    if (!out_path.empty()) {
        out.save(out_path);
        if (!quiet)
            std::cout << "wrote " << out_path << '\n';
    }

    if (!golden_path.empty()) {
        Json golden = Json::load(golden_path);
        (void)resultSchemaVersionOf(golden, "memtherm run: '" +
                                                golden_path + "'");
        std::string where, detail;
        if (!jsonNear(out, golden, tol, "", where, detail)) {
            std::cerr << "memtherm run: results diverge from '"
                      << golden_path << "' at " << where << ": " << detail
                      << " (tol " << tol << ")\n";
            rc = 1;
        } else if (!quiet) {
            std::cout << "results match " << golden_path << " (tol " << tol
                      << ")\n";
        }
    }
    // Failures never hide completed work (everything above still ran and
    // wrote), but they must not exit 0 either.
    if (!results.errors.empty()) {
        printFailures("memtherm run", results.errors);
        rc = 1;
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty() || args[0] == "--help" || args[0] == "-h")
        return usage(args.empty() ? std::cerr : std::cout,
                     args.empty() ? 1 : 0);

    const std::string cmd = args[0];
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    try {
        if (cmd == "run")
            return cmdRun(rest);
        if (cmd == "merge")
            return cmdMerge(rest);
        if (cmd == "report")
            return cmdReport(rest);
        if (cmd == "validate")
            return cmdValidate(rest);
        if (cmd == "list")
            return cmdList(rest);
        if (cmd == "trace")
            return cmdTrace(rest);
    } catch (const FatalError &e) {
        std::cerr << "memtherm: " << e.what() << '\n';
        return 1;
    } catch (const PanicError &e) {
        std::cerr << "memtherm: " << e.what() << '\n';
        return 1;
    }
    std::cerr << "memtherm: unknown command '" << cmd << "'\n";
    return usage(std::cerr, 1);
}
