/**
 * @file
 * `memtherm` — the scenario-driven command-line front end.
 *
 *   memtherm run <scenario.json> [options]   execute a scenario file
 *   memtherm report <results.json> [options] summarize a results file
 *   memtherm validate <scenario.json>...     parse + resolve, no runs
 *   memtherm list <catalog>                  print valid names
 *
 * Scenarios are declarative (core/sim/scenario.hh): config overrides,
 * workload/policy names, and sweep axes, all resolved through the
 * registries — an unknown name prints the valid keys instead of
 * aborting. Results serialize through the shared JSON layer, and the
 * --golden mode re-checks a result file within a relative tolerance,
 * which is what the CLI smoke test pins `memtherm run` output with.
 * `report` closes the loop: scenario file -> run -> per-point and
 * per-axis summary tables (and CSV) with running time, max AMB/DRAM
 * temperature, and a normalized-to-baseline column in the spirit of
 * Figures 4.5-4.8, with no custom binary anywhere. The CSV also carries
 * per-DIMM peak-temperature and average-power columns (sized to the
 * widest organization present), so a memory_org or traffic_shape sweep
 * exposes the per-DIMM thermal gradient and heat-source distribution
 * directly.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/sim/registry.hh"
#include "core/sim/scenario.hh"

using namespace memtherm;

namespace
{

int
usage(std::ostream &os, int rc)
{
    os << "usage:\n"
          "  memtherm run <scenario.json> [options]\n"
          "      -o <file>        write results as JSON\n"
          "      --traces         include full traces in the JSON output\n"
          "      --threads <n>    engine thread count (default:\n"
          "                       MEMTHERM_THREADS or hardware)\n"
          "      --copies <n>     override the batch depth and drop any\n"
          "                       copies sweep (quick looks, smoke tests)\n"
          "      --golden <file>  compare results against a reference\n"
          "                       results JSON; nonzero exit on mismatch\n"
          "      --tol <x>        relative tolerance for --golden\n"
          "                       (default 1e-9)\n"
          "      --quiet          suppress the summary table\n"
          "  memtherm report <results.json> [options]\n"
          "      --baseline <p>   normalization baseline policy (default:\n"
          "                       No-limit when present, else the first\n"
          "                       policy of each workload)\n"
          "      --csv <file>     also write the flat per-run rows as CSV\n"
          "      --quiet          suppress the summary tables\n"
          "  memtherm validate <scenario.json>...\n"
          "  memtherm list policies|workloads|coolings|ambients|platforms"
          "|emergency_levels|dvfs|memory_orgs|traffic_shapes\n";
    return rc;
}

int
cmdList(const std::vector<std::string> &args)
{
    if (args.size() != 1)
        return usage(std::cerr, 1);
    const std::string &what = args[0];
    std::vector<std::string> names;
    if (what == "policies")
        names = PolicyRegistry::instance().names();
    else if (what == "workloads")
        names = workloadNames();
    else if (what == "coolings")
        names = coolingNames();
    else if (what == "ambients")
        names = ambientNames();
    else if (what == "platforms")
        names = platformNames();
    else if (what == "emergency_levels")
        names = emergencyLevelNames();
    else if (what == "dvfs")
        names = DvfsRegistry::instance().names();
    else if (what == "memory_orgs")
        names = memoryOrgNames();
    else if (what == "traffic_shapes")
        names = trafficShapeNames();
    else {
        std::cerr << "memtherm list: unknown catalog '" << what
                  << "' (valid: policies, workloads, coolings, ambients, "
                     "platforms, emergency_levels, dvfs, memory_orgs, "
                     "traffic_shapes)\n";
        return 1;
    }
    for (const auto &n : names)
        std::cout << n << '\n';
    if (what == "workloads")
        std::cout << "<app>x<n> (homogeneous batch, e.g. swimx4)\n";
    if (what == "memory_orgs")
        std::cout << "{channels, dimms} (inline organization, e.g. "
                     "{\"channels\": 2, \"dimms\": 8})\n";
    if (what == "traffic_shapes")
        std::cout << "[s0, s1, ...] (inline per-DIMM share vector summing "
                     "to 1, e.g. [0.5, 0.3, 0.1, 0.1])\n";
    return 0;
}

int
cmdValidate(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage(std::cerr, 1);
    for (const auto &path : args) {
        ScenarioSpec spec = ScenarioSpec::load(path);
        LoweredScenario low = spec.lower();
        std::cout << path << ": ok — scenario '" << spec.name << "', "
                  << low.points.size() << " point(s), " << low.totalRuns()
                  << " run(s)\n";
    }
    return 0;
}

/** Number rendering for diagnostics; tolerates non-finite values. */
std::string
numForDiag(double v)
{
    if (std::isnan(v))
        return "nan";
    if (std::isinf(v))
        return v > 0 ? "inf" : "-inf";
    return Json::numberToString(v);
}

/**
 * Recursive comparison with a relative tolerance on numbers; on the
 * first mismatch fills @p where / @p detail and returns false. Two NaNs
 * compare equal (a NaN golden entry means "NaN expected here", not a
 * mismatch) and infinities compare by sign.
 */
bool
jsonNear(const Json &a, const Json &b, double tol, const std::string &path,
         std::string &where, std::string &detail)
{
    auto miss = [&](const std::string &d) {
        where = path.empty() ? "(root)" : path;
        detail = d;
        return false;
    };
    if (a.type() != b.type())
        return miss("type mismatch");
    switch (a.type()) {
      case Json::Type::Null:
        return true;
      case Json::Type::Bool:
        return a.asBool() == b.asBool() ? true : miss("bool mismatch");
      case Json::Type::Number: {
          double x = a.asNumber(), y = b.asNumber();
          if (std::isnan(x) && std::isnan(y))
              return true;
          if (!std::isfinite(x) || !std::isfinite(y)) {
              // Equal infinities match; anything else (inf vs finite,
              // inf vs -inf, NaN vs number) is a mismatch. The relative
              // bound below would turn every such pair into NaN > NaN
              // comparisons and misreport them.
              if (x == y)
                  return true;
              return miss(numForDiag(x) + " vs " + numForDiag(y));
          }
          double bound = tol * std::max(std::abs(x), std::abs(y)) + 1e-12;
          if (std::abs(x - y) <= bound)
              return true;
          return miss(numForDiag(x) + " vs " + numForDiag(y));
      }
      case Json::Type::String:
        return a.asString() == b.asString()
                   ? true
                   : miss("'" + a.asString() + "' vs '" + b.asString() +
                          "'");
      case Json::Type::Array: {
          const auto &av = a.asArray(), &bv = b.asArray();
          if (av.size() != bv.size())
              return miss("array length mismatch");
          for (std::size_t i = 0; i < av.size(); ++i) {
              if (!jsonNear(av[i], bv[i], tol,
                            path + "[" + std::to_string(i) + "]", where,
                            detail))
                  return false;
          }
          return true;
      }
      case Json::Type::Object: {
          const auto &ao = a.asObject(), &bo = b.asObject();
          if (ao.size() != bo.size())
              return miss("object size mismatch");
          for (const auto &[k, v] : ao) {
              const Json *bv = b.find(k);
              if (!bv)
                  return miss("missing member '" + k + "'");
              if (!jsonNear(v, *bv, tol, path + "." + k, where, detail))
                  return false;
          }
          return true;
      }
    }
    return miss("unreachable");
}

void
printSummary(const ScenarioResults &results)
{
    Table t("scenario '" + results.scenario + "'",
            {"point", "workload", "policy", "time s", "max AMB C",
             "max DRAM C", "done"});
    for (const auto &pt : results.points) {
        for (const auto &[w, per_policy] : pt.suite) {
            for (const auto &[p, r] : per_policy) {
                t.addRow({pt.label, w, p, Table::num(r.runningTime, 2),
                          Table::num(r.maxAmb, 2),
                          Table::num(r.maxDram, 2),
                          r.completed ? "yes" : "NO"});
            }
        }
    }
    t.print(std::cout);
}

/** One run row extracted from a results JSON. */
struct ReportRow
{
    std::string workload;
    std::string policy;
    bool completed = false;
    double time = 0.0;
    double maxAmb = 0.0;
    double maxDram = 0.0;
    double norm = NAN; ///< time / baseline time; NaN when no baseline
    /// Per-DIMM peaks and average power (index 0 nearest the
    /// controller); empty when the results file predates per-DIMM
    /// reporting.
    std::vector<double> peakAmb;
    std::vector<double> peakDram;
    std::vector<double> avgPower;
};

/** One sweep point of a results file. */
struct ReportPoint
{
    std::string label;
    std::vector<ReportRow> rows;
};

/** Split a sweep-point label ("cooling=X,inlet=46") into coordinates. */
std::vector<std::pair<std::string, std::string>>
labelCoords(const std::string &label)
{
    std::vector<std::pair<std::string, std::string>> out;
    if (label == "base")
        return out;
    std::size_t start = 0;
    for (;;) {
        std::size_t comma = label.find(',', start);
        std::string part =
            label.substr(start, comma == std::string::npos
                                    ? std::string::npos
                                    : comma - start);
        std::size_t eq = part.find('=');
        if (eq == std::string::npos)
            out.emplace_back(part, "");
        else
            out.emplace_back(part.substr(0, eq), part.substr(eq + 1));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

/** RFC-4180 quoting: labels contain commas. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

int
cmdReport(const std::vector<std::string> &args)
{
    std::string results_path, csv_path, baseline;
    bool quiet = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto next = [&](const char *opt) -> std::string {
            if (i + 1 >= args.size())
                fatal(std::string("memtherm report: ") + opt +
                      " needs an argument");
            return args[++i];
        };
        if (a == "--csv")
            csv_path = next("--csv");
        else if (a == "--baseline")
            baseline = next("--baseline");
        else if (a == "--quiet")
            quiet = true;
        else if (!a.empty() && a[0] == '-')
            fatal("memtherm report: unknown option '" + a + "'");
        else if (results_path.empty())
            results_path = a;
        else
            fatal("memtherm report: more than one results file given");
    }
    if (results_path.empty())
        return usage(std::cerr, 1);

    Json doc = Json::load(results_path);
    if (!doc.isObject() || !doc.find("points")) {
        fatal("memtherm report: '" + results_path +
              "' does not look like memtherm results (expected an object "
              "with a 'points' array; produce one with `memtherm run -o`)");
    }
    const std::string scenario =
        doc.find("scenario") ? doc.at("scenario").asString() : "(unnamed)";
    if (!doc.at("points").isArray())
        fatal("memtherm report: 'points' must be an array");

    std::vector<ReportPoint> points;
    for (const Json &pj : doc.at("points").asArray()) {
        ReportPoint pd;
        pd.label = pj.at("label").asString();
        const Json &res = pj.at("results");
        if (!res.isObject())
            fatal("memtherm report: point 'results' must be an object");
        for (const auto &[w, per_policy] : res.asObject()) {
            if (!per_policy.isObject() || per_policy.asObject().empty()) {
                fatal("memtherm report: results of workload '" + w +
                      "' must be a non-empty object");
            }
            // Baseline of this workload group: --baseline, else No-limit
            // when present, else the group's first policy.
            std::string base = baseline;
            if (base.empty()) {
                base = per_policy.find("No-limit")
                           ? "No-limit"
                           : per_policy.asObject().front().first;
            }
            // An incomplete baseline run's time is the simulation cap,
            // not a running time — normalizing against it would report
            // garbage, so the column stays empty then.
            double base_time = NAN;
            if (const Json *b = per_policy.find(base)) {
                if (b->at("completed").asBool())
                    base_time = b->at("running_time_s").asNumber();
            }
            for (const auto &[p, rj] : per_policy.asObject()) {
                ReportRow row;
                row.workload = w;
                row.policy = p;
                row.completed = rj.at("completed").asBool();
                row.time = rj.at("running_time_s").asNumber();
                row.maxAmb = rj.at("max_amb_c").asNumber();
                row.maxDram = rj.at("max_dram_c").asNumber();
                auto peakList = [&](const char *key,
                                    std::vector<double> &out) {
                    const Json *a = rj.find(key);
                    if (!a || !a->isArray())
                        return;
                    for (const Json &v : a->asArray())
                        out.push_back(v.asNumber());
                };
                peakList("peak_amb_per_dimm_c", row.peakAmb);
                peakList("peak_dram_per_dimm_c", row.peakDram);
                peakList("avg_power_per_dimm_w", row.avgPower);
                if (std::isfinite(base_time) && base_time > 0.0)
                    row.norm = row.time / base_time;
                pd.rows.push_back(std::move(row));
            }
        }
        points.push_back(std::move(pd));
    }

    // A --baseline typo would otherwise just blank every normalization
    // column; report it like any other bad name lookup.
    if (!baseline.empty()) {
        std::vector<std::string> seen;
        bool found = false;
        for (const auto &pd : points) {
            for (const auto &r : pd.rows) {
                found |= (r.policy == baseline);
                if (std::find(seen.begin(), seen.end(), r.policy) ==
                    seen.end())
                    seen.push_back(r.policy);
            }
        }
        if (!found) {
            fatal("memtherm report: baseline policy '" + baseline +
                  "' does not appear in the results (valid: " +
                  joinNames(seen) + ")");
        }
    }

    const std::string base_desc = baseline.empty() ? "No-limit" : baseline;

    if (!quiet) {
        // Per-point detail: the Figures 4.5-4.8 view (running time
        // normalized to the baseline, plus the thermal peaks).
        for (const auto &pd : points) {
            Table t("scenario '" + scenario + "' — point " + pd.label,
                    {"workload", "policy", "time s", "max AMB C",
                     "max DRAM C", "x " + base_desc, "done"});
            for (const auto &r : pd.rows) {
                t.addRow({r.workload, r.policy, Table::num(r.time, 2),
                          Table::num(r.maxAmb, 2), Table::num(r.maxDram, 2),
                          std::isfinite(r.norm) ? Table::num(r.norm, 3)
                                                : "-",
                          r.completed ? "yes" : "NO"});
            }
            t.print(std::cout);
        }

        // Per-axis sweep summary: one row per point, the label split
        // into one column per sweep axis.
        std::vector<std::string> keys;
        for (const auto &pd : points)
            for (const auto &[k, v] : labelCoords(pd.label))
                if (std::find(keys.begin(), keys.end(), k) == keys.end())
                    keys.push_back(k);
        std::vector<std::string> headers =
            keys.empty() ? std::vector<std::string>{"point"} : keys;
        headers.insert(headers.end(),
                       {"runs", "incomplete", "max AMB C", "max DRAM C",
                        "mean x " + base_desc});
        Table s("scenario '" + scenario + "' — sweep summary", headers);
        for (const auto &pd : points) {
            std::vector<std::string> row;
            if (keys.empty()) {
                row.push_back(pd.label);
            } else {
                const auto coords = labelCoords(pd.label);
                for (const auto &k : keys) {
                    std::string v = "-";
                    for (const auto &[ck, cv] : coords)
                        if (ck == k)
                            v = cv;
                    row.push_back(v);
                }
            }
            std::size_t incomplete = 0, norm_n = 0;
            double max_amb = -HUGE_VAL, max_dram = -HUGE_VAL;
            double norm_sum = 0.0;
            for (const auto &r : pd.rows) {
                incomplete += r.completed ? 0 : 1;
                max_amb = std::max(max_amb, r.maxAmb);
                max_dram = std::max(max_dram, r.maxDram);
                if (std::isfinite(r.norm)) {
                    norm_sum += r.norm;
                    ++norm_n;
                }
            }
            row.push_back(std::to_string(pd.rows.size()));
            row.push_back(std::to_string(incomplete));
            row.push_back(pd.rows.empty() ? "-" : Table::num(max_amb, 2));
            row.push_back(pd.rows.empty() ? "-" : Table::num(max_dram, 2));
            row.push_back(norm_n ? Table::num(norm_sum / norm_n, 3) : "-");
            s.addRow(std::move(row));
        }
        s.print(std::cout);
    }

    if (!csv_path.empty()) {
        std::ofstream f(csv_path);
        if (!f)
            fatal("memtherm report: cannot write '" + csv_path + "'");
        // Per-DIMM columns cover the widest organization in the
        // results (an org sweep mixes DIMM counts); runs with fewer
        // DIMMs leave their trailing cells empty.
        std::size_t max_dimms = 0;
        for (const auto &pd : points) {
            for (const auto &r : pd.rows) {
                max_dimms = std::max(
                    max_dimms, std::max(r.avgPower.size(),
                                        std::max(r.peakAmb.size(),
                                                 r.peakDram.size())));
            }
        }
        f << "scenario,point,workload,policy,completed,running_time_s,"
             "max_amb_c,max_dram_c,time_vs_base";
        for (std::size_t d = 0; d < max_dimms; ++d)
            f << ",peak_amb_dimm" << d << "_c";
        for (std::size_t d = 0; d < max_dimms; ++d)
            f << ",peak_dram_dimm" << d << "_c";
        for (std::size_t d = 0; d < max_dimms; ++d)
            f << ",avg_power_dimm" << d << "_w";
        f << '\n';
        auto peakCells = [&](const std::vector<double> &peaks) {
            for (std::size_t d = 0; d < max_dimms; ++d) {
                f << ',';
                if (d < peaks.size())
                    f << numForDiag(peaks[d]);
            }
        };
        for (const auto &pd : points) {
            for (const auto &r : pd.rows) {
                f << csvField(scenario) << ',' << csvField(pd.label) << ','
                  << csvField(r.workload) << ',' << csvField(r.policy)
                  << ',' << (r.completed ? "true" : "false") << ','
                  << numForDiag(r.time) << ',' << numForDiag(r.maxAmb)
                  << ',' << numForDiag(r.maxDram) << ','
                  << (std::isfinite(r.norm) ? numForDiag(r.norm) : "");
                peakCells(r.peakAmb);
                peakCells(r.peakDram);
                peakCells(r.avgPower);
                f << '\n';
            }
        }
        if (!f.good())
            fatal("memtherm report: error writing '" + csv_path + "'");
        if (!quiet)
            std::cout << "wrote " << csv_path << '\n';
    }
    return 0;
}

int
cmdRun(const std::vector<std::string> &args)
{
    std::string scenario_path, out_path, golden_path;
    double tol = 1e-9;
    int threads = 0;
    std::optional<int> copies;
    bool traces = false, quiet = false;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto next = [&](const char *opt) -> std::string {
            if (i + 1 >= args.size())
                fatal(std::string("memtherm run: ") + opt +
                      " needs an argument");
            return args[++i];
        };
        // Positive-integer options: reject trailing garbage, overflow,
        // and the silently-accepted 0/negative counts alike.
        auto nextPosInt = [&](const char *opt) {
            std::string v = next(opt);
            std::size_t used = 0;
            int n = 0;
            try {
                n = std::stoi(v, &used);
            } catch (const std::exception &) {
                used = 0;
            }
            if (used != v.size() || v.empty() || n < 1)
                fatal(std::string("memtherm run: ") + opt +
                      " needs a positive integer, got '" + v + "'");
            return n;
        };
        auto nextDouble = [&](const char *opt) {
            std::string v = next(opt);
            std::size_t used = 0;
            double x = 0.0;
            try {
                x = std::stod(v, &used);
            } catch (const std::exception &) {
                used = 0;
            }
            if (used != v.size())
                fatal(std::string("memtherm run: ") + opt +
                      " needs a number, got '" + v + "'");
            return x;
        };
        if (a == "-o")
            out_path = next("-o");
        else if (a == "--golden")
            golden_path = next("--golden");
        else if (a == "--tol")
            tol = nextDouble("--tol");
        else if (a == "--threads")
            threads = nextPosInt("--threads");
        else if (a == "--copies")
            copies = nextPosInt("--copies");
        else if (a == "--traces")
            traces = true;
        else if (a == "--quiet")
            quiet = true;
        else if (!a.empty() && a[0] == '-')
            fatal("memtherm run: unknown option '" + a + "'");
        else if (scenario_path.empty())
            scenario_path = a;
        else
            fatal("memtherm run: more than one scenario file given");
    }
    if (scenario_path.empty())
        return usage(std::cerr, 1);

    ScenarioSpec spec = ScenarioSpec::load(scenario_path);
    if (copies) {
        spec.copiesPerApp = *copies;
        spec.sweepCopies.clear();
    }

    ExperimentEngine engine(threads);
    ScenarioResults results = runScenario(spec, engine);

    if (!quiet)
        printSummary(results);

    Json out = toJson(results, traces);
    if (!out_path.empty()) {
        out.save(out_path);
        if (!quiet)
            std::cout << "wrote " << out_path << '\n';
    }

    if (!golden_path.empty()) {
        Json golden = Json::load(golden_path);
        std::string where, detail;
        if (!jsonNear(out, golden, tol, "", where, detail)) {
            std::cerr << "memtherm run: results diverge from '"
                      << golden_path << "' at " << where << ": " << detail
                      << " (tol " << tol << ")\n";
            return 1;
        }
        if (!quiet)
            std::cout << "results match " << golden_path << " (tol " << tol
                      << ")\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty() || args[0] == "--help" || args[0] == "-h")
        return usage(args.empty() ? std::cerr : std::cout,
                     args.empty() ? 1 : 0);

    const std::string cmd = args[0];
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    try {
        if (cmd == "run")
            return cmdRun(rest);
        if (cmd == "report")
            return cmdReport(rest);
        if (cmd == "validate")
            return cmdValidate(rest);
        if (cmd == "list")
            return cmdList(rest);
    } catch (const FatalError &e) {
        std::cerr << "memtherm: " << e.what() << '\n';
        return 1;
    } catch (const PanicError &e) {
        std::cerr << "memtherm: " << e.what() << '\n';
        return 1;
    }
    std::cerr << "memtherm: unknown command '" << cmd << "'\n";
    return usage(std::cerr, 1);
}
