/**
 * @file
 * `memtherm` — the scenario-driven command-line front end.
 *
 *   memtherm run <scenario.json> [options]   execute a scenario file
 *   memtherm validate <scenario.json>...     parse + resolve, no runs
 *   memtherm list <catalog>                  print valid names
 *
 * Scenarios are declarative (core/sim/scenario.hh): config overrides,
 * workload/policy names, and sweep axes, all resolved through the
 * registries — an unknown name prints the valid keys instead of
 * aborting. Results serialize through the shared JSON layer, and the
 * --golden mode re-checks a result file within a relative tolerance,
 * which is what the CLI smoke test pins `memtherm run` output with.
 */

#include <cmath>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/sim/registry.hh"
#include "core/sim/scenario.hh"

using namespace memtherm;

namespace
{

int
usage(std::ostream &os, int rc)
{
    os << "usage:\n"
          "  memtherm run <scenario.json> [options]\n"
          "      -o <file>        write results as JSON\n"
          "      --traces         include full traces in the JSON output\n"
          "      --threads <n>    engine thread count (default:\n"
          "                       MEMTHERM_THREADS or hardware)\n"
          "      --copies <n>     override the batch depth and drop any\n"
          "                       copies sweep (quick looks, smoke tests)\n"
          "      --golden <file>  compare results against a reference\n"
          "                       results JSON; nonzero exit on mismatch\n"
          "      --tol <x>        relative tolerance for --golden\n"
          "                       (default 1e-9)\n"
          "      --quiet          suppress the summary table\n"
          "  memtherm validate <scenario.json>...\n"
          "  memtherm list policies|workloads|coolings|ambients|platforms\n";
    return rc;
}

int
cmdList(const std::vector<std::string> &args)
{
    if (args.size() != 1)
        return usage(std::cerr, 1);
    const std::string &what = args[0];
    std::vector<std::string> names;
    if (what == "policies")
        names = PolicyRegistry::instance().names();
    else if (what == "workloads")
        names = workloadNames();
    else if (what == "coolings")
        names = coolingNames();
    else if (what == "ambients")
        names = ambientNames();
    else if (what == "platforms")
        names = platformNames();
    else {
        std::cerr << "memtherm list: unknown catalog '" << what
                  << "' (valid: policies, workloads, coolings, ambients, "
                     "platforms)\n";
        return 1;
    }
    for (const auto &n : names)
        std::cout << n << '\n';
    if (what == "workloads")
        std::cout << "<app>x<n> (homogeneous batch, e.g. swimx4)\n";
    return 0;
}

int
cmdValidate(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage(std::cerr, 1);
    for (const auto &path : args) {
        ScenarioSpec spec = ScenarioSpec::load(path);
        LoweredScenario low = spec.lower();
        std::cout << path << ": ok — scenario '" << spec.name << "', "
                  << low.points.size() << " point(s), " << low.totalRuns()
                  << " run(s)\n";
    }
    return 0;
}

/**
 * Recursive comparison with a relative tolerance on numbers; on the
 * first mismatch fills @p where / @p detail and returns false.
 */
bool
jsonNear(const Json &a, const Json &b, double tol, const std::string &path,
         std::string &where, std::string &detail)
{
    auto miss = [&](const std::string &d) {
        where = path.empty() ? "(root)" : path;
        detail = d;
        return false;
    };
    if (a.type() != b.type())
        return miss("type mismatch");
    switch (a.type()) {
      case Json::Type::Null:
        return true;
      case Json::Type::Bool:
        return a.asBool() == b.asBool() ? true : miss("bool mismatch");
      case Json::Type::Number: {
          double x = a.asNumber(), y = b.asNumber();
          double bound = tol * std::max(std::abs(x), std::abs(y)) + 1e-12;
          if (std::abs(x - y) <= bound)
              return true;
          return miss(std::to_string(x) + " vs " + std::to_string(y));
      }
      case Json::Type::String:
        return a.asString() == b.asString()
                   ? true
                   : miss("'" + a.asString() + "' vs '" + b.asString() +
                          "'");
      case Json::Type::Array: {
          const auto &av = a.asArray(), &bv = b.asArray();
          if (av.size() != bv.size())
              return miss("array length mismatch");
          for (std::size_t i = 0; i < av.size(); ++i) {
              if (!jsonNear(av[i], bv[i], tol,
                            path + "[" + std::to_string(i) + "]", where,
                            detail))
                  return false;
          }
          return true;
      }
      case Json::Type::Object: {
          const auto &ao = a.asObject(), &bo = b.asObject();
          if (ao.size() != bo.size())
              return miss("object size mismatch");
          for (const auto &[k, v] : ao) {
              const Json *bv = b.find(k);
              if (!bv)
                  return miss("missing member '" + k + "'");
              if (!jsonNear(v, *bv, tol, path + "." + k, where, detail))
                  return false;
          }
          return true;
      }
    }
    return miss("unreachable");
}

void
printSummary(const ScenarioResults &results)
{
    Table t("scenario '" + results.scenario + "'",
            {"point", "workload", "policy", "time s", "max AMB C",
             "max DRAM C", "done"});
    for (const auto &pt : results.points) {
        for (const auto &[w, per_policy] : pt.suite) {
            for (const auto &[p, r] : per_policy) {
                t.addRow({pt.label, w, p, Table::num(r.runningTime, 2),
                          Table::num(r.maxAmb, 2),
                          Table::num(r.maxDram, 2),
                          r.completed ? "yes" : "NO"});
            }
        }
    }
    t.print(std::cout);
}

int
cmdRun(const std::vector<std::string> &args)
{
    std::string scenario_path, out_path, golden_path;
    double tol = 1e-9;
    int threads = 0;
    std::optional<int> copies;
    bool traces = false, quiet = false;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto next = [&](const char *opt) -> std::string {
            if (i + 1 >= args.size())
                fatal(std::string("memtherm run: ") + opt +
                      " needs an argument");
            return args[++i];
        };
        auto nextInt = [&](const char *opt) {
            std::string v = next(opt);
            std::size_t used = 0;
            int n = 0;
            try {
                n = std::stoi(v, &used);
            } catch (const std::exception &) {
                used = 0;
            }
            if (used != v.size())
                fatal(std::string("memtherm run: ") + opt +
                      " needs an integer, got '" + v + "'");
            return n;
        };
        auto nextDouble = [&](const char *opt) {
            std::string v = next(opt);
            std::size_t used = 0;
            double x = 0.0;
            try {
                x = std::stod(v, &used);
            } catch (const std::exception &) {
                used = 0;
            }
            if (used != v.size())
                fatal(std::string("memtherm run: ") + opt +
                      " needs a number, got '" + v + "'");
            return x;
        };
        if (a == "-o")
            out_path = next("-o");
        else if (a == "--golden")
            golden_path = next("--golden");
        else if (a == "--tol")
            tol = nextDouble("--tol");
        else if (a == "--threads")
            threads = nextInt("--threads");
        else if (a == "--copies")
            copies = nextInt("--copies");
        else if (a == "--traces")
            traces = true;
        else if (a == "--quiet")
            quiet = true;
        else if (!a.empty() && a[0] == '-')
            fatal("memtherm run: unknown option '" + a + "'");
        else if (scenario_path.empty())
            scenario_path = a;
        else
            fatal("memtherm run: more than one scenario file given");
    }
    if (scenario_path.empty())
        return usage(std::cerr, 1);

    ScenarioSpec spec = ScenarioSpec::load(scenario_path);
    if (copies) {
        spec.copiesPerApp = *copies;
        spec.sweepCopies.clear();
    }

    ExperimentEngine engine(threads);
    ScenarioResults results = runScenario(spec, engine);

    if (!quiet)
        printSummary(results);

    Json out = toJson(results, traces);
    if (!out_path.empty()) {
        out.save(out_path);
        if (!quiet)
            std::cout << "wrote " << out_path << '\n';
    }

    if (!golden_path.empty()) {
        Json golden = Json::load(golden_path);
        std::string where, detail;
        if (!jsonNear(out, golden, tol, "", where, detail)) {
            std::cerr << "memtherm run: results diverge from '"
                      << golden_path << "' at " << where << ": " << detail
                      << " (tol " << tol << ")\n";
            return 1;
        }
        if (!quiet)
            std::cout << "results match " << golden_path << " (tol " << tol
                      << ")\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty() || args[0] == "--help" || args[0] == "-h")
        return usage(args.empty() ? std::cerr : std::cout,
                     args.empty() ? 1 : 0);

    const std::string cmd = args[0];
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    try {
        if (cmd == "run")
            return cmdRun(rest);
        if (cmd == "validate")
            return cmdValidate(rest);
        if (cmd == "list")
            return cmdList(rest);
    } catch (const FatalError &e) {
        std::cerr << "memtherm: " << e.what() << '\n';
        return 1;
    } catch (const PanicError &e) {
        std::cerr << "memtherm: " << e.what() << '\n';
        return 1;
    }
    std::cerr << "memtherm: unknown command '" << cmd << "'\n";
    return usage(std::cerr, 1);
}
