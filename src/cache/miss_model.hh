/**
 * @file
 * Analytic shared-cache miss model.
 *
 * DTM-ACG's main performance lever is that gating cores reduces shared-L2
 * contention, cutting total memory traffic (Section 4.4.2: −17% average;
 * Section 5.4.3: −27..29% L2 misses). This model supplies the effective
 * MPKI of an application as a function of:
 *
 *  - the number of co-runners sharing the cache (geometric interpolation
 *    between the measured solo MPKI and the fully shared MPKI), and
 *  - the time-slice length when two programs round-robin on one core
 *    (each switch refills the program's working set, which is why slices
 *    below ~20 ms thrash the L2 — Fig. 5.15).
 */

#ifndef MEMTHERM_CACHE_MISS_MODEL_HH
#define MEMTHERM_CACHE_MISS_MODEL_HH

#include "common/units.hh"

namespace memtherm
{

/** An application's cache behavior summary. */
struct CacheShareCurve
{
    double mpkiSolo = 10.0;    ///< MPKI with the whole cache to itself
    double mpkiShared = 12.0;  ///< MPKI with `refSharers` co-runners
    double refSharers = 4.0;   ///< sharer count at which mpkiShared holds
};

/**
 * MPKI at a given sharer count: geometric interpolation between
 * (1, mpkiSolo) and (refSharers, mpkiShared) with exponent
 * (sharers-1)/(refSharers-1); clamped outside. The exponent is linear in
 * the sharer count, which matches the knee-shaped miss curves of
 * cache-sensitive codes: halving the co-runner count recovers most of a
 * victim's working set.
 */
double mpkiAtSharers(const CacheShareCurve &curve, double sharers);

/**
 * Extra MPKI from context-switch working-set refill when programs
 * time-share one core.
 *
 * @param refill_lines lines the program re-fetches after each switch
 * @param nominal_gips the program's typical instruction rate (GIPS)
 * @param slice        scheduler time slice (s)
 * @return additional misses per kilo-instruction (0 for slice <= 0 is an
 *         error; very long slices tend to 0)
 */
double switchMpki(double refill_lines, double nominal_gips, Seconds slice);

} // namespace memtherm

#endif // MEMTHERM_CACHE_MISS_MODEL_HH
