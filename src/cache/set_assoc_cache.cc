#include "cache/set_assoc_cache.hh"

#include <bit>

#include "common/logging.hh"

namespace memtherm
{

SetAssocCache::SetAssocCache(const CacheConfig &c) : cfg(c)
{
    panicIfNot(cfg.lineBytes > 0 && std::has_single_bit(cfg.lineBytes),
               "SetAssocCache: line size must be a power of two");
    panicIfNot(cfg.assoc > 0, "SetAssocCache: associativity must be > 0");
    std::uint64_t n_lines = cfg.sizeBytes / cfg.lineBytes;
    panicIfNot(n_lines >= cfg.assoc && n_lines % cfg.assoc == 0,
               "SetAssocCache: size/assoc/line geometry invalid");
    nSets = n_lines / cfg.assoc;
    panicIfNot(std::has_single_bit(nSets),
               "SetAssocCache: set count must be a power of two");
    lines.resize(n_lines);
}

std::uint64_t
SetAssocCache::lineAddr(std::uint64_t addr) const
{
    return addr / cfg.lineBytes;
}

std::uint64_t
SetAssocCache::setIndex(std::uint64_t addr) const
{
    return lineAddr(addr) & (nSets - 1);
}

std::uint64_t
SetAssocCache::tagOf(std::uint64_t addr) const
{
    return lineAddr(addr) / nSets;
}

CacheAccessResult
SetAssocCache::access(std::uint64_t addr, bool write)
{
    ++clock;
    std::uint64_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    Line *base = &lines[set * cfg.assoc];

    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = clock;
            l.dirty = l.dirty || write;
            ++nHits;
            return {true, false, 0};
        }
    }

    // Miss: victim is an invalid way if one exists, else the true LRU way.
    Line *victim = nullptr;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Line &l = base[w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (!victim || l.lastUse < victim->lastUse)
            victim = &l;
    }

    ++nMisses;
    CacheAccessResult res;
    if (victim->valid && victim->dirty) {
        res.writeback = true;
        res.victimAddr = (victim->tag * nSets + set) * cfg.lineBytes;
        ++nWritebacks;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = write;
    victim->lastUse = clock;
    return res;
}

bool
SetAssocCache::contains(std::uint64_t addr) const
{
    std::uint64_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    const Line *base = &lines[set * cfg.assoc];
    for (unsigned w = 0; w < cfg.assoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
SetAssocCache::flush()
{
    for (auto &l : lines)
        l = Line{};
}

double
SetAssocCache::missRatio() const
{
    std::uint64_t total = nHits + nMisses;
    return total ? static_cast<double>(nMisses) / total : 0.0;
}

void
SetAssocCache::resetStats()
{
    nHits = nMisses = nWritebacks = 0;
}

} // namespace memtherm
