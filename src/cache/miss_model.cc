#include "cache/miss_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace memtherm
{

double
mpkiAtSharers(const CacheShareCurve &curve, double sharers)
{
    panicIfNot(curve.mpkiSolo > 0.0 && curve.mpkiShared > 0.0,
               "mpkiAtSharers: MPKI must be positive");
    panicIfNot(curve.refSharers > 1.0, "mpkiAtSharers: refSharers must be >1");
    double s = std::clamp(sharers, 1.0, curve.refSharers);
    double t = (s - 1.0) / (curve.refSharers - 1.0);
    return curve.mpkiSolo *
           std::pow(curve.mpkiShared / curve.mpkiSolo, t);
}

double
switchMpki(double refill_lines, double nominal_gips, Seconds slice)
{
    panicIfNot(refill_lines >= 0.0, "switchMpki: negative refill");
    panicIfNot(nominal_gips > 0.0, "switchMpki: need positive GIPS");
    panicIfNot(slice > 0.0, "switchMpki: need positive slice");
    // Instructions executed per slice, in kilo-instructions.
    double kinstr_per_slice = nominal_gips * 1e9 * slice / 1000.0;
    return refill_lines / kinstr_per_slice;
}

} // namespace memtherm
