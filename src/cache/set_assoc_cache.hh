/**
 * @file
 * Set-associative write-back cache simulator with LRU replacement.
 *
 * Models the shared L2 of the simulated CMP (4MB, 8-way, 64B lines,
 * Table 4.1) and the Xeon 5160 L2 (4MB, 16-way, Chapter 5). Used to
 * validate the analytic shared-cache miss model and to feed realistic
 * miss streams into the detailed FBDIMM simulator.
 */

#ifndef MEMTHERM_CACHE_SET_ASSOC_CACHE_HH
#define MEMTHERM_CACHE_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <vector>

namespace memtherm
{

/** Cache geometry. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 4ULL << 20;
    unsigned assoc = 8;
    unsigned lineBytes = 64;
};

/** Result of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool writeback = false;        ///< a dirty victim was evicted
    std::uint64_t victimAddr = 0;  ///< line address of the victim
};

/**
 * LRU set-associative cache.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &cfg);

    /**
     * Access a byte address; allocates on miss (write-allocate).
     * @param addr  byte address
     * @param write true for a store (marks the line dirty)
     */
    CacheAccessResult access(std::uint64_t addr, bool write);

    /** Probe without side effects. */
    bool contains(std::uint64_t addr) const;

    /** Invalidate everything (drops dirty data). */
    void flush();

    std::uint64_t numSets() const { return nSets; }
    const CacheConfig &config() const { return cfg; }

    std::uint64_t hits() const { return nHits; }
    std::uint64_t misses() const { return nMisses; }
    std::uint64_t writebacks() const { return nWritebacks; }
    std::uint64_t accesses() const { return nHits + nMisses; }
    /** Miss ratio over all accesses so far (0 when none). */
    double missRatio() const;

    /** Zero the statistics counters (contents retained). */
    void resetStats();

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0; ///< logical timestamp for LRU
    };

    std::uint64_t lineAddr(std::uint64_t addr) const;
    std::uint64_t setIndex(std::uint64_t addr) const;
    std::uint64_t tagOf(std::uint64_t addr) const;

    CacheConfig cfg;
    std::uint64_t nSets;
    std::vector<Line> lines; ///< nSets * assoc, set-major
    std::uint64_t clock = 0;

    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;
    std::uint64_t nWritebacks = 0;
};

} // namespace memtherm

#endif // MEMTHERM_CACHE_SET_ASSOC_CACHE_HH
