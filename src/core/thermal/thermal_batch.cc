#include "core/thermal/thermal_batch.hh"

#include <cmath>

#include "common/logging.hh"

namespace memtherm
{

ThermalBatchState::ThermalBatchState(int lanes, int dimms, int bank_cells)
    : nLanes(lanes), nDimms(dimms), nBankCells(bank_cells)
{
    panicIfNot(lanes >= 1, "ThermalBatchState: need >= 1 lane");
    panicIfNot(dimms >= 1, "ThermalBatchState: need >= 1 DIMM per lane");
    panicIfNot(bank_cells >= 0, "ThermalBatchState: negative bank cells");
    const std::size_t n =
        static_cast<std::size_t>(lanes) * static_cast<std::size_t>(dimms);
    ambV.assign(n, 0.0);
    dramV.assign(n, 0.0);
    stableAmbV.assign(n, 0.0);
    stableDramV.assign(n, 0.0);
    peakAmbV.assign(n, 0.0);
    peakDramV.assign(n, 0.0);
    energyV.assign(n, 0.0);
    const std::size_t nb = n * static_cast<std::size_t>(bank_cells);
    bankTempV.assign(nb, 0.0);
    stableBankV.assign(nb, 0.0);
    peakBankV.assign(nb, 0.0);
    energyTimeV.assign(static_cast<std::size_t>(lanes), 0.0);
    tauAmbV.assign(static_cast<std::size_t>(lanes), 1.0);
    tauDramV.assign(static_cast<std::size_t>(lanes), 1.0);
    decayAmbV.assign(static_cast<std::size_t>(lanes), 0.0);
    decayDramV.assign(static_cast<std::size_t>(lanes), 0.0);
}

int
ThermalBatchState::checked(int lane) const
{
    panicIfNot(lane >= 0 && lane < nLanes,
               "ThermalBatchState: lane out of range");
    return lane;
}

void
ThermalBatchState::initLane(int lane, Seconds tau_amb, Seconds tau_dram,
                            Celsius t0)
{
    panicIfNot(tau_amb > 0.0 && tau_dram > 0.0,
               "ThermalBatchState: time constants must be > 0");
    const int l = checked(lane);
    tauAmbV[l] = tau_amb;
    tauDramV[l] = tau_dram;
    cachedDt = -1.0; // memo covers the whole batch; recompute on next step
    double *amb = ambTemp(l);
    double *dram = dramTemp(l);
    double *pa = peakAmb(l);
    double *pd = peakDram(l);
    double *e = energy(l);
    for (int i = 0; i < nDimms; ++i) {
        amb[i] = t0;
        dram[i] = t0;
        pa[i] = t0;
        pd[i] = t0;
        e[i] = 0.0;
    }
    double *bt = bankTemp(l);
    double *pb = peakBank(l);
    for (int i = 0; i < nDimms * nBankCells; ++i) {
        bt[i] = t0;
        pb[i] = t0;
    }
    energyTimeV[l] = 0.0;
}

void
ThermalBatchState::ensureDecay(Seconds dt)
{
    panicIfNot(dt >= 0.0, "ThermalBatchState: negative time step");
    if (dt == cachedDt)
        return;
    cachedDt = dt;
    // Same arithmetic as RcNode::decayFor, one evaluation per lane per
    // distinct dt instead of one memo per node.
    for (int l = 0; l < nLanes; ++l) {
        decayAmbV[l] = 1.0 - std::exp(-dt / tauAmbV[l]);
        decayDramV[l] = 1.0 - std::exp(-dt / tauDramV[l]);
    }
}

void
ThermalBatchState::advanceLane(int lane)
{
    const int l = checked(lane);
    const double da = decayAmbV[l];
    const double dd = decayDramV[l];
    double *amb = ambTemp(l);
    double *dram = dramTemp(l);
    const double *sa = stableAmb(l);
    const double *sd = stableDram(l);
    for (int i = 0; i < nDimms; ++i)
        amb[i] += (sa[i] - amb[i]) * da;
    for (int i = 0; i < nDimms; ++i)
        dram[i] += (sd[i] - dram[i]) * dd;
    // Bank cells share the DRAM node's time constant (same silicon, same
    // Eq. 3.5 step), so a uniform-weight cell tracks its lumped DRAM
    // node bit-for-bit.
    double *bank = bankTemp(l);
    const double *sb = stableBank(l);
    for (int i = 0; i < nDimms * nBankCells; ++i)
        bank[i] += (sb[i] - bank[i]) * dd;
}

void
ThermalBatchState::copyLane(int dst, int src)
{
    const int d = checked(dst);
    const int s = checked(src);
    if (d == s)
        return;
    for (int i = 0; i < nDimms; ++i) {
        ambTemp(d)[i] = ambTemp(s)[i];
        dramTemp(d)[i] = dramTemp(s)[i];
        stableAmb(d)[i] = stableAmb(s)[i];
        stableDram(d)[i] = stableDram(s)[i];
        peakAmb(d)[i] = peakAmb(s)[i];
        peakDram(d)[i] = peakDram(s)[i];
        energy(d)[i] = energy(s)[i];
    }
    for (int i = 0; i < nDimms * nBankCells; ++i) {
        bankTemp(d)[i] = bankTemp(s)[i];
        stableBank(d)[i] = stableBank(s)[i];
        peakBank(d)[i] = peakBank(s)[i];
    }
    energyTimeV[d] = energyTimeV[s];
    tauAmbV[d] = tauAmbV[s];
    tauDramV[d] = tauDramV[s];
    decayAmbV[d] = decayAmbV[s];
    decayDramV[d] = decayDramV[s];
}

} // namespace memtherm
