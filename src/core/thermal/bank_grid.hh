/**
 * @file
 * Optional per-bank thermal resolution: an X x Z grid of bank cells per
 * DIMM, layered over the paper's lumped per-DIMM RC pair.
 *
 * The lumped model (Eqs. 3.3-3.5) sees one DRAM node per DIMM, which is
 * blind to intra-DIMM hotspots: row-buffer-heavy workloads concentrate
 * their accesses — and their dynamic power — in a few banks. The bank
 * grid resolves that by splitting each DIMM's DRAM power over an X x Z
 * cell grid by per-cell heat-share weights and advancing one extra RC
 * node per cell (same tauDram, same Eq. 3.5 step as the lumped DRAM
 * node), with a single lateral-coupling smoothing pass standing in for
 * in-package heat spreading between neighboring banks.
 *
 * The grid is a *diagnostic overlay*: the lumped nodes keep driving the
 * DTM sensors, the refresh feedback and every pre-existing result field
 * unchanged, and the grid only adds per-bank peak temperatures. Its
 * correctness contract, pinned by tests/thermal/test_bank_grid.cc:
 *
 *  - under uniform per-bank weights every cell's stable target equals
 *    the lumped DRAM target exactly (the scaled weights are exactly 1
 *    and smoothing is the identity on constant fields), so the grid
 *    mean reproduces the lumped model;
 *  - the smoothing operator is symmetric and row-stochastic, so it
 *    conserves the weight sum — the grid's mean target tracks the
 *    lumped target for *any* weight vector;
 *  - a run with `thermal_model: "lumped"` (no grid) is bit-identical
 *    to one with the knob unset.
 */

#ifndef MEMTHERM_CORE_THERMAL_BANK_GRID_HH
#define MEMTHERM_CORE_THERMAL_BANK_GRID_HH

#include <optional>
#include <vector>

namespace memtherm
{

/**
 * Geometry and heat-share weights of the per-DIMM bank grid (the
 * `thermal_model` scenario knob's "bank_grid" catalog entry, or an
 * inline {grid_x, grid_z[, bank_weights]} object).
 */
struct BankGridConfig
{
    int x = 4; ///< bank columns per DIMM
    int z = 2; ///< bank rows per DIMM

    /**
     * Per-cell heat-share weights, row-major (cell (ix, iz) at index
     * iz * x + ix): the fraction of a DIMM's DRAM power concentrated in
     * each cell, non-negative and summing to 1. Either cells() entries
     * (every DIMM alike — the scenario layer's inline `bank_weights`)
     * or nDimms * cells() entries (per-DIMM blocks — the trace decoder).
     * Empty selects uniform weights, whose scaled form is *exactly* 1
     * per cell, making every cell bit-identical to the lumped DRAM
     * node.
     */
    std::vector<double> weights;

    bool operator==(const BankGridConfig &) const = default;

    int cells() const { return x * z; }
};

/**
 * A resolved `thermal_model` catalog entry: the lumped baseline
 * (std::nullopt — the catalog's "lumped" and the knob-unset default) or
 * a bank grid. Sweep-axis duplicate detection compares these resolved
 * values, so "bank_grid" and an equivalent inline object collide.
 */
struct ThermalModelConfig
{
    std::optional<BankGridConfig> grid;

    bool operator==(const ThermalModelConfig &) const = default;
};

/**
 * Lateral coupling between neighboring bank cells: the fraction of a
 * cell's weight excess (over its 4-neighborhood) one smoothing pass
 * redistributes. A model constant, like SimConfig::remapCostGbPerShare,
 * not a scenario knob.
 */
inline constexpr double kBankLateralCoupling = 0.25;

/**
 * The per-cell *scaled* heat weights MemoryThermalModel consumes:
 * n_dimms * grid.cells() entries, row-major by DIMM, each the cell's
 * weight times cells() (so a cell at scaled weight s sees s times the
 * DIMM's DRAM power in its stable target) after one lateral-coupling
 * smoothing pass per DIMM block.
 *
 * Empty grid.weights take a fast path that writes exactly 1.0 per cell
 * — no division round-trip — so the uniform grid is bit-identical to
 * the lumped DRAM node. Explicit weights are validated (panic on arity
 * or non-finite/negative entries; the scenario layer has already
 * reported user errors as FatalError).
 */
std::vector<double> resolveBankCellWeights(const BankGridConfig &grid,
                                           int n_dimms);

/**
 * One smoothing pass over one DIMM's cell block: out[c] = w[c] +
 * lambda * sum_neighbors(w_n - w[c]) / 4 on the X x Z 4-neighbor grid.
 * Symmetric (pairwise fluxes cancel), so the sum over cells is
 * conserved; constant fields are fixed points. Exposed for the property
 * tests; resolveBankCellWeights() applies it per DIMM block.
 */
void smoothBankCells(const BankGridConfig &grid, const double *w,
                     double *out);

} // namespace memtherm

#endif // MEMTHERM_CORE_THERMAL_BANK_GRID_HH
