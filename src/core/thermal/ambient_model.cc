#include "core/thermal/ambient_model.hh"

namespace memtherm
{

AmbientModel::AmbientModel(const AmbientParams &p)
    : params(p), node(p.tauCpuDram, p.tInlet)
{
}

Celsius
AmbientModel::advance(double sum_v_ipc, Watts cpu_power, Seconds dt)
{
    if (!integrated()) {
        // Isolated model: constant ambient, no dynamics.
        return node.temperature();
    }
    return node.advance(stable(sum_v_ipc, cpu_power), dt);
}

} // namespace memtherm
