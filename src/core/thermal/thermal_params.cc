#include "core/thermal/thermal_params.hh"

#include "common/logging.hh"

namespace memtherm
{

std::string
CoolingConfig::name() const
{
    std::string s = spreader == HeatSpreader::AOHS ? "AOHS" : "FDHS";
    switch (velocity) {
      case AirVelocity::MPS_1_0:
        return s + "_1.0";
      case AirVelocity::MPS_1_5:
        return s + "_1.5";
      case AirVelocity::MPS_3_0:
        return s + "_3.0";
    }
    return s;
}

CoolingConfig
coolingConfig(HeatSpreader s, AirVelocity v)
{
    CoolingConfig c;
    c.spreader = s;
    c.velocity = v;
    // Table 3.2.
    if (s == HeatSpreader::AOHS) {
        switch (v) {
          case AirVelocity::MPS_1_0:
            c.psiAmb = 11.2; c.psiDramToAmb = 4.3;
            c.psiDram = 4.9; c.psiAmbToDram = 5.3;
            break;
          case AirVelocity::MPS_1_5:
            c.psiAmb = 9.3; c.psiDramToAmb = 3.4;
            c.psiDram = 4.0; c.psiAmbToDram = 4.1;
            break;
          case AirVelocity::MPS_3_0:
            c.psiAmb = 6.6; c.psiDramToAmb = 2.2;
            c.psiDram = 2.7; c.psiAmbToDram = 2.6;
            break;
        }
    } else {
        switch (v) {
          case AirVelocity::MPS_1_0:
            c.psiAmb = 8.0; c.psiDramToAmb = 4.4;
            c.psiDram = 4.0; c.psiAmbToDram = 5.7;
            break;
          case AirVelocity::MPS_1_5:
            c.psiAmb = 7.0; c.psiDramToAmb = 3.7;
            c.psiDram = 3.3; c.psiAmbToDram = 4.5;
            break;
          case AirVelocity::MPS_3_0:
            c.psiAmb = 5.5; c.psiDramToAmb = 2.9;
            c.psiDram = 2.3; c.psiAmbToDram = 2.9;
            break;
        }
    }
    c.tauAmb = 50.0;
    c.tauDram = 100.0;
    return c;
}

CoolingConfig
coolingAohs15()
{
    return coolingConfig(HeatSpreader::AOHS, AirVelocity::MPS_1_5);
}

CoolingConfig
coolingFdhs10()
{
    return coolingConfig(HeatSpreader::FDHS, AirVelocity::MPS_1_0);
}

namespace
{

Celsius
inletFor(const CoolingConfig &cooling, bool integrated)
{
    // Table 3.3: thermally constrained environments. The integrated model
    // uses a 5 degC lower system inlet because the CPU preheat makes up
    // the difference.
    bool aohs = cooling.spreader == HeatSpreader::AOHS;
    if (integrated)
        return aohs ? 45.0 : 40.0;
    return aohs ? 50.0 : 45.0;
}

} // namespace

AmbientParams
isolatedAmbient(const CoolingConfig &cooling)
{
    AmbientParams p;
    p.tInlet = inletFor(cooling, false);
    p.psiCpuMemXi = 0.0;
    p.tauCpuDram = 20.0;
    return p;
}

AmbientParams
integratedAmbient(const CoolingConfig &cooling)
{
    AmbientParams p;
    p.tInlet = inletFor(cooling, true);
    p.psiCpuMemXi = 1.5;
    p.tauCpuDram = 20.0;
    return p;
}

} // namespace memtherm
