/**
 * @file
 * Thermal model of one FBDIMM: stable temperatures (Eqs. 3.3/3.4) and
 * dynamic temperatures (Eq. 3.5) of its AMB and hottest DRAM chip.
 */

#ifndef MEMTHERM_CORE_THERMAL_DIMM_THERMAL_HH
#define MEMTHERM_CORE_THERMAL_DIMM_THERMAL_HH

#include "core/power/power_model.hh"
#include "core/thermal/rc_node.hh"
#include "core/thermal/thermal_params.hh"

namespace memtherm
{

/** Temperatures of one DIMM's two hot spots. */
struct DimmTemps
{
    Celsius amb = 0.0;
    Celsius dram = 0.0;
};

/**
 * Per-DIMM thermal state: two coupled RC nodes (AMB and hottest DRAM
 * chip — the one next to the AMB), driven by the power model outputs and
 * the DIMM's ambient (inlet air) temperature.
 *
 * The paper assumes no DIMM-to-DIMM thermal interaction (cooling air
 * passes between DIMMs), so DIMMs are modeled independently.
 */
class DimmThermalModel
{
  public:
    /**
     * @param cooling Table 3.2 column to use
     * @param t0      initial temperature of both nodes (idle ambient)
     */
    DimmThermalModel(const CoolingConfig &cooling, Celsius t0);

    /** Eq. 3.3: stable AMB temperature for a given operating point. */
    Celsius
    stableAmb(Celsius ambient, const DimmPower &p) const
    {
        return ambient + p.amb * cfg.psiAmb + p.dram * cfg.psiDramToAmb;
    }

    /** Eq. 3.4: stable DRAM temperature for a given operating point. */
    Celsius
    stableDram(Celsius ambient, const DimmPower &p) const
    {
        return ambient + p.amb * cfg.psiAmbToDram + p.dram * cfg.psiDram;
    }

    /**
     * Advance both nodes by dt at the given ambient and power.
     *
     * Both nodes' decay factors are memoized against the last dt seen
     * (the same memoization as RcNode::advance), so the constant-window
     * simulator path evaluates exp() only when the step size changes.
     *
     * @return new temperatures
     */
    DimmTemps advance(Celsius ambient, const DimmPower &p, Seconds dt);

    /** Current temperatures. */
    DimmTemps
    temps() const
    {
        return {ambNode.temperature(), dramNode.temperature()};
    }

    /** Reset both nodes to a temperature. */
    void reset(Celsius t);

    /** Reset both nodes to their stable points for a given load. */
    void resetToStable(Celsius ambient, const DimmPower &p);

    const CoolingConfig &cooling() const { return cfg; }

  private:
    CoolingConfig cfg;
    RcNode ambNode;
    RcNode dramNode;
    /// Memoized advance() step: both nodes' decay factors for the last dt.
    Seconds cachedDt = -1.0;
    double decayAmb = 0.0;
    double decayDram = 0.0;
};

} // namespace memtherm

#endif // MEMTHERM_CORE_THERMAL_DIMM_THERMAL_HH
