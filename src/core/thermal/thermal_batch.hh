/**
 * @file
 * Structure-of-arrays thermal state for K concurrent simulation lanes.
 *
 * The RC network of one run is tiny (two nodes per DIMM) and identical
 * in structure across every run of a grid, so the mutable per-node
 * state — temperatures, staged stable targets, per-DIMM peaks and
 * energy accumulators — lives here as contiguous per-field arrays
 * instead of arrays of node objects. A "lane" is one run's slice: field
 * arrays are lane-major (`lane * dimms() + dimm`), so one lane's DIMM
 * sweep is a tight loop over adjacent doubles and adjacent lanes are
 * adjacent in memory, which is what lets the batched simulator advance
 * K runs per window in vectorizable loops.
 *
 * The `1 - exp(-dt / tau)` decay factors are hoisted to one per-batch
 * memo (recomputed only when dt changes) instead of the per-node
 * `cachedDt` memos the object layout used; the arithmetic applied to
 * each temperature is unchanged, so a K=1 lane is bit-identical to the
 * former per-object path.
 *
 * Advancing is split in three so a batch runner can interleave lanes:
 *  1. stage: the caller writes each DIMM's stable-target temperatures
 *     into stableAmb()/stableDram() (and calls ensureDecay(dt) once);
 *  2. advanceLane(): temps += (stable - temp) * decay, the vectorizable
 *     sweep;
 *  3. the caller folds peaks/energy from the updated temperatures.
 *
 * copyLane() is an exact double-copy of every mutable per-lane field —
 * the snapshot/fork primitive of the shared-prefix batched engine.
 */

#ifndef MEMTHERM_CORE_THERMAL_THERMAL_BATCH_HH
#define MEMTHERM_CORE_THERMAL_THERMAL_BATCH_HH

#include <cstddef>
#include <vector>

#include "common/units.hh"

namespace memtherm
{

/**
 * Contiguous per-field thermal state of up to `lanes()` concurrent runs.
 */
class ThermalBatchState
{
  public:
    /**
     * @param lanes number of concurrent runs the state can hold (>= 1)
     * @param dimms DIMMs per lane's representative channel (>= 1)
     * @param bank_cells bank-grid cells per DIMM; 0 (the default, and
     *        the lumped thermal model) allocates no bank arrays
     *
     * Every temperature starts at 0; callers initialize each lane they
     * use (initLane()) before advancing it.
     */
    ThermalBatchState(int lanes, int dimms, int bank_cells = 0);

    int lanes() const { return nLanes; }
    int dimms() const { return nDimms; }
    int bankCells() const { return nBankCells; }

    /**
     * Set a lane's RC time constants and reset its temperatures, peaks
     * and energy accumulators to @p t0. Changing a lane's taus
     * invalidates the decay memo for the whole batch (the memo is
     * per-batch by design), so lanes are configured before the window
     * loop starts, never inside it.
     */
    void initLane(int lane, Seconds tau_amb, Seconds tau_dram, Celsius t0);

    /// @name Per-lane field slices, each dimms() doubles long.
    /// @{
    double *ambTemp(int lane) { return at(ambV, lane); }
    const double *ambTemp(int lane) const { return at(ambV, lane); }
    double *dramTemp(int lane) { return at(dramV, lane); }
    const double *dramTemp(int lane) const { return at(dramV, lane); }
    double *stableAmb(int lane) { return at(stableAmbV, lane); }
    double *stableDram(int lane) { return at(stableDramV, lane); }
    double *peakAmb(int lane) { return at(peakAmbV, lane); }
    const double *peakAmb(int lane) const { return at(peakAmbV, lane); }
    double *peakDram(int lane) { return at(peakDramV, lane); }
    const double *peakDram(int lane) const { return at(peakDramV, lane); }
    double *energy(int lane) { return at(energyV, lane); }
    const double *energy(int lane) const { return at(energyV, lane); }
    /// @}

    /// @name Per-lane bank-grid slices, dimms() * bankCells() doubles
    /// long, row-major by DIMM. Empty (nullptr-backed) when bankCells()
    /// is 0 — the lumped model never touches them. Bank cells share the
    /// DRAM node's tau, so advanceLane() steps them with decayDram and
    /// copyLane() copies them exactly like every other mutable field.
    /// @{
    double *bankTemp(int lane) { return bankAt(bankTempV, lane); }
    const double *bankTemp(int lane) const { return bankAt(bankTempV, lane); }
    double *stableBank(int lane) { return bankAt(stableBankV, lane); }
    double *peakBank(int lane) { return bankAt(peakBankV, lane); }
    const double *peakBank(int lane) const { return bankAt(peakBankV, lane); }
    /// @}

    /** Time a lane's energy accumulators have integrated over. */
    Seconds &energyTime(int lane) { return energyTimeV[checked(lane)]; }
    Seconds energyTime(int lane) const { return energyTimeV[checked(lane)]; }

    /**
     * Refresh the per-batch decay memo for a step of @p dt. The exp()
     * per tau is evaluated only when dt differs from the previous call —
     * the constant-window simulator pays for it once per batch, not
     * once per node or per lane.
     */
    void ensureDecay(Seconds dt);

    /** Decay factor 1 - exp(-dt / tauAmb) of the last ensureDecay(). */
    double decayAmb(int lane) const { return decayAmbV[checked(lane)]; }
    /** Decay factor 1 - exp(-dt / tauDram) of the last ensureDecay(). */
    double decayDram(int lane) const { return decayDramV[checked(lane)]; }

    /**
     * Advance one lane's temperatures toward the staged stable targets
     * using the memoized decay factors: the Eq. 3.5 step
     * `T += (T_stable - T) * (1 - exp(-dt / tau))` for every node, as
     * two tight sweeps over the lane's contiguous AMB and DRAM arrays.
     * ensureDecay() must have been called for the intended dt.
     */
    void advanceLane(int lane);

    /**
     * Exact copy of every mutable per-lane field (temperatures, staged
     * targets, peaks, energy, energy time, taus and decay factors) from
     * lane @p src to lane @p dst — the snapshot/fork primitive. A forked
     * lane continues bit-identically to a run that had computed the
     * prefix itself.
     */
    void copyLane(int dst, int src);

  private:
    double *at(std::vector<double> &v, int lane)
    {
        return v.data() + static_cast<std::size_t>(checked(lane)) * nDimms;
    }
    const double *at(const std::vector<double> &v, int lane) const
    {
        return v.data() + static_cast<std::size_t>(checked(lane)) * nDimms;
    }
    double *bankAt(std::vector<double> &v, int lane)
    {
        return v.data() + static_cast<std::size_t>(checked(lane)) * nDimms *
                              nBankCells;
    }
    const double *bankAt(const std::vector<double> &v, int lane) const
    {
        return v.data() + static_cast<std::size_t>(checked(lane)) * nDimms *
                              nBankCells;
    }
    int checked(int lane) const;

    int nLanes;
    int nDimms;
    int nBankCells;

    std::vector<double> ambV;        ///< AMB temperatures, lane-major
    std::vector<double> dramV;       ///< DRAM temperatures, lane-major
    std::vector<double> stableAmbV;  ///< staged stable AMB targets
    std::vector<double> stableDramV; ///< staged stable DRAM targets
    std::vector<double> peakAmbV;    ///< per-DIMM AMB maxima since reset
    std::vector<double> peakDramV;   ///< per-DIMM DRAM maxima since reset
    std::vector<double> energyV;     ///< per-DIMM energy since reset (J)
    std::vector<Seconds> energyTimeV;

    std::vector<double> bankTempV;   ///< bank-cell temperatures
    std::vector<double> stableBankV; ///< staged stable bank-cell targets
    std::vector<double> peakBankV;   ///< per-cell maxima since reset

    std::vector<Seconds> tauAmbV;  ///< per-lane AMB time constant
    std::vector<Seconds> tauDramV; ///< per-lane DRAM time constant
    std::vector<double> decayAmbV;
    std::vector<double> decayDramV;
    Seconds cachedDt = -1.0; ///< dt of the memoized decay factors
};

} // namespace memtherm

#endif // MEMTHERM_CORE_THERMAL_THERMAL_BATCH_HH
