#include "core/thermal/rc_node.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace memtherm
{

RcNode::RcNode(Seconds tau, Celsius t0) : rc(tau), temp(t0)
{
    panicIfNot(tau > 0.0, "RcNode: tau must be positive");
}

Celsius
RcNode::advance(Celsius stable, Seconds dt)
{
    panicIfNot(dt >= 0.0, "RcNode: negative time step");
    if (dt != cachedDt) {
        cachedDt = dt;
        cachedDecay = 1.0 - std::exp(-dt / rc);
    }
    temp += (stable - temp) * cachedDecay;
    return temp;
}

double
RcNode::decayFor(Seconds dt) const
{
    panicIfNot(dt >= 0.0, "RcNode: negative time step");
    return 1.0 - std::exp(-dt / rc);
}

Seconds
RcNode::timeToReach(Celsius target, Celsius stable) const
{
    if (target == temp)
        return 0.0;
    double num = stable - temp;
    double den = stable - target;
    // Reachable only if target lies between temp (exclusive) and stable:
    // both offsets on the same side of stable and |num| >= |den| > 0.
    bool reachable = den != 0.0 && (num > 0.0) == (den > 0.0) &&
                     std::abs(num) >= std::abs(den);
    if (!reachable)
        return std::numeric_limits<double>::infinity();
    return rc * std::log(num / den);
}

} // namespace memtherm
