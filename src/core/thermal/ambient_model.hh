/**
 * @file
 * DRAM-ambient (memory inlet) temperature model (Section 3.5).
 *
 * In the isolated model the memory ambient is the constant system inlet.
 * In the integrated model the cooling air is preheated by the processors:
 *
 *   TA_stable = tInlet + psiCpuMemXi * sum_i(Vcore_i * IPCref_i)   (Eq. 3.6)
 *
 * and the ambient follows TA_stable through an RC node with
 * tau_CPU_DRAM = 20 s.
 */

#ifndef MEMTHERM_CORE_THERMAL_AMBIENT_MODEL_HH
#define MEMTHERM_CORE_THERMAL_AMBIENT_MODEL_HH

#include "core/thermal/rc_node.hh"
#include "core/thermal/thermal_params.hh"

namespace memtherm
{

/**
 * Memory inlet temperature state.
 */
class AmbientModel
{
  public:
    /** Construct from Table 3.3 parameters; starts at the inlet temp. */
    explicit AmbientModel(const AmbientParams &p);

    /**
     * Advance the ambient node by dt.
     *
     * @param sum_v_ipc sum over cores of (supply voltage * reference IPC)
     * @param cpu_power CPU package power (used when psiCpuPower != 0)
     * @return the new memory ambient temperature
     */
    Celsius advance(double sum_v_ipc, Watts cpu_power, Seconds dt);

    /** Stable ambient for a constant CPU heat rate (Eq. 3.6). */
    Celsius
    stable(double sum_v_ipc, Watts cpu_power = 0.0) const
    {
        return params.tInlet + params.psiCpuMemXi * sum_v_ipc +
               params.psiCpuPower * cpu_power;
    }

    /** Current memory ambient temperature. */
    Celsius temperature() const { return node.temperature(); }

    /** True when CPU heat affects the memory ambient. */
    bool
    integrated() const
    {
        return params.psiCpuMemXi != 0.0 || params.psiCpuPower != 0.0;
    }

    const AmbientParams &p() const { return params; }

    /** Reset to a given ambient temperature. */
    void reset(Celsius t) { node.reset(t); }

  private:
    AmbientParams params;
    RcNode node;
};

} // namespace memtherm

#endif // MEMTHERM_CORE_THERMAL_AMBIENT_MODEL_HH
