#include "core/thermal/dimm_thermal.hh"

#include "common/logging.hh"

namespace memtherm
{

DimmThermalModel::DimmThermalModel(const CoolingConfig &cooling, Celsius t0)
    : cfg(cooling), ambNode(cooling.tauAmb, t0), dramNode(cooling.tauDram, t0)
{
}

DimmTemps
DimmThermalModel::advance(Celsius ambient, const DimmPower &p, Seconds dt)
{
    panicIfNot(dt >= 0.0, "DimmThermalModel: negative time step");
    if (dt != cachedDt) {
        cachedDt = dt;
        decayAmb = ambNode.decayFor(dt);
        decayDram = dramNode.decayFor(dt);
    }
    Celsius sa = stableAmb(ambient, p);
    Celsius sd = stableDram(ambient, p);
    return {ambNode.advanceWith(sa, decayAmb),
            dramNode.advanceWith(sd, decayDram)};
}

void
DimmThermalModel::reset(Celsius t)
{
    ambNode.reset(t);
    dramNode.reset(t);
}

void
DimmThermalModel::resetToStable(Celsius ambient, const DimmPower &p)
{
    ambNode.reset(stableAmb(ambient, p));
    dramNode.reset(stableDram(ambient, p));
}

} // namespace memtherm
