/**
 * @file
 * First-order thermal RC node (Eq. 3.5).
 *
 * T(t + dt) = T(t) + (T_stable - T(t)) * (1 - exp(-dt / tau))
 *
 * The paper treats temperature like voltage in an electrical RC circuit
 * (after Skadron et al.); there is no leakage-thermal feedback because
 * DRAM/AMB leakage is negligible (<2% observed).
 */

#ifndef MEMTHERM_CORE_THERMAL_RC_NODE_HH
#define MEMTHERM_CORE_THERMAL_RC_NODE_HH

#include "common/units.hh"

namespace memtherm
{

/**
 * One exponential-relaxation temperature state.
 */
class RcNode
{
  public:
    /**
     * @param tau  RC time constant in seconds (> 0)
     * @param t0   initial temperature
     */
    RcNode(Seconds tau, Celsius t0);

    /** Current temperature. */
    Celsius temperature() const { return temp; }

    /** Reset to a given temperature. */
    void reset(Celsius t) { temp = t; }

    /**
     * Advance by dt toward the given stable temperature (Eq. 3.5).
     *
     * The decay factor 1 - exp(-dt / tau) is cached and recomputed only
     * when dt differs from the previous call — the simulator advances
     * with a constant window, so the exp() is evaluated once per run
     * instead of once per step.
     *
     * @return the new temperature
     */
    Celsius advance(Celsius stable, Seconds dt);

    /**
     * Decay factor 1 - exp(-dt / tau) for a step of dt, without
     * advancing. Callers stepping many nodes at one dt (e.g.
     * DimmThermalModel) can compute factors once and reuse them via
     * advanceWith().
     */
    double decayFor(Seconds dt) const;

    /** Advance using a factor precomputed by decayFor(). */
    Celsius
    advanceWith(Celsius stable, double decay)
    {
        temp += (stable - temp) * decay;
        return temp;
    }

    /**
     * Closed-form time for this node to move from its current temperature
     * to @p target while the stable temperature is held at @p stable.
     * Returns +inf when the target is unreachable (not strictly between
     * current and stable).
     */
    Seconds timeToReach(Celsius target, Celsius stable) const;

    Seconds tau() const { return rc; }

  private:
    Seconds rc;
    Celsius temp;
    /// Memoized advance() step: decay factor for the last dt seen.
    Seconds cachedDt = -1.0;
    double cachedDecay = 0.0;
};

} // namespace memtherm

#endif // MEMTHERM_CORE_THERMAL_RC_NODE_HH
