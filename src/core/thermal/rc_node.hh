/**
 * @file
 * First-order thermal RC node (Eq. 3.5).
 *
 * T(t + dt) = T(t) + (T_stable - T(t)) * (1 - exp(-dt / tau))
 *
 * The paper treats temperature like voltage in an electrical RC circuit
 * (after Skadron et al.); there is no leakage-thermal feedback because
 * DRAM/AMB leakage is negligible (<2% observed).
 */

#ifndef MEMTHERM_CORE_THERMAL_RC_NODE_HH
#define MEMTHERM_CORE_THERMAL_RC_NODE_HH

#include "common/units.hh"

namespace memtherm
{

/**
 * One exponential-relaxation temperature state.
 */
class RcNode
{
  public:
    /**
     * @param tau  RC time constant in seconds (> 0)
     * @param t0   initial temperature
     */
    RcNode(Seconds tau, Celsius t0);

    /** Current temperature. */
    Celsius temperature() const { return temp; }

    /** Reset to a given temperature. */
    void reset(Celsius t) { temp = t; }

    /**
     * Advance by dt toward the given stable temperature (Eq. 3.5).
     * @return the new temperature
     */
    Celsius advance(Celsius stable, Seconds dt);

    /**
     * Closed-form time for this node to move from its current temperature
     * to @p target while the stable temperature is held at @p stable.
     * Returns +inf when the target is unreachable (not strictly between
     * current and stable).
     */
    Seconds timeToReach(Celsius target, Celsius stable) const;

    Seconds tau() const { return rc; }

  private:
    Seconds rc;
    Celsius temp;
};

} // namespace memtherm

#endif // MEMTHERM_CORE_THERMAL_RC_NODE_HH
