/**
 * @file
 * Whole-memory-subsystem power/thermal state.
 *
 * Channels are symmetric: every channel receives 1/nChannels of the
 * system traffic and distributes it along its DIMM chain by the same
 * per-DIMM share vector — uniform address interleave by default, or a
 * non-uniform split supplied at construction (the scenario layer's
 * `traffic_shape` knob). One representative channel's DIMMs are modeled
 * thermally; subsystem power is scaled by the channel count for energy
 * accounting.
 */

#ifndef MEMTHERM_CORE_THERMAL_MEMORY_THERMAL_HH
#define MEMTHERM_CORE_THERMAL_MEMORY_THERMAL_HH

#include <vector>

#include "core/power/power_model.hh"
#include "core/thermal/dimm_thermal.hh"

namespace memtherm
{

/**
 * Physical organization of the FBDIMM subsystem (Table 4.1 defaults).
 * Scenario files select one by catalog name or inline object (the
 * `memory_org` knob and sweep axis of core/sim/scenario.hh).
 */
struct MemoryOrgConfig
{
    int nChannels = 4;          ///< physical FBDIMM channels
    int nDimmsPerChannel = 4;   ///< DIMMs per physical channel

    bool operator==(const MemoryOrgConfig &) const = default;
};

/** One advance() step's outputs. */
struct MemoryThermalSample
{
    Celsius hottestAmb = 0.0;    ///< max AMB temperature over DIMMs
    Celsius hottestDram = 0.0;   ///< max DRAM temperature over DIMMs
    Watts subsystemPower = 0.0;  ///< total FBDIMM power, all channels
};

/**
 * Power + thermal model of the full FBDIMM subsystem.
 */
class MemoryThermalModel
{
  public:
    /**
     * @param org     channel/DIMM organization
     * @param cooling Table 3.2 column
     * @param power   per-DIMM power models
     * @param t0      initial temperature of every node
     * @param traffic_shares per-DIMM fraction of a channel's local
     *        traffic (non-negative, summing to 1, one entry per DIMM of
     *        the chain); empty selects uniform address interleave. An
     *        explicit uniform vector (each entry exactly 1/nDimms) is
     *        bit-identical to leaving it empty.
     */
    MemoryThermalModel(const MemoryOrgConfig &org,
                       const CoolingConfig &cooling,
                       const DimmPowerModel &power, Celsius t0,
                       std::vector<double> traffic_shares = {});

    /**
     * Advance all DIMM nodes by dt.
     *
     * @param total_read   system-wide read throughput (GB/s)
     * @param total_write  system-wide write throughput (GB/s)
     * @param ambient      current memory inlet temperature
     * @param dt           time step (s)
     */
    MemoryThermalSample advance(GBps total_read, GBps total_write,
                                Celsius ambient, Seconds dt);

    /** Stable hottest-AMB temperature at an operating point (no advance). */
    Celsius stableHottestAmb(GBps total_read, GBps total_write,
                             Celsius ambient) const;

    /** Stable hottest-DRAM temperature at an operating point. */
    Celsius stableHottestDram(GBps total_read, GBps total_write,
                              Celsius ambient) const;

    /** Subsystem power at an operating point, without advancing. */
    Watts subsystemPower(GBps total_read, GBps total_write) const;

    /** Current hottest temperatures. */
    MemoryThermalSample current() const;

    /** Per-DIMM temperatures on the representative channel. */
    std::vector<DimmTemps> dimmTemps() const;

    /**
     * Fill per-DIMM current temperatures into caller-owned buffers
     * (resized to the chain length, then overwritten). Allocation-free
     * once the buffers are warm — the per-DIMM DTM sensor path calls
     * this every decision.
     */
    void currentPerDimm(std::vector<Celsius> &amb,
                        std::vector<Celsius> &dram) const;

    /**
     * Replace the per-DIMM traffic shares mid-run (the remap actuator).
     * Same contract as the constructor argument, enforced here: empty
     * selects uniform interleave, otherwise one finite non-negative
     * entry per DIMM summing to 1 (within 1e-9). Thermal state, peaks
     * and energy accounting are untouched — only future traffic
     * decomposition changes.
     *
     * @return fraction of the channel's local traffic moved, i.e.
     *         0.5 * the L1 distance between the effective old and new
     *         distributions (0 when nothing changed); the simulator
     *         charges the migration-cost burst from this.
     */
    double setTrafficShares(std::vector<double> new_shares);

    /**
     * Per-DIMM peak temperatures since the last reset (index 0 nearest
     * the memory controller). advance() folds every step into these, so
     * the hot loop never materializes a temperature vector; resets
     * restart the peaks from the reset temperatures.
     */
    const std::vector<DimmTemps> &dimmPeaks() const { return peaks; }

    /**
     * Per-DIMM mean power on the representative channel since the last
     * reset (energy folded in by advance(), divided by the elapsed
     * time; all zeros before any advance). Like the peaks, the energy
     * accumulators are members the hot loop updates in place — only
     * this accessor materializes a vector.
     */
    std::vector<Watts> dimmAvgPower() const;

    /** Reset every node. */
    void reset(Celsius t);

    /**
     * Reset every node to its stable point at the given operating point —
     * e.g. (0, 0, ambient) models a machine that idled long enough for
     * temperatures to settle before the run (the paper's experimental
     * protocol, Section 5.4.1).
     */
    void resetToStable(GBps total_read, GBps total_write, Celsius ambient);

    const MemoryOrgConfig &org() const { return orgCfg; }
    const DimmPowerModel &powerModel() const { return pwr; }
    /** Per-DIMM traffic shares; empty means uniform interleave. */
    const std::vector<double> &trafficShares() const { return shares; }

  private:
    /**
     * Per-DIMM power on the representative channel, written into the
     * member scratch buffers (returned by reference). The hot loop calls
     * this every step; reusing the buffers keeps the steady state free
     * of heap allocation. Consequence: the buffers are scratch state, so
     * even the const queries (stableHottestAmb, stableHottestDram,
     * subsystemPower) are NOT safe to call concurrently on one instance.
     * Each simulation run owns its own model, which is the invariant the
     * parallel ExperimentEngine relies on.
     */
    const std::vector<DimmPower> &channelPower(GBps total_read,
                                               GBps total_write) const;

    MemoryOrgConfig orgCfg;
    DimmPowerModel pwr;
    std::vector<double> shares; ///< per-DIMM traffic split; empty=uniform
    std::vector<DimmThermalModel> dimms;
    std::vector<DimmTemps> peaks; ///< per-DIMM maxima since last reset
    std::vector<Joules> energyPerDimm; ///< per-DIMM energy since reset
    Seconds energyTime = 0.0; ///< time advanced since last reset

    /// Scratch for channelPower(): per-DIMM traffic and power, reused
    /// across steps (mutable: const queries share the scratch).
    mutable std::vector<DimmTraffic> trafficScratch;
    mutable std::vector<DimmPower> powerScratch;
};

} // namespace memtherm

#endif // MEMTHERM_CORE_THERMAL_MEMORY_THERMAL_HH
