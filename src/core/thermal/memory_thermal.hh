/**
 * @file
 * Whole-memory-subsystem power/thermal state.
 *
 * Channels are symmetric: every channel receives 1/nChannels of the
 * system traffic and distributes it along its DIMM chain by the same
 * per-DIMM share vector — uniform address interleave by default, or a
 * non-uniform split supplied at construction (the scenario layer's
 * `traffic_shape` knob). One representative channel's DIMMs are modeled
 * thermally; subsystem power is scaled by the channel count for energy
 * accounting.
 *
 * The mutable thermal state (temperatures, peaks, energy accumulators)
 * lives in a ThermalBatchState — structure-of-arrays, one lane per run.
 * A model either owns a private single-lane state (the scalar path and
 * every historical constructor) or is a *view* over one lane of a
 * caller-owned multi-lane state (the batched simulator), selected by
 * constructor. Both modes run the same arithmetic in the same order, so
 * an owning model is bit-identical to the former array-of-objects
 * layout and a view lane is bit-identical to an owning model.
 */

#ifndef MEMTHERM_CORE_THERMAL_MEMORY_THERMAL_HH
#define MEMTHERM_CORE_THERMAL_MEMORY_THERMAL_HH

#include <memory>
#include <optional>
#include <vector>

#include "core/power/power_model.hh"
#include "core/thermal/bank_grid.hh"
#include "core/thermal/dimm_thermal.hh"
#include "core/thermal/thermal_batch.hh"

namespace memtherm
{

/**
 * Physical organization of the FBDIMM subsystem (Table 4.1 defaults).
 * Scenario files select one by catalog name or inline object (the
 * `memory_org` knob and sweep axis of core/sim/scenario.hh).
 */
struct MemoryOrgConfig
{
    int nChannels = 4;          ///< physical FBDIMM channels
    int nDimmsPerChannel = 4;   ///< DIMMs per physical channel

    bool operator==(const MemoryOrgConfig &) const = default;
};

/** One advance() step's outputs. */
struct MemoryThermalSample
{
    Celsius hottestAmb = 0.0;    ///< max AMB temperature over DIMMs
    Celsius hottestDram = 0.0;   ///< max DRAM temperature over DIMMs
    Watts subsystemPower = 0.0;  ///< total FBDIMM power, all channels
};

/**
 * Power + thermal model of the full FBDIMM subsystem.
 */
class MemoryThermalModel
{
  public:
    /**
     * Owning mode: the model allocates a private single-lane state.
     *
     * @param org     channel/DIMM organization
     * @param cooling Table 3.2 column
     * @param power   per-DIMM power models
     * @param t0      initial temperature of every node
     * @param traffic_shares per-DIMM fraction of a channel's local
     *        traffic (non-negative, summing to 1, one entry per DIMM of
     *        the chain); empty selects uniform address interleave. An
     *        explicit uniform vector (each entry exactly 1/nDimms) is
     *        bit-identical to leaving it empty.
     * @param bank_grid optional per-bank thermal overlay
     *        (core/thermal/bank_grid.hh); std::nullopt (the default)
     *        selects the paper's lumped model and allocates no bank
     *        state, keeping every pre-grid run bit-identical.
     */
    MemoryThermalModel(const MemoryOrgConfig &org,
                       const CoolingConfig &cooling,
                       const DimmPowerModel &power, Celsius t0,
                       std::vector<double> traffic_shares = {},
                       std::optional<BankGridConfig> bank_grid =
                           std::nullopt);

    /**
     * View mode: the model's thermal state is lane @p lane of the
     * caller-owned @p state (whose dimms() must match the organization's
     * chain length, and whose bankCells() must match the bank grid's
     * cells — 0 when @p bank_grid is std::nullopt). The lane is
     * (re)initialized to @p t0. The state must outlive the model; two
     * models must not view one lane.
     */
    MemoryThermalModel(const MemoryOrgConfig &org,
                       const CoolingConfig &cooling,
                       const DimmPowerModel &power, Celsius t0,
                       std::vector<double> traffic_shares,
                       ThermalBatchState &state, int lane,
                       std::optional<BankGridConfig> bank_grid =
                           std::nullopt);

    /**
     * Fork: a view over lane @p lane of @p state that copies @p src's
     * configuration, traffic shares and *current lane contents* exactly
     * (the shared-prefix snapshot restore). The new lane continues
     * bit-identically to @p src.
     */
    MemoryThermalModel(const MemoryThermalModel &src,
                       ThermalBatchState &state, int lane);

    /** Deep copy: the copy owns a private single-lane snapshot of
     *  @p other's current lane, whatever mode @p other is in. */
    MemoryThermalModel(const MemoryThermalModel &other);
    MemoryThermalModel &operator=(const MemoryThermalModel &other);
    MemoryThermalModel(MemoryThermalModel &&) = default;
    MemoryThermalModel &operator=(MemoryThermalModel &&) = default;

    /**
     * Advance all DIMM nodes by dt: stageAdvance() + commitStaged() +
     * finishAdvance() in one call (the scalar path).
     *
     * @param total_read   system-wide read throughput (GB/s)
     * @param total_write  system-wide write throughput (GB/s)
     * @param ambient      current memory inlet temperature
     * @param dt           time step (s)
     */
    MemoryThermalSample advance(GBps total_read, GBps total_write,
                                Celsius ambient, Seconds dt);

    /**
     * Phase 1 of a split advance: evaluate the power model and write
     * each DIMM's stable-target temperatures into the lane's staging
     * arrays (and refresh the batch decay memo for @p dt). The batched
     * simulator stages every lane, sweeps the temperatures, then
     * finishes every lane; no other power query may run on this model
     * between stage and finish (they share the power scratch).
     */
    void stageAdvance(GBps total_read, GBps total_write, Celsius ambient,
                      Seconds dt);

    /** Phase 2: the vectorizable temperature sweep over this lane. */
    void commitStaged() { st->advanceLane(laneIdx); }

    /** Phase 3: fold peaks and energy; returns the step's sample. */
    MemoryThermalSample finishAdvance(Seconds dt);

    /** Stable hottest-AMB temperature at an operating point (no advance). */
    Celsius stableHottestAmb(GBps total_read, GBps total_write,
                             Celsius ambient) const;

    /** Stable hottest-DRAM temperature at an operating point. */
    Celsius stableHottestDram(GBps total_read, GBps total_write,
                              Celsius ambient) const;

    /** Subsystem power at an operating point, without advancing. */
    Watts subsystemPower(GBps total_read, GBps total_write) const;

    /** Current hottest temperatures. */
    MemoryThermalSample current() const;

    /** Per-DIMM temperatures on the representative channel. */
    std::vector<DimmTemps> dimmTemps() const;

    /**
     * Fill per-DIMM current temperatures into caller-owned buffers
     * (resized to the chain length, then overwritten). Allocation-free
     * once the buffers are warm — the per-DIMM DTM sensor path calls
     * this every decision.
     */
    void currentPerDimm(std::vector<Celsius> &amb,
                        std::vector<Celsius> &dram) const;

    /**
     * Replace the per-DIMM traffic shares mid-run (the remap actuator).
     * Same contract as the constructor argument, enforced here: empty
     * selects uniform interleave, otherwise one finite non-negative
     * entry per DIMM summing to 1 (within 1e-9). Thermal state, peaks
     * and energy accounting are untouched — only future traffic
     * decomposition changes.
     *
     * @return fraction of the channel's local traffic moved, i.e.
     *         0.5 * the L1 distance between the effective old and new
     *         distributions (0 when nothing changed); the simulator
     *         charges the migration-cost burst from this.
     */
    double setTrafficShares(std::vector<double> new_shares);

    /**
     * Set the per-DIMM refresh power added to each DIMM's DRAM devices
     * by every subsequent power-model evaluation (the
     * temperature->power half of the refresh feedback edge,
     * core/sim/refresh_model.hh). Same arity contract as the traffic
     * shares: empty (the default) adds nothing, otherwise one finite
     * non-negative entry per DIMM of the chain. The simulator rewrites
     * this every window from the refresh model's current band per DIMM;
     * allocation-free once the member buffer is warm.
     */
    void setRefreshDramPower(const std::vector<Watts> &w);

    /** Per-DIMM refresh power last set; empty means none. */
    const std::vector<Watts> &refreshDramPower() const
    {
        return refreshDram;
    }

    /**
     * Per-DIMM peak temperatures since the last reset (index 0 nearest
     * the memory controller). advance() folds every step into the
     * lane's peak arrays, so the hot loop never materializes a
     * temperature vector; only this accessor does. Resets restart the
     * peaks from the reset temperatures.
     */
    std::vector<DimmTemps> dimmPeaks() const;

    /**
     * Per-bank-cell peak DRAM temperatures since the last reset:
     * nDimmsPerChannel * bankGrid()->cells() entries, row-major by DIMM
     * (DIMM 0's cells first). Empty when the model is lumped. Like
     * dimmPeaks(), the fold happens in place every step; only this
     * accessor materializes a vector.
     */
    std::vector<Celsius> bankPeaks() const;

    /** The bank-grid overlay, or std::nullopt for the lumped model. */
    const std::optional<BankGridConfig> &bankGrid() const { return grid; }

    /**
     * Per-DIMM mean power on the representative channel since the last
     * reset (energy folded in by advance(), divided by the elapsed
     * time; all zeros before any advance). Like the peaks, the energy
     * accumulators are lane state the hot loop updates in place — only
     * this accessor materializes a vector.
     */
    std::vector<Watts> dimmAvgPower() const;

    /** Reset every node. */
    void reset(Celsius t);

    /**
     * Reset every node to its stable point at the given operating point —
     * e.g. (0, 0, ambient) models a machine that idled long enough for
     * temperatures to settle before the run (the paper's experimental
     * protocol, Section 5.4.1).
     */
    void resetToStable(GBps total_read, GBps total_write, Celsius ambient);

    const MemoryOrgConfig &org() const { return orgCfg; }
    const DimmPowerModel &powerModel() const { return pwr; }
    const CoolingConfig &cooling() const { return cool; }
    /** Per-DIMM traffic shares; empty means uniform interleave. */
    const std::vector<double> &trafficShares() const { return shares; }
    /** The lane this model's state occupies (0 in owning mode). */
    int lane() const { return laneIdx; }

  private:
    /** Eq. 3.3: stable AMB temperature for a given operating point. */
    Celsius stableAmbAt(Celsius ambient, const DimmPower &p) const
    {
        return ambient + p.amb * cool.psiAmb + p.dram * cool.psiDramToAmb;
    }
    /** Eq. 3.4: stable DRAM temperature for a given operating point. */
    Celsius stableDramAt(Celsius ambient, const DimmPower &p) const
    {
        return ambient + p.amb * cool.psiAmbToDram + p.dram * cool.psiDram;
    }
    /**
     * Stable temperature of one bank cell: Eq. 3.4 with the DIMM's DRAM
     * power scaled by the cell's smoothed heat weight @p w. The sum
     * association matches stableDramAt exactly, and uniform weights are
     * exactly 1.0, so a uniform cell's target — and therefore its whole
     * trajectory, the time constants being shared — is bit-identical to
     * the lumped DRAM node's.
     */
    Celsius stableBankAt(Celsius ambient, const DimmPower &p,
                         double w) const
    {
        return ambient + p.amb * cool.psiAmbToDram +
               (p.dram * w) * cool.psiDram;
    }

    /**
     * Per-DIMM power on the representative channel, written into the
     * member scratch buffers (returned by reference). The hot loop calls
     * this every step; reusing the buffers keeps the steady state free
     * of heap allocation. Consequence: the buffers are scratch state, so
     * even the const queries (stableHottestAmb, stableHottestDram,
     * subsystemPower) are NOT safe to call concurrently on one instance.
     * Each simulation run owns its own model, which is the invariant the
     * parallel ExperimentEngine relies on.
     */
    const std::vector<DimmPower> &channelPower(GBps total_read,
                                               GBps total_write) const;

    /** Exact element-wise copy of @p src's lane into this model's lane
     *  (works across states; invalidates the decay memo via initLane's
     *  caller having set matching taus). */
    void copyLaneFrom(const MemoryThermalModel &src);

    MemoryOrgConfig orgCfg;
    DimmPowerModel pwr;
    CoolingConfig cool;
    std::vector<double> shares; ///< per-DIMM traffic split; empty=uniform
    /// Per-DIMM refresh power folded into the DRAM devices by
    /// channelPower(); empty = no refresh feedback.
    std::vector<Watts> refreshDram;

    /// Bank-grid overlay; std::nullopt = lumped model, no bank state.
    std::optional<BankGridConfig> grid;
    /// Smoothed, cells-scaled per-cell heat weights (row-major by DIMM;
    /// resolveBankCellWeights), precomputed once — weights are constant
    /// over a run. Empty when lumped.
    std::vector<double> cellW;

    std::unique_ptr<ThermalBatchState> ownedState; ///< owning mode only
    ThermalBatchState *st; ///< owned or caller-owned batch state
    int laneIdx;           ///< this model's lane in *st

    /// Scratch for channelPower(): per-DIMM traffic and power, reused
    /// across steps (mutable: const queries share the scratch).
    mutable std::vector<DimmTraffic> trafficScratch;
    mutable std::vector<DimmPower> powerScratch;
};

} // namespace memtherm

#endif // MEMTHERM_CORE_THERMAL_MEMORY_THERMAL_HH
