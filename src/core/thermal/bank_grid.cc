#include "core/thermal/bank_grid.hh"

#include <cmath>

#include "common/logging.hh"

namespace memtherm
{

void
smoothBankCells(const BankGridConfig &grid, const double *w, double *out)
{
    const int nx = grid.x;
    const int nz = grid.z;
    for (int iz = 0; iz < nz; ++iz) {
        for (int ix = 0; ix < nx; ++ix) {
            const int c = iz * nx + ix;
            // Flux divided by the max degree (4), not the actual degree,
            // keeps the operator symmetric: the (a -> b) and (b -> a)
            // contributions use the same coefficient, so pairwise fluxes
            // cancel and the cell sum is conserved at grid edges too.
            double flux = 0.0;
            if (ix > 0)
                flux += w[c - 1] - w[c];
            if (ix + 1 < nx)
                flux += w[c + 1] - w[c];
            if (iz > 0)
                flux += w[c - nx] - w[c];
            if (iz + 1 < nz)
                flux += w[c + nx] - w[c];
            out[c] = w[c] + kBankLateralCoupling * flux / 4.0;
        }
    }
}

std::vector<double>
resolveBankCellWeights(const BankGridConfig &grid, int n_dimms)
{
    panicIfNot(grid.x >= 1 && grid.z >= 1, "bank grid must be at least 1x1");
    panicIfNot(n_dimms >= 1, "bank grid needs at least one DIMM");
    const int cells = grid.cells();
    std::vector<double> out(static_cast<std::size_t>(n_dimms) * cells);

    if (grid.weights.empty()) {
        // Uniform: the scaled weight is exactly 1.0 per cell (no 1/N
        // round-trip), so each cell's stable target is bit-identical to
        // the lumped DRAM node's.
        for (double &v : out)
            v = 1.0;
        return out;
    }

    const std::size_t per_dimm = static_cast<std::size_t>(cells);
    const std::size_t n = grid.weights.size();
    panicIfNot(n == per_dimm ||
                   n == per_dimm * static_cast<std::size_t>(n_dimms),
               "bank grid weights must have cells() or nDimms*cells() entries");
    for (double v : grid.weights)
        panicIfNot(std::isfinite(v) && v >= 0.0,
                   "bank grid weights must be finite and non-negative");

    std::vector<double> scaled(per_dimm);
    for (int d = 0; d < n_dimms; ++d) {
        const double *w =
            grid.weights.data() + (n == per_dimm ? 0 : d * per_dimm);
        for (std::size_t c = 0; c < per_dimm; ++c)
            scaled[c] = w[c] * cells;
        smoothBankCells(grid, scaled.data(), out.data() + d * per_dimm);
    }
    return out;
}

} // namespace memtherm
