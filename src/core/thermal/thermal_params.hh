/**
 * @file
 * Thermal-model parameters for FBDIMM, after Tables 3.2 and 3.3.
 */

#ifndef MEMTHERM_CORE_THERMAL_THERMAL_PARAMS_HH
#define MEMTHERM_CORE_THERMAL_THERMAL_PARAMS_HH

#include <string>

#include "common/units.hh"

namespace memtherm
{

/**
 * Heat-spreader type (Section 3.4): AOHS covers only the AMB; FDHS covers
 * the full DIMM, adding a heat-exchange path between AMB and DRAMs.
 */
enum class HeatSpreader { AOHS, FDHS };

/** Cooling air velocities for which Table 3.2 provides resistances. */
enum class AirVelocity { MPS_1_0, MPS_1_5, MPS_3_0 };

/**
 * One column of Table 3.2: thermal resistances (degC/W) and RC time
 * constants (s) for a given heat spreader and air velocity.
 */
struct CoolingConfig
{
    HeatSpreader spreader = HeatSpreader::AOHS;
    AirVelocity velocity = AirVelocity::MPS_1_5;

    double psiAmb = 9.3;        ///< AMB -> ambient
    double psiDramToAmb = 3.4;  ///< DRAM power's effect on AMB temperature
    double psiDram = 4.0;       ///< DRAM -> ambient
    double psiAmbToDram = 4.1;  ///< AMB power's effect on DRAM temperature
    Seconds tauAmb = 50.0;      ///< AMB thermal RC constant
    Seconds tauDram = 100.0;    ///< DRAM thermal RC constant

    /** Short identifier, e.g. "AOHS_1.5". */
    std::string name() const;
};

/** Look up a Table 3.2 column. */
CoolingConfig coolingConfig(HeatSpreader s, AirVelocity v);

/** The two configurations the paper's experiments use (Section 3.4). */
CoolingConfig coolingAohs15();
CoolingConfig coolingFdhs10();

/**
 * DRAM-ambient model parameters (Eq. 3.6, Table 3.3).
 *
 * TA_stable = tInlet + psiCpuMemXi * sum_i(Vcore_i * IPCref_i)
 *
 * psiCpuMemXi is the lumped product PsiCPU_MEM * xi; the paper reports it
 * as 1.5 on their servers and 0.0 for the isolated model. IPCref is
 * committed instructions over *reference* (max-frequency) cycles.
 */
struct AmbientParams
{
    Celsius tInlet = 50.0;     ///< system inlet temperature
    double psiCpuMemXi = 0.0;  ///< degC per (V * IPCref) summed over cores
    /**
     * Alternative coupling used by the Chapter 5 testbed emulation:
     * degC of inlet preheat per watt of measured CPU package power.
     * (Eq. 3.6's xi * V * IPC term is itself a power estimator; on the
     * real servers the preheat tracks total package power, including the
     * idle floor of memory-stalled cores.) Both couplings add.
     */
    double psiCpuPower = 0.0;
    Seconds tauCpuDram = 20.0; ///< RC constant of CPU->DRAM air coupling
};

/** Table 3.3: isolated-model ambient parameters per cooling config. */
AmbientParams isolatedAmbient(const CoolingConfig &cooling);

/** Table 3.3: integrated-model ambient parameters per cooling config. */
AmbientParams integratedAmbient(const CoolingConfig &cooling);

/** Thermal design points for the FBDIMM chosen in the study (Sec. 4.3.3). */
struct ThermalLimits
{
    Celsius ambTdp = 110.0;     ///< AMB thermal design point
    Celsius dramTdp = 85.0;     ///< DRAM device thermal design point
    Celsius ambTrp = 109.0;     ///< AMB thermal release point (default)
    Celsius dramTrp = 84.0;     ///< DRAM thermal release point (default)
};

} // namespace memtherm

#endif // MEMTHERM_CORE_THERMAL_THERMAL_PARAMS_HH
