#include "core/thermal/memory_thermal.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace memtherm
{

namespace
{

void
checkOrgAndShares(const MemoryOrgConfig &org,
                  const std::vector<double> &shares)
{
    panicIfNot(org.nChannels >= 1 && org.nDimmsPerChannel >= 1,
               "MemoryThermalModel: bad organization");
    panicIfNot(shares.empty() ||
                   static_cast<int>(shares.size()) == org.nDimmsPerChannel,
               "MemoryThermalModel: traffic share arity");
}

} // namespace

MemoryThermalModel::MemoryThermalModel(const MemoryOrgConfig &org,
                                       const CoolingConfig &cooling,
                                       const DimmPowerModel &power,
                                       Celsius t0,
                                       std::vector<double> traffic_shares,
                                       std::optional<BankGridConfig>
                                           bank_grid)
    : orgCfg(org), pwr(power), cool(cooling),
      shares(std::move(traffic_shares)), grid(std::move(bank_grid)),
      ownedState(nullptr), st(nullptr), laneIdx(0)
{
    checkOrgAndShares(orgCfg, shares);
    if (grid)
        cellW = resolveBankCellWeights(*grid, orgCfg.nDimmsPerChannel);
    ownedState = std::make_unique<ThermalBatchState>(
        1, orgCfg.nDimmsPerChannel, grid ? grid->cells() : 0);
    st = ownedState.get();
    st->initLane(0, cool.tauAmb, cool.tauDram, t0);
}

MemoryThermalModel::MemoryThermalModel(const MemoryOrgConfig &org,
                                       const CoolingConfig &cooling,
                                       const DimmPowerModel &power,
                                       Celsius t0,
                                       std::vector<double> traffic_shares,
                                       ThermalBatchState &state, int lane,
                                       std::optional<BankGridConfig>
                                           bank_grid)
    : orgCfg(org), pwr(power), cool(cooling),
      shares(std::move(traffic_shares)), grid(std::move(bank_grid)),
      ownedState(nullptr), st(&state), laneIdx(lane)
{
    checkOrgAndShares(orgCfg, shares);
    if (grid)
        cellW = resolveBankCellWeights(*grid, orgCfg.nDimmsPerChannel);
    panicIfNot(state.dimms() == orgCfg.nDimmsPerChannel,
               "MemoryThermalModel: batch state chain length mismatch");
    panicIfNot(state.bankCells() == (grid ? grid->cells() : 0),
               "MemoryThermalModel: batch state bank cell mismatch");
    st->initLane(laneIdx, cool.tauAmb, cool.tauDram, t0);
}

MemoryThermalModel::MemoryThermalModel(const MemoryThermalModel &src,
                                       ThermalBatchState &state, int lane)
    : orgCfg(src.orgCfg), pwr(src.pwr), cool(src.cool), shares(src.shares),
      refreshDram(src.refreshDram), grid(src.grid), cellW(src.cellW),
      ownedState(nullptr), st(&state), laneIdx(lane)
{
    panicIfNot(state.dimms() == orgCfg.nDimmsPerChannel,
               "MemoryThermalModel: batch state chain length mismatch");
    panicIfNot(state.bankCells() == (grid ? grid->cells() : 0),
               "MemoryThermalModel: batch state bank cell mismatch");
    st->initLane(laneIdx, cool.tauAmb, cool.tauDram, 0.0);
    copyLaneFrom(src);
}

MemoryThermalModel::MemoryThermalModel(const MemoryThermalModel &other)
    : orgCfg(other.orgCfg), pwr(other.pwr), cool(other.cool),
      shares(other.shares), refreshDram(other.refreshDram),
      grid(other.grid), cellW(other.cellW),
      ownedState(nullptr), st(nullptr), laneIdx(0)
{
    ownedState = std::make_unique<ThermalBatchState>(
        1, orgCfg.nDimmsPerChannel, grid ? grid->cells() : 0);
    st = ownedState.get();
    st->initLane(0, cool.tauAmb, cool.tauDram, 0.0);
    copyLaneFrom(other);
}

MemoryThermalModel &
MemoryThermalModel::operator=(const MemoryThermalModel &other)
{
    if (this == &other)
        return *this;
    MemoryThermalModel copy(other);
    *this = std::move(copy);
    return *this;
}

void
MemoryThermalModel::copyLaneFrom(const MemoryThermalModel &src)
{
    const int n = orgCfg.nDimmsPerChannel;
    const ThermalBatchState &from = *src.st;
    for (int i = 0; i < n; ++i) {
        st->ambTemp(laneIdx)[i] = from.ambTemp(src.laneIdx)[i];
        st->dramTemp(laneIdx)[i] = from.dramTemp(src.laneIdx)[i];
        st->peakAmb(laneIdx)[i] = from.peakAmb(src.laneIdx)[i];
        st->peakDram(laneIdx)[i] = from.peakDram(src.laneIdx)[i];
        st->energy(laneIdx)[i] = from.energy(src.laneIdx)[i];
    }
    for (int i = 0; i < n * st->bankCells(); ++i) {
        st->bankTemp(laneIdx)[i] = from.bankTemp(src.laneIdx)[i];
        st->peakBank(laneIdx)[i] = from.peakBank(src.laneIdx)[i];
    }
    st->energyTime(laneIdx) = from.energyTime(src.laneIdx);
    // The staging arrays and decay memo are per-step scratch: initLane
    // invalidated the memo, and the next stageAdvance recomputes the
    // decay factors from (dt, tau) — deterministically the same doubles
    // the source lane holds, so the fork stays bit-identical.
}

const std::vector<DimmPower> &
MemoryThermalModel::channelPower(GBps total_read, GBps total_write) const
{
    GBps ch_read = total_read / orgCfg.nChannels;
    GBps ch_write = total_write / orgCfg.nChannels;
    decomposeChannelTraffic(ch_read, ch_write, orgCfg.nDimmsPerChannel,
                            shares, trafficScratch);
    powerScratch.resize(trafficScratch.size());
    for (std::size_t i = 0; i < trafficScratch.size(); ++i) {
        bool last = static_cast<int>(i) == orgCfg.nDimmsPerChannel - 1;
        powerScratch[i] = pwr.power(trafficScratch[i], last);
    }
    // Refresh feedback: temperature-dependent refresh power rides on
    // the DRAM devices, so it reaches the stable-temperature targets,
    // the per-DIMM energy accumulators and the subsystem power alike.
    if (!refreshDram.empty())
        for (std::size_t i = 0; i < powerScratch.size(); ++i)
            powerScratch[i].dram += refreshDram[i];
    return powerScratch;
}

void
MemoryThermalModel::setRefreshDramPower(const std::vector<Watts> &w)
{
    panicIfNot(w.empty() ||
                   static_cast<int>(w.size()) == orgCfg.nDimmsPerChannel,
               "MemoryThermalModel: refresh power arity");
    for (Watts p : w)
        panicIfNot(std::isfinite(p) && p >= 0.0,
                   "MemoryThermalModel: refresh power must be finite "
                   "and non-negative");
    refreshDram.assign(w.begin(), w.end());
}

void
MemoryThermalModel::stageAdvance(GBps total_read, GBps total_write,
                                 Celsius ambient, Seconds dt)
{
    st->ensureDecay(dt);
    const auto &powers = channelPower(total_read, total_write);
    double *sa = st->stableAmb(laneIdx);
    double *sd = st->stableDram(laneIdx);
    for (std::size_t i = 0; i < powers.size(); ++i) {
        sa[i] = stableAmbAt(ambient, powers[i]);
        sd[i] = stableDramAt(ambient, powers[i]);
    }
    if (grid) {
        const int cells = grid->cells();
        double *sb = st->stableBank(laneIdx);
        for (std::size_t i = 0; i < powers.size(); ++i)
            for (int c = 0; c < cells; ++c)
                sb[i * cells + c] =
                    stableBankAt(ambient, powers[i], cellW[i * cells + c]);
    }
}

MemoryThermalSample
MemoryThermalModel::finishAdvance(Seconds dt)
{
    MemoryThermalSample s;
    Watts channel_power = 0.0;
    const double *amb = st->ambTemp(laneIdx);
    const double *dram = st->dramTemp(laneIdx);
    double *pa = st->peakAmb(laneIdx);
    double *pd = st->peakDram(laneIdx);
    double *e = st->energy(laneIdx);
    for (std::size_t i = 0; i < powerScratch.size(); ++i) {
        s.hottestAmb = std::max(s.hottestAmb, amb[i]);
        s.hottestDram = std::max(s.hottestDram, dram[i]);
        pa[i] = std::max(pa[i], amb[i]);
        pd[i] = std::max(pd[i], dram[i]);
        e[i] += powerScratch[i].total() * dt;
        channel_power += powerScratch[i].total();
    }
    if (grid) {
        const int n = orgCfg.nDimmsPerChannel * grid->cells();
        const double *bank = st->bankTemp(laneIdx);
        double *pb = st->peakBank(laneIdx);
        for (int i = 0; i < n; ++i)
            pb[i] = std::max(pb[i], bank[i]);
    }
    st->energyTime(laneIdx) += dt;
    s.subsystemPower = channel_power * orgCfg.nChannels;
    return s;
}

MemoryThermalSample
MemoryThermalModel::advance(GBps total_read, GBps total_write,
                            Celsius ambient, Seconds dt)
{
    stageAdvance(total_read, total_write, ambient, dt);
    commitStaged();
    return finishAdvance(dt);
}

Celsius
MemoryThermalModel::stableHottestAmb(GBps total_read, GBps total_write,
                                     Celsius ambient) const
{
    const auto &powers = channelPower(total_read, total_write);
    Celsius hottest = ambient;
    for (const auto &p : powers)
        hottest = std::max(hottest, stableAmbAt(ambient, p));
    return hottest;
}

Celsius
MemoryThermalModel::stableHottestDram(GBps total_read, GBps total_write,
                                      Celsius ambient) const
{
    const auto &powers = channelPower(total_read, total_write);
    Celsius hottest = ambient;
    for (const auto &p : powers)
        hottest = std::max(hottest, stableDramAt(ambient, p));
    return hottest;
}

Watts
MemoryThermalModel::subsystemPower(GBps total_read, GBps total_write) const
{
    const auto &powers = channelPower(total_read, total_write);
    Watts channel_power = 0.0;
    for (const auto &p : powers)
        channel_power += p.total();
    return channel_power * orgCfg.nChannels;
}

MemoryThermalSample
MemoryThermalModel::current() const
{
    MemoryThermalSample s;
    const double *amb = st->ambTemp(laneIdx);
    const double *dram = st->dramTemp(laneIdx);
    for (int i = 0; i < orgCfg.nDimmsPerChannel; ++i) {
        s.hottestAmb = std::max(s.hottestAmb, amb[i]);
        s.hottestDram = std::max(s.hottestDram, dram[i]);
    }
    return s;
}

std::vector<DimmTemps>
MemoryThermalModel::dimmTemps() const
{
    std::vector<DimmTemps> out;
    out.reserve(static_cast<std::size_t>(orgCfg.nDimmsPerChannel));
    const double *amb = st->ambTemp(laneIdx);
    const double *dram = st->dramTemp(laneIdx);
    for (int i = 0; i < orgCfg.nDimmsPerChannel; ++i)
        out.push_back({amb[i], dram[i]});
    return out;
}

void
MemoryThermalModel::currentPerDimm(std::vector<Celsius> &amb,
                                   std::vector<Celsius> &dram) const
{
    const std::size_t n =
        static_cast<std::size_t>(orgCfg.nDimmsPerChannel);
    amb.resize(n);
    dram.resize(n);
    const double *a = st->ambTemp(laneIdx);
    const double *d = st->dramTemp(laneIdx);
    for (std::size_t i = 0; i < n; ++i) {
        amb[i] = a[i];
        dram[i] = d[i];
    }
}

double
MemoryThermalModel::setTrafficShares(std::vector<double> new_shares)
{
    const int n = orgCfg.nDimmsPerChannel;
    panicIfNot(new_shares.empty() ||
                   static_cast<int>(new_shares.size()) == n,
               "MemoryThermalModel: traffic share arity");
    double sum = 0.0;
    for (double s : new_shares) {
        panicIfNot(std::isfinite(s) && s >= 0.0,
                   "MemoryThermalModel: traffic shares must be finite "
                   "and non-negative");
        sum += s;
    }
    panicIfNot(new_shares.empty() || std::abs(sum - 1.0) < 1e-9,
               "MemoryThermalModel: traffic shares must sum to 1");
    const double uniform = 1.0 / n;
    double l1 = 0.0;
    for (int i = 0; i < n; ++i) {
        double oldv = shares.empty() ? uniform : shares[i];
        double newv = new_shares.empty() ? uniform : new_shares[i];
        l1 += std::abs(newv - oldv);
    }
    shares = std::move(new_shares);
    return 0.5 * l1;
}

std::vector<DimmTemps>
MemoryThermalModel::dimmPeaks() const
{
    std::vector<DimmTemps> out;
    out.reserve(static_cast<std::size_t>(orgCfg.nDimmsPerChannel));
    const double *pa = st->peakAmb(laneIdx);
    const double *pd = st->peakDram(laneIdx);
    for (int i = 0; i < orgCfg.nDimmsPerChannel; ++i)
        out.push_back({pa[i], pd[i]});
    return out;
}

std::vector<Celsius>
MemoryThermalModel::bankPeaks() const
{
    if (!grid)
        return {};
    const int n = orgCfg.nDimmsPerChannel * grid->cells();
    const double *pb = st->peakBank(laneIdx);
    return std::vector<Celsius>(pb, pb + n);
}

std::vector<Watts>
MemoryThermalModel::dimmAvgPower() const
{
    const std::size_t n =
        static_cast<std::size_t>(orgCfg.nDimmsPerChannel);
    std::vector<Watts> out(n, 0.0);
    const Seconds elapsed = st->energyTime(laneIdx);
    if (elapsed > 0.0) {
        const double *e = st->energy(laneIdx);
        for (std::size_t i = 0; i < n; ++i)
            out[i] = e[i] / elapsed;
    }
    return out;
}

void
MemoryThermalModel::reset(Celsius t)
{
    const int n = orgCfg.nDimmsPerChannel;
    double *amb = st->ambTemp(laneIdx);
    double *dram = st->dramTemp(laneIdx);
    double *pa = st->peakAmb(laneIdx);
    double *pd = st->peakDram(laneIdx);
    double *e = st->energy(laneIdx);
    for (int i = 0; i < n; ++i) {
        amb[i] = t;
        dram[i] = t;
        pa[i] = t;
        pd[i] = t;
        e[i] = 0.0;
    }
    if (grid) {
        double *bank = st->bankTemp(laneIdx);
        double *pb = st->peakBank(laneIdx);
        for (int i = 0; i < n * grid->cells(); ++i) {
            bank[i] = t;
            pb[i] = t;
        }
    }
    st->energyTime(laneIdx) = 0.0;
}

void
MemoryThermalModel::resetToStable(GBps total_read, GBps total_write,
                                  Celsius ambient)
{
    const auto &powers = channelPower(total_read, total_write);
    double *amb = st->ambTemp(laneIdx);
    double *dram = st->dramTemp(laneIdx);
    double *pa = st->peakAmb(laneIdx);
    double *pd = st->peakDram(laneIdx);
    double *e = st->energy(laneIdx);
    for (std::size_t i = 0; i < powers.size(); ++i) {
        amb[i] = stableAmbAt(ambient, powers[i]);
        dram[i] = stableDramAt(ambient, powers[i]);
        pa[i] = amb[i];
        pd[i] = dram[i];
        e[i] = 0.0;
    }
    if (grid) {
        const int cells = grid->cells();
        double *bank = st->bankTemp(laneIdx);
        double *pb = st->peakBank(laneIdx);
        for (std::size_t i = 0; i < powers.size(); ++i)
            for (int c = 0; c < cells; ++c) {
                bank[i * cells + c] =
                    stableBankAt(ambient, powers[i], cellW[i * cells + c]);
                pb[i * cells + c] = bank[i * cells + c];
            }
    }
    st->energyTime(laneIdx) = 0.0;
}

} // namespace memtherm
