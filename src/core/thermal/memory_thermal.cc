#include "core/thermal/memory_thermal.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace memtherm
{

MemoryThermalModel::MemoryThermalModel(const MemoryOrgConfig &org,
                                       const CoolingConfig &cooling,
                                       const DimmPowerModel &power,
                                       Celsius t0,
                                       std::vector<double> traffic_shares)
    : orgCfg(org), pwr(power), shares(std::move(traffic_shares))
{
    panicIfNot(org.nChannels >= 1 && org.nDimmsPerChannel >= 1,
               "MemoryThermalModel: bad organization");
    panicIfNot(shares.empty() ||
                   static_cast<int>(shares.size()) == org.nDimmsPerChannel,
               "MemoryThermalModel: traffic share arity");
    dimms.reserve(org.nDimmsPerChannel);
    for (int i = 0; i < org.nDimmsPerChannel; ++i)
        dimms.emplace_back(cooling, t0);
    peaks.assign(dimms.size(), {t0, t0});
    energyPerDimm.assign(dimms.size(), 0.0);
}

const std::vector<DimmPower> &
MemoryThermalModel::channelPower(GBps total_read, GBps total_write) const
{
    GBps ch_read = total_read / orgCfg.nChannels;
    GBps ch_write = total_write / orgCfg.nChannels;
    decomposeChannelTraffic(ch_read, ch_write, orgCfg.nDimmsPerChannel,
                            shares, trafficScratch);
    powerScratch.resize(trafficScratch.size());
    for (std::size_t i = 0; i < trafficScratch.size(); ++i) {
        bool last = static_cast<int>(i) == orgCfg.nDimmsPerChannel - 1;
        powerScratch[i] = pwr.power(trafficScratch[i], last);
    }
    return powerScratch;
}

MemoryThermalSample
MemoryThermalModel::advance(GBps total_read, GBps total_write,
                            Celsius ambient, Seconds dt)
{
    const auto &powers = channelPower(total_read, total_write);
    MemoryThermalSample s;
    Watts channel_power = 0.0;
    for (std::size_t i = 0; i < dimms.size(); ++i) {
        DimmTemps t = dimms[i].advance(ambient, powers[i], dt);
        s.hottestAmb = std::max(s.hottestAmb, t.amb);
        s.hottestDram = std::max(s.hottestDram, t.dram);
        peaks[i].amb = std::max(peaks[i].amb, t.amb);
        peaks[i].dram = std::max(peaks[i].dram, t.dram);
        energyPerDimm[i] += powers[i].total() * dt;
        channel_power += powers[i].total();
    }
    energyTime += dt;
    s.subsystemPower = channel_power * orgCfg.nChannels;
    return s;
}

Celsius
MemoryThermalModel::stableHottestAmb(GBps total_read, GBps total_write,
                                     Celsius ambient) const
{
    const auto &powers = channelPower(total_read, total_write);
    Celsius hottest = ambient;
    for (std::size_t i = 0; i < dimms.size(); ++i)
        hottest = std::max(hottest, dimms[i].stableAmb(ambient, powers[i]));
    return hottest;
}

Celsius
MemoryThermalModel::stableHottestDram(GBps total_read, GBps total_write,
                                      Celsius ambient) const
{
    const auto &powers = channelPower(total_read, total_write);
    Celsius hottest = ambient;
    for (std::size_t i = 0; i < dimms.size(); ++i)
        hottest = std::max(hottest, dimms[i].stableDram(ambient, powers[i]));
    return hottest;
}

Watts
MemoryThermalModel::subsystemPower(GBps total_read, GBps total_write) const
{
    const auto &powers = channelPower(total_read, total_write);
    Watts channel_power = 0.0;
    for (const auto &p : powers)
        channel_power += p.total();
    return channel_power * orgCfg.nChannels;
}

MemoryThermalSample
MemoryThermalModel::current() const
{
    MemoryThermalSample s;
    for (const auto &d : dimms) {
        DimmTemps t = d.temps();
        s.hottestAmb = std::max(s.hottestAmb, t.amb);
        s.hottestDram = std::max(s.hottestDram, t.dram);
    }
    return s;
}

std::vector<DimmTemps>
MemoryThermalModel::dimmTemps() const
{
    std::vector<DimmTemps> out;
    out.reserve(dimms.size());
    for (const auto &d : dimms)
        out.push_back(d.temps());
    return out;
}

void
MemoryThermalModel::currentPerDimm(std::vector<Celsius> &amb,
                                   std::vector<Celsius> &dram) const
{
    amb.resize(dimms.size());
    dram.resize(dimms.size());
    for (std::size_t i = 0; i < dimms.size(); ++i) {
        DimmTemps t = dimms[i].temps();
        amb[i] = t.amb;
        dram[i] = t.dram;
    }
}

double
MemoryThermalModel::setTrafficShares(std::vector<double> new_shares)
{
    const int n = orgCfg.nDimmsPerChannel;
    panicIfNot(new_shares.empty() ||
                   static_cast<int>(new_shares.size()) == n,
               "MemoryThermalModel: traffic share arity");
    double sum = 0.0;
    for (double s : new_shares) {
        panicIfNot(std::isfinite(s) && s >= 0.0,
                   "MemoryThermalModel: traffic shares must be finite "
                   "and non-negative");
        sum += s;
    }
    panicIfNot(new_shares.empty() || std::abs(sum - 1.0) < 1e-9,
               "MemoryThermalModel: traffic shares must sum to 1");
    const double uniform = 1.0 / n;
    double l1 = 0.0;
    for (int i = 0; i < n; ++i) {
        double oldv = shares.empty() ? uniform : shares[i];
        double newv = new_shares.empty() ? uniform : new_shares[i];
        l1 += std::abs(newv - oldv);
    }
    shares = std::move(new_shares);
    return 0.5 * l1;
}

std::vector<Watts>
MemoryThermalModel::dimmAvgPower() const
{
    std::vector<Watts> out(dimms.size(), 0.0);
    if (energyTime > 0.0) {
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] = energyPerDimm[i] / energyTime;
    }
    return out;
}

void
MemoryThermalModel::reset(Celsius t)
{
    for (auto &d : dimms)
        d.reset(t);
    peaks.assign(dimms.size(), {t, t});
    energyPerDimm.assign(dimms.size(), 0.0);
    energyTime = 0.0;
}

void
MemoryThermalModel::resetToStable(GBps total_read, GBps total_write,
                                  Celsius ambient)
{
    const auto &powers = channelPower(total_read, total_write);
    for (std::size_t i = 0; i < dimms.size(); ++i) {
        dimms[i].resetToStable(ambient, powers[i]);
        peaks[i] = dimms[i].temps();
        energyPerDimm[i] = 0.0;
    }
    energyTime = 0.0;
}

} // namespace memtherm
