#include "core/sim/thermal_simulator.hh"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace memtherm
{

namespace
{

/** Apply sensor quantization and noise to an exact temperature. */
Celsius
senseTemp(Celsius exact, double sigma, double quant, Rng &rng)
{
    Celsius t = exact;
    if (sigma > 0.0)
        t += sigma * rng.gaussian();
    if (quant > 0.0)
        t = std::floor(t / quant) * quant;
    return t;
}

} // namespace

SimConfig
makeCh4Config(const CoolingConfig &cooling, bool integrated)
{
    SimConfig cfg;
    cfg.cooling = cooling;
    cfg.ambient =
        integrated ? integratedAmbient(cooling) : isolatedAmbient(cooling);
    // xi calibration: Eq. 3.6's xi converts (V * IPCref) to heat. The
    // paper's measured cores commit near one instruction per reference
    // cycle; this model's memory-bound tasks run near a third of that,
    // so xi scales up by the same factor to represent the same processor
    // power (full-load preheat ~9 C at the default interaction degree).
    cfg.ambient.psiCpuMemXi *= 3.0;
    return cfg;
}

ThermalSimulator::ThermalSimulator(SimConfig c) : cfg(std::move(c))
{
    panicIfNot(cfg.window > 0.0, "ThermalSimulator: window must be > 0");
    panicIfNot(cfg.dtmInterval >= cfg.window,
               "ThermalSimulator: DTM interval must be >= window");
    panicIfNot(cfg.nCores >= 1, "ThermalSimulator: need >= 1 core");
}

ThermalSimulator::Lane::Lane(const SimConfig &cfg, const Workload &mix,
                             ThermalBatchState &state, int lane_index)
    : batch(mix, cfg.copiesPerApp, cfg.instrScale),
      ambient(cfg.ambient),
      mem(cfg.org, cfg.cooling, DimmPowerModel{}, ambient.temperature(),
          cfg.trafficShares, state, lane_index, cfg.bankGrid),
      sensorRng(cfg.sensorSeed),
      nextRotation(cfg.rotationSlice),
      nextTrace(cfg.traceSample)
{
    res.workload = mix.name;
    res.ambTrace = TimeSeries(cfg.traceSample);
    res.dramTrace = TimeSeries(cfg.traceSample);
    res.inletTrace = TimeSeries(cfg.traceSample);
    res.cpuPowerTrace = TimeSeries(cfg.traceSample);
    res.bwTrace = TimeSeries(cfg.traceSample);

    // Core slots; round-robin dispatch from the batch queue.
    slot.assign(static_cast<std::size_t>(cfg.nCores), nullptr);
    for (auto &s : slot)
        s = batch.nextPending();

    // The machine idles long enough before the run for temperatures to
    // settle (the measurement protocol of Section 5.4.1). Refresh power
    // is not set yet, so the settled state is refresh-free; the feedback
    // edge engages from the first window.
    mem.resetToStable(0.0, 0.0, ambient.temperature());

    if (!cfg.refresh.empty()) {
        const std::size_t n =
            static_cast<std::size_t>(cfg.org.nDimmsPerChannel);
        res.refreshBwLossPerDimm.assign(n, 0.0);
        res.refreshEnergyPerDimm.assign(n, 0.0);
    }
    if (cfg.bankGrid) {
        res.bankGridX = cfg.bankGrid->x;
        res.bankGridZ = cfg.bankGrid->z;
    }

    live = !batch.done() && t < cfg.maxSimTime;
}

ThermalSimulator::Lane::Lane(const Lane &src, ThermalBatchState &state,
                             int lane_index)
    : res(src.res),
      batch(src.batch),
      slot(src.slot),
      ambient(src.ambient),
      mem(src.mem, state, lane_index),
      sensorRng(src.sensorRng),
      action(src.action),
      reading(src.reading),
      remapBurstGb(src.remapBurstGb),
      nextDtm(src.nextDtm),
      nextRotation(src.nextRotation),
      nextTrace(src.nextTrace),
      rotation(src.rotation),
      decided(src.decided),
      t(src.t),
      live(src.live),
      pendingCpuPower(src.pendingCpuPower),
      pendingInlet(src.pendingInlet),
      pendingRead(src.pendingRead),
      pendingWrite(src.pendingWrite)
{
    // slot holds pointers into src.batch's pool; rebase them onto the
    // copied pool (same indices — the pools are element-wise copies).
    for (auto &s : slot)
        s = batch.at(src.batch.indexOf(s));
}

void
ThermalSimulator::reserveScratch(Scratch &scratch) const
{
    const std::size_t n_cores = static_cast<std::size_t>(cfg.nCores);
    scratch.occupied.reserve(n_cores);
    scratch.scheduled.reserve(n_cores);
    scratch.sharers.reserve(n_cores);
    scratch.tasks.reserve(n_cores);
    scratch.taskMpki.reserve(n_cores);
    scratch.activities.reserve(n_cores);
    scratch.perf.ips.reserve(n_cores);
    scratch.perf.taskTraffic.reserve(n_cores);
}

void
ThermalSimulator::senseLane(Lane &lane) const
{
    MemoryThermalSample cur = lane.mem.current();
    lane.reading.amb = senseTemp(cur.hottestAmb, cfg.sensorNoiseSigma,
                                 cfg.sensorQuant, lane.sensorRng);
    lane.reading.dram = senseTemp(cur.hottestDram, cfg.sensorNoiseSigma,
                                  cfg.sensorQuant, lane.sensorRng);
    lane.reading.inlet = lane.ambient.temperature();
    // Exact per-DIMM temperatures (ideal sensors) — feeding them
    // through the noisy scalar path would consume extra RNG
    // draws and shift every pinned golden.
    lane.mem.currentPerDimm(lane.reading.ambPerDimm,
                            lane.reading.dramPerDimm);
}

void
ThermalSimulator::applyDecision(Lane &lane, const DtmAction &a) const
{
    lane.action = a;
    if (!a.trafficShares.empty()) {
        double moved = lane.mem.setTrafficShares(a.trafficShares);
        lane.remapBurstGb = moved * cfg.remapCostGbPerShare;
    }
    lane.nextDtm += cfg.dtmInterval;
    lane.decided = true;
}

void
ThermalSimulator::windowPre(Lane &lane, Scratch &scratch) const
{
    const Seconds dt = cfg.window;
    const Seconds eps = dt * 1e-6;
    const GHz fmax = cfg.dvfs.maxFreq();

    std::vector<BatchJob::Instance *> &slot = lane.slot;
    std::vector<std::size_t> &occupied = scratch.occupied;
    std::vector<std::size_t> &scheduled = scratch.scheduled;
    std::vector<double> &sharers = scratch.sharers;
    std::vector<CoreTask> &tasks = scratch.tasks;
    std::vector<double> &task_mpki = scratch.taskMpki;
    std::vector<double> &activities = scratch.activities;
    WindowPerf &perf = scratch.perf;

    // --- schedule: pick the slots that run this window --------------
    if (lane.t + eps >= lane.nextRotation) {
        ++lane.rotation;
        lane.nextRotation += cfg.rotationSlice;
    }
    occupied.clear();
    for (std::size_t i = 0; i < slot.size(); ++i)
        if (slot[i])
            occupied.push_back(i);

    int n_active = std::clamp(lane.action.activeCores, 0,
                              static_cast<int>(occupied.size()));
    bool time_shared =
        n_active > 0 && n_active < static_cast<int>(occupied.size());
    scheduled.clear();
    for (int k = 0; k < n_active; ++k) {
        std::size_t pick = (lane.rotation + static_cast<std::size_t>(k)) %
                           occupied.size();
        scheduled.push_back(occupied[pick]);
    }
    std::sort(scheduled.begin(), scheduled.end());

    // --- L2 sharer counts -------------------------------------------
    // Chapter 4: one shared L2 across all cores. Chapter 5: one L2
    // per 2-core socket.
    sharers.assign(scheduled.size(),
                   static_cast<double>(scheduled.size()));
    if (cfg.perSocketL2) {
        for (std::size_t i = 0; i < scheduled.size(); ++i) {
            std::size_t socket = scheduled[i] / 2;
            double n = 0.0;
            for (std::size_t j : scheduled)
                if (j / 2 == socket)
                    n += 1.0;
            sharers[i] = n;
        }
    }

    // --- build level-1 window tasks ----------------------------------
    const DvfsState &dv = cfg.dvfs.at(lane.action.dvfsLevel);
    tasks.clear();
    task_mpki.clear();
    for (std::size_t i = 0; i < scheduled.size(); ++i) {
        const BatchJob::Instance *inst = slot[scheduled[i]];
        const AppDescriptor &app = *inst->app;
        double mpki = mpkiAtSharers(app.cache, sharers[i]) *
                      phaseFactor(app, inst->cpuTime);
        if (time_shared) {
            mpki += switchMpki(app.refillLines, app.nominalGips,
                               cfg.rotationSlice);
        }
        CoreTask task;
        task.cpiCore = app.cpiCore;
        task.mpki = mpki;
        task.writeFrac = app.writeFrac;
        task.specFrac = app.specFrac;
        task.mlpOverlap = app.mlpOverlap;
        tasks.push_back(task);
        task_mpki.push_back(mpki);
    }

    GBps cap = lane.action.memoryOn ? lane.action.bandwidthCap : 0.0;
    if (cfg.refresh.empty()) {
        solvePerfWindow(tasks, dv.freq, fmax, cap, cfg.memPerf, perf);
    } else {
        // Refresh feedback (temperature -> performance): each DIMM's
        // current DRAM temperature selects a refresh band. Refresh
        // steals the band's bandwidth fraction from the DIMM's share of
        // the sustainable bandwidth and scales the idle latency
        // (AL-DRAM timing margins), so the level-1 solve sees a derated
        // memory system this window; the band's refresh power is staged
        // into the thermal model's power evaluation below. Re-read
        // every window, so the rate follows the temperature at window
        // granularity.
        lane.mem.currentPerDimm(scratch.refreshAmb, scratch.refreshDram);
        const std::vector<double> &shares = lane.mem.trafficShares();
        const std::size_t n_dimms = scratch.refreshDram.size();
        scratch.refreshPower.resize(n_dimms);
        double loss_frac = 0.0;
        double lat_mult = 0.0;
        for (std::size_t i = 0; i < n_dimms; ++i) {
            const RefreshBand &band =
                cfg.refresh.bandAt(scratch.refreshDram[i]);
            const double share =
                shares.empty() ? 1.0 / static_cast<double>(n_dimms)
                               : shares[i];
            loss_frac += share * band.bwFraction;
            lat_mult += share * band.latencyMult;
            scratch.refreshPower[i] = band.dramPower;
            lane.res.refreshBwLossPerDimm[i] +=
                cfg.memPerf.peakBandwidth * cfg.memPerf.maxUtilization *
                share * band.bwFraction * dt;
            lane.res.refreshEnergyPerDimm[i] += band.dramPower * dt;
        }
        MemSystemPerf derated = cfg.memPerf;
        derated.peakBandwidth *= std::max(0.0, 1.0 - loss_frac);
        derated.idleLatencyNs *= lat_mult;
        lane.mem.setRefreshDramPower(scratch.refreshPower);
        solvePerfWindow(tasks, dv.freq, fmax, cap, derated, perf);
    }

    // DTM control overhead: a decision window loses dtmOverhead of
    // useful execution time (Table 4.1).
    double progress_scale = 1.0;
    if (lane.decided && cfg.dtmOverhead > 0.0) {
        progress_scale =
            std::max(0.0, 1.0 - cfg.dtmOverhead / cfg.window);
    }

    // --- progress + retirement ---------------------------------------
    double sum_v_ipc = 0.0;
    for (std::size_t i = 0; i < scheduled.size(); ++i) {
        BatchJob::Instance *inst = slot[scheduled[i]];
        double instrs = perf.ips[i] * dt * progress_scale;
        inst->remainingInstr -= instrs;
        inst->cpuTime += dt;
        lane.res.totalInstr += instrs;
        lane.res.totalL2Misses += instrs * task_mpki[i] / 1000.0;
        sum_v_ipc += dv.volts * (perf.ips[i] / (fmax * 1e9));
        if (inst->remainingInstr <= 0.0) {
            lane.batch.retire(inst);
            slot[scheduled[i]] = lane.batch.nextPending();
        }
    }

    GBps read = perf.totalRead * progress_scale;
    GBps write = perf.totalWrite * progress_scale;
    if (lane.remapBurstGb > 0.0) {
        // Migration cost: the page-copy burst of a remap rides in
        // the window that applied it — half reads (source DIMMs),
        // half writes (destination). It heats the memory and counts
        // as traffic but retires no instructions, so remapping is
        // never free.
        GBps burst = lane.remapBurstGb / dt;
        read += 0.5 * burst;
        write += 0.5 * burst;
        lane.remapBurstGb = 0.0;
    }
    lane.res.totalReadGB += read * dt;
    lane.res.totalWriteGB += write * dt;

    // --- power + staged thermal --------------------------------------
    Watts cpu_power;
    if (cfg.cpuPowerActivity) {
        activities.clear();
        if (lane.action.memoryOn) {
            for (std::size_t i = 0; i < scheduled.size(); ++i) {
                double cpi_total = dv.freq * 1e9 /
                                   std::max(perf.ips[i], 1.0);
                activities.push_back(std::clamp(
                    tasks[i].cpiCore / cpi_total, 0.0, 1.0));
            }
        }
        cpu_power =
            cfg.cpuPowerActivity->power(activities, lane.action.dvfsLevel);
    } else {
        bool halted = !lane.action.memoryOn;
        cpu_power = cfg.cpuPowerTable.power(
            halted ? 0 : n_active, lane.action.dvfsLevel, halted);
    }

    Celsius inlet = lane.ambient.advance(sum_v_ipc, cpu_power, dt);
    lane.mem.stageAdvance(read, write, inlet, dt);

    lane.pendingCpuPower = cpu_power;
    lane.pendingInlet = inlet;
    lane.pendingRead = read;
    lane.pendingWrite = write;
}

void
ThermalSimulator::windowPost(Lane &lane) const
{
    const Seconds dt = cfg.window;
    const Seconds eps = dt * 1e-6;

    MemoryThermalSample ms = lane.mem.finishAdvance(dt);

    lane.res.memEnergy += ms.subsystemPower * dt;
    lane.res.cpuEnergy += lane.pendingCpuPower * dt;
    lane.res.maxAmb = std::max(lane.res.maxAmb, ms.hottestAmb);
    lane.res.maxDram = std::max(lane.res.maxDram, ms.hottestDram);
    if (ms.hottestAmb > cfg.limits.ambTdp)
        lane.res.timeAboveAmbTdp += dt;
    if (ms.hottestDram > cfg.limits.dramTdp)
        lane.res.timeAboveDramTdp += dt;

    if (lane.t + eps >= lane.nextTrace) {
        lane.res.ambTrace.add(ms.hottestAmb);
        lane.res.dramTrace.add(ms.hottestDram);
        lane.res.inletTrace.add(lane.pendingInlet);
        lane.res.cpuPowerTrace.add(lane.pendingCpuPower);
        lane.res.bwTrace.add(lane.pendingRead + lane.pendingWrite);
        lane.nextTrace += cfg.traceSample;
    }

    lane.t += dt;
    lane.live = !lane.batch.done() && lane.t < cfg.maxSimTime;
}

void
ThermalSimulator::finalizeLane(Lane &lane) const
{
    lane.res.completed = lane.batch.done();
    lane.res.runningTime = lane.t;
    std::vector<DimmTemps> peaks = lane.mem.dimmPeaks();
    lane.res.peakAmbPerDimm.reserve(peaks.size());
    lane.res.peakDramPerDimm.reserve(peaks.size());
    for (const DimmTemps &p : peaks) {
        lane.res.peakAmbPerDimm.push_back(p.amb);
        lane.res.peakDramPerDimm.push_back(p.dram);
    }
    lane.res.avgPowerPerDimm = lane.mem.dimmAvgPower();
    lane.res.peakBankDramPerDimm = lane.mem.bankPeaks();
}

SimResult
ThermalSimulator::run(const Workload &mix, DtmPolicy &policy) const
{
    Scratch scratch;
    return run(mix, policy, scratch);
}

SimResult
ThermalSimulator::run(const Workload &mix, DtmPolicy &policy,
                      Scratch &scratch) const
{
    policy.reset();
    reserveScratch(scratch);

    ThermalBatchState state(1, cfg.org.nDimmsPerChannel,
                            cfg.bankGrid ? cfg.bankGrid->cells() : 0);
    Lane lane(cfg, mix, state, 0);
    lane.res.policy = policy.name();

    const Seconds eps = cfg.window * 1e-6;
    while (lane.live) {
        // --- DTM decision at interval boundaries -----------------------
        lane.decided = false;
        if (lane.t + eps >= lane.nextDtm) {
            senseLane(lane);
            applyDecision(lane, policy.decide(lane.reading, lane.t));
        }
        windowPre(lane, scratch);
        lane.mem.commitStaged();
        windowPost(lane);
    }

    finalizeLane(lane);
    return std::move(lane.res);
}

std::vector<SimResult>
ThermalSimulator::runBatch(const Workload &mix,
                           const std::vector<DtmPolicy *> &policies,
                           Scratch &scratch, BatchStats *stats) const
{
    const std::size_t n_pol = policies.size();
    panicIfNot(n_pol >= 1, "runBatch: need >= 1 policy");
    for (DtmPolicy *p : policies) {
        panicIfNot(p != nullptr, "runBatch: null policy");
        p->reset();
    }
    reserveScratch(scratch);

    ThermalBatchState state(static_cast<int>(n_pol),
                            cfg.org.nDimmsPerChannel,
                            cfg.bankGrid ? cfg.bankGrid->cells() : 0);

    /// One shared trajectory: a lane plus the policies riding on it.
    struct Group
    {
        Lane lane;
        std::vector<std::size_t> members; ///< indices into `policies`
    };
    std::vector<Group> groups;
    // Every fork moves >= 1 member into a fresh group, so the total
    // group count over the whole run never exceeds n_pol. Reserving
    // that bound keeps references stable across mid-loop push_backs.
    groups.reserve(n_pol);
    {
        Group g{Lane(cfg, mix, state, 0), {}};
        g.members.resize(n_pol);
        for (std::size_t m = 0; m < n_pol; ++m)
            g.members[m] = m;
        groups.push_back(std::move(g));
    }
    int next_lane = 1;

    BatchStats local;
    const Seconds eps = cfg.window * 1e-6;
    // Per-decision scratch: the members' actions and, per distinct
    // action, the member lists of the split.
    std::vector<DtmAction> actions;
    std::vector<std::size_t> uniq; // position of each distinct action
    std::vector<std::vector<std::size_t>> buckets;

    for (;;) {
        bool any_live = false;
        for (const Group &g : groups)
            any_live |= g.lane.live;
        if (!any_live)
            break;

        // --- decide phase: sense once per group, ask every member's
        //     policy, fork the lane where their actions diverge --------
        const std::size_t n_at_start = groups.size();
        for (std::size_t gi = 0; gi < n_at_start; ++gi) {
            Group &g = groups[gi];
            if (!g.lane.live)
                continue;
            g.lane.decided = false;
            if (!(g.lane.t + eps >= g.lane.nextDtm))
                continue;
            // Sense BEFORE forking: the sensor draws land in the shared
            // RNG, so every member's stream position matches the one
            // draw its from-scratch run would have made here.
            senseLane(g.lane);
            actions.clear();
            for (std::size_t m : g.members)
                actions.push_back(
                    policies[m]->decide(g.lane.reading, g.lane.t));
            // Partition members by action equality, first-seen order.
            uniq.clear();
            buckets.clear();
            for (std::size_t i = 0; i < actions.size(); ++i) {
                std::size_t b = uniq.size();
                for (std::size_t k = 0; k < uniq.size(); ++k) {
                    if (actions[uniq[k]] == actions[i]) {
                        b = k;
                        break;
                    }
                }
                if (b == uniq.size()) {
                    uniq.push_back(i);
                    buckets.emplace_back();
                }
                buckets[b].push_back(g.members[i]);
            }
            // Forked groups clone the PRE-decision lane (g.lane is not
            // mutated until after every clone is taken), then each gets
            // its own action applied — exactly what its members' from-
            // scratch runs would have computed at this window.
            for (std::size_t b = 1; b < uniq.size(); ++b) {
                panicIfNot(next_lane < static_cast<int>(n_pol),
                           "runBatch: lane budget exceeded");
                groups.push_back(
                    Group{Lane(g.lane, state, next_lane), {}});
                ++next_lane;
                groups.back().members = std::move(buckets[b]);
                applyDecision(groups.back().lane, actions[uniq[b]]);
                ++local.forks;
            }
            applyDecision(g.lane, actions[uniq[0]]);
            g.members = std::move(buckets[0]);
        }
        // Groups appended above already carry this window's decision
        // (decided = true, nextDtm advanced) and take the window step
        // with everyone else below.

        // --- pre phase: schedule, solve, progress, power, stage -------
        for (Group &g : groups)
            if (g.lane.live)
                windowPre(g.lane, scratch);

        // --- the shared temperature sweep, lane by lane ---------------
        for (Group &g : groups)
            if (g.lane.live)
                g.lane.mem.commitStaged();

        // --- post phase: peaks, energy, traces, clock -----------------
        for (Group &g : groups) {
            if (!g.lane.live)
                continue;
            windowPost(g.lane);
            local.simulatedWindows += 1.0;
            local.logicalWindows += static_cast<double>(g.members.size());
        }
    }

    std::vector<SimResult> out(n_pol);
    for (Group &g : groups) {
        finalizeLane(g.lane);
        for (std::size_t k = 0; k < g.members.size(); ++k) {
            const std::size_t m = g.members[k];
            if (k + 1 == g.members.size())
                out[m] = std::move(g.lane.res);
            else
                out[m] = g.lane.res;
            out[m].policy = policies[m]->name();
        }
    }
    if (stats)
        *stats = local;
    return out;
}

} // namespace memtherm
