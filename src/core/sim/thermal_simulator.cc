#include "core/sim/thermal_simulator.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/thermal/ambient_model.hh"

namespace memtherm
{

namespace
{

/** Apply sensor quantization and noise to an exact temperature. */
Celsius
senseTemp(Celsius exact, double sigma, double quant, Rng &rng)
{
    Celsius t = exact;
    if (sigma > 0.0)
        t += sigma * rng.gaussian();
    if (quant > 0.0)
        t = std::floor(t / quant) * quant;
    return t;
}

} // namespace

SimConfig
makeCh4Config(const CoolingConfig &cooling, bool integrated)
{
    SimConfig cfg;
    cfg.cooling = cooling;
    cfg.ambient =
        integrated ? integratedAmbient(cooling) : isolatedAmbient(cooling);
    // xi calibration: Eq. 3.6's xi converts (V * IPCref) to heat. The
    // paper's measured cores commit near one instruction per reference
    // cycle; this model's memory-bound tasks run near a third of that,
    // so xi scales up by the same factor to represent the same processor
    // power (full-load preheat ~9 C at the default interaction degree).
    cfg.ambient.psiCpuMemXi *= 3.0;
    return cfg;
}

ThermalSimulator::ThermalSimulator(SimConfig c) : cfg(std::move(c))
{
    panicIfNot(cfg.window > 0.0, "ThermalSimulator: window must be > 0");
    panicIfNot(cfg.dtmInterval >= cfg.window,
               "ThermalSimulator: DTM interval must be >= window");
    panicIfNot(cfg.nCores >= 1, "ThermalSimulator: need >= 1 core");
}

SimResult
ThermalSimulator::run(const Workload &mix, DtmPolicy &policy) const
{
    Scratch scratch;
    return run(mix, policy, scratch);
}

SimResult
ThermalSimulator::run(const Workload &mix, DtmPolicy &policy,
                      Scratch &scratch) const
{
    policy.reset();

    SimResult res;
    res.workload = mix.name;
    res.policy = policy.name();
    res.ambTrace = TimeSeries(cfg.traceSample);
    res.dramTrace = TimeSeries(cfg.traceSample);
    res.inletTrace = TimeSeries(cfg.traceSample);
    res.cpuPowerTrace = TimeSeries(cfg.traceSample);
    res.bwTrace = TimeSeries(cfg.traceSample);

    BatchJob batch(mix, cfg.copiesPerApp, cfg.instrScale);

    // Per-window containers come from the reusable scratch; every one is
    // (re)initialized before use, so stale contents are harmless. Sizing
    // them once here keeps the window loop free of heap allocation.
    const std::size_t n_cores = static_cast<std::size_t>(cfg.nCores);
    std::vector<BatchJob::Instance *> &slot = scratch.slot;
    std::vector<std::size_t> &occupied = scratch.occupied;
    std::vector<std::size_t> &scheduled = scratch.scheduled;
    std::vector<double> &sharers = scratch.sharers;
    std::vector<CoreTask> &tasks = scratch.tasks;
    std::vector<double> &task_mpki = scratch.taskMpki;
    std::vector<double> &activities = scratch.activities;
    WindowPerf &perf = scratch.perf;
    occupied.reserve(n_cores);
    scheduled.reserve(n_cores);
    sharers.reserve(n_cores);
    tasks.reserve(n_cores);
    task_mpki.reserve(n_cores);
    activities.reserve(n_cores);
    perf.ips.reserve(n_cores);
    perf.taskTraffic.reserve(n_cores);

    // Core slots; round-robin dispatch from the batch queue.
    slot.assign(n_cores, nullptr);
    for (auto &s : slot)
        s = batch.nextPending();

    AmbientModel ambient(cfg.ambient);
    MemoryThermalModel mem(cfg.org, cfg.cooling, DimmPowerModel{},
                           ambient.temperature(), cfg.trafficShares);
    // The machine idles long enough before the run for temperatures to
    // settle (the measurement protocol of Section 5.4.1).
    mem.resetToStable(0.0, 0.0, ambient.temperature());
    Rng sensor_rng(cfg.sensorSeed);

    const Seconds dt = cfg.window;
    const GHz fmax = cfg.dvfs.maxFreq();
    DtmAction action;
    // Hoisted so the per-DIMM sensor vectors keep their capacity across
    // decisions (the window loop stays allocation-free once warm).
    ThermalReading reading;
    // Pending migration-cost traffic (GB) from a remap decision, spent
    // in the window that applied it.
    double remap_burst_gb = 0.0;
    Seconds next_dtm = 0.0;
    Seconds next_rotation = cfg.rotationSlice;
    Seconds next_trace = cfg.traceSample;
    std::size_t rotation = 0;
    bool decided_this_window = false;

    Seconds t = 0.0;
    const Seconds eps = dt * 1e-6;
    while (!batch.done() && t < cfg.maxSimTime) {
        // --- DTM decision at interval boundaries -----------------------
        decided_this_window = false;
        if (t + eps >= next_dtm) {
            MemoryThermalSample cur = mem.current();
            reading.amb = senseTemp(cur.hottestAmb, cfg.sensorNoiseSigma,
                                    cfg.sensorQuant, sensor_rng);
            reading.dram = senseTemp(cur.hottestDram, cfg.sensorNoiseSigma,
                                     cfg.sensorQuant, sensor_rng);
            reading.inlet = ambient.temperature();
            // Exact per-DIMM temperatures (ideal sensors) — feeding them
            // through the noisy scalar path would consume extra RNG
            // draws and shift every pinned golden.
            mem.currentPerDimm(reading.ambPerDimm, reading.dramPerDimm);
            action = policy.decide(reading, t);
            if (!action.trafficShares.empty()) {
                double moved = mem.setTrafficShares(action.trafficShares);
                remap_burst_gb = moved * cfg.remapCostGbPerShare;
            }
            next_dtm += cfg.dtmInterval;
            decided_this_window = true;
        }

        // --- schedule: pick the slots that run this window --------------
        if (t + eps >= next_rotation) {
            ++rotation;
            next_rotation += cfg.rotationSlice;
        }
        occupied.clear();
        for (std::size_t i = 0; i < slot.size(); ++i)
            if (slot[i])
                occupied.push_back(i);

        int n_active = std::clamp(action.activeCores, 0,
                                  static_cast<int>(occupied.size()));
        bool time_shared =
            n_active > 0 && n_active < static_cast<int>(occupied.size());
        scheduled.clear();
        for (int k = 0; k < n_active; ++k) {
            std::size_t pick = (rotation + static_cast<std::size_t>(k)) %
                               occupied.size();
            scheduled.push_back(occupied[pick]);
        }
        std::sort(scheduled.begin(), scheduled.end());

        // --- L2 sharer counts -------------------------------------------
        // Chapter 4: one shared L2 across all cores. Chapter 5: one L2
        // per 2-core socket.
        sharers.assign(scheduled.size(),
                       static_cast<double>(scheduled.size()));
        if (cfg.perSocketL2) {
            for (std::size_t i = 0; i < scheduled.size(); ++i) {
                std::size_t socket = scheduled[i] / 2;
                double n = 0.0;
                for (std::size_t j : scheduled)
                    if (j / 2 == socket)
                        n += 1.0;
                sharers[i] = n;
            }
        }

        // --- build level-1 window tasks ----------------------------------
        const DvfsState &dv = cfg.dvfs.at(action.dvfsLevel);
        tasks.clear();
        task_mpki.clear();
        for (std::size_t i = 0; i < scheduled.size(); ++i) {
            const BatchJob::Instance *inst = slot[scheduled[i]];
            const AppDescriptor &app = *inst->app;
            double mpki = mpkiAtSharers(app.cache, sharers[i]) *
                          phaseFactor(app, inst->cpuTime);
            if (time_shared) {
                mpki += switchMpki(app.refillLines, app.nominalGips,
                                   cfg.rotationSlice);
            }
            CoreTask task;
            task.cpiCore = app.cpiCore;
            task.mpki = mpki;
            task.writeFrac = app.writeFrac;
            task.specFrac = app.specFrac;
            task.mlpOverlap = app.mlpOverlap;
            tasks.push_back(task);
            task_mpki.push_back(mpki);
        }

        GBps cap = action.memoryOn ? action.bandwidthCap : 0.0;
        solvePerfWindow(tasks, dv.freq, fmax, cap, cfg.memPerf, perf);

        // DTM control overhead: a decision window loses dtmOverhead of
        // useful execution time (Table 4.1).
        double progress_scale = 1.0;
        if (decided_this_window && cfg.dtmOverhead > 0.0) {
            progress_scale =
                std::max(0.0, 1.0 - cfg.dtmOverhead / cfg.window);
        }

        // --- progress + retirement ---------------------------------------
        double sum_v_ipc = 0.0;
        for (std::size_t i = 0; i < scheduled.size(); ++i) {
            BatchJob::Instance *inst = slot[scheduled[i]];
            double instrs = perf.ips[i] * dt * progress_scale;
            inst->remainingInstr -= instrs;
            inst->cpuTime += dt;
            res.totalInstr += instrs;
            res.totalL2Misses += instrs * task_mpki[i] / 1000.0;
            sum_v_ipc += dv.volts * (perf.ips[i] / (fmax * 1e9));
            if (inst->remainingInstr <= 0.0) {
                batch.retire(inst);
                slot[scheduled[i]] = batch.nextPending();
            }
        }

        GBps read = perf.totalRead * progress_scale;
        GBps write = perf.totalWrite * progress_scale;
        if (remap_burst_gb > 0.0) {
            // Migration cost: the page-copy burst of a remap rides in
            // the window that applied it — half reads (source DIMMs),
            // half writes (destination). It heats the memory and counts
            // as traffic but retires no instructions, so remapping is
            // never free.
            GBps burst = remap_burst_gb / dt;
            read += 0.5 * burst;
            write += 0.5 * burst;
            remap_burst_gb = 0.0;
        }
        res.totalReadGB += read * dt;
        res.totalWriteGB += write * dt;

        // --- power + thermal ---------------------------------------------
        Watts cpu_power;
        if (cfg.cpuPowerActivity) {
            activities.clear();
            if (action.memoryOn) {
                for (std::size_t i = 0; i < scheduled.size(); ++i) {
                    double cpi_total = dv.freq * 1e9 /
                                       std::max(perf.ips[i], 1.0);
                    activities.push_back(std::clamp(
                        tasks[i].cpiCore / cpi_total, 0.0, 1.0));
                }
            }
            cpu_power =
                cfg.cpuPowerActivity->power(activities, action.dvfsLevel);
        } else {
            bool halted = !action.memoryOn;
            cpu_power = cfg.cpuPowerTable.power(
                halted ? 0 : n_active, action.dvfsLevel, halted);
        }

        Celsius inlet = ambient.advance(sum_v_ipc, cpu_power, dt);
        MemoryThermalSample ms = mem.advance(read, write, inlet, dt);

        res.memEnergy += ms.subsystemPower * dt;
        res.cpuEnergy += cpu_power * dt;
        res.maxAmb = std::max(res.maxAmb, ms.hottestAmb);
        res.maxDram = std::max(res.maxDram, ms.hottestDram);
        if (ms.hottestAmb > cfg.limits.ambTdp)
            res.timeAboveAmbTdp += dt;
        if (ms.hottestDram > cfg.limits.dramTdp)
            res.timeAboveDramTdp += dt;

        if (t + eps >= next_trace) {
            res.ambTrace.add(ms.hottestAmb);
            res.dramTrace.add(ms.hottestDram);
            res.inletTrace.add(inlet);
            res.cpuPowerTrace.add(cpu_power);
            res.bwTrace.add(read + write);
            next_trace += cfg.traceSample;
        }

        t += dt;
    }

    res.completed = batch.done();
    res.runningTime = t;
    res.peakAmbPerDimm.reserve(mem.dimmPeaks().size());
    res.peakDramPerDimm.reserve(mem.dimmPeaks().size());
    for (const DimmTemps &p : mem.dimmPeaks()) {
        res.peakAmbPerDimm.push_back(p.amb);
        res.peakDramPerDimm.push_back(p.dram);
    }
    res.avgPowerPerDimm = mem.dimmAvgPower();
    return res;
}

} // namespace memtherm
