#include "core/sim/engine.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>

#include "common/logging.hh"
#include "core/sim/registry.hh"

namespace memtherm
{

int
ExperimentEngine::defaultThreads()
{
    if (const char *env = std::getenv("MEMTHERM_THREADS")) {
        int n = std::atoi(env);
        if (n >= 1)
            return n;
        warn("MEMTHERM_THREADS='" + std::string(env) +
             "' is not a positive integer; using hardware concurrency");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

ExperimentEngine::ExperimentEngine(int n_threads)
    : nThreads(n_threads > 0 ? n_threads : defaultThreads())
{
    // One thread means "serial reference mode": run() executes inline on
    // the calling thread and no workers exist.
    if (nThreads < 2)
        return;
    workers.reserve(static_cast<std::size_t>(nThreads));
    for (int i = 0; i < nThreads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ExperimentEngine::~ExperimentEngine()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    wake.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ExperimentEngine::workerLoop()
{
    // Worker-owned scratch: reused across every run this thread executes,
    // so back-to-back runs stop allocating once the buffers are warm.
    ThermalSimulator::Scratch scratch;
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            wake.wait(lock, [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        task(scratch);
    }
}

std::unique_ptr<DtmPolicy>
ExperimentEngine::makePolicy(const Run &r)
{
    auto policy = r.factory
                      ? r.factory(r.cfg, r.policy)
                      : PolicyRegistry::instance().make(
                            r.policy, PolicyBuildContext{
                                          r.cfg.dtmInterval,
                                          r.cfg.emergencyLevels,
                                          r.cfg.remapInterval,
                                          r.cfg.remapHysteresis,
                                          r.cfg.trafficShares});
    panicIfNot(policy != nullptr, "ExperimentEngine: null policy");
    return policy;
}

SimResult
ExperimentEngine::execute(const Run &r, ThermalSimulator::Scratch &s)
{
    ThermalSimulator sim(r.cfg);
    auto policy = makePolicy(r);
    return sim.run(r.workload, *policy, s);
}

void
ExperimentEngine::run(const std::vector<Run> &runs, RunSink &sink)
{
    using clock = std::chrono::steady_clock;

    // The first exception a *sink call* throws; run failures go through
    // sink.onFailure and never abort the batch.
    std::exception_ptr sink_error;

    // Serializes sink invocations (the RunSink contract) and guards
    // sink_error. In inline mode the calling thread is the only caller,
    // but the lock is cheap and keeps one code path.
    std::mutex sink_mtx;
    auto deliver = [&](std::size_t i, SimResult &&r, double wall_s,
                       std::exception_ptr err) {
        std::lock_guard<std::mutex> lock(sink_mtx);
        try {
            if (err)
                sink.onFailure(i, err);
            else
                sink.onResult(i, std::move(r), wall_s);
        } catch (...) {
            if (!sink_error)
                sink_error = std::current_exception();
        }
    };
    auto one = [&](std::size_t i, ThermalSimulator::Scratch &s) {
        const auto t0 = clock::now();
        SimResult r;
        std::exception_ptr err;
        try {
            r = execute(runs[i], s);
        } catch (...) {
            err = std::current_exception();
        }
        const double wall_s =
            std::chrono::duration<double>(clock::now() - t0).count();
        deliver(i, std::move(r), wall_s, err);
    };

    if (workers.empty()) {
        ThermalSimulator::Scratch scratch;
        for (std::size_t i = 0; i < runs.size(); ++i)
            one(i, scratch);
        if (sink_error)
            std::rethrow_exception(sink_error);
        return;
    }

    // Completion state lives on this frame; `done` is guarded by
    // done_mtx (not an atomic) so run() cannot observe the batch as
    // finished before the last worker has released the mutex — i.e.
    // before it is done touching done_cv/done_mtx. An atomic counter
    // would let run() return (and destroy these objects) between a
    // worker's increment and its notify.
    std::size_t done = 0;
    std::mutex done_mtx;
    std::condition_variable done_cv;

    {
        std::lock_guard<std::mutex> lock(mtx);
        for (std::size_t i = 0; i < runs.size(); ++i) {
            queue.emplace_back([&, i](ThermalSimulator::Scratch &s) {
                one(i, s);
                std::lock_guard<std::mutex> dlock(done_mtx);
                if (++done == runs.size())
                    done_cv.notify_all();
            });
        }
    }
    wake.notify_all();

    {
        std::unique_lock<std::mutex> lock(done_mtx);
        done_cv.wait(lock, [&] { return done == runs.size(); });
    }
    if (sink_error)
        std::rethrow_exception(sink_error);
}

void
ExperimentEngine::runBatched(const std::vector<Run> &runs,
                             const std::vector<RunClass> &classes,
                             int batch_width, RunSink &sink,
                             BatchStats *stats)
{
    using clock = std::chrono::steady_clock;

    // The classes must tile the run list in order — every run belongs to
    // exactly one class, so delivery covers every index exactly once.
    std::size_t covered = 0;
    for (const RunClass &c : classes) {
        panicIfNot(c.first == covered && c.count >= 1,
                   "runBatched: classes must tile the run list in order");
        covered += c.count;
    }
    panicIfNot(covered == runs.size(),
               "runBatched: classes do not cover every run");

    // Split classes into chunks of at most batch_width lanes. A chunk is
    // the unit of dispatch: one pool task, one ThermalBatchState.
    struct Chunk
    {
        std::size_t first = 0;
        std::size_t count = 0;
    };
    const std::size_t width = batch_width >= 1
                                  ? static_cast<std::size_t>(batch_width)
                                  : runs.size() + 1;
    std::vector<Chunk> chunks;
    for (const RunClass &c : classes)
        for (std::size_t off = 0; off < c.count; off += width)
            chunks.push_back(
                Chunk{c.first + off, std::min(width, c.count - off)});

    std::exception_ptr sink_error;
    std::mutex sink_mtx;
    BatchStats agg;
    auto deliver = [&](std::size_t i, SimResult &&r, double wall_s,
                       std::exception_ptr err) {
        std::lock_guard<std::mutex> lock(sink_mtx);
        try {
            if (err)
                sink.onFailure(i, err);
            else
                sink.onResult(i, std::move(r), wall_s);
        } catch (...) {
            if (!sink_error)
                sink_error = std::current_exception();
        }
    };

    auto oneChunk = [&](const Chunk &ch, ThermalSimulator::Scratch &s) {
        const auto t0 = clock::now();

        // Single-run chunk: the scalar path, no batch state to set up.
        if (ch.count == 1) {
            SimResult r;
            std::exception_ptr err;
            try {
                r = execute(runs[ch.first], s);
            } catch (...) {
                err = std::current_exception();
            }
            const double wall_s =
                std::chrono::duration<double>(clock::now() - t0).count();
            // A lone run shares nothing; count its windows so the hit
            // rate reflects the whole grid, not just batched chunks.
            const double w =
                err ? 0.0
                    : r.runningTime /
                          std::max(runs[ch.first].cfg.window, 1e-12);
            deliver(ch.first, std::move(r), wall_s, err);
            if (stats && w > 0.0) {
                std::lock_guard<std::mutex> lock(sink_mtx);
                agg.logicalWindows += w;
                agg.simulatedWindows += w;
            }
            return;
        }

        // Build one policy per member; a failing build (unknown name,
        // bad config) fails only that run and the rest still batch.
        std::vector<std::unique_ptr<DtmPolicy>> built;
        std::vector<std::size_t> idx;
        for (std::size_t i = ch.first; i < ch.first + ch.count; ++i) {
            try {
                built.push_back(makePolicy(runs[i]));
                idx.push_back(i);
            } catch (...) {
                deliver(i, SimResult{}, 0.0, std::current_exception());
            }
        }
        if (idx.empty())
            return;

        std::vector<DtmPolicy *> ptrs;
        ptrs.reserve(built.size());
        for (const auto &p : built)
            ptrs.push_back(p.get());

        BatchStats chunk_stats;
        std::vector<SimResult> results;
        std::exception_ptr err;
        try {
            ThermalSimulator sim(runs[ch.first].cfg);
            results = sim.runBatch(runs[ch.first].workload, ptrs, s,
                                   &chunk_stats);
        } catch (...) {
            err = std::current_exception();
        }
        const double wall_s =
            std::chrono::duration<double>(clock::now() - t0).count();
        // The chunk's wall time is shared work; apportion it evenly so
        // per-run timings still sum to the grid total.
        const double share = wall_s / static_cast<double>(idx.size());
        if (err) {
            // A mid-simulation failure poisons the shared lanes — every
            // member of the chunk fails together.
            for (std::size_t i : idx)
                deliver(i, SimResult{}, share, err);
            return;
        }
        for (std::size_t k = 0; k < idx.size(); ++k)
            deliver(idx[k], std::move(results[k]), share, nullptr);
        if (stats) {
            std::lock_guard<std::mutex> lock(sink_mtx);
            agg.add(chunk_stats);
        }
    };

    if (workers.empty()) {
        ThermalSimulator::Scratch scratch;
        for (const Chunk &ch : chunks)
            oneChunk(ch, scratch);
    } else {
        std::size_t done = 0;
        std::mutex done_mtx;
        std::condition_variable done_cv;
        {
            std::lock_guard<std::mutex> lock(mtx);
            for (const Chunk &ch : chunks) {
                queue.emplace_back([&, ch](ThermalSimulator::Scratch &s) {
                    oneChunk(ch, s);
                    std::lock_guard<std::mutex> dlock(done_mtx);
                    if (++done == chunks.size())
                        done_cv.notify_all();
                });
            }
        }
        wake.notify_all();
        {
            std::unique_lock<std::mutex> lock(done_mtx);
            done_cv.wait(lock, [&] { return done == chunks.size(); });
        }
    }

    if (stats)
        stats->add(agg);
    if (sink_error)
        std::rethrow_exception(sink_error);
}

namespace
{

/**
 * Sink behind the collecting run() overload: positional results plus
 * the first failure (kept as exception_ptr so the original type
 * survives the labeled rethrow).
 */
class CollectingSink : public RunSink
{
  public:
    explicit CollectingSink(std::size_t n) : results(n) {}

    void onResult(std::size_t i, SimResult &&r, double) override
    {
        results[i] = std::move(r);
        ++completed;
    }

    void onFailure(std::size_t i, std::exception_ptr err) override
    {
        if (!firstError) {
            firstError = err;
            firstIndex = i;
        }
    }

    std::vector<SimResult> results;
    std::size_t completed = 0;
    std::exception_ptr firstError;
    std::size_t firstIndex = 0;
};

} // namespace

std::vector<SimResult>
ExperimentEngine::run(const std::vector<Run> &runs)
{
    CollectingSink sink(runs.size());
    run(runs, sink);
    if (sink.firstError) {
        const Run &r = runs[sink.firstIndex];
        const std::string label =
            " [in run #" + std::to_string(sink.firstIndex) +
            ": workload '" + r.workload.name + "', policy '" + r.policy +
            "'; " + std::to_string(sink.completed) + " of " +
            std::to_string(runs.size()) + " runs completed]";
        // Re-throw as the original diagnostic type where known, so
        // callers' FatalError/PanicError handling still applies.
        try {
            std::rethrow_exception(sink.firstError);
        } catch (const FatalError &e) {
            throw FatalError(e.what() + label);
        } catch (const PanicError &e) {
            throw PanicError(e.what() + label);
        } catch (const std::exception &e) {
            throw std::runtime_error(e.what() + label);
        }
    }
    return std::move(sink.results);
}

std::vector<ExperimentEngine::Run>
ExperimentEngine::makeSuiteRuns(const SimConfig &cfg,
                                const std::vector<Workload> &workloads,
                                const std::vector<std::string> &policies,
                                const PolicyFactory &factory)
{
    std::vector<Run> runs;
    runs.reserve(workloads.size() * policies.size());
    for (const auto &w : workloads)
        for (const auto &pname : policies)
            runs.push_back(Run{cfg, w, pname, factory});
    return runs;
}

SuiteResults
ExperimentEngine::runSuite(const SimConfig &cfg,
                           const std::vector<Workload> &workloads,
                           const std::vector<std::string> &policy_names,
                           const PolicyFactory &factory)
{
    std::vector<SimResult> results =
        run(makeSuiteRuns(cfg, workloads, policy_names, factory));

    SuiteResults out;
    std::size_t k = 0;
    for (const auto &w : workloads)
        for (const auto &pname : policy_names)
            out[w.name][pname] = std::move(results[k++]);
    return out;
}

GridResults
ExperimentEngine::runGrid(const std::vector<SimConfig> &cfgs,
                          const std::vector<Workload> &workloads,
                          const std::vector<std::string> &policy_names,
                          const PolicyFactory &factory)
{
    // One flat batch across all configs: a sweep with many configs but
    // few runs per config still fills every worker.
    std::vector<Run> runs;
    runs.reserve(cfgs.size() * workloads.size() * policy_names.size());
    for (const auto &cfg : cfgs) {
        auto suite = makeSuiteRuns(cfg, workloads, policy_names, factory);
        for (auto &r : suite)
            runs.push_back(std::move(r));
    }
    std::vector<SimResult> results = run(runs);

    GridResults out(cfgs.size());
    std::size_t k = 0;
    for (std::size_t c = 0; c < cfgs.size(); ++c)
        for (const auto &w : workloads)
            for (const auto &pname : policy_names)
                out[c][w.name][pname] = std::move(results[k++]);
    return out;
}

} // namespace memtherm
