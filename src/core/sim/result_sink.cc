#include "core/sim/result_sink.hh"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "common/logging.hh"

namespace memtherm
{

namespace
{

/** FNV-1a 64-bit, the classic offset basis / prime constants. */
std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
hex64(std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xf];
        v >>= 4;
    }
    return out;
}

/** Positive-integer env knob; -1 when unset, warn-and-ignore when bad. */
int
envFaultIndex(const char *name)
{
    const char *env = std::getenv(name);
    if (!env)
        return -1;
    char *end = nullptr;
    unsigned long k = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0' || k > 1000000000UL) {
        warn(std::string(name) + "='" + env +
             "' is not a run count; ignoring");
        return -1;
    }
    return static_cast<int>(k);
}

std::string
whatOf(std::exception_ptr err)
{
    try {
        std::rethrow_exception(err);
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "unknown error";
    }
}

/**
 * The lowered grid's index geometry: global run k lives at point
 * k / (W*P), workload (k % (W*P)) / P, policy k % P — the same layout
 * runScenario() uses, so stream indices mean the same run everywhere.
 */
struct GridIndex
{
    explicit GridIndex(const LoweredScenario &low)
        : workloads(low.workloads), policies(low.policies)
    {
        for (const auto &pt : low.points)
            pointLabels.push_back(pt.label);
        perPoint = workloads.size() * policies.size();
    }

    const std::string &point(std::size_t k) const
    {
        return pointLabels[k / perPoint];
    }
    const std::string &workload(std::size_t k) const
    {
        return workloads[(k % perPoint) / policies.size()];
    }
    const std::string &policy(std::size_t k) const
    {
        return policies[k % policies.size()];
    }

    std::vector<std::string> pointLabels;
    std::vector<std::string> workloads;
    std::vector<std::string> policies;
    std::size_t perPoint = 1;
};

std::string
streamMemberString(const Json &j, const char *key, const std::string &where)
{
    const Json *v = j.find(key);
    if (!v || !v->isString())
        fatal(where + (": missing or non-string member '" + std::string(key) +
                       "'"));
    return v->asString();
}

double
streamMemberNumber(const Json &j, const char *key, const std::string &where)
{
    const Json *v = j.find(key);
    if (!v || !v->isNumber())
        fatal(where + (": missing or non-number member '" + std::string(key) +
                       "'"));
    return v->asNumber();
}

std::size_t
streamMemberIndex(const Json &j, const char *key, const std::string &where)
{
    double v = streamMemberNumber(j, key, where);
    if (v < 0 || v != static_cast<double>(static_cast<std::size_t>(v)))
        fatal(where + (": member '" + std::string(key) +
                       "' must be a non-negative integer"));
    return static_cast<std::size_t>(v);
}

} // namespace

std::string
scenarioSpecHash(const ScenarioSpec &spec)
{
    // The format version is folded in so a stream can never look
    // resumable across a schema change.
    return hex64(fnv1a64(std::to_string(kStreamFormatVersion) + ":" +
                         spec.toJson().dump(0)));
}

ShardSpec
ShardSpec::parse(const std::string &text)
{
    const auto bad = [&] {
        fatal("shard: expected 'i/N' with 1 <= i <= N (got '" + text + "')");
    };
    const std::size_t slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size()) {
        bad();
    }
    const std::string a = text.substr(0, slash);
    const std::string b = text.substr(slash + 1);
    for (const std::string &part : {a, b})
        for (char c : part)
            if (c < '0' || c > '9')
                bad();
    // Bounded well below INT_MAX; nobody shards one grid 10^6 ways.
    if (a.size() > 6 || b.size() > 6)
        bad();
    ShardSpec s;
    s.index = std::atoi(a.c_str());
    s.count = std::atoi(b.c_str());
    if (s.index < 1 || s.count < 1 || s.index > s.count)
        bad();
    return s;
}

JsonlResultWriter::JsonlResultWriter(const std::string &path,
                                     const ScenarioSpec &spec,
                                     std::size_t total_runs, ShardSpec shard,
                                     bool traces)
    : path(path), faultAfter(envFaultIndex("MEMTHERM_FAULT_AFTER_RUN"))
{
    out.open(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("stream: cannot open '" + path + "' for writing");

    Json h = Json::object();
    h.set("type", "header");
    h.set("format", kStreamFormatVersion);
    h.set("schema_version", kResultSchemaVersion);
    h.set("scenario", spec.name);
    h.set("spec_hash", scenarioSpecHash(spec));
    h.set("total_runs", static_cast<std::uint64_t>(total_runs));
    if (shard.sharded()) {
        Json sh = Json::object();
        sh.set("index", shard.index);
        sh.set("count", shard.count);
        h.set("shard", std::move(sh));
    }
    h.set("traces", Json(traces));
    h.set("spec", spec.toJson());
    appendLine(h);
}

JsonlResultWriter::JsonlResultWriter(const std::string &path,
                                     std::size_t clean_size)
    : path(path), faultAfter(envFaultIndex("MEMTHERM_FAULT_AFTER_RUN"))
{
    // Drop the crash tail (if any) before appending: everything past the
    // last intact line is garbage by the writer's append-and-flush
    // invariant.
    std::error_code ec;
    std::filesystem::resize_file(path, clean_size, ec);
    if (ec) {
        fatal("stream: cannot truncate '" + path + "' to " +
              std::to_string(clean_size) + " bytes: " + ec.message());
    }
    out.open(path, std::ios::binary | std::ios::app);
    if (!out)
        fatal("stream: cannot open '" + path + "' for appending");
}

void
JsonlResultWriter::appendLine(const Json &record)
{
    std::string line = record.dump(0);
    line += '\n';
    // One write call for the whole line, then a flush: a crash between
    // appends leaves only intact lines, a crash mid-append leaves one
    // partial *trailing* line that scanStream() detects and drops.
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
    out.flush();
    if (!out)
        fatal("stream: write to '" + path + "' failed (disk full?)");
}

void
JsonlResultWriter::appendResult(std::size_t index, const std::string &point,
                                const std::string &workload,
                                const std::string &policy, const SimResult &r,
                                double wall_s, bool traces)
{
    Json j = Json::object();
    j.set("type", "result");
    j.set("index", static_cast<std::uint64_t>(index));
    j.set("point", point);
    j.set("workload", workload);
    j.set("policy", policy);
    j.set("wall_s", wall_s);
    j.set("result", toJson(r, traces));
    appendLine(j);

    // Fault injection: simulate a hard crash (no unwinding, no flush of
    // anything else) once this process has persisted `faultAfter`
    // results. The line above is already on disk — exactly the state a
    // real mid-grid kill leaves behind.
    if (faultAfter >= 0 && ++resultsWritten >= faultAfter)
        std::_Exit(86);
}

void
JsonlResultWriter::appendError(std::size_t index, const std::string &point,
                               const std::string &workload,
                               const std::string &policy,
                               const std::string &error)
{
    Json j = Json::object();
    j.set("type", "error");
    j.set("index", static_cast<std::uint64_t>(index));
    j.set("point", point);
    j.set("workload", workload);
    j.set("policy", policy);
    j.set("error", error);
    appendLine(j);
}

StreamScan
scanStream(const std::string &path, bool keep_results)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("stream: cannot open '" + path + "'");

    StreamScan scan;
    std::size_t lineno = 0;
    std::string line;
    while (std::getline(in, line)) {
        ++lineno;
        // getline() hitting EOF before a '\n' is the crash signature:
        // the writer always terminates lines, so an unterminated tail
        // is a torn append. Drop it; cleanSize already marks the cut.
        if (in.eof()) {
            scan.droppedPartialTail = true;
            warn("stream '" + path + "': dropping partial trailing line " +
                 std::to_string(lineno) + " (crash tail)");
            break;
        }

        const std::string where =
            "stream '" + path + "' line " + std::to_string(lineno);
        Json j;
        try {
            j = Json::parse(line);
        } catch (const FatalError &e) {
            // Mid-file damage cannot come from a crash of this writer;
            // refuse to guess what the stream meant.
            fatal(where + ": corrupt record: " + e.what());
        }
        if (!j.isObject())
            fatal(where + ": record is not a JSON object");
        const std::string type = streamMemberString(j, "type", where);

        if (lineno == 1) {
            if (type != "header")
                fatal(where + ": first line must be the stream header");
            const int format = static_cast<int>(
                streamMemberNumber(j, "format", where));
            if (format != kStreamFormatVersion) {
                fatal(where + ": format " + std::to_string(format) +
                      " does not match this binary's format " +
                      std::to_string(kStreamFormatVersion));
            }
            // Result-document schema: absent means v1 (legacy stream,
            // readable as-is); newer than this binary is refused.
            (void)resultSchemaVersionOf(j, where);
            scan.specHash = streamMemberString(j, "spec_hash", where);
            scan.totalRuns = streamMemberIndex(j, "total_runs", where);
            const Json *tr = j.find("traces");
            if (!tr || !tr->isBool())
                fatal(where + ": missing or non-bool member 'traces'");
            scan.traces = tr->asBool();
            if (const Json *sh = j.find("shard")) {
                scan.shard.index = static_cast<int>(
                    streamMemberIndex(*sh, "index", where + " shard"));
                scan.shard.count = static_cast<int>(
                    streamMemberIndex(*sh, "count", where + " shard"));
            }
            const Json *spec = j.find("spec");
            if (!spec || !spec->isObject())
                fatal(where + ": missing or non-object member 'spec'");
            scan.spec = ScenarioSpec::fromJson(*spec);
            scan.cleanSize += line.size() + 1;
            continue;
        }

        StreamRecord rec;
        if (type == "result") {
            rec.failed = false;
        } else if (type == "error") {
            rec.failed = true;
        } else {
            fatal(where + ": unknown record type '" + type + "'");
        }
        rec.index = streamMemberIndex(j, "index", where);
        if (rec.index >= scan.totalRuns) {
            fatal(where + ": run index " + std::to_string(rec.index) +
                  " is out of range (grid has " +
                  std::to_string(scan.totalRuns) + " runs)");
        }
        rec.point = streamMemberString(j, "point", where);
        rec.workload = streamMemberString(j, "workload", where);
        rec.policy = streamMemberString(j, "policy", where);
        if (rec.failed) {
            rec.error = streamMemberString(j, "error", where);
        } else {
            rec.wallSeconds = streamMemberNumber(j, "wall_s", where);
            const Json *res = j.find("result");
            if (!res || !res->isObject())
                fatal(where + ": missing or non-object member 'result'");
            if (keep_results)
                rec.result = *res;
        }
        scan.records.push_back(std::move(rec));
        scan.cleanSize += line.size() + 1;
    }
    if (lineno == 0)
        fatal("stream '" + path + "' is empty");
    return scan;
}

namespace
{

/**
 * Sink behind runScenarioStream(): persists each result/failure the
 * moment it arrives, mapping the engine's filtered batch index back to
 * the global grid index the stream speaks.
 */
class StreamWriteSink : public RunSink
{
  public:
    StreamWriteSink(JsonlResultWriter &writer, const GridIndex &grid,
                    std::vector<std::size_t> global, bool traces)
        : writer(writer), grid(grid), global(std::move(global)),
          traces(traces)
    {
    }

    void onResult(std::size_t i, SimResult &&r, double wall_s) override
    {
        const std::size_t k = global[i];
        writer.appendResult(k, grid.point(k), grid.workload(k),
                            grid.policy(k), r, wall_s, traces);
    }

    void onFailure(std::size_t i, std::exception_ptr err) override
    {
        const std::size_t k = global[i];
        RunError e;
        e.index = k;
        e.point = grid.point(k);
        e.workload = grid.workload(k);
        e.policy = grid.policy(k);
        e.error = whatOf(err);
        writer.appendError(k, e.point, e.workload, e.policy, e.error);
        failures.push_back(std::move(e));
    }

    JsonlResultWriter &writer;
    const GridIndex &grid;
    std::vector<std::size_t> global; ///< batch index -> global index
    bool traces;
    std::vector<RunError> failures;
};

} // namespace

StreamRunStats
runScenarioStream(const ScenarioSpec &spec, ExperimentEngine &engine,
                  const StreamRunOptions &opts)
{
    LoweredScenario low = spec.lower();
    GridIndex grid(low);

    std::vector<ExperimentEngine::Run> all;
    all.reserve(low.totalRuns());
    for (const auto &pt : low.points)
        for (const auto &r : pt.runs)
            all.push_back(r);
    // Inject on the full list, before shard/resume filtering, so an
    // injected index names the same run under every invocation shape.
    applyFaultInjection(all);

    StreamRunStats stats;
    stats.totalRuns = all.size();

    std::error_code ec;
    const bool exists = std::filesystem::exists(opts.path, ec) && !ec;
    const std::uintmax_t size =
        exists ? std::filesystem::file_size(opts.path, ec) : 0;
    const bool nonEmpty = exists && !ec && size > 0;

    // Which global indices already hold a result. Errored indices stay
    // absent — a resume retries them (most failures are environmental).
    std::vector<bool> completed(all.size(), false);
    std::size_t cleanSize = 0;
    if (opts.resume && nonEmpty) {
        StreamScan scan = scanStream(opts.path, /*keep_results=*/false);
        const std::string want = scenarioSpecHash(spec);
        if (scan.specHash != want) {
            fatal("stream '" + opts.path +
                  "': scenario spec does not match (stream has " +
                  scan.specHash + ", scenario hashes to " + want +
                  "); refusing to mix results from different scenarios");
        }
        if (scan.totalRuns != all.size()) {
            fatal("stream '" + opts.path + "': header says " +
                  std::to_string(scan.totalRuns) + " runs but the "
                  "scenario lowers to " + std::to_string(all.size()));
        }
        if (!(scan.shard == opts.shard)) {
            fatal("stream '" + opts.path + "': header shard " +
                  scan.shard.label() + " does not match --shard " +
                  opts.shard.label());
        }
        if (scan.traces != opts.traces) {
            fatal("stream '" + opts.path + "': header traces flag does "
                  "not match --traces; a stream cannot mix trace and "
                  "trace-free records");
        }
        for (const auto &rec : scan.records)
            if (!rec.failed)
                completed[rec.index] = true;
        cleanSize = scan.cleanSize;
    } else if (!opts.resume && nonEmpty) {
        fatal("stream '" + opts.path + "' already exists and is not "
              "empty; pass --resume to continue it or remove it to "
              "start over");
    }
    const bool resuming = opts.resume && nonEmpty;

    // This shard's slice, minus what the stream already has.
    std::vector<ExperimentEngine::Run> todo;
    std::vector<std::size_t> global;
    for (std::size_t k = 0; k < all.size(); ++k) {
        if (!opts.shard.owns(k))
            continue;
        ++stats.shardRuns;
        if (completed[k]) {
            ++stats.skipped;
            continue;
        }
        todo.push_back(all[k]);
        global.push_back(k);
    }
    stats.executed = todo.size();

    JsonlResultWriter writer =
        resuming ? JsonlResultWriter(opts.path, cleanSize)
                 : JsonlResultWriter(opts.path, spec, all.size(),
                                     opts.shard, opts.traces);

    StreamWriteSink sink(writer, grid, std::move(global), opts.traces);
    engine.run(todo, sink);

    std::sort(sink.failures.begin(), sink.failures.end(),
              [](const RunError &a, const RunError &b) {
                  return a.index < b.index;
              });
    stats.failed = sink.failures.size();
    stats.failures = std::move(sink.failures);
    return stats;
}

MergedStream
mergeStreams(const std::vector<std::string> &paths)
{
    if (paths.empty())
        fatal("merge: no stream files given");

    MergedStream out;
    // Global index -> best record seen so far. A result always beats an
    // error (a retry succeeded after a recorded failure); duplicate
    // results keep the first — the engine's determinism makes them
    // bit-identical, so there is nothing to choose between.
    std::vector<const StreamRecord *> best;
    std::vector<StreamScan> scans;
    scans.reserve(paths.size());

    std::string refHash;
    for (const auto &path : paths) {
        StreamScan scan = scanStream(path, /*keep_results=*/true);
        if (scans.empty()) {
            refHash = scan.specHash;
            out.spec = scan.spec;
            out.totalRuns = scan.totalRuns;
            best.assign(scan.totalRuns, nullptr);
        } else {
            if (scan.specHash != refHash) {
                fatal("merge: '" + path + "' records a different "
                      "scenario than '" + paths.front() +
                      "' (spec hashes " + scan.specHash + " vs " +
                      refHash + ")");
            }
            if (scan.totalRuns != out.totalRuns) {
                fatal("merge: '" + path + "' says " +
                      std::to_string(scan.totalRuns) + " runs but '" +
                      paths.front() + "' says " +
                      std::to_string(out.totalRuns));
            }
        }
        scans.push_back(std::move(scan));
    }
    for (const auto &scan : scans) {
        for (const auto &rec : scan.records) {
            const StreamRecord *cur = best[rec.index];
            if (!cur || (cur->failed && !rec.failed))
                best[rec.index] = &rec;
        }
    }

    // Canonical document: re-lower the embedded spec for the grid
    // geometry, slot records by index, and emit workloads/policies in
    // sorted order — exactly how toJson(ScenarioResults) iterates its
    // std::map keys — so merged bytes equal `run -o` bytes.
    LoweredScenario low = out.spec.lower();
    if (low.totalRuns() != out.totalRuns) {
        fatal("merge: embedded spec lowers to " +
              std::to_string(low.totalRuns()) + " runs but the header "
              "says " + std::to_string(out.totalRuns) +
              " (stream written by an incompatible version?)");
    }
    GridIndex grid(low);

    Json doc = Json::object();
    doc.set("scenario", out.spec.name);
    // Mirror toJson(ScenarioResults): stamp the *minimum* schema version
    // the merged members imply (3 for per-bank peaks, 2 for the refresh
    // fields, nothing for the historical set), so refresh-free merges
    // stay byte-identical to documents written by older binaries.
    bool hasV2 = false, hasV3 = false;
    for (const StreamRecord *rec : best) {
        if (!rec || rec->failed)
            continue;
        hasV2 |= rec->result.find("refresh_bw_loss_per_dimm_gb") != nullptr;
        hasV3 |= rec->result.find("peak_bank_dram_c") != nullptr;
    }
    if (hasV3)
        doc.set("schema_version", 3);
    else if (hasV2)
        doc.set("schema_version", 2);
    Json pts = Json::array();
    for (std::size_t p = 0; p < grid.pointLabels.size(); ++p) {
        std::map<std::string, std::map<std::string, const Json *>> suite;
        for (std::size_t j = 0; j < grid.perPoint; ++j) {
            const std::size_t k = p * grid.perPoint + j;
            const StreamRecord *rec = best[k];
            if (rec && !rec->failed)
                suite[grid.workload(k)][grid.policy(k)] = &rec->result;
        }
        Json results = Json::object();
        for (const auto &[w, per_policy] : suite) {
            Json pw = Json::object();
            for (const auto &[pol, res] : per_policy)
                pw.set(pol, *res);
            results.set(w, std::move(pw));
        }
        Json pj = Json::object();
        pj.set("label", grid.pointLabels[p]);
        pj.set("results", std::move(results));
        pts.push(std::move(pj));
    }
    doc.set("points", std::move(pts));

    for (std::size_t k = 0; k < out.totalRuns; ++k) {
        const StreamRecord *rec = best[k];
        if (!rec)
            out.missingRuns.push_back(k);
        else if (rec->failed)
            out.errors.push_back(*rec);
    }
    if (!out.errors.empty()) {
        Json errs = Json::array();
        for (const auto &e : out.errors) {
            Json o = Json::object();
            o.set("index", static_cast<std::uint64_t>(e.index));
            o.set("point", e.point);
            o.set("workload", e.workload);
            o.set("policy", e.policy);
            o.set("error", e.error);
            errs.push(std::move(o));
        }
        doc.set("errors", std::move(errs));
    }
    out.results = std::move(doc);
    return out;
}

OnlineAxisAggregator::OnlineAxisAggregator(std::string baseline_policy)
    : baseline(std::move(baseline_policy))
{
}

void
OnlineAxisAggregator::add(const std::string &point,
                          const std::string &workload,
                          const std::string &policy, bool completed,
                          double time_s, double max_amb, double max_dram)
{
    auto [it, fresh] = pointIx.try_emplace(point, points.size());
    if (fresh) {
        points.emplace_back();
        points.back().label = point;
    }
    PointSummary &ps = points[it->second];
    ++ps.runs;
    if (!completed)
        ++ps.incomplete;
    ps.maxAmb = std::max(ps.maxAmb, max_amb);
    ps.maxDram = std::max(ps.maxDram, max_dram);

    // '\0' cannot appear in a label, so the key is collision-free.
    // Only the *baseline's* usability gates normalization — an
    // incomplete non-baseline run still normalizes (its time is the
    // simulation cap, a meaningful lower bound), exactly as the
    // report's per-row column has always behaved.
    Group &g = groups[point + '\0' + workload];
    if (policy == baseline) {
        g.baseSeen = true;
        g.baseUsable = completed && time_s > 0.0;
        g.baseTime = time_s;
        if (g.baseUsable) {
            ps.normSum += 1.0; // the baseline itself, at ratio 1
            ++ps.normN;
            for (double t : g.pending) {
                ps.normSum += t / g.baseTime;
                ++ps.normN;
            }
        }
        // An unusable baseline (incomplete run) makes the whole group's
        // ratios meaningless — the held times are dropped either way.
        g.pending.clear();
        return;
    }
    if (!g.baseSeen) {
        g.pending.push_back(time_s);
    } else if (g.baseUsable) {
        ps.normSum += time_s / g.baseTime;
        ++ps.normN;
    }
}

std::vector<OnlineAxisAggregator::PointSummary>
OnlineAxisAggregator::summaries() const
{
    return points;
}

} // namespace memtherm
