/**
 * @file
 * Crash-safe streaming results: the JSONL sink behind `memtherm run
 * --stream`, and everything needed to trust it.
 *
 * A scenario grid of ~10^5 points cannot afford to materialize every
 * SimResult in memory and write one JSON blob at the end — a killed
 * 10-hour run would lose everything, and one throwing run would discard
 * the whole grid. This layer streams instead:
 *
 *  - JsonlResultWriter appends one self-describing line per completed
 *    run (grid index, axis labels, serialized SimResult, wall time) the
 *    moment it finishes. Appends are crash-atomic: the full line is
 *    written in one call and flushed, so a crash can only ever produce
 *    a partial *trailing* line, which readers detect and drop.
 *  - scanStream() reads a stream back: header validation (the spec
 *    hash must match the scenario being resumed), intact records, and
 *    the clean byte size to truncate to before appending again.
 *  - runScenarioStream() orchestrates checkpoint/resume (`--resume`
 *    skips already-completed grid indices) and deterministic sharding
 *    (`--shard i/N` partitions the global run list so N machines split
 *    one scenario file).
 *  - mergeStreams() folds shard/resume streams back into the canonical
 *    results JSON, bit-identical to what an uninterrupted unsharded
 *    `memtherm run -o` writes.
 *  - OnlineAxisAggregator keeps `memtherm report` sweep summaries in
 *    bounded memory: per-point aggregates, not a full result vector.
 *
 * A failed run becomes an error record in the stream (grid coordinate
 * + what()) instead of sinking the batch; `--resume` retries failed
 * indices (a crash is transient until proven otherwise) and skips
 * completed ones.
 *
 * Fault injection for tests: MEMTHERM_FAULT_AFTER_RUN=<k> makes the
 * writer simulate a hard crash (std::_Exit) immediately after the k-th
 * result line of this process is on disk; MEMTHERM_FAULT_FAIL_RUN=<k>
 * (scenario.hh) makes global run #k throw.
 */

#ifndef MEMTHERM_CORE_SIM_RESULT_SINK_HH
#define MEMTHERM_CORE_SIM_RESULT_SINK_HH

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/sim/scenario.hh"

namespace memtherm
{

/// Bumped whenever the stream schema changes; readers reject newer (or
/// older) formats instead of misparsing them. Orthogonal to the result
/// *document* schema (kResultSchemaVersion, core/sim/scenario.hh):
/// stream headers additionally record the document schema version their
/// result payloads follow, and scanStream() accepts version-absent
/// legacy streams but rejects versions newer than this binary's.
inline constexpr int kStreamFormatVersion = 1;

/**
 * Stable fingerprint of a scenario spec (FNV-1a 64 over its compact
 * JSON serialization, prefixed with the stream format version). Stored
 * in the stream header and re-checked on --resume, so results can
 * never silently continue under an edited scenario file or a stream
 * layout the running binary does not speak.
 */
std::string scenarioSpecHash(const ScenarioSpec &spec);

/**
 * One deterministic slice of a run grid: shard @p index of @p count
 * (1-based, as typed: `--shard 2/3`). Global run k belongs to the
 * shard with k % count == index - 1 — a round-robin partition, so
 * shards stay balanced whatever the grid shape and the assignment
 * never depends on execution order.
 */
struct ShardSpec
{
    int index = 1;
    int count = 1;

    bool operator==(const ShardSpec &) const = default;

    bool sharded() const { return count > 1; }
    bool owns(std::size_t global_index) const
    {
        return static_cast<int>(global_index %
                                static_cast<std::size_t>(count)) ==
               index - 1;
    }
    std::string label() const
    {
        return std::to_string(index) + "/" + std::to_string(count);
    }

    /** Parse "i/N"; FatalError unless 1 <= i <= N. */
    static ShardSpec parse(const std::string &text);
};

/** One intact data line of a stream, either a result or a failure. */
struct StreamRecord
{
    bool failed = false;
    std::size_t index = 0; ///< global run index in spec grid order
    std::string point;     ///< sweep-point label
    std::string workload;
    std::string policy;
    double wallSeconds = 0.0; ///< results only
    Json result;              ///< serialized SimResult; results only
    std::string error;        ///< what(); failures only
};

/**
 * Append-as-you-finish JSONL writer. One header line describing the
 * grid (format version, spec hash, the full spec, total run count,
 * shard), then one line per finished run. Every append builds the
 * complete line in memory, writes it in a single call, and flushes —
 * so the on-disk stream always ends in (at most one) partial line and
 * every earlier line is intact. Not internally synchronized: the
 * engine already serializes sink callbacks (RunSink contract).
 */
class JsonlResultWriter
{
  public:
    /** Start a fresh stream at @p path (truncates; writes the header). */
    JsonlResultWriter(const std::string &path, const ScenarioSpec &spec,
                      std::size_t total_runs, ShardSpec shard, bool traces);

    /**
     * Resume an existing stream: truncate @p path to @p clean_size
     * (dropping a partial trailing line from a crash) and append after
     * it. The caller has already validated the header via scanStream().
     */
    JsonlResultWriter(const std::string &path, std::size_t clean_size);

    void appendResult(std::size_t index, const std::string &point,
                      const std::string &workload,
                      const std::string &policy, const SimResult &r,
                      double wall_s, bool traces);

    void appendError(std::size_t index, const std::string &point,
                     const std::string &workload, const std::string &policy,
                     const std::string &error);

  private:
    void appendLine(const Json &record);

    std::string path;
    std::ofstream out;
    int faultAfter = -1;     ///< MEMTHERM_FAULT_AFTER_RUN; -1 = off
    int resultsWritten = 0;  ///< result lines appended by this process
};

/** Everything scanStream() learns from an existing stream file. */
struct StreamScan
{
    ScenarioSpec spec;       ///< the header's embedded scenario
    std::string specHash;    ///< as recorded (always re-derivable)
    std::size_t totalRuns = 0;
    ShardSpec shard;
    bool traces = false;

    std::vector<StreamRecord> records; ///< intact data lines, file order
    std::size_t cleanSize = 0; ///< bytes up to the last intact line
    bool droppedPartialTail = false; ///< a crash tail was detected
};

/**
 * Read a stream back. The header is validated (format version, member
 * types); every complete data line must parse — mid-file corruption is
 * an error naming the line, it cannot come from a crash of the
 * append-and-flush writer. An unterminated trailing line is the crash
 * signature: dropped, with cleanSize marking where to truncate before
 * resuming. @p keep_results false discards the (large) per-run result
 * payloads and keeps only run identities — all resume needs.
 */
StreamScan scanStream(const std::string &path, bool keep_results = true);

/** Options for runScenarioStream(). */
struct StreamRunOptions
{
    std::string path;     ///< the JSONL stream file
    bool resume = false;  ///< continue an existing stream
    ShardSpec shard;      ///< this invocation's slice of the grid
    bool traces = false;  ///< embed full traces in result lines
};

/** What one runScenarioStream() invocation did. */
struct StreamRunStats
{
    std::size_t totalRuns = 0; ///< full grid size
    std::size_t shardRuns = 0; ///< runs this shard owns
    std::size_t skipped = 0;   ///< already complete in the stream
    std::size_t executed = 0;  ///< runs executed by this invocation
    std::size_t failed = 0;    ///< of those, how many failed
    std::vector<RunError> failures; ///< this invocation's failures
};

/**
 * Execute a scenario with streaming results: lower the grid, filter to
 * this shard (and, on resume, to indices the stream has not completed),
 * and append each result to the stream as it finishes. On resume the
 * header's spec hash, total run count, shard, and traces flag must all
 * match — FatalError otherwise; failed indices are retried. A resume
 * of a missing or empty stream file starts fresh (so unattended
 * restart loops can always pass --resume).
 */
StreamRunStats runScenarioStream(const ScenarioSpec &spec,
                                 ExperimentEngine &engine,
                                 const StreamRunOptions &opts);

/** mergeStreams() output: the canonical view of one or more streams. */
struct MergedStream
{
    ScenarioSpec spec;
    std::size_t totalRuns = 0;
    Json results; ///< canonical results JSON (`run -o` shape)
    std::vector<StreamRecord> errors;       ///< failure records, by index
    std::vector<std::size_t> missingRuns;   ///< indices with no record
};

/**
 * Fold one or more streams (shards of one grid, or one resumed stream)
 * into the canonical results document. Every stream's header must
 * fingerprint the same scenario (same spec hash, total, traces flag).
 * Records are slotted by global index into spec grid order, so the
 * output is bit-identical to an uninterrupted unsharded `memtherm run
 * -o` — whatever order, interruption, or sharding produced the lines.
 * A result record wins over an error record for the same index (a
 * retry succeeded); duplicate results keep the first (they are
 * bit-identical by the engine's determinism guarantee).
 */
MergedStream mergeStreams(const std::vector<std::string> &paths);

/**
 * Bounded-memory per-axis aggregation for sweep summaries: one
 * accumulator per sweep point (count, incomplete count, thermal
 * maxima, mean baseline-normalized running time), fed one run at a
 * time in any order. Memory is O(points), never O(runs): the full
 * result vector no longer has to exist to summarize a large grid.
 *
 * Normalization matches `memtherm report`: a run's time divides by its
 * (point, workload) group's baseline running time, counted only when
 * the baseline run completed with a positive time. Runs that arrive
 * before their baseline are held per group (bounded by the policy
 * count) and flushed when it shows up.
 */
class OnlineAxisAggregator
{
  public:
    /** @param baseline_policy the normalization baseline's name */
    explicit OnlineAxisAggregator(std::string baseline_policy);

    void add(const std::string &point, const std::string &workload,
             const std::string &policy, bool completed, double time_s,
             double max_amb, double max_dram);

    struct PointSummary
    {
        std::string label;
        std::size_t runs = 0;
        std::size_t incomplete = 0;
        double maxAmb = std::numeric_limits<double>::lowest();
        double maxDram = std::numeric_limits<double>::lowest();
        double normSum = 0.0;  ///< sum of time / baseline-time
        std::size_t normN = 0; ///< runs with a usable baseline
    };

    /** Per-point summaries, in first-appearance order. */
    std::vector<PointSummary> summaries() const;

  private:
    struct Group ///< one (point, workload) normalization group
    {
        bool baseSeen = false;
        bool baseUsable = false;
        double baseTime = 0.0;
        std::vector<double> pending; ///< times awaiting the baseline
    };

    std::string baseline;
    std::vector<PointSummary> points;           // first-appearance order
    std::map<std::string, std::size_t> pointIx; // label -> points index
    std::map<std::string, Group> groups;        // "label\0workload"
};

} // namespace memtherm

#endif // MEMTHERM_CORE_SIM_RESULT_SINK_HH
