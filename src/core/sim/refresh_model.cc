#include "core/sim/refresh_model.hh"

#include "common/logging.hh"
#include "core/thermal/thermal_params.hh"

namespace memtherm
{

const RefreshBand &
RefreshModel::bandAt(Celsius t) const
{
    panicIfNot(!bands.empty(), "RefreshModel::bandAt on an empty model");
    const RefreshBand *hit = &bands.front();
    for (const RefreshBand &b : bands) {
        if (b.minTemp <= t)
            hit = &b;
        else
            break;
    }
    return *hit;
}

namespace
{

/// Nominal DDR2 refresh overhead: tRFC/tREFI for 1 Gb devices
/// (127.5 ns / 7.8 us) is ~1.6% of the device's cycles.
constexpr double kNominalBwFraction = 0.016;
constexpr Watts kNominalDramPower = 0.15;

RefreshBand
nominalBand()
{
    RefreshBand b;
    b.bwFraction = kNominalBwFraction;
    b.dramPower = kNominalDramPower;
    return b;
}

/// The double-rate band above the DRAM TDP: tREFI halves, so both the
/// stolen bandwidth and the refresh power double.
RefreshBand
doubledBand()
{
    RefreshBand b = nominalBand();
    b.minTemp = ThermalLimits{}.dramTdp;
    b.bwFraction = 2.0 * kNominalBwFraction;
    b.dramPower = 2.0 * kNominalDramPower;
    return b;
}

} // namespace

RefreshModel
ddr2DoubleRefreshModel()
{
    RefreshModel m;
    m.bands = {nominalBand(), doubledBand()};
    return m;
}

RefreshModel
aldramRefreshModel()
{
    RefreshModel m = ddr2DoubleRefreshModel();
    // Relax access timings on cool DIMMs (AL-DRAM): split the nominal
    // band into cool / warm / nominal latency tiers below the TDP.
    RefreshBand cool = m.bands.front();
    cool.latencyMult = 0.85;
    RefreshBand warm = m.bands.front();
    warm.minTemp = 55.0;
    warm.latencyMult = 0.925;
    RefreshBand nominal = m.bands.front();
    nominal.minTemp = 70.0;
    m.bands = {cool, warm, nominal, m.bands.back()};
    return m;
}

} // namespace memtherm
