/**
 * @file
 * Outputs of one MEMSpot simulation run.
 */

#ifndef MEMTHERM_CORE_SIM_SIM_RESULT_HH
#define MEMTHERM_CORE_SIM_SIM_RESULT_HH

#include <string>
#include <vector>

#include "common/time_series.hh"
#include "common/units.hh"

namespace memtherm
{

/** Aggregate statistics and traces of one (workload, policy) run. */
struct SimResult
{
    std::string workload;
    std::string policy;

    bool completed = false;     ///< batch finished before maxSimTime
    Seconds runningTime = 0.0;  ///< total batch running time

    double totalInstr = 0.0;       ///< instructions executed
    double totalReadGB = 0.0;      ///< read traffic
    double totalWriteGB = 0.0;     ///< write traffic
    double totalL2Misses = 0.0;    ///< demand L2 misses

    Joules memEnergy = 0.0;   ///< FBDIMM subsystem energy
    Joules cpuEnergy = 0.0;   ///< processor energy

    Celsius maxAmb = 0.0;        ///< hottest AMB temperature seen
    Celsius maxDram = 0.0;       ///< hottest DRAM temperature seen
    Seconds timeAboveAmbTdp = 0.0;
    Seconds timeAboveDramTdp = 0.0;

    /// Per-DIMM peak temperatures on the representative channel, index 0
    /// nearest the memory controller (one entry per DIMM of the run's
    /// memory organization) — the thermal-gradient view of Section 3.4.
    std::vector<Celsius> peakAmbPerDimm;
    std::vector<Celsius> peakDramPerDimm;

    /// Per-DIMM mean power (AMB + DRAMs) on the representative channel
    /// over the run, same indexing — how a traffic_shape skew or a
    /// deeper chain redistributes the heat sources. Summed over the
    /// channel and scaled by the channel count this recovers
    /// avgMemPower().
    std::vector<Watts> avgPowerPerDimm;

    /// Per-DIMM refresh accounting on the representative channel, same
    /// indexing, sized only when the run's refresh model is active
    /// (SimConfig::refresh non-empty; both stay empty otherwise so the
    /// serialized member set — and every pre-refresh golden — is
    /// unchanged). Bandwidth loss is the sustainable-bandwidth
    /// capability refresh consumed on that DIMM's share of traffic,
    /// integrated over the run (GB); energy is the band's refresh power
    /// folded over the run (J).
    std::vector<double> refreshBwLossPerDimm;
    std::vector<Joules> refreshEnergyPerDimm;

    /// Per-bank peak DRAM temperatures on the representative channel:
    /// bankGridX * bankGridZ cells per DIMM, row-major by DIMM (DIMM 0's
    /// cells first, cell (ix, iz) at iz * bankGridX + ix), sized only
    /// when the run's bank-grid thermal model is active
    /// (SimConfig::bankGrid set; empty otherwise so the serialized
    /// member set — and every pre-grid golden — is unchanged). These
    /// are the schema v3 result fields.
    int bankGridX = 0;
    int bankGridZ = 0;
    std::vector<Celsius> peakBankDramPerDimm;

    TimeSeries ambTrace{1.0};      ///< hottest AMB temperature over time
    TimeSeries dramTrace{1.0};     ///< hottest DRAM temperature over time
    TimeSeries inletTrace{1.0};    ///< memory inlet temperature over time
    TimeSeries cpuPowerTrace{1.0}; ///< CPU power over time
    TimeSeries bwTrace{1.0};       ///< achieved memory throughput over time

    /** Total memory traffic in GB. */
    double totalTrafficGB() const { return totalReadGB + totalWriteGB; }
    /** Mean CPU power over the run. */
    Watts avgCpuPower() const
    {
        return runningTime > 0.0 ? cpuEnergy / runningTime : 0.0;
    }
    /** Mean memory power over the run. */
    Watts avgMemPower() const
    {
        return runningTime > 0.0 ? memEnergy / runningTime : 0.0;
    }
    /** Mean achieved bandwidth over the run. */
    GBps avgBandwidth() const
    {
        return runningTime > 0.0 ? totalTrafficGB() / runningTime : 0.0;
    }
};

} // namespace memtherm

#endif // MEMTHERM_CORE_SIM_SIM_RESULT_HH
