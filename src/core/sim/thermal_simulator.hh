/**
 * @file
 * The two-level thermal simulator (Section 4.3.1, Fig. 4.1).
 *
 * Level 1 (the paper's cycle-accurate M5 + FBDIMM simulator) is the
 * analytic performance model in src/cpu: for each 10 ms window it produces
 * the IPC and memory throughput of the current design point (active cores,
 * frequency/voltage, bandwidth cap). Level 2 ("MEMSpot") consumes those
 * windows: it evaluates the FBDIMM power model, advances the thermal RC
 * network and the ambient node, and invokes the DTM policy at every DTM
 * interval. Batch-job scheduling (N copies of each application, round-
 * robin core assignment, Section 4.3.2) lives here too.
 */

#ifndef MEMTHERM_CORE_SIM_THERMAL_SIMULATOR_HH
#define MEMTHERM_CORE_SIM_THERMAL_SIMULATOR_HH

#include "core/dtm/dtm_policy.hh"
#include "core/sim/sim_config.hh"
#include "core/sim/sim_result.hh"
#include "workloads/workload.hh"

namespace memtherm
{

/**
 * Runs one (workload, policy) experiment to batch completion.
 */
class ThermalSimulator
{
  public:
    explicit ThermalSimulator(SimConfig cfg);

    /**
     * Reusable working memory for run().
     *
     * The window loop executes up to maxSimTime / window (potentially
     * millions of) iterations; every per-window container lives here so
     * the steady state performs no heap allocation. Invariants:
     *  - run() clears/refills each buffer every window and never reads a
     *    value left over from a previous window or a previous run, so a
     *    Scratch may be reused across runs in any order;
     *  - buffer capacity only grows (bounded by the core count), it is
     *    never released between windows;
     *  - a Scratch must not be shared by two concurrent run() calls.
     *    The ExperimentEngine keeps one per worker thread.
     */
    struct Scratch
    {
        std::vector<BatchJob::Instance *> slot; ///< per-core job slots
        std::vector<std::size_t> occupied;  ///< slots holding a job
        std::vector<std::size_t> scheduled; ///< slots picked to run
        std::vector<double> sharers;        ///< L2 sharer count per task
        std::vector<CoreTask> tasks;        ///< level-1 window inputs
        std::vector<double> taskMpki;       ///< effective mpki per task
        std::vector<double> activities;     ///< per-core activity factors
        WindowPerf perf;                    ///< level-1 window solution
    };

    /**
     * Simulate the workload's batch job under the policy. The policy is
     * reset() first; a fresh thermal state (idle at ambient) is used.
     * Allocates a private Scratch; prefer the Scratch overload when
     * running many experiments back to back.
     */
    SimResult run(const Workload &mix, DtmPolicy &policy) const;

    /** As run() above, but reusing caller-owned working memory. */
    SimResult run(const Workload &mix, DtmPolicy &policy,
                  Scratch &scratch) const;

    const SimConfig &config() const { return cfg; }

  private:
    SimConfig cfg;
};

} // namespace memtherm

#endif // MEMTHERM_CORE_SIM_THERMAL_SIMULATOR_HH
