/**
 * @file
 * The two-level thermal simulator (Section 4.3.1, Fig. 4.1).
 *
 * Level 1 (the paper's cycle-accurate M5 + FBDIMM simulator) is the
 * analytic performance model in src/cpu: for each 10 ms window it produces
 * the IPC and memory throughput of the current design point (active cores,
 * frequency/voltage, bandwidth cap). Level 2 ("MEMSpot") consumes those
 * windows: it evaluates the FBDIMM power model, advances the thermal RC
 * network and the ambient node, and invokes the DTM policy at every DTM
 * interval. Batch-job scheduling (N copies of each application, round-
 * robin core assignment, Section 4.3.2) lives here too.
 */

#ifndef MEMTHERM_CORE_SIM_THERMAL_SIMULATOR_HH
#define MEMTHERM_CORE_SIM_THERMAL_SIMULATOR_HH

#include "core/dtm/dtm_policy.hh"
#include "core/sim/sim_config.hh"
#include "core/sim/sim_result.hh"
#include "workloads/workload.hh"

namespace memtherm
{

/**
 * Runs one (workload, policy) experiment to batch completion.
 */
class ThermalSimulator
{
  public:
    explicit ThermalSimulator(SimConfig cfg);

    /**
     * Simulate the workload's batch job under the policy. The policy is
     * reset() first; a fresh thermal state (idle at ambient) is used.
     */
    SimResult run(const Workload &mix, DtmPolicy &policy) const;

    const SimConfig &config() const { return cfg; }

  private:
    SimConfig cfg;
};

} // namespace memtherm

#endif // MEMTHERM_CORE_SIM_THERMAL_SIMULATOR_HH
