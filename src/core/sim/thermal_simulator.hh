/**
 * @file
 * The two-level thermal simulator (Section 4.3.1, Fig. 4.1).
 *
 * Level 1 (the paper's cycle-accurate M5 + FBDIMM simulator) is the
 * analytic performance model in src/cpu: for each 10 ms window it produces
 * the IPC and memory throughput of the current design point (active cores,
 * frequency/voltage, bandwidth cap). Level 2 ("MEMSpot") consumes those
 * windows: it evaluates the FBDIMM power model, advances the thermal RC
 * network and the ambient node, and invokes the DTM policy at every DTM
 * interval. Batch-job scheduling (N copies of each application, round-
 * robin core assignment, Section 4.3.2) lives here too.
 *
 * Two execution shapes share the same window arithmetic:
 *  - run(): one (workload, policy) experiment, a K=1 view over a private
 *    ThermalBatchState; bit-identical to the historical scalar loop.
 *  - runBatch(): one workload under K policies in lockstep. All K runs
 *    share the simulated prefix until the first DTM decision where their
 *    policies' actions differ; at that window the shared lane is forked
 *    (an exact state snapshot: thermal lane, ambient node, batch-job
 *    progress, sensor RNG position), so every run stays bit-identical to
 *    a from-scratch scalar run. Policies that never diverge (common on
 *    cool operating points) share the entire simulation.
 */

#ifndef MEMTHERM_CORE_SIM_THERMAL_SIMULATOR_HH
#define MEMTHERM_CORE_SIM_THERMAL_SIMULATOR_HH

#include "common/rng.hh"
#include "core/dtm/dtm_policy.hh"
#include "core/sim/sim_config.hh"
#include "core/sim/sim_result.hh"
#include "core/thermal/ambient_model.hh"
#include "core/thermal/memory_thermal.hh"
#include "workloads/workload.hh"

namespace memtherm
{

/**
 * Counters of one batched execution (ThermalSimulator::runBatch, or a
 * whole grid via ExperimentEngine::runBatched). A "logical" window is a
 * window-step credited to a run; a "simulated" window is one actually
 * computed. Shared-prefix execution makes simulated <= logical; the gap
 * is the work saved.
 */
struct BatchStats
{
    double logicalWindows = 0.0;   ///< window-steps credited to runs
    double simulatedWindows = 0.0; ///< window-steps actually computed
    std::size_t forks = 0;         ///< lane forks (policy divergences)

    /** Fraction of logical windows served by a shared prefix. */
    double
    hitRate() const
    {
        return logicalWindows > 0.0
                   ? 1.0 - simulatedWindows / logicalWindows
                   : 0.0;
    }

    void
    add(const BatchStats &o)
    {
        logicalWindows += o.logicalWindows;
        simulatedWindows += o.simulatedWindows;
        forks += o.forks;
    }
};

/**
 * Runs one (workload, policy) experiment to batch completion.
 */
class ThermalSimulator
{
  public:
    explicit ThermalSimulator(SimConfig cfg);

    /**
     * Reusable working memory for run()/runBatch().
     *
     * The window loop executes up to maxSimTime / window (potentially
     * millions of) iterations; every per-window container lives here so
     * the steady state performs no heap allocation. Invariants:
     *  - the loop clears/refills each buffer every window and never reads
     *    a value left over from a previous window or a previous run, so a
     *    Scratch may be reused across runs in any order;
     *  - buffer capacity only grows (bounded by the core count), it is
     *    never released between windows;
     *  - a Scratch must not be shared by two concurrent run() calls.
     *    The ExperimentEngine keeps one per worker thread.
     *
     * Per-run state (core job slots, thermal lanes, RNG) lives in Lane,
     * not here, so lanes can be forked without touching the scratch.
     */
    struct Scratch
    {
        std::vector<std::size_t> occupied;  ///< slots holding a job
        std::vector<std::size_t> scheduled; ///< slots picked to run
        std::vector<double> sharers;        ///< L2 sharer count per task
        std::vector<CoreTask> tasks;        ///< level-1 window inputs
        std::vector<double> taskMpki;       ///< effective mpki per task
        std::vector<double> activities;     ///< per-core activity factors
        WindowPerf perf;                    ///< level-1 window solution
        // Refresh feedback intermediates (cfg.refresh active only):
        // per-DIMM current temperatures and the band's refresh power.
        std::vector<Celsius> refreshAmb;
        std::vector<Celsius> refreshDram;
        std::vector<Watts> refreshPower;
    };

    /**
     * The complete mutable state of one in-flight run: everything a
     * window-step reads or writes that belongs to the run rather than to
     * the shared scratch. The batched path snapshots a run by copy-
     * constructing a Lane onto a fresh thermal-state lane (the fork
     * constructor), which is an exact double-copy — a forked lane
     * continues bit-identically to the lane it forked from.
     */
    struct Lane
    {
        /** Fresh run at t = 0 on lane @p lane_index of @p state. */
        Lane(const SimConfig &cfg, const Workload &mix,
             ThermalBatchState &state, int lane_index);

        /** Fork: exact snapshot of @p src continuing on @p lane_index. */
        Lane(const Lane &src, ThermalBatchState &state, int lane_index);

        Lane(Lane &&) = default;
        Lane &operator=(Lane &&) = default;

        SimResult res;
        BatchJob batch;
        std::vector<BatchJob::Instance *> slot; ///< per-core job slots
        AmbientModel ambient;
        MemoryThermalModel mem; ///< view over one state lane
        Rng sensorRng;
        DtmAction action;
        ThermalReading reading;
        /// Pending migration-cost traffic (GB) from a remap decision,
        /// spent in the window that applied it.
        double remapBurstGb = 0.0;
        Seconds nextDtm = 0.0;
        Seconds nextRotation = 0.0;
        Seconds nextTrace = 0.0;
        std::size_t rotation = 0;
        bool decided = false; ///< a DTM decision landed this window
        Seconds t = 0.0;
        bool live = true; ///< batch unfinished and t < maxSimTime
        // Window-step intermediates carried from the pre phase (through
        // the shared temperature sweep) into the post phase.
        Watts pendingCpuPower = 0.0;
        Celsius pendingInlet = 0.0;
        GBps pendingRead = 0.0;
        GBps pendingWrite = 0.0;
    };

    /**
     * Simulate the workload's batch job under the policy. The policy is
     * reset() first; a fresh thermal state (idle at ambient) is used.
     * Allocates a private Scratch; prefer the Scratch overload when
     * running many experiments back to back.
     */
    SimResult run(const Workload &mix, DtmPolicy &policy) const;

    /** As run() above, but reusing caller-owned working memory. */
    SimResult run(const Workload &mix, DtmPolicy &policy,
                  Scratch &scratch) const;

    /**
     * Simulate one workload under every policy in @p policies (all
     * reset() first), sharing the simulated prefix between runs whose
     * policies have made identical decisions so far. Returns one
     * SimResult per policy, in order; each is bit-identical to what
     * run(mix, *policies[i]) returns. @p stats, when non-null, is
     * overwritten with this batch's counters.
     *
     * The policies must be distinct objects (each receives its own
     * decide() stream) and there must be at least one.
     */
    std::vector<SimResult> runBatch(const Workload &mix,
                                    const std::vector<DtmPolicy *> &policies,
                                    Scratch &scratch,
                                    BatchStats *stats = nullptr) const;

    const SimConfig &config() const { return cfg; }

  private:
    /** Reserve every scratch buffer for the configured core count. */
    void reserveScratch(Scratch &scratch) const;

    /** Read the sensors into lane.reading (consumes sensor RNG draws). */
    void senseLane(Lane &lane) const;

    /**
     * Apply a DTM decision to a lane: store the action, actuate a remap
     * if the action carries shares, advance the decision clock. In the
     * batched path the same already-computed action is applied to a
     * forked lane, which must not re-run the policy.
     */
    void applyDecision(Lane &lane, const DtmAction &a) const;

    /**
     * The window step up to and including staging the thermal advance:
     * scheduling, level-1 solve, progress/retirement, power, ambient.
     * Leaves the lane's thermal lane staged (stable targets written);
     * the caller commits the temperature sweep, then calls windowPost().
     */
    void windowPre(Lane &lane, Scratch &scratch) const;

    /** Finish the window: peaks/energy fold, traces, time advance. */
    void windowPost(Lane &lane) const;

    /** Fill the end-of-run summary fields of lane.res. */
    void finalizeLane(Lane &lane) const;

    SimConfig cfg;
};

} // namespace memtherm

#endif // MEMTHERM_CORE_SIM_THERMAL_SIMULATOR_HH
