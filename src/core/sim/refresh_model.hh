/**
 * @file
 * Temperature-coupled DRAM refresh and timing model — the feedback edge
 * from temperature back into performance and power.
 *
 * Real DRAM couples back on its thermals: above the 85 C DRAM TDP
 * (ThermalLimits::dramTdp), DDR2 devices double their refresh rate,
 * stealing bandwidth from demand traffic and burning extra power; and
 * AL-DRAM (HPCA 2015) shows access-timing margins tightening on hot
 * devices and relaxing on cool ones. A RefreshModel captures both as a
 * band table over DRAM temperature: the simulator reads each DIMM's
 * current DRAM temperature every window, selects its band, and
 *
 *  - derates the sustainable memory bandwidth by the traffic-share-
 *    weighted sum of the bands' `bwFraction` (refresh cycles the
 *    devices cannot spend on demand traffic),
 *  - scales the idle memory latency by the share-weighted `latencyMult`
 *    (AL-DRAM-style timing relaxation on cool DIMMs),
 *  - adds each band's `dramPower` to that DIMM's DRAM devices in the
 *    power model, which feeds straight back into the thermal advance.
 *
 * An empty model (the catalog's "none", and the default) disables the
 * edge entirely; runs are bit-identical to builds that predate it.
 * Scenario files select a model through the `refresh` knob or sweep
 * axis (catalog names resolve via RefreshRegistry in
 * core/sim/registry.hh, or inline band tables).
 */

#ifndef MEMTHERM_CORE_SIM_REFRESH_MODEL_HH
#define MEMTHERM_CORE_SIM_REFRESH_MODEL_HH

#include <vector>

#include "common/units.hh"

namespace memtherm
{

/**
 * One temperature band of a refresh model: applies to DRAM temperatures
 * from `minTemp` (inclusive) up to the next band's boundary.
 */
struct RefreshBand
{
    /// Band floor (C). Temperatures below every band clamp to the
    /// first band, so the first entry's floor is conventionally the
    /// lowest representable temperature.
    Celsius minTemp = -273.15;
    /// Fraction of the sustainable bandwidth refresh consumes in this
    /// band (in [0, 1)); tREFI/tRFC overhead, ~1.6% for standard DDR2.
    double bwFraction = 0.0;
    /// Refresh power added to the DIMM's DRAM devices in this band (W).
    Watts dramPower = 0.0;
    /// Idle-latency multiplier (AL-DRAM timing margins): < 1 relaxes
    /// timings on a cool DIMM, 1 is nominal.
    double latencyMult = 1.0;

    bool operator==(const RefreshBand &) const = default;
};

/** A refresh model: bands sorted by strictly increasing `minTemp`. */
struct RefreshModel
{
    std::vector<RefreshBand> bands;

    bool operator==(const RefreshModel &) const = default;

    /** No bands: the feedback edge is disabled (the catalog's "none"). */
    bool empty() const { return bands.empty(); }

    /**
     * The band governing DRAM temperature @p t: the last band whose
     * floor is <= t, clamping to the first band below every floor.
     * Must not be called on an empty model.
     */
    const RefreshBand &bandAt(Celsius t) const;
};

/**
 * The DDR2 thermal-refresh behavior: a nominal band (~1.6% bandwidth,
 * 0.15 W per DIMM) that doubles at the 85 C DRAM TDP
 * (ThermalLimits::dramTdp) — the catalog's "ddr2_2x".
 */
RefreshModel ddr2DoubleRefreshModel();

/**
 * The AL-DRAM direction: the same refresh doubling as "ddr2_2x", plus
 * relaxed access timings on cool DIMMs (idle latency x0.85 below 55 C,
 * x0.925 below 70 C, nominal above) — the catalog's "aldram".
 */
RefreshModel aldramRefreshModel();

} // namespace memtherm

#endif // MEMTHERM_CORE_SIM_REFRESH_MODEL_HH
