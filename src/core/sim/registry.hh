/**
 * @file
 * String-keyed registries and catalogs behind the declarative scenario
 * API (core/sim/scenario.hh) and the `memtherm` CLI.
 *
 * Everything a scenario file can name — DTM policies, cooling setups,
 * ambient models, workload mixes, Chapter 5 platforms, memory
 * organizations, traffic shapes, emergency ladders, DVFS tables,
 * refresh models — resolves here.
 * Each catalog offers three entry points with uniform semantics:
 *
 *  - names()           the valid keys, stable order;
 *  - try...()          error-returning lookup (no exception, no abort);
 *  - ...ByName()/make  throwing lookup whose FatalError message lists
 *                      every valid key, so a typo in a scenario file or
 *                      on the CLI reads as a usable diagnostic instead
 *                      of a bare abort.
 */

#ifndef MEMTHERM_CORE_SIM_REGISTRY_HH
#define MEMTHERM_CORE_SIM_REGISTRY_HH

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/dtm/dtm_policy.hh"
#include "core/dtm/emergency_levels.hh"
#include "core/sim/refresh_model.hh"
#include "core/thermal/memory_thermal.hh"
#include "core/thermal/thermal_params.hh"
#include "cpu/dvfs.hh"
#include "workloads/workload.hh"

namespace memtherm
{

struct Platform;

/**
 * Everything a PolicyRegistry factory may build from. One run's policy
 * is constructed from its SimConfig, and this is the slice of it the
 * policy constructors consume.
 */
struct PolicyBuildContext
{
    /// Decision period (used by PID controllers' first step).
    Seconds dtmInterval = 0.01;

    /**
     * Emergency ladder for the leveled Chapter 4 schemes (DTM-BW,
     * DTM-ACG, DTM-CDVFS); std::nullopt selects the Table 4.3 ladder.
     * Threshold (DTM-TS) and PID policies regulate against ThermalLimits
     * and ignore this.
     */
    std::optional<EmergencyLevels> emergencyLevels;

    /// Remap decision period for the traffic-remap family
    /// (SimConfig::remapInterval, the `remap_interval` knob).
    Seconds remapInterval = 1.0;

    /// Hysteresis band of "DTM-remap-hyst"
    /// (SimConfig::remapHysteresis, the `remap_hysteresis` knob).
    Celsius remapHysteresis = 2.0;

    /// The run's starting per-DIMM traffic distribution
    /// (SimConfig::trafficShares; empty = uniform interleave). Remap
    /// policies migrate from here and reset() back to it.
    std::vector<double> trafficShares;
};

/**
 * Registry of DTM policy constructors by display name.
 *
 * Seeded with the full Chapter 4 lineup ("No-limit", "DTM-TS", "DTM-BW",
 * "DTM-ACG", "DTM-CDVFS" and the "+PID" variants); add() registers
 * additional policies (e.g. experimental schemes) at runtime. Policies
 * carry controller state, so every lookup constructs a fresh instance.
 * Lookups are thread-safe (engine workers build policies concurrently).
 */
class PolicyRegistry
{
  public:
    /// Constructs one policy instance for a run's build context.
    using Factory = std::function<std::unique_ptr<DtmPolicy>(
        const PolicyBuildContext &ctx)>;

    /** The process-wide registry. */
    static PolicyRegistry &instance();

    /** Register (or replace) a policy constructor. */
    void add(const std::string &name, Factory factory);

    /** Valid policy names, registration order. */
    std::vector<std::string> names() const;

    bool contains(const std::string &name) const;

    /**
     * Error-returning construction: nullptr for an unknown name, with
     * @p error (when given) set to a diagnostic listing the valid keys.
     */
    std::unique_ptr<DtmPolicy> tryMake(const std::string &name,
                                       const PolicyBuildContext &ctx,
                                       std::string *error = nullptr) const;

    /** Convenience overload: a default context with @p dtm_interval. */
    std::unique_ptr<DtmPolicy> tryMake(const std::string &name,
                                       Seconds dtm_interval,
                                       std::string *error = nullptr) const;

    /** Throwing construction: FatalError listing the valid keys. */
    std::unique_ptr<DtmPolicy> make(const std::string &name,
                                    const PolicyBuildContext &ctx) const;
    std::unique_ptr<DtmPolicy> make(const std::string &name,
                                    Seconds dtm_interval) const;

  private:
    PolicyRegistry();

    mutable std::mutex mtx;
    std::vector<std::pair<std::string, Factory>> entries;
};

/**
 * Registry of DVFS operating tables by name.
 *
 * Seeded with "simulated_cmp" (the Table 4.1/4.3 four-core CMP points)
 * and "xeon5160" (the Chapter 5 Intel Xeon 5160 points); add() registers
 * additional tables at runtime, which scenario files can then name as a
 * `dvfs` override or sweep axis. Lookups are thread-safe.
 */
class DvfsRegistry
{
  public:
    /** The process-wide registry. */
    static DvfsRegistry &instance();

    /** Register (or replace) an operating table. */
    void add(const std::string &name, DvfsTable table);

    /** Valid table names, registration order. */
    std::vector<std::string> names() const;

    bool contains(const std::string &name) const;

    /**
     * Error-returning lookup: nullopt for an unknown name, with @p error
     * (when given) set to a diagnostic listing the valid keys.
     */
    std::optional<DvfsTable> tryGet(const std::string &name,
                                    std::string *error = nullptr) const;

    /** Throwing lookup: FatalError listing the valid keys. */
    DvfsTable byName(const std::string &name) const;

  private:
    DvfsRegistry();

    mutable std::mutex mtx;
    std::vector<std::pair<std::string, DvfsTable>> entries;
};

/**
 * Registry of temperature-coupled DRAM refresh/timing models by name
 * (core/sim/refresh_model.hh).
 *
 * Seeded with "none" (the empty model — feedback edge disabled,
 * bit-identical to leaving the `refresh` knob unset), "ddr2_2x" (DDR2
 * refresh doubling above the 85 C DRAM TDP) and "aldram" (the same
 * doubling plus AL-DRAM-style relaxed timings on cool DIMMs); add()
 * registers additional models at runtime, which scenario files can then
 * name as a `refresh` override or sweep axis. Lookups are thread-safe.
 */
class RefreshRegistry
{
  public:
    /** The process-wide registry. */
    static RefreshRegistry &instance();

    /** Register (or replace) a refresh model. */
    void add(const std::string &name, RefreshModel model);

    /** Valid model names, registration order. */
    std::vector<std::string> names() const;

    bool contains(const std::string &name) const;

    /**
     * Error-returning lookup: nullopt for an unknown name, with @p error
     * (when given) set to a diagnostic listing the valid keys.
     */
    std::optional<RefreshModel> tryGet(const std::string &name,
                                       std::string *error = nullptr) const;

    /** Throwing lookup: FatalError listing the valid keys. */
    RefreshModel byName(const std::string &name) const;

  private:
    RefreshRegistry();

    mutable std::mutex mtx;
    std::vector<std::pair<std::string, RefreshModel>> entries;
};

/** Table 3.2 cooling setups: "AOHS_1.0" ... "FDHS_3.0". */
std::vector<std::string> coolingNames();
std::optional<CoolingConfig> tryCooling(const std::string &name);
CoolingConfig coolingByName(const std::string &name);

/**
 * Ambient-model presets (Table 3.3): "isolated" (constant inlet) and
 * "integrated" (CPU-preheated inlet). Parameters depend on the cooling
 * configuration, hence the extra argument.
 */
std::vector<std::string> ambientNames();
std::optional<AmbientParams> tryAmbient(const std::string &name,
                                        const CoolingConfig &cooling);
AmbientParams ambientByName(const std::string &name,
                            const CoolingConfig &cooling);

/**
 * Workload catalog: the Table 4.2/5.2 mixes ("W1".."W8", "W11", "W12")
 * plus homogeneous batches spelled "<app>x<n>" (e.g. "swimx4" — n copies
 * of one catalog application).
 */
std::vector<std::string> workloadNames();
std::optional<Workload> tryWorkload(const std::string &name);
Workload workloadByName(const std::string &name);

/** Chapter 5 testbed platforms: "PE1950", "SR1500AL". */
std::vector<std::string> platformNames();
std::optional<Platform> tryPlatform(const std::string &name);
Platform platformByName(const std::string &name);

/**
 * Memory-organization catalog: named {channels, DIMMs-per-channel}
 * configurations for the `memory_org` scenario knob and sweep axis.
 * "ch4_4x4" is the Table 4.1 default (4 physical / 2 logical FBDIMM
 * channels, 4 DIMMs each); the "<channels>x<dimms>" entries span
 * narrow (1x4), small (2x2), half-width (2x4), shallow (4x2), deep
 * (4x8), and wide (8x2, 8x4) variants. Scenario files can also give an
 * inline {channels, dimms} object for anything the catalog lacks.
 */
std::vector<std::string> memoryOrgNames();
std::optional<MemoryOrgConfig> tryMemoryOrg(const std::string &name);
MemoryOrgConfig memoryOrgByName(const std::string &name);

/**
 * Traffic-shape catalog: named per-DIMM traffic distributions for the
 * `traffic_shape` scenario knob and sweep axis. A shape is
 * parameterized by the DIMM count of the resolved memory organization,
 * so the same name fits any chain depth; the resolved vector is the
 * share of a channel's local traffic each DIMM receives (index 0
 * nearest the memory controller, non-negative, summing to 1):
 *
 *  - "uniform"       1/n each (exactly — a run with this shape is
 *                    bit-identical to one with the knob unset);
 *  - "front_heavy"   geometric halving away from the controller
 *                    (share_i proportional to 2^-i);
 *  - "back_heavy"    the mirror image: geometric halving toward the
 *                    controller, so the far end of the chain is loaded;
 *  - "hot_dimm0"     DIMM 0 takes half the channel's traffic, the rest
 *                    split the remainder uniformly;
 *  - "linear_taper"  arithmetic taper (share_i proportional to n - i).
 *
 * Scenario files can also give an inline share vector for anything the
 * catalog lacks. Every shape resolves to {1} on a one-DIMM chain.
 */
std::vector<std::string> trafficShapeNames();
std::optional<std::vector<double>> tryTrafficShape(const std::string &name,
                                                   int n_dimms);
std::vector<double> trafficShapeByName(const std::string &name, int n_dimms);

/**
 * Refresh-model catalog entry points over RefreshRegistry, uniform with
 * the other catalogs: "none", "ddr2_2x", "aldram" (plus anything add()ed
 * at runtime) for the `refresh` scenario knob and sweep axis.
 */
std::vector<std::string> refreshModelNames();
std::optional<RefreshModel> tryRefreshModel(const std::string &name,
                                            std::string *error = nullptr);
RefreshModel refreshModelByName(const std::string &name);

/**
 * Thermal-model catalog: named resolutions for the `thermal_model`
 * scenario knob and sweep axis. "lumped" is the paper's per-DIMM model
 * (bit-identical to leaving the knob unset); "bank_grid" overlays the
 * default 4x2 per-bank diagnostic grid (core/thermal/bank_grid.hh) on
 * every DIMM. Scenario files can also give an inline
 * {grid_x, grid_z[, bank_weights]} object for grids the catalog lacks.
 */
std::vector<std::string> thermalModelNames();
std::optional<ThermalModelConfig> tryThermalModel(const std::string &name);
ThermalModelConfig thermalModelByName(const std::string &name);

/**
 * Emergency-ladder catalog: "ch4" (the Table 4.3 FBDIMM ladder) and the
 * Table 5.1 testbed variants "pe1950", "sr1500al", "sr1500al_tdp90"
 * (AMB ladders of the Chapter 5 platforms with the DRAM boundaries
 * parked out of reach — the Chapter 5 hot spots are AMBs). Every entry
 * has the five-level depth the Chapter 4 action tables expect.
 */
std::vector<std::string> emergencyLevelNames();
std::optional<EmergencyLevels> tryEmergencyLevels(const std::string &name);
EmergencyLevels emergencyLevelsByName(const std::string &name);

/** "a, b, c" — the key lists used in registry diagnostics. */
std::string joinNames(const std::vector<std::string> &names);

} // namespace memtherm

#endif // MEMTHERM_CORE_SIM_REGISTRY_HH
