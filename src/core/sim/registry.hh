/**
 * @file
 * String-keyed registries and catalogs behind the declarative scenario
 * API (core/sim/scenario.hh) and the `memtherm` CLI.
 *
 * Everything a scenario file can name — DTM policies, cooling setups,
 * ambient models, workload mixes, Chapter 5 platforms — resolves here.
 * Each catalog offers three entry points with uniform semantics:
 *
 *  - names()           the valid keys, stable order;
 *  - try...()          error-returning lookup (no exception, no abort);
 *  - ...ByName()/make  throwing lookup whose FatalError message lists
 *                      every valid key, so a typo in a scenario file or
 *                      on the CLI reads as a usable diagnostic instead
 *                      of a bare abort.
 */

#ifndef MEMTHERM_CORE_SIM_REGISTRY_HH
#define MEMTHERM_CORE_SIM_REGISTRY_HH

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/dtm/dtm_policy.hh"
#include "core/thermal/thermal_params.hh"
#include "workloads/workload.hh"

namespace memtherm
{

struct Platform;

/**
 * Registry of DTM policy constructors by display name.
 *
 * Seeded with the full Chapter 4 lineup ("No-limit", "DTM-TS", "DTM-BW",
 * "DTM-ACG", "DTM-CDVFS" and the "+PID" variants); add() registers
 * additional policies (e.g. experimental schemes) at runtime. Policies
 * carry controller state, so every lookup constructs a fresh instance.
 * Lookups are thread-safe (engine workers build policies concurrently).
 */
class PolicyRegistry
{
  public:
    /// Constructs one policy instance for a run's decision period.
    using Factory =
        std::function<std::unique_ptr<DtmPolicy>(Seconds dtm_interval)>;

    /** The process-wide registry. */
    static PolicyRegistry &instance();

    /** Register (or replace) a policy constructor. */
    void add(const std::string &name, Factory factory);

    /** Valid policy names, registration order. */
    std::vector<std::string> names() const;

    bool contains(const std::string &name) const;

    /**
     * Error-returning construction: nullptr for an unknown name, with
     * @p error (when given) set to a diagnostic listing the valid keys.
     */
    std::unique_ptr<DtmPolicy> tryMake(const std::string &name,
                                       Seconds dtm_interval,
                                       std::string *error = nullptr) const;

    /** Throwing construction: FatalError listing the valid keys. */
    std::unique_ptr<DtmPolicy> make(const std::string &name,
                                    Seconds dtm_interval) const;

  private:
    PolicyRegistry();

    mutable std::mutex mtx;
    std::vector<std::pair<std::string, Factory>> entries;
};

/** Table 3.2 cooling setups: "AOHS_1.0" ... "FDHS_3.0". */
std::vector<std::string> coolingNames();
std::optional<CoolingConfig> tryCooling(const std::string &name);
CoolingConfig coolingByName(const std::string &name);

/**
 * Ambient-model presets (Table 3.3): "isolated" (constant inlet) and
 * "integrated" (CPU-preheated inlet). Parameters depend on the cooling
 * configuration, hence the extra argument.
 */
std::vector<std::string> ambientNames();
std::optional<AmbientParams> tryAmbient(const std::string &name,
                                        const CoolingConfig &cooling);
AmbientParams ambientByName(const std::string &name,
                            const CoolingConfig &cooling);

/**
 * Workload catalog: the Table 4.2/5.2 mixes ("W1".."W8", "W11", "W12")
 * plus homogeneous batches spelled "<app>x<n>" (e.g. "swimx4" — n copies
 * of one catalog application).
 */
std::vector<std::string> workloadNames();
std::optional<Workload> tryWorkload(const std::string &name);
Workload workloadByName(const std::string &name);

/** Chapter 5 testbed platforms: "PE1950", "SR1500AL". */
std::vector<std::string> platformNames();
std::optional<Platform> tryPlatform(const std::string &name);
Platform platformByName(const std::string &name);

/** "a, b, c" — the key lists used in registry diagnostics. */
std::string joinNames(const std::vector<std::string> &names);

} // namespace memtherm

#endif // MEMTHERM_CORE_SIM_REGISTRY_HH
