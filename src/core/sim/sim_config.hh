/**
 * @file
 * Configuration of the second-level (MEMSpot) thermal simulator.
 */

#ifndef MEMTHERM_CORE_SIM_SIM_CONFIG_HH
#define MEMTHERM_CORE_SIM_SIM_CONFIG_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "core/dtm/emergency_levels.hh"
#include "core/sim/refresh_model.hh"
#include "core/thermal/memory_thermal.hh"
#include "core/thermal/thermal_params.hh"
#include "cpu/cpu_power.hh"
#include "cpu/dvfs.hh"
#include "cpu/perf_model.hh"

namespace memtherm
{

/**
 * Everything a simulation run needs besides the workload and the policy.
 * Defaults model the Chapter 4 platform (Table 4.1) with the isolated
 * thermal model under AOHS_1.5.
 */
struct SimConfig
{
    /// Memory organization: 2 logical (4 physical) channels, 4 DIMMs
    /// each (the catalog's "ch4_4x4"; scenarios override it through the
    /// `memory_org` knob or sweep axis).
    MemoryOrgConfig org{4, 4};
    /// Per-DIMM fraction of each channel's local traffic, index 0
    /// nearest the memory controller (one entry per DIMM of `org`'s
    /// chain, non-negative, summing to 1). Empty selects uniform
    /// address interleave; scenarios set it through the `traffic_shape`
    /// knob or sweep axis. An explicit uniform vector is bit-identical
    /// to leaving it empty.
    std::vector<double> trafficShares;
    CoolingConfig cooling = coolingAohs15();
    AmbientParams ambient = isolatedAmbient(coolingAohs15());
    MemSystemPerf memPerf{};
    /// Temperature-coupled DRAM refresh/timing model (the `refresh`
    /// scenario knob or sweep axis; core/sim/refresh_model.hh). Each
    /// window every DIMM's current DRAM temperature selects a band that
    /// steals bandwidth from `memPerf`, scales its idle latency, and
    /// adds refresh power to that DIMM's DRAM devices. Empty (the
    /// default, and the catalog's "none") disables the feedback edge —
    /// bit-identical to builds that predate it.
    RefreshModel refresh;
    /// Per-bank thermal overlay (the `thermal_model` scenario knob or
    /// sweep axis; core/thermal/bank_grid.hh): an X x Z grid of bank
    /// cells per DIMM splitting the DIMM's DRAM power by heat-share
    /// weights, advanced alongside the lumped nodes and reported as
    /// per-bank peak temperatures. std::nullopt (the default, and the
    /// catalog's "lumped") keeps the paper's per-DIMM model —
    /// bit-identical to builds that predate the grid.
    std::optional<BankGridConfig> bankGrid;
    DvfsTable dvfs = simulatedCmpDvfs();
    int nCores = 4;

    /// Batch depth: copies of each application (the paper uses 50; the
    /// bench harness uses fewer with scaled instruction volumes).
    int copiesPerApp = 50;
    double instrScale = 1.0;

    Seconds window = 0.01;       ///< level-2 trace window (10 ms)
    Seconds dtmInterval = 0.01;  ///< policy decision period
    Seconds dtmOverhead = 25e-6; ///< per-decision lost time (Table 4.1)
    Seconds rotationSlice = 0.1; ///< time-multiplex slice under gating

    /// Remap-policy decision period (the `remap_interval` knob): how
    /// often a traffic-remapping policy may migrate share between
    /// DIMMs. Must be >= `window` and a whole multiple of `dtmInterval`
    /// so remap boundaries land on DTM decision boundaries (the
    /// scenario layer rejects anything else when the knob is set).
    Seconds remapInterval = 1.0;
    /// Hysteresis band (C) of DTM-remap-hyst (the `remap_hysteresis`
    /// knob): once migration latches on at a TDP crossing it keeps
    /// going until both sensors drop this far below their TDPs.
    Celsius remapHysteresis = 2.0;
    /// Migration cost: GB of page-copy traffic charged per unit of
    /// traffic share moved, injected into the window that applies a
    /// remap. A model constant, not a scenario knob.
    double remapCostGbPerShare = 0.25;

    ThermalLimits limits{};

    /**
     * Emergency ladder for the leveled Chapter 4 DTM schemes (DTM-BW,
     * DTM-ACG, DTM-CDVFS), consumed by the engine's default policy
     * construction; std::nullopt selects the Table 4.3 ladder. DTM-TS
     * and the PID controllers regulate against `limits` and ignore
     * this, as do runs with an explicit PolicyFactory (e.g. Chapter 5
     * platforms, whose ladders derive from the platform descriptor).
     */
    std::optional<EmergencyLevels> emergencyLevels;

    Seconds maxSimTime = 20000.0;
    Seconds traceSample = 1.0;   ///< temperature/power trace resolution

    TableCpuPowerModel cpuPowerTable{4};
    /// When set, use the activity-based (Chapter 5) CPU power model.
    std::optional<ActivityCpuPowerModel> cpuPowerActivity;

    /// Count L2 sharers per 2-core socket (Chapter 5 platforms) instead of
    /// across all cores (the Chapter 4 shared-L2 CMP).
    bool perSocketL2 = false;

    /// Sensor emulation (0 = ideal sensors, used in Chapter 4).
    double sensorNoiseSigma = 0.0;
    double sensorQuant = 0.0;
    std::uint64_t sensorSeed = 42;
};

/**
 * Chapter 4 configuration for a cooling setup and thermal model choice.
 * @param cooling     AOHS_1.5 or FDHS_1.0
 * @param integrated  true -> integrated thermal model (Section 3.5)
 */
SimConfig makeCh4Config(const CoolingConfig &cooling, bool integrated);

} // namespace memtherm

#endif // MEMTHERM_CORE_SIM_SIM_CONFIG_HH
