/**
 * @file
 * Declarative scenario API.
 *
 * A ScenarioSpec is a serializable description of one experiment: the
 * base configuration (by catalog names — cooling, ambient model, or a
 * Chapter 5 platform), override knobs, the workload and policy name
 * lists, and optional sweep axes (memory organization, per-DIMM traffic
 * shape, cooling, inlet temperature, batch depth, sensor noise, DTM
 * decision interval, emergency ladder, DVFS operating table,
 * temperature-coupled refresh model, thermal model resolution) whose
 * cross product spans a configuration grid.
 * Specs lower to ExperimentEngine run lists and round-trip losslessly
 * through JSON, so an experiment is data (a scenario file fed to the
 * `memtherm` CLI), not a hand-written binary.
 *
 * Every name in a spec resolves through core/sim/registry.hh, so a typo
 * reports the valid keys instead of aborting.
 */

#ifndef MEMTHERM_CORE_SIM_SCENARIO_HH
#define MEMTHERM_CORE_SIM_SCENARIO_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "core/sim/engine.hh"
#include "core/thermal/bank_grid.hh"

namespace memtherm
{

/**
 * One scenario, lowered: the configuration points of the sweep grid and
 * the engine runs of each point (workload-major, then policy, matching
 * the spec's list order).
 */
struct LoweredScenario
{
    struct Point
    {
        std::string label; ///< sweep coordinates, e.g. "inlet=46"; "base"
        SimConfig cfg;     ///< the point's configuration
        std::vector<ExperimentEngine::Run> runs;
    };

    std::vector<Point> points;
    std::vector<std::string> workloads; ///< resolved names, spec order
    std::vector<std::string> policies;

    /**
     * Policy-independent equivalence classes over the concatenated run
     * list (global grid order): each class spans runs that differ only
     * by policy — same point configuration, same workload — so a
     * batched engine may share their simulated prefix. Derived
     * structurally from the lowering order (runs are workload-major
     * with the policy fastest): one class of size policies.size() per
     * (point, workload) — except on Chapter 5 platforms, where
     * ch5EngineRun adjusts the configuration per policy (the SR1500AL
     * "No-limit" room-ambient protocol), so every run is its own class.
     */
    std::vector<ExperimentEngine::RunClass> classes;

    /** Total run count across all points. */
    std::size_t totalRuns() const;
};

/**
 * One memory organization a spec names: a catalog entry
 * (registry.hh memoryOrgNames(), e.g. "ch4_4x4" or "2x4") or an inline
 * {channels, dimms} pair for organizations the catalog lacks. A
 * default-constructed value means "keep the base configuration's
 * organization". When both a name and an inline pair are set, the name
 * wins (the serialized form never carries both).
 */
struct MemoryOrgSpec
{
    std::string name;                   ///< catalog name; empty -> inline
    std::optional<MemoryOrgConfig> org; ///< inline organization

    bool operator==(const MemoryOrgSpec &) const = default;

    bool empty() const { return name.empty() && !org; }

    /** Sweep-label coordinate: the catalog name, or "<c>x<d>" inline. */
    std::string label() const;

    /**
     * The organization this spec denotes: catalog lookup (FatalError
     * listing the valid keys) or the inline pair (FatalError when a
     * count is non-positive).
     */
    MemoryOrgConfig resolve() const;
};

/**
 * One per-DIMM traffic shape a spec names: a catalog entry
 * (registry.hh trafficShapeNames(), e.g. "hot_dimm0") or an inline
 * share vector for distributions the catalog lacks. A
 * default-constructed value means "keep uniform address interleave".
 * Catalog shapes are parameterized by the DIMM count, so they fit any
 * memory organization; an inline vector's arity must match the
 * resolved organization's DIMMs per channel. When both a name and
 * shares are set, the name wins (the serialized form never carries
 * both).
 */
struct TrafficShapeSpec
{
    std::string name;           ///< catalog name; empty -> inline
    std::vector<double> shares; ///< inline per-DIMM share vector

    bool operator==(const TrafficShapeSpec &) const = default;

    bool empty() const { return name.empty() && shares.empty(); }

    /** Sweep-label coordinate: the catalog name, or "s0|s1|..." inline. */
    std::string label() const;

    /**
     * The share vector this spec denotes for an @p n_dimms chain:
     * catalog lookup (FatalError listing the valid keys) or the
     * validated inline vector (FatalError on negative or non-finite
     * shares, a sum off 1 by more than 1e-9, or an arity mismatch).
     */
    std::vector<double> resolve(int n_dimms) const;
};

/**
 * One temperature-coupled refresh model a spec names: a catalog entry
 * (registry.hh refreshModelNames() — "none", "ddr2_2x", "aldram") or an
 * inline band table for models the catalog lacks. A default-constructed
 * value means "no refresh feedback", and so does the catalog's "none"
 * (a run with `refresh: "none"` is bit-identical to one with the knob
 * unset). When both a name and bands are set, the name wins (the
 * serialized form never carries both).
 */
struct RefreshSpec
{
    std::string name;               ///< catalog name; empty -> inline
    std::vector<RefreshBand> bands; ///< inline band table

    bool operator==(const RefreshSpec &) const = default;

    bool empty() const { return name.empty() && bands.empty(); }

    /**
     * Sweep-label coordinate: the catalog name, or the bands rendered
     * "minTemp:bwFraction:dramPower[:latencyMult]" joined with "|"
     * inline (":" and "|" keep the coordinate free of the label
     * grammar's reserved "," and "=").
     */
    std::string label() const;

    /**
     * The refresh model this spec denotes: catalog lookup (FatalError
     * listing the valid keys) or the validated inline band table
     * (FatalError on non-finite values, a bw_fraction outside [0, 1), a
     * negative dram_power_w, a non-positive latency_mult, or band
     * floors not strictly increasing).
     */
    RefreshModel resolve() const;
};

/**
 * One thermal-model resolution a spec names: a catalog entry
 * (registry.hh thermalModelNames() — "lumped", "bank_grid") or an
 * inline {grid_x, grid_z[, bank_weights]} object for grids the catalog
 * lacks. A default-constructed value means "the lumped per-DIMM model",
 * and so does the catalog's "lumped" (a run with
 * `thermal_model: "lumped"` is bit-identical to one with the knob
 * unset). When both a name and an inline grid are set, the name wins
 * (the serialized form never carries both).
 */
struct ThermalModelSpec
{
    std::string name;                   ///< catalog name; empty -> inline
    std::optional<BankGridConfig> grid; ///< inline grid

    bool operator==(const ThermalModelSpec &) const = default;

    bool empty() const { return name.empty() && !grid; }

    /**
     * Sweep-label coordinate: the catalog name, or "<x>x<z>" inline
     * (with the bank weights appended "w0|w1|..." after ":" when the
     * inline grid carries them — ":" and "|" keep the coordinate free
     * of the label grammar's reserved "," and "=").
     */
    std::string label() const;

    /**
     * The thermal model this spec denotes: catalog lookup (FatalError
     * listing the valid keys) or the validated inline grid (FatalError
     * on non-positive dimensions, more than 1024 cells, or bank weights
     * of the wrong arity, non-finite, negative, or summing off 1 by
     * more than 1e-9). The lumped model is grid == std::nullopt.
     */
    ThermalModelConfig resolve() const;
};

/**
 * Declarative description of an experiment. Field defaults mirror the
 * Chapter 4 platform; std::nullopt means "keep the base configuration's
 * value" (makeCh4Config's, or the platform's when `platform` is set).
 */
struct ScenarioSpec
{
    std::string name;
    std::string description;

    /**
     * Chapter 5 testbed platform name ("PE1950", "SR1500AL"). When set,
     * the platform supplies the base configuration and the Chapter 5
     * policy lineup applies (including the paper's protocol: the
     * SR1500AL "No-limit" baseline runs at a 26 C room ambient); the
     * `cooling`/`ambient` fields and the cooling sweep are rejected.
     */
    std::string platform;

    std::string cooling = "AOHS_1.5"; ///< Table 3.2 column name
    std::string ambient = "isolated"; ///< "isolated" or "integrated"

    /// Emergency-ladder catalog name for the leveled Chapter 4 schemes
    /// (empty = the Table 4.3 ladder). Rejected for platform scenarios.
    std::string emergencyLevels;
    /// DvfsRegistry table name (empty = the base configuration's table).
    /// Rejected for platform scenarios.
    std::string dvfs;

    /// Memory organization (catalog name or inline {channels, dimms});
    /// empty keeps the base organization. Rejected for platform
    /// scenarios (the testbed hardware fixes its DIMM population).
    MemoryOrgSpec memoryOrg;

    /// Per-DIMM traffic shape (catalog name or inline share vector);
    /// empty keeps uniform address interleave. Shapes resolve against
    /// each grid point's memory organization. Rejected for platform
    /// scenarios (the testbed's traffic distribution is measured, not
    /// modeled).
    TrafficShapeSpec trafficShape;

    /// Temperature-coupled DRAM refresh/timing model (catalog name or
    /// inline band table); empty — like the catalog's "none" — disables
    /// the feedback edge. Rejected for platform scenarios (the
    /// testbed's DRAM refreshes for real).
    RefreshSpec refresh;

    /// Thermal model resolution (catalog name or inline grid object);
    /// empty — like the catalog's "lumped" — keeps the paper's lumped
    /// per-DIMM model. Rejected for platform scenarios (the testbed
    /// measures its real DIMMs at DIMM granularity).
    ThermalModelSpec thermalModel;

    /// Path to a memory-access trace file (dram/trace.hh) whose decoded
    /// address stream supplies the per-DIMM traffic distribution — and,
    /// when the bank-grid thermal model is active, the per-bank heat
    /// weights — in place of the traffic_shape catalog. Mutually
    /// exclusive with the traffic_shape knob and sweep (the trace IS
    /// the measured distribution), and with inline bank_weights (the
    /// trace supplies them). Relative paths resolve against the
    /// process's working directory. Empty keeps the modeled shapes; a
    /// trace-free run is bit-identical to builds that predate traces.
    /// Rejected for platform scenarios.
    std::string trace;

    std::optional<double> tInlet;          ///< system inlet override (C)
    std::optional<int> copiesPerApp;       ///< batch depth override
    std::optional<double> instrScale;      ///< instruction-volume scale
    std::optional<double> maxSimTime;      ///< simulation horizon (s)
    std::optional<double> dtmInterval;     ///< policy decision period (s)
    /// Remap decision period (s) for the traffic-remap policy family;
    /// must be >= the simulator window and a whole multiple of the
    /// effective dtm_interval at every grid point. Rejected for
    /// platform scenarios (no modeled traffic distribution to remap).
    std::optional<double> remapInterval;
    /// DTM-remap-hyst release band (C) below the TDPs. Rejected for
    /// platform scenarios.
    std::optional<double> remapHysteresis;
    std::optional<double> sensorNoiseSigma;
    std::optional<double> sensorQuant;
    std::optional<std::uint64_t> sensorSeed;

    std::vector<std::string> workloads; ///< registry names / "<app>x<n>"
    std::vector<std::string> policies;  ///< registry names

    /// Sweep axes; the grid is their cross product (empty = base value).
    /// An axis supersedes the matching scalar override. Values must be
    /// finite and free of duplicates (duplicates would collapse sweep
    /// points onto one result key).
    std::vector<MemoryOrgSpec> sweepMemoryOrg;
    std::vector<TrafficShapeSpec> sweepTrafficShape;
    std::vector<std::string> sweepCooling;
    std::vector<double> sweepTInlet;
    std::vector<int> sweepCopies;
    std::vector<double> sweepSensorNoise;
    std::vector<double> sweepDtmInterval;
    std::vector<std::string> sweepEmergencyLevels;
    std::vector<std::string> sweepDvfs;
    std::vector<RefreshSpec> sweepRefresh;
    std::vector<ThermalModelSpec> sweepThermalModel;

    bool operator==(const ScenarioSpec &) const = default;

    /**
     * Resolve every name and check sweep axes; FatalError (listing the
     * valid keys) on the first problem. lower() and runScenario()
     * validate implicitly.
     */
    void validate() const;

    /** Lower to the configuration grid and its engine run lists. */
    LoweredScenario lower() const;

    /** Serialize (omits unset optionals; lossless round-trip). */
    Json toJson() const;

    /** Parse; FatalError on unknown members, bad types, or bad names. */
    static ScenarioSpec fromJson(const Json &j);

    /** Load a scenario file. */
    static ScenarioSpec load(const std::string &path);

    /** Write a scenario file. */
    void save(const std::string &path) const;
};

/**
 * One failed run of a scenario grid, identified well enough to debug
 * (the grid coordinate and the run's identity, not just a bare what()).
 */
struct RunError
{
    std::size_t index = 0; ///< global run index in spec grid order
    std::string point;     ///< sweep-point label
    std::string workload;
    std::string policy;
    std::string error; ///< the exception's what()

    bool operator==(const RunError &) const = default;
};

/**
 * Results of a scenario: one SuiteResults per sweep point, in grid
 * order, keyed [workload][policy] exactly like runSuite(). A failed run
 * contributes a RunError instead of a suite entry — the rest of the
 * grid's results survive one bad run.
 */
struct ScenarioResults
{
    struct Point
    {
        std::string label;
        SuiteResults suite;
    };

    std::string scenario; ///< the spec's name
    std::vector<Point> points;
    std::vector<RunError> errors; ///< failed runs, in grid-index order
};

/**
 * Fault-injection hook for crash/failure testing: when the
 * MEMTHERM_FAULT_FAIL_RUN environment variable holds a global run
 * index, that run's policy factory is replaced with one that throws.
 * Applied to the *full* lowered run list (before any shard/resume
 * filtering), so the injected index means the same run everywhere.
 * No-op when the variable is unset or malformed.
 */
void applyFaultInjection(std::vector<ExperimentEngine::Run> &runs);

/**
 * Execute a scenario on an engine. Results are bit-identical to hand
 * the same runs to ExperimentEngine directly (the spec only *describes*
 * the runs; the engine's determinism guarantees do the rest). A run
 * that throws becomes a RunError in the returned results; every other
 * run's result is still delivered.
 */
ScenarioResults runScenario(const ScenarioSpec &spec,
                            ExperimentEngine &engine);

/** Convenience overload: a default-sized engine (MEMTHERM_THREADS). */
ScenarioResults runScenario(const ScenarioSpec &spec);

/**
 * Execute a scenario through the engine's batched path: runs inside one
 * policy-independent equivalence class (LoweredScenario::classes) share
 * their simulated prefix, in lockstep chunks of up to @p batch_width
 * lanes (< 1 = one chunk per class). Today's fork construction makes
 * every batched run bit-identical to its scalar twin (pinned by gtest);
 * the contract callers may rely on, however, is only agreement within
 * the batched golden tolerance — that headroom is reserved for future
 * cross-lane vectorized sweeps that may reassociate the arithmetic.
 * @p stats, when non-null, accumulates the grid's batch counters.
 */
ScenarioResults runScenarioBatched(const ScenarioSpec &spec,
                                   ExperimentEngine &engine,
                                   int batch_width,
                                   BatchStats *stats = nullptr);

/**
 * Version of the result-document schema this binary writes. Version 1
 * is the historical member set (no `schema_version` member — every file
 * written before versioning reads as v1); version 2 added the per-DIMM
 * refresh fields (`refresh_bw_loss_per_dimm_gb` /
 * `refresh_energy_per_dimm_j`); version 3 added the per-bank fields of
 * the bank-grid thermal model (`bank_grid` / `peak_bank_dram_c`).
 * toJson(ScenarioResults) stamps the *minimum* version the document's
 * members imply — a top-level `schema_version` of 3 only when a v3-only
 * member is present, 2 when only v2-only members are, nothing for the
 * historical member set — so every document keeps its exact historical
 * bytes until it actually uses a newer field; JSONL stream headers
 * (core/sim/result_sink.hh) carry the binary's version unconditionally.
 */
inline constexpr int kResultSchemaVersion = 3;

/**
 * Effective schema version of a result document or stream header: the
 * `schema_version` member when present, else 1. FatalError when the
 * member is not a positive integer, or names a version newer than
 * @p max_version (the binary's kResultSchemaVersion by default; tests
 * pin older values to exercise the refusal) — a clear upgrade message
 * instead of a misparse. @p where prefixes the diagnostic (e.g. the
 * file path).
 */
int resultSchemaVersionOf(const Json &doc, const std::string &where,
                          int max_version = kResultSchemaVersion);

/**
 * Serialize results. @p traces includes the full temperature/power
 * traces (large); otherwise only scalar aggregates are emitted.
 */
Json toJson(const SimResult &r, bool traces = false);
Json toJson(const SuiteResults &r, bool traces = false);
Json toJson(const ScenarioResults &r, bool traces = false);

} // namespace memtherm

#endif // MEMTHERM_CORE_SIM_SCENARIO_HH
