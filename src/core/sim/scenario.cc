#include "core/sim/scenario.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>

#include "common/logging.hh"
#include "core/sim/registry.hh"
#include "dram/trace.hh"
#include "testbed/platform.hh"

namespace memtherm
{

namespace
{

/** Shortest exact decimal form, for sweep-point labels. */
std::string
numStr(double v)
{
    return Json::numberToString(v);
}

/** The policy lineup valid for platform (Chapter 5) scenarios. */
std::vector<std::string>
platformPolicyNames()
{
    std::vector<std::string> names = ch5PolicyNames();
    names.insert(names.begin(), "No-limit");
    return names;
}

[[noreturn]] void
specError(const ScenarioSpec &spec, const std::string &what)
{
    std::string where =
        spec.name.empty() ? "scenario" : "scenario '" + spec.name + "'";
    fatal(where + ": " + what);
}

/** Reject members we do not understand — typos fail loudly. */
void
checkMembers(const Json &obj, const std::string &where,
             const std::vector<std::string> &allowed)
{
    for (const auto &[key, v] : obj.asObject()) {
        bool known = false;
        for (const auto &a : allowed)
            known |= (a == key);
        if (!known) {
            fatal("scenario: unknown member '" + key + "' in " + where +
                  " (valid: " + joinNames(allowed) + ")");
        }
    }
}

double
memberNumber(const Json &obj, const std::string &key)
{
    const Json &v = obj.at(key);
    if (!v.isNumber())
        fatal("scenario: member '" + key + "' must be a number");
    return v.asNumber();
}

int
memberInt(const Json &obj, const std::string &key)
{
    double v = memberNumber(obj, key);
    if (v != std::floor(v))
        fatal("scenario: member '" + key + "' must be an integer");
    return static_cast<int>(v);
}

std::string
memberString(const Json &obj, const std::string &key)
{
    const Json &v = obj.at(key);
    if (!v.isString())
        fatal("scenario: member '" + key + "' must be a string");
    return v.asString();
}

std::vector<std::string>
stringList(const Json &v, const std::string &key)
{
    if (!v.isArray())
        fatal("scenario: member '" + key + "' must be an array of strings");
    std::vector<std::string> out;
    for (const Json &e : v.asArray()) {
        if (!e.isString())
            fatal("scenario: member '" + key + "' must contain strings");
        out.push_back(e.asString());
    }
    return out;
}

std::vector<double>
numberList(const Json &v, const std::string &key)
{
    if (!v.isArray())
        fatal("scenario: member '" + key + "' must be an array of numbers");
    std::vector<double> out;
    for (const Json &e : v.asArray()) {
        if (!e.isNumber())
            fatal("scenario: member '" + key + "' must contain numbers");
        out.push_back(e.asNumber());
    }
    return out;
}

Json
toJsonList(const std::vector<std::string> &v)
{
    Json a = Json::array();
    for (const auto &s : v)
        a.push(s);
    return a;
}

Json
toJsonList(const std::vector<double> &v)
{
    Json a = Json::array();
    for (double x : v)
        a.push(x);
    return a;
}

Json
orgToJson(const MemoryOrgSpec &o)
{
    if (!o.name.empty())
        return Json(o.name);
    // A default-constructed spec means "keep the base organization" and
    // has no serialized form — callers filter those out; reaching here
    // with one (e.g. an empty sweep entry) is a spec bug, not UB.
    if (!o.org)
        fatal("scenario: empty memory organization");
    Json j = Json::object();
    j.set("channels", o.org->nChannels);
    j.set("dimms", o.org->nDimmsPerChannel);
    return j;
}

/** Parse a memory organization: a catalog name or {channels, dimms}. */
MemoryOrgSpec
orgFromJson(const Json &v, const std::string &where)
{
    MemoryOrgSpec s;
    if (v.isString()) {
        s.name = v.asString();
        if (s.name.empty())
            fatal("scenario: " + where + " name must not be empty");
        return s;
    }
    if (v.isObject()) {
        checkMembers(v, where, {"channels", "dimms"});
        if (!v.find("channels") || !v.find("dimms")) {
            fatal("scenario: " + where +
                  " needs both 'channels' and 'dimms'");
        }
        MemoryOrgConfig o;
        o.nChannels = memberInt(v, "channels");
        o.nDimmsPerChannel = memberInt(v, "dimms");
        s.org = o;
        return s;
    }
    fatal("scenario: " + where +
          " must be a catalog name or a {channels, dimms} object");
}

Json
shapeToJson(const TrafficShapeSpec &t)
{
    if (!t.name.empty())
        return Json(t.name);
    // A default-constructed spec means "keep uniform interleave" and has
    // no serialized form — callers filter those out; reaching here with
    // one (e.g. an empty sweep entry) is a spec bug, not UB.
    if (t.shares.empty())
        fatal("scenario: empty traffic shape");
    return toJsonList(t.shares);
}

/** Parse a traffic shape: a catalog name or an inline share vector. */
TrafficShapeSpec
shapeFromJson(const Json &v, const std::string &where)
{
    TrafficShapeSpec s;
    if (v.isString()) {
        s.name = v.asString();
        if (s.name.empty())
            fatal("scenario: " + where + " name must not be empty");
        return s;
    }
    if (v.isArray()) {
        s.shares = numberList(v, where);
        if (s.shares.empty()) {
            fatal("scenario: " + where +
                  " share vector must not be empty");
        }
        return s;
    }
    fatal("scenario: " + where +
          " must be a catalog shape name or an array of per-DIMM shares");
}

Json
bandToJson(const RefreshBand &b)
{
    Json j = Json::object();
    j.set("min_temp", b.minTemp);
    j.set("bw_fraction", b.bwFraction);
    j.set("dram_power_w", b.dramPower);
    // latency_mult defaults to 1 on parse, so omitting the default
    // keeps the round trip lossless and the common case terse.
    if (b.latencyMult != 1.0)
        j.set("latency_mult", b.latencyMult);
    return j;
}

Json
refreshToJson(const RefreshSpec &r)
{
    if (!r.name.empty())
        return Json(r.name);
    // A default-constructed spec means "no refresh feedback" and has no
    // serialized form — callers filter those out; reaching here with
    // one (e.g. an empty sweep entry) is a spec bug, not UB.
    if (r.bands.empty())
        fatal("scenario: empty refresh model");
    Json a = Json::array();
    for (const RefreshBand &b : r.bands)
        a.push(bandToJson(b));
    return a;
}

/** Parse a refresh model: a catalog name or an inline band table. */
RefreshSpec
refreshFromJson(const Json &v, const std::string &where)
{
    RefreshSpec s;
    if (v.isString()) {
        s.name = v.asString();
        if (s.name.empty())
            fatal("scenario: " + where + " name must not be empty");
        return s;
    }
    if (v.isArray()) {
        for (const Json &e : v.asArray()) {
            if (!e.isObject()) {
                fatal("scenario: " + where +
                      " bands must be objects");
            }
            checkMembers(e, where + " band",
                         {"min_temp", "bw_fraction", "dram_power_w",
                          "latency_mult"});
            if (!e.find("min_temp") || !e.find("bw_fraction") ||
                !e.find("dram_power_w")) {
                fatal("scenario: " + where +
                      " band needs 'min_temp', 'bw_fraction' and "
                      "'dram_power_w'");
            }
            RefreshBand b;
            b.minTemp = memberNumber(e, "min_temp");
            b.bwFraction = memberNumber(e, "bw_fraction");
            b.dramPower = memberNumber(e, "dram_power_w");
            if (e.find("latency_mult"))
                b.latencyMult = memberNumber(e, "latency_mult");
            s.bands.push_back(b);
        }
        if (s.bands.empty()) {
            fatal("scenario: " + where +
                  " band table must not be empty");
        }
        return s;
    }
    fatal("scenario: " + where +
          " must be a catalog refresh model name or an array of "
          "{min_temp, bw_fraction, dram_power_w[, latency_mult]} bands");
}

Json
thermalModelToJson(const ThermalModelSpec &t)
{
    if (!t.name.empty())
        return Json(t.name);
    // A default-constructed spec means "the lumped per-DIMM model" and
    // has no serialized form — callers filter those out; reaching here
    // with one (e.g. an empty sweep entry) is a spec bug, not UB.
    if (!t.grid)
        fatal("scenario: empty thermal model");
    Json j = Json::object();
    j.set("grid_x", t.grid->x);
    j.set("grid_z", t.grid->z);
    if (!t.grid->weights.empty())
        j.set("bank_weights", toJsonList(t.grid->weights));
    return j;
}

/** Parse a thermal model: a catalog name or an inline grid object. */
ThermalModelSpec
thermalModelFromJson(const Json &v, const std::string &where)
{
    ThermalModelSpec s;
    if (v.isString()) {
        s.name = v.asString();
        if (s.name.empty())
            fatal("scenario: " + where + " name must not be empty");
        return s;
    }
    if (v.isObject()) {
        checkMembers(v, where, {"grid_x", "grid_z", "bank_weights"});
        if (!v.find("grid_x") || !v.find("grid_z")) {
            fatal("scenario: " + where +
                  " needs both 'grid_x' and 'grid_z'");
        }
        BankGridConfig g;
        g.x = memberInt(v, "grid_x");
        g.z = memberInt(v, "grid_z");
        if (v.find("bank_weights")) {
            g.weights =
                numberList(v.at("bank_weights"), where + " bank_weights");
        }
        s.grid = std::move(g);
        return s;
    }
    fatal("scenario: " + where +
          " must be a catalog thermal model name or a "
          "{grid_x, grid_z[, bank_weights]} object");
}

Json
traceJson(const TimeSeries &t)
{
    Json j = Json::object();
    j.set("period_s", t.period());
    Json vals = Json::array();
    for (double v : t.values())
        vals.push(v);
    j.set("values", std::move(vals));
    return j;
}

} // namespace

std::string
MemoryOrgSpec::label() const
{
    if (!name.empty())
        return name;
    if (org) {
        return std::to_string(org->nChannels) + "x" +
               std::to_string(org->nDimmsPerChannel);
    }
    return "";
}

MemoryOrgConfig
MemoryOrgSpec::resolve() const
{
    if (!name.empty())
        return memoryOrgByName(name);
    if (!org)
        fatal("scenario: empty memory organization");
    if (org->nChannels < 1 || org->nDimmsPerChannel < 1) {
        fatal("scenario: memory organization " + label() +
              " must have >= 1 channel and >= 1 DIMM per channel");
    }
    return *org;
}

std::string
TrafficShapeSpec::label() const
{
    if (!name.empty())
        return name;
    // '|' keeps the coordinate free of ',' and '=', which the sweep
    // label grammar reserves for separating coordinates.
    std::string out;
    for (double s : shares) {
        if (!out.empty())
            out += "|";
        out += numStr(s);
    }
    return out;
}

std::vector<double>
TrafficShapeSpec::resolve(int n_dimms) const
{
    if (!name.empty())
        return trafficShapeByName(name, n_dimms);
    if (shares.empty())
        fatal("scenario: empty traffic shape");
    double sum = 0.0;
    for (double s : shares) {
        if (!std::isfinite(s)) {
            fatal("scenario: traffic shape " + label() +
                  " shares must be finite");
        }
        if (s < 0.0) {
            fatal("scenario: traffic shape " + label() +
                  " shares must not be negative");
        }
        sum += s;
    }
    if (std::abs(sum - 1.0) >= 1e-9) {
        fatal("scenario: traffic shape " + label() +
              " shares must sum to 1 (got " + numStr(sum) + ")");
    }
    if (static_cast<int>(shares.size()) != n_dimms) {
        fatal("scenario: traffic shape " + label() + " has " +
              std::to_string(shares.size()) +
              " share(s) but the memory organization has " +
              std::to_string(n_dimms) + " DIMM(s) per channel");
    }
    return shares;
}

std::string
RefreshSpec::label() const
{
    if (!name.empty())
        return name;
    // '|' between bands and ':' within keep the coordinate free of ','
    // and '=', which the sweep label grammar reserves.
    std::string out;
    for (const RefreshBand &b : bands) {
        if (!out.empty())
            out += "|";
        out += numStr(b.minTemp) + ":" + numStr(b.bwFraction) + ":" +
               numStr(b.dramPower);
        if (b.latencyMult != 1.0)
            out += ":" + numStr(b.latencyMult);
    }
    return out;
}

RefreshModel
RefreshSpec::resolve() const
{
    if (!name.empty())
        return refreshModelByName(name);
    if (bands.empty())
        fatal("scenario: empty refresh model");
    for (const RefreshBand &b : bands) {
        if (!std::isfinite(b.minTemp) || !std::isfinite(b.bwFraction) ||
            !std::isfinite(b.dramPower) || !std::isfinite(b.latencyMult)) {
            fatal("scenario: refresh model " + label() +
                  " bands must be finite");
        }
        if (b.bwFraction < 0.0 || b.bwFraction >= 1.0) {
            fatal("scenario: refresh model " + label() +
                  " bw_fraction must be in [0, 1)");
        }
        if (b.dramPower < 0.0) {
            fatal("scenario: refresh model " + label() +
                  " dram_power_w must be >= 0");
        }
        if (b.latencyMult <= 0.0) {
            fatal("scenario: refresh model " + label() +
                  " latency_mult must be > 0");
        }
    }
    for (std::size_t i = 1; i < bands.size(); ++i) {
        if (!(bands[i].minTemp > bands[i - 1].minTemp)) {
            fatal("scenario: refresh model " + label() +
                  " bands must have strictly increasing min_temp");
        }
    }
    RefreshModel m;
    m.bands = bands;
    return m;
}

std::string
ThermalModelSpec::label() const
{
    if (!name.empty())
        return name;
    if (!grid)
        return "";
    // ':' and '|' keep the coordinate free of ',' and '=', which the
    // sweep label grammar reserves for separating coordinates.
    std::string out =
        std::to_string(grid->x) + "x" + std::to_string(grid->z);
    if (!grid->weights.empty()) {
        out += ":";
        for (std::size_t i = 0; i < grid->weights.size(); ++i) {
            if (i)
                out += "|";
            out += numStr(grid->weights[i]);
        }
    }
    return out;
}

ThermalModelConfig
ThermalModelSpec::resolve() const
{
    if (!name.empty())
        return thermalModelByName(name);
    if (!grid)
        fatal("scenario: empty thermal model");
    if (grid->x < 1 || grid->z < 1) {
        fatal("scenario: thermal model " + label() +
              " grid dimensions must be >= 1");
    }
    if (grid->cells() > 1024) {
        fatal("scenario: thermal model " + label() + " has " +
              std::to_string(grid->cells()) +
              " cells per DIMM; the limit is 1024");
    }
    if (!grid->weights.empty()) {
        if (grid->weights.size() !=
            static_cast<std::size_t>(grid->cells())) {
            fatal("scenario: thermal model " + label() + " has " +
                  std::to_string(grid->weights.size()) +
                  " bank weight(s) but the grid has " +
                  std::to_string(grid->cells()) + " cell(s)");
        }
        double sum = 0.0;
        for (double w : grid->weights) {
            if (!std::isfinite(w)) {
                fatal("scenario: thermal model " + label() +
                      " bank weights must be finite");
            }
            if (w < 0.0) {
                fatal("scenario: thermal model " + label() +
                      " bank weights must not be negative");
            }
            sum += w;
        }
        if (std::abs(sum - 1.0) >= 1e-9) {
            fatal("scenario: thermal model " + label() +
                  " bank weights must sum to 1 (got " + numStr(sum) +
                  ")");
        }
    }
    ThermalModelConfig m;
    m.grid = grid;
    return m;
}

std::size_t
LoweredScenario::totalRuns() const
{
    std::size_t n = 0;
    for (const auto &p : points)
        n += p.runs.size();
    return n;
}

void
ScenarioSpec::validate() const
{
    (void)lower(); // lowering resolves every name and checks the axes
}

LoweredScenario
ScenarioSpec::lower() const
{
    if (workloads.empty())
        specError(*this, "no workloads given");
    if (policies.empty())
        specError(*this, "no policies given");

    LoweredScenario out;
    out.workloads = workloads;
    out.policies = policies;

    std::vector<Workload> ws;
    ws.reserve(workloads.size());
    for (const auto &n : workloads)
        ws.push_back(workloadByName(n));

    const bool onPlatform = !platform.empty();
    std::optional<Platform> plat;
    if (onPlatform) {
        plat = platformByName(platform);
        if (!sweepCooling.empty()) {
            specError(*this, "platform scenarios fix the cooling setup; "
                             "remove the cooling sweep");
        }
        if (cooling != ScenarioSpec{}.cooling ||
            ambient != ScenarioSpec{}.ambient) {
            specError(*this,
                      "platform scenarios fix cooling and ambient; remove "
                      "those members");
        }
        if (!emergencyLevels.empty() || !sweepEmergencyLevels.empty() ||
            !dvfs.empty() || !sweepDvfs.empty()) {
            specError(*this,
                      "platform scenarios fix the DVFS table and derive "
                      "the emergency ladders from the platform; remove the "
                      "dvfs/emergency_levels members and sweeps");
        }
        if (!memoryOrg.empty() || !sweepMemoryOrg.empty()) {
            specError(*this,
                      "platform scenarios fix the memory organization "
                      "(the testbed hardware fixes its DIMM population); "
                      "remove the memory_org member and sweep");
        }
        if (!trafficShape.empty() || !sweepTrafficShape.empty()) {
            specError(*this,
                      "platform scenarios use the testbed's measured "
                      "traffic distribution; remove the traffic_shape "
                      "member and sweep");
        }
        if (!refresh.empty() || !sweepRefresh.empty()) {
            specError(*this,
                      "platform scenarios measure the testbed's real "
                      "DRAM, refresh included; remove the refresh "
                      "member and sweep");
        }
        if (!thermalModel.empty() || !sweepThermalModel.empty()) {
            specError(*this,
                      "platform scenarios measure the testbed's real "
                      "DIMMs at DIMM granularity; remove the "
                      "thermal_model member and sweep");
        }
        if (!trace.empty()) {
            specError(*this,
                      "platform scenarios use the testbed's measured "
                      "traffic distribution; remove the trace member");
        }
        if (remapInterval || remapHysteresis) {
            specError(*this,
                      "platform scenarios use the testbed's measured "
                      "traffic distribution, so remap policies have "
                      "nothing to redistribute; remove the "
                      "remap_interval/remap_hysteresis members");
        }
        const auto valid = platformPolicyNames();
        for (const auto &p : policies) {
            bool known = false;
            for (const auto &v : valid)
                known |= (v == p);
            if (!known) {
                specError(*this, "unknown platform policy '" + p +
                                 "' (valid: " + joinNames(valid) + ")");
            }
        }
    } else {
        // Resolving the base cooling/ambient validates both names even
        // when a sweep replaces them below.
        (void)ambientByName(ambient, coolingByName(cooling));
        const auto &reg = PolicyRegistry::instance();
        for (const auto &p : policies) {
            if (!reg.contains(p)) {
                specError(*this, "unknown policy '" + p + "' (valid: " +
                                 joinNames(reg.names()) + ")");
            }
        }
    }

    // --- scalar override sanity: non-finite values would otherwise be
    // indistinguishable from "keep the base value" downstream -----------
    auto checkFinite = [&](const std::optional<double> &v,
                           const char *what) {
        if (v && !std::isfinite(*v))
            specError(*this, std::string(what) + " must be finite");
    };
    checkFinite(tInlet, "t_inlet");
    checkFinite(instrScale, "instr_scale");
    checkFinite(maxSimTime, "max_sim_time");
    checkFinite(dtmInterval, "dtm_interval");
    checkFinite(remapInterval, "remap_interval");
    checkFinite(remapHysteresis, "remap_hysteresis");
    checkFinite(sensorNoiseSigma, "sensor_noise_sigma");
    checkFinite(sensorQuant, "sensor_quant");
    if (instrScale && *instrScale <= 0.0)
        specError(*this, "instr_scale must be > 0");
    if (maxSimTime && *maxSimTime <= 0.0)
        specError(*this, "max_sim_time must be > 0");
    if (dtmInterval && *dtmInterval <= 0.0)
        specError(*this, "dtm_interval must be > 0");
    if (remapInterval && *remapInterval <= 0.0)
        specError(*this, "remap_interval must be > 0");
    if (remapHysteresis && *remapHysteresis < 0.0)
        specError(*this, "remap_hysteresis must be >= 0");
    if (sensorNoiseSigma && *sensorNoiseSigma < 0.0)
        specError(*this, "sensor_noise_sigma must be >= 0");
    if (sensorQuant && *sensorQuant < 0.0)
        specError(*this, "sensor_quant must be >= 0");
    if (copiesPerApp && *copiesPerApp < 1)
        specError(*this, "copies_per_app must be >= 1");

    // --- trace vs modeled traffic: the trace IS the measured per-DIMM
    // distribution, so an analytic shape alongside it could only be
    // silently ignored or silently override the measurement. -------------
    if (!trace.empty() &&
        (!trafficShape.empty() || !sweepTrafficShape.empty())) {
        specError(*this,
                  "'trace' supplies the per-DIMM traffic distribution; "
                  "remove the traffic_shape member and sweep");
    }

    // --- sweep axis sanity ---------------------------------------------
    auto checkSweep = [&](const std::vector<double> &vals, const char *axis,
                          double min, bool exclusive) {
        for (double v : vals) {
            if (!std::isfinite(v)) {
                specError(*this, std::string("sweep.") + axis +
                                     " values must be finite");
            }
            if (exclusive ? v <= min : v < min) {
                specError(*this, std::string("sweep.") + axis +
                                     " values must be " +
                                     (exclusive ? "> " : ">= ") +
                                     numStr(min));
            }
        }
    };
    checkSweep(sweepTInlet, "t_inlet",
               -std::numeric_limits<double>::max(), false);
    checkSweep(sweepSensorNoise, "sensor_noise_sigma", 0.0, false);
    checkSweep(sweepDtmInterval, "dtm_interval", 0.0, true);
    for (int c : sweepCopies)
        if (c < 1)
            specError(*this, "copies_per_app sweep values must be >= 1");

    // --- duplicates: SuiteResults is keyed [workload][policy] and sweep
    // points are keyed by label, so a duplicate anywhere would silently
    // clobber a result. Numeric axes compare by their label rendering,
    // which is exact (shortest-round-trip formatting). -------------------
    auto rejectDuplicates = [&](const std::vector<std::string> &keys,
                                const std::string &what) {
        for (std::size_t i = 0; i < keys.size(); ++i)
            for (std::size_t j = 0; j < i; ++j)
                if (keys[i] == keys[j])
                    specError(*this,
                              "duplicate " + what + " '" + keys[i] + "'");
    };
    auto numKeys = [](const std::vector<double> &v) {
        std::vector<std::string> out;
        for (double x : v)
            out.push_back(numStr(x));
        return out;
    };
    auto intKeys = [](const std::vector<int> &v) {
        std::vector<std::string> out;
        for (int x : v)
            out.push_back(std::to_string(x));
        return out;
    };
    rejectDuplicates(workloads, "workload");
    rejectDuplicates(policies, "policy");
    rejectDuplicates(sweepCooling, "sweep.cooling value");
    rejectDuplicates(numKeys(sweepTInlet), "sweep.t_inlet value");
    rejectDuplicates(intKeys(sweepCopies), "sweep.copies_per_app value");
    rejectDuplicates(numKeys(sweepSensorNoise),
                     "sweep.sensor_noise_sigma value");
    rejectDuplicates(numKeys(sweepDtmInterval), "sweep.dtm_interval value");
    rejectDuplicates(sweepEmergencyLevels, "sweep.emergency_levels value");
    rejectDuplicates(sweepDvfs, "sweep.dvfs value");

    // --- memory organizations: resolve up front (catalog lookup throws
    // listing the valid keys; inline pairs reject non-positive counts)
    // and compare by the *resolved* organization, so "ch4_4x4" and an
    // inline {4, 4} cannot silently collapse onto one sweep point. ------
    std::optional<MemoryOrgConfig> baseOrg;
    if (!memoryOrg.empty())
        baseOrg = memoryOrg.resolve();
    std::vector<MemoryOrgConfig> sweepOrgs;
    sweepOrgs.reserve(sweepMemoryOrg.size());
    for (const auto &o : sweepMemoryOrg)
        sweepOrgs.push_back(o.resolve());
    for (std::size_t i = 0; i < sweepOrgs.size(); ++i) {
        for (std::size_t j = 0; j < i; ++j) {
            if (sweepOrgs[i] == sweepOrgs[j]) {
                std::string what = "duplicate sweep.memory_org "
                                   "organization '" +
                                   sweepMemoryOrg[i].label() + "'";
                if (sweepMemoryOrg[i].label() != sweepMemoryOrg[j].label())
                    what += " (same organization as '" +
                            sweepMemoryOrg[j].label() + "')";
                specError(*this, what);
            }
        }
    }

    // --- traffic shapes: resolve against every organization the grid
    // can visit (the sweep axis, else the scalar override, else the
    // base configuration's chain). Resolving per organization checks an
    // inline vector's arity against each one up front — the error names
    // both axes — and rejects two swept shapes that resolve to the same
    // share vector under any organization, matching the memory_org
    // axis's resolved-value semantics: same-label entries would clobber
    // a result key, and distinctly-named coincidences (front_heavy and
    // linear_taper on a two-DIMM chain; every shape on a one-DIMM
    // chain) would silently duplicate a measurement the sweep presents
    // as two distinct distributions. ----------------------------------
    struct OrgPoint
    {
        MemoryOrgConfig org;
        std::string desc;
    };
    std::vector<OrgPoint> orgPoints;
    if (!sweepOrgs.empty()) {
        for (std::size_t i = 0; i < sweepOrgs.size(); ++i) {
            orgPoints.push_back({sweepOrgs[i],
                                 "sweep.memory_org organization '" +
                                     sweepMemoryOrg[i].label() + "'"});
        }
    } else if (baseOrg) {
        orgPoints.push_back({*baseOrg,
                             "config.memory_org organization '" +
                                 memoryOrg.label() + "'"});
    } else {
        MemoryOrgConfig def = SimConfig{}.org;
        orgPoints.push_back(
            {def, "the base organization (" +
                      std::to_string(def.nChannels) + "x" +
                      std::to_string(def.nDimmsPerChannel) + ")"});
    }
    auto checkShapeArity = [&](const TrafficShapeSpec &shape,
                               const std::string &what,
                               const OrgPoint &op) {
        // Named shapes fit any chain; empty specs fail in resolve().
        if (!shape.name.empty() || shape.shares.empty())
            return;
        if (static_cast<int>(shape.shares.size()) !=
            op.org.nDimmsPerChannel) {
            specError(*this,
                      what + " '" + shape.label() + "' has " +
                          std::to_string(shape.shares.size()) +
                          " share(s) but " + op.desc + " has " +
                          std::to_string(op.org.nDimmsPerChannel) +
                          " DIMM(s) per channel");
        }
    };
    std::vector<std::vector<double>> baseShapeByOrg(orgPoints.size());
    std::vector<std::vector<std::vector<double>>> sweepShapesByOrg(
        orgPoints.size());
    for (std::size_t oi = 0; oi < orgPoints.size(); ++oi) {
        const OrgPoint &op = orgPoints[oi];
        if (!trafficShape.empty()) {
            checkShapeArity(trafficShape, "config.traffic_shape", op);
            baseShapeByOrg[oi] =
                trafficShape.resolve(op.org.nDimmsPerChannel);
        }
        auto &resolved = sweepShapesByOrg[oi];
        resolved.reserve(sweepTrafficShape.size());
        for (const auto &sh : sweepTrafficShape) {
            checkShapeArity(sh, "sweep.traffic_shape entry", op);
            resolved.push_back(sh.resolve(op.org.nDimmsPerChannel));
        }
        for (std::size_t i = 0; i < resolved.size(); ++i) {
            for (std::size_t j = 0; j < i; ++j) {
                if (resolved[i] == resolved[j]) {
                    std::string what =
                        "duplicate sweep.traffic_shape shape '" +
                        sweepTrafficShape[i].label() + "'";
                    if (sweepTrafficShape[i].label() !=
                        sweepTrafficShape[j].label()) {
                        what += " (same shares as '" +
                                sweepTrafficShape[j].label() +
                                "' under " + op.desc + ")";
                    }
                    specError(*this, what);
                }
            }
        }
    }

    // --- resolve ladder and DVFS names up front (throws listing the
    // valid keys), and keep the Chapter 4 CDVFS schemes honest: their
    // action tables select operating points 0..3. ------------------------
    const bool usesCdvfs = [&] {
        for (const auto &p : policies)
            if (p == "DTM-CDVFS" || p == "DTM-CDVFS+PID")
                return true;
        return false;
    }();
    auto checkDvfsName = [&](const std::string &name) {
        DvfsTable t = DvfsRegistry::instance().byName(name);
        if (usesCdvfs && t.levels() < 4) {
            specError(*this, "DVFS table '" + name + "' has " +
                                 std::to_string(t.levels()) +
                                 " levels; DTM-CDVFS selects levels 0..3");
        }
    };
    // Resolution doubles as the validity check, and the resolved values
    // are reused across every grid point below.
    std::optional<EmergencyLevels> baseLadder;
    if (!emergencyLevels.empty())
        baseLadder = emergencyLevelsByName(emergencyLevels);
    std::vector<EmergencyLevels> sweepLadders;
    sweepLadders.reserve(sweepEmergencyLevels.size());
    for (const auto &n : sweepEmergencyLevels)
        sweepLadders.push_back(emergencyLevelsByName(n));
    std::optional<DvfsTable> baseDvfs;
    if (!dvfs.empty()) {
        checkDvfsName(dvfs);
        baseDvfs = DvfsRegistry::instance().byName(dvfs);
    }
    std::vector<DvfsTable> sweepTables;
    sweepTables.reserve(sweepDvfs.size());
    for (const auto &n : sweepDvfs) {
        checkDvfsName(n);
        sweepTables.push_back(DvfsRegistry::instance().byName(n));
    }

    // --- refresh models: resolve up front (catalog lookup throws
    // listing the valid keys; inline band tables validate bounds and
    // ordering) and compare by the *resolved* model, so "none" and a
    // differently-spelled equivalent cannot silently collapse onto one
    // sweep point. -----------------------------------------------------
    std::optional<RefreshModel> baseRefresh;
    if (!refresh.empty())
        baseRefresh = refresh.resolve();
    std::vector<RefreshModel> sweepRefreshModels;
    sweepRefreshModels.reserve(sweepRefresh.size());
    for (const auto &r : sweepRefresh)
        sweepRefreshModels.push_back(r.resolve());
    for (std::size_t i = 0; i < sweepRefreshModels.size(); ++i) {
        for (std::size_t j = 0; j < i; ++j) {
            if (sweepRefreshModels[i] == sweepRefreshModels[j]) {
                std::string what = "duplicate sweep.refresh model '" +
                                   sweepRefresh[i].label() + "'";
                if (sweepRefresh[i].label() != sweepRefresh[j].label())
                    what += " (same model as '" +
                            sweepRefresh[j].label() + "')";
                specError(*this, what);
            }
        }
    }

    // --- thermal models: resolve up front (catalog lookup throws
    // listing the valid keys; inline grids validate dimensions and
    // weights) and compare by the *resolved* model, so "bank_grid" and
    // an inline {4, 2} grid cannot silently collapse onto one sweep
    // point. -------------------------------------------------------------
    std::optional<ThermalModelConfig> baseThermal;
    if (!thermalModel.empty())
        baseThermal = thermalModel.resolve();
    std::vector<ThermalModelConfig> sweepThermalModels;
    sweepThermalModels.reserve(sweepThermalModel.size());
    for (const auto &t : sweepThermalModel)
        sweepThermalModels.push_back(t.resolve());
    for (std::size_t i = 0; i < sweepThermalModels.size(); ++i) {
        for (std::size_t j = 0; j < i; ++j) {
            if (sweepThermalModels[i] == sweepThermalModels[j]) {
                std::string what =
                    "duplicate sweep.thermal_model model '" +
                    sweepThermalModel[i].label() + "'";
                if (sweepThermalModel[i].label() !=
                    sweepThermalModel[j].label()) {
                    what += " (same thermal model as '" +
                            sweepThermalModel[j].label() + "')";
                }
                specError(*this, what);
            }
        }
    }

    // A trace decodes into the per-bank heat weights, so inline
    // bank_weights alongside one could only fight the measurement.
    if (!trace.empty()) {
        auto hasWeights = [](const ThermalModelConfig &m) {
            return m.grid && !m.grid->weights.empty();
        };
        bool inlineWeights = baseThermal && hasWeights(*baseThermal);
        for (const auto &m : sweepThermalModels)
            inlineWeights |= hasWeights(m);
        if (inlineWeights) {
            specError(*this,
                      "'trace' supplies the per-bank activity weights; "
                      "remove the thermal model's bank_weights");
        }
    }

    // Load the trace once; it decodes per grid point below (the profile
    // depends on the point's organization and grid resolution).
    std::vector<TraceRecord> traceRecords;
    if (!trace.empty())
        traceRecords = loadTrace(trace);

    // --- the grid: an odometer over the eleven axes, last axis fastest.
    // An empty axis contributes one "keep the base value" slot (a null
    // coordinate below), so no in-band sentinel value can be swallowed.
    const std::array<std::size_t, 11> dim = {
        std::max<std::size_t>(sweepMemoryOrg.size(), 1),
        std::max<std::size_t>(sweepTrafficShape.size(), 1),
        std::max<std::size_t>(sweepCooling.size(), 1),
        std::max<std::size_t>(sweepTInlet.size(), 1),
        std::max<std::size_t>(sweepCopies.size(), 1),
        std::max<std::size_t>(sweepSensorNoise.size(), 1),
        std::max<std::size_t>(sweepDtmInterval.size(), 1),
        std::max<std::size_t>(sweepEmergencyLevels.size(), 1),
        std::max<std::size_t>(sweepDvfs.size(), 1),
        std::max<std::size_t>(sweepRefresh.size(), 1),
        std::max<std::size_t>(sweepThermalModel.size(), 1),
    };
    std::array<std::size_t, 11> ix{};
    for (;;) {
        auto coord = [&](const auto &axis,
                         std::size_t a) -> const auto * {
            return axis.empty() ? nullptr : &axis[ix[a]];
        };
        const MemoryOrgSpec *orgSpec = coord(sweepMemoryOrg, 0);
        const TrafficShapeSpec *shapeSpec = coord(sweepTrafficShape, 1);
        const std::string *coolName = coord(sweepCooling, 2);
        const double *inlet = coord(sweepTInlet, 3);
        const int *copies = coord(sweepCopies, 4);
        const double *noise = coord(sweepSensorNoise, 5);
        const double *dtm = coord(sweepDtmInterval, 6);
        const std::string *ladder = coord(sweepEmergencyLevels, 7);
        const std::string *dvfsName = coord(sweepDvfs, 8);
        const RefreshSpec *refreshSpec = coord(sweepRefresh, 9);
        const ThermalModelSpec *thermalSpec = coord(sweepThermalModel, 10);
        // Shapes resolve per organization point (orgPoints mirrors the
        // org axis when it sweeps, else has the single base entry).
        const std::size_t orgIdx = sweepOrgs.empty() ? 0 : ix[0];

        LoweredScenario::Point pt;

        std::vector<std::string> parts;
        if (orgSpec)
            parts.push_back("org=" + orgSpec->label());
        if (shapeSpec)
            parts.push_back("shape=" + shapeSpec->label());
        if (coolName)
            parts.push_back("cooling=" + *coolName);
        if (inlet)
            parts.push_back("inlet=" + numStr(*inlet));
        if (copies)
            parts.push_back("copies=" + std::to_string(*copies));
        if (noise)
            parts.push_back("noise=" + numStr(*noise));
        if (dtm)
            parts.push_back("dtm=" + numStr(*dtm));
        if (ladder)
            parts.push_back("levels=" + *ladder);
        if (dvfsName)
            parts.push_back("dvfs=" + *dvfsName);
        if (refreshSpec)
            parts.push_back("refresh=" + refreshSpec->label());
        if (thermalSpec)
            parts.push_back("thermal=" + thermalSpec->label());
        if (parts.empty()) {
            pt.label = "base";
        } else {
            for (const auto &part : parts) {
                if (!pt.label.empty())
                    pt.label += ",";
                pt.label += part;
            }
        }

        SimConfig cfg;
        if (onPlatform) {
            cfg = plat->sim;
        } else {
            cfg = makeCh4Config(coolingByName(coolName ? *coolName
                                                       : cooling),
                                ambient == "integrated");
        }

        // Spec-level overrides, then sweep coordinates
        // (an axis supersedes the scalar member).
        if (baseOrg)
            cfg.org = *baseOrg;
        if (!trafficShape.empty())
            cfg.trafficShares = baseShapeByOrg[orgIdx];
        if (tInlet)
            cfg.ambient.tInlet = *tInlet;
        if (copiesPerApp)
            cfg.copiesPerApp = *copiesPerApp;
        if (instrScale)
            cfg.instrScale = *instrScale;
        if (maxSimTime)
            cfg.maxSimTime = *maxSimTime;
        if (dtmInterval)
            cfg.dtmInterval = *dtmInterval;
        if (remapInterval)
            cfg.remapInterval = *remapInterval;
        if (remapHysteresis)
            cfg.remapHysteresis = *remapHysteresis;
        if (sensorNoiseSigma)
            cfg.sensorNoiseSigma = *sensorNoiseSigma;
        if (sensorQuant)
            cfg.sensorQuant = *sensorQuant;
        if (sensorSeed)
            cfg.sensorSeed = *sensorSeed;
        if (baseLadder)
            cfg.emergencyLevels = *baseLadder;
        if (baseDvfs)
            cfg.dvfs = *baseDvfs;
        if (baseRefresh)
            cfg.refresh = *baseRefresh;
        if (baseThermal)
            cfg.bankGrid = baseThermal->grid;
        if (orgSpec)
            cfg.org = sweepOrgs[ix[0]];
        if (shapeSpec)
            cfg.trafficShares = sweepShapesByOrg[orgIdx][ix[1]];
        if (inlet)
            cfg.ambient.tInlet = *inlet;
        if (copies)
            cfg.copiesPerApp = *copies;
        if (noise)
            cfg.sensorNoiseSigma = *noise;
        if (dtm)
            cfg.dtmInterval = *dtm;
        if (ladder)
            cfg.emergencyLevels = sweepLadders[ix[7]];
        if (dvfsName)
            cfg.dvfs = sweepTables[ix[8]];
        if (refreshSpec)
            cfg.refresh = sweepRefreshModels[ix[9]];
        if (thermalSpec)
            cfg.bankGrid = sweepThermalModels[ix[10]].grid;

        // A trace decodes against the point's organization and grid:
        // per-DIMM shares always, per-bank heat weights when the
        // bank-grid model is active at this point.
        if (!traceRecords.empty()) {
            TraceProfile prof = decodeTrace(
                traceRecords, cfg.org.nChannels, cfg.org.nDimmsPerChannel,
                cfg.bankGrid ? cfg.bankGrid->cells() : 0);
            cfg.trafficShares = std::move(prof.dimmShares);
            if (cfg.bankGrid)
                cfg.bankGrid->weights = std::move(prof.bankWeights);
        }

        // The simulator panics on a decision period below its trace
        // window; report it as a configuration error instead.
        if (cfg.dtmInterval < cfg.window) {
            specError(*this, "dtm_interval " + numStr(cfg.dtmInterval) +
                                 " is below the simulator window (" +
                                 numStr(cfg.window) + " s)");
        }

        // Remap boundaries must land on DTM decision boundaries — the
        // remap policies only run inside DTM decisions, so a period
        // below the window or off the dtm_interval grid would silently
        // remap late. Checked only when the knob is set: the default
        // period deliberately stays out of dtm_interval sweeps that
        // never name a remap policy.
        if (remapInterval) {
            if (cfg.remapInterval < cfg.window) {
                specError(*this,
                          "remap_interval " + numStr(cfg.remapInterval) +
                              " is below the simulator window (" +
                              numStr(cfg.window) + " s)");
            }
            double ratio = cfg.remapInterval / cfg.dtmInterval;
            double whole = std::round(ratio);
            if (whole < 1.0 ||
                std::abs(ratio - whole) > 1e-9 * std::max(1.0, ratio)) {
                specError(*this,
                          "remap_interval " + numStr(cfg.remapInterval) +
                              " is not a whole multiple of dtm_interval " +
                              numStr(cfg.dtmInterval) +
                              " (remap decisions run inside DTM "
                              "decisions, so the periods must nest)");
            }
        }

        pt.cfg = cfg;
        pt.runs.reserve(ws.size() * policies.size());
        if (onPlatform) {
            Platform p = *plat;
            p.sim = cfg;
            for (const Workload &w : ws)
                for (const auto &pol : policies)
                    pt.runs.push_back(ch5EngineRun(p, w, pol));
        } else {
            for (const Workload &w : ws)
                for (const auto &pol : policies)
                    pt.runs.push_back({cfg, w, pol, {}});
        }
        out.points.push_back(std::move(pt));

        // Advance the odometer; carry out of axis 0 means we are done.
        std::size_t k = dim.size();
        for (; k > 0; --k) {
            if (++ix[k - 1] < dim[k - 1])
                break;
            ix[k - 1] = 0;
        }
        if (k == 0)
            break;
    }

    // Equivalence classes over the global run order (see the header's
    // LoweredScenario::classes contract). Lowering just emitted the runs
    // workload-major with the policy fastest, which is exactly the
    // contiguity the classes assert.
    {
        std::size_t base = 0;
        const std::size_t n_pol = policies.size();
        for (const auto &pt : out.points) {
            if (onPlatform) {
                // ch5EngineRun specializes the config per policy
                // (SR1500AL "No-limit" runs at a 26 C room ambient), so
                // platform runs never share a prefix.
                for (std::size_t r = 0; r < pt.runs.size(); ++r)
                    out.classes.push_back({base + r, 1});
            } else {
                for (std::size_t w = 0; w < ws.size(); ++w)
                    out.classes.push_back({base + w * n_pol, n_pol});
            }
            base += pt.runs.size();
        }
    }
    return out;
}

Json
ScenarioSpec::toJson() const
{
    Json j = Json::object();
    j.set("name", name);
    if (!description.empty())
        j.set("description", description);
    if (!platform.empty())
        j.set("platform", platform);

    Json cfg = Json::object();
    if (platform.empty()) {
        cfg.set("cooling", cooling);
        cfg.set("ambient", ambient);
    }
    if (!emergencyLevels.empty())
        cfg.set("emergency_levels", emergencyLevels);
    if (!dvfs.empty())
        cfg.set("dvfs", dvfs);
    if (!memoryOrg.empty())
        cfg.set("memory_org", orgToJson(memoryOrg));
    if (!trafficShape.empty())
        cfg.set("traffic_shape", shapeToJson(trafficShape));
    if (!refresh.empty())
        cfg.set("refresh", refreshToJson(refresh));
    if (!thermalModel.empty())
        cfg.set("thermal_model", thermalModelToJson(thermalModel));
    if (!trace.empty())
        cfg.set("trace", trace);
    if (tInlet)
        cfg.set("t_inlet", *tInlet);
    if (copiesPerApp)
        cfg.set("copies_per_app", *copiesPerApp);
    if (instrScale)
        cfg.set("instr_scale", *instrScale);
    if (maxSimTime)
        cfg.set("max_sim_time", *maxSimTime);
    if (dtmInterval)
        cfg.set("dtm_interval", *dtmInterval);
    if (remapInterval)
        cfg.set("remap_interval", *remapInterval);
    if (remapHysteresis)
        cfg.set("remap_hysteresis", *remapHysteresis);
    if (sensorNoiseSigma)
        cfg.set("sensor_noise_sigma", *sensorNoiseSigma);
    if (sensorQuant)
        cfg.set("sensor_quant", *sensorQuant);
    if (sensorSeed)
        cfg.set("sensor_seed", static_cast<double>(*sensorSeed));
    if (!cfg.asObject().empty())
        j.set("config", std::move(cfg));

    j.set("workloads", toJsonList(workloads));
    j.set("policies", toJsonList(policies));

    Json sweep = Json::object();
    if (!sweepMemoryOrg.empty()) {
        Json a = Json::array();
        for (const auto &o : sweepMemoryOrg)
            a.push(orgToJson(o));
        sweep.set("memory_org", std::move(a));
    }
    if (!sweepTrafficShape.empty()) {
        Json a = Json::array();
        for (const auto &t : sweepTrafficShape)
            a.push(shapeToJson(t));
        sweep.set("traffic_shape", std::move(a));
    }
    if (!sweepCooling.empty())
        sweep.set("cooling", toJsonList(sweepCooling));
    if (!sweepTInlet.empty())
        sweep.set("t_inlet", toJsonList(sweepTInlet));
    if (!sweepCopies.empty()) {
        Json a = Json::array();
        for (int c : sweepCopies)
            a.push(c);
        sweep.set("copies_per_app", std::move(a));
    }
    if (!sweepSensorNoise.empty())
        sweep.set("sensor_noise_sigma", toJsonList(sweepSensorNoise));
    if (!sweepDtmInterval.empty())
        sweep.set("dtm_interval", toJsonList(sweepDtmInterval));
    if (!sweepEmergencyLevels.empty())
        sweep.set("emergency_levels", toJsonList(sweepEmergencyLevels));
    if (!sweepDvfs.empty())
        sweep.set("dvfs", toJsonList(sweepDvfs));
    if (!sweepRefresh.empty()) {
        Json a = Json::array();
        for (const auto &r : sweepRefresh)
            a.push(refreshToJson(r));
        sweep.set("refresh", std::move(a));
    }
    if (!sweepThermalModel.empty()) {
        Json a = Json::array();
        for (const auto &t : sweepThermalModel)
            a.push(thermalModelToJson(t));
        sweep.set("thermal_model", std::move(a));
    }
    if (!sweep.asObject().empty())
        j.set("sweep", std::move(sweep));

    return j;
}

ScenarioSpec
ScenarioSpec::fromJson(const Json &j)
{
    if (!j.isObject())
        fatal("scenario: document must be a JSON object");
    checkMembers(j, "the scenario",
                 {"name", "description", "platform", "config", "workloads",
                  "policies", "sweep"});

    ScenarioSpec s;
    if (j.find("name"))
        s.name = memberString(j, "name");
    if (j.find("description"))
        s.description = memberString(j, "description");
    if (j.find("platform"))
        s.platform = memberString(j, "platform");

    if (const Json *cfg = j.find("config")) {
        if (!cfg->isObject())
            fatal("scenario: 'config' must be an object");
        checkMembers(*cfg, "'config'",
                     {"cooling", "ambient", "emergency_levels", "dvfs",
                      "memory_org", "traffic_shape", "refresh",
                      "thermal_model", "trace", "t_inlet",
                      "copies_per_app", "instr_scale", "max_sim_time",
                      "dtm_interval", "remap_interval", "remap_hysteresis",
                      "sensor_noise_sigma", "sensor_quant",
                      "sensor_seed"});
        if (cfg->find("cooling"))
            s.cooling = memberString(*cfg, "cooling");
        if (cfg->find("ambient"))
            s.ambient = memberString(*cfg, "ambient");
        if (cfg->find("emergency_levels"))
            s.emergencyLevels = memberString(*cfg, "emergency_levels");
        if (cfg->find("dvfs"))
            s.dvfs = memberString(*cfg, "dvfs");
        if (cfg->find("memory_org")) {
            s.memoryOrg =
                orgFromJson(cfg->at("memory_org"), "'config.memory_org'");
        }
        if (cfg->find("traffic_shape")) {
            s.trafficShape = shapeFromJson(cfg->at("traffic_shape"),
                                           "'config.traffic_shape'");
        }
        if (cfg->find("refresh")) {
            s.refresh =
                refreshFromJson(cfg->at("refresh"), "'config.refresh'");
        }
        if (cfg->find("thermal_model")) {
            s.thermalModel = thermalModelFromJson(
                cfg->at("thermal_model"), "'config.thermal_model'");
        }
        if (cfg->find("trace")) {
            s.trace = memberString(*cfg, "trace");
            if (s.trace.empty())
                fatal("scenario: 'trace' path must not be empty");
        }
        if (cfg->find("t_inlet"))
            s.tInlet = memberNumber(*cfg, "t_inlet");
        if (cfg->find("copies_per_app"))
            s.copiesPerApp = memberInt(*cfg, "copies_per_app");
        if (cfg->find("instr_scale"))
            s.instrScale = memberNumber(*cfg, "instr_scale");
        if (cfg->find("max_sim_time"))
            s.maxSimTime = memberNumber(*cfg, "max_sim_time");
        if (cfg->find("dtm_interval"))
            s.dtmInterval = memberNumber(*cfg, "dtm_interval");
        if (cfg->find("remap_interval"))
            s.remapInterval = memberNumber(*cfg, "remap_interval");
        if (cfg->find("remap_hysteresis"))
            s.remapHysteresis = memberNumber(*cfg, "remap_hysteresis");
        if (cfg->find("sensor_noise_sigma"))
            s.sensorNoiseSigma = memberNumber(*cfg, "sensor_noise_sigma");
        if (cfg->find("sensor_quant"))
            s.sensorQuant = memberNumber(*cfg, "sensor_quant");
        if (cfg->find("sensor_seed")) {
            double v = memberNumber(*cfg, "sensor_seed");
            if (v != std::floor(v) || v < 0.0)
                fatal("scenario: 'sensor_seed' must be a non-negative "
                      "integer");
            s.sensorSeed = static_cast<std::uint64_t>(v);
        }
    }

    if (j.find("workloads"))
        s.workloads = stringList(j.at("workloads"), "workloads");
    if (j.find("policies"))
        s.policies = stringList(j.at("policies"), "policies");

    if (const Json *sweep = j.find("sweep")) {
        if (!sweep->isObject())
            fatal("scenario: 'sweep' must be an object");
        checkMembers(*sweep, "'sweep'",
                     {"memory_org", "traffic_shape", "cooling", "t_inlet",
                      "copies_per_app", "sensor_noise_sigma",
                      "dtm_interval", "emergency_levels", "dvfs",
                      "refresh", "thermal_model"});
        if (sweep->find("memory_org")) {
            const Json &a = sweep->at("memory_org");
            if (!a.isArray()) {
                fatal("scenario: 'sweep.memory_org' must be an array of "
                      "catalog names or {channels, dimms} objects");
            }
            for (const Json &e : a.asArray()) {
                s.sweepMemoryOrg.push_back(
                    orgFromJson(e, "'sweep.memory_org' entry"));
            }
        }
        if (sweep->find("traffic_shape")) {
            const Json &a = sweep->at("traffic_shape");
            if (!a.isArray()) {
                fatal("scenario: 'sweep.traffic_shape' must be an array "
                      "of catalog shape names or per-DIMM share vectors");
            }
            for (const Json &e : a.asArray()) {
                s.sweepTrafficShape.push_back(
                    shapeFromJson(e, "'sweep.traffic_shape' entry"));
            }
        }
        if (sweep->find("cooling")) {
            s.sweepCooling =
                stringList(sweep->at("cooling"), "sweep.cooling");
        }
        if (sweep->find("t_inlet")) {
            s.sweepTInlet =
                numberList(sweep->at("t_inlet"), "sweep.t_inlet");
        }
        if (sweep->find("copies_per_app")) {
            for (double v : numberList(sweep->at("copies_per_app"),
                                       "sweep.copies_per_app")) {
                if (v != std::floor(v)) {
                    fatal("scenario: sweep.copies_per_app must contain "
                          "integers");
                }
                s.sweepCopies.push_back(static_cast<int>(v));
            }
        }
        if (sweep->find("sensor_noise_sigma")) {
            s.sweepSensorNoise = numberList(
                sweep->at("sensor_noise_sigma"), "sweep.sensor_noise_sigma");
        }
        if (sweep->find("dtm_interval")) {
            s.sweepDtmInterval =
                numberList(sweep->at("dtm_interval"), "sweep.dtm_interval");
        }
        if (sweep->find("emergency_levels")) {
            s.sweepEmergencyLevels = stringList(
                sweep->at("emergency_levels"), "sweep.emergency_levels");
        }
        if (sweep->find("dvfs"))
            s.sweepDvfs = stringList(sweep->at("dvfs"), "sweep.dvfs");
        if (sweep->find("refresh")) {
            const Json &a = sweep->at("refresh");
            if (!a.isArray()) {
                fatal("scenario: 'sweep.refresh' must be an array of "
                      "catalog refresh model names or band tables");
            }
            for (const Json &e : a.asArray()) {
                s.sweepRefresh.push_back(
                    refreshFromJson(e, "'sweep.refresh' entry"));
            }
        }
        if (sweep->find("thermal_model")) {
            const Json &a = sweep->at("thermal_model");
            if (!a.isArray()) {
                fatal("scenario: 'sweep.thermal_model' must be an array "
                      "of catalog thermal model names or "
                      "{grid_x, grid_z[, bank_weights]} objects");
            }
            for (const Json &e : a.asArray()) {
                s.sweepThermalModel.push_back(thermalModelFromJson(
                    e, "'sweep.thermal_model' entry"));
            }
        }
    }
    return s;
}

ScenarioSpec
ScenarioSpec::load(const std::string &path)
{
    return fromJson(Json::load(path));
}

void
ScenarioSpec::save(const std::string &path) const
{
    toJson().save(path);
}

void
applyFaultInjection(std::vector<ExperimentEngine::Run> &runs)
{
    const char *env = std::getenv("MEMTHERM_FAULT_FAIL_RUN");
    if (!env)
        return;
    char *end = nullptr;
    unsigned long k = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0') {
        warn("MEMTHERM_FAULT_FAIL_RUN='" + std::string(env) +
             "' is not a run index; ignoring");
        return;
    }
    if (k >= runs.size())
        return;
    runs[k].factory = [k](const SimConfig &,
                          const std::string &) -> std::unique_ptr<DtmPolicy> {
        fatal("injected failure (MEMTHERM_FAULT_FAIL_RUN=" +
              std::to_string(k) + ")");
    };
}

namespace
{

/**
 * Sink behind runScenario(): positional results plus per-run failure
 * records, so one throwing run cannot discard the rest of the grid.
 */
class ScenarioCollectSink : public RunSink
{
  public:
    explicit ScenarioCollectSink(std::size_t n) : results(n), ok(n, false)
    {
    }

    void onResult(std::size_t i, SimResult &&r, double) override
    {
        results[i] = std::move(r);
        ok[i] = true;
    }

    void onFailure(std::size_t i, std::exception_ptr err) override
    {
        std::string what = "unknown error";
        try {
            std::rethrow_exception(err);
        } catch (const std::exception &e) {
            what = e.what();
        } catch (...) {
        }
        failures.emplace_back(i, what);
    }

    std::vector<SimResult> results;
    std::vector<bool> ok;
    std::vector<std::pair<std::size_t, std::string>> failures;
};

/**
 * Shared body of runScenario()/runScenarioBatched(): lower, execute
 * (scalar when @p batch_width is 0, batched otherwise), assemble.
 */
ScenarioResults
runScenarioImpl(const ScenarioSpec &spec, ExperimentEngine &engine,
                int batch_width, BatchStats *stats)
{
    LoweredScenario low = spec.lower();

    std::vector<ExperimentEngine::Run> all;
    all.reserve(low.totalRuns());
    for (const auto &pt : low.points)
        for (const auto &r : pt.runs)
            all.push_back(r);
    applyFaultInjection(all);

    ScenarioCollectSink sink(all.size());
    if (batch_width == 0)
        engine.run(all, sink);
    else
        engine.runBatched(all, low.classes, batch_width, sink, stats);

    ScenarioResults out;
    out.scenario = spec.name;
    std::size_t k = 0;
    for (const auto &pt : low.points) {
        ScenarioResults::Point rp;
        rp.label = pt.label;
        for (const auto &w : low.workloads)
            for (const auto &p : low.policies) {
                if (sink.ok[k])
                    rp.suite[w][p] = std::move(sink.results[k]);
                ++k;
            }
        out.points.push_back(std::move(rp));
    }
    // Failure records carry the full grid coordinate; completion order
    // is nondeterministic, so sort by index for stable output.
    std::sort(sink.failures.begin(), sink.failures.end());
    for (const auto &[i, what] : sink.failures) {
        const std::size_t per_point = low.workloads.size() *
                                      low.policies.size();
        RunError e;
        e.index = i;
        e.point = low.points[i / per_point].label;
        e.workload = low.workloads[(i % per_point) / low.policies.size()];
        e.policy = low.policies[i % low.policies.size()];
        e.error = what;
        out.errors.push_back(std::move(e));
    }
    return out;
}

} // namespace

ScenarioResults
runScenario(const ScenarioSpec &spec, ExperimentEngine &engine)
{
    return runScenarioImpl(spec, engine, 0, nullptr);
}

ScenarioResults
runScenario(const ScenarioSpec &spec)
{
    ExperimentEngine engine;
    return runScenario(spec, engine);
}

ScenarioResults
runScenarioBatched(const ScenarioSpec &spec, ExperimentEngine &engine,
                   int batch_width, BatchStats *stats)
{
    return runScenarioImpl(spec, engine, batch_width, stats);
}

Json
toJson(const SimResult &r, bool traces)
{
    Json j = Json::object();
    j.set("workload", r.workload);
    j.set("policy", r.policy);
    j.set("completed", r.completed);
    j.set("running_time_s", r.runningTime);
    j.set("total_instr", r.totalInstr);
    j.set("read_gb", r.totalReadGB);
    j.set("write_gb", r.totalWriteGB);
    j.set("l2_misses", r.totalL2Misses);
    j.set("mem_energy_j", r.memEnergy);
    j.set("cpu_energy_j", r.cpuEnergy);
    j.set("max_amb_c", r.maxAmb);
    j.set("max_dram_c", r.maxDram);
    j.set("time_above_amb_tdp_s", r.timeAboveAmbTdp);
    j.set("time_above_dram_tdp_s", r.timeAboveDramTdp);
    j.set("peak_amb_per_dimm_c", toJsonList(r.peakAmbPerDimm));
    j.set("peak_dram_per_dimm_c", toJsonList(r.peakDramPerDimm));
    j.set("avg_power_per_dimm_w", toJsonList(r.avgPowerPerDimm));
    // Schema v2 members, present only when the run's refresh model was
    // active (the vectors are sized iff SimConfig::refresh is non-empty),
    // so every pre-refresh golden keeps its exact member set.
    if (!r.refreshBwLossPerDimm.empty()) {
        j.set("refresh_bw_loss_per_dimm_gb",
              toJsonList(r.refreshBwLossPerDimm));
        j.set("refresh_energy_per_dimm_j",
              toJsonList(r.refreshEnergyPerDimm));
    }
    // Schema v3 members, present only when the run's bank-grid thermal
    // model was active (the vector is sized iff SimConfig::bankGrid is
    // set), so every lumped-model golden keeps its exact member set.
    if (!r.peakBankDramPerDimm.empty()) {
        Json g = Json::object();
        g.set("x", r.bankGridX);
        g.set("z", r.bankGridZ);
        j.set("bank_grid", std::move(g));
        const std::size_t cells = static_cast<std::size_t>(r.bankGridX) *
                                  static_cast<std::size_t>(r.bankGridZ);
        Json per_dimm = Json::array();
        for (std::size_t base = 0; base < r.peakBankDramPerDimm.size();
             base += cells) {
            Json row = Json::array();
            for (std::size_t c = 0; c < cells; ++c)
                row.push(r.peakBankDramPerDimm[base + c]);
            per_dimm.push(std::move(row));
        }
        j.set("peak_bank_dram_c", std::move(per_dimm));
    }
    if (traces) {
        Json t = Json::object();
        t.set("amb_c", traceJson(r.ambTrace));
        t.set("dram_c", traceJson(r.dramTrace));
        t.set("inlet_c", traceJson(r.inletTrace));
        t.set("cpu_power_w", traceJson(r.cpuPowerTrace));
        t.set("bw_gbps", traceJson(r.bwTrace));
        j.set("traces", std::move(t));
    }
    return j;
}

Json
toJson(const SuiteResults &r, bool traces)
{
    Json j = Json::object();
    for (const auto &[w, per_policy] : r) {
        Json pw = Json::object();
        for (const auto &[p, res] : per_policy)
            pw.set(p, toJson(res, traces));
        j.set(w, std::move(pw));
    }
    return j;
}

int
resultSchemaVersionOf(const Json &doc, const std::string &where,
                      int max_version)
{
    const Json *v = doc.isObject() ? doc.find("schema_version") : nullptr;
    if (!v)
        return 1; // version-absent legacy file
    if (!v->isNumber() || v->asNumber() != std::floor(v->asNumber()) ||
        v->asNumber() < 1) {
        fatal(where + ": 'schema_version' must be a positive integer");
    }
    const int ver = static_cast<int>(v->asNumber());
    if (ver > max_version) {
        fatal(where + ": schema version " + std::to_string(ver) +
              " is newer than this binary's " +
              std::to_string(max_version) +
              "; upgrade memtherm to read this file");
    }
    return ver;
}

Json
toJson(const ScenarioResults &r, bool traces)
{
    Json j = Json::object();
    j.set("scenario", r.scenario);
    // Schema versioning (kResultSchemaVersion): stamped with the
    // *minimum* version the document's members imply — 3 only when a
    // v3-only member (the per-bank peaks) is present, 2 when only
    // v2-only members (the per-DIMM refresh fields) are, nothing for
    // the historical member set — so documents keep their exact
    // historical bytes until they actually use a newer field.
    bool has_v2 = false, has_v3 = false;
    for (const auto &pt : r.points)
        for (const auto &[w, per_policy] : pt.suite)
            for (const auto &[p, res] : per_policy) {
                has_v2 |= !res.refreshBwLossPerDimm.empty();
                has_v3 |= !res.peakBankDramPerDimm.empty();
            }
    if (has_v3)
        j.set("schema_version", 3);
    else if (has_v2)
        j.set("schema_version", 2);
    Json pts = Json::array();
    for (const auto &pt : r.points) {
        Json p = Json::object();
        p.set("label", pt.label);
        p.set("results", toJson(pt.suite, traces));
        pts.push(std::move(p));
    }
    j.set("points", std::move(pts));
    // Emitted only when runs failed, so clean results (and the
    // committed goldens) keep their exact historical shape.
    if (!r.errors.empty()) {
        Json errs = Json::array();
        for (const auto &e : r.errors) {
            Json o = Json::object();
            o.set("index", static_cast<std::uint64_t>(e.index));
            o.set("point", e.point);
            o.set("workload", e.workload);
            o.set("policy", e.policy);
            o.set("error", e.error);
            errs.push(std::move(o));
        }
        j.set("errors", std::move(errs));
    }
    return j;
}

} // namespace memtherm
