#include "core/sim/scenario.hh"

#include <cmath>

#include "common/logging.hh"
#include "core/sim/registry.hh"
#include "testbed/platform.hh"

namespace memtherm
{

namespace
{

/** Shortest exact decimal form, for sweep-point labels. */
std::string
numStr(double v)
{
    return Json::numberToString(v);
}

/** The policy lineup valid for platform (Chapter 5) scenarios. */
std::vector<std::string>
platformPolicyNames()
{
    std::vector<std::string> names = ch5PolicyNames();
    names.insert(names.begin(), "No-limit");
    return names;
}

[[noreturn]] void
specError(const ScenarioSpec &spec, const std::string &what)
{
    std::string where =
        spec.name.empty() ? "scenario" : "scenario '" + spec.name + "'";
    fatal(where + ": " + what);
}

/** Reject members we do not understand — typos fail loudly. */
void
checkMembers(const Json &obj, const std::string &where,
             const std::vector<std::string> &allowed)
{
    for (const auto &[key, v] : obj.asObject()) {
        bool known = false;
        for (const auto &a : allowed)
            known |= (a == key);
        if (!known) {
            fatal("scenario: unknown member '" + key + "' in " + where +
                  " (valid: " + joinNames(allowed) + ")");
        }
    }
}

double
memberNumber(const Json &obj, const std::string &key)
{
    const Json &v = obj.at(key);
    if (!v.isNumber())
        fatal("scenario: member '" + key + "' must be a number");
    return v.asNumber();
}

int
memberInt(const Json &obj, const std::string &key)
{
    double v = memberNumber(obj, key);
    if (v != std::floor(v))
        fatal("scenario: member '" + key + "' must be an integer");
    return static_cast<int>(v);
}

std::string
memberString(const Json &obj, const std::string &key)
{
    const Json &v = obj.at(key);
    if (!v.isString())
        fatal("scenario: member '" + key + "' must be a string");
    return v.asString();
}

std::vector<std::string>
stringList(const Json &v, const std::string &key)
{
    if (!v.isArray())
        fatal("scenario: member '" + key + "' must be an array of strings");
    std::vector<std::string> out;
    for (const Json &e : v.asArray()) {
        if (!e.isString())
            fatal("scenario: member '" + key + "' must contain strings");
        out.push_back(e.asString());
    }
    return out;
}

std::vector<double>
numberList(const Json &v, const std::string &key)
{
    if (!v.isArray())
        fatal("scenario: member '" + key + "' must be an array of numbers");
    std::vector<double> out;
    for (const Json &e : v.asArray()) {
        if (!e.isNumber())
            fatal("scenario: member '" + key + "' must contain numbers");
        out.push_back(e.asNumber());
    }
    return out;
}

Json
toJsonList(const std::vector<std::string> &v)
{
    Json a = Json::array();
    for (const auto &s : v)
        a.push(s);
    return a;
}

Json
toJsonList(const std::vector<double> &v)
{
    Json a = Json::array();
    for (double x : v)
        a.push(x);
    return a;
}

Json
traceJson(const TimeSeries &t)
{
    Json j = Json::object();
    j.set("period_s", t.period());
    Json vals = Json::array();
    for (double v : t.values())
        vals.push(v);
    j.set("values", std::move(vals));
    return j;
}

} // namespace

std::size_t
LoweredScenario::totalRuns() const
{
    std::size_t n = 0;
    for (const auto &p : points)
        n += p.runs.size();
    return n;
}

void
ScenarioSpec::validate() const
{
    (void)lower(); // lowering resolves every name and checks the axes
}

LoweredScenario
ScenarioSpec::lower() const
{
    if (workloads.empty())
        specError(*this, "no workloads given");
    if (policies.empty())
        specError(*this, "no policies given");

    LoweredScenario out;
    out.workloads = workloads;
    out.policies = policies;

    std::vector<Workload> ws;
    ws.reserve(workloads.size());
    for (const auto &n : workloads)
        ws.push_back(workloadByName(n));

    const bool onPlatform = !platform.empty();
    std::optional<Platform> plat;
    if (onPlatform) {
        plat = platformByName(platform);
        if (!sweepCooling.empty()) {
            specError(*this, "platform scenarios fix the cooling setup; "
                             "remove the cooling sweep");
        }
        if (cooling != ScenarioSpec{}.cooling ||
            ambient != ScenarioSpec{}.ambient) {
            specError(*this,
                      "platform scenarios fix cooling and ambient; remove "
                      "those members");
        }
        const auto valid = platformPolicyNames();
        for (const auto &p : policies) {
            bool known = false;
            for (const auto &v : valid)
                known |= (v == p);
            if (!known) {
                specError(*this, "unknown platform policy '" + p +
                                 "' (valid: " + joinNames(valid) + ")");
            }
        }
    } else {
        // Resolving the base cooling/ambient validates both names even
        // when a sweep replaces them below.
        (void)ambientByName(ambient, coolingByName(cooling));
        const auto &reg = PolicyRegistry::instance();
        for (const auto &p : policies) {
            if (!reg.contains(p)) {
                specError(*this, "unknown policy '" + p + "' (valid: " +
                                 joinNames(reg.names()) + ")");
            }
        }
    }

    for (int c : sweepCopies)
        if (c < 1)
            specError(*this, "copies_per_app sweep values must be >= 1");
    if (copiesPerApp && *copiesPerApp < 1)
        specError(*this, "copies_per_app must be >= 1");

    // Each axis contributes its values, or one "keep the base" slot.
    const std::vector<std::string> coolAxis =
        sweepCooling.empty() ? std::vector<std::string>{""} : sweepCooling;
    const std::vector<double> inletAxis =
        sweepTInlet.empty() ? std::vector<double>{NAN} : sweepTInlet;
    const std::vector<int> copyAxis =
        sweepCopies.empty() ? std::vector<int>{0} : sweepCopies;
    const std::vector<double> noiseAxis = sweepSensorNoise.empty()
                                              ? std::vector<double>{NAN}
                                              : sweepSensorNoise;

    for (const std::string &coolName : coolAxis) {
        for (double inlet : inletAxis) {
            for (int copies : copyAxis) {
                for (double noise : noiseAxis) {
                    LoweredScenario::Point pt;

                    std::vector<std::string> parts;
                    if (!coolName.empty())
                        parts.push_back("cooling=" + coolName);
                    if (!std::isnan(inlet))
                        parts.push_back("inlet=" + numStr(inlet));
                    if (copies > 0) {
                        parts.push_back("copies=" +
                                        std::to_string(copies));
                    }
                    if (!std::isnan(noise))
                        parts.push_back("noise=" + numStr(noise));
                    if (parts.empty()) {
                        pt.label = "base";
                    } else {
                        for (const auto &part : parts) {
                            if (!pt.label.empty())
                                pt.label += ",";
                            pt.label += part;
                        }
                    }

                    SimConfig cfg;
                    if (onPlatform) {
                        cfg = plat->sim;
                    } else {
                        cfg = makeCh4Config(
                            coolingByName(coolName.empty() ? cooling
                                                           : coolName),
                            ambient == "integrated");
                    }

                    // Spec-level overrides, then sweep coordinates
                    // (an axis supersedes the scalar member).
                    if (tInlet)
                        cfg.ambient.tInlet = *tInlet;
                    if (copiesPerApp)
                        cfg.copiesPerApp = *copiesPerApp;
                    if (instrScale)
                        cfg.instrScale = *instrScale;
                    if (maxSimTime)
                        cfg.maxSimTime = *maxSimTime;
                    if (dtmInterval)
                        cfg.dtmInterval = *dtmInterval;
                    if (sensorNoiseSigma)
                        cfg.sensorNoiseSigma = *sensorNoiseSigma;
                    if (sensorQuant)
                        cfg.sensorQuant = *sensorQuant;
                    if (sensorSeed)
                        cfg.sensorSeed = *sensorSeed;
                    if (!std::isnan(inlet))
                        cfg.ambient.tInlet = inlet;
                    if (copies > 0)
                        cfg.copiesPerApp = copies;
                    if (!std::isnan(noise))
                        cfg.sensorNoiseSigma = noise;

                    pt.cfg = cfg;
                    pt.runs.reserve(ws.size() * policies.size());
                    if (onPlatform) {
                        Platform p = *plat;
                        p.sim = cfg;
                        for (const Workload &w : ws)
                            for (const auto &pol : policies)
                                pt.runs.push_back(ch5EngineRun(p, w, pol));
                    } else {
                        for (const Workload &w : ws)
                            for (const auto &pol : policies)
                                pt.runs.push_back({cfg, w, pol, {}});
                    }
                    out.points.push_back(std::move(pt));
                }
            }
        }
    }
    return out;
}

Json
ScenarioSpec::toJson() const
{
    Json j = Json::object();
    j.set("name", name);
    if (!description.empty())
        j.set("description", description);
    if (!platform.empty())
        j.set("platform", platform);

    Json cfg = Json::object();
    if (platform.empty()) {
        cfg.set("cooling", cooling);
        cfg.set("ambient", ambient);
    }
    if (tInlet)
        cfg.set("t_inlet", *tInlet);
    if (copiesPerApp)
        cfg.set("copies_per_app", *copiesPerApp);
    if (instrScale)
        cfg.set("instr_scale", *instrScale);
    if (maxSimTime)
        cfg.set("max_sim_time", *maxSimTime);
    if (dtmInterval)
        cfg.set("dtm_interval", *dtmInterval);
    if (sensorNoiseSigma)
        cfg.set("sensor_noise_sigma", *sensorNoiseSigma);
    if (sensorQuant)
        cfg.set("sensor_quant", *sensorQuant);
    if (sensorSeed)
        cfg.set("sensor_seed", static_cast<double>(*sensorSeed));
    if (!cfg.asObject().empty())
        j.set("config", std::move(cfg));

    j.set("workloads", toJsonList(workloads));
    j.set("policies", toJsonList(policies));

    Json sweep = Json::object();
    if (!sweepCooling.empty())
        sweep.set("cooling", toJsonList(sweepCooling));
    if (!sweepTInlet.empty())
        sweep.set("t_inlet", toJsonList(sweepTInlet));
    if (!sweepCopies.empty()) {
        Json a = Json::array();
        for (int c : sweepCopies)
            a.push(c);
        sweep.set("copies_per_app", std::move(a));
    }
    if (!sweepSensorNoise.empty())
        sweep.set("sensor_noise_sigma", toJsonList(sweepSensorNoise));
    if (!sweep.asObject().empty())
        j.set("sweep", std::move(sweep));

    return j;
}

ScenarioSpec
ScenarioSpec::fromJson(const Json &j)
{
    if (!j.isObject())
        fatal("scenario: document must be a JSON object");
    checkMembers(j, "the scenario",
                 {"name", "description", "platform", "config", "workloads",
                  "policies", "sweep"});

    ScenarioSpec s;
    if (j.find("name"))
        s.name = memberString(j, "name");
    if (j.find("description"))
        s.description = memberString(j, "description");
    if (j.find("platform"))
        s.platform = memberString(j, "platform");

    if (const Json *cfg = j.find("config")) {
        if (!cfg->isObject())
            fatal("scenario: 'config' must be an object");
        checkMembers(*cfg, "'config'",
                     {"cooling", "ambient", "t_inlet", "copies_per_app",
                      "instr_scale", "max_sim_time", "dtm_interval",
                      "sensor_noise_sigma", "sensor_quant", "sensor_seed"});
        if (cfg->find("cooling"))
            s.cooling = memberString(*cfg, "cooling");
        if (cfg->find("ambient"))
            s.ambient = memberString(*cfg, "ambient");
        if (cfg->find("t_inlet"))
            s.tInlet = memberNumber(*cfg, "t_inlet");
        if (cfg->find("copies_per_app"))
            s.copiesPerApp = memberInt(*cfg, "copies_per_app");
        if (cfg->find("instr_scale"))
            s.instrScale = memberNumber(*cfg, "instr_scale");
        if (cfg->find("max_sim_time"))
            s.maxSimTime = memberNumber(*cfg, "max_sim_time");
        if (cfg->find("dtm_interval"))
            s.dtmInterval = memberNumber(*cfg, "dtm_interval");
        if (cfg->find("sensor_noise_sigma"))
            s.sensorNoiseSigma = memberNumber(*cfg, "sensor_noise_sigma");
        if (cfg->find("sensor_quant"))
            s.sensorQuant = memberNumber(*cfg, "sensor_quant");
        if (cfg->find("sensor_seed")) {
            double v = memberNumber(*cfg, "sensor_seed");
            if (v != std::floor(v) || v < 0.0)
                fatal("scenario: 'sensor_seed' must be a non-negative "
                      "integer");
            s.sensorSeed = static_cast<std::uint64_t>(v);
        }
    }

    if (j.find("workloads"))
        s.workloads = stringList(j.at("workloads"), "workloads");
    if (j.find("policies"))
        s.policies = stringList(j.at("policies"), "policies");

    if (const Json *sweep = j.find("sweep")) {
        if (!sweep->isObject())
            fatal("scenario: 'sweep' must be an object");
        checkMembers(*sweep, "'sweep'",
                     {"cooling", "t_inlet", "copies_per_app",
                      "sensor_noise_sigma"});
        if (sweep->find("cooling")) {
            s.sweepCooling =
                stringList(sweep->at("cooling"), "sweep.cooling");
        }
        if (sweep->find("t_inlet")) {
            s.sweepTInlet =
                numberList(sweep->at("t_inlet"), "sweep.t_inlet");
        }
        if (sweep->find("copies_per_app")) {
            for (double v : numberList(sweep->at("copies_per_app"),
                                       "sweep.copies_per_app")) {
                if (v != std::floor(v)) {
                    fatal("scenario: sweep.copies_per_app must contain "
                          "integers");
                }
                s.sweepCopies.push_back(static_cast<int>(v));
            }
        }
        if (sweep->find("sensor_noise_sigma")) {
            s.sweepSensorNoise = numberList(
                sweep->at("sensor_noise_sigma"), "sweep.sensor_noise_sigma");
        }
    }
    return s;
}

ScenarioSpec
ScenarioSpec::load(const std::string &path)
{
    return fromJson(Json::load(path));
}

void
ScenarioSpec::save(const std::string &path) const
{
    toJson().save(path);
}

ScenarioResults
runScenario(const ScenarioSpec &spec, ExperimentEngine &engine)
{
    LoweredScenario low = spec.lower();

    std::vector<ExperimentEngine::Run> all;
    all.reserve(low.totalRuns());
    for (const auto &pt : low.points)
        for (const auto &r : pt.runs)
            all.push_back(r);

    std::vector<SimResult> results = engine.run(all);

    ScenarioResults out;
    out.scenario = spec.name;
    std::size_t k = 0;
    for (const auto &pt : low.points) {
        ScenarioResults::Point rp;
        rp.label = pt.label;
        for (const auto &w : low.workloads)
            for (const auto &p : low.policies)
                rp.suite[w][p] = std::move(results[k++]);
        out.points.push_back(std::move(rp));
    }
    return out;
}

ScenarioResults
runScenario(const ScenarioSpec &spec)
{
    ExperimentEngine engine;
    return runScenario(spec, engine);
}

Json
toJson(const SimResult &r, bool traces)
{
    Json j = Json::object();
    j.set("workload", r.workload);
    j.set("policy", r.policy);
    j.set("completed", r.completed);
    j.set("running_time_s", r.runningTime);
    j.set("total_instr", r.totalInstr);
    j.set("read_gb", r.totalReadGB);
    j.set("write_gb", r.totalWriteGB);
    j.set("l2_misses", r.totalL2Misses);
    j.set("mem_energy_j", r.memEnergy);
    j.set("cpu_energy_j", r.cpuEnergy);
    j.set("max_amb_c", r.maxAmb);
    j.set("max_dram_c", r.maxDram);
    j.set("time_above_amb_tdp_s", r.timeAboveAmbTdp);
    j.set("time_above_dram_tdp_s", r.timeAboveDramTdp);
    if (traces) {
        Json t = Json::object();
        t.set("amb_c", traceJson(r.ambTrace));
        t.set("dram_c", traceJson(r.dramTrace));
        t.set("inlet_c", traceJson(r.inletTrace));
        t.set("cpu_power_w", traceJson(r.cpuPowerTrace));
        t.set("bw_gbps", traceJson(r.bwTrace));
        j.set("traces", std::move(t));
    }
    return j;
}

Json
toJson(const SuiteResults &r, bool traces)
{
    Json j = Json::object();
    for (const auto &[w, per_policy] : r) {
        Json pw = Json::object();
        for (const auto &[p, res] : per_policy)
            pw.set(p, toJson(res, traces));
        j.set(w, std::move(pw));
    }
    return j;
}

Json
toJson(const ScenarioResults &r, bool traces)
{
    Json j = Json::object();
    j.set("scenario", r.scenario);
    Json pts = Json::array();
    for (const auto &pt : r.points) {
        Json p = Json::object();
        p.set("label", pt.label);
        p.set("results", toJson(pt.suite, traces));
        pts.push(std::move(p));
    }
    j.set("points", std::move(pts));
    return j;
}

} // namespace memtherm
