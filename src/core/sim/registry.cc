#include "core/sim/registry.hh"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "core/dtm/basic_policies.hh"
#include "core/dtm/pid_policies.hh"
#include "core/dtm/remap_policy.hh"
#include "testbed/platform.hh"
#include "workloads/spec_catalog.hh"

namespace memtherm
{

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const auto &n : names) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

// --- policies ---------------------------------------------------------------

namespace
{

/** The ladder the leveled Chapter 4 schemes build on (Table 4.3 default). */
EmergencyLevels
ladderOf(const PolicyBuildContext &ctx)
{
    return ctx.emergencyLevels ? *ctx.emergencyLevels : ch4EmergencyLevels();
}

} // namespace

PolicyRegistry::PolicyRegistry()
{
    // The Chapter 4 lineup (Section 4.4). DTM-TS has only two control
    // decisions and does not benefit from PID, so it has no "+PID"
    // variant (Section 4.4.2). The leveled schemes honor the context's
    // emergency ladder; DTM-TS and the PID controllers regulate against
    // ThermalLimits instead.
    add("No-limit", [](const PolicyBuildContext &) {
        return std::make_unique<NoLimitPolicy>();
    });
    add("DTM-TS", [](const PolicyBuildContext &) {
        ThermalLimits lim;
        return std::make_unique<TsPolicy>(lim.ambTdp, lim.ambTrp,
                                          lim.dramTdp, lim.dramTrp);
    });
    add("DTM-BW", [](const PolicyBuildContext &ctx) {
        return std::make_unique<LeveledPolicy>(makeCh4BwPolicy(ladderOf(ctx)));
    });
    add("DTM-ACG", [](const PolicyBuildContext &ctx) {
        return std::make_unique<LeveledPolicy>(
            makeCh4AcgPolicy(ladderOf(ctx)));
    });
    add("DTM-CDVFS", [](const PolicyBuildContext &ctx) {
        return std::make_unique<LeveledPolicy>(
            makeCh4CdvfsPolicy(ladderOf(ctx)));
    });
    add("DTM-BW+PID", [](const PolicyBuildContext &ctx) {
        return std::make_unique<PidPolicy>(PidActuator::Bandwidth,
                                           ambPidParams(), dramPidParams(),
                                           ThermalLimits{}, ctx.dtmInterval);
    });
    add("DTM-ACG+PID", [](const PolicyBuildContext &ctx) {
        return std::make_unique<PidPolicy>(PidActuator::CoreGating,
                                           ambPidParams(), dramPidParams(),
                                           ThermalLimits{}, ctx.dtmInterval);
    });
    add("DTM-CDVFS+PID", [](const PolicyBuildContext &ctx) {
        return std::make_unique<PidPolicy>(PidActuator::Dvfs,
                                           ambPidParams(), dramPidParams(),
                                           ThermalLimits{}, ctx.dtmInterval);
    });
    // The traffic-remapping family (core/dtm/remap_policy.hh): policies
    // that redistribute per-DIMM traffic share instead of scaling
    // activity. They regulate against ThermalLimits like DTM-TS.
    auto remapCfgOf = [](const PolicyBuildContext &ctx) {
        RemapConfig rc;
        rc.interval = ctx.remapInterval;
        rc.hysteresis = ctx.remapHysteresis;
        rc.initialShares = ctx.trafficShares;
        return rc;
    };
    add("DTM-remap", [remapCfgOf](const PolicyBuildContext &ctx) {
        return std::make_unique<RemapPolicy>(RemapPolicy::Band::Greedy,
                                             remapCfgOf(ctx));
    });
    add("DTM-remap-hyst", [remapCfgOf](const PolicyBuildContext &ctx) {
        return std::make_unique<RemapPolicy>(RemapPolicy::Band::Hysteresis,
                                             remapCfgOf(ctx));
    });
    add("DTM-TS+remap", [remapCfgOf](const PolicyBuildContext &ctx) {
        ThermalLimits lim;
        return std::make_unique<TsRemapPolicy>(
            TsPolicy(lim.ambTdp, lim.ambTrp, lim.dramTdp, lim.dramTrp),
            remapCfgOf(ctx));
    });
}

PolicyRegistry &
PolicyRegistry::instance()
{
    static PolicyRegistry r;
    return r;
}

void
PolicyRegistry::add(const std::string &name, Factory factory)
{
    panicIfNot(static_cast<bool>(factory),
               "PolicyRegistry: empty factory for '" + name + "'");
    std::lock_guard lock(mtx);
    for (auto &[n, f] : entries) {
        if (n == name) {
            f = std::move(factory);
            return;
        }
    }
    entries.emplace_back(name, std::move(factory));
}

std::vector<std::string>
PolicyRegistry::names() const
{
    std::lock_guard lock(mtx);
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const auto &[n, f] : entries)
        out.push_back(n);
    return out;
}

bool
PolicyRegistry::contains(const std::string &name) const
{
    std::lock_guard lock(mtx);
    for (const auto &[n, f] : entries)
        if (n == name)
            return true;
    return false;
}

std::unique_ptr<DtmPolicy>
PolicyRegistry::tryMake(const std::string &name,
                        const PolicyBuildContext &ctx,
                        std::string *error) const
{
    Factory factory;
    {
        std::lock_guard lock(mtx);
        for (const auto &[n, f] : entries) {
            if (n == name) {
                factory = f;
                break;
            }
        }
    }
    if (!factory) {
        if (error) {
            *error = "unknown policy '" + name +
                     "' (valid: " + joinNames(names()) + ")";
        }
        return nullptr;
    }
    return factory(ctx);
}

std::unique_ptr<DtmPolicy>
PolicyRegistry::tryMake(const std::string &name, Seconds dtm_interval,
                        std::string *error) const
{
    return tryMake(name, PolicyBuildContext{dtm_interval, std::nullopt},
                   error);
}

std::unique_ptr<DtmPolicy>
PolicyRegistry::make(const std::string &name,
                     const PolicyBuildContext &ctx) const
{
    std::string error;
    auto p = tryMake(name, ctx, &error);
    if (!p)
        fatal("PolicyRegistry: " + error);
    return p;
}

std::unique_ptr<DtmPolicy>
PolicyRegistry::make(const std::string &name, Seconds dtm_interval) const
{
    return make(name, PolicyBuildContext{dtm_interval, std::nullopt});
}

// --- DVFS tables ------------------------------------------------------------

DvfsRegistry::DvfsRegistry()
{
    add("simulated_cmp", simulatedCmpDvfs());
    add("xeon5160", xeon5160Dvfs());
}

DvfsRegistry &
DvfsRegistry::instance()
{
    static DvfsRegistry r;
    return r;
}

void
DvfsRegistry::add(const std::string &name, DvfsTable table)
{
    std::lock_guard lock(mtx);
    for (auto &[n, t] : entries) {
        if (n == name) {
            t = std::move(table);
            return;
        }
    }
    entries.emplace_back(name, std::move(table));
}

std::vector<std::string>
DvfsRegistry::names() const
{
    std::lock_guard lock(mtx);
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const auto &[n, t] : entries)
        out.push_back(n);
    return out;
}

bool
DvfsRegistry::contains(const std::string &name) const
{
    std::lock_guard lock(mtx);
    for (const auto &[n, t] : entries)
        if (n == name)
            return true;
    return false;
}

std::optional<DvfsTable>
DvfsRegistry::tryGet(const std::string &name, std::string *error) const
{
    {
        std::lock_guard lock(mtx);
        for (const auto &[n, t] : entries)
            if (n == name)
                return t;
    }
    if (error) {
        *error = "unknown DVFS table '" + name +
                 "' (valid: " + joinNames(names()) + ")";
    }
    return std::nullopt;
}

DvfsTable
DvfsRegistry::byName(const std::string &name) const
{
    std::string error;
    auto t = tryGet(name, &error);
    if (!t)
        fatal("DvfsRegistry: " + error);
    return *t;
}

// --- refresh models ---------------------------------------------------------

RefreshRegistry::RefreshRegistry()
{
    add("none", RefreshModel{});
    add("ddr2_2x", ddr2DoubleRefreshModel());
    add("aldram", aldramRefreshModel());
}

RefreshRegistry &
RefreshRegistry::instance()
{
    static RefreshRegistry r;
    return r;
}

void
RefreshRegistry::add(const std::string &name, RefreshModel model)
{
    std::lock_guard lock(mtx);
    for (auto &[n, m] : entries) {
        if (n == name) {
            m = std::move(model);
            return;
        }
    }
    entries.emplace_back(name, std::move(model));
}

std::vector<std::string>
RefreshRegistry::names() const
{
    std::lock_guard lock(mtx);
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const auto &[n, m] : entries)
        out.push_back(n);
    return out;
}

bool
RefreshRegistry::contains(const std::string &name) const
{
    std::lock_guard lock(mtx);
    for (const auto &[n, m] : entries)
        if (n == name)
            return true;
    return false;
}

std::optional<RefreshModel>
RefreshRegistry::tryGet(const std::string &name, std::string *error) const
{
    {
        std::lock_guard lock(mtx);
        for (const auto &[n, m] : entries)
            if (n == name)
                return m;
    }
    if (error) {
        *error = "unknown refresh model '" + name +
                 "' (valid: " + joinNames(names()) + ")";
    }
    return std::nullopt;
}

RefreshModel
RefreshRegistry::byName(const std::string &name) const
{
    std::string error;
    auto m = tryGet(name, &error);
    if (!m)
        fatal("RefreshRegistry: " + error);
    return *m;
}

std::vector<std::string>
refreshModelNames()
{
    return RefreshRegistry::instance().names();
}

std::optional<RefreshModel>
tryRefreshModel(const std::string &name, std::string *error)
{
    return RefreshRegistry::instance().tryGet(name, error);
}

RefreshModel
refreshModelByName(const std::string &name)
{
    return RefreshRegistry::instance().byName(name);
}

// --- thermal models ---------------------------------------------------------

std::vector<std::string>
thermalModelNames()
{
    return {"lumped", "bank_grid"};
}

std::optional<ThermalModelConfig>
tryThermalModel(const std::string &name)
{
    if (name == "lumped")
        return ThermalModelConfig{};
    if (name == "bank_grid")
        return ThermalModelConfig{BankGridConfig{}};
    return std::nullopt;
}

ThermalModelConfig
thermalModelByName(const std::string &name)
{
    auto m = tryThermalModel(name);
    if (!m) {
        fatal("unknown thermal model '" + name +
              "' (valid: " + joinNames(thermalModelNames()) + ")");
    }
    return *m;
}

// --- cooling ----------------------------------------------------------------

namespace
{

const std::vector<std::pair<std::string, CoolingConfig>> &
coolingCatalog()
{
    static const std::vector<std::pair<std::string, CoolingConfig>> cat =
        [] {
            std::vector<std::pair<std::string, CoolingConfig>> v;
            for (auto s : {HeatSpreader::AOHS, HeatSpreader::FDHS}) {
                for (auto vel : {AirVelocity::MPS_1_0, AirVelocity::MPS_1_5,
                                 AirVelocity::MPS_3_0}) {
                    CoolingConfig c = coolingConfig(s, vel);
                    v.emplace_back(c.name(), c);
                }
            }
            return v;
        }();
    return cat;
}

} // namespace

std::vector<std::string>
coolingNames()
{
    std::vector<std::string> out;
    for (const auto &[n, c] : coolingCatalog())
        out.push_back(n);
    return out;
}

std::optional<CoolingConfig>
tryCooling(const std::string &name)
{
    for (const auto &[n, c] : coolingCatalog())
        if (n == name)
            return c;
    return std::nullopt;
}

CoolingConfig
coolingByName(const std::string &name)
{
    auto c = tryCooling(name);
    if (!c) {
        fatal("unknown cooling '" + name +
              "' (valid: " + joinNames(coolingNames()) + ")");
    }
    return *c;
}

// --- ambient ----------------------------------------------------------------

std::vector<std::string>
ambientNames()
{
    return {"isolated", "integrated"};
}

std::optional<AmbientParams>
tryAmbient(const std::string &name, const CoolingConfig &cooling)
{
    if (name == "isolated")
        return isolatedAmbient(cooling);
    if (name == "integrated")
        return integratedAmbient(cooling);
    return std::nullopt;
}

AmbientParams
ambientByName(const std::string &name, const CoolingConfig &cooling)
{
    auto p = tryAmbient(name, cooling);
    if (!p) {
        fatal("unknown ambient model '" + name +
              "' (valid: " + joinNames(ambientNames()) + ")");
    }
    return *p;
}

// --- workloads --------------------------------------------------------------

std::vector<std::string>
workloadNames()
{
    return {"W1", "W2", "W3", "W4", "W5", "W6", "W7", "W8", "W11", "W12"};
}

std::optional<Workload>
tryWorkload(const std::string &name)
{
    for (const auto &n : workloadNames())
        if (n == name)
            return workloadMix(name);

    // Homogeneous batches: "<app>x<n>", e.g. "swimx4".
    auto xpos = name.rfind('x');
    if (xpos != std::string::npos && xpos > 0 && xpos + 1 < name.size()) {
        const std::string app = name.substr(0, xpos);
        const std::string count = name.substr(xpos + 1);
        char *end = nullptr;
        errno = 0;
        long n = std::strtol(count.c_str(), &end, 10);
        if (end && *end == '\0' && errno == 0 && n >= 1 && n <= INT_MAX) {
            for (const AppDescriptor &d : SpecCatalog::instance().all())
                if (d.name == app)
                    return homogeneous(app, static_cast<int>(n));
        }
    }
    return std::nullopt;
}

Workload
workloadByName(const std::string &name)
{
    auto w = tryWorkload(name);
    if (!w) {
        fatal("unknown workload '" + name +
              "' (valid: " + joinNames(workloadNames()) +
              ", or \"<app>x<n>\" for a homogeneous batch, e.g. swimx4)");
    }
    return *w;
}

// --- platforms --------------------------------------------------------------

std::vector<std::string>
platformNames()
{
    return {"PE1950", "SR1500AL"};
}

std::optional<Platform>
tryPlatform(const std::string &name)
{
    if (name == "PE1950")
        return pe1950();
    if (name == "SR1500AL")
        return sr1500al();
    return std::nullopt;
}

Platform
platformByName(const std::string &name)
{
    auto p = tryPlatform(name);
    if (!p) {
        fatal("unknown platform '" + name +
              "' (valid: " + joinNames(platformNames()) + ")");
    }
    return *p;
}

// --- memory organizations ---------------------------------------------------

namespace
{

const std::vector<std::pair<std::string, MemoryOrgConfig>> &
memoryOrgCatalog()
{
    // "ch4_4x4" is the Table 4.1 platform; the rest vary channel width
    // and chain depth around it (the organization study of Section 3.4:
    // fewer channels concentrate traffic and heat per DIMM, deeper
    // chains steepen the per-DIMM bypass gradient).
    static const std::vector<std::pair<std::string, MemoryOrgConfig>> cat = {
        {"ch4_4x4", {4, 4}}, {"1x4", {1, 4}}, {"2x2", {2, 2}},
        {"2x4", {2, 4}},     {"4x2", {4, 2}}, {"4x8", {4, 8}},
        {"8x2", {8, 2}},     {"8x4", {8, 4}},
    };
    return cat;
}

} // namespace

std::vector<std::string>
memoryOrgNames()
{
    std::vector<std::string> out;
    for (const auto &[n, o] : memoryOrgCatalog())
        out.push_back(n);
    return out;
}

std::optional<MemoryOrgConfig>
tryMemoryOrg(const std::string &name)
{
    for (const auto &[n, o] : memoryOrgCatalog())
        if (n == name)
            return o;
    return std::nullopt;
}

MemoryOrgConfig
memoryOrgByName(const std::string &name)
{
    auto o = tryMemoryOrg(name);
    if (!o) {
        fatal("unknown memory organization '" + name +
              "' (valid: " + joinNames(memoryOrgNames()) + ")");
    }
    return *o;
}

// --- traffic shapes ---------------------------------------------------------

std::vector<std::string>
trafficShapeNames()
{
    return {"uniform", "front_heavy", "back_heavy", "hot_dimm0",
            "linear_taper"};
}

std::optional<std::vector<double>>
tryTrafficShape(const std::string &name, int n_dimms)
{
    panicIfNot(n_dimms >= 1, "tryTrafficShape: need >= 1 DIMM");
    const std::size_t n = static_cast<std::size_t>(n_dimms);
    std::vector<double> w(n);
    if (name == "uniform") {
        // Each entry is exactly 1/n — the same value the traffic
        // decomposition uses for an empty share vector, which is what
        // makes an explicit "uniform" run bit-identical to an unset one.
        for (double &x : w)
            x = 1.0 / n_dimms;
        return w;
    }
    if (name == "front_heavy" || name == "back_heavy") {
        // Geometric halving: each DIMM sees half its hotter neighbor's
        // local traffic. 2^-i is exact in binary, so only the
        // normalization divides.
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            w[i] = std::ldexp(1.0, -static_cast<int>(i));
            sum += w[i];
        }
        for (double &x : w)
            x /= sum;
        if (name == "back_heavy")
            std::reverse(w.begin(), w.end());
        return w;
    }
    if (name == "hot_dimm0") {
        if (n == 1) {
            w[0] = 1.0;
            return w;
        }
        w[0] = 0.5;
        for (std::size_t i = 1; i < n; ++i)
            w[i] = 0.5 / static_cast<double>(n - 1);
        return w;
    }
    if (name == "linear_taper") {
        const double sum = static_cast<double>(n) * (n + 1) / 2.0;
        for (std::size_t i = 0; i < n; ++i)
            w[i] = static_cast<double>(n - i) / sum;
        return w;
    }
    return std::nullopt;
}

std::vector<double>
trafficShapeByName(const std::string &name, int n_dimms)
{
    auto w = tryTrafficShape(name, n_dimms);
    if (!w) {
        fatal("unknown traffic shape '" + name +
              "' (valid: " + joinNames(trafficShapeNames()) + ")");
    }
    return *w;
}

// --- emergency ladders ------------------------------------------------------

namespace
{

/**
 * A Table 5.1 ladder: the platform's AMB boundaries with the DRAM
 * boundaries parked out of reach ("the memory hot spots are AMBs").
 */
EmergencyLevels
platformLadder(const std::vector<Celsius> &amb_bounds)
{
    return EmergencyLevels(amb_bounds, {200.0, 210.0, 220.0, 230.0});
}

} // namespace

std::vector<std::string>
emergencyLevelNames()
{
    return {"ch4", "pe1950", "sr1500al", "sr1500al_tdp90"};
}

std::optional<EmergencyLevels>
tryEmergencyLevels(const std::string &name)
{
    if (name == "ch4")
        return ch4EmergencyLevels();
    if (name == "pe1950")
        return platformLadder(pe1950().ambBounds);
    if (name == "sr1500al")
        return platformLadder(sr1500al().ambBounds);
    if (name == "sr1500al_tdp90")
        return platformLadder(sr1500al(36.0, 90.0).ambBounds);
    return std::nullopt;
}

EmergencyLevels
emergencyLevelsByName(const std::string &name)
{
    auto l = tryEmergencyLevels(name);
    if (!l) {
        fatal("unknown emergency ladder '" + name +
              "' (valid: " + joinNames(emergencyLevelNames()) + ")");
    }
    return *l;
}

} // namespace memtherm
