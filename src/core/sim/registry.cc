#include "core/sim/registry.hh"

#include <cerrno>
#include <climits>
#include <cstdlib>

#include "common/logging.hh"
#include "core/dtm/basic_policies.hh"
#include "core/dtm/pid_policies.hh"
#include "testbed/platform.hh"
#include "workloads/spec_catalog.hh"

namespace memtherm
{

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const auto &n : names) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

// --- policies ---------------------------------------------------------------

PolicyRegistry::PolicyRegistry()
{
    // The Chapter 4 lineup (Section 4.4). DTM-TS has only two control
    // decisions and does not benefit from PID, so it has no "+PID"
    // variant (Section 4.4.2).
    add("No-limit",
        [](Seconds) { return std::make_unique<NoLimitPolicy>(); });
    add("DTM-TS", [](Seconds) {
        ThermalLimits lim;
        return std::make_unique<TsPolicy>(lim.ambTdp, lim.ambTrp,
                                          lim.dramTdp, lim.dramTrp);
    });
    add("DTM-BW", [](Seconds) {
        return std::make_unique<LeveledPolicy>(makeCh4BwPolicy());
    });
    add("DTM-ACG", [](Seconds) {
        return std::make_unique<LeveledPolicy>(makeCh4AcgPolicy());
    });
    add("DTM-CDVFS", [](Seconds) {
        return std::make_unique<LeveledPolicy>(makeCh4CdvfsPolicy());
    });
    add("DTM-BW+PID", [](Seconds dtm_interval) {
        return std::make_unique<PidPolicy>(PidActuator::Bandwidth,
                                           ambPidParams(), dramPidParams(),
                                           ThermalLimits{}, dtm_interval);
    });
    add("DTM-ACG+PID", [](Seconds dtm_interval) {
        return std::make_unique<PidPolicy>(PidActuator::CoreGating,
                                           ambPidParams(), dramPidParams(),
                                           ThermalLimits{}, dtm_interval);
    });
    add("DTM-CDVFS+PID", [](Seconds dtm_interval) {
        return std::make_unique<PidPolicy>(PidActuator::Dvfs,
                                           ambPidParams(), dramPidParams(),
                                           ThermalLimits{}, dtm_interval);
    });
}

PolicyRegistry &
PolicyRegistry::instance()
{
    static PolicyRegistry r;
    return r;
}

void
PolicyRegistry::add(const std::string &name, Factory factory)
{
    panicIfNot(static_cast<bool>(factory),
               "PolicyRegistry: empty factory for '" + name + "'");
    std::lock_guard lock(mtx);
    for (auto &[n, f] : entries) {
        if (n == name) {
            f = std::move(factory);
            return;
        }
    }
    entries.emplace_back(name, std::move(factory));
}

std::vector<std::string>
PolicyRegistry::names() const
{
    std::lock_guard lock(mtx);
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const auto &[n, f] : entries)
        out.push_back(n);
    return out;
}

bool
PolicyRegistry::contains(const std::string &name) const
{
    std::lock_guard lock(mtx);
    for (const auto &[n, f] : entries)
        if (n == name)
            return true;
    return false;
}

std::unique_ptr<DtmPolicy>
PolicyRegistry::tryMake(const std::string &name, Seconds dtm_interval,
                        std::string *error) const
{
    Factory factory;
    {
        std::lock_guard lock(mtx);
        for (const auto &[n, f] : entries) {
            if (n == name) {
                factory = f;
                break;
            }
        }
    }
    if (!factory) {
        if (error) {
            *error = "unknown policy '" + name +
                     "' (valid: " + joinNames(names()) + ")";
        }
        return nullptr;
    }
    return factory(dtm_interval);
}

std::unique_ptr<DtmPolicy>
PolicyRegistry::make(const std::string &name, Seconds dtm_interval) const
{
    std::string error;
    auto p = tryMake(name, dtm_interval, &error);
    if (!p)
        fatal("PolicyRegistry: " + error);
    return p;
}

// --- cooling ----------------------------------------------------------------

namespace
{

const std::vector<std::pair<std::string, CoolingConfig>> &
coolingCatalog()
{
    static const std::vector<std::pair<std::string, CoolingConfig>> cat =
        [] {
            std::vector<std::pair<std::string, CoolingConfig>> v;
            for (auto s : {HeatSpreader::AOHS, HeatSpreader::FDHS}) {
                for (auto vel : {AirVelocity::MPS_1_0, AirVelocity::MPS_1_5,
                                 AirVelocity::MPS_3_0}) {
                    CoolingConfig c = coolingConfig(s, vel);
                    v.emplace_back(c.name(), c);
                }
            }
            return v;
        }();
    return cat;
}

} // namespace

std::vector<std::string>
coolingNames()
{
    std::vector<std::string> out;
    for (const auto &[n, c] : coolingCatalog())
        out.push_back(n);
    return out;
}

std::optional<CoolingConfig>
tryCooling(const std::string &name)
{
    for (const auto &[n, c] : coolingCatalog())
        if (n == name)
            return c;
    return std::nullopt;
}

CoolingConfig
coolingByName(const std::string &name)
{
    auto c = tryCooling(name);
    if (!c) {
        fatal("unknown cooling '" + name +
              "' (valid: " + joinNames(coolingNames()) + ")");
    }
    return *c;
}

// --- ambient ----------------------------------------------------------------

std::vector<std::string>
ambientNames()
{
    return {"isolated", "integrated"};
}

std::optional<AmbientParams>
tryAmbient(const std::string &name, const CoolingConfig &cooling)
{
    if (name == "isolated")
        return isolatedAmbient(cooling);
    if (name == "integrated")
        return integratedAmbient(cooling);
    return std::nullopt;
}

AmbientParams
ambientByName(const std::string &name, const CoolingConfig &cooling)
{
    auto p = tryAmbient(name, cooling);
    if (!p) {
        fatal("unknown ambient model '" + name +
              "' (valid: " + joinNames(ambientNames()) + ")");
    }
    return *p;
}

// --- workloads --------------------------------------------------------------

std::vector<std::string>
workloadNames()
{
    return {"W1", "W2", "W3", "W4", "W5", "W6", "W7", "W8", "W11", "W12"};
}

std::optional<Workload>
tryWorkload(const std::string &name)
{
    for (const auto &n : workloadNames())
        if (n == name)
            return workloadMix(name);

    // Homogeneous batches: "<app>x<n>", e.g. "swimx4".
    auto xpos = name.rfind('x');
    if (xpos != std::string::npos && xpos > 0 && xpos + 1 < name.size()) {
        const std::string app = name.substr(0, xpos);
        const std::string count = name.substr(xpos + 1);
        char *end = nullptr;
        errno = 0;
        long n = std::strtol(count.c_str(), &end, 10);
        if (end && *end == '\0' && errno == 0 && n >= 1 && n <= INT_MAX) {
            for (const AppDescriptor &d : SpecCatalog::instance().all())
                if (d.name == app)
                    return homogeneous(app, static_cast<int>(n));
        }
    }
    return std::nullopt;
}

Workload
workloadByName(const std::string &name)
{
    auto w = tryWorkload(name);
    if (!w) {
        fatal("unknown workload '" + name +
              "' (valid: " + joinNames(workloadNames()) +
              ", or \"<app>x<n>\" for a homogeneous batch, e.g. swimx4)");
    }
    return *w;
}

// --- platforms --------------------------------------------------------------

std::vector<std::string>
platformNames()
{
    return {"PE1950", "SR1500AL"};
}

std::optional<Platform>
tryPlatform(const std::string &name)
{
    if (name == "PE1950")
        return pe1950();
    if (name == "SR1500AL")
        return sr1500al();
    return std::nullopt;
}

Platform
platformByName(const std::string &name)
{
    auto p = tryPlatform(name);
    if (!p) {
        fatal("unknown platform '" + name +
              "' (valid: " + joinNames(platformNames()) + ")");
    }
    return *p;
}

} // namespace memtherm
