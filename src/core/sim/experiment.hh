/**
 * @file
 * Experiment drivers shared by the bench harness and tests: policy
 * factories, suite runners, and paper-style normalizations.
 */

#ifndef MEMTHERM_CORE_SIM_EXPERIMENT_HH
#define MEMTHERM_CORE_SIM_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sim/thermal_simulator.hh"

namespace memtherm
{

/**
 * Construct a Chapter 4 policy by display name: "No-limit", "DTM-TS",
 * "DTM-BW", "DTM-ACG", "DTM-CDVFS", each optionally with "+PID"
 * (DTM-TS has only two control decisions and does not benefit from PID;
 * requesting it is a fatal error, matching Section 4.4.2).
 *
 * Convenience wrapper over PolicyRegistry (core/sim/registry.hh); an
 * unknown name throws FatalError listing the valid keys. Use
 * PolicyRegistry::tryMake for an error-returning lookup.
 *
 * @param dtm_interval decision period used by PID controllers' first step
 */
std::unique_ptr<DtmPolicy> makeCh4Policy(const std::string &name,
                                         Seconds dtm_interval = 0.01);

/** The standard Chapter 4 policy lineup of Figs. 4.3/4.4/4.9/4.10. */
std::vector<std::string> ch4PolicyNames(bool with_pid = true);

/**
 * Results of one suite: result[workload][policy].
 */
using SuiteResults = std::map<std::string, std::map<std::string, SimResult>>;

/**
 * Run every (workload, policy-name) pair under one configuration.
 *
 * Thin wrapper over ExperimentEngine (core/sim/engine.hh): runs fan out
 * over a thread pool sized by MEMTHERM_THREADS (default: hardware
 * concurrency), with results bit-identical to serial execution.
 */
SuiteResults runSuite(const SimConfig &cfg,
                      const std::vector<Workload> &workloads,
                      const std::vector<std::string> &policy_names);

/**
 * Normalized metric helper: value(workload,policy) / value(workload,base).
 */
double normalizedTo(const SuiteResults &r, const std::string &workload,
                    const std::string &policy, const std::string &base,
                    double (*metric)(const SimResult &));

/** Metric accessors for normalizedTo(). */
double metricRunningTime(const SimResult &r);
double metricTraffic(const SimResult &r);
double metricMemEnergy(const SimResult &r);
double metricCpuEnergy(const SimResult &r);
double metricTotalEnergy(const SimResult &r);
double metricL2Misses(const SimResult &r);

} // namespace memtherm

#endif // MEMTHERM_CORE_SIM_EXPERIMENT_HH
