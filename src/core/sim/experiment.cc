#include "core/sim/experiment.hh"

#include "common/logging.hh"
#include "core/sim/engine.hh"
#include "core/sim/registry.hh"

namespace memtherm
{

std::unique_ptr<DtmPolicy>
makeCh4Policy(const std::string &name, Seconds dtm_interval)
{
    // The lineup lives in the PolicyRegistry now; an unknown name throws
    // FatalError with a diagnostic that lists every valid key.
    return PolicyRegistry::instance().make(name, dtm_interval);
}

std::vector<std::string>
ch4PolicyNames(bool with_pid)
{
    if (!with_pid)
        return {"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"};
    return {"DTM-TS",  "DTM-BW",    "DTM-BW+PID",    "DTM-ACG",
            "DTM-ACG+PID", "DTM-CDVFS", "DTM-CDVFS+PID"};
}

SuiteResults
runSuite(const SimConfig &cfg, const std::vector<Workload> &workloads,
         const std::vector<std::string> &policy_names)
{
    // Thin wrapper over the parallel engine (thread count from
    // MEMTHERM_THREADS or the hardware); results are bit-identical to
    // the historical serial loop for any thread count.
    ExperimentEngine engine;
    return engine.runSuite(cfg, workloads, policy_names);
}

double
normalizedTo(const SuiteResults &r, const std::string &workload,
             const std::string &policy, const std::string &base,
             double (*metric)(const SimResult &))
{
    const auto &per_policy = r.at(workload);
    double denom = metric(per_policy.at(base));
    panicIfNot(denom > 0.0, "normalizedTo: base metric must be positive");
    return metric(per_policy.at(policy)) / denom;
}

double
metricRunningTime(const SimResult &r)
{
    return r.runningTime;
}

double
metricTraffic(const SimResult &r)
{
    return r.totalTrafficGB();
}

double
metricMemEnergy(const SimResult &r)
{
    return r.memEnergy;
}

double
metricCpuEnergy(const SimResult &r)
{
    return r.cpuEnergy;
}

double
metricTotalEnergy(const SimResult &r)
{
    return r.memEnergy + r.cpuEnergy;
}

double
metricL2Misses(const SimResult &r)
{
    return r.totalL2Misses;
}

} // namespace memtherm
