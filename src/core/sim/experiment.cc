#include "core/sim/experiment.hh"

#include "common/logging.hh"
#include "core/dtm/basic_policies.hh"
#include "core/dtm/pid_policies.hh"
#include "core/sim/engine.hh"

namespace memtherm
{

std::unique_ptr<DtmPolicy>
makeCh4Policy(const std::string &name, Seconds dtm_interval)
{
    ThermalLimits lim;
    if (name == "No-limit")
        return std::make_unique<NoLimitPolicy>();
    if (name == "DTM-TS") {
        return std::make_unique<TsPolicy>(lim.ambTdp, lim.ambTrp,
                                          lim.dramTdp, lim.dramTrp);
    }
    if (name == "DTM-BW")
        return std::make_unique<LeveledPolicy>(makeCh4BwPolicy());
    if (name == "DTM-ACG")
        return std::make_unique<LeveledPolicy>(makeCh4AcgPolicy());
    if (name == "DTM-CDVFS")
        return std::make_unique<LeveledPolicy>(makeCh4CdvfsPolicy());
    if (name == "DTM-BW+PID") {
        return std::make_unique<PidPolicy>(PidActuator::Bandwidth,
                                           ambPidParams(), dramPidParams(),
                                           lim, dtm_interval);
    }
    if (name == "DTM-ACG+PID") {
        return std::make_unique<PidPolicy>(PidActuator::CoreGating,
                                           ambPidParams(), dramPidParams(),
                                           lim, dtm_interval);
    }
    if (name == "DTM-CDVFS+PID") {
        return std::make_unique<PidPolicy>(PidActuator::Dvfs, ambPidParams(),
                                           dramPidParams(), lim,
                                           dtm_interval);
    }
    fatal("makeCh4Policy: unknown policy '" + name + "'");
}

std::vector<std::string>
ch4PolicyNames(bool with_pid)
{
    if (!with_pid)
        return {"DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"};
    return {"DTM-TS",  "DTM-BW",    "DTM-BW+PID",    "DTM-ACG",
            "DTM-ACG+PID", "DTM-CDVFS", "DTM-CDVFS+PID"};
}

SuiteResults
runSuite(const SimConfig &cfg, const std::vector<Workload> &workloads,
         const std::vector<std::string> &policy_names)
{
    // Thin wrapper over the parallel engine (thread count from
    // MEMTHERM_THREADS or the hardware); results are bit-identical to
    // the historical serial loop for any thread count.
    ExperimentEngine engine;
    return engine.runSuite(cfg, workloads, policy_names);
}

double
normalizedTo(const SuiteResults &r, const std::string &workload,
             const std::string &policy, const std::string &base,
             double (*metric)(const SimResult &))
{
    const auto &per_policy = r.at(workload);
    double denom = metric(per_policy.at(base));
    panicIfNot(denom > 0.0, "normalizedTo: base metric must be positive");
    return metric(per_policy.at(policy)) / denom;
}

double
metricRunningTime(const SimResult &r)
{
    return r.runningTime;
}

double
metricTraffic(const SimResult &r)
{
    return r.totalTrafficGB();
}

double
metricMemEnergy(const SimResult &r)
{
    return r.memEnergy;
}

double
metricCpuEnergy(const SimResult &r)
{
    return r.cpuEnergy;
}

double
metricTotalEnergy(const SimResult &r)
{
    return r.memEnergy + r.cpuEnergy;
}

double
metricL2Misses(const SimResult &r)
{
    return r.totalL2Misses;
}

} // namespace memtherm
