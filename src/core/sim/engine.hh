/**
 * @file
 * Parallel experiment engine.
 *
 * The paper's evaluation is a grid of independent (workload, policy,
 * configuration) simulations — each run owns its simulator, thermal
 * state, and sensor RNG stream, so runs never share mutable state and
 * the suite is embarrassingly parallel. The engine fans runs out over a
 * fixed-size thread pool and collects results keyed exactly as the
 * serial runSuite() always did, so parallel and serial execution
 * produce bit-identical SuiteResults.
 *
 * Thread count resolution (in priority order):
 *  1. the explicit constructor argument, when > 0;
 *  2. the MEMTHERM_THREADS environment variable, when set to >= 1;
 *  3. std::thread::hardware_concurrency().
 * A count of 1 runs every experiment inline on the calling thread (no
 * workers are spawned), which is the reference serial mode.
 */

#ifndef MEMTHERM_CORE_SIM_ENGINE_HH
#define MEMTHERM_CORE_SIM_ENGINE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/sim/experiment.hh"

namespace memtherm
{

/**
 * Builds the policy object for one run. Runs must not share a policy
 * instance (policies carry controller state), so the engine constructs
 * one per run through this factory. An empty factory means the Chapter 4
 * lineup, built through PolicyRegistry from the run's configuration
 * (cfg.dtmInterval and cfg.emergencyLevels).
 */
using PolicyFactory = std::function<std::unique_ptr<DtmPolicy>(
    const SimConfig &cfg, const std::string &policy_name)>;

/**
 * Results of a configuration sweep: one SuiteResults per configuration,
 * in the order the configurations were given.
 */
using GridResults = std::vector<SuiteResults>;

/**
 * Per-run result consumer — the engine's primary output channel.
 *
 * The engine invokes exactly one of onResult()/onFailure() per run, in
 * completion order (nondeterministic under threads; @p index identifies
 * the run). Invocations are serialized by the engine — a sink never
 * sees two calls concurrently — so implementations need no locking of
 * their own. Results are *moved* into the sink as each run finishes:
 * nothing accumulates inside the engine, which is what lets a
 * million-point grid stream to disk in bounded memory and survive a
 * mid-grid crash with every completed run already persisted.
 *
 * A sink that throws does not abort the batch: the remaining runs still
 * execute, and the first sink exception is rethrown from run() after
 * the batch drains (a full disk should not discard in-flight work).
 */
class RunSink
{
  public:
    virtual ~RunSink() = default;

    /** Run @p index finished; @p wall_s is its wall-clock duration. */
    virtual void onResult(std::size_t index, SimResult &&result,
                          double wall_s) = 0;

    /**
     * Run @p index threw; @p error is the in-flight exception. The
     * batch continues — one bad run must not sink a 10-hour grid.
     */
    virtual void onFailure(std::size_t index, std::exception_ptr error) = 0;
};

/**
 * Fixed-size thread pool over independent simulation runs.
 *
 * Determinism: every run is seeded only by its own SimConfig (the
 * sensor RNG is constructed per run from cfg.sensorSeed), results are
 * stored by run index, and suite/grid keys are derived from the input
 * order — so the outcome is independent of the thread count and of
 * scheduling, and bit-identical to serial execution.
 */
class ExperimentEngine
{
  public:
    /** One independent simulation: config x workload x policy name. */
    struct Run
    {
        SimConfig cfg;
        Workload workload;
        std::string policy;     ///< display name; also the result key
        PolicyFactory factory;  ///< empty -> Chapter 4 policy lineup
    };

    /**
     * A contiguous span of a run list whose members differ ONLY by
     * policy: same config, same workload, same factory behavior. Runs
     * inside one class may legally share their simulated prefix (see
     * runBatched()); the scenario layer derives classes structurally
     * from its lowering order, which is the only place the "policy-
     * independent equivalence" invariant can be asserted cheaply
     * (SimConfig has no operator==).
     */
    struct RunClass
    {
        std::size_t first = 0; ///< index of the class's first run
        std::size_t count = 0; ///< number of runs (>= 1)
    };

    /** @param n_threads 0 = resolve from MEMTHERM_THREADS / hardware */
    explicit ExperimentEngine(int n_threads = 0);
    ~ExperimentEngine();

    ExperimentEngine(const ExperimentEngine &) = delete;
    ExperimentEngine &operator=(const ExperimentEngine &) = delete;

    /** Worker count this engine executes with (>= 1). */
    int threads() const { return nThreads; }

    /** The thread count an ExperimentEngine(0) would use. */
    static int defaultThreads();

    /**
     * Streaming primitive: execute all runs, handing each result (or
     * failure) to @p sink as it completes. Sink invocations are
     * serialized; see RunSink. This is the form every other entry point
     * is built on — the engine itself never owns a result vector.
     */
    void run(const std::vector<Run> &runs, RunSink &sink);

    /**
     * Batched streaming primitive: like run(runs, sink), but runs
     * within one RunClass execute through ThermalSimulator::runBatch in
     * chunks of up to @p batch_width lanes, sharing their simulated
     * prefix. Results are bit-identical to run() per run — batching is
     * purely an execution strategy. @p classes must tile [0, runs.size())
     * in order, and every class's runs must share config + workload
     * (only the policy may differ); violating that is the caller's bug
     * and produces wrong results, which is why only the scenario layer
     * constructs classes. Chunks of one run fall back to the scalar
     * path. A failure while building one run's policy fails only that
     * run; a failure inside a batched simulation fails every run of the
     * chunk (their shared state is poisoned). @p batch_width < 1 means
     * "whole class in one chunk". @p stats, when non-null, accumulates
     * the batch counters across all chunks.
     */
    void runBatched(const std::vector<Run> &runs,
                    const std::vector<RunClass> &classes, int batch_width,
                    RunSink &sink, BatchStats *stats = nullptr);

    /**
     * Collecting convenience wrapper: execute all runs; results are
     * positional (result[i] belongs to runs[i]) regardless of
     * completion order. The first failure is rethrown after all runs
     * finish, with the failing run's workload/policy identity appended
     * to the message (a bare what() from a 10^5-point grid is
     * undebuggable). Completed results are discarded on failure by
     * construction of this API — callers that must keep them (the
     * streaming CLI path) use the RunSink overload instead.
     */
    std::vector<SimResult> run(const std::vector<Run> &runs);

    /**
     * Parallel equivalent of the serial runSuite(): every
     * (workload, policy-name) pair under one configuration, keyed
     * result[workload][policy].
     */
    SuiteResults runSuite(const SimConfig &cfg,
                          const std::vector<Workload> &workloads,
                          const std::vector<std::string> &policy_names,
                          const PolicyFactory &factory = {});

    /**
     * Sweep API: the full cross product configs x workloads x policies,
     * fanned out as one batch (a cooling or ambient sweep saturates the
     * pool even when a single config has few runs). Returns one
     * SuiteResults per config, in input order.
     */
    GridResults runGrid(const std::vector<SimConfig> &cfgs,
                        const std::vector<Workload> &workloads,
                        const std::vector<std::string> &policy_names,
                        const PolicyFactory &factory = {});

  private:
    /// A pool task; the worker lends its reusable simulator scratch.
    using Task = std::function<void(ThermalSimulator::Scratch &)>;

    void workerLoop();
    static SimResult execute(const Run &r, ThermalSimulator::Scratch &s);
    static std::unique_ptr<DtmPolicy> makePolicy(const Run &r);
    std::vector<Run> makeSuiteRuns(const SimConfig &cfg,
                                   const std::vector<Workload> &workloads,
                                   const std::vector<std::string> &policies,
                                   const PolicyFactory &factory);

    int nThreads;
    std::vector<std::thread> workers;

    std::mutex mtx;
    std::condition_variable wake;
    std::deque<Task> queue;
    bool stopping = false;
};

} // namespace memtherm

#endif // MEMTHERM_CORE_SIM_ENGINE_HH
