/**
 * @file
 * Parallel experiment engine.
 *
 * The paper's evaluation is a grid of independent (workload, policy,
 * configuration) simulations — each run owns its simulator, thermal
 * state, and sensor RNG stream, so runs never share mutable state and
 * the suite is embarrassingly parallel. The engine fans runs out over a
 * fixed-size thread pool and collects results keyed exactly as the
 * serial runSuite() always did, so parallel and serial execution
 * produce bit-identical SuiteResults.
 *
 * Thread count resolution (in priority order):
 *  1. the explicit constructor argument, when > 0;
 *  2. the MEMTHERM_THREADS environment variable, when set to >= 1;
 *  3. std::thread::hardware_concurrency().
 * A count of 1 runs every experiment inline on the calling thread (no
 * workers are spawned), which is the reference serial mode.
 */

#ifndef MEMTHERM_CORE_SIM_ENGINE_HH
#define MEMTHERM_CORE_SIM_ENGINE_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/sim/experiment.hh"

namespace memtherm
{

/**
 * Builds the policy object for one run. Runs must not share a policy
 * instance (policies carry controller state), so the engine constructs
 * one per run through this factory. An empty factory means the Chapter 4
 * lineup, built through PolicyRegistry from the run's configuration
 * (cfg.dtmInterval and cfg.emergencyLevels).
 */
using PolicyFactory = std::function<std::unique_ptr<DtmPolicy>(
    const SimConfig &cfg, const std::string &policy_name)>;

/**
 * Results of a configuration sweep: one SuiteResults per configuration,
 * in the order the configurations were given.
 */
using GridResults = std::vector<SuiteResults>;

/**
 * Fixed-size thread pool over independent simulation runs.
 *
 * Determinism: every run is seeded only by its own SimConfig (the
 * sensor RNG is constructed per run from cfg.sensorSeed), results are
 * stored by run index, and suite/grid keys are derived from the input
 * order — so the outcome is independent of the thread count and of
 * scheduling, and bit-identical to serial execution.
 */
class ExperimentEngine
{
  public:
    /** One independent simulation: config x workload x policy name. */
    struct Run
    {
        SimConfig cfg;
        Workload workload;
        std::string policy;     ///< display name; also the result key
        PolicyFactory factory;  ///< empty -> Chapter 4 policy lineup
    };

    /** @param n_threads 0 = resolve from MEMTHERM_THREADS / hardware */
    explicit ExperimentEngine(int n_threads = 0);
    ~ExperimentEngine();

    ExperimentEngine(const ExperimentEngine &) = delete;
    ExperimentEngine &operator=(const ExperimentEngine &) = delete;

    /** Worker count this engine executes with (>= 1). */
    int threads() const { return nThreads; }

    /** The thread count an ExperimentEngine(0) would use. */
    static int defaultThreads();

    /**
     * Execute all runs; results are positional (result[i] belongs to
     * runs[i]) regardless of completion order. The first exception
     * thrown by any run is rethrown here after all runs finish.
     */
    std::vector<SimResult> run(const std::vector<Run> &runs);

    /**
     * Parallel equivalent of the serial runSuite(): every
     * (workload, policy-name) pair under one configuration, keyed
     * result[workload][policy].
     */
    SuiteResults runSuite(const SimConfig &cfg,
                          const std::vector<Workload> &workloads,
                          const std::vector<std::string> &policy_names,
                          const PolicyFactory &factory = {});

    /**
     * Sweep API: the full cross product configs x workloads x policies,
     * fanned out as one batch (a cooling or ambient sweep saturates the
     * pool even when a single config has few runs). Returns one
     * SuiteResults per config, in input order.
     */
    GridResults runGrid(const std::vector<SimConfig> &cfgs,
                        const std::vector<Workload> &workloads,
                        const std::vector<std::string> &policy_names,
                        const PolicyFactory &factory = {});

  private:
    /// A pool task; the worker lends its reusable simulator scratch.
    using Task = std::function<void(ThermalSimulator::Scratch &)>;

    void workerLoop();
    static SimResult execute(const Run &r, ThermalSimulator::Scratch &s);
    std::vector<Run> makeSuiteRuns(const SimConfig &cfg,
                                   const std::vector<Workload> &workloads,
                                   const std::vector<std::string> &policies,
                                   const PolicyFactory &factory);

    int nThreads;
    std::vector<std::thread> workers;

    std::mutex mtx;
    std::condition_variable wake;
    std::deque<Task> queue;
    bool stopping = false;
};

} // namespace memtherm

#endif // MEMTHERM_CORE_SIM_ENGINE_HH
