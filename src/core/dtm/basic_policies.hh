/**
 * @file
 * The DTM schemes of Sections 4.2 and 5.2 without formal control:
 *
 *  - DTM-TS     thermal shutdown with TDP/TRP hysteresis
 *  - DTM-BW     leveled bandwidth throttling
 *  - DTM-ACG    adaptive core gating
 *  - DTM-CDVFS  coordinated DVFS
 *  - DTM-COMB   combined gating + DVFS (Chapter 5)
 *
 * All leveled schemes share one mechanism: quantize the temperature into
 * emergency levels and look the running state up in a per-level table.
 */

#ifndef MEMTHERM_CORE_DTM_BASIC_POLICIES_HH
#define MEMTHERM_CORE_DTM_BASIC_POLICIES_HH

#include <vector>

#include "core/dtm/emergency_levels.hh"

namespace memtherm
{

/**
 * DTM-TS: stop all memory transactions when either sensor reaches its
 * TDP; resume when both have fallen to their TRPs (Section 4.2.1).
 */
class TsPolicy : public DtmPolicy
{
  public:
    /**
     * @param amb_tdp/amb_trp   AMB trigger/release temperatures
     * @param dram_tdp/dram_trp DRAM trigger/release temperatures
     */
    TsPolicy(Celsius amb_tdp, Celsius amb_trp, Celsius dram_tdp,
             Celsius dram_trp);

    DtmAction decide(const ThermalReading &r, Seconds now) override;
    std::string name() const override { return "DTM-TS"; }
    void reset() override { shutdown = false; }

    /** True while the memory is shut down. */
    bool isShutdown() const { return shutdown; }

  private:
    Celsius ambTdp, ambTrp, dramTdp, dramTrp;
    bool shutdown = false;
};

/**
 * Generic leveled policy: emergency level -> action table. DTM-BW,
 * DTM-ACG, DTM-CDVFS and DTM-COMB are instances.
 *
 * When the highest level is entered (the memory-off emergency), the
 * policy latches there until both sensors fall back to their release
 * temperatures — the paper's L5 handling: "the memory is shut down until
 * the AMB temperature drops below 109.0 C" (Section 4.4.2).
 */
class LeveledPolicy : public DtmPolicy
{
  public:
    /**
     * @param policy_name  display name
     * @param levels       emergency-level boundaries
     * @param actions      one action per level (size == levels.numLevels())
     * @param amb_release  AMB temperature releasing a latched shutdown
     * @param dram_release DRAM temperature releasing a latched shutdown
     */
    LeveledPolicy(std::string policy_name, EmergencyLevels levels,
                  std::vector<DtmAction> actions, Celsius amb_release,
                  Celsius dram_release);

    DtmAction decide(const ThermalReading &r, Seconds now) override;
    std::string name() const override { return policyName; }
    void reset() override { latched = false; }

    /** Level selected at the last decide() call. */
    int lastLevel() const { return lastLvl; }
    /** True while a top-level shutdown is latched. */
    bool isLatched() const { return latched; }
    const EmergencyLevels &levelTable() const { return table; }

  private:
    std::string policyName;
    EmergencyLevels table;
    std::vector<DtmAction> actionOf;
    Celsius ambRelease;
    Celsius dramRelease;
    int lastLvl = 0;
    bool latched = false;
};

/**
 * The Table 4.3 Chapter 4 schemes over an emergency ladder. The default
 * ladder is ch4EmergencyLevels(); any five-level ladder (e.g. a Table
 * 5.1 variant from the emergency-ladder catalog) may be substituted —
 * the action tables are five rows, so a ladder of any other depth is a
 * FatalError. A latched top-level shutdown releases at the ladder's
 * second boundary pair (109.0/84.0 C for the default ladder).
 */

/** Table 4.3 DTM-BW: caps {inf, 19.2, 12.8, 6.4, off} GB/s. */
LeveledPolicy makeCh4BwPolicy(const EmergencyLevels &levels =
                                  ch4EmergencyLevels());

/** Table 4.3 DTM-ACG: active cores {4, 3, 2, 1, 0(off)}. */
LeveledPolicy makeCh4AcgPolicy(const EmergencyLevels &levels =
                                   ch4EmergencyLevels());

/** Table 4.3 DTM-CDVFS: DVFS levels {0, 1, 2, 3, stopped}. */
LeveledPolicy makeCh4CdvfsPolicy(const EmergencyLevels &levels =
                                     ch4EmergencyLevels());

} // namespace memtherm

#endif // MEMTHERM_CORE_DTM_BASIC_POLICIES_HH
