#include "core/dtm/pid_policies.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace memtherm
{

PidPolicy::PidPolicy(PidActuator kind, const PidParams &amb,
                     const PidParams &dram, const ThermalLimits &limits,
                     Seconds dtm_interval, int n_cores, std::size_t n_dvfs,
                     std::vector<GBps> bw_caps)
    : actuator(kind), ambCtl(amb), dramCtl(dram), tdp(limits),
      interval(dtm_interval), nCores(n_cores), nDvfs(n_dvfs),
      bwCaps(std::move(bw_caps))
{
    panicIfNot(dtm_interval > 0.0, "PidPolicy: interval must be positive");
    panicIfNot(n_cores >= 1, "PidPolicy: need >= 1 core");
    panicIfNot(n_dvfs >= 1, "PidPolicy: need >= 1 DVFS level");
    panicIfNot(!bwCaps.empty(), "PidPolicy: need >= 1 bandwidth cap");
}

DtmAction
PidPolicy::decide(const ThermalReading &r, Seconds now)
{
    Seconds dt = interval;
    if (hasPrevTime && now > prevTime)
        dt = now - prevTime;
    prevTime = now;
    hasPrevTime = true;

    double u = std::min(ambCtl.update(r.amb, dt), dramCtl.update(r.dram, dt));
    lastU = u;

    DtmAction a;
    // Safety override: the highest emergency level always shuts the
    // memory down, PID or not (Section 4.2.2).
    if (r.amb >= tdp.ambTdp || r.dram >= tdp.dramTdp) {
        a.memoryOn = false;
        a.bandwidthCap = 0.0;
        if (actuator == PidActuator::CoreGating)
            a.activeCores = 0;
        if (actuator == PidActuator::Dvfs)
            a.dvfsLevel = nDvfs - 1;
        return a;
    }

    switch (actuator) {
      case PidActuator::Bandwidth: {
        // u == 1 -> unconstrained; decreasing u walks down the cap table;
        // u == 0 -> memory off.
        std::size_t steps = bwCaps.size() + 1; // +1 for the off setting
        auto idx = static_cast<long>(std::lround((1.0 - u) * steps));
        idx = std::clamp<long>(idx, 0, static_cast<long>(steps));
        if (idx == 0) {
            // unconstrained
        } else if (idx <= static_cast<long>(bwCaps.size())) {
            a.bandwidthCap = bwCaps[static_cast<std::size_t>(idx - 1)];
        } else {
            a.memoryOn = false;
            a.bandwidthCap = 0.0;
        }
        break;
      }
      case PidActuator::CoreGating: {
        auto cores = static_cast<long>(std::lround(u * nCores));
        cores = std::clamp<long>(cores, 0, nCores);
        a.activeCores = static_cast<int>(cores);
        if (cores == 0) {
            a.memoryOn = false;
            a.bandwidthCap = 0.0;
        }
        break;
      }
      case PidActuator::Dvfs: {
        // u == 1 -> level 0 (fastest); u == 0 -> memory off.
        std::size_t steps = nDvfs; // nDvfs levels plus the off setting
        auto idx = static_cast<long>(std::lround((1.0 - u) * steps));
        idx = std::clamp<long>(idx, 0, static_cast<long>(steps));
        if (idx >= static_cast<long>(nDvfs)) {
            a.memoryOn = false;
            a.bandwidthCap = 0.0;
            a.dvfsLevel = nDvfs - 1;
        } else {
            a.dvfsLevel = static_cast<std::size_t>(idx);
        }
        break;
      }
    }
    return a;
}

std::string
PidPolicy::name() const
{
    switch (actuator) {
      case PidActuator::Bandwidth:
        return "DTM-BW+PID";
      case PidActuator::CoreGating:
        return "DTM-ACG+PID";
      case PidActuator::Dvfs:
        return "DTM-CDVFS+PID";
    }
    return "DTM-PID";
}

void
PidPolicy::reset()
{
    ambCtl.reset();
    dramCtl.reset();
    hasPrevTime = false;
    prevTime = 0.0;
    lastU = 1.0;
}

PidPolicy
makeCh4BwPidPolicy()
{
    return PidPolicy(PidActuator::Bandwidth, ambPidParams(), dramPidParams(),
                     ThermalLimits{});
}

PidPolicy
makeCh4AcgPidPolicy()
{
    return PidPolicy(PidActuator::CoreGating, ambPidParams(),
                     dramPidParams(), ThermalLimits{});
}

PidPolicy
makeCh4CdvfsPidPolicy()
{
    return PidPolicy(PidActuator::Dvfs, ambPidParams(), dramPidParams(),
                     ThermalLimits{});
}

} // namespace memtherm
