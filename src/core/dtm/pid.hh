/**
 * @file
 * PID formal controller (Section 4.2.3, Eq. 4.1):
 *
 *   m(t) = Kc * ( e(t) + KI * Int(e) + KD * de/dt )
 *
 * with e(t) = target - measured. Two anti-windup measures from the paper:
 * the integral term is enabled only once the temperature exceeds a gate
 * threshold, and it is frozen while the control output saturates the
 * actuator.
 *
 * The controller output is normalized to a performance fraction
 * u in [0, 1] (1 = full speed); policies quantize u onto their actuator.
 */

#ifndef MEMTHERM_CORE_DTM_PID_HH
#define MEMTHERM_CORE_DTM_PID_HH

#include "common/units.hh"

namespace memtherm
{

/** Tuning constants for one PID controller. */
struct PidParams
{
    double kc = 10.4;          ///< proportional constant
    double ki = 180.24;        ///< integral constant
    double kd = 0.001;         ///< differential constant
    Celsius target = 109.8;    ///< temperature setpoint
    Celsius integralGate = 109.0; ///< integral active only above this
    double outputScale = 10.4; ///< raw output mapped to u = raw / scale
};

/** Paper-tuned constants for the AMB controller (Section 4.3.4). */
PidParams ambPidParams();
/** Paper-tuned constants for the DRAM controller. */
PidParams dramPidParams();

/**
 * One PID control loop.
 */
class PidController
{
  public:
    explicit PidController(const PidParams &p);

    /**
     * Advance the controller by one DTM interval.
     * @param temp measured temperature
     * @param dt   interval length (s), > 0
     * @return normalized performance fraction u in [0, 1]
     */
    double update(Celsius temp, Seconds dt);

    /** Last computed u. */
    double output() const { return lastU; }

    /** Clear the integral and derivative history. */
    void reset();

    const PidParams &p() const { return params; }

  private:
    PidParams params;
    double integral = 0.0;
    double prevError = 0.0;
    bool hasPrev = false;
    double lastU = 1.0;
};

} // namespace memtherm

#endif // MEMTHERM_CORE_DTM_PID_HH
