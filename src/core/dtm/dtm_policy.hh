/**
 * @file
 * DTM policy interface (Section 4.2): a policy reads the thermal sensors
 * once per DTM interval and decides the system running state.
 */

#ifndef MEMTHERM_CORE_DTM_DTM_POLICY_HH
#define MEMTHERM_CORE_DTM_DTM_POLICY_HH

#include <limits>
#include <string>
#include <vector>

#include "common/units.hh"

namespace memtherm
{

/** Sensor values a policy sees at a decision point. */
struct ThermalReading
{
    Celsius amb = 0.0;   ///< hottest AMB temperature
    Celsius dram = 0.0;  ///< hottest DRAM-device temperature
    Celsius inlet = 0.0; ///< memory inlet (ambient) temperature

    /**
     * Per-DIMM temperatures on the representative channel (index 0
     * nearest the memory controller), for policies that act on the
     * thermal *gradient* rather than the hottest spot. These are the
     * exact model temperatures — ideal per-DIMM sensors: routing them
     * through the noisy scalar sensor would consume extra RNG draws and
     * perturb every pinned golden. Empty when the caller has no
     * per-DIMM sensor path (e.g. policy unit tests that only exercise
     * the scalar readings).
     */
    std::vector<Celsius> ambPerDimm;
    std::vector<Celsius> dramPerDimm;
};

/** The running state a policy selects. */
struct DtmAction
{
    /** False = memory fully shut down (no transactions). */
    bool memoryOn = true;
    /** Memory throughput cap; +inf means unconstrained. */
    GBps bandwidthCap = std::numeric_limits<double>::infinity();
    /** Cores left running; clamped to the platform count by the engine. */
    int activeCores = std::numeric_limits<int>::max();
    /** DVFS level index, 0 = fastest. */
    std::size_t dvfsLevel = 0;
    /**
     * New per-DIMM traffic shares to apply this window (the remap
     * actuator). Empty = keep the current distribution. When set, the
     * vector must satisfy the MemoryThermalModel share contract
     * (one entry per DIMM, finite, non-negative, summing to 1); the
     * simulator charges a migration-cost traffic burst proportional to
     * the share fraction actually moved.
     */
    std::vector<double> trafficShares;

    /**
     * Field-wise equality. The batched simulator uses this to detect
     * the first window where policies sharing a trajectory prefix
     * diverge, so "equal" must mean "the simulator would do exactly the
     * same thing" — which field-wise double comparison (inf == inf
     * included; no field is ever NaN) delivers.
     */
    bool operator==(const DtmAction &) const = default;
};

/**
 * Base class of all DTM policies.
 */
class DtmPolicy
{
  public:
    virtual ~DtmPolicy() = default;

    /**
     * Decide the running state for the next DTM interval.
     * @param r   current sensor readings
     * @param now simulation time (s)
     */
    virtual DtmAction decide(const ThermalReading &r, Seconds now) = 0;

    /** Display name, e.g. "DTM-ACG" or "DTM-ACG+PID". */
    virtual std::string name() const = 0;

    /** Clear internal state for a fresh run. */
    virtual void reset() {}
};

/** The no-thermal-limit baseline: always full speed. */
class NoLimitPolicy : public DtmPolicy
{
  public:
    DtmAction
    decide(const ThermalReading &, Seconds) override
    {
        return {};
    }

    std::string name() const override { return "No-limit"; }
};

} // namespace memtherm

#endif // MEMTHERM_CORE_DTM_DTM_POLICY_HH
