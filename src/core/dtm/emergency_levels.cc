#include "core/dtm/emergency_levels.hh"

#include <algorithm>

#include "common/logging.hh"

namespace memtherm
{

namespace
{

int
levelOf(const std::vector<Celsius> &bounds, Celsius t)
{
    int lvl = 0;
    for (Celsius b : bounds) {
        if (t >= b)
            ++lvl;
        else
            break;
    }
    return lvl;
}

} // namespace

EmergencyLevels::EmergencyLevels(std::vector<Celsius> amb_bounds,
                                 std::vector<Celsius> dram_bounds)
    : ambB(std::move(amb_bounds)), dramB(std::move(dram_bounds))
{
    panicIfNot(ambB.size() == dramB.size(),
               "EmergencyLevels: sensor tables must have equal depth");
    panicIfNot(!ambB.empty(), "EmergencyLevels: need >= 1 boundary");
    panicIfNot(std::is_sorted(ambB.begin(), ambB.end()) &&
                   std::is_sorted(dramB.begin(), dramB.end()),
               "EmergencyLevels: boundaries must be ascending");
}

int
EmergencyLevels::ambLevel(Celsius t) const
{
    return levelOf(ambB, t);
}

int
EmergencyLevels::dramLevel(Celsius t) const
{
    return levelOf(dramB, t);
}

int
EmergencyLevels::level(const ThermalReading &r) const
{
    return std::max(ambLevel(r.amb), dramLevel(r.dram));
}

int
EmergencyLevels::numLevels() const
{
    return static_cast<int>(ambB.size()) + 1;
}

EmergencyLevels
ch4EmergencyLevels()
{
    return EmergencyLevels({108.0, 109.0, 109.5, 110.0},
                           {83.0, 84.0, 84.5, 85.0});
}

} // namespace memtherm
