#include "core/dtm/pid.hh"

#include <algorithm>

#include "common/logging.hh"

namespace memtherm
{

PidParams
ambPidParams()
{
    PidParams p;
    p.kc = 10.4;
    p.ki = 180.24;
    p.kd = 0.001;
    p.target = 109.8;
    p.integralGate = 109.0;
    p.outputScale = 10.4;
    return p;
}

PidParams
dramPidParams()
{
    PidParams p;
    p.kc = 12.4;
    p.ki = 155.12;
    p.kd = 0.001;
    p.target = 84.8;
    p.integralGate = 84.0;
    p.outputScale = 12.4;
    return p;
}

PidController::PidController(const PidParams &p) : params(p)
{
    panicIfNot(p.outputScale > 0.0, "PidController: outputScale must be >0");
}

double
PidController::update(Celsius temp, Seconds dt)
{
    panicIfNot(dt > 0.0, "PidController: dt must be positive");
    double e = params.target - temp;

    double derivative = hasPrev ? (e - prevError) / dt : 0.0;
    prevError = e;
    hasPrev = true;

    // Tentative integral step; commit only if it passes the anti-windup
    // rules below.
    double new_integral = integral;
    if (temp > params.integralGate)
        new_integral += e * dt;

    double raw = params.kc *
                 (e + params.ki * new_integral + params.kd * derivative);
    double u = std::clamp(raw / params.outputScale, 0.0, 1.0);

    // Freeze the integral while the actuator is saturated and the new
    // error would push it further into saturation (classic clamping).
    bool saturated_high = u >= 1.0 && e > 0.0;
    bool saturated_low = u <= 0.0 && e < 0.0;
    if (!saturated_high && !saturated_low)
        integral = new_integral;

    lastU = u;
    return u;
}

void
PidController::reset()
{
    integral = 0.0;
    prevError = 0.0;
    hasPrev = false;
    lastU = 1.0;
}

} // namespace memtherm
