#include "core/dtm/basic_policies.hh"

#include "common/logging.hh"

namespace memtherm
{

TsPolicy::TsPolicy(Celsius amb_tdp, Celsius amb_trp, Celsius dram_tdp,
                   Celsius dram_trp)
    : ambTdp(amb_tdp), ambTrp(amb_trp), dramTdp(dram_tdp), dramTrp(dram_trp)
{
    panicIfNot(amb_trp < amb_tdp && dram_trp < dram_tdp,
               "TsPolicy: TRP must be below TDP");
}

DtmAction
TsPolicy::decide(const ThermalReading &r, Seconds)
{
    if (!shutdown && (r.amb >= ambTdp || r.dram >= dramTdp))
        shutdown = true;
    else if (shutdown && r.amb <= ambTrp && r.dram <= dramTrp)
        shutdown = false;

    DtmAction a;
    a.memoryOn = !shutdown;
    if (shutdown)
        a.bandwidthCap = 0.0;
    return a;
}

LeveledPolicy::LeveledPolicy(std::string policy_name, EmergencyLevels levels,
                             std::vector<DtmAction> actions,
                             Celsius amb_release, Celsius dram_release)
    : policyName(std::move(policy_name)), table(std::move(levels)),
      actionOf(std::move(actions)), ambRelease(amb_release),
      dramRelease(dram_release)
{
    panicIfNot(static_cast<int>(actionOf.size()) == table.numLevels(),
               "LeveledPolicy: need exactly one action per level");
}

DtmAction
LeveledPolicy::decide(const ThermalReading &r, Seconds)
{
    int top = table.numLevels() - 1;
    lastLvl = table.level(r);
    if (lastLvl == top)
        latched = true;
    else if (latched && r.amb <= ambRelease && r.dram <= dramRelease)
        latched = false;
    if (latched)
        lastLvl = top;
    return actionOf[static_cast<std::size_t>(lastLvl)];
}

namespace
{

DtmAction
act(bool on, GBps cap, int cores, std::size_t dvfs)
{
    DtmAction a;
    a.memoryOn = on;
    a.bandwidthCap = cap;
    a.activeCores = cores;
    a.dvfsLevel = dvfs;
    return a;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * The Table 4.3 action tables have exactly five rows; reject ladders of
 * any other depth before LeveledPolicy's ctor panics on the mismatch.
 * (With five levels the ladder has >= 2 boundaries, so the second
 * boundary pair is a valid latch release — 109.0/84.0 C by default.)
 */
void
checkCh4Ladder(const EmergencyLevels &levels, const char *policy)
{
    if (levels.numLevels() != 5) {
        fatal(std::string(policy) + ": the Chapter 4 action table has "
              "five levels; the given emergency ladder has " +
              std::to_string(levels.numLevels()));
    }
}

} // namespace

LeveledPolicy
makeCh4BwPolicy(const EmergencyLevels &levels)
{
    checkCh4Ladder(levels, "DTM-BW");
    return LeveledPolicy("DTM-BW", levels,
                         {act(true, kInf, 4, 0), act(true, 19.2, 4, 0),
                          act(true, 12.8, 4, 0), act(true, 6.4, 4, 0),
                          act(false, 0.0, 4, 0)},
                         levels.ambBounds()[1], levels.dramBounds()[1]);
}

LeveledPolicy
makeCh4AcgPolicy(const EmergencyLevels &levels)
{
    checkCh4Ladder(levels, "DTM-ACG");
    return LeveledPolicy("DTM-ACG", levels,
                         {act(true, kInf, 4, 0), act(true, kInf, 3, 0),
                          act(true, kInf, 2, 0), act(true, kInf, 1, 0),
                          act(false, 0.0, 0, 0)},
                         levels.ambBounds()[1], levels.dramBounds()[1]);
}

LeveledPolicy
makeCh4CdvfsPolicy(const EmergencyLevels &levels)
{
    checkCh4Ladder(levels, "DTM-CDVFS");
    return LeveledPolicy("DTM-CDVFS", levels,
                         {act(true, kInf, 4, 0), act(true, kInf, 4, 1),
                          act(true, kInf, 4, 2), act(true, kInf, 4, 3),
                          act(false, 0.0, 4, 3)},
                         levels.ambBounds()[1], levels.dramBounds()[1]);
}

} // namespace memtherm
