/**
 * @file
 * DTM schemes driven by the PID formal controller (Section 4.2.3).
 *
 * Two controllers run side by side — one against the AMB setpoint, one
 * against the DRAM setpoint — and the more restrictive output drives the
 * actuator (for any given configuration one of the two is always the
 * binding constraint). A hard safety override shuts the memory down at
 * the TDP, mirroring the L5 emergency level.
 */

#ifndef MEMTHERM_CORE_DTM_PID_POLICIES_HH
#define MEMTHERM_CORE_DTM_PID_POLICIES_HH

#include <vector>

#include "core/dtm/dtm_policy.hh"
#include "core/dtm/pid.hh"
#include "core/thermal/thermal_params.hh"

namespace memtherm
{

/** What the PID output actuates. */
enum class PidActuator { Bandwidth, CoreGating, Dvfs };

/**
 * PID-controlled DTM policy. The normalized controller output
 * u in [0, 1] is quantized onto the actuator's discrete settings:
 * bandwidth caps, active-core count, or DVFS level.
 */
class PidPolicy : public DtmPolicy
{
  public:
    /**
     * @param kind         actuator to drive
     * @param amb          AMB controller constants
     * @param dram         DRAM controller constants
     * @param limits       TDPs for the safety override
     * @param dtm_interval nominal decision period (first-call dt)
     * @param n_cores      cores available to the gating actuator
     * @param n_dvfs       DVFS levels available
     * @param bw_caps      finite bandwidth caps, fastest first
     */
    PidPolicy(PidActuator kind, const PidParams &amb, const PidParams &dram,
              const ThermalLimits &limits, Seconds dtm_interval = 0.01,
              int n_cores = 4, std::size_t n_dvfs = 4,
              std::vector<GBps> bw_caps = {19.2, 12.8, 6.4});

    DtmAction decide(const ThermalReading &r, Seconds now) override;
    std::string name() const override;
    void reset() override;

    /** Last normalized controller output. */
    double lastOutput() const { return lastU; }

  private:
    PidActuator actuator;
    PidController ambCtl;
    PidController dramCtl;
    ThermalLimits tdp;
    Seconds interval;
    int nCores;
    std::size_t nDvfs;
    std::vector<GBps> bwCaps;

    Seconds prevTime = 0.0;
    bool hasPrevTime = false;
    double lastU = 1.0;
};

/** Factory: Chapter 4 DTM-BW+PID. */
PidPolicy makeCh4BwPidPolicy();
/** Factory: Chapter 4 DTM-ACG+PID. */
PidPolicy makeCh4AcgPidPolicy();
/** Factory: Chapter 4 DTM-CDVFS+PID. */
PidPolicy makeCh4CdvfsPidPolicy();

} // namespace memtherm

#endif // MEMTHERM_CORE_DTM_PID_POLICIES_HH
