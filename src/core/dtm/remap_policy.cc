#include "core/dtm/remap_policy.hh"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "common/logging.hh"

namespace memtherm
{

RemapPolicy::RemapPolicy(Band b, RemapConfig c) : band(b), cfg(std::move(c))
{
    panicIfNot(cfg.interval > 0.0, "RemapPolicy: interval must be > 0");
    panicIfNot(cfg.hysteresis >= 0.0,
               "RemapPolicy: hysteresis must be >= 0");
    panicIfNot(cfg.step > 0.0 && cfg.step <= 1.0,
               "RemapPolicy: step must be in (0, 1]");
}

std::string
RemapPolicy::name() const
{
    return band == Band::Greedy ? "DTM-remap" : "DTM-remap-hyst";
}

void
RemapPolicy::reset()
{
    current.clear();
    nextRemap = 0.0;
    latched = false;
}

bool
RemapPolicy::triggered(const ThermalReading &r)
{
    bool hot = r.amb >= cfg.limits.ambTdp || r.dram >= cfg.limits.dramTdp;
    if (band == Band::Greedy)
        return hot;
    // Hysteresis band: latch on at a TDP crossing, release only when
    // both sensors are a full band below their TDPs.
    if (hot)
        latched = true;
    else if (r.amb < cfg.limits.ambTdp - cfg.hysteresis &&
             r.dram < cfg.limits.dramTdp - cfg.hysteresis)
        latched = false;
    return latched;
}

DtmAction
RemapPolicy::decide(const ThermalReading &r, Seconds now)
{
    DtmAction a;
    // The latch samples every sensor reading; migration happens only at
    // remap boundaries, so a short spike between boundaries still arms
    // the hysteresis variant.
    bool hot = triggered(r);
    if (r.ambPerDimm.empty())
        return a; // no per-DIMM sensor path — nothing to migrate
    if (now + cfg.interval * 1e-6 < nextRemap)
        return a;
    nextRemap = now + cfg.interval;

    // Adopt the chain arity from the reading; the configured initial
    // distribution applies only if it fits this chain.
    const std::size_t n = r.ambPerDimm.size();
    if (current.size() != n) {
        if (cfg.initialShares.size() == n)
            current = cfg.initialShares;
        else
            current.assign(n, 1.0 / n);
    }
    if (!hot || n < 2)
        return a;

    // Worst thermal margin across both node types; source additionally
    // needs share to give up (a DIMM can be hot purely from bypass
    // traffic, in which case the hottest *contributing* DIMM moves).
    // Severity can tie exactly when the DRAM margin clips several cold
    // DIMMs to one value; the AMB temperature breaks the tie (hotter
    // wins as source, colder as destination), first index after that.
    auto severity = [&](std::size_t i) {
        Celsius dram_t = i < r.dramPerDimm.size() ? r.dramPerDimm[i] : 0.0;
        return std::max(r.ambPerDimm[i] - cfg.limits.ambTdp,
                        dram_t - cfg.limits.dramTdp);
    };
    auto hotterThan = [&](std::size_t i, std::size_t j) {
        double si = severity(i), sj = severity(j);
        return si > sj || (si == sj && r.ambPerDimm[i] > r.ambPerDimm[j]);
    };
    std::size_t src = n, dst = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (current[i] > 0.0 && (src == n || hotterThan(i, src)))
            src = i;
        if (hotterThan(dst, i))
            dst = i;
    }
    if (src == n || src == dst)
        return a;
    double d = std::min(cfg.step, current[src]);
    current[src] -= d;
    current[dst] += d;
    a.trafficShares = current;
    return a;
}

TsRemapPolicy::TsRemapPolicy(TsPolicy ts_policy, RemapConfig remap_cfg)
    : tsPart(std::move(ts_policy)),
      remapPart(RemapPolicy::Band::Hysteresis, std::move(remap_cfg))
{
}

DtmAction
TsRemapPolicy::decide(const ThermalReading &r, Seconds now)
{
    DtmAction a = tsPart.decide(r, now);
    DtmAction m = remapPart.decide(r, now);
    a.trafficShares = std::move(m.trafficShares);
    return a;
}

void
TsRemapPolicy::reset()
{
    tsPart.reset();
    remapPart.reset();
}

} // namespace memtherm
