/**
 * @file
 * Thermal emergency levels (Tables 4.3 and 5.1).
 *
 * The temperature range is quantized into levels L1..Ln; policies map the
 * current level to a running state. Level indices here are 0-based
 * (level 0 == the paper's L1 == no emergency).
 */

#ifndef MEMTHERM_CORE_DTM_EMERGENCY_LEVELS_HH
#define MEMTHERM_CORE_DTM_EMERGENCY_LEVELS_HH

#include <vector>

#include "core/dtm/dtm_policy.hh"

namespace memtherm
{

/**
 * Level boundaries for the AMB and DRAM sensors. With n boundaries there
 * are n+1 levels; a temperature at or above boundary i is at least in
 * level i+1.
 */
class EmergencyLevels
{
  public:
    EmergencyLevels(std::vector<Celsius> amb_bounds,
                    std::vector<Celsius> dram_bounds);

    /** Emergency level of an AMB temperature alone. */
    int ambLevel(Celsius t) const;
    /** Emergency level of a DRAM temperature alone. */
    int dramLevel(Celsius t) const;
    /** Combined level: the more urgent of the two sensors. */
    int level(const ThermalReading &r) const;

    /** Number of levels (boundaries + 1). */
    int numLevels() const;

    const std::vector<Celsius> &ambBounds() const { return ambB; }
    const std::vector<Celsius> &dramBounds() const { return dramB; }

  private:
    std::vector<Celsius> ambB;
    std::vector<Celsius> dramB;
};

/**
 * Table 4.3 defaults for the chosen FBDIMM: five levels with AMB bounds
 * {108, 109, 109.5, 110} and DRAM bounds {83, 84, 84.5, 85}.
 */
EmergencyLevels ch4EmergencyLevels();

} // namespace memtherm

#endif // MEMTHERM_CORE_DTM_EMERGENCY_LEVELS_HH
