/**
 * @file
 * Traffic-remapping DTM policies: migrate per-DIMM traffic share away
 * from the hottest DIMM instead of throttling the whole subsystem.
 *
 * The Section 4.2 schemes all scale memory activity (shutdown, caps,
 * gating, DVFS); these policies change its *distribution*. At each
 * remap boundary (every `remap_interval` seconds) a triggered policy
 * moves a fixed step of a channel's local-traffic share from the DIMM
 * with the worst thermal margin to the one with the best, and the
 * simulator charges a page-copy traffic burst proportional to the share
 * moved — so remapping is never free. Physics makes it effective: a
 * DIMM's AMB burns ~0.75 W per GB/s of local traffic but only ~0.19 W
 * per GB/s of bypass traffic, so share moved off a hot DIMM cools it
 * even though the traffic still flows through its AMB.
 *
 * Three registry entries:
 *  - "DTM-remap"       greedy migrator: one step per boundary while a
 *                      sensor is at/above its TDP;
 *  - "DTM-remap-hyst"  hysteresis-banded: latches on at a TDP crossing
 *                      and keeps migrating until both sensors fall
 *                      `remap_hysteresis` C below their TDPs;
 *  - "DTM-TS+remap"    composition: DTM-TS shutdown protection plus the
 *                      greedy migrator. With uniform traffic and no
 *                      emergency it is bit-identical to plain DTM-TS.
 */

#ifndef MEMTHERM_CORE_DTM_REMAP_POLICY_HH
#define MEMTHERM_CORE_DTM_REMAP_POLICY_HH

#include <vector>

#include "core/dtm/basic_policies.hh"
#include "core/thermal/thermal_params.hh"

namespace memtherm
{

/** Construction parameters shared by the remap policy family. */
struct RemapConfig
{
    /// Seconds between remap decisions (the `remap_interval` knob).
    Seconds interval = 1.0;
    /// Release band (C) below the TDPs for the hysteresis variant
    /// (the `remap_hysteresis` knob).
    Celsius hysteresis = 2.0;
    /// Share fraction moved per remap step.
    double step = 0.05;
    /// TDPs the trigger compares the sensed temperatures against.
    ThermalLimits limits{};
    /// The run's starting distribution (SimConfig::trafficShares);
    /// empty = uniform. reset() returns the policy here.
    std::vector<double> initialShares;
};

/**
 * Greedy or hysteresis-banded hottest-to-coldest traffic migrator.
 *
 * Emits DtmAction::trafficShares only in the window a migration step
 * actually happens; all scalar actuators stay at full speed (compose
 * with a scaling policy, e.g. TsRemapPolicy, for shutdown protection).
 */
class RemapPolicy : public DtmPolicy
{
  public:
    enum class Band
    {
        Greedy,     ///< migrate only while a sensor is at/above its TDP
        Hysteresis, ///< latch at TDP, release `hysteresis` C below it
    };

    RemapPolicy(Band band, RemapConfig cfg);

    DtmAction decide(const ThermalReading &r, Seconds now) override;
    std::string name() const override;
    void reset() override;

    /** Current working distribution (empty before the first reading). */
    const std::vector<double> &shares() const { return current; }
    /** True while the hysteresis band is latched on. */
    bool isLatched() const { return latched; }

  private:
    bool triggered(const ThermalReading &r);

    Band band;
    RemapConfig cfg;
    std::vector<double> current;
    Seconds nextRemap = 0.0;
    bool latched = false;
};

/**
 * "DTM-TS+remap": DTM-TS thermal shutdown with the hysteresis-banded
 * migrator riding along. The TS half decides the scalar running state;
 * the remap half contributes the share vector. The banded (not greedy)
 * migrator is essential here: TS's own shutdown keeps the sensor below
 * TDP at almost every remap boundary, so an at-TDP trigger would
 * practically never fire — the latch instead keeps migrating through
 * the whole duty-cycling episode until the emergency is truly over.
 * Under uniform traffic with no thermal emergency neither half ever
 * acts, so the composition is bit-identical to plain DTM-TS.
 */
class TsRemapPolicy : public DtmPolicy
{
  public:
    TsRemapPolicy(TsPolicy ts_policy, RemapConfig remap_cfg);

    DtmAction decide(const ThermalReading &r, Seconds now) override;
    std::string name() const override { return "DTM-TS+remap"; }
    void reset() override;

    const TsPolicy &ts() const { return tsPart; }
    const RemapPolicy &remap() const { return remapPart; }

  private:
    TsPolicy tsPart;
    RemapPolicy remapPart;
};

} // namespace memtherm

#endif // MEMTHERM_CORE_DTM_REMAP_POLICY_HH
