/**
 * @file
 * Power-model parameters for FBDIMM with 1GB DDR2-667x8 DRAM chips
 * (110nm process), after Table 3.1 and Section 3.3 of the paper.
 */

#ifndef MEMTHERM_CORE_POWER_POWER_PARAMS_HH
#define MEMTHERM_CORE_POWER_POWER_PARAMS_HH

#include "common/units.hh"

namespace memtherm
{

/**
 * DRAM-chip power model coefficients (Eq. 3.1), per DIMM.
 *
 * P_DRAM = pStatic + alphaRead * Tput_read + alphaWrite * Tput_write
 *
 * Derived from the Micron DDR2 system-power calculator assuming close-page
 * mode with auto-precharge (zero row-buffer hit rate), no low-power modes,
 * and banks all-precharged 20% of the time. pStatic includes refresh.
 */
struct DramPowerParams
{
    Watts pStatic = 0.98;          ///< static + refresh power per DIMM
    double alphaRead = 1.12;       ///< W per GB/s of read throughput
    double alphaWrite = 1.16;      ///< W per GB/s of write throughput
};

/**
 * AMB power model coefficients (Eq. 3.2, Table 3.1), per AMB.
 *
 * P_AMB = pIdle + beta * Tput_bypass + gamma * Tput_local
 *
 * The last AMB in the daisy chain idles lower because it synchronizes
 * with only one link neighbor.
 */
struct AmbPowerParams
{
    Watts pIdleLast = 4.0;         ///< idle power, last DIMM in channel
    Watts pIdleOther = 5.1;        ///< idle power, any other DIMM
    double beta = 0.19;            ///< W per GB/s of bypass traffic
    double gamma = 0.75;           ///< W per GB/s of local traffic
};

} // namespace memtherm

#endif // MEMTHERM_CORE_POWER_POWER_PARAMS_HH
