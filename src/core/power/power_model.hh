/**
 * @file
 * FBDIMM power models: DRAM chips (Eq. 3.1) and AMB (Eq. 3.2).
 */

#ifndef MEMTHERM_CORE_POWER_POWER_MODEL_HH
#define MEMTHERM_CORE_POWER_POWER_MODEL_HH

#include "core/power/dimm_traffic.hh"
#include "core/power/power_params.hh"

namespace memtherm
{

/**
 * Power of all DRAM chips on one DIMM (Eq. 3.1).
 */
class DramPowerModel
{
  public:
    explicit DramPowerModel(DramPowerParams p = {}) : params(p) {}

    /** Power given this DIMM's local read/write throughput. */
    Watts
    power(GBps local_read, GBps local_write) const
    {
        return params.pStatic + params.alphaRead * local_read +
               params.alphaWrite * local_write;
    }

    /** Power from a traffic record (bypass traffic does not heat DRAMs). */
    Watts
    power(const DimmTraffic &t) const
    {
        return power(t.localRead, t.localWrite);
    }

    const DramPowerParams &p() const { return params; }

  private:
    DramPowerParams params;
};

/**
 * Power of one AMB (Eq. 3.2).
 */
class AmbPowerModel
{
  public:
    explicit AmbPowerModel(AmbPowerParams p = {}) : params(p) {}

    /**
     * Power given bypass/local throughput.
     * @param last true when this is the farthest DIMM on the channel
     */
    Watts
    power(GBps bypass, GBps local, bool last) const
    {
        Watts idle = last ? params.pIdleLast : params.pIdleOther;
        return idle + params.beta * bypass + params.gamma * local;
    }

    /** Power from a traffic record. */
    Watts
    power(const DimmTraffic &t, bool last) const
    {
        return power(t.bypass(), t.local(), last);
    }

    const AmbPowerParams &p() const { return params; }

  private:
    AmbPowerParams params;
};

/** Combined AMB + DRAM power of one DIMM. */
struct DimmPower
{
    Watts amb = 0.0;
    Watts dram = 0.0;
    Watts total() const { return amb + dram; }
};

/**
 * Convenience model evaluating both components of one DIMM.
 */
class DimmPowerModel
{
  public:
    DimmPowerModel(DramPowerParams dp = {}, AmbPowerParams ap = {})
        : dram(dp), amb(ap)
    {}

    DimmPower
    power(const DimmTraffic &t, bool last) const
    {
        return {amb.power(t, last), dram.power(t)};
    }

    const DramPowerModel &dramModel() const { return dram; }
    const AmbPowerModel &ambModel() const { return amb; }

  private:
    DramPowerModel dram;
    AmbPowerModel amb;
};

} // namespace memtherm

#endif // MEMTHERM_CORE_POWER_POWER_MODEL_HH
