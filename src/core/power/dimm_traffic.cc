#include "core/power/dimm_traffic.hh"

#include <cmath>

#include "common/logging.hh"

namespace memtherm
{

void
decomposeChannelTraffic(GBps channel_read, GBps channel_write, int n_dimms,
                        const std::vector<double> &shares,
                        std::vector<DimmTraffic> &out)
{
    panicIfNot(n_dimms >= 1, "decomposeChannelTraffic: need >= 1 DIMM");
    panicIfNot(channel_read >= 0.0 && channel_write >= 0.0,
               "decomposeChannelTraffic: negative throughput");

    const double uniform = 1.0 / n_dimms;
    if (!shares.empty()) {
        panicIfNot(static_cast<int>(shares.size()) == n_dimms,
                   "decomposeChannelTraffic: share vector arity");
        double sum = 0.0;
        for (double f : shares) {
            // A NaN share fails the >= 0 test too, so non-finite vectors
            // cannot slip through as "negative traffic" downstream.
            panicIfNot(f >= 0.0,
                       "decomposeChannelTraffic: negative share");
            sum += f;
        }
        panicIfNot(std::abs(sum - 1.0) < 1e-9,
                   "decomposeChannelTraffic: shares must sum to 1");
    }

    out.resize(static_cast<std::size_t>(n_dimms));
    // Suffix sums: traffic for DIMMs beyond i is bypass at AMB i.
    double suffix_read = 0.0, suffix_write = 0.0;
    for (int i = n_dimms - 1; i >= 0; --i) {
        double frac = shares.empty() ? uniform
                                     : shares[static_cast<std::size_t>(i)];
        out[i].localRead = channel_read * frac;
        out[i].localWrite = channel_write * frac;
        out[i].bypassRead = suffix_read;
        out[i].bypassWrite = suffix_write;
        suffix_read += out[i].localRead;
        suffix_write += out[i].localWrite;
    }
}

std::vector<DimmTraffic>
decomposeChannelTraffic(GBps channel_read, GBps channel_write, int n_dimms,
                        const std::vector<double> &shares)
{
    std::vector<DimmTraffic> out;
    decomposeChannelTraffic(channel_read, channel_write, n_dimms, shares,
                            out);
    return out;
}

} // namespace memtherm
