#include "core/power/dimm_traffic.hh"

#include <cmath>

#include "common/logging.hh"

namespace memtherm
{

std::vector<DimmTraffic>
decomposeChannelTraffic(GBps channel_read, GBps channel_write, int n_dimms,
                        const std::vector<double> &shares)
{
    panicIfNot(n_dimms >= 1, "decomposeChannelTraffic: need >= 1 DIMM");
    panicIfNot(channel_read >= 0.0 && channel_write >= 0.0,
               "decomposeChannelTraffic: negative throughput");

    std::vector<double> frac(shares);
    if (frac.empty()) {
        frac.assign(n_dimms, 1.0 / n_dimms);
    } else {
        panicIfNot(static_cast<int>(frac.size()) == n_dimms,
                   "decomposeChannelTraffic: share vector arity");
        double sum = 0.0;
        for (double f : frac)
            sum += f;
        panicIfNot(std::abs(sum - 1.0) < 1e-9,
                   "decomposeChannelTraffic: shares must sum to 1");
    }

    std::vector<DimmTraffic> out(n_dimms);
    // Suffix sums: traffic for DIMMs beyond i is bypass at AMB i.
    double suffix_read = 0.0, suffix_write = 0.0;
    for (int i = n_dimms - 1; i >= 0; --i) {
        out[i].localRead = channel_read * frac[i];
        out[i].localWrite = channel_write * frac[i];
        out[i].bypassRead = suffix_read;
        out[i].bypassWrite = suffix_write;
        suffix_read += out[i].localRead;
        suffix_write += out[i].localWrite;
    }
    return out;
}

} // namespace memtherm
