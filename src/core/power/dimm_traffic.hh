/**
 * @file
 * Per-DIMM traffic decomposition on an FBDIMM channel.
 *
 * The four traffic categories of Fig. 3.2: local reads/writes terminate at
 * this DIMM's DRAMs; bypass reads/writes are forwarded along the daisy
 * chain on behalf of DIMMs farther from the memory controller.
 */

#ifndef MEMTHERM_CORE_POWER_DIMM_TRAFFIC_HH
#define MEMTHERM_CORE_POWER_DIMM_TRAFFIC_HH

#include <vector>

#include "common/units.hh"

namespace memtherm
{

/** Throughput seen by one AMB/DIMM, split into the Fig. 3.2 categories. */
struct DimmTraffic
{
    GBps localRead = 0.0;
    GBps localWrite = 0.0;
    GBps bypassRead = 0.0;
    GBps bypassWrite = 0.0;

    GBps local() const { return localRead + localWrite; }
    GBps bypass() const { return bypassRead + bypassWrite; }
};

/**
 * Decompose a channel's read/write throughput into per-DIMM traffic.
 *
 * DIMM 0 is closest to the memory controller. With the given per-DIMM
 * share vector (non-negative fractions summing to 1; uniform interleave
 * when empty — scenario files shape one via the `traffic_shape` knob),
 * traffic destined for DIMM j > i passes through AMB i as bypass traffic
 * (commands/write data southbound, read data northbound — both charged
 * once at data size, matching the paper's throughput bookkeeping).
 *
 * @param channel_read  total read throughput entering the channel (GB/s)
 * @param channel_write total write throughput entering the channel (GB/s)
 * @param n_dimms       DIMMs on the channel (>= 1)
 * @param shares        optional per-DIMM fraction of local traffic
 * @return per-DIMM traffic, index 0 nearest the controller
 */
std::vector<DimmTraffic>
decomposeChannelTraffic(GBps channel_read, GBps channel_write, int n_dimms,
                        const std::vector<double> &shares = {});

/**
 * Allocation-free variant: resizes @p out to n_dimms (no-op once warm)
 * and fills it in place. The per-step thermal hot path uses this with a
 * reused scratch buffer.
 */
void decomposeChannelTraffic(GBps channel_read, GBps channel_write,
                             int n_dimms, const std::vector<double> &shares,
                             std::vector<DimmTraffic> &out);

} // namespace memtherm

#endif // MEMTHERM_CORE_POWER_DIMM_TRAFFIC_HH
