/**
 * @file
 * Chapter 5 testbed emulation: the Dell PowerEdge 1950 and the
 * instrumented Intel SR1500AL (Section 5.3.1), expressed as integrated-
 * thermal-model configurations.
 *
 * The real machines are replaced by calibrated platform descriptors (the
 * DESIGN.md substitution S12): memory organization, layout-dependent
 * CPU->memory thermal coupling, platform cooling resistances, Xeon 5160
 * DVFS states, the activity-based CPU power model, thermal sensor
 * quantization/noise, and the Table 5.1 emergency tables. Calibration
 * anchors (paper -> model): SR1500AL idles near 80 C and rockets past
 * 100 C on swim/mgrid (Fig. 5.4); PE1950 peaks in the mid-90s with no
 * DTM (Fig. 5.5); CPU preheat of the memory inlet is ~10 C (Fig. 5.9).
 */

#ifndef MEMTHERM_TESTBED_PLATFORM_HH
#define MEMTHERM_TESTBED_PLATFORM_HH

#include <memory>
#include <string>
#include <vector>

#include "core/sim/engine.hh"
#include "core/sim/experiment.hh"

namespace memtherm
{

/**
 * A Chapter 5 server testbed.
 */
struct Platform
{
    std::string name;
    SimConfig sim;                   ///< fully configured simulator setup
    Celsius ambTdp = 100.0;          ///< (artificial) AMB TDP
    std::vector<Celsius> ambBounds;  ///< Table 5.1 emergency boundaries
    std::vector<GBps> bwCaps;        ///< DTM-BW caps per level (L1..L4)
    GBps safetyCap = 3.0;            ///< open-loop cap at the top level
};

/**
 * Dell PowerEdge 1950: two 2GB FBDIMMs on one channel, stand-alone in an
 * air-conditioned room (26 C), artificial AMB TDP of 90 C, processors
 * slightly misaligned with the DIMMs (weaker thermal coupling).
 */
Platform pe1950();

/**
 * Intel SR1500AL: four 2GB FBDIMMs, hot-box enclosure (default 36 C
 * system ambient), conservative AMB TDP of 100 C, one processor in line
 * with the DIMMs (strong thermal coupling).
 *
 * @param system_ambient hot-box setpoint; Section 5.4.5 also uses 26 C
 * @param amb_tdp        100 C default; 90 C for the Fig. 5.12 experiment
 */
Platform sr1500al(Celsius system_ambient = 36.0, Celsius amb_tdp = 100.0);

/**
 * Construct a Chapter 5 policy for a platform: "No-limit", "DTM-BW",
 * "DTM-ACG", "DTM-CDVFS" or "DTM-COMB" (Section 5.2.2).
 *
 * @param dvfs_floor lowest DVFS level the policy may select (used by the
 *                   Fig. 5.13 low-frequency experiments: 3 pins 2.0 GHz)
 */
std::unique_ptr<DtmPolicy> makeCh5Policy(const Platform &p,
                                         const std::string &name,
                                         std::size_t dvfs_floor = 0);

/**
 * ExperimentEngine policy factory for a platform's Chapter 5 lineup.
 * The platform is captured by value so engine runs never dangle.
 *
 * @param dvfs_floor see makeCh5Policy()
 */
PolicyFactory ch5PolicyFactory(const Platform &p, std::size_t dvfs_floor = 0);

/**
 * Build one engine run for a (platform, workload, policy) triple,
 * applying the paper's protocol tweaks: the SR1500AL no-limit baseline
 * runs at a 26 C room ambient instead of the hot box (Section 5.4.2).
 *
 * @param copies     batch depth override (<= 0 keeps the platform's)
 * @param dvfs_floor see makeCh5Policy()
 */
ExperimentEngine::Run ch5EngineRun(const Platform &p, const Workload &w,
                                   const std::string &policy_name,
                                   int copies = 0,
                                   std::size_t dvfs_floor = 0);

/**
 * Run workloads x policies on a platform, fanned out over the parallel
 * ExperimentEngine (MEMTHERM_THREADS). No-limit runs follow the paper's
 * protocol: the SR1500AL no-limit baseline runs at a 26 C room ambient
 * instead of the hot box (Section 5.4.2).
 */
SuiteResults runCh5Suite(const Platform &p,
                         const std::vector<Workload> &workloads,
                         const std::vector<std::string> &policy_names);

/** The Chapter 5 policy lineup. */
std::vector<std::string> ch5PolicyNames();

} // namespace memtherm

#endif // MEMTHERM_TESTBED_PLATFORM_HH
