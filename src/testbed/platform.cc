#include "testbed/platform.hh"

#include "common/logging.hh"
#include "core/dtm/basic_policies.hh"

namespace memtherm
{

namespace
{

/** Common Chapter 5 simulator knobs (Section 5.2.1 mechanisms). */
void
applyCh5Defaults(SimConfig &cfg)
{
    cfg.dvfs = xeon5160Dvfs();
    cfg.nCores = 4;
    cfg.perSocketL2 = true; // two dual-core sockets, one L2 each
    cfg.window = 0.1;
    cfg.dtmInterval = 1.0;  // the policy daemon wakes once per second
    cfg.dtmOverhead = 0.0;  // "overhead is virtually non-existent"
    cfg.rotationSlice = 0.1; // default Linux time slice (100 ms)
    // AMB sensors update every 1344 bus cycles and are noisy (high
    // spikes are visible in Fig. 5.4); readings quantize to 0.5 C.
    cfg.sensorNoiseSigma = 0.2;
    cfg.sensorQuant = 0.5;
    // Xeon 5160 pair: idle-dominated power, dynamic part follows
    // V^2 * f * activity (calibrated to the -15.5% CDVFS saving of
    // Section 5.4.4).
    cfg.cpuPowerActivity = ActivityCpuPowerModel(xeon5160Dvfs(), 2,
                                                 35.0, 25.0, 1.0);
    cfg.copiesPerApp = 10;
    cfg.traceSample = 1.0;
}

} // namespace

Platform
pe1950()
{
    Platform p;
    p.name = "PE1950";
    p.ambTdp = 90.0; // artificial TDP (Section 5.3.1)
    p.ambBounds = {76.0, 80.0, 84.0, 88.0};
    p.bwCaps = {std::numeric_limits<double>::infinity(), 4.0, 3.0, 2.0};
    p.safetyCap = 2.0;

    SimConfig cfg;
    applyCh5Defaults(cfg);
    cfg.org = MemoryOrgConfig{1, 2}; // one channel, two DIMMs

    // Platform cooling calibration (see file header): no-DTM stable in
    // the mid-90s at full load, ~60 C idle in the 26 C room.
    CoolingConfig cooling;
    cooling.spreader = HeatSpreader::AOHS;
    cooling.velocity = AirVelocity::MPS_1_5;
    cooling.psiAmb = 5.2;
    cooling.psiDramToAmb = 5.6;
    cooling.psiDram = 3.0;
    cooling.psiAmbToDram = 4.0;
    cooling.tauAmb = 50.0;
    cooling.tauDram = 100.0;
    cfg.cooling = cooling;

    AmbientParams amb;
    amb.tInlet = 26.0;
    amb.psiCpuMemXi = 0.0;
    amb.psiCpuPower = 0.08; // CPUs slightly misaligned with the DIMMs
    amb.tauCpuDram = 20.0;
    cfg.ambient = amb;

    // FSB-attached single FBDIMM channel.
    cfg.memPerf.peakBandwidth = 4.5;
    cfg.memPerf.idleLatencyNs = 120.0;

    cfg.limits.ambTdp = p.ambTdp;
    cfg.limits.ambTrp = p.ambTdp - 1.0;
    cfg.limits.dramTdp = 85.0;
    cfg.limits.dramTrp = 84.0;

    p.sim = cfg;
    return p;
}

Platform
sr1500al(Celsius system_ambient, Celsius amb_tdp)
{
    Platform p;
    p.name = "SR1500AL";
    p.ambTdp = amb_tdp;
    // Table 5.1 boundaries step down four degrees per level from a
    // two-degree margin below the TDP.
    Celsius top = amb_tdp - 2.0;
    p.ambBounds = {top - 12.0, top - 8.0, top - 4.0, top};
    p.bwCaps = {std::numeric_limits<double>::infinity(), 5.0, 4.0, 3.0};
    p.safetyCap = 3.0;

    SimConfig cfg;
    applyCh5Defaults(cfg);
    cfg.org = MemoryOrgConfig{1, 4}; // one channel, four DIMMs

    CoolingConfig cooling;
    cooling.spreader = HeatSpreader::AOHS;
    cooling.velocity = AirVelocity::MPS_1_5;
    cooling.psiAmb = 6.0;
    cooling.psiDramToAmb = 5.5;
    cooling.psiDram = 3.0;
    cooling.psiAmbToDram = 4.0;
    cooling.tauAmb = 50.0;
    cooling.tauDram = 100.0;
    cfg.cooling = cooling;

    AmbientParams amb;
    amb.tInlet = system_ambient;
    amb.psiCpuMemXi = 0.0;
    amb.psiCpuPower = 0.13; // one CPU directly upstream of the DIMMs
    amb.tauCpuDram = 20.0;
    cfg.ambient = amb;

    cfg.memPerf.peakBandwidth = 6.4;
    cfg.memPerf.idleLatencyNs = 120.0;

    cfg.limits.ambTdp = p.ambTdp;
    cfg.limits.ambTrp = p.ambTdp - 1.0;
    cfg.limits.dramTdp = 85.0;
    cfg.limits.dramTrp = 84.0;

    p.sim = cfg;
    return p;
}

std::unique_ptr<DtmPolicy>
makeCh5Policy(const Platform &p, const std::string &name,
              std::size_t dvfs_floor)
{
    if (name == "No-limit")
        return std::make_unique<NoLimitPolicy>();

    // DRAM devices are never the Chapter 5 hot spot ("the memory hot
    // spots are AMBs"); park the DRAM boundaries far out of reach.
    EmergencyLevels levels(p.ambBounds, {200.0, 210.0, 220.0, 230.0});
    Celsius release = p.ambBounds.back(); // top level never latches

    auto act = [&](GBps cap, int cores, std::size_t dvfs) {
        DtmAction a;
        a.memoryOn = true;
        a.bandwidthCap = cap;
        a.activeCores = cores;
        a.dvfsLevel = std::max(dvfs, dvfs_floor);
        return a;
    };
    constexpr double kInf = std::numeric_limits<double>::infinity();
    const auto &caps = p.bwCaps;

    if (name == "DTM-BW") {
        return std::make_unique<LeveledPolicy>(
            "DTM-BW", levels,
            std::vector<DtmAction>{act(caps[0], 4, 0), act(caps[1], 4, 0),
                                   act(caps[2], 4, 0), act(caps[3], 4, 0),
                                   act(p.safetyCap, 4, 0)},
            release, 199.0);
    }
    if (name == "DTM-ACG") {
        // At least one core per socket stays up to keep both L2s in use
        // (Section 5.2.2); the top level adds the open-loop safety cap.
        return std::make_unique<LeveledPolicy>(
            "DTM-ACG", levels,
            std::vector<DtmAction>{act(kInf, 4, 0), act(kInf, 3, 0),
                                   act(kInf, 2, 0),
                                   act(p.safetyCap, 2, 0),
                                   act(p.safetyCap, 2, 0)},
            release, 199.0);
    }
    if (name == "DTM-CDVFS") {
        return std::make_unique<LeveledPolicy>(
            "DTM-CDVFS", levels,
            std::vector<DtmAction>{act(kInf, 4, 0), act(kInf, 4, 1),
                                   act(kInf, 4, 2),
                                   act(p.safetyCap, 4, 3),
                                   act(p.safetyCap, 4, 3)},
            release, 199.0);
    }
    if (name == "Safety") {
        // No DTM policy; only the chipset's open-loop row-activation cap
        // engages near the TDP (the Fig. 5.4 measurement protocol).
        EmergencyLevels guard({p.ambTdp - 0.5, p.ambTdp - 0.3,
                               p.ambTdp - 0.1, p.ambTdp},
                              {200.0, 210.0, 220.0, 230.0});
        return std::make_unique<LeveledPolicy>(
            "Safety", guard,
            std::vector<DtmAction>{act(kInf, 4, 0), act(kInf, 4, 0),
                                   act(kInf, 4, 0),
                                   act(p.safetyCap, 4, 0),
                                   act(p.safetyCap, 4, 0)},
            p.ambTdp - 0.5, 199.0);
    }
    if (name == "DTM-COMB") {
        return std::make_unique<LeveledPolicy>(
            "DTM-COMB", levels,
            std::vector<DtmAction>{act(kInf, 4, 0), act(kInf, 3, 1),
                                   act(kInf, 2, 2),
                                   act(p.safetyCap, 2, 3),
                                   act(p.safetyCap, 2, 3)},
            release, 199.0);
    }
    fatal("makeCh5Policy: unknown policy '" + name + "'");
}

PolicyFactory
ch5PolicyFactory(const Platform &p, std::size_t dvfs_floor)
{
    return [p, dvfs_floor](const SimConfig &, const std::string &name) {
        return makeCh5Policy(p, name, dvfs_floor);
    };
}

ExperimentEngine::Run
ch5EngineRun(const Platform &p, const Workload &w,
             const std::string &policy_name, int copies,
             std::size_t dvfs_floor)
{
    SimConfig cfg = p.sim;
    if (copies > 0)
        cfg.copiesPerApp = copies;
    // The SR1500AL no-limit baseline runs at a 26 C room ambient.
    if (policy_name == "No-limit" && cfg.ambient.tInlet > 26.0)
        cfg.ambient.tInlet = 26.0;
    return {std::move(cfg), w, policy_name, ch5PolicyFactory(p, dvfs_floor)};
}

SuiteResults
runCh5Suite(const Platform &p, const std::vector<Workload> &workloads,
            const std::vector<std::string> &policy_names)
{
    std::vector<ExperimentEngine::Run> runs;
    runs.reserve(workloads.size() * policy_names.size());
    for (const auto &w : workloads)
        for (const auto &pname : policy_names)
            runs.push_back(ch5EngineRun(p, w, pname));

    ExperimentEngine engine;
    std::vector<SimResult> results = engine.run(runs);

    SuiteResults out;
    std::size_t k = 0;
    for (const auto &w : workloads)
        for (const auto &pname : policy_names)
            out[w.name][pname] = std::move(results[k++]);
    return out;
}

std::vector<std::string>
ch5PolicyNames()
{
    return {"DTM-BW", "DTM-ACG", "DTM-CDVFS", "DTM-COMB"};
}

} // namespace memtherm
