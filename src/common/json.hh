/**
 * @file
 * Minimal JSON value: parse, build, serialize.
 *
 * One serialization path for everything memtherm writes or reads as
 * JSON — scenario files (core/sim/scenario.hh), result dumps, and the
 * perf-smoke trajectory file. Deliberately small: no SAX interface, no
 * comments, no NaN/Inf extensions. Design goals:
 *
 *  - Lossless round-trips: objects preserve insertion order and numbers
 *    serialize via shortest-round-trip formatting (std::to_chars), so
 *    parse -> dump -> parse reproduces the original value exactly.
 *  - Proper string escaping (control characters, quotes, backslashes)
 *    on output; \uXXXX escapes (including surrogate pairs) on input.
 *  - Errors are FatalError (common/logging.hh) with line:column context,
 *    so callers and tests can catch misconfiguration uniformly.
 */

#ifndef MEMTHERM_COMMON_JSON_HH
#define MEMTHERM_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace memtherm
{

/**
 * A JSON document node. Numbers are stored as double (integers within
 * 2^53 print without a decimal point); objects keep insertion order.
 */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    /// Ordered key/value storage of an object node.
    using Members = std::vector<std::pair<std::string, Json>>;

    Json() : ty(Type::Null) {}
    Json(bool b) : ty(Type::Bool), boolean(b) {}
    Json(double v) : ty(Type::Number), number(v) {}
    Json(int v) : ty(Type::Number), number(v) {}
    Json(std::int64_t v) : ty(Type::Number),
                           number(static_cast<double>(v)) {}
    Json(std::uint64_t v) : ty(Type::Number),
                            number(static_cast<double>(v)) {}
    Json(const char *s) : ty(Type::String), str(s) {}
    Json(std::string s) : ty(Type::String), str(std::move(s)) {}

    /** Empty array node. */
    static Json array() { Json j; j.ty = Type::Array; return j; }
    /** Empty object node. */
    static Json object() { Json j; j.ty = Type::Object; return j; }

    Type type() const { return ty; }
    bool isNull() const { return ty == Type::Null; }
    bool isBool() const { return ty == Type::Bool; }
    bool isNumber() const { return ty == Type::Number; }
    bool isString() const { return ty == Type::String; }
    bool isArray() const { return ty == Type::Array; }
    bool isObject() const { return ty == Type::Object; }

    /** Typed accessors; fatal() on a type mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<Json> &asArray() const;
    const Members &asObject() const;

    /** Append to an array node (converts a Null node to an array). */
    Json &push(Json v);

    /**
     * Set (or overwrite) an object member; converts a Null node to an
     * object. Returns *this so building chains.
     */
    Json &set(const std::string &key, Json v);

    /** Member lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;

    /** Member lookup; fatal() (naming the key) when absent. */
    const Json &at(const std::string &key) const;

    /** Deep structural equality (object member order matters). */
    bool operator==(const Json &o) const;
    bool operator!=(const Json &o) const { return !(*this == o); }

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces per
     * level; 0 emits the compact single-line form. A trailing newline is
     * appended when pretty-printing (files end in \n).
     */
    std::string dump(int indent = 2) const;

    /** Parse a complete document; FatalError with line:col on errors. */
    static Json parse(const std::string &text);

    /** Read and parse a file; FatalError on I/O or syntax errors. */
    static Json load(const std::string &path);

    /**
     * dump() to a file; FatalError on I/O errors. The write is
     * crash-atomic (write to "<path>.tmp", then rename), so a killed
     * process never leaves a truncated document at @p path.
     */
    void save(const std::string &path, int indent = 2) const;

    /**
     * The number formatting dump() uses: shortest decimal form that
     * round-trips the double exactly; integers within the exactly-
     * representable range print without a decimal point. Shared so
     * other layers (e.g. sweep-point labels) render numbers the same
     * way. FatalError on non-finite values.
     */
    static std::string numberToString(double v);

  private:
    void write(std::string &out, int indent, int depth) const;

    Type ty;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Json> arr;
    Members obj;
};

} // namespace memtherm

#endif // MEMTHERM_COMMON_JSON_HH
