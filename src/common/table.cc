#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace memtherm
{

Table::Table(std::string title, std::vector<std::string> headers)
    : heading(std::move(title)), columns(std::move(headers))
{
    panicIfNot(!columns.empty(), "Table: need at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    panicIfNot(row.size() == columns.size(),
               "Table: row arity does not match header");
    body.push_back(std::move(row));
}

std::string
Table::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(columns.size());
    for (std::size_t c = 0; c < columns.size(); ++c)
        width[c] = columns[c].size();
    for (const auto &row : body)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    os << "== " << heading << " ==\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emit(columns);
    std::size_t total = 0;
    for (std::size_t c = 0; c < columns.size(); ++c)
        total += width[c] + (c + 1 < columns.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : body)
        emit(row);
    os << '\n';
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    emit(columns);
    for (const auto &row : body)
        emit(row);
}

} // namespace memtherm
