/**
 * @file
 * Plain-text table printer used by the bench harness to emit paper-style
 * rows (aligned columns on stdout, optional CSV).
 */

#ifndef MEMTHERM_COMMON_TABLE_HH
#define MEMTHERM_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace memtherm
{

/**
 * Column-aligned table with a title and a header row.
 */
class Table
{
  public:
    /** Construct with a title and column headers. */
    Table(std::string title, std::vector<std::string> headers);

    /** Append a fully formed row; must match header arity. */
    void addRow(std::vector<std::string> row);

    /** Helper: format a double with @p digits decimals. */
    static std::string num(double v, int digits = 3);

    /** Render aligned text to @p os. */
    void print(std::ostream &os) const;

    /** Render CSV (header + rows) to @p os. */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return body.size(); }

  private:
    std::string heading;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> body;
};

} // namespace memtherm

#endif // MEMTHERM_COMMON_TABLE_HH
