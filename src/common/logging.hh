/**
 * @file
 * Error/status reporting helpers in the gem5 spirit.
 *
 * panic()  — an internal invariant was violated (a memtherm bug); aborts.
 * fatal()  — the simulation cannot continue due to user input; exits(1).
 * warn()   — something is suspicious but the run continues.
 * inform() — plain status output.
 */

#ifndef MEMTHERM_COMMON_LOGGING_HH
#define MEMTHERM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace memtherm
{

/** Exception thrown by fatal() so tests can catch misconfiguration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown by panic() so tests can assert on invariant checks. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/**
 * Report an internal invariant violation. Throws PanicError; callers are
 * not expected to recover (tests may catch it).
 */
[[noreturn]] inline void
panic(const std::string &msg,
      std::source_location loc = std::source_location::current())
{
    throw PanicError("panic: " + msg + " [" + loc.file_name() + ":" +
                     std::to_string(loc.line()) + "]");
}

/** Report an unrecoverable user/configuration error. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

/** Report a suspicious-but-survivable condition to stderr. */
inline void
warn(std::string_view msg)
{
    std::cerr << "warn: " << msg << '\n';
}

/** Report normal operating status to stdout. */
inline void
inform(std::string_view msg)
{
    std::cout << "info: " << msg << '\n';
}

/** panic() unless the condition holds. */
inline void
panicIfNot(bool cond, const std::string &msg,
           std::source_location loc = std::source_location::current())
{
    if (!cond)
        panic(msg, loc);
}

} // namespace memtherm

#endif // MEMTHERM_COMMON_LOGGING_HH
