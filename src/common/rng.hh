/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * memtherm experiments must be exactly reproducible, so all stochastic
 * components (sensor noise, synthetic address streams, workload phase
 * jitter) draw from an explicitly seeded SplitMix64/xoshiro-style
 * generator rather than std::random_device.
 */

#ifndef MEMTHERM_COMMON_RNG_HH
#define MEMTHERM_COMMON_RNG_HH

#include <cstdint>
#include <limits>

namespace memtherm
{

/**
 * Small, fast, deterministic RNG (splitmix64 core). Not cryptographic;
 * statistically solid for simulation use.
 */
class Rng
{
  public:
    /** Construct with an explicit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state(seed ? seed : 0x1ULL)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return next() % n;
    }

    /**
     * Approximately normal deviate (mean 0, stddev 1) via the sum of 12
     * uniforms — adequate for sensor-noise emulation and very fast.
     */
    double
    gaussian()
    {
        double s = 0.0;
        for (int i = 0; i < 12; ++i)
            s += uniform();
        return s - 6.0;
    }

  private:
    std::uint64_t state;
};

} // namespace memtherm

#endif // MEMTHERM_COMMON_RNG_HH
