#include "common/stats.hh"

#include <cmath>

#include "common/logging.hh"

namespace memtherm
{

void
Accumulator::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        if (x < lo)
            lo = x;
        if (x > hi)
            hi = x;
    }
    ++n;
    total += x;
    double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    double delta = other.mu - mu;
    std::size_t tot = n + other.n;
    double nf = static_cast<double>(n);
    double of = static_cast<double>(other.n);
    mu += delta * of / static_cast<double>(tot);
    m2 += other.m2 + delta * delta * nf * of / static_cast<double>(tot);
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
    total += other.total;
    n = tot;
}

double
Accumulator::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

double
correlation(const std::vector<double> &xs, const std::vector<double> &ys)
{
    panicIfNot(xs.size() == ys.size(), "correlation: length mismatch");
    if (xs.size() < 2)
        return 0.0;
    Accumulator ax, ay;
    for (double x : xs)
        ax.add(x);
    for (double y : ys)
        ay.add(y);
    double cov = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i)
        cov += (xs[i] - ax.mean()) * (ys[i] - ay.mean());
    cov /= static_cast<double>(xs.size());
    double denom = ax.stddev() * ay.stddev();
    if (denom == 0.0)
        return 0.0;
    return cov / denom;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs) {
        panicIfNot(x > 0.0, "geomean: non-positive input");
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

} // namespace memtherm
