/**
 * @file
 * Uniformly sampled time series with integration/resampling helpers.
 *
 * Used for temperature traces (Figs. 4.5–4.8, 5.4) and power traces whose
 * time integrals give energies (Figs. 4.9, 4.10, 5.11).
 */

#ifndef MEMTHERM_COMMON_TIME_SERIES_HH
#define MEMTHERM_COMMON_TIME_SERIES_HH

#include <cstddef>
#include <vector>

#include "common/units.hh"

namespace memtherm
{

/**
 * A sequence of samples taken at a fixed period starting at time 0.
 */
class TimeSeries
{
  public:
    /** Construct an empty series with the given sampling period. */
    explicit TimeSeries(Seconds period);

    /** Append one sample. */
    void add(double value);

    /** Sampling period in seconds. */
    Seconds period() const { return dt; }
    /** Number of samples. */
    std::size_t size() const { return samples.size(); }
    bool empty() const { return samples.empty(); }
    /** Covered time span: size() * period(). */
    Seconds duration() const;
    /** Sample i (0-based). */
    double at(std::size_t i) const;
    /** Timestamp of sample i (end of its interval). */
    Seconds timeAt(std::size_t i) const;
    /** All samples. */
    const std::vector<double> &values() const { return samples; }

    /** Left-Riemann time integral (e.g. watts -> joules). */
    double integral() const;
    /** Mean of all samples. */
    double mean() const;
    /** Max of all samples (0 when empty). */
    double max() const;

    /**
     * Downsample by averaging consecutive groups of @p factor samples
     * (the tail partial group is averaged too).
     */
    TimeSeries downsample(std::size_t factor) const;

  private:
    Seconds dt;
    std::vector<double> samples;
};

} // namespace memtherm

#endif // MEMTHERM_COMMON_TIME_SERIES_HH
