/**
 * @file
 * Unit conventions used throughout memtherm.
 *
 * The library standardizes on:
 *   - time        : seconds (double) for thermal-scale time,
 *                   Tick (uint64_t picoseconds) for DRAM-cycle-scale time
 *   - temperature : degrees Celsius (double)
 *   - power       : watts (double)
 *   - energy      : joules (double)
 *   - throughput  : GB/s (double) — matching the paper's coefficients,
 *                   which are expressed in W/(GB/s)
 *
 * Thin named aliases document intent at API boundaries without imposing a
 * heavyweight unit system on arithmetic-dense model code.
 */

#ifndef MEMTHERM_COMMON_UNITS_HH
#define MEMTHERM_COMMON_UNITS_HH

#include <cstdint>

namespace memtherm
{

using Seconds = double;      ///< wall/simulated time at thermal scale
using Celsius = double;      ///< temperature
using Watts = double;        ///< power
using Joules = double;       ///< energy
using GBps = double;         ///< memory throughput, gigabytes per second
using Volts = double;        ///< supply voltage
using GHz = double;          ///< clock frequency

/** DRAM-scale simulation time: integer picoseconds. */
using Tick = std::uint64_t;

/** Ticks per common time units. */
constexpr Tick tickPerNs = 1000;
constexpr Tick tickPerUs = 1000 * tickPerNs;
constexpr Tick tickPerMs = 1000 * tickPerUs;
constexpr Tick tickPerSec = 1000 * tickPerMs;

/** Convert nanoseconds to ticks. */
constexpr Tick
nsToTick(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(tickPerNs));
}

/** Convert ticks to seconds. */
constexpr Seconds
tickToSec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickPerSec);
}

/** Bytes per gigabyte (decimal, as used in GB/s throughput). */
constexpr double bytesPerGB = 1e9;

} // namespace memtherm

#endif // MEMTHERM_COMMON_UNITS_HH
