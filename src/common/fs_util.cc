#include "common/fs_util.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/logging.hh"

namespace memtherm
{

void
atomicWriteFile(const std::string &path, const std::string &content)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("cannot open '" + tmp + "' for writing");
        out << content;
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            fatal("write to '" + tmp + "' failed");
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::remove(tmp.c_str());
        fatal("cannot rename '" + tmp + "' to '" + path +
              "': " + ec.message());
    }
}

} // namespace memtherm
