#include "common/time_series.hh"

#include <algorithm>

#include "common/logging.hh"

namespace memtherm
{

TimeSeries::TimeSeries(Seconds period) : dt(period)
{
    panicIfNot(period > 0.0, "TimeSeries: period must be positive");
}

void
TimeSeries::add(double value)
{
    samples.push_back(value);
}

Seconds
TimeSeries::duration() const
{
    return dt * static_cast<double>(samples.size());
}

double
TimeSeries::at(std::size_t i) const
{
    panicIfNot(i < samples.size(), "TimeSeries: index out of range");
    return samples[i];
}

Seconds
TimeSeries::timeAt(std::size_t i) const
{
    panicIfNot(i < samples.size(), "TimeSeries: index out of range");
    return dt * static_cast<double>(i + 1);
}

double
TimeSeries::integral() const
{
    double acc = 0.0;
    for (double v : samples)
        acc += v;
    return acc * dt;
}

double
TimeSeries::mean() const
{
    if (samples.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : samples)
        acc += v;
    return acc / static_cast<double>(samples.size());
}

double
TimeSeries::max() const
{
    if (samples.empty())
        return 0.0;
    return *std::max_element(samples.begin(), samples.end());
}

TimeSeries
TimeSeries::downsample(std::size_t factor) const
{
    panicIfNot(factor > 0, "TimeSeries: downsample factor must be > 0");
    TimeSeries out(dt * static_cast<double>(factor));
    std::size_t i = 0;
    while (i < samples.size()) {
        std::size_t end = std::min(i + factor, samples.size());
        double acc = 0.0;
        for (std::size_t j = i; j < end; ++j)
            acc += samples[j];
        out.add(acc / static_cast<double>(end - i));
        i = end;
    }
    return out;
}

} // namespace memtherm
