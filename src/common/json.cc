#include "common/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>

#include "common/fs_util.hh"
#include "common/logging.hh"

namespace memtherm
{

namespace
{

const char *
typeName(Json::Type t)
{
    switch (t) {
      case Json::Type::Null: return "null";
      case Json::Type::Bool: return "bool";
      case Json::Type::Number: return "number";
      case Json::Type::String: return "string";
      case Json::Type::Array: return "array";
      case Json::Type::Object: return "object";
    }
    return "?";
}

/** Append one string with JSON escaping. */
void
writeString(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

/** Shortest representation that round-trips the double exactly. */
void
writeNumber(std::string &out, double v)
{
    if (!std::isfinite(v))
        fatal("json: cannot serialize a non-finite number");
    // Integers within the exactly-representable range print without a
    // decimal point ("4", not "4.0") — scenario files stay readable.
    if (v == std::floor(v) && std::abs(v) < 9007199254740992.0) {
        char buf[32];
        auto r = std::to_chars(buf, buf + sizeof(buf),
                               static_cast<long long>(v));
        out.append(buf, r.ptr);
        return;
    }
    char buf[40];
    auto r = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, r.ptr);
}

/** Recursive-descent parser over a complete text. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    Json
    document()
    {
        Json v = value();
        skipWs();
        if (pos != s.size())
            fail("trailing characters after JSON value");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos && i < s.size(); ++i) {
            if (s[i] == '\n') { ++line; col = 1; } else { ++col; }
        }
        fatal("json: " + what + " at line " + std::to_string(line) +
              ":" + std::to_string(col));
    }

    void
    skipWs()
    {
        while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                                  s[pos] == '\n' || s[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= s.size())
            fail("unexpected end of input");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (pos >= s.size() || s[pos] != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consume(const char *lit)
    {
        std::size_t n = std::string_view(lit).size();
        if (s.compare(pos, n, lit) != 0)
            return false;
        pos += n;
        return true;
    }

    Json
    value()
    {
        skipWs();
        char c = peek();
        // Containers recurse; a depth cap turns pathological nesting
        // (fuzzers love "[[[[...") into a diagnostic instead of stack
        // exhaustion. Real documents nest a handful of levels.
        if ((c == '{' || c == '[') && ++depth > kMaxDepth)
            fail("nesting deeper than " + std::to_string(kMaxDepth) +
                 " levels");
        if (c == '{') { Json v = objectValue(); --depth; return v; }
        if (c == '[') { Json v = arrayValue(); --depth; return v; }
        if (c == '"') return Json(stringValue());
        if (c == '-' || (c >= '0' && c <= '9')) return numberValue();
        if (consume("true")) return Json(true);
        if (consume("false")) return Json(false);
        if (consume("null")) return Json();
        fail("unexpected character");
    }

    Json
    objectValue()
    {
        expect('{');
        Json obj = Json::object();
        skipWs();
        if (peek() == '}') { ++pos; return obj; }
        while (true) {
            skipWs();
            if (peek() != '"')
                fail("expected object key string");
            std::string key = stringValue();
            skipWs();
            expect(':');
            obj.set(key, value());
            skipWs();
            char c = peek();
            if (c == ',') { ++pos; continue; }
            if (c == '}') { ++pos; return obj; }
            fail("expected ',' or '}' in object");
        }
    }

    Json
    arrayValue()
    {
        expect('[');
        Json arr = Json::array();
        skipWs();
        if (peek() == ']') { ++pos; return arr; }
        while (true) {
            arr.push(value());
            skipWs();
            char c = peek();
            if (c == ',') { ++pos; continue; }
            if (c == ']') { ++pos; return arr; }
            fail("expected ',' or ']' in array");
        }
    }

    unsigned
    hex4()
    {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos >= s.size())
                fail("unterminated \\u escape");
            char c = s[pos++];
            v <<= 4;
            if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid \\u escape digit");
        }
        return v;
    }

    void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    std::string
    stringValue()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= s.size())
                fail("unterminated string");
            char c = s[pos++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= s.size())
                fail("unterminated escape");
            char e = s[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  unsigned cp = hex4();
                  if (cp >= 0xdc00 && cp <= 0xdfff)
                      fail("unpaired low surrogate in \\u escape");
                  if (cp >= 0xd800 && cp <= 0xdbff) {
                      // Surrogate pair.
                      if (!consume("\\u"))
                          fail("unpaired surrogate in \\u escape");
                      unsigned lo = hex4();
                      if (lo < 0xdc00 || lo > 0xdfff)
                          fail("invalid low surrogate in \\u escape");
                      cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                  }
                  appendUtf8(out, cp);
                  break;
              }
              default:
                fail("invalid escape character");
            }
        }
    }

    Json
    numberValue()
    {
        std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-'))
            ++pos;
        double v = 0.0;
        auto r = std::from_chars(s.data() + start, s.data() + pos, v);
        if (r.ec != std::errc{} || r.ptr != s.data() + pos) {
            pos = start;
            fail("invalid number");
        }
        return Json(v);
    }

    /// See value(): containers past this depth are refused, not parsed.
    static constexpr int kMaxDepth = 256;

    const std::string &s;
    std::size_t pos = 0;
    int depth = 0;
};

} // namespace

bool
Json::asBool() const
{
    if (ty != Type::Bool)
        fatal(std::string("json: expected bool, have ") + typeName(ty));
    return boolean;
}

double
Json::asNumber() const
{
    if (ty != Type::Number)
        fatal(std::string("json: expected number, have ") + typeName(ty));
    return number;
}

const std::string &
Json::asString() const
{
    if (ty != Type::String)
        fatal(std::string("json: expected string, have ") + typeName(ty));
    return str;
}

const std::vector<Json> &
Json::asArray() const
{
    if (ty != Type::Array)
        fatal(std::string("json: expected array, have ") + typeName(ty));
    return arr;
}

const Json::Members &
Json::asObject() const
{
    if (ty != Type::Object)
        fatal(std::string("json: expected object, have ") + typeName(ty));
    return obj;
}

Json &
Json::push(Json v)
{
    if (ty == Type::Null)
        ty = Type::Array;
    if (ty != Type::Array)
        fatal(std::string("json: push() on a ") + typeName(ty));
    arr.push_back(std::move(v));
    return *this;
}

Json &
Json::set(const std::string &key, Json v)
{
    if (ty == Type::Null)
        ty = Type::Object;
    if (ty != Type::Object)
        fatal(std::string("json: set() on a ") + typeName(ty));
    for (auto &[k, existing] : obj) {
        if (k == key) {
            existing = std::move(v);
            return *this;
        }
    }
    obj.emplace_back(key, std::move(v));
    return *this;
}

const Json *
Json::find(const std::string &key) const
{
    if (ty != Type::Object)
        return nullptr;
    for (const auto &[k, v] : obj)
        if (k == key)
            return &v;
    return nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *v = find(key);
    if (!v)
        fatal("json: missing member '" + key + "'");
    return *v;
}

bool
Json::operator==(const Json &o) const
{
    if (ty != o.ty)
        return false;
    switch (ty) {
      case Type::Null: return true;
      case Type::Bool: return boolean == o.boolean;
      case Type::Number: return number == o.number;
      case Type::String: return str == o.str;
      case Type::Array: return arr == o.arr;
      case Type::Object: return obj == o.obj;
    }
    return false;
}

void
Json::write(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent > 0) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent * d), ' ');
        }
    };
    switch (ty) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += boolean ? "true" : "false";
        break;
      case Type::Number:
        writeNumber(out, number);
        break;
      case Type::String:
        writeString(out, str);
        break;
      case Type::Array:
        if (arr.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < arr.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ", ";
            newline(depth + 1);
            arr[i].write(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      case Type::Object:
        if (obj.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < obj.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ", ";
            newline(depth + 1);
            writeString(out, obj[i].first);
            out += ": ";
            obj[i].second.write(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
Json::numberToString(double v)
{
    std::string out;
    writeNumber(out, v);
    return out;
}

std::string
Json::dump(int indent) const
{
    std::string out;
    write(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

Json
Json::parse(const std::string &text)
{
    return Parser(text).document();
}

Json
Json::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("json: cannot open '" + path + "' for reading");
    std::ostringstream ss;
    ss << in.rdbuf();
    try {
        return parse(ss.str());
    } catch (const FatalError &e) {
        fatal(std::string(e.what()).substr(7) + " in '" + path + "'");
    }
}

void
Json::save(const std::string &path, int indent) const
{
    // Crash-atomic: a killed process never leaves a truncated document
    // behind (a half-written results file would silently corrupt golden
    // comparisons downstream).
    atomicWriteFile(path, dump(indent));
}

} // namespace memtherm
