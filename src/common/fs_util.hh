/**
 * @file
 * Small filesystem helpers shared by the JSON layer and the CLI.
 *
 * The one nontrivial service is crash-atomic whole-file writes: results
 * and report files are replaced via write-to-temporary + rename, so a
 * killed process can never leave a truncated JSON/CSV behind — readers
 * see either the old complete file or the new complete file.
 */

#ifndef MEMTHERM_COMMON_FS_UTIL_HH
#define MEMTHERM_COMMON_FS_UTIL_HH

#include <string>

namespace memtherm
{

/**
 * Replace @p path with @p content atomically: the bytes are written to
 * "<path>.tmp" in the same directory (so the rename cannot cross a
 * filesystem), flushed, and renamed over @p path. FatalError on any I/O
 * failure; the temporary is removed on a failed write, and @p path is
 * never left in a partially-written state.
 */
void atomicWriteFile(const std::string &path, const std::string &content);

} // namespace memtherm

#endif // MEMTHERM_COMMON_FS_UTIL_HH
