/**
 * @file
 * Streaming statistics accumulators.
 */

#ifndef MEMTHERM_COMMON_STATS_HH
#define MEMTHERM_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace memtherm
{

/**
 * Single-pass accumulator for count/mean/min/max/variance (Welford).
 */
class Accumulator
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const Accumulator &other);

    /** Number of samples. */
    std::size_t count() const { return n; }
    /** Arithmetic mean (0 when empty). */
    double mean() const { return n ? mu : 0.0; }
    /** Minimum sample (0 when empty). */
    double min() const { return n ? lo : 0.0; }
    /** Maximum sample (0 when empty). */
    double max() const { return n ? hi : 0.0; }
    /** Sum of samples. */
    double sum() const { return total; }
    /** Population variance (0 when fewer than 2 samples). */
    double variance() const;
    /** Population standard deviation. */
    double stddev() const;

  private:
    std::size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double total = 0.0;
};

/** Pearson correlation coefficient of two equal-length series. */
double correlation(const std::vector<double> &xs,
                   const std::vector<double> &ys);

/** Geometric mean; all inputs must be positive. */
double geomean(const std::vector<double> &xs);

} // namespace memtherm

#endif // MEMTHERM_COMMON_STATS_HH
