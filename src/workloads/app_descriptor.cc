#include "workloads/app_descriptor.hh"

#include <cmath>
#include <numbers>

namespace memtherm
{

double
phaseFactor(const AppDescriptor &app, Seconds t)
{
    if (app.phaseAmp == 0.0 || app.phasePeriod <= 0.0)
        return 1.0;
    double x = t / app.phasePeriod + app.phaseShift;
    return 1.0 + app.phaseAmp * std::sin(2.0 * std::numbers::pi * x);
}

} // namespace memtherm
