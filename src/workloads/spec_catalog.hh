/**
 * @file
 * Catalog of the SPEC CPU2000/CPU2006 applications used in the paper
 * (Sections 4.3.2 and 5.3.2) as synthetic descriptors.
 */

#ifndef MEMTHERM_WORKLOADS_SPEC_CATALOG_HH
#define MEMTHERM_WORKLOADS_SPEC_CATALOG_HH

#include <string>
#include <vector>

#include "workloads/app_descriptor.hh"

namespace memtherm
{

/**
 * Access the application catalog. Contains the twelve selected CPU2000
 * applications (swim, mgrid, applu, galgel, art, equake, lucas, fma3d —
 * the >10 GB/s class — and wupwise, vpr, mcf, apsi — the 5–10 GB/s class)
 * and the eight CPU2006 applications of Chapter 5.
 */
class SpecCatalog
{
  public:
    /** The process-wide catalog. */
    static const SpecCatalog &instance();

    /** Look up an application by name; fatal() when unknown. */
    const AppDescriptor &byName(const std::string &name) const;

    /** All applications of a suite, catalog order. */
    std::vector<const AppDescriptor *> bySuite(Suite s) const;

    /** All applications. */
    const std::vector<AppDescriptor> &all() const { return apps; }

  private:
    SpecCatalog();
    std::vector<AppDescriptor> apps;
};

} // namespace memtherm

#endif // MEMTHERM_WORKLOADS_SPEC_CATALOG_HH
