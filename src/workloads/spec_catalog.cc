#include "workloads/spec_catalog.hh"

#include "common/logging.hh"

namespace memtherm
{

namespace
{

/** Compact builder for catalog rows. */
AppDescriptor
app(std::string name, Suite suite, double cpi_core, double mpki_solo,
    double mpki_shared, double write_frac, double spec_frac,
    double mlp_overlap, double refill_lines, double nominal_gips,
    double phase_amp, double phase_period, double phase_shift)
{
    AppDescriptor a;
    a.name = std::move(name);
    a.suite = suite;
    a.cpiCore = cpi_core;
    a.cache = {mpki_solo, mpki_shared, 4.0};
    a.writeFrac = write_frac;
    a.specFrac = spec_frac;
    a.mlpOverlap = mlp_overlap;
    a.refillLines = refill_lines;
    a.nominalGips = nominal_gips;
    a.instrBillions = 13.0;
    a.phaseAmp = phase_amp;
    a.phasePeriod = phase_period;
    a.phaseShift = phase_shift;
    return a;
}

} // namespace

SpecCatalog::SpecCatalog()
{
    using enum Suite;
    // SPEC CPU2000 — the >10 GB/s class (4 copies on the 4-core CMP).
    // Streaming FP codes: high MPKI, cache-insensitive, high MLP.
    apps.push_back(app("swim", CPU2000, 0.55, 44.0, 50.0, 0.45, 0.10,
                       0.86, 6000, 1.15, 0.12, 45, 0.00));
    apps.push_back(app("mgrid", CPU2000, 0.55, 39.0, 44.0, 0.30, 0.12,
                       0.84, 8000, 1.20, 0.10, 60, 0.30));
    apps.push_back(app("applu", CPU2000, 0.60, 41.0, 46.0, 0.35, 0.10,
                       0.84, 9000, 1.10, 0.15, 75, 0.55));
    // Cache-sensitive codes: large solo-vs-shared MPKI gap.
    apps.push_back(app("galgel", CPU2000, 0.50, 7.0, 46.0, 0.20, 0.15,
                       0.86, 40000, 1.40, 0.10, 50, 0.20));
    apps.push_back(app("art", CPU2000, 0.45, 9.0, 52.0, 0.15, 0.12,
                       0.86, 45000, 1.20, 0.18, 35, 0.70));
    apps.push_back(app("equake", CPU2000, 0.70, 40.0, 46.0, 0.30, 0.10,
                       0.84, 10000, 1.10, 0.12, 55, 0.10));
    apps.push_back(app("lucas", CPU2000, 0.65, 43.0, 48.0, 0.40, 0.08,
                       0.86, 7000, 1.10, 0.08, 90, 0.45));
    apps.push_back(app("fma3d", CPU2000, 0.75, 35.0, 40.0, 0.35, 0.10,
                       0.82, 12000, 1.10, 0.14, 65, 0.85));
    // The 5–10 GB/s class.
    apps.push_back(app("wupwise", CPU2000, 0.60, 8.0, 12.0, 0.30, 0.10,
                       0.70, 15000, 1.90, 0.10, 70, 0.15));
    apps.push_back(app("vpr", CPU2000, 0.85, 4.0, 15.0, 0.28, 0.10,
                       0.58, 35000, 1.40, 0.08, 40, 0.60));
    apps.push_back(app("mcf", CPU2000, 1.20, 30.0, 44.0, 0.20, 0.05,
                       0.55, 30000, 0.50, 0.12, 80, 0.35));
    apps.push_back(app("apsi", CPU2000, 0.70, 6.0, 17.0, 0.30, 0.10,
                       0.66, 28000, 1.45, 0.10, 50, 0.90));

    // SPEC CPU2006 applications of Chapter 5 (Table 5.2, W11/W12).
    apps.push_back(app("milc", CPU2006, 0.70, 36.0, 42.0, 0.35, 0.10,
                       0.82, 12000, 1.00, 0.12, 55, 0.05));
    apps.push_back(app("leslie3d", CPU2006, 0.65, 34.0, 40.0, 0.35, 0.12,
                       0.82, 11000, 1.05, 0.10, 65, 0.40));
    apps.push_back(app("soplex", CPU2006, 0.80, 22.0, 41.0, 0.25, 0.08,
                       0.72, 30000, 0.95, 0.12, 45, 0.75));
    apps.push_back(app("GemsFDTD", CPU2006, 0.70, 35.0, 41.0, 0.30, 0.10,
                       0.80, 13000, 1.00, 0.10, 70, 0.25));
    apps.push_back(app("libquantum", CPU2006, 0.55, 38.0, 41.0, 0.25, 0.15,
                       0.87, 4000, 1.25, 0.06, 100, 0.50));
    apps.push_back(app("lbm", CPU2006, 0.60, 43.0, 48.0, 0.45, 0.10,
                       0.86, 8000, 1.10, 0.10, 60, 0.65));
    apps.push_back(app("omnetpp", CPU2006, 1.00, 15.0, 34.0, 0.25, 0.05,
                       0.55, 32000, 0.70, 0.10, 50, 0.80));
    apps.push_back(app("wrf", CPU2006, 0.75, 23.0, 28.0, 0.30, 0.10,
                       0.74, 14000, 1.10, 0.10, 75, 0.95));
}

const SpecCatalog &
SpecCatalog::instance()
{
    static SpecCatalog catalog;
    return catalog;
}

const AppDescriptor &
SpecCatalog::byName(const std::string &name) const
{
    for (const auto &a : apps)
        if (a.name == name)
            return a;
    fatal("SpecCatalog: unknown application '" + name + "'");
}

std::vector<const AppDescriptor *>
SpecCatalog::bySuite(Suite s) const
{
    std::vector<const AppDescriptor *> out;
    for (const auto &a : apps)
        if (a.suite == s)
            out.push_back(&a);
    return out;
}

} // namespace memtherm
