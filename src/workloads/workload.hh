/**
 * @file
 * Workload mixes (Tables 4.2 and 5.2) and batch jobs.
 */

#ifndef MEMTHERM_WORKLOADS_WORKLOAD_HH
#define MEMTHERM_WORKLOADS_WORKLOAD_HH

#include <string>
#include <vector>

#include "workloads/app_descriptor.hh"

namespace memtherm
{

/**
 * A named multiprogramming mix: the applications that run concurrently,
 * one per core.
 */
struct Workload
{
    std::string name;
    std::vector<const AppDescriptor *> apps;
};

/** Table 4.2 / 5.2 mix by name: "W1".."W8", "W11", "W12". */
Workload workloadMix(const std::string &name);

/** The eight CPU2000 mixes W1..W8. */
std::vector<Workload> cpu2000Mixes();

/** The two CPU2006 mixes W11, W12. */
std::vector<Workload> cpu2006Mixes();

/** Homogeneous workload: @p n copies of one application (Ch. 5 figures). */
Workload homogeneous(const std::string &app_name, int n = 4);

/**
 * A batch job: a fixed number of copies of every application in a mix,
 * assigned to freed cores in round-robin order (Section 4.3.2).
 */
class BatchJob
{
  public:
    /** One in-flight or pending program copy. */
    struct Instance
    {
        const AppDescriptor *app = nullptr;
        double remainingInstr = 0.0;   ///< instructions left (absolute)
        Seconds cpuTime = 0.0;         ///< accumulated scheduled time
    };

    /**
     * @param mix            the workload mix
     * @param copies_per_app copies of each application in the batch
     * @param instr_scale    scales every app's instruction volume (used by
     *                       the bench harness to bound simulation time)
     */
    BatchJob(const Workload &mix, int copies_per_app,
             double instr_scale = 1.0);

    /** Next pending instance, or nullptr when the queue is empty. */
    Instance *nextPending();

    /** True when all instances have finished. */
    bool done() const;

    /** Count of finished instances. */
    int finished() const { return nFinished; }
    /** Total instances in the batch. */
    int total() const { return static_cast<int>(pool.size()); }

    /** Mark an instance finished (remainingInstr reached 0). */
    void retire(Instance *inst);

    /**
     * Stable-pool index of @p inst (-1 for nullptr). With at(), this is
     * the clone support of the batched simulator: copying a BatchJob
     * copies the pool by value, so a cloner rebases its per-core slot
     * pointers via `clone.at(original.indexOf(p))`.
     */
    int indexOf(const Instance *inst) const;

    /** Instance at a pool index from indexOf() (nullptr for -1). */
    Instance *at(int idx);

  private:
    std::vector<Instance> pool; ///< interleaved copies, stable storage
    std::size_t nextIdx = 0;
    int nFinished = 0;
    int nDispatched = 0;
};

} // namespace memtherm

#endif // MEMTHERM_WORKLOADS_WORKLOAD_HH
