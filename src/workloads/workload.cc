#include "workloads/workload.hh"

#include "common/logging.hh"
#include "workloads/spec_catalog.hh"

namespace memtherm
{

namespace
{

Workload
mixOf(const std::string &name, const std::vector<std::string> &apps)
{
    const auto &cat = SpecCatalog::instance();
    Workload w;
    w.name = name;
    for (const auto &a : apps)
        w.apps.push_back(&cat.byName(a));
    return w;
}

} // namespace

Workload
workloadMix(const std::string &name)
{
    // Tables 4.2 and 5.2.
    if (name == "W1")
        return mixOf(name, {"swim", "mgrid", "applu", "galgel"});
    if (name == "W2")
        return mixOf(name, {"art", "equake", "lucas", "fma3d"});
    if (name == "W3")
        return mixOf(name, {"swim", "applu", "art", "lucas"});
    if (name == "W4")
        return mixOf(name, {"mgrid", "galgel", "equake", "fma3d"});
    if (name == "W5")
        return mixOf(name, {"swim", "art", "wupwise", "vpr"});
    if (name == "W6")
        return mixOf(name, {"mgrid", "equake", "mcf", "apsi"});
    if (name == "W7")
        return mixOf(name, {"applu", "lucas", "wupwise", "mcf"});
    if (name == "W8")
        return mixOf(name, {"galgel", "fma3d", "vpr", "apsi"});
    if (name == "W11")
        return mixOf(name, {"milc", "leslie3d", "soplex", "GemsFDTD"});
    if (name == "W12")
        return mixOf(name, {"libquantum", "lbm", "omnetpp", "wrf"});
    fatal("workloadMix: unknown mix '" + name + "'");
}

std::vector<Workload>
cpu2000Mixes()
{
    std::vector<Workload> out;
    for (int i = 1; i <= 8; ++i) {
        // Built with += : GCC 12's -Wrestrict false-positives on
        // operator+(const char *, std::string &&) here under -O2.
        std::string name = "W";
        name += std::to_string(i);
        out.push_back(workloadMix(name));
    }
    return out;
}

std::vector<Workload>
cpu2006Mixes()
{
    return {workloadMix("W11"), workloadMix("W12")};
}

Workload
homogeneous(const std::string &app_name, int n)
{
    panicIfNot(n >= 1, "homogeneous: need >= 1 copy");
    const auto &cat = SpecCatalog::instance();
    Workload w;
    w.name = app_name + "x" + std::to_string(n);
    for (int i = 0; i < n; ++i)
        w.apps.push_back(&cat.byName(app_name));
    return w;
}

BatchJob::BatchJob(const Workload &mix, int copies_per_app,
                   double instr_scale)
{
    panicIfNot(copies_per_app >= 1, "BatchJob: need >= 1 copy per app");
    panicIfNot(instr_scale > 0.0, "BatchJob: instruction scale must be > 0");
    pool.reserve(mix.apps.size() * copies_per_app);
    // Interleave copies so the round-robin dispatch alternates apps:
    // copy 0 of every app, then copy 1, ...
    for (int c = 0; c < copies_per_app; ++c) {
        for (const auto *a : mix.apps) {
            Instance inst;
            inst.app = a;
            inst.remainingInstr = a->instrBillions * 1e9 * instr_scale;
            pool.push_back(inst);
        }
    }
}

BatchJob::Instance *
BatchJob::nextPending()
{
    if (nextIdx >= pool.size())
        return nullptr;
    ++nDispatched;
    return &pool[nextIdx++];
}

bool
BatchJob::done() const
{
    return nFinished == static_cast<int>(pool.size());
}

int
BatchJob::indexOf(const Instance *inst) const
{
    if (inst == nullptr)
        return -1;
    panicIfNot(inst >= pool.data() && inst < pool.data() + pool.size(),
               "BatchJob: instance is not from this batch");
    return static_cast<int>(inst - pool.data());
}

BatchJob::Instance *
BatchJob::at(int idx)
{
    if (idx < 0)
        return nullptr;
    panicIfNot(static_cast<std::size_t>(idx) < pool.size(),
               "BatchJob: pool index out of range");
    return &pool[static_cast<std::size_t>(idx)];
}

void
BatchJob::retire(Instance *inst)
{
    panicIfNot(inst != nullptr && inst->remainingInstr <= 0.0,
               "BatchJob: retiring an unfinished instance");
    ++nFinished;
}

} // namespace memtherm
