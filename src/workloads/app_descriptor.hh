/**
 * @file
 * Synthetic application descriptors standing in for SPEC CPU2000/2006.
 *
 * The paper drives its level-1 simulator with SPEC binaries (SimPoint
 * slices). We cannot run those here, so each application is summarized by
 * the parameters that determine its memory/thermal behavior: core CPI,
 * shared-L2 MPKI curve, write-back and speculative traffic fractions, MLP,
 * total instruction volume, and a deterministic phase profile that
 * modulates memory intensity over time (the source of the temperature
 * fluctuation visible in Figs. 4.5 and 5.5). Parameter values are
 * calibrated so the no-DTM throughput classes match the paper's
 * (Section 4.3.2: eight apps above 10 GB/s, four between 5 and 10 GB/s
 * when four copies run on the 4-core CMP).
 */

#ifndef MEMTHERM_WORKLOADS_APP_DESCRIPTOR_HH
#define MEMTHERM_WORKLOADS_APP_DESCRIPTOR_HH

#include <string>

#include "cache/miss_model.hh"
#include "common/units.hh"

namespace memtherm
{

/** Benchmark suite an application belongs to. */
enum class Suite { CPU2000, CPU2006 };

/**
 * Everything the performance model needs to know about one application.
 */
struct AppDescriptor
{
    std::string name;
    Suite suite = Suite::CPU2000;

    double cpiCore = 0.6;      ///< core cycles/instr excluding L2 misses
    CacheShareCurve cache;     ///< MPKI vs. number of L2 sharers
    double writeFrac = 0.3;    ///< writeback bytes per fill byte
    double specFrac = 0.10;    ///< speculative read fraction at fmax
    double mlpOverlap = 0.75;  ///< miss-latency overlap factor

    double refillLines = 8000; ///< working-set refill per context switch
    double nominalGips = 1.2;  ///< typical instruction rate (for slices)
    double instrBillions = 13; ///< instructions per batch copy

    double phaseAmp = 0.10;    ///< MPKI modulation amplitude
    Seconds phasePeriod = 60;  ///< modulation period
    double phaseShift = 0.0;   ///< phase offset in periods [0,1)
};

/**
 * Deterministic memory-intensity modulation at absolute program time t:
 * multiplies MPKI by 1 + amp * sin(2*pi*(t/period + shift)).
 */
double phaseFactor(const AppDescriptor &app, Seconds t);

} // namespace memtherm

#endif // MEMTHERM_WORKLOADS_APP_DESCRIPTOR_HH
