#include "cpu/dvfs.hh"

#include "common/logging.hh"

namespace memtherm
{

DvfsTable::DvfsTable(std::vector<DvfsState> states) : table(std::move(states))
{
    panicIfNot(!table.empty(), "DvfsTable: need at least one state");
    for (std::size_t i = 1; i < table.size(); ++i) {
        panicIfNot(table[i].freq <= table[i - 1].freq,
                   "DvfsTable: states must be ordered fastest-first");
    }
}

const DvfsState &
DvfsTable::at(std::size_t level) const
{
    panicIfNot(level < table.size(), "DvfsTable: level out of range");
    return table[level];
}

DvfsTable
simulatedCmpDvfs()
{
    return DvfsTable({{3.2, 1.55}, {2.8, 1.35}, {1.6, 1.15}, {0.8, 0.95}});
}

DvfsTable
xeon5160Dvfs()
{
    return DvfsTable(
        {{3.0, 1.2125}, {2.667, 1.1625}, {2.333, 1.1000}, {2.0, 1.0375}});
}

} // namespace memtherm
