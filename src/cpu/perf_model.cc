#include "cpu/perf_model.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace memtherm
{

namespace
{

/** Per-task demand at a given effective latency. */
struct Demand
{
    double ips = 0.0;
    GBps read = 0.0;
    GBps write = 0.0;
};

Demand
taskDemand(const CoreTask &t, GHz f, GHz fmax, double latency_ns,
           const MemSystemPerf &mem)
{
    double stall_cpi =
        t.mpki / 1000.0 * latency_ns * f * (1.0 - t.mlpOverlap);
    double cpi = t.cpiCore + stall_cpi;
    Demand d;
    d.ips = f * 1e9 / cpi;
    double miss_rate = d.ips * t.mpki / 1000.0; // misses per second
    double spec = t.specFrac * (f / fmax);
    d.read = miss_rate * mem.lineBytes * (1.0 + spec) / bytesPerGB;
    d.write = miss_rate * mem.lineBytes * t.writeFrac / bytesPerGB;
    return d;
}

GBps
totalDemand(const std::vector<CoreTask> &tasks, GHz f, GHz fmax,
            double latency_ns, const MemSystemPerf &mem)
{
    GBps total = 0.0;
    for (const auto &t : tasks) {
        Demand d = taskDemand(t, f, fmax, latency_ns, mem);
        total += d.read + d.write;
    }
    return total;
}

/** Reset an out-param WindowPerf, keeping its vectors' capacity. */
void
clearPerf(WindowPerf &out)
{
    out.ips.clear();
    out.taskTraffic.clear();
    out.totalRead = 0.0;
    out.totalWrite = 0.0;
    out.latencyNs = 0.0;
    out.saturated = false;
}

void
fill(const std::vector<CoreTask> &tasks, GHz f, GHz fmax, double latency_ns,
     const MemSystemPerf &mem, bool saturated, WindowPerf &out)
{
    out.latencyNs = latency_ns;
    out.saturated = saturated;
    out.ips.reserve(tasks.size());
    out.taskTraffic.reserve(tasks.size());
    for (const auto &t : tasks) {
        Demand d = taskDemand(t, f, fmax, latency_ns, mem);
        out.ips.push_back(d.ips);
        out.taskTraffic.push_back(d.read + d.write);
        out.totalRead += d.read;
        out.totalWrite += d.write;
    }
}

} // namespace

WindowPerf
solvePerfWindow(const std::vector<CoreTask> &tasks, GHz freq, GHz fmax,
                GBps cap, const MemSystemPerf &mem)
{
    WindowPerf out;
    solvePerfWindow(tasks, freq, fmax, cap, mem, out);
    return out;
}

void
solvePerfWindow(const std::vector<CoreTask> &tasks, GHz freq, GHz fmax,
                GBps cap, const MemSystemPerf &mem, WindowPerf &out)
{
    panicIfNot(freq > 0.0 && fmax >= freq, "solvePerfWindow: bad frequency");
    panicIfNot(cap >= 0.0, "solvePerfWindow: negative bandwidth cap");

    clearPerf(out);
    if (tasks.empty())
        return;

    // The physical channel saturates below its raw peak (scheduling and
    // bank-conflict losses); a DTM traffic cap, however, is an exact
    // budget enforced by row-activation counting (Section 5.2.1).
    GBps cap_eff = std::min(cap, mem.peakBandwidth * mem.maxUtilization);

    // Memory fully shut down: tasks with misses make no progress.
    if (cap_eff <= 1e-9) {
        out.latencyNs = std::numeric_limits<double>::infinity();
        out.saturated = true;
        for (const auto &t : tasks) {
            if (t.mpki <= 0.0) {
                out.ips.push_back(freq * 1e9 / t.cpiCore);
            } else {
                out.ips.push_back(0.0);
            }
            out.taskTraffic.push_back(0.0);
        }
        return;
    }

    // Self-consistent queueing fixed point: the effective miss latency is
    //   L = L0 * (1 + k * rho / (1 - rho)),  rho = D(L) / cap_eff
    // D(L) is strictly decreasing in L, so
    //   f(L) = L - L0 * (1 + k * rho(L) / (1 - rho(L)))
    // is strictly increasing and has a unique root. Delivered throughput
    // is continuous in demand: far below saturation L ~= L0; when demand
    // exceeds the cap, rho -> 1 and delivery approaches the cap from
    // below, with memory-bound tasks absorbing the queueing latency while
    // compute-bound tasks keep their rate.
    const double l0 = mem.idleLatencyNs;
    const double qk = mem.queueFactor;
    const double rho_max = 0.9999;
    auto implied = [&](double latency) {
        double rho = std::min(
            totalDemand(tasks, freq, fmax, latency, mem) / cap_eff,
            rho_max);
        return l0 * (1.0 + qk * rho / (1.0 - rho));
    };

    double lo = l0;
    double hi = std::max(l0 * 2.0, implied(l0));
    while (hi < implied(hi) && hi < l0 * 1e7)
        hi *= 2.0;
    for (int i = 0; i < 60; ++i) {
        double mid = 0.5 * (lo + hi);
        if (mid < implied(mid)) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    double l = hi;
    bool saturated =
        totalDemand(tasks, freq, fmax, l, mem) / cap_eff > 0.85;
    fill(tasks, freq, fmax, l, mem, saturated, out);
}

} // namespace memtherm
