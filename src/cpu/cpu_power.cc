#include "cpu/cpu_power.hh"

#include <cmath>

#include "common/logging.hh"

namespace memtherm
{

TableCpuPowerModel::TableCpuPowerModel(int n_cores) : nCores(n_cores)
{
    panicIfNot(n_cores >= 1, "TableCpuPowerModel: need >= 1 core");
    // Table 4.4 DVFS column: 260, 193.4, 116.5, 80.6 W at four active
    // cores. Expressed as per-core dynamic scaling relative to the fastest
    // point: (P_level - P_halt) / (P_peak - P_halt).
    const double peak_dyn = 260.0 - 62.0;
    dvfsScale = {1.0, (193.4 - 62.0) / peak_dyn, (116.5 - 62.0) / peak_dyn,
                 (80.6 - 62.0) / peak_dyn};
}

Watts
TableCpuPowerModel::power(int active_cores, std::size_t dvfs_level,
                          bool halted) const
{
    panicIfNot(active_cores >= 0 && active_cores <= nCores,
               "TableCpuPowerModel: active core count out of range");
    panicIfNot(dvfs_level < dvfsScale.size(),
               "TableCpuPowerModel: DVFS level out of range");
    if (halted || active_cores == 0)
        return haltWatts;
    double dyn = perCoreWatts * active_cores * dvfsScale[dvfs_level];
    return haltWatts + dyn;
}

ActivityCpuPowerModel::ActivityCpuPowerModel(DvfsTable dvfs, int n_sockets,
                                             Watts p_idle, Watts p_dyn,
                                             double idle_v_exp)
    : table(std::move(dvfs)), nSockets(n_sockets), pIdleSocket(p_idle),
      pDynCore(p_dyn), idleVExp(idle_v_exp)
{
    panicIfNot(n_sockets >= 1, "ActivityCpuPowerModel: need >= 1 socket");
}

Watts
ActivityCpuPowerModel::power(const std::vector<double> &activities,
                             std::size_t dvfs_level) const
{
    const DvfsState &s = table.at(dvfs_level);
    double vr = s.volts / table.maxVolts();
    double fr = s.freq / table.maxFreq();
    Watts p = pIdleSocket * nSockets * std::pow(vr, idleVExp);
    for (double a : activities) {
        panicIfNot(a >= 0.0 && a <= 1.0,
                   "ActivityCpuPowerModel: activity out of [0,1]");
        p += pDynCore * vr * vr * fr * a;
    }
    return p;
}

} // namespace memtherm
