/**
 * @file
 * DVFS operating points for the modeled processors.
 */

#ifndef MEMTHERM_CPU_DVFS_HH
#define MEMTHERM_CPU_DVFS_HH

#include <cstddef>
#include <vector>

#include "common/units.hh"

namespace memtherm
{

/** One frequency/voltage operating point. */
struct DvfsState
{
    GHz freq = 3.2;
    Volts volts = 1.55;
};

/**
 * Ordered table of operating points, index 0 = fastest. Level indices are
 * what DTM policies manipulate.
 */
class DvfsTable
{
  public:
    explicit DvfsTable(std::vector<DvfsState> states);

    /** Operating point at @p level (0 = fastest). */
    const DvfsState &at(std::size_t level) const;

    /** Number of levels. */
    std::size_t levels() const { return table.size(); }

    /** Fastest frequency (reference for IPC accounting). */
    GHz maxFreq() const { return table.front().freq; }
    /** Highest supply voltage. */
    Volts maxVolts() const { return table.front().volts; }

  private:
    std::vector<DvfsState> table;
};

/**
 * Table 4.1 / 4.3 operating points of the simulated four-core processor:
 * 3.2 GHz @ 1.55 V, 2.8 GHz @ 1.35 V, 1.6 GHz @ 1.15 V, 0.8 GHz @ 0.95 V.
 */
DvfsTable simulatedCmpDvfs();

/**
 * Intel Xeon 5160 operating points used in Chapter 5:
 * 3.0 GHz @ 1.2125 V down to 2.0 GHz @ 1.0375 V.
 */
DvfsTable xeon5160Dvfs();

} // namespace memtherm

#endif // MEMTHERM_CPU_DVFS_HH
