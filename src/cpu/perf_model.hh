/**
 * @file
 * Analytic multicore performance model — the level-1 simulator substitute.
 *
 * The paper's first-level (cycle-accurate M5 + FBDIMM) simulator produces,
 * for every workload and design point, per-10ms-window traces of IPC and
 * memory throughput. This model produces the same quantities analytically:
 *
 *   cycles/instr = cpiCore + (mpki/1000) * L_ns * f_GHz * (1 - mlpOverlap)
 *
 * where the effective memory latency L is the idle latency when the memory
 * system is unsaturated, and otherwise the unique latency at which total
 * demanded throughput equals the sustainable bandwidth (found by
 * bisection — memory-bound tasks absorb the queueing latency, compute-
 * bound tasks keep their rate, which is the qualitative behavior of a real
 * bandwidth-shared memory system).
 */

#ifndef MEMTHERM_CPU_PERF_MODEL_HH
#define MEMTHERM_CPU_PERF_MODEL_HH

#include <vector>

#include "common/units.hh"

namespace memtherm
{

/**
 * Per-core task characteristics for one simulation window. The caller
 * (workload layer) folds cache-sharing and time-slice effects into mpki.
 */
struct CoreTask
{
    double cpiCore = 0.6;     ///< core cycles/instr excluding L2 misses
    double mpki = 10.0;       ///< effective L2 misses per kilo-instruction
    double writeFrac = 0.3;   ///< writeback bytes per fill byte
    double specFrac = 0.1;    ///< speculative read traffic fraction @fmax
    double mlpOverlap = 0.7;  ///< fraction of miss latency hidden by MLP
};

/** Memory-system characteristics seen by the performance model. */
struct MemSystemPerf
{
    double idleLatencyNs = 105.0;  ///< unloaded L2-miss round trip
    GBps peakBandwidth = 21.3;     ///< sustainable combined read+write
    double maxUtilization = 0.92;  ///< fraction of peak reachable
    double queueFactor = 0.015;     ///< latency growth: 1 + k*rho/(1-rho)
    double lineBytes = 64.0;       ///< L2 line (transfer unit)
};

/** Solved performance of one window. */
struct WindowPerf
{
    std::vector<double> ips;        ///< instructions/second per task
    std::vector<GBps> taskTraffic;  ///< read+write throughput per task
    GBps totalRead = 0.0;
    GBps totalWrite = 0.0;
    double latencyNs = 0.0;         ///< effective memory latency used
    bool saturated = false;         ///< bandwidth constraint was binding
};

/**
 * Solve one window.
 *
 * @param tasks   running tasks (one per active core); may be empty
 * @param freq    current core frequency (GHz)
 * @param fmax    reference (maximum) frequency (GHz)
 * @param cap     bandwidth cap imposed by DTM (GB/s); use +inf for none
 *                and 0 for a fully shut-down memory (no task progress
 *                unless a task has mpki == 0)
 * @param mem     memory-system characteristics
 */
WindowPerf solvePerfWindow(const std::vector<CoreTask> &tasks, GHz freq,
                           GHz fmax, GBps cap, const MemSystemPerf &mem);

/**
 * Allocation-free variant of solvePerfWindow(): clears and refills
 * @p out in place, reusing its vectors' capacity. The simulator's window
 * loop calls this once per window with a scratch WindowPerf so the
 * steady state does not touch the heap.
 */
void solvePerfWindow(const std::vector<CoreTask> &tasks, GHz freq,
                     GHz fmax, GBps cap, const MemSystemPerf &mem,
                     WindowPerf &out);

} // namespace memtherm

#endif // MEMTHERM_CPU_PERF_MODEL_HH
