/**
 * @file
 * Processor power models.
 *
 * Two models are provided:
 *  - TableCpuPowerModel: the Chapter 4 model (Table 4.4), derived from the
 *    Intel Xeon datasheet — 65 W peak per core, 15.5 W per core at HALT.
 *  - ActivityCpuPowerModel: the Chapter 5 model for real Xeon 5160 parts,
 *    where idle power dominates and dynamic power scales with V^2 * f and
 *    with non-stalled core activity (modern cores clock-gate stalled
 *    functional blocks, which is why ACG saves little CPU power on real
 *    machines — Section 5.4.4).
 */

#ifndef MEMTHERM_CPU_CPU_POWER_HH
#define MEMTHERM_CPU_CPU_POWER_HH

#include <cstddef>
#include <vector>

#include "cpu/dvfs.hh"

namespace memtherm
{

/**
 * Chapter 4 processor power (Table 4.4) for a 4-core CMP.
 *
 * - All-stopped (memory shut down, cores halted): 62 W.
 * - Core gating: 62 W + 49.5 W per active core (linear through 260 W).
 * - DVFS at 4 active cores: 260 / 193.4 / 116.5 / 80.6 W for the four
 *   operating points of Table 4.1.
 */
class TableCpuPowerModel
{
  public:
    explicit TableCpuPowerModel(int n_cores = 4);

    /**
     * Power for the current run state.
     *
     * @param active_cores cores not clock-gated (0..nCores)
     * @param dvfs_level   DVFS level index (0 = fastest)
     * @param halted       true when all cores stall behind a memory
     *                     shutdown (DTM-TS off phase): standby power
     */
    Watts power(int active_cores, std::size_t dvfs_level,
                bool halted) const;

    Watts haltPower() const { return haltWatts; }
    Watts peakPower() const { return haltWatts + perCoreWatts * nCores; }
    int cores() const { return nCores; }

  private:
    int nCores;
    Watts haltWatts = 62.0;       ///< 4 cores in HALT (15.5 W each)
    Watts perCoreWatts = 49.5;    ///< incremental power per active core
    /** DVFS scaling of the per-core dynamic power (V^2 * f based). */
    std::vector<double> dvfsScale;
};

/**
 * Chapter 5 processor power for dual-socket Xeon 5160 systems.
 *
 * P = nSockets * pIdleSocket * (V/Vmax)^idleVExp
 *   + sum over active cores of pDynCore * (V/Vmax)^2 * (f/fmax) * activity
 *
 * where activity is the core's non-memory-stalled fraction. Stalled cores
 * are largely clock-gated by the hardware already, so gating them via
 * DTM-ACG recovers little extra power, while DVFS still shrinks the
 * voltage-dependent idle floor (clock distribution, leakage) — which is
 * why DTM-CDVFS cuts CPU power ~15% on memory-bound workloads
 * (Section 5.4.4) and DTM-ACG barely moves it.
 */
class ActivityCpuPowerModel
{
  public:
    /**
     * @param dvfs       operating-point table (levels)
     * @param n_sockets  processor packages
     * @param p_idle     per-socket idle power at Vmax (W)
     * @param p_dyn      per-core dynamic power at Vmax/fmax, activity 1
     * @param idle_v_exp voltage exponent of the idle floor
     */
    ActivityCpuPowerModel(DvfsTable dvfs, int n_sockets = 2,
                          Watts p_idle = 28.0, Watts p_dyn = 17.0,
                          double idle_v_exp = 1.0);

    /**
     * Power given per-core activities (empty entries = gated cores).
     *
     * @param activities non-stalled fraction per active core in [0,1]
     * @param dvfs_level current DVFS level (all cores scale together)
     */
    Watts power(const std::vector<double> &activities,
                std::size_t dvfs_level) const;

    const DvfsTable &dvfs() const { return table; }

  private:
    DvfsTable table;
    int nSockets;
    Watts pIdleSocket;
    Watts pDynCore;
    double idleVExp;
};

} // namespace memtherm

#endif // MEMTHERM_CPU_CPU_POWER_HH
