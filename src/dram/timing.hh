/**
 * @file
 * DDR2 / FBDIMM timing parameters (Table 4.1).
 *
 * All values in nanoseconds unless noted. The defaults model DDR2-667
 * (5-5-5) devices behind an AMB, as simulated in the paper.
 */

#ifndef MEMTHERM_DRAM_TIMING_HH
#define MEMTHERM_DRAM_TIMING_HH

#include "common/units.hh"

namespace memtherm
{

/** DDR2-667 5-5-5 device timing (Table 4.1). */
struct DramTiming
{
    double tCK = 3.0;    ///< DRAM clock period (333 MHz)
    double tRCD = 15.0;  ///< activate to read
    double tCL = 15.0;   ///< read to data valid
    double tRP = 15.0;   ///< precharge to activate
    double tRAS = 39.0;  ///< activate to precharge
    double tRC = 54.0;   ///< activate to activate, same bank
    double tWTR = 9.0;   ///< write to read turnaround
    double tWL = 12.0;   ///< write latency
    double tWPD = 36.0;  ///< write to precharge delay
    double tRPD = 9.0;   ///< read to precharge delay
    double tRRD = 9.0;   ///< activate to activate, different banks
    double tBURST = 6.0; ///< burst of 4 at 667 MT/s (4 beats x 1.5 ns)

    /** Ticks for a value given in nanoseconds. */
    static Tick ticks(double ns) { return nsToTick(ns); }
};

/**
 * FBDIMM channel/AMB interconnect parameters (Section 3.2, Table 4.1).
 *
 * One "frame" is the paper's memory cycle: the southbound link carries
 * three commands or one command plus 16 B of write data per frame; the
 * northbound link carries 32 B of read data per frame. With a 6 ns frame
 * the northbound peak is 32 B / 6 ns = 5.33 GB/s — exactly one DDR2-667
 * channel, as Section 3.2 requires ("the maximum bandwidth of the
 * northbound link matches that of one DDR2 channel").
 */
struct FbdimmChannelTiming
{
    double frameNs = 6.0;        ///< one south/northbound frame slot
    double ambForwardNs = 3.0;   ///< per-hop AMB pass-through latency
    double ambLocalNs = 9.0;     ///< AMB command decode + DDR2 issue
    double controllerNs = 12.0;  ///< memory controller overhead
    unsigned southCmdSlots = 3;  ///< commands per southbound frame
    unsigned southWriteBytes = 16; ///< write payload per frame (w/ 1 cmd)
    unsigned northReadBytes = 32;  ///< read payload per northbound frame
    bool variableReadLatency = true; ///< VRL feature (Section 3.2)
};

} // namespace memtherm

#endif // MEMTHERM_DRAM_TIMING_HH
