#include "dram/fbdimm_channel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace memtherm
{

FbdimmChannel::FbdimmChannel(const ChannelConfig &c)
    : cfg(c), dimmLastAct(static_cast<std::size_t>(c.nDimms), 0),
      dimmWrDataEnd(static_cast<std::size_t>(c.nDimms), 0),
      check(c.nDimms, c.banksPerDimm, c.timing, c.checkProtocol)
{
    panicIfNot(cfg.nDimms >= 1 && cfg.banksPerDimm >= 1,
               "FbdimmChannel: bad geometry");
    panicIfNot(cfg.queueCapacity >= 1 && cfg.schedWindow >= 1,
               "FbdimmChannel: bad queue configuration");
    banks.assign(static_cast<std::size_t>(cfg.nDimms * cfg.banksPerDimm),
                 Bank(cfg.timing));
    ambChain.reserve(static_cast<std::size_t>(cfg.nDimms));
    for (int i = 0; i < cfg.nDimms; ++i)
        ambChain.emplace_back(i, i == cfg.nDimms - 1);
}

Bank &
FbdimmChannel::bankOf(int dimm, int bank)
{
    return banks[static_cast<std::size_t>(dimm * cfg.banksPerDimm + bank)];
}

const Bank &
FbdimmChannel::bankOf(int dimm, int bank) const
{
    return banks[static_cast<std::size_t>(dimm * cfg.banksPerDimm + bank)];
}

bool
FbdimmChannel::enqueue(const MemRequest &req)
{
    panicIfNot(req.dimm >= 0 && req.dimm < cfg.nDimms,
               "FbdimmChannel: DIMM index out of range");
    panicIfNot(req.bank >= 0 && req.bank < cfg.banksPerDimm,
               "FbdimmChannel: bank index out of range");
    if (queue.size() >= cfg.queueCapacity)
        return false;
    queue.push_back(req);
    return true;
}

FbdimmChannel::IssuePlan
FbdimmChannel::plan(const MemRequest &req) const
{
    const auto &lnk = cfg.link;
    const auto &t = cfg.timing;
    auto d = static_cast<std::size_t>(req.dimm);

    IssuePlan p;
    // A write needs one (command + 16 B) frame per 16 B payload; a read's
    // command pair occupies one of the three command slots of a frame, so
    // its southbound reservation is a third of a frame (Section 3.2).
    p.frames = req.write
                   ? static_cast<unsigned>(
                         (cfg.bytesPerRequest + lnk.southWriteBytes - 1) /
                         lnk.southWriteBytes)
                   : 1u;
    Tick frame = nsToTick(lnk.frameNs);
    Tick south_cost = req.write ? frame * p.frames
                                : nsToTick(lnk.frameNs / lnk.southCmdSlots);
    p.southCost = south_cost;
    Tick hops = nsToTick(lnk.ambForwardNs) * req.dimm;

    Tick t0 = std::max(req.arrival + nsToTick(lnk.controllerNs), southFree);
    Tick at_dimm = t0 + frame * p.frames + hops;
    Tick link_act = at_dimm + nsToTick(lnk.ambLocalNs);

    // Bank and rank constraints may hold the activation back; the
    // controller then defers sending the command frames.
    Tick act = std::max({link_act, bankOf(req.dimm, req.bank).earliestAct(),
                         dimmLastAct[d] + nsToTick(t.tRRD)});
    p.sendStart = t0 + (act - link_act);
    p.act = act;

    Tick cas = act + nsToTick(t.tRCD);
    if (!req.write) {
        // Write-to-read turnaround on the DIMM's DDR2 bus.
        Tick wtr_ready = dimmWrDataEnd[d] + nsToTick(t.tWTR);
        if (cas < wtr_ready)
            p.casDefer = wtr_ready - cas;
    }
    p.cas = cas + p.casDefer;

    if (req.write) {
        p.done = p.cas + nsToTick(t.tWL + t.tBURST);
    } else {
        Tick data_at_amb = p.cas + nsToTick(t.tCL + t.tBURST);
        p.northSlot = std::max(data_at_amb, northFree);
        int return_hops =
            lnk.variableReadLatency ? req.dimm : cfg.nDimms - 1;
        p.done = p.northSlot + frame +
                 nsToTick(lnk.ambForwardNs) * return_hops;
    }
    return p;
}

void
FbdimmChannel::commit(const MemRequest &req, const IssuePlan &p)
{
    auto d = static_cast<std::size_t>(req.dimm);
    Tick frame = nsToTick(cfg.link.frameNs);

    southFree = p.sendStart + p.southCost;
    Bank::AccessTimes bt =
        bankOf(req.dimm, req.bank).access(p.act, req.write, p.casDefer);
    dimmLastAct[d] = p.act;
    if (req.write) {
        dimmWrDataEnd[d] = bt.dataEnd;
    } else {
        northFree = p.northSlot + frame;
    }

    check.record(DramCmd::ACT, req.dimm, req.bank, bt.act);
    check.record(req.write ? DramCmd::WR : DramCmd::RD, req.dimm, req.bank,
                 bt.cas);
    check.record(DramCmd::PRE, req.dimm, req.bank, bt.pre);

    // Traffic bookkeeping: the request's bytes are local at the target
    // DIMM and bypass at every AMB between it and the controller.
    std::uint64_t bytes = cfg.bytesPerRequest;
    ambChain[d].addLocal(req.write, bytes);
    for (int i = 0; i < req.dimm; ++i)
        ambChain[static_cast<std::size_t>(i)].addBypass(req.write, bytes);

    double latency_ns = static_cast<double>(p.done - req.arrival) /
                        static_cast<double>(tickPerNs);
    if (req.write) {
        ++st.writes;
        st.writeBytes += bytes;
        st.writeLatencyNs.add(latency_ns);
    } else {
        ++st.reads;
        st.readBytes += bytes;
        st.readLatencyNs.add(latency_ns);
    }
    st.lastCompletion = std::max(st.lastCompletion, p.done);
}

bool
FbdimmChannel::issueOne()
{
    if (queue.empty())
        return false;

    // First-ready FCFS over the scan window: earliest feasible
    // activation wins; ties go to the older request.
    std::size_t window = std::min<std::size_t>(cfg.schedWindow,
                                               queue.size());
    std::size_t best = 0;
    IssuePlan best_plan = plan(queue[0]);
    for (std::size_t i = 1; i < window; ++i) {
        IssuePlan p = plan(queue[i]);
        if (p.act < best_plan.act) {
            best = i;
            best_plan = p;
        }
    }
    MemRequest req = queue[best];
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(best));
    commit(req, best_plan);
    return true;
}

void
FbdimmChannel::drain()
{
    while (issueOne()) {
    }
}

void
FbdimmChannel::resetStats()
{
    st = ChannelStats{};
    for (auto &a : ambChain)
        a.resetCounters();
}

} // namespace memtherm
