#include "dram/traffic_gen.hh"

#include "common/logging.hh"

namespace memtherm
{

TrafficGenerator::TrafficGenerator(const TrafficConfig &c)
    : cfg(c), rng(c.seed)
{
    panicIfNot(cfg.rate > 0.0, "TrafficGenerator: rate must be positive");
    panicIfNot(cfg.writeFrac >= 0.0 && cfg.writeFrac <= 1.0,
               "TrafficGenerator: writeFrac out of [0,1]");
    panicIfNot(cfg.footprintBytes >= cfg.blockBytes,
               "TrafficGenerator: footprint smaller than a block");
    interArrivalNs =
        static_cast<double>(cfg.blockBytes) / cfg.rate; // bytes / (GB/s)
}

BlockAccess
TrafficGenerator::next()
{
    BlockAccess a;
    std::uint64_t blocks = cfg.footprintBytes / cfg.blockBytes;
    if (cfg.sequential) {
        a.addr = (seqAddr % blocks) * cfg.blockBytes;
        ++seqAddr;
    } else {
        a.addr = rng.below(blocks) * cfg.blockBytes;
    }
    a.write = rng.uniform() < cfg.writeFrac;
    a.at = cursor;
    cursor += nsToTick(interArrivalNs);
    return a;
}

MeasuredPerf
measurePerf(FbdimmMemorySystem &mem, TrafficGenerator &gen,
            std::uint64_t n_blocks)
{
    panicIfNot(n_blocks > 0, "measurePerf: need at least one block");
    mem.resetStats();
    Tick first = 0;
    bool have_first = false;
    std::uint64_t block_bytes = 0;
    for (std::uint64_t i = 0; i < n_blocks; ++i) {
        BlockAccess a = gen.next();
        if (!have_first) {
            first = a.at;
            have_first = true;
        }
        mem.accessBlock(a.addr, a.write, a.at, i);
        block_bytes += gen.config().blockBytes;
    }
    mem.drain();

    MeasuredPerf out;
    Tick end = mem.lastCompletion();
    double elapsed_s = tickToSec(end > first ? end - first : 1);
    out.achieved = static_cast<double>(block_bytes) /
                   (elapsed_s * bytesPerGB);
    ChannelStats s = mem.aggregateStats();
    out.meanReadLatencyNs = s.readLatencyNs.mean();
    out.maxReadLatencyNs = s.readLatencyNs.max();
    return out;
}

MeasuredPerf
saturationProbe(const MemSystemConfig &cfg, std::uint64_t n_blocks,
                double write_frac, bool sequential)
{
    FbdimmMemorySystem mem(cfg);
    TrafficConfig tc;
    tc.rate = 1000.0; // far above any sustainable bandwidth
    tc.writeFrac = write_frac;
    tc.sequential = sequential;
    tc.blockBytes = cfg.blockBytes;
    TrafficGenerator gen(tc);
    return measurePerf(mem, gen, n_blocks);
}

} // namespace memtherm
