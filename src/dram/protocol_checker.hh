/**
 * @file
 * DDR2 protocol checker: validates that a command stream respects the
 * device timing constraints of Table 4.1. The channel simulator feeds
 * every command it issues through a checker, so any scheduling bug that
 * violates tRC/tRCD/tRAS/tRP/tRRD/tWTR surfaces as a panic in tests.
 */

#ifndef MEMTHERM_DRAM_PROTOCOL_CHECKER_HH
#define MEMTHERM_DRAM_PROTOCOL_CHECKER_HH

#include <cstdint>
#include <vector>

#include "dram/timing.hh"

namespace memtherm
{

/** DRAM command kinds the checker understands. */
enum class DramCmd { ACT, RD, WR, PRE };

/**
 * Incremental timing validator for one channel.
 */
class ProtocolChecker
{
  public:
    /**
     * @param n_dimms  DIMMs on the channel
     * @param n_banks  banks per DIMM
     * @param t        device timing
     * @param enabled  when false, record() is a no-op
     */
    ProtocolChecker(int n_dimms, int n_banks, const DramTiming &t,
                    bool enabled = true);

    /**
     * Record one command; panics on a timing violation.
     * @param cmd  command kind
     * @param dimm target DIMM
     * @param bank target bank
     * @param when issue time (ticks)
     */
    void record(DramCmd cmd, int dimm, int bank, Tick when);

    /** Commands validated so far. */
    std::uint64_t commandCount() const { return nCommands; }
    bool isEnabled() const { return enabled; }

  private:
    struct BankHistory
    {
        Tick lastAct = 0;
        Tick lastRd = 0;
        Tick lastWr = 0;
        Tick lastPre = 0;
        bool everAct = false, everRd = false, everWr = false,
             everPre = false;
        bool open = false; ///< row open (ACT seen, no PRE yet)
    };

    BankHistory &bankOf(int dimm, int bank);

    int nDimms;
    int nBanks;
    DramTiming timing;
    bool enabled;
    std::vector<BankHistory> banks;
    std::vector<Tick> dimmLastAct;      ///< per DIMM, for tRRD
    std::vector<bool> dimmEverAct;
    std::vector<Tick> dimmLastWrData;   ///< write data end, for tWTR
    std::vector<bool> dimmEverWr;
    std::uint64_t nCommands = 0;
};

} // namespace memtherm

#endif // MEMTHERM_DRAM_PROTOCOL_CHECKER_HH
