#include "dram/memory_controller.hh"

#include "common/logging.hh"

namespace memtherm
{

FbdimmMemorySystem::FbdimmMemorySystem(const MemSystemConfig &c)
    : cfg(c), map(c.nChannelPairs, c.channel.nDimms, c.channel.banksPerDimm,
                  c.blockBytes)
{
    panicIfNot(cfg.nChannelPairs >= 1, "FbdimmMemorySystem: need channels");
    panicIfNot(cfg.blockBytes == 2 * cfg.channel.bytesPerRequest,
               "FbdimmMemorySystem: block must split into two half-blocks");
    int n_physical = 2 * cfg.nChannelPairs;
    chans.reserve(static_cast<std::size_t>(n_physical));
    for (int i = 0; i < n_physical; ++i)
        chans.push_back(std::make_unique<FbdimmChannel>(cfg.channel));
}

void
FbdimmMemorySystem::accessBlock(std::uint64_t addr, bool write, Tick at,
                                std::uint64_t id)
{
    DecodedAddr d = map.decode(addr);
    MemRequest req;
    req.id = id;
    req.addr = addr;
    req.write = write;
    req.arrival = at;
    req.dimm = d.dimm;
    req.bank = d.bank;
    for (int half = 0; half < 2; ++half) {
        auto ch =
            static_cast<std::size_t>(2 * d.channelPair + half);
        while (!chans[ch]->enqueue(req)) {
            // Controller buffer full: retire the oldest queued request.
            panicIfNot(chans[ch]->issueOne(),
                       "FbdimmMemorySystem: full queue with nothing "
                       "issueable");
        }
    }
}

void
FbdimmMemorySystem::drain()
{
    for (auto &c : chans)
        c->drain();
}

ChannelStats
FbdimmMemorySystem::aggregateStats() const
{
    ChannelStats agg;
    for (const auto &c : chans) {
        const ChannelStats &s = c->stats();
        agg.reads += s.reads;
        agg.writes += s.writes;
        agg.readBytes += s.readBytes;
        agg.writeBytes += s.writeBytes;
        agg.readLatencyNs.merge(s.readLatencyNs);
        agg.writeLatencyNs.merge(s.writeLatencyNs);
        agg.lastCompletion = std::max(agg.lastCompletion, s.lastCompletion);
    }
    return agg;
}

std::uint64_t
FbdimmMemorySystem::totalBytes() const
{
    ChannelStats s = aggregateStats();
    return s.readBytes + s.writeBytes;
}

Tick
FbdimmMemorySystem::lastCompletion() const
{
    return aggregateStats().lastCompletion;
}

void
FbdimmMemorySystem::resetStats()
{
    for (auto &c : chans)
        c->resetStats();
}

} // namespace memtherm
