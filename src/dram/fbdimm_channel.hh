/**
 * @file
 * One FBDIMM channel: the daisy chain of AMBs, the south/northbound
 * links, the per-DIMM DDR2 banks, and a close-page first-ready FCFS
 * scheduler (Section 3.2, Table 4.1).
 *
 * The simulator uses lookahead scheduling: each request's full command
 * schedule (southbound frames, ACT/CAS/PRE, northbound return) is
 * computed analytically against the link and bank reservation state, so
 * no global clock loop is needed. Every issued command is validated by a
 * ProtocolChecker.
 */

#ifndef MEMTHERM_DRAM_FBDIMM_CHANNEL_HH
#define MEMTHERM_DRAM_FBDIMM_CHANNEL_HH

#include <deque>
#include <vector>

#include "common/stats.hh"
#include "dram/amb.hh"
#include "dram/bank.hh"
#include "dram/protocol_checker.hh"
#include "dram/request.hh"

namespace memtherm
{

/** Channel geometry and policy knobs. */
struct ChannelConfig
{
    int nDimms = 4;
    int banksPerDimm = 8;
    DramTiming timing{};
    FbdimmChannelTiming link{};
    unsigned queueCapacity = 64;   ///< controller buffer (Table 4.1)
    unsigned schedWindow = 16;     ///< first-ready scan depth
    std::uint64_t bytesPerRequest = 32; ///< half block per channel
    bool checkProtocol = true;
};

/** Aggregate counters of one channel. */
struct ChannelStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t readBytes = 0;
    std::uint64_t writeBytes = 0;
    Accumulator readLatencyNs;  ///< arrival-to-data-return
    Accumulator writeLatencyNs; ///< arrival-to-data-written
    Tick lastCompletion = 0;    ///< time the last request finished
};

/**
 * FBDIMM channel simulator.
 */
class FbdimmChannel
{
  public:
    explicit FbdimmChannel(const ChannelConfig &cfg);

    /**
     * Queue a request; returns false when the controller buffer is full
     * (callers may retry after issueOne()).
     */
    bool enqueue(const MemRequest &req);

    /** Requests waiting in the controller buffer. */
    std::size_t pending() const { return queue.size(); }

    /**
     * Schedule and retire one request (first-ready FCFS over the scan
     * window). Returns false when the queue is empty.
     */
    bool issueOne();

    /** Issue everything queued. */
    void drain();

    const ChannelStats &stats() const { return st; }
    const std::vector<Amb> &ambs() const { return ambChain; }
    const ProtocolChecker &checker() const { return check; }
    const ChannelConfig &config() const { return cfg; }

    /** Reset statistics and AMB counters (timing state retained). */
    void resetStats();

  private:
    /** The full command schedule of one candidate request. */
    struct IssuePlan
    {
        Tick sendStart = 0; ///< first southbound frame
        Tick act = 0;
        Tick cas = 0;
        Tick done = 0;      ///< data returned (read) / written (write)
        unsigned frames = 1;
        Tick southCost = 0; ///< southbound link reservation
        Tick casDefer = 0;
        Tick northSlot = 0; ///< reserved northbound frame (reads)
    };

    IssuePlan plan(const MemRequest &req) const;
    void commit(const MemRequest &req, const IssuePlan &p);

    Bank &bankOf(int dimm, int bank);
    const Bank &bankOf(int dimm, int bank) const;

    ChannelConfig cfg;
    std::vector<Bank> banks;          ///< dimm-major
    std::vector<Tick> dimmLastAct;    ///< for tRRD
    std::vector<Tick> dimmWrDataEnd;  ///< for tWTR
    Tick southFree = 0;
    Tick northFree = 0;
    std::deque<MemRequest> queue;
    std::vector<Amb> ambChain;
    ProtocolChecker check;
    ChannelStats st;
};

} // namespace memtherm

#endif // MEMTHERM_DRAM_FBDIMM_CHANNEL_HH
