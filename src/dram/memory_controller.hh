/**
 * @file
 * Multi-channel FBDIMM memory system: the controller front end that
 * splits 64 B block accesses across a ganged channel pair (Section 3.3:
 * "burst length four ... a single L2 cache block of 64 bytes over two
 * FBDIMM channels") and aggregates statistics.
 */

#ifndef MEMTHERM_DRAM_MEMORY_CONTROLLER_HH
#define MEMTHERM_DRAM_MEMORY_CONTROLLER_HH

#include <memory>
#include <vector>

#include "dram/fbdimm_channel.hh"
#include "dram/request.hh"

namespace memtherm
{

/** Whole-memory-system configuration (Table 4.1 defaults). */
struct MemSystemConfig
{
    int nChannelPairs = 2;      ///< logical channels (4 physical)
    ChannelConfig channel{};
    std::uint64_t blockBytes = 64;
};

/**
 * The memory system: 2 * nChannelPairs physical FBDIMM channels.
 */
class FbdimmMemorySystem
{
  public:
    explicit FbdimmMemorySystem(const MemSystemConfig &cfg);

    /**
     * Issue one block access: decodes the address and enqueues a 32 B
     * half-block request on both channels of the target pair, draining
     * the channels as needed to make room.
     *
     * @param addr  byte address of the block
     * @param write store access
     * @param at    arrival time
     * @param id    caller-assigned identifier
     */
    void accessBlock(std::uint64_t addr, bool write, Tick at,
                     std::uint64_t id = 0);

    /** Issue everything still queued. */
    void drain();

    /** Combined statistics over all physical channels. */
    ChannelStats aggregateStats() const;

    /** Total bytes moved (reads + writes). */
    std::uint64_t totalBytes() const;

    /** Time at which the last request completed, over all channels. */
    Tick lastCompletion() const;

    const AddressMap &addressMap() const { return map; }
    const std::vector<std::unique_ptr<FbdimmChannel>> &channels() const
    {
        return chans;
    }

    /** Reset statistics on every channel. */
    void resetStats();

  private:
    MemSystemConfig cfg;
    AddressMap map;
    std::vector<std::unique_ptr<FbdimmChannel>> chans;
};

} // namespace memtherm

#endif // MEMTHERM_DRAM_MEMORY_CONTROLLER_HH
