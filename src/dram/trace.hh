/**
 * @file
 * Versioned memory-access trace files and synthetic trace generators.
 *
 * A trace is a recorded address stream — one block access per line —
 * that drives per-DIMM and per-bank activity in place of the SPEC
 * descriptor catalog's analytic traffic shapes: the scenario layer's
 * `trace` knob decodes a trace into the per-DIMM share vector (the
 * `traffic_shape` equivalent) and, when the bank-grid thermal model is
 * active, into per-(DIMM, bank) heat weights. The generators mirror
 * gem5's PyTrafficGen createLinear/createRandom: seeded, deterministic,
 * block-aligned streams over an address range.
 *
 * File format (text, version-stamped so readers can refuse newer
 * layouts):
 *
 *     #memtherm-trace v1
 *     # free-form comment lines and blank lines are ignored
 *     0x1a40 r 64
 *     0x1a80 w 64
 *
 * Each record line is `<addr> <r|w> <bytes>` with addresses in hex
 * (0x-prefixed) or decimal. Malformed input is reported as a FatalError
 * naming the file and line, never a crash.
 */

#ifndef MEMTHERM_DRAM_TRACE_HH
#define MEMTHERM_DRAM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace memtherm
{

/** Newest trace file version this build reads and writes. */
inline constexpr int kTraceFormatVersion = 1;

/** One recorded block access. */
struct TraceRecord
{
    std::uint64_t addr = 0;  ///< byte address of the access
    std::uint32_t bytes = 64;///< transfer size
    bool write = false;      ///< write (w) vs read (r)

    bool operator==(const TraceRecord &) const = default;
};

/**
 * Parse a trace file. FatalError (with file and line) on a missing or
 * version-incompatible header, malformed records, or an empty trace.
 */
std::vector<TraceRecord> loadTrace(const std::string &path);

/** Same parser over an in-memory document; @p name labels errors. */
std::vector<TraceRecord> parseTrace(const std::string &text,
                                    const std::string &name);

/** Serialize records in the version-1 format (round-trips loadTrace). */
std::string formatTrace(const std::vector<TraceRecord> &records);

/** Write a trace file; FatalError if the file cannot be written. */
void saveTrace(const std::string &path,
               const std::vector<TraceRecord> &records);

/**
 * Generator parameters, à la gem5 PyTrafficGen: a block-aligned address
 * stream over [minAddr, maxAddr), linear (wrapping) or uniform-random,
 * with a read percentage drawn per access from a seeded Rng. Equal
 * configs generate equal traces.
 */
struct TraceGenConfig
{
    enum class Pattern { Linear, Random };

    Pattern pattern = Pattern::Linear;
    std::uint64_t minAddr = 0;
    std::uint64_t maxAddr = 1ULL << 24; ///< exclusive upper bound
    std::uint32_t blockSize = 64;       ///< bytes per access
    std::uint64_t count = 1024;         ///< records to generate
    double readPct = 100.0;             ///< percentage of reads [0, 100]
    std::uint64_t seed = 42;
};

/** Generate a synthetic trace; FatalError on degenerate parameters. */
std::vector<TraceRecord> generateTrace(const TraceGenConfig &cfg);

/**
 * A trace decoded against a memory organization: how the recorded
 * stream distributes over the DIMM chain and, at @p bank_cells > 0
 * resolution, over each DIMM's banks.
 */
struct TraceProfile
{
    /// Per-DIMM fraction of channel-local traffic (n_dimms entries,
    /// summing to 1) — the scenario layer installs this as the run's
    /// traffic shares.
    std::vector<double> dimmShares;
    /// Per-(DIMM, bank-cell) heat weights, row-major by DIMM
    /// (n_dimms * bank_cells entries; each DIMM's block sums to 1, or
    /// falls back to uniform for a DIMM the trace never touches).
    /// Empty when bank_cells is 0.
    std::vector<double> bankWeights;
    double readFraction = 0.0; ///< byte-weighted fraction of reads
    std::uint64_t records = 0; ///< records decoded
};

/**
 * Decode a trace against an organization using the block-interleaved
 * address map (block = addr / block_size; channel = block % channels;
 * DIMM = block / channels % dimms; bank = block / (channels * dimms)
 * % bank_cells). Shares and weights are byte-weighted and aggregated
 * across channels (channels are thermally symmetric). FatalError on an
 * empty record list.
 */
TraceProfile decodeTrace(const std::vector<TraceRecord> &records,
                         int n_channels, int n_dimms, int bank_cells,
                         std::uint32_t block_size = 64);

} // namespace memtherm

#endif // MEMTHERM_DRAM_TRACE_HH
