/**
 * @file
 * Advanced Memory Buffer bookkeeping: the per-DIMM traffic split into the
 * four Fig. 3.2 categories, measured in bytes, convertible to the GB/s
 * DimmTraffic record the power model consumes.
 */

#ifndef MEMTHERM_DRAM_AMB_HH
#define MEMTHERM_DRAM_AMB_HH

#include <cstdint>

#include "core/power/dimm_traffic.hh"

namespace memtherm
{

/**
 * Traffic counters of one AMB. The channel simulator calls addLocal()
 * for requests terminating at this DIMM and addBypass() for requests it
 * forwards along the daisy chain.
 */
class Amb
{
  public:
    /**
     * @param index position on the channel (0 = nearest the controller)
     * @param last  true for the farthest DIMM
     */
    Amb(int index, bool last) : pos(index), lastDimm(last) {}

    void
    addLocal(bool write, std::uint64_t bytes)
    {
        (write ? localWriteBytes : localReadBytes) += bytes;
    }

    void
    addBypass(bool write, std::uint64_t bytes)
    {
        (write ? bypassWriteBytes : bypassReadBytes) += bytes;
    }

    /** Convert the counters to throughput over a window. */
    DimmTraffic
    trafficOver(Seconds window) const
    {
        DimmTraffic t;
        t.localRead = static_cast<double>(localReadBytes) /
                      (window * bytesPerGB);
        t.localWrite = static_cast<double>(localWriteBytes) /
                       (window * bytesPerGB);
        t.bypassRead = static_cast<double>(bypassReadBytes) /
                       (window * bytesPerGB);
        t.bypassWrite = static_cast<double>(bypassWriteBytes) /
                        (window * bytesPerGB);
        return t;
    }

    void
    resetCounters()
    {
        localReadBytes = localWriteBytes = 0;
        bypassReadBytes = bypassWriteBytes = 0;
    }

    int index() const { return pos; }
    bool isLast() const { return lastDimm; }
    std::uint64_t localBytes() const
    {
        return localReadBytes + localWriteBytes;
    }
    std::uint64_t bypassBytes() const
    {
        return bypassReadBytes + bypassWriteBytes;
    }

  private:
    int pos;
    bool lastDimm;
    std::uint64_t localReadBytes = 0;
    std::uint64_t localWriteBytes = 0;
    std::uint64_t bypassReadBytes = 0;
    std::uint64_t bypassWriteBytes = 0;
};

} // namespace memtherm

#endif // MEMTHERM_DRAM_AMB_HH
