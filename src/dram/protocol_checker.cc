#include "dram/protocol_checker.hh"

#include <string>

#include "common/logging.hh"

namespace memtherm
{

namespace
{

/** Check a minimum spacing between two command times. */
void
require(bool ever, Tick earlier, Tick when, double min_ns,
        const char *what)
{
    if (!ever)
        return;
    Tick min_gap = nsToTick(min_ns);
    if (when < earlier + min_gap) {
        panic(std::string("protocol violation: ") + what + " spacing " +
              std::to_string(when - earlier) + " < " +
              std::to_string(min_gap) + " ticks");
    }
}

} // namespace

ProtocolChecker::ProtocolChecker(int n_dimms, int n_banks,
                                 const DramTiming &t, bool on)
    : nDimms(n_dimms), nBanks(n_banks), timing(t), enabled(on),
      banks(static_cast<std::size_t>(n_dimms * n_banks)),
      dimmLastAct(static_cast<std::size_t>(n_dimms), 0),
      dimmEverAct(static_cast<std::size_t>(n_dimms), false),
      dimmLastWrData(static_cast<std::size_t>(n_dimms), 0),
      dimmEverWr(static_cast<std::size_t>(n_dimms), false)
{
    panicIfNot(n_dimms >= 1 && n_banks >= 1, "ProtocolChecker: geometry");
}

ProtocolChecker::BankHistory &
ProtocolChecker::bankOf(int dimm, int bank)
{
    panicIfNot(dimm >= 0 && dimm < nDimms && bank >= 0 && bank < nBanks,
               "ProtocolChecker: dimm/bank out of range");
    return banks[static_cast<std::size_t>(dimm * nBanks + bank)];
}

void
ProtocolChecker::record(DramCmd cmd, int dimm, int bank, Tick when)
{
    if (!enabled)
        return;
    BankHistory &b = bankOf(dimm, bank);
    auto d = static_cast<std::size_t>(dimm);
    ++nCommands;

    switch (cmd) {
      case DramCmd::ACT:
        require(b.everAct, b.lastAct, when, timing.tRC, "ACT->ACT (tRC)");
        require(b.everPre, b.lastPre, when, timing.tRP, "PRE->ACT (tRP)");
        require(dimmEverAct[d], dimmLastAct[d], when, timing.tRRD,
                "ACT->ACT same DIMM (tRRD)");
        panicIfNot(!b.open, "protocol violation: ACT to an open bank");
        b.lastAct = when;
        b.everAct = true;
        b.open = true;
        dimmLastAct[d] = when;
        dimmEverAct[d] = true;
        break;

      case DramCmd::RD:
        panicIfNot(b.open, "protocol violation: RD to a closed bank");
        require(true, b.lastAct, when, timing.tRCD, "ACT->RD (tRCD)");
        require(dimmEverWr[d], dimmLastWrData[d], when, timing.tWTR,
                "WR->RD turnaround (tWTR)");
        b.lastRd = when;
        b.everRd = true;
        break;

      case DramCmd::WR:
        panicIfNot(b.open, "protocol violation: WR to a closed bank");
        require(true, b.lastAct, when, timing.tRCD, "ACT->WR (tRCD)");
        b.lastWr = when;
        b.everWr = true;
        dimmLastWrData[d] =
            when + nsToTick(timing.tWL + timing.tBURST);
        dimmEverWr[d] = true;
        break;

      case DramCmd::PRE:
        panicIfNot(b.open, "protocol violation: PRE to a closed bank");
        require(true, b.lastAct, when, timing.tRAS, "ACT->PRE (tRAS)");
        if (b.everRd && b.lastRd > b.lastAct) {
            require(true, b.lastRd, when,
                    timing.tBURST + timing.tRPD, "RD->PRE (tRPD)");
        }
        if (b.everWr && b.lastWr > b.lastAct) {
            require(true, b.lastWr, when, timing.tWPD, "WR->PRE (tWPD)");
        }
        b.lastPre = when;
        b.everPre = true;
        b.open = false;
        break;
    }
}

} // namespace memtherm
