/**
 * @file
 * DDR2 bank timing state under close-page auto-precharge (Section 3.3):
 * every access is an ACT / CAS(-with-autoprecharge) / PRE triple.
 */

#ifndef MEMTHERM_DRAM_BANK_HH
#define MEMTHERM_DRAM_BANK_HH

#include "common/units.hh"
#include "dram/timing.hh"

namespace memtherm
{

/**
 * One DRAM bank. Tracks when the next activation may issue and computes
 * the command times of a close-page access.
 */
class Bank
{
  public:
    explicit Bank(const DramTiming &t) : timing(t) {}

    /** All command times of one close-page access. */
    struct AccessTimes
    {
        Tick act = 0;       ///< row activation
        Tick cas = 0;       ///< column access (RD or WR)
        Tick dataStart = 0; ///< first data beat on the DDR2 bus
        Tick dataEnd = 0;   ///< last data beat
        Tick pre = 0;       ///< (auto-)precharge
        Tick readyAct = 0;  ///< earliest next activation
    };

    /** Earliest time an ACT may issue to this bank. */
    Tick earliestAct() const { return nextAct; }

    /**
     * Commit one access starting with an ACT at @p act (must be >=
     * earliestAct()).
     *
     * @param act       activation time
     * @param write     write access
     * @param cas_defer extra delay imposed on the CAS beyond tRCD
     *                  (e.g. a tWTR turnaround), in ticks
     */
    AccessTimes access(Tick act, bool write, Tick cas_defer = 0);

    /** Reset to the unconstrained state. */
    void reset() { nextAct = 0; }

  private:
    DramTiming timing;
    Tick nextAct = 0;
};

} // namespace memtherm

#endif // MEMTHERM_DRAM_BANK_HH
