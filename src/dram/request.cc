#include "dram/request.hh"

#include "common/logging.hh"

namespace memtherm
{

AddressMap::AddressMap(int n_channel_pairs, int n_dimms, int n_banks,
                       std::uint64_t block_bytes)
    : nPairs(n_channel_pairs), nDimms(n_dimms), nBanks(n_banks),
      blockSize(block_bytes)
{
    panicIfNot(n_channel_pairs >= 1 && n_dimms >= 1 && n_banks >= 1,
               "AddressMap: bad geometry");
    panicIfNot(block_bytes >= 1, "AddressMap: bad block size");
}

DecodedAddr
AddressMap::decode(std::uint64_t addr) const
{
    std::uint64_t block = addr / blockSize;
    DecodedAddr d;
    d.channelPair = static_cast<int>(block % nPairs);
    block /= nPairs;
    d.dimm = static_cast<int>(block % nDimms);
    block /= nDimms;
    d.bank = static_cast<int>(block % nBanks);
    d.row = block / nBanks;
    return d;
}

} // namespace memtherm
