/**
 * @file
 * Synthetic block-access generators for driving the FBDIMM simulator,
 * plus closed- and open-loop measurement helpers used to validate the
 * MemSystemPerf constants of the analytic model.
 */

#ifndef MEMTHERM_DRAM_TRAFFIC_GEN_HH
#define MEMTHERM_DRAM_TRAFFIC_GEN_HH

#include <cstdint>

#include "common/rng.hh"
#include "dram/memory_controller.hh"

namespace memtherm
{

/** One generated block access. */
struct BlockAccess
{
    std::uint64_t addr = 0;
    bool write = false;
    Tick at = 0;
};

/** Generator parameters. */
struct TrafficConfig
{
    GBps rate = 4.0;             ///< offered load (block bytes per time)
    double writeFrac = 0.3;      ///< fraction of accesses that are writes
    std::uint64_t footprintBytes = 1ULL << 30;
    bool sequential = false;     ///< streaming vs uniform-random addresses
    std::uint64_t blockBytes = 64;
    std::uint64_t seed = 1;
};

/**
 * Open-loop generator: block accesses at a fixed offered rate.
 */
class TrafficGenerator
{
  public:
    explicit TrafficGenerator(const TrafficConfig &cfg);

    /** Next access; arrival times advance by blockBytes / rate. */
    BlockAccess next();

    const TrafficConfig &config() const { return cfg; }

  private:
    TrafficConfig cfg;
    Rng rng;
    Tick cursor = 0;
    double interArrivalNs;
    std::uint64_t seqAddr = 0;
};

/** Result of a bandwidth/latency measurement run. */
struct MeasuredPerf
{
    GBps achieved = 0.0;        ///< delivered bandwidth
    double meanReadLatencyNs = 0.0;
    double maxReadLatencyNs = 0.0;
};

/**
 * Drive a memory system with @p n_blocks accesses from the generator and
 * measure delivered bandwidth and read latency.
 */
MeasuredPerf measurePerf(FbdimmMemorySystem &mem, TrafficGenerator &gen,
                         std::uint64_t n_blocks);

/**
 * Closed-loop saturation probe: offered load far above capacity; returns
 * the sustainable bandwidth of the system.
 */
MeasuredPerf saturationProbe(const MemSystemConfig &cfg,
                             std::uint64_t n_blocks, double write_frac,
                             bool sequential = false);

} // namespace memtherm

#endif // MEMTHERM_DRAM_TRAFFIC_GEN_HH
