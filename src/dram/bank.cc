#include "dram/bank.hh"

#include <algorithm>

#include "common/logging.hh"

namespace memtherm
{

Bank::AccessTimes
Bank::access(Tick act, bool write, Tick cas_defer)
{
    panicIfNot(act >= nextAct, "Bank: activation before bank is ready");

    AccessTimes t;
    t.act = act;
    t.cas = act + nsToTick(timing.tRCD) + cas_defer;
    if (write) {
        t.dataStart = t.cas + nsToTick(timing.tWL);
        t.dataEnd = t.dataStart + nsToTick(timing.tBURST);
        // Write-to-precharge (tWPD) dominates tRAS for DDR2-667 writes.
        t.pre = std::max(t.act + nsToTick(timing.tRAS),
                         t.cas + nsToTick(timing.tWPD));
    } else {
        t.dataStart = t.cas + nsToTick(timing.tCL);
        t.dataEnd = t.dataStart + nsToTick(timing.tBURST);
        t.pre = std::max(t.act + nsToTick(timing.tRAS),
                         t.cas + nsToTick(timing.tBURST + timing.tRPD));
    }
    t.readyAct = std::max(t.pre + nsToTick(timing.tRP),
                          t.act + nsToTick(timing.tRC));
    nextAct = t.readyAct;
    return t;
}

} // namespace memtherm
