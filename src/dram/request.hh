/**
 * @file
 * Memory request types and the FBDIMM address map.
 */

#ifndef MEMTHERM_DRAM_REQUEST_HH
#define MEMTHERM_DRAM_REQUEST_HH

#include <cstdint>

#include "common/units.hh"

namespace memtherm
{

/** One 32 B half-block transfer on a single FBDIMM channel. */
struct MemRequest
{
    std::uint64_t id = 0;      ///< caller-assigned identifier
    std::uint64_t addr = 0;    ///< byte address (system-wide)
    bool write = false;
    Tick arrival = 0;          ///< time the request enters the controller
    int dimm = 0;              ///< target DIMM on the channel
    int bank = 0;              ///< target bank on the DIMM
};

/** Completion record for latency accounting. */
struct MemCompletion
{
    std::uint64_t id = 0;
    bool write = false;
    Tick arrival = 0;
    Tick done = 0;
    int dimm = 0;

    /** Request latency in nanoseconds. */
    double
    latencyNs() const
    {
        return static_cast<double>(done - arrival) /
               static_cast<double>(tickPerNs);
    }
};

/** Where a block address lands in the memory system. */
struct DecodedAddr
{
    int channelPair = 0; ///< logical (ganged) channel pair
    int dimm = 0;
    int bank = 0;
    std::uint64_t row = 0;
};

/**
 * FBDIMM address map (Table 4.1 organization): 64 B blocks interleave
 * across logical channel pairs, then DIMMs, then banks; the remainder is
 * the row. Each 64 B access becomes two 32 B half-block requests, one on
 * each physical channel of the pair.
 */
class AddressMap
{
  public:
    /**
     * @param n_channel_pairs logical channels (physical channels / 2)
     * @param n_dimms         DIMMs per physical channel
     * @param n_banks         banks per DIMM
     * @param block_bytes     cache-block size
     */
    AddressMap(int n_channel_pairs, int n_dimms, int n_banks,
               std::uint64_t block_bytes = 64);

    /** Decode a byte address. */
    DecodedAddr decode(std::uint64_t addr) const;

    int channelPairs() const { return nPairs; }
    int dimms() const { return nDimms; }
    int banks() const { return nBanks; }
    std::uint64_t blockBytes() const { return blockSize; }

  private:
    int nPairs;
    int nDimms;
    int nBanks;
    std::uint64_t blockSize;
};

} // namespace memtherm

#endif // MEMTHERM_DRAM_REQUEST_HH
