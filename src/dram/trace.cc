#include "dram/trace.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"

namespace memtherm
{

namespace
{

std::string
at(const std::string &name, std::size_t line)
{
    return "trace '" + name + "' line " + std::to_string(line);
}

/** Parse a decimal or 0x-prefixed hex integer; false on junk. */
bool
parseU64(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty())
        return false;
    int base = 10;
    std::size_t start = 0;
    if (tok.size() > 2 && tok[0] == '0' && (tok[1] == 'x' || tok[1] == 'X')) {
        base = 16;
        start = 2;
    }
    std::uint64_t v = 0;
    for (std::size_t i = start; i < tok.size(); ++i) {
        const char c = tok[i];
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (base == 16 && c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return false;
        if (v > (~0ULL - static_cast<std::uint64_t>(digit)) /
                    static_cast<std::uint64_t>(base))
            return false; // overflow
        v = v * static_cast<std::uint64_t>(base) +
            static_cast<std::uint64_t>(digit);
    }
    out = v;
    return true;
}

} // namespace

std::vector<TraceRecord>
parseTrace(const std::string &text, const std::string &name)
{
    std::istringstream in(text);
    std::string line;
    std::size_t line_no = 0;

    if (!std::getline(in, line))
        fatal("trace '" + name + "': empty file (expected header "
              "'#memtherm-trace v" + std::to_string(kTraceFormatVersion) +
              "')");
    ++line_no;
    {
        std::istringstream hs(line);
        std::string magic, ver;
        hs >> magic >> ver;
        if (magic != "#memtherm-trace" || ver.size() < 2 || ver[0] != 'v')
            fatal(at(name, line_no) +
                  ": bad header (expected '#memtherm-trace v" +
                  std::to_string(kTraceFormatVersion) + "')");
        std::uint64_t v = 0;
        if (!parseU64(ver.substr(1), v))
            fatal(at(name, line_no) + ": bad version '" + ver + "'");
        if (static_cast<int>(v) > kTraceFormatVersion)
            fatal("trace '" + name + "': format version " +
                  std::to_string(v) + " is newer than this binary's v" +
                  std::to_string(kTraceFormatVersion) +
                  "; upgrade memtherm to read this trace");
    }

    std::vector<TraceRecord> out;
    while (std::getline(in, line)) {
        ++line_no;
        // Skip blanks and comments.
        std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::istringstream ls(line);
        std::string addr_tok, op_tok, bytes_tok, extra;
        ls >> addr_tok >> op_tok >> bytes_tok;
        if (bytes_tok.empty())
            fatal(at(name, line_no) +
                  ": expected '<addr> <r|w> <bytes>', got '" + line + "'");
        if (ls >> extra)
            fatal(at(name, line_no) + ": trailing token '" + extra + "'");
        TraceRecord rec;
        if (!parseU64(addr_tok, rec.addr))
            fatal(at(name, line_no) + ": bad address '" + addr_tok + "'");
        if (op_tok == "r")
            rec.write = false;
        else if (op_tok == "w")
            rec.write = true;
        else
            fatal(at(name, line_no) + ": bad op '" + op_tok +
                  "' (expected r or w)");
        std::uint64_t bytes = 0;
        if (!parseU64(bytes_tok, bytes) || bytes == 0 ||
            bytes > 0xffffffffULL)
            fatal(at(name, line_no) + ": bad byte count '" + bytes_tok +
                  "'");
        rec.bytes = static_cast<std::uint32_t>(bytes);
        out.push_back(rec);
    }
    if (out.empty())
        fatal("trace '" + name + "': no records");
    return out;
}

std::vector<TraceRecord>
loadTrace(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("trace '" + path + "': cannot open file");
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseTrace(buf.str(), path);
}

std::string
formatTrace(const std::vector<TraceRecord> &records)
{
    std::ostringstream out;
    out << "#memtherm-trace v" << kTraceFormatVersion << "\n";
    for (const TraceRecord &r : records)
        out << "0x" << std::hex << r.addr << std::dec
            << (r.write ? " w " : " r ") << r.bytes << "\n";
    return out.str();
}

void
saveTrace(const std::string &path, const std::vector<TraceRecord> &records)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("trace '" + path + "': cannot open file for writing");
    out << formatTrace(records);
    out.flush();
    if (!out)
        fatal("trace '" + path + "': write failed");
}

std::vector<TraceRecord>
generateTrace(const TraceGenConfig &cfg)
{
    if (cfg.blockSize == 0)
        fatal("trace gen: block size must be > 0");
    if (cfg.count == 0)
        fatal("trace gen: count must be > 0");
    if (cfg.maxAddr <= cfg.minAddr)
        fatal("trace gen: max address must be > min address");
    const std::uint64_t span = cfg.maxAddr - cfg.minAddr;
    const std::uint64_t blocks = span / cfg.blockSize;
    if (blocks == 0)
        fatal("trace gen: address range smaller than one block");
    if (!(cfg.readPct >= 0.0 && cfg.readPct <= 100.0))
        fatal("trace gen: read percentage must be in [0, 100]");

    Rng rng(cfg.seed);
    std::vector<TraceRecord> out;
    out.reserve(cfg.count);
    std::uint64_t linear_block = 0;
    for (std::uint64_t i = 0; i < cfg.count; ++i) {
        std::uint64_t block;
        if (cfg.pattern == TraceGenConfig::Pattern::Linear) {
            block = linear_block;
            linear_block = (linear_block + 1) % blocks;
        } else {
            block = rng.below(blocks);
        }
        TraceRecord rec;
        rec.addr = cfg.minAddr + block * cfg.blockSize;
        rec.bytes = cfg.blockSize;
        // One uniform draw per record in both patterns, so the r/w
        // stream of a linear and a random trace at one seed differ only
        // through the random pattern's own draws.
        rec.write = rng.uniform() * 100.0 >= cfg.readPct;
        out.push_back(rec);
    }
    return out;
}

TraceProfile
decodeTrace(const std::vector<TraceRecord> &records, int n_channels,
            int n_dimms, int bank_cells, std::uint32_t block_size)
{
    if (records.empty())
        fatal("trace decode: no records");
    if (n_channels < 1 || n_dimms < 1 || bank_cells < 0)
        fatal("trace decode: bad organization");
    if (block_size == 0)
        fatal("trace decode: block size must be > 0");

    TraceProfile p;
    p.dimmShares.assign(static_cast<std::size_t>(n_dimms), 0.0);
    const std::size_t n_bank =
        static_cast<std::size_t>(n_dimms) * bank_cells;
    std::vector<double> bank_bytes(n_bank, 0.0);

    const std::uint64_t nc = static_cast<std::uint64_t>(n_channels);
    const std::uint64_t nd = static_cast<std::uint64_t>(n_dimms);
    double total_bytes = 0.0;
    double read_bytes = 0.0;
    for (const TraceRecord &r : records) {
        const std::uint64_t block = r.addr / block_size;
        const std::uint64_t dimm = block / nc % nd;
        const double b = static_cast<double>(r.bytes);
        p.dimmShares[dimm] += b;
        if (bank_cells > 0) {
            const std::uint64_t cell =
                block / (nc * nd) % static_cast<std::uint64_t>(bank_cells);
            bank_bytes[dimm * static_cast<std::uint64_t>(bank_cells) +
                       cell] += b;
        }
        total_bytes += b;
        if (!r.write)
            read_bytes += b;
        ++p.records;
    }

    for (double &s : p.dimmShares)
        s /= total_bytes;
    p.readFraction = read_bytes / total_bytes;

    if (bank_cells > 0) {
        p.bankWeights.assign(n_bank, 0.0);
        for (int d = 0; d < n_dimms; ++d) {
            double dimm_total = 0.0;
            for (int c = 0; c < bank_cells; ++c)
                dimm_total += bank_bytes[d * bank_cells + c];
            for (int c = 0; c < bank_cells; ++c) {
                // A DIMM the trace never touches gets uniform weights:
                // its (zero-share) power splits evenly, matching the
                // lumped model's view of an idle DIMM.
                p.bankWeights[d * bank_cells + c] =
                    dimm_total > 0.0
                        ? bank_bytes[d * bank_cells + c] / dimm_total
                        : 1.0 / bank_cells;
            }
        }
    }
    return p;
}

} // namespace memtherm
