/**
 * @file
 * Scenario: running hotter data centers.
 *
 * The paper's introduction motivates DTM with operators who raise the
 * ambient temperature to cut cooling costs. This example sweeps the
 * system inlet temperature and shows how the cost of thermal management
 * grows — and how much of it a coordinated scheme (DTM-CDVFS) buys back
 * in processor energy relative to bandwidth throttling.
 */

#include <iostream>

#include "common/table.hh"
#include "core/sim/experiment.hh"

using namespace memtherm;

int
main()
{
    Workload mix = workloadMix("W2"); // art, equake, lucas, fma3d
    Table t("Raising the machine-room ambient (W2, AOHS_1.5)",
            {"inlet C", "BW time x", "CDVFS time x", "BW cpu kJ",
             "CDVFS cpu kJ", "CDVFS energy saving"});

    for (double inlet : {46.0, 48.0, 50.0, 52.0}) {
        SimConfig cfg = makeCh4Config(coolingAohs15(), false);
        cfg.copiesPerApp = 12;
        cfg.ambient.tInlet = inlet;

        ThermalSimulator sim(cfg);
        auto base = makeCh4Policy("No-limit");
        auto bw = makeCh4Policy("DTM-BW");
        auto cdvfs = makeCh4Policy("DTM-CDVFS");
        SimResult rb = sim.run(mix, *base);
        SimResult r_bw = sim.run(mix, *bw);
        SimResult r_cd = sim.run(mix, *cdvfs);

        double saving = 1.0 - r_cd.cpuEnergy / r_bw.cpuEnergy;
        t.addRow({Table::num(inlet, 0),
                  Table::num(r_bw.runningTime / rb.runningTime, 2),
                  Table::num(r_cd.runningTime / rb.runningTime, 2),
                  Table::num(r_bw.cpuEnergy / 1e3, 0),
                  Table::num(r_cd.cpuEnergy / 1e3, 0),
                  Table::num(saving * 100.0, 1) + "%"});
    }
    t.print(std::cout);
    std::cout << "Hotter rooms shrink the thermal envelope; coordinated\n"
                 "DVFS keeps the performance loss close to throttling's\n"
                 "while cutting processor energy by roughly half.\n";
    return 0;
}
