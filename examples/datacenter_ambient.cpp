/**
 * @file
 * Scenario: running hotter data centers.
 *
 * The paper's introduction motivates DTM with operators who raise the
 * ambient temperature to cut cooling costs. This example sweeps the
 * system inlet temperature and shows how the cost of thermal management
 * grows — and how much of it a coordinated scheme (DTM-CDVFS) buys back
 * in processor energy relative to bandwidth throttling.
 */

#include <iostream>

#include "common/table.hh"
#include "core/sim/engine.hh"

using namespace memtherm;

int
main()
{
    Workload mix = workloadMix("W2"); // art, equake, lucas, fma3d
    Table t("Raising the machine-room ambient (W2, AOHS_1.5)",
            {"inlet C", "BW time x", "CDVFS time x", "BW cpu kJ",
             "CDVFS cpu kJ", "CDVFS energy saving"});

    // The inlet sweep is an engine grid: one config per temperature,
    // all (inlet, policy) runs in flight at once.
    const std::vector<double> inlets{46.0, 48.0, 50.0, 52.0};
    std::vector<SimConfig> cfgs;
    for (double inlet : inlets) {
        SimConfig cfg = makeCh4Config(coolingAohs15(), false);
        cfg.copiesPerApp = 12;
        cfg.ambient.tInlet = inlet;
        cfgs.push_back(cfg);
    }

    ExperimentEngine engine;
    GridResults grid = engine.runGrid(
        cfgs, {mix}, {"No-limit", "DTM-BW", "DTM-CDVFS"});

    for (std::size_t i = 0; i < inlets.size(); ++i) {
        const auto &per_policy = grid[i].at(mix.name);
        const SimResult &rb = per_policy.at("No-limit");
        const SimResult &r_bw = per_policy.at("DTM-BW");
        const SimResult &r_cd = per_policy.at("DTM-CDVFS");

        double saving = 1.0 - r_cd.cpuEnergy / r_bw.cpuEnergy;
        t.addRow({Table::num(inlets[i], 0),
                  Table::num(r_bw.runningTime / rb.runningTime, 2),
                  Table::num(r_cd.runningTime / rb.runningTime, 2),
                  Table::num(r_bw.cpuEnergy / 1e3, 0),
                  Table::num(r_cd.cpuEnergy / 1e3, 0),
                  Table::num(saving * 100.0, 1) + "%"});
    }
    t.print(std::cout);
    std::cout << "Hotter rooms shrink the thermal envelope; coordinated\n"
                 "DVFS keeps the performance loss close to throttling's\n"
                 "while cutting processor energy by roughly half.\n";
    return 0;
}
