/**
 * @file
 * Scenario: degraded cooling (the "system fan failure" motivation from
 * the paper's introduction).
 *
 * The same workload runs under healthy cooling (1.5 m/s air) and under a
 * degraded fan (1.0 m/s) with an AMB-only heat spreader. Thermal
 * shutdown keeps the system safe in both cases, but the PID-controlled
 * core-gating scheme turns a hard emergency into a modest slowdown.
 */

#include <iostream>

#include "common/table.hh"
#include "core/sim/engine.hh"

using namespace memtherm;

int
main()
{
    Workload mix = workloadMix("W3"); // swim, applu, art, lucas
    ExperimentEngine engine;          // one pool for both cooling setups
    Table t("Cooling degradation on W3 (isolated model)",
            {"air m/s", "policy", "time x no-limit", "max AMB C",
             "mem energy x"});

    for (auto velocity : {AirVelocity::MPS_1_5, AirVelocity::MPS_1_0}) {
        CoolingConfig cooling =
            coolingConfig(HeatSpreader::FDHS, velocity);
        SimConfig cfg = makeCh4Config(cooling, false);
        cfg.copiesPerApp = 12;
        // Constrained machine room either way. (With the AMB-only
        // spreader a 1.0 m/s fan cannot even hold the idle temperature
        // below the TDP at this inlet — full-DIMM spreaders here.)
        cfg.ambient.tInlet = 45.0;

        std::vector<SimResult> results = engine.run({
            {cfg, mix, "No-limit", {}},
            {cfg, mix, "DTM-TS", {}},
            {cfg, mix, "DTM-ACG+PID", {}},
        });
        const SimResult &rb = results[0];
        for (std::size_t i = 1; i < results.size(); ++i) {
            const SimResult &r = results[i];
            t.addRow({velocity == AirVelocity::MPS_1_5 ? "1.5" : "1.0",
                      r.policy,
                      Table::num(r.runningTime / rb.runningTime, 2),
                      Table::num(r.maxAmb, 1),
                      Table::num(r.memEnergy / rb.memEnergy, 2)});
        }
    }
    t.print(std::cout);
    std::cout << "A weaker fan raises every scheme's cost, but the\n"
                 "coordinated scheme cuts the shutdown scheme's penalty\n"
                 "roughly in half while honoring the same thermal limits\n"
                 "(110 C AMB / 85 C DRAM — the DRAM binds under FDHS).\n";
    return 0;
}
