/**
 * @file
 * Quickstart: describe one experiment as a declarative ScenarioSpec,
 * run it, and print what happened.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 *
 * The same experiment as data: save the spec's JSON (printed at the
 * end) to a file and run `./build/memtherm run quickstart.json`.
 */

#include <iostream>

#include "core/sim/scenario.hh"

using namespace memtherm;

int
main()
{
    // 1. Describe the experiment. The defaults are the Chapter 4
    //    platform (4-core CMP, four FBDIMM channels with four DIMMs
    //    each, AOHS heat spreader at 1.5 m/s cooling air, isolated
    //    thermal model); we only override the batch depth. Workloads
    //    and policies are catalog names — `memtherm list workloads`
    //    and `memtherm list policies` print the options.
    ScenarioSpec spec;
    spec.name = "quickstart";
    spec.copiesPerApp = 10; // a smaller batch than the paper's 50 copies
    spec.workloads = {"W1"}; // swim, mgrid, applu, galgel (Table 4.2)
    spec.policies = {"No-limit", "DTM-TS", "DTM-ACG"};

    // 2. Run it. The engine fans independent runs out over a thread
    //    pool (size from MEMTHERM_THREADS, default: all hardware
    //    threads); results are bit-identical to running them one by one.
    ScenarioResults results = runScenario(spec);
    const SuiteResults &suite = results.points[0].suite;
    const SimResult &base = suite.at("W1").at("No-limit");
    const SimResult &r_ts = suite.at("W1").at("DTM-TS");
    const SimResult &r_acg = suite.at("W1").at("DTM-ACG");

    // 3. Report.
    std::cout << "Workload W1 (batch of 4 apps x " << *spec.copiesPerApp
              << " copies)\n\n";
    for (const SimResult *r : {&base, &r_ts, &r_acg}) {
        std::cout << r->policy << ":\n"
                  << "  running time      " << r->runningTime << " s ("
                  << r->runningTime / base.runningTime << "x no-limit)\n"
                  << "  memory traffic    " << r->totalTrafficGB()
                  << " GB\n"
                  << "  hottest AMB       " << r->maxAmb << " C (TDP 110)\n"
                  << "  memory energy     " << r->memEnergy / 1000.0
                  << " kJ\n"
                  << "  processor energy  " << r->cpuEnergy / 1000.0
                  << " kJ\n\n";
    }

    std::cout << "DTM-ACG speedup over DTM-TS: "
              << (r_ts.runningTime / r_acg.runningTime - 1.0) * 100.0
              << "%\n\n";

    // 4. The whole experiment, as data (feed this to `memtherm run`):
    std::cout << "scenario JSON:\n" << spec.toJson().dump();
    return 0;
}
