/**
 * @file
 * Quickstart: simulate one workload mix under two DTM policies and print
 * what happened.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/sim/engine.hh"

using namespace memtherm;

int
main()
{
    // 1. Configure the Chapter 4 platform: 4-core CMP, four FBDIMM
    //    channels with four DIMMs each, AOHS heat spreader at 1.5 m/s
    //    cooling air, isolated thermal model.
    SimConfig cfg = makeCh4Config(coolingAohs15(), false);
    cfg.copiesPerApp = 10; // a smaller batch than the paper's 50 copies

    // 2. Pick a workload mix from Table 4.2.
    Workload mix = workloadMix("W1"); // swim, mgrid, applu, galgel

    // 3. Run it under thermal shutdown and under adaptive core gating.
    //    The engine fans independent runs out over a thread pool (size
    //    from MEMTHERM_THREADS, default: all hardware threads); results
    //    are bit-identical to running them one by one.
    ExperimentEngine engine;
    std::vector<SimResult> results = engine.run({
        {cfg, mix, "No-limit", {}},
        {cfg, mix, "DTM-TS", {}},
        {cfg, mix, "DTM-ACG", {}},
    });
    SimResult &base = results[0];
    SimResult &r_ts = results[1];
    SimResult &r_acg = results[2];

    // 4. Report.
    std::cout << "Workload " << mix.name << " (batch of "
              << mix.apps.size() << " apps)\n\n";
    for (const SimResult *r : {&base, &r_ts, &r_acg}) {
        std::cout << r->policy << ":\n"
                  << "  running time      " << r->runningTime << " s ("
                  << r->runningTime / base.runningTime << "x no-limit)\n"
                  << "  memory traffic    " << r->totalTrafficGB()
                  << " GB\n"
                  << "  hottest AMB       " << r->maxAmb << " C (TDP 110)\n"
                  << "  memory energy     " << r->memEnergy / 1000.0
                  << " kJ\n"
                  << "  processor energy  " << r->cpuEnergy / 1000.0
                  << " kJ\n\n";
    }

    std::cout << "DTM-ACG speedup over DTM-TS: "
              << (r_ts.runningTime / r_acg.runningTime - 1.0) * 100.0
              << "%\n";
    return 0;
}
