/**
 * @file
 * Scenario: from cycle-level FBDIMM traffic to DIMM temperatures.
 *
 * Drives the detailed FBDIMM timing simulator with a synthetic stream,
 * converts each AMB's measured local/bypass bytes into the power model's
 * traffic records, and advances the thermal model — the full
 * detailed-simulation half of the paper's two-level methodology.
 */

#include <iostream>

#include "common/table.hh"
#include "core/thermal/memory_thermal.hh"
#include "dram/traffic_gen.hh"

using namespace memtherm;

int
main()
{
    // 1. A four-channel-pair FBDIMM system under 14 GB/s of mixed
    //    traffic for ~40 ms of device time.
    MemSystemConfig mem_cfg;
    FbdimmMemorySystem mem(mem_cfg);
    TrafficConfig tc;
    tc.rate = 14.0;
    tc.writeFrac = 0.3;
    tc.seed = 42;
    TrafficGenerator gen(tc);
    MeasuredPerf perf = measurePerf(mem, gen, 3000000);

    std::cout << "Detailed simulation: " << perf.achieved
              << " GB/s delivered, mean read latency "
              << perf.meanReadLatencyNs << " ns\n\n";

    // 2. Per-AMB traffic on physical channel 0, as the power model sees
    //    it.
    Seconds window = tickToSec(mem.lastCompletion());
    const auto &channel = *mem.channels()[0];
    Table t("Per-DIMM traffic and power (channel 0)",
            {"DIMM", "local GB/s", "bypass GB/s", "AMB W", "DRAM W"});
    DimmPowerModel power;
    std::vector<DimmTraffic> traffic;
    for (const Amb &amb : channel.ambs()) {
        DimmTraffic tr = amb.trafficOver(window);
        traffic.push_back(tr);
        DimmPower p = power.power(tr, amb.isLast());
        t.addRow({std::to_string(amb.index()), Table::num(tr.local(), 2),
                  Table::num(tr.bypass(), 2), Table::num(p.amb, 2),
                  Table::num(p.dram, 2)});
    }
    t.print(std::cout);

    // 3. Hold that operating point for ten minutes of wall time and
    //    watch the hottest DIMM heat up (Eq. 3.5 dynamics).
    MemoryThermalModel thermal(MemoryOrgConfig{4, 4}, coolingAohs15(),
                               DimmPowerModel{}, 50.0);
    thermal.resetToStable(0.0, 0.0, 50.0); // idle-stable start
    ChannelStats agg = mem.aggregateStats();
    double scale = 1.0 / (window * bytesPerGB);
    GBps total_read = static_cast<double>(agg.readBytes) * scale;
    GBps total_write = static_cast<double>(agg.writeBytes) * scale;

    Table curve("Hottest AMB temperature under sustained load",
                {"t s", "AMB C", "DRAM C"});
    for (int step = 0; step <= 10; ++step) {
        MemoryThermalSample s =
            thermal.advance(total_read, total_write, 50.0, 60.0);
        curve.addRow({std::to_string((step + 1) * 60),
                      Table::num(s.hottestAmb, 1),
                      Table::num(s.hottestDram, 1)});
    }
    curve.print(std::cout);

    std::cout << "The AMB crosses its 110 C design point — exactly the\n"
                 "emergency DTM exists to manage.\n";
    return 0;
}
