/**
 * @file
 * Fig. 4.4: normalized total memory traffic of every DTM scheme under
 * (a) FDHS_1.0 and (b) AOHS_1.5, normalized to the no-limit system.
 * DTM-ACG cuts traffic via reduced L2 contention; DTM-CDVFS slightly via
 * fewer speculative accesses; PID trades a little traffic for speed.
 */

#include "ch4_suite.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    for (const CoolingConfig &cooling : {coolingFdhs10(), coolingAohs15()}) {
        SuiteResults r = ch4Suite(cooling, true);
        printNormalized("Fig 4.4 — normalized total memory traffic (" +
                            cooling.name() + ")",
                        r, mixNames(), ch4PolicyNames(true), "No-limit",
                        metricTraffic);
    }
    return 0;
}
