/**
 * @file
 * Figs. 4.5-4.8: AMB temperature traces of DTM-TS / DTM-BW / DTM-ACG /
 * DTM-CDVFS (each without and with PID) for workload W1 under AOHS_1.5,
 * first 1000 seconds, 10-second resolution.
 *
 * Expected shapes (Section 4.4.2): TS swings between 109 and 110; BW
 * holds ~109.5 (PID: sticks at 109.8); ACG shows spikes that PID
 * removes; CDVFS swings between 109.5 and 110 with occasional overshoot
 * to 110 that PID eliminates.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/stats.hh"
#include "core/sim/scenario.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    // The experiment as a declarative scenario (the same description
    // could live in a JSON file and run via `memtherm run`).
    ScenarioSpec spec;
    spec.name = "fig4_5_to_4_8";
    spec.copiesPerApp = 50;
    spec.workloads = {"W1"};
    spec.policies = {"DTM-TS",      "DTM-BW",    "DTM-BW+PID",
                     "DTM-ACG",     "DTM-ACG+PID", "DTM-CDVFS",
                     "DTM-CDVFS+PID"};

    ScenarioResults results = runScenario(spec, engine());
    const SuiteResults &r = results.points[0].suite;
    const std::vector<std::string> &policies = spec.policies;
    std::vector<TimeSeries> traces;
    for (const auto &p : policies)
        traces.push_back(r.at("W1").at(p).ambTrace.downsample(10));

    std::vector<std::string> headers{"t s"};
    headers.insert(headers.end(), policies.begin(), policies.end());
    Table t("Figs 4.5-4.8 — AMB temperature of W1 (AOHS_1.5), 10 s bins",
            headers);
    std::size_t rows = 100; // 1000 s
    for (std::size_t i = 0; i < rows; ++i) {
        std::vector<std::string> row{Table::num((i + 1) * 10.0, 0)};
        for (const auto &tr : traces)
            row.push_back(i < tr.size() ? Table::num(tr.at(i), 2) : "-");
        t.addRow(row);
    }
    t.print(std::cout);

    Table s("Trace summaries (steady state, t > 200 s)",
            {"policy", "mean C", "max C", "swing C"});
    for (std::size_t p = 0; p < policies.size(); ++p) {
        Accumulator acc;
        const TimeSeries &tr = traces[p];
        for (std::size_t i = 20; i < tr.size() && i < rows; ++i)
            acc.add(tr.at(i));
        s.addRow({policies[p], Table::num(acc.mean(), 2),
                  Table::num(acc.max(), 2),
                  Table::num(acc.max() - acc.min(), 2)});
    }
    s.print(std::cout);
    return 0;
}
