/**
 * @file
 * Fig. 5.15: normalized running time and L2 cache misses under DTM-ACG
 * on the PE1950 as the scheduler time slice varies (5..100 ms),
 * normalized to the 100 ms default. Slices below ~20 ms thrash the L2:
 * each switch refills the program's working set.
 */

#include <iostream>

#include "bench_util.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    Platform plat = pe1950();
    const std::vector<Seconds> slices{0.005, 0.010, 0.020, 0.050, 0.100};

    std::vector<std::string> headers{"metric"};
    for (Seconds s : slices)
        headers.push_back(Table::num(s * 1e3, 0) + " ms");
    Table t("Fig 5.15 — DTM-ACG vs switching time slice (PE1950, "
            "normalized to 100 ms)",
            headers);

    const std::vector<Workload> mixes = cpu2000Mixes();
    std::vector<ExperimentEngine::Run> runs;
    for (const Workload &w : mixes) {
        for (std::size_t i = 0; i < slices.size(); ++i) {
            SimConfig cfg = plat.sim;
            cfg.copiesPerApp = kCh5Copies;
            cfg.rotationSlice = slices[i];
            // Windows must resolve the slice.
            cfg.window = std::min(cfg.window, slices[i]);
            runs.push_back(
                {std::move(cfg), w, "DTM-ACG", ch5PolicyFactory(plat)});
        }
    }
    std::vector<SimResult> results = engine().run(runs);

    std::vector<double> time_sum(slices.size(), 0.0);
    std::vector<double> miss_sum(slices.size(), 0.0);
    std::size_t k = 0;
    for (std::size_t wi = 0; wi < mixes.size(); ++wi) {
        for (std::size_t i = 0; i < slices.size(); ++i) {
            time_sum[i] += results[k].runningTime;
            miss_sum[i] += results[k].totalL2Misses;
            ++k;
        }
    }
    std::vector<std::string> trow{"running time"};
    std::vector<std::string> mrow{"L2 misses"};
    for (std::size_t i = 0; i < slices.size(); ++i) {
        trow.push_back(Table::num(time_sum[i] / time_sum.back(), 3));
        mrow.push_back(Table::num(miss_sum[i] / miss_sum.back(), 3));
    }
    t.addRow(trow);
    t.addRow(mrow);
    t.print(std::cout);
    return 0;
}
