/**
 * @file
 * Fig. 5.15: normalized running time and L2 cache misses under DTM-ACG
 * on the PE1950 as the scheduler time slice varies (5..100 ms),
 * normalized to the 100 ms default. Slices below ~20 ms thrash the L2:
 * each switch refills the program's working set.
 */

#include <iostream>

#include "bench_util.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    Platform plat = pe1950();
    const std::vector<Seconds> slices{0.005, 0.010, 0.020, 0.050, 0.100};

    std::vector<std::string> headers{"metric"};
    for (Seconds s : slices)
        headers.push_back(Table::num(s * 1e3, 0) + " ms");
    Table t("Fig 5.15 — DTM-ACG vs switching time slice (PE1950, "
            "normalized to 100 ms)",
            headers);

    std::vector<double> time_sum(slices.size(), 0.0);
    std::vector<double> miss_sum(slices.size(), 0.0);
    for (const Workload &w : cpu2000Mixes()) {
        for (std::size_t i = 0; i < slices.size(); ++i) {
            SimConfig cfg = plat.sim;
            cfg.copiesPerApp = kCh5Copies;
            cfg.rotationSlice = slices[i];
            // Windows must resolve the slice.
            cfg.window = std::min(cfg.window, slices[i]);
            ThermalSimulator sim(cfg);
            auto policy = makeCh5Policy(plat, "DTM-ACG");
            SimResult r = sim.run(w, *policy);
            time_sum[i] += r.runningTime;
            miss_sum[i] += r.totalL2Misses;
        }
    }
    std::vector<std::string> trow{"running time"};
    std::vector<std::string> mrow{"L2 misses"};
    for (std::size_t i = 0; i < slices.size(); ++i) {
        trow.push_back(Table::num(time_sum[i] / time_sum.back(), 3));
        mrow.push_back(Table::num(miss_sum[i] / miss_sum.back(), 3));
    }
    t.addRow(trow);
    t.addRow(mrow);
    t.print(std::cout);
    return 0;
}
