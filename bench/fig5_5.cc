/**
 * @file
 * Fig. 5.5: average AMB temperature on the PE1950 driven by homogeneous
 * workloads without DTM control. The >80 C class (high L2 miss rates),
 * the 70-80 C class (moderate), and everything else — the temperature
 * spread that motivates workload-aware thermal management.
 */

#include <algorithm>
#include <iostream>

#include "bench_util.hh"
#include "workloads/spec_catalog.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    Platform plat = pe1950();
    struct Row
    {
        std::string app;
        double avg, peak;
    };
    std::vector<Row> rows;
    for (const auto &a : SpecCatalog::instance().bySuite(Suite::CPU2000)) {
        SimConfig cfg = plat.sim;
        cfg.copiesPerApp = 6;
        ThermalSimulator sim(cfg);
        auto policy = makeCh5Policy(plat, "Safety");
        SimResult r = sim.run(homogeneous(a->name, 4), *policy);
        // The paper excludes the 0.5% highest (sensor-spike) samples;
        // here the mean over the steady portion of the run.
        rows.push_back({a->name, r.ambTrace.mean(), r.maxAmb});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.avg > b.avg; });

    Table t("Fig 5.5 — PE1950 AMB temperature, homogeneous, no DTM",
            {"app", "avg C", "peak C", "class"});
    for (const auto &r : rows) {
        std::string cls = r.avg > 80.0   ? ">80 (memory-hot)"
                          : r.avg > 70.0 ? "70-80 (moderate)"
                                         : "<70";
        t.addRow({r.app, Table::num(r.avg, 1), Table::num(r.peak, 1), cls});
    }
    t.print(std::cout);
    return 0;
}
