/**
 * @file
 * Fig. 5.13: DTM-ACG vs DTM-BW on the SR1500AL at two processor
 * frequencies (3.0 GHz and 2.0 GHz). Memory-bound workloads barely slow
 * at 2.0 GHz, and DTM-ACG's edge persists in both modes.
 */

#include <iostream>

#include "bench_util.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    Platform plat = sr1500al();
    Table t("Fig 5.13 — DTM-ACG vs DTM-BW at 3.0 and 2.0 GHz (SR1500AL, "
            "normalized to no-limit @3.0 GHz)",
            {"workload", "BW@3.0", "ACG@3.0", "BW@2.0", "ACG@2.0"});
    std::vector<double> sums(4, 0.0);
    for (const Workload &w : cpu2000Mixes()) {
        SimResult base = runCh5(plat, w, "No-limit");
        // dvfs_floor 3 pins the Xeon to its lowest point (2.0 GHz).
        double v[4] = {
            runCh5(plat, w, "DTM-BW").runningTime / base.runningTime,
            runCh5(plat, w, "DTM-ACG").runningTime / base.runningTime,
            runCh5(plat, w, "DTM-BW", kCh5Copies, 3).runningTime /
                base.runningTime,
            runCh5(plat, w, "DTM-ACG", kCh5Copies, 3).runningTime /
                base.runningTime};
        std::vector<std::string> row{w.name};
        for (int i = 0; i < 4; ++i) {
            sums[static_cast<std::size_t>(i)] += v[i];
            row.push_back(Table::num(v[i], 3));
        }
        t.addRow(row);
    }
    std::vector<std::string> avg{"average"};
    for (double s : sums)
        avg.push_back(Table::num(s / 8.0, 3));
    t.addRow(avg);
    t.print(std::cout);
    return 0;
}
