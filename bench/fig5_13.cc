/**
 * @file
 * Fig. 5.13: DTM-ACG vs DTM-BW on the SR1500AL at two processor
 * frequencies (3.0 GHz and 2.0 GHz). Memory-bound workloads barely slow
 * at 2.0 GHz, and DTM-ACG's edge persists in both modes.
 */

#include <iostream>

#include "bench_util.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    Platform plat = sr1500al();
    Table t("Fig 5.13 — DTM-ACG vs DTM-BW at 3.0 and 2.0 GHz (SR1500AL, "
            "normalized to no-limit @3.0 GHz)",
            {"workload", "BW@3.0", "ACG@3.0", "BW@2.0", "ACG@2.0"});
    // Five engine runs per workload: the no-limit base plus BW/ACG at
    // full speed and pinned to 2.0 GHz (dvfs_floor 3).
    const std::vector<Workload> mixes = cpu2000Mixes();
    std::vector<ExperimentEngine::Run> runs;
    for (const Workload &w : mixes) {
        runs.push_back(ch5Run(plat, w, "No-limit"));
        runs.push_back(ch5Run(plat, w, "DTM-BW"));
        runs.push_back(ch5Run(plat, w, "DTM-ACG"));
        runs.push_back(ch5Run(plat, w, "DTM-BW", kCh5Copies, 3));
        runs.push_back(ch5Run(plat, w, "DTM-ACG", kCh5Copies, 3));
    }
    std::vector<SimResult> results = engine().run(runs);

    std::vector<double> sums(4, 0.0);
    for (std::size_t wi = 0; wi < mixes.size(); ++wi) {
        const SimResult *r = &results[wi * 5];
        double base = r[0].runningTime;
        double v[4] = {r[1].runningTime / base, r[2].runningTime / base,
                       r[3].runningTime / base, r[4].runningTime / base};
        std::vector<std::string> row{mixes[wi].name};
        for (int i = 0; i < 4; ++i) {
            sums[static_cast<std::size_t>(i)] += v[i];
            row.push_back(Table::num(v[i], 3));
        }
        t.addRow(row);
    }
    std::vector<std::string> avg{"average"};
    for (double s : sums)
        avg.push_back(Table::num(s / 8.0, 3));
    t.addRow(avg);
    t.print(std::cout);
    return 0;
}
