/**
 * @file
 * Fig. 5.9: measured memory inlet (processor exhaust) temperature on the
 * SR1500AL per DTM policy. The cooling air is preheated ~10 C by the
 * processors; DTM-CDVFS and DTM-COMB run the inlet ~1 C cooler than
 * DTM-BW/DTM-ACG — the mechanism behind their performance edge.
 */

#include "ch5_suite.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    Platform plat = sr1500al();
    SuiteResults r = ch5SuiteRun(plat, false);

    std::vector<std::string> headers{"workload"};
    auto policies = ch5PolicyNames();
    headers.insert(headers.end(), policies.begin(), policies.end());
    Table t("Fig 5.9 — memory inlet temperature, SR1500AL (C)", headers);
    std::vector<double> sums(policies.size(), 0.0);
    for (const auto &w : ch5MixNames()) {
        std::vector<std::string> row{w};
        for (std::size_t i = 0; i < policies.size(); ++i) {
            double v = r.at(w).at(policies[i]).inletTrace.mean();
            sums[i] += v;
            row.push_back(Table::num(v, 1));
        }
        t.addRow(row);
    }
    std::vector<std::string> avg{"average"};
    for (double s : sums)
        avg.push_back(Table::num(s / 8.0, 1));
    t.addRow(avg);
    t.print(std::cout);
    return 0;
}
