/**
 * @file
 * Table 3.3: DRAM-ambient-temperature model parameters for the isolated
 * and integrated thermal models.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/thermal/thermal_params.hh"

using namespace memtherm;

int
main()
{
    Table t("Table 3.3 — DRAM ambient model parameters",
            {"model", "cooling", "inlet C", "PsiCPU_MEM*xi", "tau s"});
    for (bool integrated : {false, true}) {
        for (const CoolingConfig &c : {coolingFdhs10(), coolingAohs15()}) {
            AmbientParams p =
                integrated ? integratedAmbient(c) : isolatedAmbient(c);
            t.addRow({integrated ? "integrated" : "isolated", c.name(),
                      Table::num(p.tInlet, 0),
                      Table::num(p.psiCpuMemXi, 1),
                      Table::num(p.tauCpuDram, 0)});
        }
    }
    t.print(std::cout);
    return 0;
}
