/**
 * @file
 * Shared helpers for the per-figure/table experiment harnesses.
 *
 * Every binary prints the same rows/series the paper reports, normalized
 * the same way (Chapter 4 figures to the no-thermal-limit baseline or to
 * DTM-TS; Chapter 5 figures to no-limit or DTM-BW). Batch depths are
 * reduced relative to the paper's 50 copies to bound harness runtime;
 * EXPERIMENTS.md records the settings used.
 */

#ifndef MEMTHERM_BENCH_BENCH_UTIL_HH
#define MEMTHERM_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/sim/engine.hh"
#include "core/sim/experiment.hh"
#include "testbed/platform.hh"

namespace memtherm::bench
{

/** Batch depth used by the Chapter 4 harnesses. */
inline constexpr int kCh4Copies = 25;
/** Batch depth used by the Chapter 5 harnesses. */
inline constexpr int kCh5Copies = 6;

/**
 * Process-wide experiment engine shared by the harness binaries: sized
 * by MEMTHERM_THREADS (default: hardware concurrency), so every figure
 * harness parallelizes the same way without per-binary plumbing.
 */
inline ExperimentEngine &
engine()
{
    static ExperimentEngine e;
    return e;
}

/** Build one Chapter 4 engine run. */
inline ExperimentEngine::Run
ch4Run(const SimConfig &cfg, const Workload &w, const std::string &policy)
{
    return {cfg, w, policy, {}};
}

/** Build one Chapter 5 engine run (see ch5EngineRun for the protocol). */
inline ExperimentEngine::Run
ch5Run(const Platform &plat, const Workload &w, const std::string &policy,
       int copies = kCh5Copies, std::size_t dvfs_floor = 0)
{
    return ch5EngineRun(plat, w, policy, copies, dvfs_floor);
}

/** Chapter 4 configuration with the harness batch depth. */
inline SimConfig
ch4Config(const CoolingConfig &cooling, bool integrated,
          int copies = kCh4Copies)
{
    SimConfig cfg = makeCh4Config(cooling, integrated);
    cfg.copiesPerApp = copies;
    return cfg;
}

/** Run one Chapter 4 (workload, policy-name) pair. */
inline SimResult
runCh4(const SimConfig &cfg, const Workload &w, const std::string &policy)
{
    ThermalSimulator sim(cfg);
    auto p = makeCh4Policy(policy, cfg.dtmInterval);
    return sim.run(w, *p);
}

/** Run one Chapter 5 (workload, policy-name) pair on a platform. */
inline SimResult
runCh5(const Platform &plat, const Workload &w, const std::string &policy,
       int copies = kCh5Copies, std::size_t dvfs_floor = 0)
{
    ExperimentEngine::Run r = ch5Run(plat, w, policy, copies, dvfs_floor);
    ThermalSimulator sim(r.cfg);
    auto p = r.factory(r.cfg, r.policy);
    return sim.run(w, *p);
}

/**
 * Emit a normalized-metric table: rows = workloads (+ average), columns =
 * policies, each cell = metric(policy) / metric(base).
 */
inline void
printNormalized(const std::string &title,
                const std::map<std::string,
                               std::map<std::string, SimResult>> &results,
                const std::vector<std::string> &workloads,
                const std::vector<std::string> &policies,
                const std::string &base,
                double (*metric)(const SimResult &), int digits = 3)
{
    std::vector<std::string> headers{"workload"};
    headers.insert(headers.end(), policies.begin(), policies.end());
    Table t(title, headers);
    std::vector<double> sums(policies.size(), 0.0);
    for (const auto &w : workloads) {
        std::vector<std::string> row{w};
        double denom = metric(results.at(w).at(base));
        for (std::size_t i = 0; i < policies.size(); ++i) {
            double v = metric(results.at(w).at(policies[i])) / denom;
            sums[i] += v;
            row.push_back(Table::num(v, digits));
        }
        t.addRow(row);
    }
    std::vector<std::string> avg{"average"};
    for (double s : sums)
        avg.push_back(Table::num(s / static_cast<double>(workloads.size()),
                                 digits));
    t.addRow(avg);
    t.print(std::cout);
}

} // namespace memtherm::bench

#endif // MEMTHERM_BENCH_BENCH_UTIL_HH
