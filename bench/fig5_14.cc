/**
 * @file
 * Fig. 5.14: average normalized running time on the PE1950 with AMB TDPs
 * of 88, 90 and 92 C (the emergency-level table shifts with the TDP).
 * Higher TDPs reduce the loss; the policies' relative order holds at
 * every TDP — they "work equally well in future systems with different
 * thermal constraints".
 */

#include <iostream>

#include "bench_util.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    const std::vector<Celsius> tdps{88.0, 90.0, 92.0};
    std::vector<std::string> headers{"policy"};
    for (Celsius t : tdps)
        headers.push_back("TDP " + Table::num(t, 0));
    Table t("Fig 5.14 — avg normalized running time vs AMB TDP (PE1950)",
            headers);

    auto policies = ch5PolicyNames();
    for (const auto &pname : policies) {
        std::vector<std::string> row{pname};
        for (Celsius tdp : tdps) {
            Platform plat = pe1950();
            plat.ambTdp = tdp;
            plat.sim.limits.ambTdp = tdp;
            plat.sim.limits.ambTrp = tdp - 1.0;
            // Emergency levels shift with the TDP (Section 5.4.5).
            Celsius top = tdp - 2.0;
            plat.ambBounds = {top - 12.0, top - 8.0, top - 4.0, top};
            double sum = 0.0;
            for (const Workload &w : cpu2000Mixes()) {
                SimResult base = runCh5(plat, w, "No-limit");
                SimResult r = runCh5(plat, w, pname);
                sum += r.runningTime / base.runningTime;
            }
            row.push_back(Table::num(sum / 8.0, 3));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
