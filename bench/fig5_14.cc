/**
 * @file
 * Fig. 5.14: average normalized running time on the PE1950 with AMB TDPs
 * of 88, 90 and 92 C (the emergency-level table shifts with the TDP).
 * Higher TDPs reduce the loss; the policies' relative order holds at
 * every TDP — they "work equally well in future systems with different
 * thermal constraints".
 */

#include <iostream>

#include "bench_util.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    const std::vector<Celsius> tdps{88.0, 90.0, 92.0};
    std::vector<std::string> headers{"policy"};
    for (Celsius t : tdps)
        headers.push_back("TDP " + Table::num(t, 0));
    Table t("Fig 5.14 — avg normalized running time vs AMB TDP (PE1950)",
            headers);

    // One platform variant per TDP; the whole (TDP, workload, policy)
    // block fans out as a single engine batch.
    std::vector<Platform> plats;
    for (Celsius tdp : tdps) {
        Platform plat = pe1950();
        plat.ambTdp = tdp;
        plat.sim.limits.ambTdp = tdp;
        plat.sim.limits.ambTrp = tdp - 1.0;
        // Emergency levels shift with the TDP (Section 5.4.5).
        Celsius top = tdp - 2.0;
        plat.ambBounds = {top - 12.0, top - 8.0, top - 4.0, top};
        plats.push_back(std::move(plat));
    }

    auto policies = ch5PolicyNames();
    std::vector<std::string> all = policies;
    all.insert(all.begin(), "No-limit");
    const std::vector<Workload> mixes = cpu2000Mixes();
    std::vector<ExperimentEngine::Run> runs;
    for (const Platform &plat : plats)
        for (const Workload &w : mixes)
            for (const auto &pname : all)
                runs.push_back(ch5Run(plat, w, pname));
    std::vector<SimResult> results = engine().run(runs);
    auto at = [&](std::size_t ti, std::size_t wi, std::size_t pi)
        -> const SimResult & {
        return results[(ti * mixes.size() + wi) * all.size() + pi];
    };

    for (std::size_t pi = 1; pi < all.size(); ++pi) {
        std::vector<std::string> row{all[pi]};
        for (std::size_t ti = 0; ti < tdps.size(); ++ti) {
            double sum = 0.0;
            for (std::size_t wi = 0; wi < mixes.size(); ++wi)
                sum += at(ti, wi, pi).runningTime /
                       at(ti, wi, 0).runningTime;
            row.push_back(Table::num(sum / 8.0, 3));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
