/**
 * @file
 * Fig. 5.12: normalized running time on the SR1500AL at a room system
 * ambient (26 C) with an artificial 90 C AMB TDP — the same 64 C
 * ambient-to-TDP gap as the hot-box experiment. Section 5.4.5's finding:
 * performance tracks the gap, not the absolute ambient.
 */

#include "ch5_suite.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    Platform plat = sr1500al(26.0, 90.0);
    SuiteResults r = ch5SuiteRun(plat);
    printNormalized(
        "Fig 5.12 — normalized running time, SR1500AL @26C / TDP 90C", r,
        ch5MixNames(), ch5PolicyNames(), "No-limit", metricRunningTime);
    return 0;
}
