/**
 * @file
 * Fig. 5.4: AMB temperature over the first 500 seconds on the SR1500AL
 * running homogeneous workloads (four copies of one program), with only
 * the open-loop safety cap engaged above the TDP. swim/mgrid rocket to
 * ~100 C and saturate at the cap; the moderately intensive programs
 * stabilize below it. The machine idles long enough beforehand for the
 * AMB to stabilize (~80 C).
 */

#include <iostream>

#include "bench_util.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    Platform plat = sr1500al();
    const std::vector<std::string> apps{"swim", "mgrid", "galgel", "apsi",
                                        "vpr"};

    std::vector<TimeSeries> traces;
    for (const auto &a : apps) {
        SimConfig cfg = plat.sim;
        cfg.copiesPerApp = 20;
        cfg.maxSimTime = 520.0;
        ThermalSimulator sim(cfg);
        auto policy = makeCh5Policy(plat, "Safety");
        traces.push_back(sim.run(homogeneous(a, 4), *policy)
                             .ambTrace.downsample(5));
    }

    std::vector<std::string> headers{"t s"};
    headers.insert(headers.end(), apps.begin(), apps.end());
    Table t("Fig 5.4 — SR1500AL AMB temperature, first 500 s (5 s bins)",
            headers);
    for (std::size_t i = 0; i < 100; ++i) {
        std::vector<std::string> row{Table::num((i + 1) * 5.0, 0)};
        for (const auto &tr : traces)
            row.push_back(i < tr.size() ? Table::num(tr.at(i), 1) : "-");
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
