/**
 * @file
 * Calibration harness (not a paper figure): prints the model's operating
 * points so descriptor parameters can be checked against the paper's
 * anchors — per-app homogeneous throughput classes (Section 4.3.2), mix
 * demands, stable temperatures, and a quick policy comparison on W1.
 */

#include <iostream>

#include "common/table.hh"
#include "core/sim/engine.hh"
#include "workloads/spec_catalog.hh"

using namespace memtherm;

namespace
{

/** Unconstrained demand of a mix at full speed. */
WindowPerf
mixDemand(const Workload &w, const MemSystemPerf &mem)
{
    std::vector<CoreTask> tasks;
    for (const auto *a : w.apps) {
        CoreTask t;
        t.cpiCore = a->cpiCore;
        t.mpki = mpkiAtSharers(a->cache, static_cast<double>(w.apps.size()));
        t.writeFrac = a->writeFrac;
        t.specFrac = a->specFrac;
        t.mlpOverlap = a->mlpOverlap;
        tasks.push_back(t);
    }
    return solvePerfWindow(tasks, 3.2, 3.2,
                           std::numeric_limits<double>::infinity(), mem);
}

} // namespace

int
main()
{
    SimConfig cfg = makeCh4Config(coolingAohs15(), false);

    // --- homogeneous throughput classes ---------------------------------
    Table homo("Homogeneous 4-copy throughput at 3.2 GHz (GB/s)",
               {"app", "throughput", "class"});
    for (const auto &a : SpecCatalog::instance().all()) {
        if (a.suite != Suite::CPU2000)
            continue;
        Workload w = homogeneous(a.name, 4);
        WindowPerf p = mixDemand(w, cfg.memPerf);
        double tput = p.totalRead + p.totalWrite;
        homo.addRow({a.name, Table::num(tput, 1),
                     tput > 10.0 ? ">10" : (tput > 5.0 ? "5-10" : "<5")});
    }
    homo.print(std::cout);

    // --- mix demands and stable temperatures ----------------------------
    MemoryThermalModel therm(cfg.org, cfg.cooling, DimmPowerModel{}, 50.0);
    Table mix("Mix demand and stable hottest temps (AOHS_1.5, 50C)",
              {"mix", "demand GB/s", "stableAmb", "stableDram"});
    for (const auto &w : cpu2000Mixes()) {
        WindowPerf p = mixDemand(w, cfg.memPerf);
        double d = p.totalRead + p.totalWrite;
        mix.addRow({w.name, Table::num(d, 1),
                    Table::num(therm.stableHottestAmb(p.totalRead,
                                                      p.totalWrite, 50.0),
                               1),
                    Table::num(therm.stableHottestDram(p.totalRead,
                                                       p.totalWrite, 50.0),
                               1)});
    }
    mix.print(std::cout);

    // --- quick policy pass on W1 ----------------------------------------
    SimConfig quick = cfg;
    quick.copiesPerApp = 50;
    quick.instrScale = 1.0;
    Table pol("W1 quick policy comparison (AOHS_1.5)",
              {"policy", "time s", "norm", "traffic GB", "maxAmb",
               "avgBW", "instr/B", "cpuE kJ", "memE kJ"});
    Workload w1 = workloadMix("W1");
    std::vector<ExperimentEngine::Run> runs;
    for (const auto &name :
         {"No-limit", "DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS",
          "DTM-BW+PID", "DTM-ACG+PID", "DTM-CDVFS+PID"}) {
        runs.push_back({quick, w1, name, {}});
    }
    ExperimentEngine engine;
    double base = 0.0;
    for (const SimResult &r : engine.run(runs)) {
        if (base == 0.0)
            base = r.runningTime;
        pol.addRow({r.policy, Table::num(r.runningTime, 1),
                    Table::num(r.runningTime / base, 2),
                    Table::num(r.totalTrafficGB(), 0),
                    Table::num(r.maxAmb, 2),
                    Table::num(r.avgBandwidth(), 2),
                    Table::num(r.totalInstr / r.totalTrafficGB() / 1e9, 3),
                    Table::num(r.cpuEnergy / 1000.0, 0),
                    Table::num(r.memEnergy / 1000.0, 0)});
    }
    pol.print(std::cout);
    return 0;
}
