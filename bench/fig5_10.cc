/**
 * @file
 * Fig. 5.10: average CPU power per DTM policy on the SR1500AL,
 * normalized to DTM-BW. DTM-CDVFS cuts ~15%; DTM-ACG saves little
 * because memory-stalled cores are already clock-gated by hardware.
 */

#include "ch5_suite.hh"

using namespace memtherm;
using namespace memtherm::bench;

namespace
{

double
metricAvgCpuPower(const memtherm::SimResult &r)
{
    return r.avgCpuPower();
}

} // namespace

int
main()
{
    Platform plat = sr1500al();
    SuiteResults r = ch5SuiteRun(plat, false);
    printNormalized("Fig 5.10 — CPU power normalized to DTM-BW (SR1500AL)",
                    r, ch5MixNames(), ch5PolicyNames(), "DTM-BW",
                    metricAvgCpuPower);

    Table t("Absolute average CPU power (W)", {"policy", "power W"});
    for (const auto &p : ch5PolicyNames()) {
        double sum = 0.0;
        for (const auto &w : ch5MixNames())
            sum += r.at(w).at(p).avgCpuPower();
        t.addRow({p, Table::num(sum / 8.0, 1)});
    }
    t.print(std::cout);
    return 0;
}
