/**
 * @file
 * google-benchmark microbenchmarks of the FBDIMM timing simulator.
 */

#include <benchmark/benchmark.h>

#include "dram/traffic_gen.hh"

using namespace memtherm;

namespace
{

void
BM_ChannelRandomReads(benchmark::State &state)
{
    ChannelConfig cfg;
    cfg.checkProtocol = state.range(0) != 0;
    std::uint64_t served = 0;
    for (auto _ : state) {
        state.PauseTiming();
        FbdimmChannel ch(cfg);
        Rng rng(3);
        state.ResumeTiming();
        for (int i = 0; i < 4096; ++i) {
            MemRequest r;
            r.id = static_cast<std::uint64_t>(i);
            r.dimm = static_cast<int>(rng.below(4));
            r.bank = static_cast<int>(rng.below(8));
            r.write = rng.uniform() < 0.3;
            r.arrival = static_cast<Tick>(i) * nsToTick(2.0);
            while (!ch.enqueue(r))
                ch.issueOne();
        }
        ch.drain();
        served += 4096;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(served));
}

void
BM_MemorySystemSaturation(benchmark::State &state)
{
    MemSystemConfig cfg;
    for (auto _ : state) {
        MeasuredPerf p = saturationProbe(cfg, 20000, 0.3);
        benchmark::DoNotOptimize(p.achieved);
    }
    state.SetItemsProcessed(20000 * state.iterations());
}

void
BM_AddressDecode(benchmark::State &state)
{
    AddressMap map(2, 4, 8, 64);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        DecodedAddr d = map.decode(addr);
        benchmark::DoNotOptimize(d);
        addr += 64;
    }
    state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_ChannelRandomReads)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_MemorySystemSaturation)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AddressDecode);

} // namespace

BENCHMARK_MAIN();
