/**
 * @file
 * Table 5.2: Chapter 5 workload mixes (SPEC CPU2000 W1-W8 plus the
 * CPU2006 mixes W11-W12).
 */

#include <iostream>

#include "bench_util.hh"

using namespace memtherm;

int
main()
{
    Table t("Table 5.2 — workload mixes", {"workload", "benchmarks"});
    auto mixes = cpu2000Mixes();
    auto cpu2006 = cpu2006Mixes();
    mixes.insert(mixes.end(), cpu2006.begin(), cpu2006.end());
    for (const Workload &w : mixes) {
        std::string apps;
        for (const auto *a : w.apps)
            apps += (apps.empty() ? "" : ", ") + a->name;
        t.addRow({w.name, apps});
    }
    t.print(std::cout);
    return 0;
}
