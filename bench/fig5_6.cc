/**
 * @file
 * Fig. 5.6: normalized running time of the SPEC CPU2000 workloads under
 * the four Chapter 5 DTM policies on (a) the PE1950 and (b) the
 * SR1500AL, normalized to no-thermal-limit execution.
 */

#include "ch5_suite.hh"

using namespace memtherm;
using namespace memtherm::bench;

int
main()
{
    for (const Platform &plat : {pe1950(), sr1500al()}) {
        SuiteResults r = ch5SuiteRun(plat);
        printNormalized("Fig 5.6 — normalized running time (" + plat.name +
                            ")",
                        r, ch5MixNames(), ch5PolicyNames(), "No-limit",
                        metricRunningTime);
    }
    return 0;
}
